// Batchsched replays the paper's motivating scenario: the exact 30-application
// mix of Table 4 (Figures 7 and 8), scheduled under every comparative policy,
// and prints the resulting throughput and turnaround ordering.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"moespark"
	"moespark/internal/metrics"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

func main() {
	jobs, err := moespark.Table4Mix()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 4 mix (submission order):")
	for i, j := range jobs {
		fmt.Printf("  %2d. %s\n", i+1, j)
	}

	model, err := moespark.TrainDefaultModel(rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	quasar, err := sched.TrainQuasar(workload.TrainingSet(), rand.New(rand.NewSource(2)))
	if err != nil {
		log.Fatal(err)
	}

	policies := []struct {
		name string
		mk   func() moespark.Scheduler
	}{
		{"Isolated (baseline)", func() moespark.Scheduler { return sched.NewIsolated() }},
		{"Pairwise", func() moespark.Scheduler { return sched.NewPairwise() }},
		{"Quasar", func() moespark.Scheduler { return sched.NewQuasar(quasar, rand.New(rand.NewSource(3))) }},
		{"MoE (this work)", func() moespark.Scheduler { return sched.NewMoE(model, rand.New(rand.NewSource(4))) }},
		{"Oracle", func() moespark.Scheduler { return sched.NewOracle() }},
	}

	fmt.Printf("\n%-20s %8s %10s %14s %10s\n", "policy", "STP", "ANTT", "turnaround", "OOM kills")
	for _, p := range policies {
		sim := moespark.NewCluster(moespark.DefaultClusterConfig())
		res, err := sim.Run(jobs, p.mk())
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		run, err := metrics.FromResult(sim, res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %8.2f %10.2f %11.1f min %10d\n",
			p.name, run.STP, run.ANTT, run.MakespanSec/60, run.OOMKills)
	}
	fmt.Println("\nExpected ordering (paper, Figure 8): MoE beats Quasar and Pairwise on")
	fmt.Println("both throughput and turnaround, and approaches the Oracle.")
}
