// Quickstart: train the mixture-of-experts memory predictor, predict an
// unseen application's memory footprint, and run a small co-location
// schedule on the simulated cluster.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"moespark"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// 1. Train the predictor on the paper's 16 HiBench/BigDataBench
	//    programs (offline profiling is simulated).
	model, err := moespark.TrainDefaultModel(rng)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("trained on %d programs, confidence radius %.2f\n",
		len(model.Programs()), model.ConfidenceRadius())

	// 2. Predict the memory footprint of an unseen Spark-Perf application.
	app, err := moespark.FindBenchmark("SP.glm-classification")
	if err != nil {
		log.Fatal(err)
	}
	pred, err := model.Predict(
		app.Counters(rng),        // runtime features from a ~100MB profiling run
		app.ProfilePoint(1, rng), // calibration run on a small slice
		app.ProfilePoint(4, rng), // ... and a larger one
	)
	if err != nil {
		log.Fatalf("prediction: %v", err)
	}
	const inputGB = 120.0
	footprint, err := pred.Func.Eval(inputGB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: expert=%s, calibrated %s\n", app.FullName(), pred.Family, pred.Func)
	fmt.Printf("predicted footprint at %.0fGB: %.1f GB (ground truth %.1f GB)\n",
		inputGB, footprint, app.Footprint(inputGB))

	// 3. Co-locate a small batch on the simulated 40-node cluster and
	//    compare against running the jobs one by one in isolation.
	jobs := []moespark.Job{
		{Bench: app, InputGB: 120},
		{Bench: mustFind("HB.Sort"), InputGB: 300},
		{Bench: mustFind("BDB.PageRank"), InputGB: 30},
		{Bench: mustFind("SB.Hive"), InputGB: 30},
	}
	sim := moespark.NewCluster(moespark.DefaultClusterConfig())
	res, err := sim.Run(jobs, moespark.NewMoEScheduler(model, rng))
	if err != nil {
		log.Fatalf("simulation: %v", err)
	}
	cmp, err := moespark.CompareToSerial(sim, res, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nco-located %d jobs: STP %.2f, ANTT reduction %.1f%%, makespan speedup %.2fx\n",
		len(jobs), cmp.NormalizedSTP, cmp.ANTTReductionPct, cmp.Speedup)

	// 4. Open system: stream 40 jobs at 80/hour through the event engine
	//    and read the queueing metrics instead of batch STP.
	arrivals, err := moespark.PoissonArrivals(40, 80.0/3600, rng)
	if err != nil {
		log.Fatal(err)
	}
	openSim := moespark.NewCluster(moespark.DefaultClusterConfig())
	openRes, err := openSim.RunOpen(
		moespark.SubmissionsFromArrivals(arrivals),
		moespark.NewMoEScheduler(model, rng),
	)
	if err != nil {
		log.Fatalf("open-system simulation: %v", err)
	}
	q, err := moespark.MeasureQueueing(openRes, 600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("open system (80 jobs/hour): mean wait %.0fs, p95 sojourn %.0fs, %.1f jobs/hour served\n",
		q.MeanWaitSec, q.P95SojournSec, q.ThroughputJobsPerHour)
}

func mustFind(name string) *moespark.Benchmark {
	b, err := moespark.FindBenchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	return b
}
