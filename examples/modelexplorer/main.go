// Modelexplorer fits all three memory-function families to every benchmark's
// offline profiling sweep and prints which expert wins, with goodness-of-fit
// per family — a hands-on view of why a single unified model cannot describe
// all applications (the paper's core motivation).
package main

import (
	"fmt"
	"math/rand"

	"moespark/internal/memfunc"
	"moespark/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	fmt.Printf("%-24s %-24s %10s %10s %10s\n",
		"benchmark", "winning expert", "lin relRMSE", "exp relRMSE", "log relRMSE")
	counts := map[memfunc.Family]int{}
	for _, b := range workload.Catalog() {
		pts := b.CurvePoints(workload.TrainingSweep, rng)
		best, err := memfunc.BestFit(pts)
		if err != nil {
			fmt.Printf("%-24s fit failed: %v\n", b.FullName(), err)
			continue
		}
		counts[best.Func.Family]++
		row := fmt.Sprintf("%-24s %-24s", b.FullName(), best.Func.Family.String())
		for _, fam := range memfunc.Families {
			fit, err := memfunc.FitFamily(fam, pts)
			if err != nil {
				row += fmt.Sprintf(" %10s", "n/a")
				continue
			}
			row += fmt.Sprintf(" %9.1f%%", fit.RelRMSE*100)
		}
		fmt.Println(row)
	}
	fmt.Println()
	for _, fam := range memfunc.Families {
		fmt.Printf("%-24s %d benchmarks\n", fam.String(), counts[fam])
	}
	fmt.Println("\nNo single family fits everything well — the wrong family's relative")
	fmt.Println("RMSE is often an order of magnitude worse, which is exactly why the")
	fmt.Println("paper routes each application to a specialised expert.")
}
