// Interference reproduces the spirit of the paper's Figures 14 and 15 at a
// small scale: how much does memory-aware co-location slow down (a) the
// co-located Spark applications themselves and (b) a computation-intensive
// PARSEC co-runner sharing the host?
package main

import (
	"fmt"
	"log"
	"math/rand"

	"moespark"
	"moespark/internal/cluster"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

func main() {
	model, err := moespark.TrainDefaultModel(rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}

	// Single host, as in the paper's interference studies.
	cfg := moespark.DefaultClusterConfig()
	cfg.Nodes = 1
	cfg.MaxExecutorNodes = 1

	fmt.Println("== Spark-on-Spark co-location slowdown (one host) ==")
	target := must("HB.Kmeans")
	iso := runOne(cfg, model, []moespark.Job{{Bench: target, InputGB: 45}}, 10)
	fmt.Printf("%-16s isolated: %.0fs\n", target.FullName(), iso)
	for _, coName := range []string{"HB.Sort", "BDB.Grep", "SP.Pca", "SB.PageRank"} {
		co := must(coName)
		jobs := []moespark.Job{{Bench: target, InputGB: 45}, {Bench: co, InputGB: 30}}
		sim := moespark.NewCluster(cfg)
		res, err := sim.Run(jobs, sched.NewMoE(model, rand.New(rand.NewSource(11))))
		if err != nil {
			log.Fatal(err)
		}
		turn := res.Apps[0].Turnaround()
		fmt.Printf("  + %-14s target: %.0fs (%+.1f%% vs isolated)\n",
			co.FullName(), turn, (turn/iso-1)*100)
	}

	fmt.Println("\n== PARSEC co-runner slowdown under our scheme (one host) ==")
	for _, p := range workload.ParsecSuite()[:6] {
		sim := cluster.New(cfg)
		ft, err := sim.AddForeign(0, p.Name, p.CPULoad, p.MemoryGB, p.RuntimeSec)
		if err != nil {
			log.Fatal(err)
		}
		jobs := []moespark.Job{{Bench: must("BDB.Wordcount"), InputGB: 30}}
		// The PARSEC co-runner is a plain OS process outside YARN's resource
		// view, so the dispatcher's CPU admission rule cannot see it.
		d := sched.NewMoE(model, rand.New(rand.NewSource(12)))
		d.CheckCPU = false
		if _, err := sim.Run(jobs, d); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s isolated %.0fs, co-located %.0fs (%+.1f%%)\n",
			p.Name, p.RuntimeSec, ft.DoneTime, (ft.DoneTime/p.RuntimeSec-1)*100)
	}
	fmt.Println("\nPaper: Spark-on-Spark slowdown <10% on average (max <25%); PARSEC <30%.")
}

func must(name string) *moespark.Benchmark {
	b, err := moespark.FindBenchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	return b
}

func runOne(cfg moespark.ClusterConfig, model *moespark.Model, jobs []moespark.Job, seed int64) float64 {
	sim := moespark.NewCluster(cfg)
	res, err := sim.Run(jobs, sched.NewMoE(model, rand.New(rand.NewSource(seed))))
	if err != nil {
		log.Fatal(err)
	}
	return res.Apps[0].Turnaround()
}
