package moespark

import (
	"math"
	"math/rand"
	"testing"

	"moespark/internal/cluster"
	"moespark/internal/metrics"
	"moespark/internal/moe"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

// golden holds per-run reference values for the closed-batch engine. The
// engine must reproduce them bit-for-bit (up to the 10 significant digits
// recorded): Run(jobs, sched) is required to stay a behaviour-preserving
// wrapper over RunOpen with all submissions at t=0. All goldens in this file
// were re-captured exactly once when the settle-on-rate-change engine landed
// together with the ReleaseForeignMem/FleetAwareSizing default flips (see
// README "Engine internals" for why the PR1-5 values could not survive).
type golden struct {
	stp, antt, makespan float64
	oom                 int
	done                []float64
}

var closedBatchGoldens = map[string]golden{
	"pairwise-table4": {
		stp: 5.775099224, antt: 15.45625887, makespan: 4507.021926, oom: 0,
		done: []float64{119.09, 532.7014171, 633.4001982, 3505.031984, 780.8306478, 1506.827363, 739.1101982, 904.5921174, 3487.159932, 3720.91718, 1723.913353, 1793.707363, 1722.747363, 1944.940818, 4091.342495, 1909.800119, 4138.993157, 2113.917619, 2176.543773, 2150.297386, 1955.005618, 2788.46749, 4296.980656, 2252.662619, 3272.17992, 2304.173389, 4267.444002, 4507.021926, 2951.633665, 3366.531445},
	},
	"oracle-table4": {
		stp: 10.89921569, antt: 3.838209225, makespan: 2689.653253, oom: 0,
		done: []float64{125.7731306, 449.1273863, 426.8298966, 849.7120114, 703.8943823, 2002.795936, 111.6275, 600.6517326, 1058.566143, 833.2340449, 2249.257649, 1285.926871, 789.9540325, 1667.728923, 2562.848732, 489.0304291, 1878.369524, 678.2598365, 923.9562108, 1161.500779, 11.55184977, 2689.653253, 1968.076597, 479.7712676, 2182.81943, 304.9818075, 1419.547923, 2662.675159, 709.8053332, 1359.205523},
	},
	"moe-l5-seed42": {
		stp: 9.720532631, antt: 1.134993937, makespan: 590.134085, oom: 0,
		done: []float64{590.134085, 190.5721229, 14.6678978, 10.50170571, 13.63352396, 13.20511156, 336.9350995, 161.5294564, 182.4614478, 11.08099139, 192.8985541},
	},
	"isolated-l5-seed42": {
		stp: 1.94834659, antt: 35.53086045, makespan: 1457.891741, oom: 0,
		done: []float64{508, 666, 679.4545455, 689.4545455, 702.0699301, 714.3556444, 995.0829171, 1128.082917, 1283.141741, 1293.641741, 1457.891741},
	},
}

// relClose checks agreement to ~9 significant digits (the goldens were
// recorded with 10).
func relClose(got, want float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want) < 1e-8
}

func checkGolden(t *testing.T, label string, jobs []workload.Job, s cluster.Scheduler) {
	t.Helper()
	g, ok := closedBatchGoldens[label]
	if !ok {
		t.Fatalf("no golden named %q", label)
	}
	c := cluster.New(cluster.DefaultConfig())
	res, err := c.Run(jobs, s)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	m, err := metrics.FromResult(c, res)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if !relClose(m.STP, g.stp) {
		t.Errorf("%s: STP = %.10g, golden %.10g", label, m.STP, g.stp)
	}
	if !relClose(m.ANTT, g.antt) {
		t.Errorf("%s: ANTT = %.10g, golden %.10g", label, m.ANTT, g.antt)
	}
	if !relClose(m.MakespanSec, g.makespan) {
		t.Errorf("%s: makespan = %.10g, golden %.10g", label, m.MakespanSec, g.makespan)
	}
	if m.OOMKills != g.oom {
		t.Errorf("%s: OOM kills = %d, golden %d", label, m.OOMKills, g.oom)
	}
	if len(res.Apps) != len(g.done) {
		t.Fatalf("%s: %d apps, golden %d", label, len(res.Apps), len(g.done))
	}
	for i, a := range res.Apps {
		if !relClose(a.DoneTime, g.done[i]) {
			t.Errorf("%s: app %d done at %.10g, golden %.10g", label, i, a.DoneTime, g.done[i])
		}
		if a.SubmitTime != 0 {
			t.Errorf("%s: app %d submit time %v, closed batch must submit at 0", label, i, a.SubmitTime)
		}
	}
}

// TestClosedBatchEquivalence locks Run(jobs, sched) to the results the
// pre-refactor closed-batch engine produced for deterministic and seeded
// schedulers alike.
func TestClosedBatchEquivalence(t *testing.T) {
	t4, err := workload.Table4Mix()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "pairwise-table4", t4, sched.NewPairwise())
	checkGolden(t, "oracle-table4", t4, sched.NewOracle())

	sc, err := workload.ScenarioByLabel("L5")
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.RandomMix(sc, rand.New(rand.NewSource(42)))
	model, err := moe.TrainDefault(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "moe-l5-seed42", mix, sched.NewMoE(model, rand.New(rand.NewSource(9))))
	checkGolden(t, "isolated-l5-seed42", mix, sched.NewIsolated())
}

// openGolden holds per-run reference values for the open-system engine on a
// homogeneous default fleet with no node events; the engine must reproduce
// them bit-for-bit. Re-captured with the settle-engine + default-flip sweep:
// FleetAwareSizing now reads free-node capacity at admission, so apps
// admitted into a busy fleet get smaller executor fleets than the reference
// formula gave — under the Pairwise scheme that stretches the loaded tail
// substantially (the old makespan was 1832.87; stragglers admitted at peak
// now crawl on 1-2 executors).
type openGolden struct {
	makespan              float64
	oom                   int
	meanWait, p95, thrput float64
	done                  []float64
}

var openSystemGoldens = map[string]openGolden{
	"oracle-poisson80-seed11": {
		makespan: 1704.343083, oom: 0,
		meanWait: 0.06507541559, p95: 502.4435227, thrput: 63.48669284,
		done: []float64{15.81457191, 546.6221167, 379.3690094, 272.8867105, 518.8516782, 358.4781837, 745.3880652, 383.4156746, 536.2330575, 432.6740017, 707.8188842, 459.0676997, 554.7941554, 754.6050476, 1158.096507, 1138.055366, 1183.44261, 720.7582688, 785.1834539, 976.5814021, 1286.25237, 1156.46113, 1013.480973, 1431.368026, 1216.022009, 1103.452552, 1209.237348, 1479.839544, 1704.343083, 1641.418192},
	},
	"pairwise-poisson80-seed11": {
		makespan: 4781.222602, oom: 0,
		meanWait: 12.81084063, p95: 1469.266696, thrput: 22.60348906,
		done: []float64{15.81457191, 556.9167151, 374.179373, 268.6884133, 477.7373781, 356.5300886, 795.9615865, 383.3575207, 533.0797814, 432.5228017, 909.4217891, 458.9164997, 554.9525554, 749.1853766, 4781.222602, 1163.120379, 1082.350677, 808.6727865, 809.0653865, 972.0814021, 1244.77291, 1148.142625, 1011.071205, 1344.068387, 1228.194288, 1160.853825, 1209.417348, 1479.200005, 1723.388122, 3529.465798},
	},
}

func checkOpenGolden(t *testing.T, label string, s cluster.Scheduler) {
	t.Helper()
	g, ok := openSystemGoldens[label]
	if !ok {
		t.Fatalf("no open-system golden named %q", label)
	}
	arrivals, err := workload.PoissonArrivals(30, 80.0/3600, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.DefaultConfig())
	res, err := c.RunOpen(cluster.Submissions(arrivals), s)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	q, err := metrics.Queueing(res, 0)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if !relClose(res.MakespanSec, g.makespan) {
		t.Errorf("%s: makespan = %.10g, golden %.10g", label, res.MakespanSec, g.makespan)
	}
	if res.OOMKills != g.oom {
		t.Errorf("%s: OOM kills = %d, golden %d", label, res.OOMKills, g.oom)
	}
	if res.FailKills != 0 {
		t.Errorf("%s: fail kills = %d without node events", label, res.FailKills)
	}
	if !relClose(q.MeanWaitSec, g.meanWait) {
		t.Errorf("%s: mean wait = %.10g, golden %.10g", label, q.MeanWaitSec, g.meanWait)
	}
	if !relClose(q.P95SojournSec, g.p95) {
		t.Errorf("%s: p95 sojourn = %.10g, golden %.10g", label, q.P95SojournSec, g.p95)
	}
	if !relClose(q.ThroughputJobsPerHour, g.thrput) {
		t.Errorf("%s: throughput = %.10g, golden %.10g", label, q.ThroughputJobsPerHour, g.thrput)
	}
	if len(res.Apps) != len(g.done) {
		t.Fatalf("%s: %d apps, golden %d", label, len(res.Apps), len(g.done))
	}
	for i, a := range res.Apps {
		if !relClose(a.DoneTime, g.done[i]) {
			t.Errorf("%s: app %d done at %.10g, golden %.10g", label, i, a.DoneTime, g.done[i])
		}
	}
}

// TestOpenSystemEquivalence locks RunOpen on a homogeneous default fleet to
// the results the pre-heterogeneity engine produced.
func TestOpenSystemEquivalence(t *testing.T) {
	checkOpenGolden(t, "oracle-poisson80-seed11", sched.NewOracle())
	checkOpenGolden(t, "pairwise-poisson80-seed11", sched.NewPairwise())
}

// tenantsGolden pins a multi-tenant run: a classed Poisson stream under the
// priority-wrapped Oracle scheme with preemption enabled. Admission order,
// preemption decisions and charge-back must stay bit-for-bit reproducible.
// Re-captured with the settle-engine + default-flip sweep: at 200 jobs/hour
// the fleet is saturated for most of the run, so fleet-aware sizing hands
// late batch arrivals very small fleets — the batch tail stretches from
// ~1554 s to ~22356 s and one fewer preemption fires (7, was 8). Latency-class
// behaviour is nearly unchanged (latWait stays exactly 0).
var tenantsGolden = struct {
	makespan          float64
	preemptKills, oom int
	latP99, batchP99  float64
	latWait           float64
	classes           string // per-app class sequence, L = latency, b = batch
	done              []float64
}{
	makespan: 22355.54237, preemptKills: 7, oom: 0,
	latP99: 452.3734037, batchP99: 16724.25914, latWait: 0,
	classes: "bbbbbbLbbbLbbbLbbbbLbbbbLbbbLLbbbLLbbbbL",
	done:    []float64{326.9548549, 245.8397026, 100.8435453, 300.9121256, 363.3193996, 354.6640252, 456.5172793, 199.8301064, 345.308344, 707.7958393, 517.7309101, 971.6799148, 463.0377199, 592.2053596, 592.0644949, 357.3863326, 1422.344622, 1624.312893, 3424.270083, 824.1569136, 469.9354793, 599.4823334, 857.1407662, 4985.479116, 511.2523722, 2248.599187, 528.0992815, 1043.352524, 873.6455051, 940.6348853, 22355.54237, 717.7130157, 1687.964923, 738.5443131, 750.179194, 1111.4534, 1074.346133, 867.3116462, 1359.550891, 1335.135678},
}

// TestTenantsMixGolden locks the classed open-system path (weighted
// admission, class-aware placement, preemption with charge-back) to the
// results captured when the multi-tenant engine landed.
func TestTenantsMixGolden(t *testing.T) {
	g := tenantsGolden
	rng := rand.New(rand.NewSource(19))
	arrivals, err := workload.PoissonArrivals(40, 200.0/3600, rng)
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := workload.TagArrivals(arrivals, workload.LatencyBatchMix(0.3), rng)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.DefaultConfig())
	res, err := c.RunOpen(cluster.Submissions(tagged), sched.NewPriority(sched.NewOracle(), true))
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(res.MakespanSec, g.makespan) {
		t.Errorf("makespan = %.10g, golden %.10g", res.MakespanSec, g.makespan)
	}
	if res.PreemptKills != g.preemptKills {
		t.Errorf("preempt kills = %d, golden %d", res.PreemptKills, g.preemptKills)
	}
	if res.OOMKills != g.oom {
		t.Errorf("OOM kills = %d, golden %d", res.OOMKills, g.oom)
	}
	if len(res.Apps) != len(g.done) {
		t.Fatalf("%d apps, golden %d", len(res.Apps), len(g.done))
	}
	for i, a := range res.Apps {
		if !relClose(a.DoneTime, g.done[i]) {
			t.Errorf("app %d done at %.10g, golden %.10g", i, a.DoneTime, g.done[i])
		}
		want := "batch"
		if g.classes[i] == 'L' {
			want = "latency"
		}
		if a.Class.Name != want {
			t.Errorf("app %d classed %q, golden %q", i, a.Class.Name, want)
		}
	}
	qs, err := metrics.QueueingByClass(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0].Class != "latency" || qs[1].Class != "batch" {
		t.Fatalf("class metrics order broken: %+v", qs)
	}
	if !relClose(qs[0].P99SojournSec, g.latP99) {
		t.Errorf("latency p99 = %.10g, golden %.10g", qs[0].P99SojournSec, g.latP99)
	}
	if qs[0].MeanWaitSec != g.latWait {
		t.Errorf("latency mean wait = %.10g, golden %.10g (preemption starts the class instantly here)",
			qs[0].MeanWaitSec, g.latWait)
	}
	if !relClose(qs[1].P99SojournSec, g.batchP99) {
		t.Errorf("batch p99 = %.10g, golden %.10g", qs[1].P99SojournSec, g.batchP99)
	}
	if qs[1].PreemptKills != g.preemptKills {
		t.Errorf("batch absorbed %d preempt kills, golden %d", qs[1].PreemptKills, g.preemptKills)
	}
}

// TestFirstFitPlacerMatchesDefault pins the Placer refactor: a Dispatcher
// with the explicit first-fit Placer must place exactly like the nil
// (historical scan-order) default, bit-for-bit.
func TestFirstFitPlacerMatchesDefault(t *testing.T) {
	t4, err := workload.Table4Mix()
	if err != nil {
		t.Fatal(err)
	}
	run := func(p sched.Placer) *cluster.Result {
		d := sched.NewOracle()
		d.Placer = p
		c := cluster.New(cluster.DefaultConfig())
		res, err := c.Run(t4, d)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	legacy := run(nil)
	scored := run(sched.NewFirstFit())
	if legacy.MakespanSec != scored.MakespanSec {
		t.Errorf("makespan %v (nil placer) vs %v (first-fit placer)", legacy.MakespanSec, scored.MakespanSec)
	}
	for i := range legacy.Apps {
		if legacy.Apps[i].DoneTime != scored.Apps[i].DoneTime {
			t.Errorf("app %d done %v vs %v", i, legacy.Apps[i].DoneTime, scored.Apps[i].DoneTime)
		}
	}
}

// TestHomogeneousHeteroConstructorEquivalence pins NewHetero with 40 default
// specs to New's results: per-node capacity math must not perturb the
// homogeneous path.
func TestHomogeneousHeteroConstructorEquivalence(t *testing.T) {
	t4, err := workload.Table4Mix()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.DefaultConfig()
	c1 := cluster.New(cfg)
	r1, err := c1.Run(t4, sched.NewOracle())
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]cluster.NodeSpec, cfg.Nodes)
	for i := range specs {
		specs[i] = cfg.DefaultNodeSpec()
	}
	c2, err := cluster.NewHetero(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c2.Run(t4, sched.NewOracle())
	if err != nil {
		t.Fatal(err)
	}
	if r1.MakespanSec != r2.MakespanSec {
		t.Errorf("makespan %v (New) vs %v (NewHetero)", r1.MakespanSec, r2.MakespanSec)
	}
	for i := range r1.Apps {
		if r1.Apps[i].DoneTime != r2.Apps[i].DoneTime {
			t.Errorf("app %d done %v vs %v", i, r1.Apps[i].DoneTime, r2.Apps[i].DoneTime)
		}
	}
}

// TestRunMatchesRunOpenAtTimeZero pins the wrapper relationship directly:
// submitting everything at t=0 through RunOpen is bit-identical to Run.
func TestRunMatchesRunOpenAtTimeZero(t *testing.T) {
	t4, err := workload.Table4Mix()
	if err != nil {
		t.Fatal(err)
	}
	c1 := cluster.New(cluster.DefaultConfig())
	r1, err := c1.Run(t4, sched.NewOracle())
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]cluster.Submission, len(t4))
	for i, j := range t4 {
		subs[i] = cluster.Submission{At: 0, Job: j}
	}
	c2 := cluster.New(cluster.DefaultConfig())
	r2, err := c2.RunOpen(subs, sched.NewOracle())
	if err != nil {
		t.Fatal(err)
	}
	if r1.MakespanSec != r2.MakespanSec {
		t.Errorf("makespan %v vs %v", r1.MakespanSec, r2.MakespanSec)
	}
	for i := range r1.Apps {
		if r1.Apps[i].DoneTime != r2.Apps[i].DoneTime {
			t.Errorf("app %d done %v vs %v", i, r1.Apps[i].DoneTime, r2.Apps[i].DoneTime)
		}
	}
}
