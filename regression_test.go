package moespark

import (
	"math"
	"math/rand"
	"testing"

	"moespark/internal/cluster"
	"moespark/internal/metrics"
	"moespark/internal/moe"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

// golden holds per-run reference values captured from the closed-batch
// engine before the open-system refactor. The refactored engine must
// reproduce them bit-for-bit (up to the 10 significant digits recorded):
// Run(jobs, sched) is required to stay a behaviour-preserving wrapper over
// RunOpen with all submissions at t=0.
type golden struct {
	stp, antt, makespan float64
	oom                 int
	done                []float64
}

var closedBatchGoldens = map[string]golden{
	"pairwise-table4": {
		stp: 5.775205281, antt: 15.45557912, makespan: 4505.488858, oom: 0,
		done: []float64{119.09, 532.7014171, 633.4001982, 3505.031984, 780.8306478, 1506.827363, 739.1101982, 904.5921174, 3487.159932, 3720.089663, 1723.913353, 1793.707363, 1722.747363, 1944.940818, 4091.291177, 1909.800119, 4137.245795, 2113.917619, 2176.543773, 2150.297386, 1955.005618, 2788.46749, 4296.782239, 2252.662619, 3272.17992, 2304.173389, 4265.788253, 4505.488858, 2951.633665, 3366.531445},
	},
	"oracle-table4": {
		stp: 10.8993005, antt: 3.838145892, makespan: 2689.588255, oom: 0,
		done: []float64{125.7731306, 449.1273863, 426.8298966, 849.6689736, 703.8943823, 2002.756216, 111.6275, 600.6517326, 1058.553124, 833.2340449, 2249.194714, 1285.926766, 789.9540325, 1667.723328, 2562.888239, 489.0304291, 1878.132536, 678.2598365, 923.9561009, 1161.490252, 11.55184977, 2689.588255, 1967.922207, 479.7712676, 2182.816562, 304.9818075, 1419.538794, 2662.678817, 709.8053332, 1359.163078},
	},
	"moe-l5-seed42": {
		stp: 9.720532631, antt: 1.134993937, makespan: 590.134085, oom: 0,
		done: []float64{590.134085, 190.5721229, 14.6678978, 10.50170571, 13.63352396, 13.20511156, 336.9350995, 161.5294564, 182.4614478, 11.08099139, 192.8985541},
	},
	"isolated-l5-seed42": {
		stp: 1.94834659, antt: 35.53086045, makespan: 1457.891741, oom: 0,
		done: []float64{508, 666, 679.4545455, 689.4545455, 702.0699301, 714.3556444, 995.0829171, 1128.082917, 1283.141741, 1293.641741, 1457.891741},
	},
}

// relClose checks agreement to ~9 significant digits (the goldens were
// recorded with 10).
func relClose(got, want float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want) < 1e-8
}

func checkGolden(t *testing.T, label string, jobs []workload.Job, s cluster.Scheduler) {
	t.Helper()
	g, ok := closedBatchGoldens[label]
	if !ok {
		t.Fatalf("no golden named %q", label)
	}
	c := cluster.New(cluster.DefaultConfig())
	res, err := c.Run(jobs, s)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	m, err := metrics.FromResult(c, res)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if !relClose(m.STP, g.stp) {
		t.Errorf("%s: STP = %.10g, golden %.10g", label, m.STP, g.stp)
	}
	if !relClose(m.ANTT, g.antt) {
		t.Errorf("%s: ANTT = %.10g, golden %.10g", label, m.ANTT, g.antt)
	}
	if !relClose(m.MakespanSec, g.makespan) {
		t.Errorf("%s: makespan = %.10g, golden %.10g", label, m.MakespanSec, g.makespan)
	}
	if m.OOMKills != g.oom {
		t.Errorf("%s: OOM kills = %d, golden %d", label, m.OOMKills, g.oom)
	}
	if len(res.Apps) != len(g.done) {
		t.Fatalf("%s: %d apps, golden %d", label, len(res.Apps), len(g.done))
	}
	for i, a := range res.Apps {
		if !relClose(a.DoneTime, g.done[i]) {
			t.Errorf("%s: app %d done at %.10g, golden %.10g", label, i, a.DoneTime, g.done[i])
		}
		if a.SubmitTime != 0 {
			t.Errorf("%s: app %d submit time %v, closed batch must submit at 0", label, i, a.SubmitTime)
		}
	}
}

// TestClosedBatchEquivalence locks Run(jobs, sched) to the results the
// pre-refactor closed-batch engine produced for deterministic and seeded
// schedulers alike.
func TestClosedBatchEquivalence(t *testing.T) {
	t4, err := workload.Table4Mix()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "pairwise-table4", t4, sched.NewPairwise())
	checkGolden(t, "oracle-table4", t4, sched.NewOracle())

	sc, err := workload.ScenarioByLabel("L5")
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.RandomMix(sc, rand.New(rand.NewSource(42)))
	model, err := moe.TrainDefault(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "moe-l5-seed42", mix, sched.NewMoE(model, rand.New(rand.NewSource(9))))
	checkGolden(t, "isolated-l5-seed42", mix, sched.NewIsolated())
}

// openGolden holds per-run reference values captured from the open-system
// engine before the heterogeneous-cluster refactor (per-node specs, node
// lifecycle events, scored placement). A homogeneous default fleet with no
// node events must reproduce them bit-for-bit.
type openGolden struct {
	makespan              float64
	oom                   int
	meanWait, p95, thrput float64
	done                  []float64
}

var openSystemGoldens = map[string]openGolden{
	"oracle-poisson80-seed11": {
		makespan: 1703.331663, oom: 0,
		meanWait: 0.4486968565, p95: 495.2148337, thrput: 63.52446148,
		done: []float64{15.81457191, 546.8521394, 379.3690094, 272.8867105, 537.5612417, 358.4781837, 727.9098667, 383.4156746, 535.928136, 432.6498817, 708.2466731, 459.0676997, 554.8949554, 754.5034805, 1159.898369, 1045.289241, 1083.27491, 721.1860577, 785.1834539, 976.5814021, 1269.586152, 1153.87369, 1013.064637, 1265.452975, 1217.010166, 1103.564982, 1209.417948, 1480.369801, 1703.331663, 1640.54495},
	},
	"pairwise-poisson80-seed11": {
		makespan: 1832.874482, oom: 0,
		meanWait: 114.4511887, p95: 606.8697646, thrput: 59.02686687,
		done: []float64{15.81457191, 551.447659, 374.179373, 268.6884133, 477.7373781, 356.5300886, 733.9133105, 384.57845, 596.5220378, 562.523259, 796.6866685, 565.598859, 563.516299, 758.1911831, 1348.212418, 1227.970867, 1087.232123, 1100.013661, 1100.412123, 1367.114644, 1544.865642, 1391.23252, 1241.150867, 1473.683717, 1501.710652, 1360.898695, 1361.419418, 1614.143925, 1832.874482, 1822.544541},
	},
}

func checkOpenGolden(t *testing.T, label string, s cluster.Scheduler) {
	t.Helper()
	g, ok := openSystemGoldens[label]
	if !ok {
		t.Fatalf("no open-system golden named %q", label)
	}
	arrivals, err := workload.PoissonArrivals(30, 80.0/3600, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.DefaultConfig())
	res, err := c.RunOpen(cluster.Submissions(arrivals), s)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	q, err := metrics.Queueing(res, 0)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if !relClose(res.MakespanSec, g.makespan) {
		t.Errorf("%s: makespan = %.10g, golden %.10g", label, res.MakespanSec, g.makespan)
	}
	if res.OOMKills != g.oom {
		t.Errorf("%s: OOM kills = %d, golden %d", label, res.OOMKills, g.oom)
	}
	if res.FailKills != 0 {
		t.Errorf("%s: fail kills = %d without node events", label, res.FailKills)
	}
	if !relClose(q.MeanWaitSec, g.meanWait) {
		t.Errorf("%s: mean wait = %.10g, golden %.10g", label, q.MeanWaitSec, g.meanWait)
	}
	if !relClose(q.P95SojournSec, g.p95) {
		t.Errorf("%s: p95 sojourn = %.10g, golden %.10g", label, q.P95SojournSec, g.p95)
	}
	if !relClose(q.ThroughputJobsPerHour, g.thrput) {
		t.Errorf("%s: throughput = %.10g, golden %.10g", label, q.ThroughputJobsPerHour, g.thrput)
	}
	if len(res.Apps) != len(g.done) {
		t.Fatalf("%s: %d apps, golden %d", label, len(res.Apps), len(g.done))
	}
	for i, a := range res.Apps {
		if !relClose(a.DoneTime, g.done[i]) {
			t.Errorf("%s: app %d done at %.10g, golden %.10g", label, i, a.DoneTime, g.done[i])
		}
	}
}

// TestOpenSystemEquivalence locks RunOpen on a homogeneous default fleet to
// the results the pre-heterogeneity engine produced.
func TestOpenSystemEquivalence(t *testing.T) {
	checkOpenGolden(t, "oracle-poisson80-seed11", sched.NewOracle())
	checkOpenGolden(t, "pairwise-poisson80-seed11", sched.NewPairwise())
}

// tenantsGolden pins a multi-tenant run: a classed Poisson stream under the
// priority-wrapped Oracle scheme with preemption enabled, captured when
// priority classes landed. Admission order, preemption decisions and
// charge-back must stay bit-for-bit reproducible.
var tenantsGolden = struct {
	makespan          float64
	preemptKills, oom int
	latP99, batchP99  float64
	latWait           float64
	classes           string // per-app class sequence, L = latency, b = batch
	done              []float64
}{
	makespan: 1554.06805, preemptKills: 8, oom: 0,
	latP99: 442.7090244, batchP99: 1145.863258, latWait: 0,
	classes: "bbbbbbLbbbLbbbLbbbbLbbbbLbbbLLbbbLLbbbbL",
	done:    []float64{326.9548549, 245.8397026, 100.8435453, 300.9121256, 363.3193996, 354.6640252, 459.6863443, 199.8301064, 345.308344, 684.0177012, 517.7309101, 946.6359375, 463.0377199, 591.6770931, 593.3028233, 357.3863326, 1212.58876, 1061.096165, 1533.018337, 837.3291439, 473.1501443, 637.5221176, 1073.996204, 1554.06805, 511.2523722, 1079.816785, 528.0992815, 1071.657629, 905.9416862, 792.8753593, 1434.828366, 693.9812541, 1285.128319, 738.5629881, 750.184954, 1295.072867, 1011.964448, 916.1161662, 1216.283259, 1147.846319},
}

// TestTenantsMixGolden locks the classed open-system path (weighted
// admission, class-aware placement, preemption with charge-back) to the
// results captured when the multi-tenant engine landed.
func TestTenantsMixGolden(t *testing.T) {
	g := tenantsGolden
	rng := rand.New(rand.NewSource(19))
	arrivals, err := workload.PoissonArrivals(40, 200.0/3600, rng)
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := workload.TagArrivals(arrivals, workload.LatencyBatchMix(0.3), rng)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.DefaultConfig())
	res, err := c.RunOpen(cluster.Submissions(tagged), sched.NewPriority(sched.NewOracle(), true))
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(res.MakespanSec, g.makespan) {
		t.Errorf("makespan = %.10g, golden %.10g", res.MakespanSec, g.makespan)
	}
	if res.PreemptKills != g.preemptKills {
		t.Errorf("preempt kills = %d, golden %d", res.PreemptKills, g.preemptKills)
	}
	if res.OOMKills != g.oom {
		t.Errorf("OOM kills = %d, golden %d", res.OOMKills, g.oom)
	}
	if len(res.Apps) != len(g.done) {
		t.Fatalf("%d apps, golden %d", len(res.Apps), len(g.done))
	}
	for i, a := range res.Apps {
		if !relClose(a.DoneTime, g.done[i]) {
			t.Errorf("app %d done at %.10g, golden %.10g", i, a.DoneTime, g.done[i])
		}
		want := "batch"
		if g.classes[i] == 'L' {
			want = "latency"
		}
		if a.Class.Name != want {
			t.Errorf("app %d classed %q, golden %q", i, a.Class.Name, want)
		}
	}
	qs, err := metrics.QueueingByClass(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0].Class != "latency" || qs[1].Class != "batch" {
		t.Fatalf("class metrics order broken: %+v", qs)
	}
	if !relClose(qs[0].P99SojournSec, g.latP99) {
		t.Errorf("latency p99 = %.10g, golden %.10g", qs[0].P99SojournSec, g.latP99)
	}
	if qs[0].MeanWaitSec != g.latWait {
		t.Errorf("latency mean wait = %.10g, golden %.10g (preemption starts the class instantly here)",
			qs[0].MeanWaitSec, g.latWait)
	}
	if !relClose(qs[1].P99SojournSec, g.batchP99) {
		t.Errorf("batch p99 = %.10g, golden %.10g", qs[1].P99SojournSec, g.batchP99)
	}
	if qs[1].PreemptKills != g.preemptKills {
		t.Errorf("batch absorbed %d preempt kills, golden %d", qs[1].PreemptKills, g.preemptKills)
	}
}

// TestFirstFitPlacerMatchesDefault pins the Placer refactor: a Dispatcher
// with the explicit first-fit Placer must place exactly like the nil
// (historical scan-order) default, bit-for-bit.
func TestFirstFitPlacerMatchesDefault(t *testing.T) {
	t4, err := workload.Table4Mix()
	if err != nil {
		t.Fatal(err)
	}
	run := func(p sched.Placer) *cluster.Result {
		d := sched.NewOracle()
		d.Placer = p
		c := cluster.New(cluster.DefaultConfig())
		res, err := c.Run(t4, d)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	legacy := run(nil)
	scored := run(sched.NewFirstFit())
	if legacy.MakespanSec != scored.MakespanSec {
		t.Errorf("makespan %v (nil placer) vs %v (first-fit placer)", legacy.MakespanSec, scored.MakespanSec)
	}
	for i := range legacy.Apps {
		if legacy.Apps[i].DoneTime != scored.Apps[i].DoneTime {
			t.Errorf("app %d done %v vs %v", i, legacy.Apps[i].DoneTime, scored.Apps[i].DoneTime)
		}
	}
}

// TestHomogeneousHeteroConstructorEquivalence pins NewHetero with 40 default
// specs to New's results: per-node capacity math must not perturb the
// homogeneous path.
func TestHomogeneousHeteroConstructorEquivalence(t *testing.T) {
	t4, err := workload.Table4Mix()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.DefaultConfig()
	c1 := cluster.New(cfg)
	r1, err := c1.Run(t4, sched.NewOracle())
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]cluster.NodeSpec, cfg.Nodes)
	for i := range specs {
		specs[i] = cfg.DefaultNodeSpec()
	}
	c2, err := cluster.NewHetero(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c2.Run(t4, sched.NewOracle())
	if err != nil {
		t.Fatal(err)
	}
	if r1.MakespanSec != r2.MakespanSec {
		t.Errorf("makespan %v (New) vs %v (NewHetero)", r1.MakespanSec, r2.MakespanSec)
	}
	for i := range r1.Apps {
		if r1.Apps[i].DoneTime != r2.Apps[i].DoneTime {
			t.Errorf("app %d done %v vs %v", i, r1.Apps[i].DoneTime, r2.Apps[i].DoneTime)
		}
	}
}

// TestRunMatchesRunOpenAtTimeZero pins the wrapper relationship directly:
// submitting everything at t=0 through RunOpen is bit-identical to Run.
func TestRunMatchesRunOpenAtTimeZero(t *testing.T) {
	t4, err := workload.Table4Mix()
	if err != nil {
		t.Fatal(err)
	}
	c1 := cluster.New(cluster.DefaultConfig())
	r1, err := c1.Run(t4, sched.NewOracle())
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]cluster.Submission, len(t4))
	for i, j := range t4 {
		subs[i] = cluster.Submission{At: 0, Job: j}
	}
	c2 := cluster.New(cluster.DefaultConfig())
	r2, err := c2.RunOpen(subs, sched.NewOracle())
	if err != nil {
		t.Fatal(err)
	}
	if r1.MakespanSec != r2.MakespanSec {
		t.Errorf("makespan %v vs %v", r1.MakespanSec, r2.MakespanSec)
	}
	for i := range r1.Apps {
		if r1.Apps[i].DoneTime != r2.Apps[i].DoneTime {
			t.Errorf("app %d done %v vs %v", i, r1.Apps[i].DoneTime, r2.Apps[i].DoneTime)
		}
	}
}
