module moespark

go 1.24
