// Package features implements the paper's runtime feature pipeline: the 22
// raw features of Table 2 (collected in the real system via vmstat, Linux
// perf and PAPI), min-max scaling to [0,1] with bounds persisted from
// training, PCA reduction to the top components covering >=95 % of variance,
// and Varimax-based attribution of variance back to raw features (Figure 4).
package features

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"moespark/internal/mathx"
)

// NumRaw is the number of raw runtime features (Table 2).
const NumRaw = 22

// Indices of the raw features, in the paper's importance order (Table 2).
const (
	L1TCM  = iota // L1 total cache miss rate
	L1DCM         // L1 data cache miss rate
	VCache        // % of memory used as cache
	L1STM         // L1 cache store miss rate
	BO            // blocks sent per second
	L2TCM         // L2 total cache miss rate
	L3TCM         // L3 total cache miss rate
	CS            // context switches per second
	FLOPS         // floating point operations per second
	IN            // interrupts per second
	L2DCM         // L2 data cache miss rate
	L2LDM         // L2 cache load miss rate
	L1ICM         // L1 instruction cache miss rate
	SWPD          // % of virtual memory used
	L2STM         // L2 cache store miss rate
	IPC           // instructions per cycle
	L1LDM         // L1 cache load miss rate
	L2ICM         // L2 instruction cache miss rate
	ID            // % of idle time
	WA            // % of time waiting on IO
	US            // % spent on user time
	SY            // % spent on kernel time
)

// Names holds the abbreviation of each raw feature, indexed by the constants
// above.
var Names = [NumRaw]string{
	"L1_TCM", "L1_DCM", "vcache", "L1_STM", "bo", "L2_TCM", "L3_TCM", "cs",
	"FLOPs", "in", "L2_DCM", "L2_LDM", "L1_ICM", "swpd", "L2_STM", "IPC",
	"L1_LDM", "L2_ICM", "ID", "WA", "US", "SY",
}

// Descriptions holds the human-readable description of each raw feature.
var Descriptions = [NumRaw]string{
	"L1 total cache miss rate", "L1 data cache miss rate",
	"% of memory used as cache", "L1 cache store miss rate",
	"# blocks sent (/s)", "L2 total cache miss rate",
	"L3 total cache miss rate", "# context switches / s",
	"# floating point operations / s", "# interrupts / s",
	"L2 data cache miss rate", "L2 cache load miss rate",
	"L1 instr. cache miss rate", "% of virtual memory used",
	"L2 cache store miss rate", "instructions per cycle",
	"L1 cache load miss rate", "L2 instr. cache miss rate",
	"% of idle time", "% of time on IO waiting",
	"% spent on user time", "% spent on kernel time",
}

// Vector is one raw feature observation.
type Vector [NumRaw]float64

// Scaler rescales each raw feature to [0,1] using per-feature bounds found at
// training time; unseen runtime values are clamped into the training range,
// exactly as the paper records min/max at training and reuses them at
// deployment.
type Scaler struct {
	Min, Max Vector
}

// FitScaler computes per-feature min/max bounds over the training samples.
func FitScaler(samples []Vector) (*Scaler, error) {
	if len(samples) == 0 {
		return nil, errors.New("features: no samples to fit scaler")
	}
	s := &Scaler{Min: samples[0], Max: samples[0]}
	for _, v := range samples[1:] {
		for i, x := range v {
			if x < s.Min[i] {
				s.Min[i] = x
			}
			if x > s.Max[i] {
				s.Max[i] = x
			}
		}
	}
	return s, nil
}

// Apply scales one raw vector into [0,1]^22, clamping out-of-range values.
// Features that were constant during training map to 0.
func (s *Scaler) Apply(v Vector) Vector {
	var out Vector
	for i, x := range v {
		span := s.Max[i] - s.Min[i]
		if span <= 0 {
			out[i] = 0
			continue
		}
		out[i] = mathx.Clamp((x-s.Min[i])/span, 0, 1)
	}
	return out
}

// Pipeline is the full trained feature pipeline: scaling followed by PCA
// projection. It is fitted once offline and persisted for runtime use.
type Pipeline struct {
	Scaler *Scaler
	PCA    *mathx.PCA
}

// PipelineConfig controls fitting. The zero value requests the paper's
// setting: as many PCs as needed for 95 % variance, capped at 5.
type PipelineConfig struct {
	// Components fixes the number of PCs; 0 means derive from VarianceTarget.
	Components int
	// VarianceTarget is the fraction of variance to retain when Components
	// is 0. Defaults to 0.95.
	VarianceTarget float64
	// MaxComponents caps the derived number of components. Defaults to 5.
	MaxComponents int
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.VarianceTarget == 0 {
		c.VarianceTarget = 0.95
	}
	if c.MaxComponents == 0 {
		c.MaxComponents = 5
	}
	return c
}

// FitPipeline fits the scaler and PCA on the training samples.
func FitPipeline(samples []Vector, cfg PipelineConfig) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	if len(samples) < 2 {
		return nil, errors.New("features: need at least 2 samples to fit pipeline")
	}
	scaler, err := FitScaler(samples)
	if err != nil {
		return nil, err
	}
	x := mathx.NewMatrix(len(samples), NumRaw)
	for i, v := range samples {
		scaled := scaler.Apply(v)
		copy(x.Data[i*NumRaw:(i+1)*NumRaw], scaled[:])
	}
	k := cfg.Components
	pca, err := mathx.FitPCA(x, k, cfg.VarianceTarget)
	if err != nil {
		return nil, fmt.Errorf("features: fitting PCA: %w", err)
	}
	if k <= 0 && pca.K > cfg.MaxComponents {
		// Refit with the hard cap (cheap: same eigen decomposition size).
		pca, err = mathx.FitPCA(x, cfg.MaxComponents, 0)
		if err != nil {
			return nil, fmt.Errorf("features: refitting capped PCA: %w", err)
		}
	}
	return &Pipeline{Scaler: scaler, PCA: pca}, nil
}

// Transform maps one raw runtime vector to principal-component space.
func (p *Pipeline) Transform(v Vector) ([]float64, error) {
	scaled := p.Scaler.Apply(v)
	return p.PCA.Transform(scaled[:])
}

// Components returns the number of PCs the pipeline keeps.
func (p *Pipeline) Components() int { return p.PCA.K }

// Residual returns the reconstruction error of a raw vector: the Euclidean
// distance between its scaled form and the projection back from PC space.
// Points far off the training manifold can project close to a cluster while
// having a large residual, so confidence checks should include it.
func (p *Pipeline) Residual(v Vector) (float64, error) {
	scaled := p.Scaler.Apply(v)
	pcs, err := p.PCA.Transform(scaled[:])
	if err != nil {
		return 0, err
	}
	var sum float64
	for r := 0; r < NumRaw; r++ {
		recon := p.PCA.Mean[r]
		for c := 0; c < p.PCA.K; c++ {
			recon += p.PCA.Components.At(r, c) * pcs[c]
		}
		d := scaled[r] - recon
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

// ExplainedRatio exposes the per-PC variance fractions (Figure 4a).
func (p *Pipeline) ExplainedRatio() []float64 { return p.PCA.ExplainedRatio() }

// Importance is the contribution of one raw feature to the retained PCA
// space, computed from Varimax-rotated loadings (Figure 4b).
type Importance struct {
	Feature int     // index into Names
	Name    string  // abbreviation
	Percent float64 // % contribution to retained variance
}

// Importances ranks all raw features by their contribution to the retained
// components, using the Varimax rotation to concentrate loadings. The
// loadings are eigenvalue-weighted (eigenvector * sqrt(variance)), the
// factor-analysis convention, so that high-variance components dominate the
// attribution the way they dominate the data.
func (p *Pipeline) Importances() []Importance {
	loadings := p.PCA.Components.Clone()
	for c := 0; c < loadings.Cols; c++ {
		ev := p.PCA.Explained[c]
		if ev < 0 {
			ev = 0
		}
		w := math.Sqrt(ev)
		for r := 0; r < loadings.Rows; r++ {
			loadings.Set(r, c, loadings.At(r, c)*w)
		}
	}
	rotated := mathx.Varimax(loadings, 200, 1e-10)
	contrib := make([]float64, NumRaw)
	var total float64
	for r := 0; r < NumRaw; r++ {
		for c := 0; c < rotated.Cols; c++ {
			q := rotated.At(r, c) * rotated.At(r, c)
			contrib[r] += q
			total += q
		}
	}
	out := make([]Importance, NumRaw)
	for i := range out {
		pct := 0.0
		if total > 0 {
			pct = contrib[i] / total * 100
		}
		out[i] = Importance{Feature: i, Name: Names[i], Percent: pct}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Percent > out[b].Percent })
	return out
}
