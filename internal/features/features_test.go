package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomVector(r *rand.Rand) Vector {
	var v Vector
	for i := range v {
		v[i] = r.Float64() * 100
	}
	return v
}

func TestNamesAndDescriptionsComplete(t *testing.T) {
	for i := 0; i < NumRaw; i++ {
		if Names[i] == "" {
			t.Errorf("feature %d has no name", i)
		}
		if Descriptions[i] == "" {
			t.Errorf("feature %d has no description", i)
		}
	}
	// Spot-check the paper's ordering: cache features first, US/SY last.
	if Names[L1TCM] != "L1_TCM" || Names[SY] != "SY" || Names[VCache] != "vcache" {
		t.Error("feature ordering does not match Table 2")
	}
}

func TestFitScalerEmpty(t *testing.T) {
	if _, err := FitScaler(nil); err == nil {
		t.Fatal("expected error for empty sample set")
	}
}

func TestScalerBoundsAndClamp(t *testing.T) {
	a := Vector{}
	b := Vector{}
	for i := range a {
		a[i] = 0
		b[i] = 10
	}
	s, err := FitScaler([]Vector{a, b})
	if err != nil {
		t.Fatalf("FitScaler: %v", err)
	}
	mid := Vector{}
	for i := range mid {
		mid[i] = 5
	}
	scaled := s.Apply(mid)
	for i, v := range scaled {
		if v != 0.5 {
			t.Errorf("scaled[%d] = %v, want 0.5", i, v)
		}
	}
	// Out-of-range runtime values clamp to [0,1].
	over := Vector{}
	for i := range over {
		over[i] = 1000
	}
	for i, v := range s.Apply(over) {
		if v != 1 {
			t.Errorf("clamped[%d] = %v, want 1", i, v)
		}
	}
	under := Vector{}
	for i := range under {
		under[i] = -5
	}
	for i, v := range s.Apply(under) {
		if v != 0 {
			t.Errorf("clamped[%d] = %v, want 0", i, v)
		}
	}
}

func TestScalerConstantFeature(t *testing.T) {
	a := Vector{}
	b := Vector{}
	a[IPC] = 3
	b[IPC] = 3 // constant feature
	a[CS] = 1
	b[CS] = 2
	s, _ := FitScaler([]Vector{a, b})
	out := s.Apply(a)
	if out[IPC] != 0 {
		t.Errorf("constant feature should scale to 0, got %v", out[IPC])
	}
}

// Property: scaled training samples always lie in [0,1].
func TestScalerRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		samples := make([]Vector, n)
		for i := range samples {
			samples[i] = randomVector(r)
		}
		s, err := FitScaler(samples)
		if err != nil {
			return false
		}
		for _, v := range samples {
			for _, x := range s.Apply(v) {
				if x < 0 || x > 1 || math.IsNaN(x) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

func clusteredSamples(r *rand.Rand, n int) []Vector {
	// Three synthetic clusters that differ mainly in cache-miss features,
	// mimicking the structure the paper observes (Figure 16): programs with
	// the same memory-function family share a tight cache-behaviour
	// signature across several correlated counters.
	samples := make([]Vector, 0, n)
	for i := 0; i < n; i++ {
		var v Vector
		c := i % 3
		base := float64(c) * 30
		for j := range v {
			v[j] = r.Float64() * 2
		}
		for _, f := range []int{L1TCM, L1DCM, L1STM, VCache, L2TCM, L3TCM, CS, BO} {
			v[f] = base + r.Float64()*3
		}
		samples = append(samples, v)
	}
	return samples
}

func TestFitPipelineDefaults(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	p, err := FitPipeline(clusteredSamples(r, 30), PipelineConfig{})
	if err != nil {
		t.Fatalf("FitPipeline: %v", err)
	}
	if p.Components() < 1 || p.Components() > 5 {
		t.Errorf("components = %d, want 1..5", p.Components())
	}
	ratios := p.ExplainedRatio()
	if len(ratios) != NumRaw {
		t.Errorf("explained ratios = %d entries, want %d", len(ratios), NumRaw)
	}
	var sum float64
	for _, x := range ratios {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("explained ratios sum to %v, want 1", sum)
	}
}

func TestFitPipelineTooFewSamples(t *testing.T) {
	if _, err := FitPipeline([]Vector{{}}, PipelineConfig{}); err == nil {
		t.Fatal("expected error for a single sample")
	}
}

func TestPipelineTransformDims(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	p, err := FitPipeline(clusteredSamples(r, 24), PipelineConfig{Components: 3})
	if err != nil {
		t.Fatalf("FitPipeline: %v", err)
	}
	out, err := p.Transform(randomVector(r))
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if len(out) != 3 {
		t.Errorf("transform dims = %d, want 3", len(out))
	}
}

func TestPipelineSeparatesClusters(t *testing.T) {
	// Samples from the same cluster must be closer in PC space than samples
	// from different clusters (this is what makes the KNN selector work).
	r := rand.New(rand.NewSource(23))
	samples := clusteredSamples(r, 30)
	p, err := FitPipeline(samples, PipelineConfig{})
	if err != nil {
		t.Fatalf("FitPipeline: %v", err)
	}
	proj := make([][]float64, len(samples))
	for i, s := range samples {
		proj[i], err = p.Transform(s)
		if err != nil {
			t.Fatalf("Transform: %v", err)
		}
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	// Average intra-cluster distance must be well below average
	// inter-cluster distance (sample i belongs to cluster i%3).
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < len(proj); i++ {
		for j := i + 1; j < len(proj); j++ {
			d := dist(proj[i], proj[j])
			if i%3 == j%3 {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra >= inter {
		t.Errorf("avg intra-cluster distance %v >= inter-cluster %v", intra, inter)
	}
}

func TestImportancesRankCacheFeatures(t *testing.T) {
	// With cluster structure driven by cache-miss features, those features
	// must dominate the Varimax importance ranking (Figure 4b).
	r := rand.New(rand.NewSource(24))
	p, err := FitPipeline(clusteredSamples(r, 60), PipelineConfig{})
	if err != nil {
		t.Fatalf("FitPipeline: %v", err)
	}
	imp := p.Importances()
	if len(imp) != NumRaw {
		t.Fatalf("importances = %d entries, want %d", len(imp), NumRaw)
	}
	// Percentages sum to ~100 and are sorted descending.
	var sum float64
	for i, im := range imp {
		sum += im.Percent
		if i > 0 && im.Percent > imp[i-1].Percent {
			t.Error("importances not sorted descending")
		}
	}
	if math.Abs(sum-100) > 1e-6 {
		t.Errorf("importances sum to %v, want 100", sum)
	}
	driven := map[string]bool{
		"L1_TCM": true, "L1_DCM": true, "L1_STM": true, "vcache": true,
		"L2_TCM": true, "L3_TCM": true, "cs": true, "bo": true,
	}
	hits := 0
	for _, im := range imp[:5] {
		if driven[im.Name] {
			hits++
		}
	}
	if hits < 4 {
		t.Errorf("top-5 importances %v are not dominated by the discriminative features", imp[:5])
	}
}
