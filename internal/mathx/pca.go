package mathx

import (
	"errors"
	"fmt"
	"math"
)

// PCA is a fitted principal component analysis: a mean vector and a
// projection onto the leading components. It is fitted once on training data
// and then reused to transform unseen samples, exactly as the paper persists
// the PCA transformation matrix for runtime deployment.
type PCA struct {
	// Mean is the per-dimension mean of the training data.
	Mean []float64
	// Components holds one principal axis per column (dims x k).
	Components *Matrix
	// Explained holds the eigenvalue (variance) of every component of the
	// full decomposition, descending, not just the k kept ones.
	Explained []float64
	// K is the number of components kept.
	K int
}

// FitPCA fits a PCA on x (rows = samples, cols = dimensions) keeping k
// components. If k <= 0, enough components are kept to explain at least
// varTarget of the variance (the paper keeps the top 5 PCs / 95 %).
func FitPCA(x *Matrix, k int, varTarget float64) (*PCA, error) {
	if x.Rows < 2 {
		return nil, errors.New("mathx: PCA needs at least 2 samples")
	}
	cov, err := Covariance(x)
	if err != nil {
		return nil, err
	}
	eig, err := JacobiEigen(cov)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, v := range eig.Values {
		if v > 0 {
			total += v
		}
	}
	if k <= 0 {
		if varTarget <= 0 || varTarget > 1 {
			return nil, fmt.Errorf("mathx: invalid variance target %v", varTarget)
		}
		cum := 0.0
		k = len(eig.Values)
		for i, v := range eig.Values {
			if v > 0 {
				cum += v
			}
			if total > 0 && cum/total >= varTarget {
				k = i + 1
				break
			}
		}
	}
	if k > x.Cols {
		k = x.Cols
	}
	mean := make([]float64, x.Cols)
	for j := 0; j < x.Cols; j++ {
		var s float64
		for i := 0; i < x.Rows; i++ {
			s += x.At(i, j)
		}
		mean[j] = s / float64(x.Rows)
	}
	comp := NewMatrix(x.Cols, k)
	for c := 0; c < k; c++ {
		for r := 0; r < x.Cols; r++ {
			comp.Set(r, c, eig.Vectors.At(r, c))
		}
	}
	return &PCA{Mean: mean, Components: comp, Explained: eig.Values, K: k}, nil
}

// Transform projects a single sample onto the kept components.
func (p *PCA) Transform(sample []float64) ([]float64, error) {
	if len(sample) != len(p.Mean) {
		return nil, fmt.Errorf("mathx: PCA transform dim %d, want %d", len(sample), len(p.Mean))
	}
	centered := make([]float64, len(sample))
	for i, v := range sample {
		centered[i] = v - p.Mean[i]
	}
	out := make([]float64, p.K)
	for c := 0; c < p.K; c++ {
		var s float64
		for r := 0; r < len(centered); r++ {
			s += p.Components.At(r, c) * centered[r]
		}
		out[c] = s
	}
	return out, nil
}

// TransformAll projects every row of x.
func (p *PCA) TransformAll(x *Matrix) (*Matrix, error) {
	out := NewMatrix(x.Rows, p.K)
	for i := 0; i < x.Rows; i++ {
		t, err := p.Transform(x.Row(i))
		if err != nil {
			return nil, err
		}
		copy(out.Data[i*p.K:(i+1)*p.K], t)
	}
	return out, nil
}

// ExplainedRatio returns, for each component of the full decomposition, the
// fraction of total variance it explains (Figure 4a of the paper).
func (p *PCA) ExplainedRatio() []float64 {
	total := 0.0
	for _, v := range p.Explained {
		if v > 0 {
			total += v
		}
	}
	out := make([]float64, len(p.Explained))
	if total == 0 {
		return out
	}
	for i, v := range p.Explained {
		if v > 0 {
			out[i] = v / total
		}
	}
	return out
}

// Varimax applies the Kaiser Varimax rotation to a loadings matrix
// (features x factors) and returns the rotated loadings. It is used to
// attribute variance contributions back to raw features (Figure 4b).
func Varimax(loadings *Matrix, maxIter int, tol float64) *Matrix {
	l := loadings.Clone()
	p := l.Rows
	k := l.Cols
	if k < 2 {
		return l
	}
	prev := varimaxCriterion(l)
	for iter := 0; iter < maxIter; iter++ {
		for a := 0; a < k-1; a++ {
			for b := a + 1; b < k; b++ {
				var u, v2, num, den float64
				// Accumulate the rotation angle terms for the (a,b) plane.
				var sumU, sumV, sumUV, sumU2V2 float64
				for i := 0; i < p; i++ {
					x := l.At(i, a)
					y := l.At(i, b)
					u = x*x - y*y
					v2 = 2 * x * y
					sumU += u
					sumV += v2
					sumUV += u * v2
					sumU2V2 += u*u - v2*v2
				}
				num = 2 * (float64(p)*sumUV - sumU*sumV)
				den = float64(p)*sumU2V2 - (sumU*sumU - sumV*sumV)
				if math.Abs(num) < 1e-15 && math.Abs(den) < 1e-15 {
					continue
				}
				phi := 0.25 * math.Atan2(num, den)
				if math.Abs(phi) < 1e-12 {
					continue
				}
				c := math.Cos(phi)
				s := math.Sin(phi)
				for i := 0; i < p; i++ {
					x := l.At(i, a)
					y := l.At(i, b)
					l.Set(i, a, c*x+s*y)
					l.Set(i, b, -s*x+c*y)
				}
			}
		}
		cur := varimaxCriterion(l)
		if math.Abs(cur-prev) < tol {
			break
		}
		prev = cur
	}
	return l
}

// varimaxCriterion is the raw varimax objective: the sum over factors of the
// variance of squared loadings.
func varimaxCriterion(l *Matrix) float64 {
	p := float64(l.Rows)
	var total float64
	for c := 0; c < l.Cols; c++ {
		var sum, sumSq float64
		for r := 0; r < l.Rows; r++ {
			q := l.At(r, c) * l.At(r, c)
			sum += q
			sumSq += q * q
		}
		total += sumSq/p - (sum/p)*(sum/p)
	}
	return total
}
