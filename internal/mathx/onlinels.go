package mathx

import (
	"fmt"
	"math"
)

// OnlineLS is an incrementally-updatable least-squares fit: it maintains the
// normal equations XᵀX and Xᵀy as running sums, so one observation is folded
// in with O(dim²) work and the current coefficients can be solved for at any
// time without revisiting past data. With Forget == 1 the solution is exactly
// the batch least-squares fit of every observation seen so far; with
// Forget < 1 the sums decay geometrically before each update (recursive least
// squares with a forgetting factor), so the fit tracks a drifting
// relationship instead of averaging over all history.
type OnlineLS struct {
	dim    int
	forget float64
	count  float64
	xtx    []float64 // dim x dim, row-major
	xty    []float64
}

// NewOnlineLS returns an empty dim-coefficient fit. forget must lie in
// (0, 1]; 1 means no forgetting (pure batch equivalence).
func NewOnlineLS(dim int, forget float64) *OnlineLS {
	if dim <= 0 {
		panic(fmt.Sprintf("mathx: OnlineLS needs a positive dimension, got %d", dim))
	}
	if !(forget > 0 && forget <= 1) {
		panic(fmt.Sprintf("mathx: OnlineLS forgetting factor %v outside (0, 1]", forget))
	}
	return &OnlineLS{
		dim:    dim,
		forget: forget,
		xtx:    make([]float64, dim*dim),
		xty:    make([]float64, dim),
	}
}

// Add folds one observation (design row x, response y) into the fit.
// Non-finite observations are ignored rather than poisoning the sums.
func (o *OnlineLS) Add(x []float64, y float64) {
	if len(x) != o.dim {
		panic(fmt.Sprintf("mathx: OnlineLS row has dim %d, want %d", len(x), o.dim))
	}
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return
		}
	}
	if o.forget != 1 {
		for i := range o.xtx {
			o.xtx[i] *= o.forget
		}
		for i := range o.xty {
			o.xty[i] *= o.forget
		}
		o.count *= o.forget
	}
	for i := 0; i < o.dim; i++ {
		for j := 0; j < o.dim; j++ {
			o.xtx[i*o.dim+j] += x[i] * x[j]
		}
		o.xty[i] += x[i] * y
	}
	o.count++
}

// Count returns the effective number of observations: the plain count with
// Forget == 1, the geometrically-decayed weight of history otherwise.
func (o *OnlineLS) Count() float64 { return o.count }

// Coef solves the current normal equations and returns the coefficient
// vector. It fails when too few (effective) observations have been seen or
// the design is singular (e.g. every row identical).
func (o *OnlineLS) Coef() ([]float64, error) {
	if o.count < float64(o.dim) {
		return nil, fmt.Errorf("mathx: OnlineLS has %.1f effective observations, need %d", o.count, o.dim)
	}
	a := &Matrix{Rows: o.dim, Cols: o.dim, Data: o.xtx}
	return SolveLinear(a, o.xty)
}
