package mathx

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// GeoMean returns the geometric mean of xs. All values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Pearson returns the Pearson correlation coefficient between x and y.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("mathx: Pearson requires equal-length inputs")
	}
	if len(x) < 2 {
		return 0, errors.New("mathx: Pearson requires at least 2 points")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("mathx: Pearson undefined for constant input")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Euclidean returns the Euclidean distance between two equal-length vectors.
func Euclidean(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// MeanConfidence95 returns the mean of xs and the half-width of its 95 %
// confidence interval using the normal approximation. The paper replays each
// schedule until the 95 % CI bounds differ by less than 5 %.
func MeanConfidence95(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, math.Inf(1)
	}
	se := StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, 1.96 * se
}

// RelativeError returns |predicted-actual| / actual.
func RelativeError(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-actual) / math.Abs(actual)
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
