// Package mathx provides the dense linear algebra and statistics kernels
// used by the feature pipeline, the expert selector and the experiment
// harness: matrices, symmetric eigendecomposition (cyclic Jacobi), PCA,
// Varimax rotation, least squares and summary statistics.
//
// Everything is implemented with the standard library only and is sized for
// the small, dense problems that arise in this system (tens of samples,
// at most a few dozen dimensions).
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero-valued Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mathx: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from a slice of equal-length rows.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("mathx: no rows")
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("mathx: ragged rows: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("mathx: dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			rowK := other.Data[k*other.Cols : (k+1)*other.Cols]
			rowI := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, b := range rowK {
				rowI[j] += a * b
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("mathx: dimension mismatch %dx%d * vec(%d)", m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Covariance computes the sample covariance matrix of X, where the rows of X
// are observations and the columns are variables. The result is Cols x Cols.
func Covariance(x *Matrix) (*Matrix, error) {
	if x.Rows < 2 {
		return nil, errors.New("mathx: covariance needs at least 2 observations")
	}
	means := make([]float64, x.Cols)
	for j := 0; j < x.Cols; j++ {
		var s float64
		for i := 0; i < x.Rows; i++ {
			s += x.At(i, j)
		}
		means[j] = s / float64(x.Rows)
	}
	cov := NewMatrix(x.Cols, x.Cols)
	inv := 1.0 / float64(x.Rows-1)
	for a := 0; a < x.Cols; a++ {
		for b := a; b < x.Cols; b++ {
			var s float64
			for i := 0; i < x.Rows; i++ {
				s += (x.At(i, a) - means[a]) * (x.At(i, b) - means[b])
			}
			s *= inv
			cov.Set(a, b, s)
			cov.Set(b, a, s)
		}
	}
	return cov, nil
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// SolveLinear solves the square linear system A x = b using Gaussian
// elimination with partial pivoting. A and b are not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("mathx: SolveLinear requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("mathx: SolveLinear rhs length %d, want %d", len(b), n)
	}
	// Augmented working copy.
	aug := NewMatrix(n, n+1)
	for i := 0; i < n; i++ {
		copy(aug.Data[i*(n+1):i*(n+1)+n], a.Data[i*n:(i+1)*n])
		aug.Set(i, n, b[i])
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		maxAbs := math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-14 {
			return nil, errors.New("mathx: singular matrix")
		}
		if pivot != col {
			for j := col; j <= n; j++ {
				aug.Set(col, j, aug.At(col, j)+aug.At(pivot, j))
				aug.Set(pivot, j, aug.At(col, j)-aug.At(pivot, j))
				aug.Set(col, j, aug.At(col, j)-aug.At(pivot, j))
			}
		}
		pv := aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) / pv
			if f == 0 {
				continue
			}
			for j := col; j <= n; j++ {
				aug.Set(r, j, aug.At(r, j)-f*aug.At(col, j))
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := aug.At(i, n)
		for j := i + 1; j < n; j++ {
			s -= aug.At(i, j) * x[j]
		}
		x[i] = s / aug.At(i, i)
	}
	return x, nil
}

// LeastSquares solves the over-determined system A x ~= b in the
// least-squares sense via the normal equations (AᵀA)x = Aᵀb. It is adequate
// for the small, well-conditioned regression problems in this package.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("mathx: LeastSquares rows %d != rhs %d", a.Rows, len(b))
	}
	at := a.T()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	atb, err := at.MulVec(b)
	if err != nil {
		return nil, err
	}
	return SolveLinear(ata, atb)
}
