package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("NewMatrixFromRows: %v", err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("got %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestNewMatrixFromRowsRagged(t *testing.T) {
	if _, err := NewMatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
	if _, err := NewMatrixFromRows(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestMatrixTranspose(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims %dx%d, want 3x2", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Errorf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixMul(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatrixMulDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
	if _, err := a.MulVec([]float64{1, 2}); err == nil {
		t.Fatal("expected MulVec dimension error")
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	x, err := SolveLinear(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular matrix error")
	}
}

// Property: for random well-conditioned systems, SolveLinear(A, A*x) == x.
func TestSolveLinearRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonally dominant
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b, err := a.MulVec(x)
		if err != nil {
			return false
		}
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEqual(got[i], x[i], 1e-7) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquaresRecoversLine(t *testing.T) {
	// y = 3 + 2x with no noise should be recovered exactly.
	n := 20
	a := NewMatrix(n, 2)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i)
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 3 + 2*x
	}
	coef, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if !almostEqual(coef[0], 3, 1e-8) || !almostEqual(coef[1], 2, 1e-8) {
		t.Errorf("coef = %v, want [3 2]", coef)
	}
}

func TestCovarianceDiagonalIsVariance(t *testing.T) {
	x, _ := NewMatrixFromRows([][]float64{{1, 10}, {2, 20}, {3, 30}, {4, 40}})
	cov, err := Covariance(x)
	if err != nil {
		t.Fatalf("Covariance: %v", err)
	}
	// var(1,2,3,4) = 5/3
	if !almostEqual(cov.At(0, 0), 5.0/3.0, 1e-9) {
		t.Errorf("cov(0,0) = %v, want %v", cov.At(0, 0), 5.0/3.0)
	}
	if !cov.IsSymmetric(1e-12) {
		t.Error("covariance matrix must be symmetric")
	}
	// Perfectly correlated columns: cov(0,1) = 10*var.
	if !almostEqual(cov.At(0, 1), 10*5.0/3.0, 1e-9) {
		t.Errorf("cov(0,1) = %v", cov.At(0, 1))
	}
}

func TestCovarianceTooFewRows(t *testing.T) {
	x := NewMatrix(1, 3)
	if _, err := Covariance(x); err == nil {
		t.Fatal("expected error for single observation")
	}
}
