package mathx

import (
	"errors"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix: Values[i] is the
// i-th eigenvalue (descending) and the i-th column of Vectors is the
// corresponding unit eigenvector.
type Eigen struct {
	Values  []float64
	Vectors *Matrix
}

// JacobiEigen computes the eigendecomposition of the symmetric matrix a
// using the cyclic Jacobi rotation method. The input is not modified.
// Eigenpairs are returned sorted by descending eigenvalue.
func JacobiEigen(a *Matrix) (*Eigen, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, errors.New("mathx: JacobiEigen requires a square matrix")
	}
	if !a.IsSymmetric(1e-9) {
		return nil, errors.New("mathx: JacobiEigen requires a symmetric matrix")
	}
	w := a.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation G(p,q,theta) on both sides: W = GᵀWG.
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	// Extract and sort by descending eigenvalue.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })
	out := &Eigen{Values: make([]float64, n), Vectors: NewMatrix(n, n)}
	for col, p := range pairs {
		out.Values[col] = p.val
		for r := 0; r < n; r++ {
			out.Vectors.Set(r, col, v.At(r, p.idx))
		}
	}
	return out, nil
}
