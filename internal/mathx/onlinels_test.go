package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// With no forgetting, the incremental fit must reproduce the batch
// least-squares solution of the same data (both solve the same normal
// equations; sums accumulate in the same row order).
func TestOnlineLSMatchesBatchRefit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, dim = 40, 3
	rows := make([][]float64, n)
	y := make([]float64, n)
	ls := NewOnlineLS(dim, 1)
	for i := 0; i < n; i++ {
		x := []float64{1, rng.NormFloat64() * 3, rng.Float64() * 10}
		rows[i] = x
		y[i] = 2.5 + 0.7*x[1] - 1.3*x[2] + rng.NormFloat64()*0.05
		ls.Add(x, y[i])
	}
	a, err := NewMatrixFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := LeastSquares(a, y)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := ls.Coef()
	if err != nil {
		t.Fatal(err)
	}
	for j := range batch {
		if math.Abs(inc[j]-batch[j]) > 1e-9 {
			t.Errorf("coef[%d]: incremental %v, batch %v", j, inc[j], batch[j])
		}
	}
	if ls.Count() != n {
		t.Errorf("count %v, want %d", ls.Count(), n)
	}
}

// With a forgetting factor, the fit must track a drifting relationship: old
// observations from a different slope decay away and the solution converges
// to the current regime's coefficients.
func TestOnlineLSForgettingTracksDrift(t *testing.T) {
	ls := NewOnlineLS(2, 0.9)
	rng := rand.New(rand.NewSource(7))
	slope := func(m float64) {
		for i := 0; i < 60; i++ {
			x := 1 + rng.Float64()*9
			ls.Add([]float64{1, x}, m*x)
		}
	}
	slope(2) // old regime
	slope(5) // current regime
	coef, err := ls.Coef()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[1]-5) > 0.05 {
		t.Errorf("slope %v has not converged to the current regime's 5", coef[1])
	}

	noForget := NewOnlineLS(2, 1)
	rng = rand.New(rand.NewSource(7))
	slow := func(m float64) {
		for i := 0; i < 60; i++ {
			x := 1 + rng.Float64()*9
			noForget.Add([]float64{1, x}, m*x)
		}
	}
	slow(2)
	slow(5)
	flat, err := noForget.Coef()
	if err != nil {
		t.Fatal(err)
	}
	if flat[1] > 4.5 {
		t.Errorf("without forgetting the slope %v should stay dragged toward the old regime", flat[1])
	}
}

func TestOnlineLSErrors(t *testing.T) {
	ls := NewOnlineLS(2, 1)
	if _, err := ls.Coef(); err == nil {
		t.Error("Coef on an empty fit must fail")
	}
	ls.Add([]float64{1, 2}, 3)
	if _, err := ls.Coef(); err == nil {
		t.Error("Coef with fewer observations than coefficients must fail")
	}
	// A singular design (identical rows) must be rejected, not produce NaNs.
	ls.Add([]float64{1, 2}, 3)
	ls.Add([]float64{1, 2}, 3)
	if _, err := ls.Coef(); err == nil {
		t.Error("Coef on a singular design must fail")
	}
	// Non-finite observations are ignored.
	before := ls.Count()
	ls.Add([]float64{1, math.NaN()}, 1)
	ls.Add([]float64{1, 1}, math.Inf(1))
	if ls.Count() != before {
		t.Error("non-finite observations must be ignored")
	}
}
