package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJacobiEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a, _ := NewMatrixFromRows([][]float64{{2, 1}, {1, 2}})
	eig, err := JacobiEigen(a)
	if err != nil {
		t.Fatalf("JacobiEigen: %v", err)
	}
	if !almostEqual(eig.Values[0], 3, 1e-10) || !almostEqual(eig.Values[1], 1, 1e-10) {
		t.Errorf("eigenvalues = %v, want [3 1]", eig.Values)
	}
}

func TestJacobiEigenRejectsNonSymmetric(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := JacobiEigen(a); err == nil {
		t.Fatal("expected error for non-symmetric input")
	}
	b := NewMatrix(2, 3)
	if _, err := JacobiEigen(b); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestJacobiEigenDiagonal(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{5, 0, 0}, {0, -2, 0}, {0, 0, 9}})
	eig, err := JacobiEigen(a)
	if err != nil {
		t.Fatalf("JacobiEigen: %v", err)
	}
	want := []float64{9, 5, -2}
	for i := range want {
		if !almostEqual(eig.Values[i], want[i], 1e-12) {
			t.Errorf("values[%d] = %v, want %v", i, eig.Values[i], want[i])
		}
	}
}

// Property: for random symmetric matrices, A v = lambda v for every pair, the
// eigenvector matrix is orthonormal, and the trace equals the eigenvalue sum.
func TestJacobiEigenProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		eig, err := JacobiEigen(a)
		if err != nil {
			return false
		}
		// Trace check.
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += eig.Values[i]
		}
		if !almostEqual(trace, sum, 1e-8) {
			return false
		}
		// Residual check for each eigenpair.
		for c := 0; c < n; c++ {
			v := eig.Vectors.Col(c)
			av, err := a.MulVec(v)
			if err != nil {
				return false
			}
			for i := 0; i < n; i++ {
				if !almostEqual(av[i], eig.Values[c]*v[i], 1e-7) {
					return false
				}
			}
			// Unit norm.
			var norm float64
			for _, x := range v {
				norm += x * x
			}
			if !almostEqual(norm, 1, 1e-8) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPCAOnCorrelatedData(t *testing.T) {
	// Two perfectly correlated dimensions plus one noise dimension: the
	// first PC must capture nearly all variance of the correlated pair.
	r := rand.New(rand.NewSource(1))
	n := 200
	x := NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		v := r.NormFloat64() * 10
		x.Set(i, 0, v)
		x.Set(i, 1, v)
		x.Set(i, 2, r.NormFloat64()*0.01)
	}
	pca, err := FitPCA(x, 0, 0.95)
	if err != nil {
		t.Fatalf("FitPCA: %v", err)
	}
	if pca.K != 1 {
		t.Errorf("K = %d, want 1 (one dominant direction)", pca.K)
	}
	ratio := pca.ExplainedRatio()
	if ratio[0] < 0.99 {
		t.Errorf("first PC explains %v, want > 0.99", ratio[0])
	}
}

func TestPCATransformDimensions(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x := NewMatrix(30, 6)
	for i := range x.Data {
		x.Data[i] = r.Float64()
	}
	pca, err := FitPCA(x, 4, 0)
	if err != nil {
		t.Fatalf("FitPCA: %v", err)
	}
	out, err := pca.Transform(x.Row(0))
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if len(out) != 4 {
		t.Errorf("transform output dim %d, want 4", len(out))
	}
	if _, err := pca.Transform([]float64{1}); err == nil {
		t.Error("expected dimension error")
	}
	all, err := pca.TransformAll(x)
	if err != nil {
		t.Fatalf("TransformAll: %v", err)
	}
	if all.Rows != 30 || all.Cols != 4 {
		t.Errorf("TransformAll dims %dx%d, want 30x4", all.Rows, all.Cols)
	}
}

// Property: PCA projection preserves pairwise distances when all components
// are kept (it is an orthogonal transform after centering).
func TestPCAFullRankPreservesDistances(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := NewMatrix(40, 5)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	pca, err := FitPCA(x, 5, 0)
	if err != nil {
		t.Fatalf("FitPCA: %v", err)
	}
	a, _ := pca.Transform(x.Row(3))
	b, _ := pca.Transform(x.Row(17))
	orig := Euclidean(x.Row(3), x.Row(17))
	proj := Euclidean(a, b)
	if !almostEqual(orig, proj, 1e-8) {
		t.Errorf("distance not preserved: %v vs %v", orig, proj)
	}
}

func TestVarimaxPreservesCommunalities(t *testing.T) {
	// Varimax is an orthogonal rotation: row communalities (sum of squared
	// loadings) must be invariant.
	r := rand.New(rand.NewSource(4))
	l := NewMatrix(10, 3)
	for i := range l.Data {
		l.Data[i] = r.NormFloat64()
	}
	before := make([]float64, l.Rows)
	for i := 0; i < l.Rows; i++ {
		for j := 0; j < l.Cols; j++ {
			before[i] += l.At(i, j) * l.At(i, j)
		}
	}
	rot := Varimax(l, 100, 1e-10)
	for i := 0; i < rot.Rows; i++ {
		var after float64
		for j := 0; j < rot.Cols; j++ {
			after += rot.At(i, j) * rot.At(i, j)
		}
		if !almostEqual(before[i], after, 1e-8) {
			t.Errorf("communality changed for row %d: %v -> %v", i, before[i], after)
		}
	}
}

func TestVarimaxImprovesCriterion(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	l := NewMatrix(12, 4)
	for i := range l.Data {
		l.Data[i] = r.NormFloat64()
	}
	before := varimaxCriterion(l)
	rot := Varimax(l, 200, 1e-12)
	after := varimaxCriterion(rot)
	if after+1e-12 < before {
		t.Errorf("varimax decreased criterion: %v -> %v", before, after)
	}
}

func TestVarimaxSingleFactorNoop(t *testing.T) {
	l := NewMatrix(5, 1)
	for i := range l.Data {
		l.Data[i] = float64(i)
	}
	rot := Varimax(l, 10, 1e-9)
	for i := range l.Data {
		if rot.Data[i] != l.Data[i] {
			t.Fatal("single-factor varimax must be a no-op")
		}
	}
}

func TestStatsBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !almostEqual(StdDev(xs), math.Sqrt(2.5), 1e-12) {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
	if Median(xs) != 3 {
		t.Errorf("Median = %v", Median(xs))
	}
	if !almostEqual(GeoMean([]float64{1, 4}), 2, 1e-12) {
		t.Errorf("GeoMean = %v", GeoMean([]float64{1, 4}))
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with non-positive input should be 0")
	}
	lo, hi := MinMax(xs)
	if lo != 1 || hi != 5 {
		t.Errorf("MinMax = %v,%v", lo, hi)
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Error("percentile extremes wrong")
	}
	if !almostEqual(Percentile(xs, 25), 2, 1e-12) {
		t.Errorf("P25 = %v", Percentile(xs, 25))
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("r = %v, want 1", r)
	}
	yneg := []float64{8, 6, 4, 2}
	r, _ = Pearson(x, yneg)
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("r = %v, want -1", r)
	}
	if _, err := Pearson(x, []float64{1}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("expected constant-input error")
	}
}

func TestRelativeErrorAndClamp(t *testing.T) {
	if !almostEqual(RelativeError(105, 100), 0.05, 1e-12) {
		t.Error("RelativeError(105,100)")
	}
	if RelativeError(0, 0) != 0 {
		t.Error("RelativeError(0,0) should be 0")
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Error("RelativeError(1,0) should be +Inf")
	}
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp behavior wrong")
	}
}

func TestMeanConfidence95(t *testing.T) {
	xs := []float64{10, 10, 10, 10}
	m, hw := MeanConfidence95(xs)
	if m != 10 || hw != 0 {
		t.Errorf("constant data: mean=%v hw=%v", m, hw)
	}
	_, hw = MeanConfidence95([]float64{1})
	if !math.IsInf(hw, 1) {
		t.Error("single sample should give infinite half-width")
	}
}
