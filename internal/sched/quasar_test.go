package sched

import (
	"math"
	"math/rand"
	"testing"

	"moespark/internal/cluster"
	"moespark/internal/workload"
)

func TestQuasarModelTransfersCurves(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	q, err := TrainQuasar(workload.TrainingSet(), rng)
	if err != nil {
		t.Fatal(err)
	}
	// A training program queried with fresh (noisy) counters should get a
	// near-exact curve back (its own profile).
	b, _ := workload.Find("HB.PageRank")
	fn, err := q.Curve(b.Counters(rng))
	if err != nil {
		t.Fatal(err)
	}
	if fn.Family != b.Truth.Family {
		t.Errorf("transferred family %v, want %v", fn.Family, b.Truth.Family)
	}
	got := q.Footprint(b.Counters(rng), 62.5)
	truth := b.Footprint(62.5)
	if math.Abs(got-truth)/truth > 0.10 {
		t.Errorf("self-transfer error %.1f%%", math.Abs(got-truth)/truth*100)
	}
}

func TestQuasarCoarserThanCalibratedMixture(t *testing.T) {
	// Quasar transfers a neighbour's coefficients without calibration: mean
	// error over the full catalogue should be clearly worse than the MoE's
	// ~5 % but not pathological.
	rng := rand.New(rand.NewSource(302))
	q, err := TrainQuasar(workload.TrainingSet(), rng)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var n int
	for _, b := range workload.Catalog() {
		for _, x := range []float64{5, 25, 62.5} {
			truth := b.Footprint(x)
			if truth <= 0 {
				continue
			}
			pred := q.Footprint(b.Counters(rng), x)
			sum += math.Abs(pred-truth) / truth
			n++
		}
	}
	mean := sum / float64(n)
	if mean < 0.05 {
		t.Errorf("Quasar mean error %.1f%% suspiciously low (should be coarser than the mixture)", mean*100)
	}
	if mean > 0.60 {
		t.Errorf("Quasar mean error %.1f%% pathologically high", mean*100)
	}
}

func TestTrainQuasarValidation(t *testing.T) {
	if _, err := TrainQuasar(nil, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("empty training set must error")
	}
}

func TestUnifiedANNBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	ann, err := TrainUnifiedANN(workload.TrainingSet(), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions are positive and finite across the catalogue and sweep.
	for _, b := range workload.Catalog() {
		raw := b.Counters(rng)
		for _, x := range []float64{1, 30, 100} {
			y := ann.Footprint(raw, x)
			if y <= 0 || math.IsNaN(y) || math.IsInf(y, 0) || y > 500 {
				t.Fatalf("%s at %vGB: ANN predicted %v", b.FullName(), x, y)
			}
		}
	}
	if _, err := TrainUnifiedANN(nil, rng); err == nil {
		t.Fatal("empty training set must error")
	}
}

func TestDispatcherGrowthRestoresFairShare(t *testing.T) {
	// An executor squeezed into limited free memory must grow its data
	// allocation once the co-runner finishes and memory frees up.
	moeModel := moEModel(t, 304)
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 1
	cfg.MaxExecutorNodes = 1
	c := cluster.New(cfg)
	big, _ := workload.Find("SP.Pca")    // linear family, large footprint
	small, _ := workload.Find("HB.Scan") // exponential, small and quick
	jobs := []workload.Job{
		{Bench: small, InputGB: 10},
		{Bench: big, InputGB: 60},
	}
	res, err := c.Run(jobs, NewMoE(moeModel, rand.New(rand.NewSource(305))))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Apps {
		if a.Turnaround() <= 0 {
			t.Fatalf("app %d unfinished", a.ID)
		}
	}
}
