package sched

import (
	"math/rand"
	"testing"

	"moespark/internal/cluster"
	"moespark/internal/metrics"
	"moespark/internal/workload"
)

var (
	testBatchClass   = workload.Class{Name: "batch", Weight: 1, Preemptible: true}
	testLatencyClass = workload.Class{Name: "latency", Weight: 4}
)

// classedStream builds a Poisson stream tagged with the latency/batch mix.
func classedStream(t *testing.T, n int, ratePerHour float64, seed int64) []cluster.Submission {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	arrivals, err := workload.PoissonArrivals(n, ratePerHour/3600, rng)
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := workload.TagArrivals(arrivals, workload.LatencyBatchMix(0.3), rng)
	if err != nil {
		t.Fatal(err)
	}
	return cluster.Submissions(tagged)
}

// TestClassAwareScoreComposes checks the wrapper: no higher-weight co-runner
// means the inner score passes through untouched; a higher-weight co-runner
// pushes the candidate below every unpenalised node.
func TestClassAwareScoreComposes(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 2
	c := cluster.New(cfg)
	n0, n1 := c.Nodes()[0], c.Nodes()[1]

	hi := c.AddReadyApp(workload.Job{Bench: testBench(t), InputGB: 10})
	hi.Class = testLatencyClass
	if _, err := c.Spawn(hi, n0, 10, 10); err != nil {
		t.Fatal(err)
	}
	batch := c.AddReadyApp(workload.Job{Bench: testBench(t), InputGB: 10})
	batch.Class = testBatchClass

	inner := NewBestFitMemory()
	p := NewClassAware(inner)
	// Node 1 is empty: the wrapped score must equal the inner score exactly.
	if got, want := p.Score(c, batch, n1), inner.Score(c, batch, n1); got != want {
		t.Errorf("unpenalised score = %v, want inner %v", got, want)
	}
	// Node 0 hosts a higher-weight executor: it must rank below node 1 even
	// though best-fit prefers its tighter free memory.
	if inner.Score(c, batch, n0) <= inner.Score(c, batch, n1) {
		t.Fatal("test setup broken: best-fit should prefer the busier node")
	}
	if p.Score(c, batch, n0) >= p.Score(c, batch, n1) {
		t.Error("class-aware wrapper failed to demote the node hosting latency work")
	}
	// The latency app itself sees no penalty anywhere (nothing outranks it).
	if got, want := p.Score(c, hi, n1), inner.Score(c, hi, n1); got != want {
		t.Errorf("latency app score = %v, want inner %v", got, want)
	}
}

func testBench(t *testing.T) *workload.Benchmark {
	t.Helper()
	b, err := workload.Find("HB.Sort")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPrioritySingleClassIdentical pins the compose-with-anything contract:
// wrapping a policy in NewPriority must not change a single-class run at
// all, bit-for-bit.
func TestPrioritySingleClassIdentical(t *testing.T) {
	mix, err := workload.Table4Mix()
	if err != nil {
		t.Fatal(err)
	}
	plain := cluster.New(cluster.DefaultConfig())
	r1, err := plain.Run(mix, NewOracle())
	if err != nil {
		t.Fatal(err)
	}
	wrapped := cluster.New(cluster.DefaultConfig())
	r2, err := wrapped.Run(mix, NewPriority(NewOracle(), true))
	if err != nil {
		t.Fatal(err)
	}
	if r1.MakespanSec != r2.MakespanSec {
		t.Errorf("makespan %v (plain) vs %v (priority-wrapped)", r1.MakespanSec, r2.MakespanSec)
	}
	for i := range r1.Apps {
		if r1.Apps[i].DoneTime != r2.Apps[i].DoneTime {
			t.Errorf("app %d done %v vs %v", i, r1.Apps[i].DoneTime, r2.Apps[i].DoneTime)
		}
	}
	if r2.PreemptKills != 0 {
		t.Errorf("single-class run preempted %d executors", r2.PreemptKills)
	}
}

// TestNewPriorityLeavesInnerUntouched pins the wrapper's no-mutation
// contract: wrapping must not change the caller's dispatcher (its placer in
// particular), and wrapping twice must not stack penalties.
func TestNewPriorityLeavesInnerUntouched(t *testing.T) {
	d := NewOracle()
	placer := NewBestFitMemory()
	d.Placer = placer
	_ = NewPriority(d, true)
	if d.Placer != placer {
		t.Fatalf("NewPriority replaced the caller's placer with %T", d.Placer)
	}
	// The original dispatcher still runs exactly as configured.
	mix, err := workload.Table4Mix()
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.DefaultConfig())
	if _, err := c.Run(mix, d); err != nil {
		t.Fatal(err)
	}
}

// TestPriorityReuseAcrossRuns pins scheduler reuse: the one-shot preemption
// guard is per cluster, so running the same wrapper on a fresh cluster must
// preempt exactly like a fresh wrapper would.
func TestPriorityReuseAcrossRuns(t *testing.T) {
	s := NewPriority(NewOracle(), true)
	run := func() int {
		subs := classedStream(t, 40, 200, 19)
		c := cluster.New(cluster.DefaultConfig())
		res, err := c.RunOpen(subs, s)
		if err != nil {
			t.Fatal(err)
		}
		return res.PreemptKills
	}
	first, second := run(), run()
	if first == 0 {
		t.Fatal("stream should force preemption")
	}
	if second != first {
		t.Errorf("reused scheduler preempted %d executors, fresh run preempted %d", second, first)
	}
}

// TestPreemptionImprovesLatencyTail runs the same classed stream with and
// without preemption: preemption must fire (PreemptKills > 0 and charged
// back) and the latency class's sojourn tail must not get worse.
func TestPreemptionImprovesLatencyTail(t *testing.T) {
	run := func(preempt bool) (*cluster.Result, []metrics.ClassQueueMetrics) {
		subs := classedStream(t, 40, 200, 19)
		c := cluster.New(cluster.DefaultConfig())
		res, err := c.RunOpen(subs, NewPriority(NewOracle(), preempt))
		if err != nil {
			t.Fatal(err)
		}
		byClass, err := metrics.QueueingByClass(res, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res, byClass
	}
	resNo, qNo := run(false)
	resYes, qYes := run(true)
	if resNo.PreemptKills != 0 {
		t.Fatalf("preemption disabled but %d kills recorded", resNo.PreemptKills)
	}
	if resYes.PreemptKills == 0 {
		t.Fatal("preemption enabled but never fired; the stream should oversubscribe the fleet")
	}
	find := func(qs []metrics.ClassQueueMetrics, name string) metrics.ClassQueueMetrics {
		for _, q := range qs {
			if q.Class == name {
				return q
			}
		}
		t.Fatalf("class %q missing from %+v", name, qs)
		return metrics.ClassQueueMetrics{}
	}
	latNo, latYes := find(qNo, "latency"), find(qYes, "latency")
	if latYes.P99SojournSec > latNo.P99SojournSec {
		t.Errorf("latency p99 sojourn worsened under preemption: %.1f -> %.1f",
			latNo.P99SojournSec, latYes.P99SojournSec)
	}
	if kills := find(qYes, "batch").PreemptKills; kills != resYes.PreemptKills {
		t.Errorf("batch class absorbed %d preempt kills, run recorded %d", kills, resYes.PreemptKills)
	}
	// Every app still completes: preempted work is charged back, not lost.
	for _, a := range resYes.Apps {
		if a.DoneTime < 0 {
			t.Errorf("app %d (%s) never finished after preemption", a.ID, a.Class.Name)
		}
	}
}
