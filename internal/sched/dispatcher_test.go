package sched

import (
	"math"
	"math/rand"
	"testing"

	"moespark/internal/cluster"
	"moespark/internal/memfunc"
	"moespark/internal/workload"
)

// staticEstimator installs a fixed memory function for every app.
type staticEstimator struct {
	fn memfunc.Func
}

func (s staticEstimator) Name() string { return "static" }
func (s staticEstimator) Prepare(app *cluster.App) cluster.ProfilePlan {
	app.Estimate = funcEstimate(s.fn)
	return cluster.ProfilePlan{}
}
func (s staticEstimator) Estimate(app *cluster.App) (MemEstimate, bool) { return estimateOf(app) }

func singleNodeCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 1
	cfg.MaxExecutorNodes = 4
	return cluster.New(cfg)
}

func TestPlanReservesPredictedFootprint(t *testing.T) {
	// A well-fitting prediction reserves footprint*(1+margin) and allocates
	// the full fair share.
	c := singleNodeCluster(t)
	d := &Dispatcher{
		PolicyName:   "test",
		Est:          staticEstimator{fn: memfunc.Func{Family: memfunc.LinearPower, M: 1, B: 0.2}},
		SafetyMargin: 0.05,
	}
	b, _ := workload.Find("SP.Pca")
	jobs := []workload.Job{{Bench: b, InputGB: 40}}
	res, err := c.Run(jobs, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].State != cluster.StateDone {
		t.Fatal("app unfinished")
	}
}

func TestPlanShrinksToFreeMemory(t *testing.T) {
	// When the fair share's predicted footprint exceeds free memory, the
	// plan shrinks the allocation instead of refusing outright.
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 1
	cfg.MaxExecutorNodes = 1
	c := cluster.New(cfg)
	// Predicted footprint 1 + 2*x: the 100GB share would need 201GB.
	d := &Dispatcher{
		PolicyName: "test",
		Est:        staticEstimator{fn: memfunc.Func{Family: memfunc.LinearPower, M: 1, B: 2}},
	}
	b, _ := workload.Find("HB.Scan") // true footprint small; only the plan is big
	probe := &spawnProbe{inner: d}
	jobs := []workload.Job{{Bench: b, InputGB: 100}}
	if _, err := c.Run(jobs, probe); err != nil {
		t.Fatal(err)
	}
	if probe.firstItems <= 0 || probe.firstItems >= 100 {
		t.Errorf("first allocation %v, want shrunk into (0, 100)", probe.firstItems)
	}
	alloc := c.Config().AllocatableGB()
	if probe.firstReserve > alloc+1e-9 {
		t.Errorf("reserve %v exceeds allocatable %v", probe.firstReserve, alloc)
	}
}

// spawnProbe records the first executor spawn.
type spawnProbe struct {
	inner        cluster.Scheduler
	firstItems   float64
	firstReserve float64
	seen         bool
}

func (p *spawnProbe) Name() string { return p.inner.Name() }
func (p *spawnProbe) Prepare(c *cluster.Cluster, a *cluster.App) cluster.ProfilePlan {
	return p.inner.Prepare(c, a)
}
func (p *spawnProbe) Schedule(c *cluster.Cluster) {
	p.inner.Schedule(c)
	if p.seen {
		return
	}
	for _, n := range c.Nodes() {
		for _, e := range n.Executors {
			p.firstItems = e.ItemsGB
			p.firstReserve = e.ReservedGB
			p.seen = true
			return
		}
	}
}

func TestCheckCPUBlocksOversubscription(t *testing.T) {
	// With CheckCPU, aggregate demand on a node never exceeds 100%.
	moeModel := moEModel(t, 401)
	jobs := testJobs(t, "L8", 402)
	c := cluster.New(cluster.DefaultConfig())
	d := NewMoE(moeModel, rand.New(rand.NewSource(403)))
	probe := &cpuProbe{inner: d}
	if _, err := c.Run(jobs, probe); err != nil {
		t.Fatal(err)
	}
	if probe.maxDemand > 1.0+1e-9 {
		t.Errorf("max node CPU demand %v under CheckCPU", probe.maxDemand)
	}
}

type cpuProbe struct {
	inner     cluster.Scheduler
	maxDemand float64
}

func (p *cpuProbe) Name() string { return p.inner.Name() }
func (p *cpuProbe) Prepare(c *cluster.Cluster, a *cluster.App) cluster.ProfilePlan {
	return p.inner.Prepare(c, a)
}
func (p *cpuProbe) Schedule(c *cluster.Cluster) {
	p.inner.Schedule(c)
	for _, n := range c.Nodes() {
		if d := n.CPUDemand(); d > p.maxDemand {
			p.maxDemand = d
		}
	}
}

func TestFallbackReservationForUnestimatedApp(t *testing.T) {
	// An estimator that never installs an estimate must still run the app
	// with the default (half-node) reservation.
	c := singleNodeCluster(t)
	d := &Dispatcher{PolicyName: "test", Est: nilEstimator{}}
	b, _ := workload.Find("HB.Sort")
	jobs := []workload.Job{{Bench: b, InputGB: 20}}
	probe := &spawnProbe{inner: d}
	if _, err := c.Run(jobs, probe); err != nil {
		t.Fatal(err)
	}
	wantHalf := c.Config().AllocatableGB() / 2
	if math.Abs(probe.firstReserve-wantHalf) > 1e-6 {
		t.Errorf("fallback reserve %v, want half-node %v", probe.firstReserve, wantHalf)
	}
}

type nilEstimator struct{}

func (nilEstimator) Name() string                              { return "nil" }
func (nilEstimator) Prepare(*cluster.App) cluster.ProfilePlan  { return cluster.ProfilePlan{} }
func (nilEstimator) Estimate(*cluster.App) (MemEstimate, bool) { return MemEstimate{}, false }

func TestStarvationFallbackOnEmptyNode(t *testing.T) {
	// An estimator claiming nothing ever fits must not starve the app: on an
	// empty node the dispatcher falls back to the default reservation.
	c := singleNodeCluster(t)
	d := &Dispatcher{
		PolicyName: "test",
		// Footprint is astronomically over-predicted: Items(budget) = 0.
		Est: staticEstimator{fn: memfunc.Func{Family: memfunc.LinearPower, M: 1000, B: 1000}},
	}
	b, _ := workload.Find("HB.Sort")
	jobs := []workload.Job{{Bench: b, InputGB: 20}}
	res, err := c.Run(jobs, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].State != cluster.StateDone {
		t.Error("over-predicting model starved the application")
	}
}

func TestIsolatedSerialOrdering(t *testing.T) {
	// Under the isolated baseline, application i never starts before
	// application i-1 finished.
	jobs := testJobs(t, "L4", 404)
	c := cluster.New(cluster.DefaultConfig())
	res, err := c.Run(jobs, NewIsolated())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Apps); i++ {
		prev, cur := res.Apps[i-1], res.Apps[i]
		if cur.StartTime+1e-6 < prev.DoneTime {
			t.Errorf("app %d started at %v before app %d finished at %v",
				cur.ID, cur.StartTime, prev.ID, prev.DoneTime)
		}
	}
}

func TestCalibSizesRespectCaps(t *testing.T) {
	s1, s2 := calibSizes(1000)
	if s1 != calibCap1 || s2 != calibCap2 {
		t.Errorf("large input caps: %v/%v", s1, s2)
	}
	s1, s2 = calibSizes(0.3)
	if math.Abs(s1-0.015) > 1e-12 || math.Abs(s2-0.03) > 1e-12 {
		t.Errorf("small input fractions: %v/%v", s1, s2)
	}
	s1, s2 = calibSizes(0)
	if s1 <= 0 || s2 <= s1 {
		t.Errorf("degenerate input: %v/%v", s1, s2)
	}
}
