package sched

import (
	"testing"

	"moespark/internal/cluster"
	"moespark/internal/workload"
)

// benchCluster builds the placement-hot-path fixture: a 40-node cluster whose
// memory is fully reserved by resident filler applications, plus a 64-app
// waiting queue. Every Schedule call must scan all (app, node) pairs and
// place nothing, which isolates the dispatcher's candidate-selection loop —
// the hot path a scoring Placer must not make more expensive.
func benchCluster(b *testing.B) *cluster.Cluster {
	b.Helper()
	cfg := cluster.DefaultConfig()
	c := cluster.New(cfg)
	bench := workload.Catalog()[0]
	for _, n := range c.Nodes() {
		filler := c.AddReadyApp(workload.Job{Bench: bench, InputGB: cfg.ExecutorSpreadGB})
		if _, err := c.Spawn(filler, n, c.Config().AllocatableGB(), filler.Job.InputGB); err != nil {
			b.Fatalf("filling node %d: %v", n.ID, err)
		}
	}
	for i := 0; i < 64; i++ {
		c.AddReadyApp(workload.Job{Bench: workload.Catalog()[i%len(workload.Catalog())], InputGB: 30})
	}
	return c
}

func benchmarkSchedule(b *testing.B, d *Dispatcher) {
	c := benchCluster(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Schedule(c)
	}
}

// BenchmarkDispatcherSchedule times Dispatcher.Schedule with the default
// (first-fit) placement over a 40-node / 64-waiting-app cluster.
func BenchmarkDispatcherSchedule(b *testing.B) {
	benchmarkSchedule(b, NewOracle())
}

// BenchmarkDispatcherScheduleScored is the same hot path with an explicit
// scoring Placer, measuring the overhead of candidate scoring and ranking.
func BenchmarkDispatcherScheduleScored(b *testing.B) {
	d := NewOracle()
	d.Placer = NewBestFitMemory()
	benchmarkSchedule(b, d)
}
