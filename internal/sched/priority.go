package sched

import (
	"moespark/internal/cluster"
)

// classPenalty is the per-co-runner score penalty the class-aware placer
// applies when a candidate node already hosts a strictly-higher-weight
// tenant. It dominates every built-in placer's score range (free memory in
// GB, speed factors near 1), so priority avoidance acts lexicographically
// before the wrapped placer's own preference.
const classPenalty = 1e6

// classAware wraps any Placer with tenant-priority awareness: candidates
// hosting higher-weight tenants are ranked below all others, steering batch
// work away from nodes running latency-sensitive executors. Within a
// penalty tier the wrapped placer's score (or scan order for nil) decides,
// so single-class runs — where no executor ever outranks another — score
// bit-for-bit like the wrapped placer alone.
type classAware struct {
	inner Placer
}

// NewClassAware returns a class-aware wrapper around any placement strategy;
// a nil inner placer wraps the default first-fit scan order.
func NewClassAware(inner Placer) Placer { return classAware{inner: inner} }

// Name implements Placer.
func (p classAware) Name() string {
	if p.inner == nil {
		return "class-aware"
	}
	return "class-aware+" + p.inner.Name()
}

// Score implements Placer.
func (p classAware) Score(c *cluster.Cluster, app *cluster.App, n *cluster.Node) float64 {
	var penalty float64
	for _, e := range n.Executors {
		if e.App.Class.Weight > app.Class.Weight {
			penalty++
		}
	}
	var base float64
	if p.inner != nil {
		base = p.inner.Score(c, app, n)
	}
	return base - penalty*classPenalty
}

// priority lifts any Dispatcher-based policy into a multi-tenant scheduler:
// the engine's weighted-FCFS queue ordering applies (the waiting set is
// already weight-ordered), the dispatcher's placer is wrapped class-aware,
// and — when preemption is enabled — an arriving high-priority application
// that cannot start reclaims memory from the newest preemptible
// lower-priority executors via the engine's charge-back path before the
// dispatcher places it.
type priority struct {
	inner   *Dispatcher
	preempt bool
	waitBuf []*cluster.App
	// preempted remembers which apps already fired their arrival-time
	// preemption (by app ID): each high-priority arrival reclaims memory at
	// most once, so a job that stays unplaceable for other reasons (CPU
	// admission, blacklists) cannot grind down batch work event after event.
	// App IDs restart at 0 per cluster, so the map is cleared whenever the
	// wrapper is pointed at a new cluster (scheduler reuse across runs).
	preempted map[int]bool
	lastRun   *cluster.Cluster
}

var (
	_ cluster.Scheduler      = (*priority)(nil)
	_ cluster.Observer       = (*priority)(nil)
	_ cluster.BatchScheduler = (*priority)(nil)
)

// NewPriority wraps a dispatcher-based policy with class-aware placement
// and, when preempt is set, arrival-time preemption of preemptible
// lower-priority executors. The given dispatcher is not touched: the
// wrapper schedules through a private copy whose placer is wrapped
// class-aware, so the original stays usable (and re-wrappable) as-is. The
// wrapper keeps the inner policy's name, so experiment tables stay
// comparable.
func NewPriority(inner *Dispatcher, preempt bool) cluster.Scheduler {
	cp := *inner
	cp.cand = scoredNodes{}
	cp.waitBuf = nil
	cp.Placer = NewClassAware(cp.Placer)
	return &priority{inner: &cp, preempt: preempt}
}

// Name implements cluster.Scheduler.
func (p *priority) Name() string { return p.inner.Name() }

// Prepare implements cluster.Scheduler.
func (p *priority) Prepare(c *cluster.Cluster, app *cluster.App) cluster.ProfilePlan {
	return p.inner.Prepare(c, app)
}

// PrepareBatch implements cluster.BatchScheduler by delegating to the inner
// dispatcher, so a priority-wrapped scheme keeps batched admission gating.
func (p *priority) PrepareBatch(c *cluster.Cluster, apps []*cluster.App) []cluster.ProfilePlan {
	return p.inner.PrepareBatch(c, apps)
}

// Observe implements cluster.Observer by delegating to the inner dispatcher,
// so a priority-wrapped adaptive scheme still receives its feedback.
func (p *priority) Observe(c *cluster.Cluster, e *cluster.Executor, outcome cluster.ExecOutcome) {
	p.inner.Observe(c, e, outcome)
}

// Schedule implements cluster.Scheduler: preempt for starved high-priority
// arrivals first (so the freed memory is still free when the inner
// dispatcher walks the weight-ordered queue), then delegate.
func (p *priority) Schedule(c *cluster.Cluster) {
	if p.preempt {
		if p.lastRun != c {
			p.lastRun = c
			clear(p.preempted)
		}
		p.preemptStarved(c)
	}
	p.inner.Schedule(c)
}

// preemptStarved reclaims resources for every waiting positive-weight
// application that has no executor yet and that the inner dispatcher could
// not place anywhere (per its own admission rules and allocation plan): the
// engine frees the fewest newest preemptible lower-priority executors on a
// single node. Apps that already run, that the dispatcher can already
// start, classes without weight, and apps that already fired their one
// arrival-time preemption never trigger it.
func (p *priority) preemptStarved(c *cluster.Cluster) {
	p.waitBuf = c.AppendWaitingApps(p.waitBuf[:0])
	for _, app := range p.waitBuf {
		if app.Class.Weight <= 0 || len(app.Executors) > 0 || p.preempted[app.ID] {
			continue
		}
		if p.placeable(c, app) {
			continue
		}
		var cpu float64
		if p.inner.CheckCPU {
			// Policies with a CPU admission rule starve on CPU headroom too;
			// reclaiming an executor frees its demand along with its memory.
			cpu = app.Job.Bench.CPULoad
		}
		if c.PreemptFor(app, p.needGB(c, app), cpu, p.inner.MaxAppsPerNode) > 0 {
			if p.preempted == nil {
				p.preempted = map[int]bool{}
			}
			p.preempted[app.ID] = true
		}
	}
}

// placeable reports whether the inner dispatcher could start the app right
// now: some node passes the dispatcher's admission checks (availability,
// blacklist, per-node app cap, CPU rule, minimum free memory) and the
// dispatcher's allocation plan yields a spawnable executor there.
// Preemption that fires anyway would kill batch work for a placement that
// needed none.
func (p *priority) placeable(c *cluster.Cluster, app *cluster.App) bool {
	cfg := c.Config()
	demand := app.Job.Bench.CPULoad
	var est MemEstimate
	haveEst := false
	if p.inner.Est != nil {
		est, haveEst = p.inner.Est.Estimate(app)
	}
	for _, n := range c.Nodes() {
		if !n.Available() || app.ExecutorOn(n) || (app.BlockedOn(n, c.Now()) && len(n.Executors) > 0) {
			continue
		}
		if p.inner.MaxAppsPerNode > 0 && n.AppCount() >= p.inner.MaxAppsPerNode {
			continue
		}
		if p.inner.CheckCPU && n.CPUDemand()+demand > n.CPUCapacity()+1e-9 {
			continue
		}
		free := n.FreeGB()
		if free <= cfg.MinChunkGB {
			continue
		}
		if _, _, ok := p.inner.plan(cfg, app, n, free, est, haveEst); ok {
			return true
		}
	}
	return false
}

// needGB estimates the reservation the starved application wants for its
// first executor: the predicted footprint of its fair share under the inner
// policy's estimator and safety margin, or the platform's default heap
// (half an allocatable node) when the policy predicts nothing. The engine
// clamps the demand per node, so an oversized ask degrades to a whole-node
// takeover rather than unreachability.
func (p *priority) needGB(c *cluster.Cluster, app *cluster.App) float64 {
	if p.inner.Est != nil {
		if est, ok := p.inner.Est.Estimate(app); ok {
			if need := est.Footprint(remainingShare(app)) * (1 + p.inner.SafetyMargin); need > 0 {
				return need
			}
		}
	}
	return c.Config().AllocatableGB() / 2
}
