// Package sched implements the runtime system of Section 4: a job
// dispatcher that co-locates Spark executors on nodes with spare memory and
// CPU, driven by a pluggable memory estimator. The paper's comparative
// schemes are all expressed in this framework:
//
//	Isolated     — the baseline: one application at a time, full memory
//	Pairwise     — at most two apps per node, co-runner heap = all free memory
//	Quasar       — one monolithic learned model for every application
//	MoE          — the paper's mixture-of-experts predictor (this work)
//	Oracle       — ground-truth footprints, no profiling cost
//	OnlineSearch — no model; gradient probing of the input allocation
//	Unified*     — a single curve family (or ANN) for every application
package sched

import (
	"math"

	"moespark/internal/cluster"
	"moespark/internal/features"
	"moespark/internal/memfunc"
)

// Estimator plans profiling for an application and predicts executor memory
// footprints for it. Implementations store their per-app state in
// App.Estimate.
type Estimator interface {
	// Name identifies the estimator.
	Name() string
	// Prepare is invoked once at submission. It returns the profiling plan
	// charged to the coordinating node, and typically installs a
	// MemEstimate into app.Estimate.
	Prepare(app *cluster.App) cluster.ProfilePlan
	// Estimate returns the app's memory estimate, or ok=false when the
	// estimator has no usable prediction (the dispatcher then falls back to
	// conservative pairwise-style reservation).
	Estimate(app *cluster.App) (MemEstimate, bool)
}

// BatchEstimator is an Estimator that can plan a whole admission wave
// together (cluster.BatchScheduler, one layer down): PrepareBatch must have
// exactly the per-app effects and return exactly the plans of calling
// Prepare on each app in order — including consuming any randomness in the
// identical per-app order — so the engine's golden outputs are independent
// of which face the dispatcher uses.
type BatchEstimator interface {
	Estimator
	PrepareBatch(apps []*cluster.App) []cluster.ProfilePlan
}

// ObservingEstimator is an Estimator that consumes the engine's
// predicted-vs-actual footprint reports (the cluster.Observer flow): the
// dispatcher forwards each observed executor outcome so the estimator's
// model can recalibrate mid-stream.
type ObservingEstimator interface {
	Estimator
	// Observe is invoked once per executor whose true footprint became
	// known (app completion or OOM kill). It must not mutate the cluster.
	Observe(e *cluster.Executor, outcome cluster.ExecOutcome)
}

// MemEstimate predicts the memory footprint of one application's executor
// as a function of its data allocation.
//
// Almost every estimator's prediction is a concrete calibrated curve, so the
// estimate stores the memfunc.Func directly and evaluates it in methods —
// the historical design held two closures instead, which cost four heap
// allocations per prepared arrival on the admission hot path. Models with no
// closed-form curve (the ANN baseline) still install closures via
// closureEstimate.
type MemEstimate struct {
	// fn is the calibrated curve backing the closure-free fast path.
	fn    memfunc.Func
	hasFn bool

	// footprintFn/itemsFn are the closure fallback for curveless models.
	footprintFn func(x float64) float64
	itemsFn     func(budgetGB float64) float64

	// feedback carries the per-app context an observing estimator needs to
	// report predicted-vs-actual outcomes; nil for non-observing estimators.
	feedback *feedback
}

// funcEstimate wraps a calibrated curve into a MemEstimate without
// allocating anything.
func funcEstimate(fn memfunc.Func) MemEstimate { return MemEstimate{fn: fn, hasFn: true} }

// closureEstimate wraps arbitrary footprint/inversion functions into a
// MemEstimate, for models with no concrete curve.
func closureEstimate(footprint, items func(float64) float64) MemEstimate {
	return MemEstimate{footprintFn: footprint, itemsFn: items}
}

// Footprint returns the predicted footprint (GB) for x GB of items
// (out-of-domain inputs predict 0).
func (e MemEstimate) Footprint(x float64) float64 {
	if e.hasFn {
		y, err := e.fn.Eval(x)
		if err != nil {
			return 0
		}
		return y
	}
	return e.footprintFn(x)
}

// Items returns the largest allocation whose predicted footprint stays
// within the budget (may be +Inf for bounded curves; 0 when the budget is
// infeasible).
func (e MemEstimate) Items(budgetGB float64) float64 {
	if e.hasFn {
		x, err := e.fn.Invert(budgetGB)
		if err != nil {
			return 0
		}
		return x
	}
	return e.itemsFn(budgetGB)
}

// valid reports whether the estimate can answer queries.
func (e MemEstimate) valid() bool {
	return e.hasFn || (e.footprintFn != nil && e.itemsFn != nil)
}

// feedback is the per-app observation context the MoE estimator stores
// alongside its estimate: the features and reduced-space position the
// prediction was made from, the expert the gate selected, the two profiling
// points it was calibrated through, and the uncorrected calibration for the
// stable regression target.
type feedback struct {
	features   features.Vector
	pcs        []float64
	family     memfunc.Family // the gate's routing decision
	calibrated memfunc.Family // the curve family that made the prediction
	p1, p2     memfunc.Point
	// raw is the uncorrected two-point calibration, stored as the concrete
	// curve (a closure here was one of the per-arrival allocations).
	raw memfunc.Func
	// seq is the estimator-issued app sequence number: unique for the
	// predictor's lifetime, unlike cluster app IDs, which restart at 0 when
	// a scheduler is reused on a fresh cluster.
	seq int
}

// rawPredict evaluates the uncorrected calibration (0 out of domain).
func (f *feedback) rawPredict(x float64) float64 {
	y, err := f.raw.Eval(x)
	if err != nil {
		return 0
	}
	return y
}

// estimateOf retrieves a MemEstimate installed by Prepare.
func estimateOf(app *cluster.App) (MemEstimate, bool) {
	est, ok := app.Estimate.(MemEstimate)
	if !ok || !est.valid() {
		return MemEstimate{}, false
	}
	return est, true
}

// invertByBisection numerically inverts a monotone-ish footprint function on
// (0, hi]. It is used by estimators whose model has no closed-form inverse
// (the ANN). If even the smallest probe exceeds the budget it returns 0.
func invertByBisection(footprint func(float64) float64, budgetGB, hi float64) float64 {
	const lo = 1e-3
	if budgetGB <= 0 {
		return 0
	}
	if footprint(hi) <= budgetGB {
		return hi
	}
	if footprint(lo) > budgetGB {
		return 0
	}
	a, b := lo, hi
	for i := 0; i < 80; i++ {
		mid := (a + b) / 2
		if footprint(mid) <= budgetGB {
			a = mid
		} else {
			b = mid
		}
	}
	return a
}

// clampItems bounds an allocation into [0, remaining].
func clampItems(x, remaining float64) float64 {
	if math.IsInf(x, 1) || x > remaining {
		return remaining
	}
	if x < 0 {
		return 0
	}
	return x
}
