package sched

import (
	"math"
	"math/rand"

	"moespark/internal/cluster"
	"moespark/internal/memfunc"
	"moespark/internal/moe"
)

// Profiling volumes (GB). Feature extraction uses ~100MB of input (Section
// 2.3); the calibration runs use 5 % and 10 % of the input, capped so very
// large datasets keep the paper's <10 % profiling overhead (Figure 11).
const (
	featureProfileGB  = 0.1
	calibCap1         = 0.5 // GB
	calibCap2         = 2.0 // GB
	calibFrac1        = 0.05
	calibFrac2        = 0.10
	defaultMargin     = 0.05
	onlineSearchFrac  = 0.25
	onlineSearchCapGB = 40.0
)

func calibSizes(inputGB float64) (float64, float64) {
	s1 := math.Min(calibFrac1*inputGB, calibCap1)
	s2 := math.Min(calibFrac2*inputGB, calibCap2)
	if s1 <= 0 {
		s1 = 0.01
	}
	if s2 <= s1 {
		s2 = s1 * 2
	}
	return s1, s2
}

// NewIsolated returns the serial isolated-execution baseline.
func NewIsolated() *Dispatcher {
	return &Dispatcher{PolicyName: "Isolated", Serial: true}
}

// NewPairwise returns the pairwise co-location scheme: at most two
// applications per node, the co-runner's heap set to all free memory, no
// memory prediction.
func NewPairwise() *Dispatcher {
	return &Dispatcher{PolicyName: "Pairwise", MaxAppsPerNode: 2, ReserveAllFree: true}
}

// oracleEstimator uses the ground-truth curve with no profiling cost: the
// paper's ideal predictor.
type oracleEstimator struct{}

// NewOracle returns the Oracle scheme.
func NewOracle() *Dispatcher {
	return &Dispatcher{PolicyName: "Oracle", Est: oracleEstimator{}, CheckCPU: true}
}

func (oracleEstimator) Name() string { return "Oracle" }

func (oracleEstimator) Prepare(app *cluster.App) cluster.ProfilePlan {
	app.Estimate = funcEstimate(app.Job.Bench.Truth)
	return cluster.ProfilePlan{}
}

func (oracleEstimator) Estimate(app *cluster.App) (MemEstimate, bool) { return estimateOf(app) }

// moeEstimator is the paper's runtime predictor generalised over the online
// prediction pipeline: feature extraction on a ~100MB slice, expert
// selection and two-point calibration happen behind the moe.Predictor
// interface, and every realised footprint the engine reports is fed back
// through it (a no-op for the static model, model recalibration for the
// adaptive one).
type moeEstimator struct {
	pred moe.Predictor
	rng  *rand.Rand
	// seq numbers prepared apps across the estimator's lifetime; it feeds
	// Observation.AppID so predictor-side once-per-app logic survives
	// scheduler reuse on a fresh cluster (whose app IDs restart at 0).
	seq int
}

// NewMoE returns the paper's scheme backed by a trained model: the static,
// predict-once-at-submission pipeline, bit-for-bit the historical behaviour.
func NewMoE(model *moe.Model, rng *rand.Rand) *Dispatcher {
	d := NewMoEPredictor(moe.NewStatic(model), rng)
	d.PolicyName = "MoE"
	return d
}

// NewAdaptiveMoE returns the feedback-driven variant: the same trained
// model wrapped in moe.Adaptive, which recalibrates expert coefficients and
// reweights the gate from the engine's completion/OOM observations.
func NewAdaptiveMoE(model *moe.Model, cfg moe.AdaptiveConfig, rng *rand.Rand) *Dispatcher {
	return NewMoEPredictor(moe.NewAdaptive(model, cfg), rng)
}

// NewMoEPredictor returns an MoE-style scheme driven by an arbitrary
// prediction pipeline. The dispatcher's policy name is the predictor's.
func NewMoEPredictor(p moe.Predictor, rng *rand.Rand) *Dispatcher {
	return &Dispatcher{
		PolicyName:   p.Name(),
		Est:          &moeEstimator{pred: p, rng: rng},
		SafetyMargin: defaultMargin,
		CheckCPU:     true,
	}
}

func (e *moeEstimator) Name() string { return e.pred.Name() }

// profileRequest draws one app's profiling inputs from the shared rng —
// feature counters, then the two calibration points, the draw order every
// prediction has always consumed — and returns the gating request plus the
// profiling plan charged for collecting it.
func (e *moeEstimator) profileRequest(app *cluster.App) (moe.PredictRequest, cluster.ProfilePlan) {
	b := app.Job.Bench
	s1, s2 := calibSizes(app.Job.InputGB)
	req := moe.PredictRequest{
		Raw: b.Counters(e.rng),
		P1:  b.ProfilePoint(s1, e.rng),
		P2:  b.ProfilePoint(s2, e.rng),
	}
	return req, cluster.ContributingProfile(featureProfileGB + s1 + s2)
}

// install stores a confident prediction as the app's estimate with its
// observation context. On low confidence or calibration failure the estimate
// stays unset and the dispatcher falls back to the conservative default
// policy for this app, as the paper prescribes.
func (e *moeEstimator) install(app *cluster.App, req moe.PredictRequest, pred moe.Prediction, err error) {
	if err != nil || !pred.Confident {
		return
	}
	e.seq++
	est := funcEstimate(pred.Func)
	est.feedback = &feedback{
		features:   req.Raw,
		pcs:        pred.Selection.PCs,
		family:     pred.Selection.Family,
		calibrated: pred.Func.Family,
		p1:         req.P1,
		p2:         req.P2,
		raw:        pred.Uncorrected,
		seq:        e.seq,
	}
	app.Estimate = est
	if app.MaxExecutors > 0 {
		app.PredictedGB = est.Footprint(app.Job.InputGB / float64(app.MaxExecutors))
	}
}

func (e *moeEstimator) Prepare(app *cluster.App) cluster.ProfilePlan {
	req, plan := e.profileRequest(app)
	pred, err := e.pred.Predict(req.Raw, req.P1, req.P2)
	e.install(app, req, pred, err)
	return plan
}

// PrepareBatch implements BatchEstimator: the whole admission wave is gated
// through the predictor's batch face. Profiling inputs are drawn app by app
// in arrival order first — identical rng consumption to the sequential path,
// since gating itself draws nothing — then predictions install in the same
// order, so estimates, feedback sequence numbers and plans are bit-identical
// to per-app Prepare.
func (e *moeEstimator) PrepareBatch(apps []*cluster.App) []cluster.ProfilePlan {
	reqs := make([]moe.PredictRequest, len(apps))
	plans := make([]cluster.ProfilePlan, len(apps))
	for i, app := range apps {
		reqs[i], plans[i] = e.profileRequest(app)
	}
	var results []moe.BatchResult
	if bp, ok := e.pred.(moe.BatchPredictor); ok {
		results = bp.PredictBatch(reqs)
	} else {
		results = make([]moe.BatchResult, len(reqs))
		for i, r := range reqs {
			results[i].Prediction, results[i].Err = e.pred.Predict(r.Raw, r.P1, r.P2)
		}
	}
	for i, app := range apps {
		e.install(app, reqs[i], results[i].Prediction, results[i].Err)
	}
	return plans
}

func (e *moeEstimator) Estimate(app *cluster.App) (MemEstimate, bool) { return estimateOf(app) }

// Observe implements ObservingEstimator: the executor's realised footprint
// is set against the prediction its app was planned with and fed back
// through the prediction pipeline.
func (e *moeEstimator) Observe(ex *cluster.Executor, outcome cluster.ExecOutcome) {
	est, ok := estimateOf(ex.App)
	if !ok || est.feedback == nil || ex.PredictedGB <= 0 || ex.NeedGB <= 0 {
		return
	}
	oc := moe.OutcomeCompleted
	if outcome == cluster.ExecOOMKilled {
		oc = moe.OutcomeOOM
	}
	e.pred.Observe(moe.Observation{
		Features:       est.feedback.features,
		PCs:            est.feedback.pcs,
		Family:         est.feedback.family,
		Calibrated:     est.feedback.calibrated,
		AppID:          est.feedback.seq,
		P1:             est.feedback.p1,
		P2:             est.feedback.p2,
		ItemsGB:        ex.ItemsGB,
		PredictedGB:    ex.PredictedGB,
		RawPredictedGB: est.feedback.rawPredict(ex.ItemsGB),
		ActualGB:       ex.NeedGB,
		Outcome:        oc,
	})
}

// onlineSearchEstimator models the Figure 10 baseline: descent-gradient
// probing of the data allocation at runtime. The search eventually finds an
// accurate allocation (footprint within a few percent) but consumes a large
// profiling volume doing so, and the probing cost scales with the input.
type onlineSearchEstimator struct {
	rng *rand.Rand
}

// NewOnlineSearch returns the online-search scheme.
func NewOnlineSearch(rng *rand.Rand) *Dispatcher {
	return &Dispatcher{
		PolicyName:   "OnlineSearch",
		Est:          &onlineSearchEstimator{rng: rng},
		SafetyMargin: defaultMargin,
		CheckCPU:     true,
	}
}

func (e *onlineSearchEstimator) Name() string { return "OnlineSearch" }

func (e *onlineSearchEstimator) Prepare(app *cluster.App) cluster.ProfilePlan {
	// The converged search is accurate but slightly biased per app.
	bias := 1 + e.rng.NormFloat64()*0.03
	truth := app.Job.Bench.Truth
	scaled := truth
	scaled.M *= bias
	app.Estimate = funcEstimate(scaled)
	// Gradient probing reprocesses trial allocations over and over; only
	// the final converged pass contributes to the output.
	volume := math.Min(onlineSearchFrac*app.Job.InputGB, onlineSearchCapGB)
	return cluster.ProfilePlan{VolumeGB: volume, ContributesGB: volume * 0.2}
}

func (e *onlineSearchEstimator) Estimate(app *cluster.App) (MemEstimate, bool) {
	return estimateOf(app)
}

// unifiedEstimator calibrates one fixed curve family for every application
// (the Figure 9 single-model baselines). Wrong-family applications suffer
// large extrapolation errors — the paper's motivation for the mixture.
type unifiedEstimator struct {
	family memfunc.Family
	rng    *rand.Rand
}

// NewUnified returns a single-family baseline scheme.
func NewUnified(family memfunc.Family, rng *rand.Rand) *Dispatcher {
	return &Dispatcher{
		PolicyName:   "Unified-" + family.String(),
		Est:          &unifiedEstimator{family: family, rng: rng},
		SafetyMargin: defaultMargin,
		CheckCPU:     true,
	}
}

func (e *unifiedEstimator) Name() string { return "Unified-" + e.family.String() }

func (e *unifiedEstimator) Prepare(app *cluster.App) cluster.ProfilePlan {
	b := app.Job.Bench
	s1, s2 := calibSizes(app.Job.InputGB)
	fn, err := memfunc.Calibrate(e.family, b.ProfilePoint(s1, e.rng), b.ProfilePoint(s2, e.rng))
	if err != nil {
		// The family cannot pass through the observations (e.g. a
		// saturating exponential on super-linear data): fall back to a
		// straight line through the larger observation.
		p := b.ProfilePoint(s2, e.rng)
		fn = memfunc.Func{Family: memfunc.LinearPower, M: p.Y / p.X, B: 1}
	}
	app.Estimate = funcEstimate(fn)
	return cluster.ContributingProfile(featureProfileGB + s1 + s2)
}

func (e *unifiedEstimator) Estimate(app *cluster.App) (MemEstimate, bool) { return estimateOf(app) }
