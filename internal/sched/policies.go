package sched

import (
	"math"
	"math/rand"

	"moespark/internal/cluster"
	"moespark/internal/memfunc"
	"moespark/internal/moe"
)

// Profiling volumes (GB). Feature extraction uses ~100MB of input (Section
// 2.3); the calibration runs use 5 % and 10 % of the input, capped so very
// large datasets keep the paper's <10 % profiling overhead (Figure 11).
const (
	featureProfileGB  = 0.1
	calibCap1         = 0.5 // GB
	calibCap2         = 2.0 // GB
	calibFrac1        = 0.05
	calibFrac2        = 0.10
	defaultMargin     = 0.05
	onlineSearchFrac  = 0.25
	onlineSearchCapGB = 40.0
)

func calibSizes(inputGB float64) (float64, float64) {
	s1 := math.Min(calibFrac1*inputGB, calibCap1)
	s2 := math.Min(calibFrac2*inputGB, calibCap2)
	if s1 <= 0 {
		s1 = 0.01
	}
	if s2 <= s1 {
		s2 = s1 * 2
	}
	return s1, s2
}

// NewIsolated returns the serial isolated-execution baseline.
func NewIsolated() *Dispatcher {
	return &Dispatcher{PolicyName: "Isolated", Serial: true}
}

// NewPairwise returns the pairwise co-location scheme: at most two
// applications per node, the co-runner's heap set to all free memory, no
// memory prediction.
func NewPairwise() *Dispatcher {
	return &Dispatcher{PolicyName: "Pairwise", MaxAppsPerNode: 2, ReserveAllFree: true}
}

// funcEstimate wraps a memfunc into a MemEstimate.
func funcEstimate(fn memfunc.Func) MemEstimate {
	return MemEstimate{
		Footprint: func(x float64) float64 {
			y, err := fn.Eval(x)
			if err != nil {
				return 0
			}
			return y
		},
		Items: func(budget float64) float64 {
			x, err := fn.Invert(budget)
			if err != nil {
				return 0
			}
			return x
		},
	}
}

// oracleEstimator uses the ground-truth curve with no profiling cost: the
// paper's ideal predictor.
type oracleEstimator struct{}

// NewOracle returns the Oracle scheme.
func NewOracle() *Dispatcher {
	return &Dispatcher{PolicyName: "Oracle", Est: oracleEstimator{}, CheckCPU: true}
}

func (oracleEstimator) Name() string { return "Oracle" }

func (oracleEstimator) Prepare(app *cluster.App) cluster.ProfilePlan {
	app.Estimate = funcEstimate(app.Job.Bench.Truth)
	return cluster.ProfilePlan{}
}

func (oracleEstimator) Estimate(app *cluster.App) (MemEstimate, bool) { return estimateOf(app) }

// moeEstimator is the paper's runtime predictor generalised over the online
// prediction pipeline: feature extraction on a ~100MB slice, expert
// selection and two-point calibration happen behind the moe.Predictor
// interface, and every realised footprint the engine reports is fed back
// through it (a no-op for the static model, model recalibration for the
// adaptive one).
type moeEstimator struct {
	pred moe.Predictor
	rng  *rand.Rand
	// seq numbers prepared apps across the estimator's lifetime; it feeds
	// Observation.AppID so predictor-side once-per-app logic survives
	// scheduler reuse on a fresh cluster (whose app IDs restart at 0).
	seq int
}

// NewMoE returns the paper's scheme backed by a trained model: the static,
// predict-once-at-submission pipeline, bit-for-bit the historical behaviour.
func NewMoE(model *moe.Model, rng *rand.Rand) *Dispatcher {
	d := NewMoEPredictor(moe.NewStatic(model), rng)
	d.PolicyName = "MoE"
	return d
}

// NewAdaptiveMoE returns the feedback-driven variant: the same trained
// model wrapped in moe.Adaptive, which recalibrates expert coefficients and
// reweights the gate from the engine's completion/OOM observations.
func NewAdaptiveMoE(model *moe.Model, cfg moe.AdaptiveConfig, rng *rand.Rand) *Dispatcher {
	return NewMoEPredictor(moe.NewAdaptive(model, cfg), rng)
}

// NewMoEPredictor returns an MoE-style scheme driven by an arbitrary
// prediction pipeline. The dispatcher's policy name is the predictor's.
func NewMoEPredictor(p moe.Predictor, rng *rand.Rand) *Dispatcher {
	return &Dispatcher{
		PolicyName:   p.Name(),
		Est:          &moeEstimator{pred: p, rng: rng},
		SafetyMargin: defaultMargin,
		CheckCPU:     true,
	}
}

func (e *moeEstimator) Name() string { return e.pred.Name() }

func (e *moeEstimator) Prepare(app *cluster.App) cluster.ProfilePlan {
	b := app.Job.Bench
	s1, s2 := calibSizes(app.Job.InputGB)
	feats := b.Counters(e.rng)
	p1 := b.ProfilePoint(s1, e.rng)
	p2 := b.ProfilePoint(s2, e.rng)
	pred, err := e.pred.Predict(feats, p1, p2)
	if err == nil && pred.Confident {
		e.seq++
		est := funcEstimate(pred.Func)
		est.feedback = &feedback{
			features:   feats,
			pcs:        pred.Selection.PCs,
			family:     pred.Selection.Family,
			calibrated: pred.Func.Family,
			p1:         p1,
			p2:         p2,
			raw:        funcEstimate(pred.Uncorrected).Footprint,
			seq:        e.seq,
		}
		app.Estimate = est
		if app.MaxExecutors > 0 {
			app.PredictedGB = est.Footprint(app.Job.InputGB / float64(app.MaxExecutors))
		}
	}
	// On low confidence or calibration failure the estimate stays unset and
	// the dispatcher falls back to the conservative default policy for this
	// app, as the paper prescribes.
	return cluster.ContributingProfile(featureProfileGB + s1 + s2)
}

func (e *moeEstimator) Estimate(app *cluster.App) (MemEstimate, bool) { return estimateOf(app) }

// Observe implements ObservingEstimator: the executor's realised footprint
// is set against the prediction its app was planned with and fed back
// through the prediction pipeline.
func (e *moeEstimator) Observe(ex *cluster.Executor, outcome cluster.ExecOutcome) {
	est, ok := estimateOf(ex.App)
	if !ok || est.feedback == nil || ex.PredictedGB <= 0 || ex.NeedGB <= 0 {
		return
	}
	oc := moe.OutcomeCompleted
	if outcome == cluster.ExecOOMKilled {
		oc = moe.OutcomeOOM
	}
	e.pred.Observe(moe.Observation{
		Features:       est.feedback.features,
		PCs:            est.feedback.pcs,
		Family:         est.feedback.family,
		Calibrated:     est.feedback.calibrated,
		AppID:          est.feedback.seq,
		P1:             est.feedback.p1,
		P2:             est.feedback.p2,
		ItemsGB:        ex.ItemsGB,
		PredictedGB:    ex.PredictedGB,
		RawPredictedGB: est.feedback.raw(ex.ItemsGB),
		ActualGB:       ex.NeedGB,
		Outcome:        oc,
	})
}

// onlineSearchEstimator models the Figure 10 baseline: descent-gradient
// probing of the data allocation at runtime. The search eventually finds an
// accurate allocation (footprint within a few percent) but consumes a large
// profiling volume doing so, and the probing cost scales with the input.
type onlineSearchEstimator struct {
	rng *rand.Rand
}

// NewOnlineSearch returns the online-search scheme.
func NewOnlineSearch(rng *rand.Rand) *Dispatcher {
	return &Dispatcher{
		PolicyName:   "OnlineSearch",
		Est:          &onlineSearchEstimator{rng: rng},
		SafetyMargin: defaultMargin,
		CheckCPU:     true,
	}
}

func (e *onlineSearchEstimator) Name() string { return "OnlineSearch" }

func (e *onlineSearchEstimator) Prepare(app *cluster.App) cluster.ProfilePlan {
	// The converged search is accurate but slightly biased per app.
	bias := 1 + e.rng.NormFloat64()*0.03
	truth := app.Job.Bench.Truth
	scaled := truth
	scaled.M *= bias
	app.Estimate = funcEstimate(scaled)
	// Gradient probing reprocesses trial allocations over and over; only
	// the final converged pass contributes to the output.
	volume := math.Min(onlineSearchFrac*app.Job.InputGB, onlineSearchCapGB)
	return cluster.ProfilePlan{VolumeGB: volume, ContributesGB: volume * 0.2}
}

func (e *onlineSearchEstimator) Estimate(app *cluster.App) (MemEstimate, bool) {
	return estimateOf(app)
}

// unifiedEstimator calibrates one fixed curve family for every application
// (the Figure 9 single-model baselines). Wrong-family applications suffer
// large extrapolation errors — the paper's motivation for the mixture.
type unifiedEstimator struct {
	family memfunc.Family
	rng    *rand.Rand
}

// NewUnified returns a single-family baseline scheme.
func NewUnified(family memfunc.Family, rng *rand.Rand) *Dispatcher {
	return &Dispatcher{
		PolicyName:   "Unified-" + family.String(),
		Est:          &unifiedEstimator{family: family, rng: rng},
		SafetyMargin: defaultMargin,
		CheckCPU:     true,
	}
}

func (e *unifiedEstimator) Name() string { return "Unified-" + e.family.String() }

func (e *unifiedEstimator) Prepare(app *cluster.App) cluster.ProfilePlan {
	b := app.Job.Bench
	s1, s2 := calibSizes(app.Job.InputGB)
	fn, err := memfunc.Calibrate(e.family, b.ProfilePoint(s1, e.rng), b.ProfilePoint(s2, e.rng))
	if err != nil {
		// The family cannot pass through the observations (e.g. a
		// saturating exponential on super-linear data): fall back to a
		// straight line through the larger observation.
		p := b.ProfilePoint(s2, e.rng)
		fn = memfunc.Func{Family: memfunc.LinearPower, M: p.Y / p.X, B: 1}
	}
	app.Estimate = funcEstimate(fn)
	return cluster.ContributingProfile(featureProfileGB + s1 + s2)
}

func (e *unifiedEstimator) Estimate(app *cluster.App) (MemEstimate, bool) { return estimateOf(app) }
