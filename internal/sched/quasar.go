package sched

import (
	"fmt"
	"math"
	"math/rand"

	"moespark/internal/classify"
	"moespark/internal/cluster"
	"moespark/internal/features"
	"moespark/internal/memfunc"
	"moespark/internal/workload"
)

// QuasarModel is our stand-in for the Quasar comparator (Section 5.4).
// Quasar classifies an incoming workload against previously profiled ones
// (collaborative filtering) and transfers the known workload's resource
// profile. We model that faithfully: a nearest-neighbour index over the
// scaled runtime features of the training programs, each carrying its
// offline-fitted memory curve; the incoming application is assigned its
// nearest neighbour's curve as-is.
//
// The contrast with the paper's approach is exactly the paper's point: one
// transferred profile per application, with no per-application expert
// selection and no two-point coefficient calibration. Errors are the
// coefficient mismatch between the target and its nearest profiled workload
// (typically 15-35 % here), where the calibrated mixture achieves ~5 %.
type QuasarModel struct {
	scaler *features.Scaler
	knn    *classify.KNN
	curves []memfunc.Func // indexed by the KNN label
}

// TrainQuasar profiles the training benchmarks offline and builds the
// workload-similarity index.
func TrainQuasar(benches []*workload.Benchmark, rng *rand.Rand) (*QuasarModel, error) {
	if len(benches) == 0 {
		return nil, fmt.Errorf("sched: no training benchmarks for Quasar")
	}
	raw := make([]features.Vector, 0, len(benches))
	for _, b := range benches {
		raw = append(raw, b.Counters(rng))
	}
	scaler, err := features.FitScaler(raw)
	if err != nil {
		return nil, fmt.Errorf("sched: fitting Quasar scaler: %w", err)
	}
	m := &QuasarModel{scaler: scaler, knn: classify.NewKNN(1)}
	samples := make([]classify.Sample, 0, len(benches))
	for i, b := range benches {
		fit, err := memfunc.BestFit(b.CurvePoints(workload.TrainingSweep, rng))
		if err != nil {
			return nil, fmt.Errorf("sched: fitting Quasar curve for %s: %w", b.FullName(), err)
		}
		m.curves = append(m.curves, fit.Func)
		scaled := scaler.Apply(raw[i])
		samples = append(samples, classify.Sample{X: scaled[:], Label: i})
	}
	if err := m.knn.Fit(samples); err != nil {
		return nil, fmt.Errorf("sched: fitting Quasar index: %w", err)
	}
	return m, nil
}

// Curve returns the transferred memory curve for an application with the
// given runtime features.
func (q *QuasarModel) Curve(raw features.Vector) (memfunc.Func, error) {
	scaled := q.scaler.Apply(raw)
	label, err := q.knn.Predict(scaled[:])
	if err != nil {
		return memfunc.Func{}, fmt.Errorf("sched: Quasar classification: %w", err)
	}
	if label < 0 || label >= len(q.curves) {
		return memfunc.Func{}, fmt.Errorf("sched: Quasar index returned invalid label %d", label)
	}
	return q.curves[label], nil
}

// Footprint predicts the executor footprint for x GB via the transferred
// curve; predictions are floored at a small positive value.
func (q *QuasarModel) Footprint(raw features.Vector, x float64) float64 {
	fn, err := q.Curve(raw)
	if err != nil {
		return 0.1
	}
	y, err := fn.Eval(x)
	if err != nil || y < 0.1 {
		return 0.1
	}
	return y
}

// quasarEstimator adapts QuasarModel to the dispatcher.
type quasarEstimator struct {
	model *QuasarModel
	rng   *rand.Rand
}

// NewQuasar returns the Quasar comparator scheme.
func NewQuasar(model *QuasarModel, rng *rand.Rand) *Dispatcher {
	return &Dispatcher{
		PolicyName:   "Quasar",
		Est:          &quasarEstimator{model: model, rng: rng},
		SafetyMargin: defaultMargin,
		CheckCPU:     true,
	}
}

func (e *quasarEstimator) Name() string { return "Quasar" }

func (e *quasarEstimator) Prepare(app *cluster.App) cluster.ProfilePlan {
	raw := app.Job.Bench.Counters(e.rng)
	fn, err := e.model.Curve(raw)
	if err == nil {
		app.Estimate = funcEstimate(fn)
	}
	// Quasar profiles the incoming workload briefly to classify it.
	return cluster.ContributingProfile(featureProfileGB)
}

func (e *quasarEstimator) Estimate(app *cluster.App) (MemEstimate, bool) { return estimateOf(app) }

// ANNBaseline is the Figure 9 "ANN" unified baseline: one feed-forward
// regression network mapping (runtime features, input size) directly to a
// memory footprint, trained on the same offline sweeps. A single network
// must describe every curve family at once, which is what the mixture
// avoids.
type ANNBaseline struct {
	scaler *features.Scaler
	net    *classify.ANNRegressor
}

// TrainUnifiedANN fits the monolithic regression network.
func TrainUnifiedANN(benches []*workload.Benchmark, rng *rand.Rand) (*ANNBaseline, error) {
	if len(benches) == 0 {
		return nil, fmt.Errorf("sched: no training benchmarks for the ANN baseline")
	}
	raw := make([]features.Vector, 0, len(benches))
	for _, b := range benches {
		raw = append(raw, b.Counters(rng))
	}
	scaler, err := features.FitScaler(raw)
	if err != nil {
		return nil, err
	}
	var samples []classify.RegSample
	for _, b := range benches {
		// Several feature observations per program so the net keys on the
		// stable structure rather than one run's noise.
		for obs := 0; obs < 3; obs++ {
			scaled := scaler.Apply(b.Counters(rng))
			for _, x := range workload.TrainingSweep {
				y := b.MeasuredFootprint(x, rng)
				if y <= 0 {
					continue
				}
				samples = append(samples, classify.RegSample{X: annInput(scaled, x), Y: y})
			}
		}
	}
	net := classify.NewANNRegressor(rng.Int63())
	net.Hidden = []int{16, 8}
	net.Epochs = 300
	if err := net.Fit(samples); err != nil {
		return nil, fmt.Errorf("sched: fitting ANN baseline: %w", err)
	}
	return &ANNBaseline{scaler: scaler, net: net}, nil
}

func annInput(scaled features.Vector, x float64) []float64 {
	in := make([]float64, 0, features.NumRaw+1)
	in = append(in, scaled[:]...)
	in = append(in, math.Log1p(x))
	return in
}

// Footprint predicts via the monolithic network, floored at a small value.
func (a *ANNBaseline) Footprint(raw features.Vector, x float64) float64 {
	scaled := a.scaler.Apply(raw)
	y, err := a.net.Predict(annInput(scaled, x))
	if err != nil || y < 0.1 {
		return 0.1
	}
	return y
}

// annEstimator adapts ANNBaseline to the dispatcher.
type annEstimator struct {
	model *ANNBaseline
	rng   *rand.Rand
}

// NewUnifiedANN returns the unified ANN baseline scheme.
func NewUnifiedANN(model *ANNBaseline, rng *rand.Rand) *Dispatcher {
	return &Dispatcher{
		PolicyName:   "Unified-ANN",
		Est:          &annEstimator{model: model, rng: rng},
		SafetyMargin: defaultMargin,
		CheckCPU:     true,
	}
}

func (e *annEstimator) Name() string { return "Unified-ANN" }

func (e *annEstimator) Prepare(app *cluster.App) cluster.ProfilePlan {
	raw := app.Job.Bench.Counters(e.rng)
	remainingCap := app.Job.InputGB
	app.Estimate = closureEstimate(
		func(x float64) float64 { return e.model.Footprint(raw, x) },
		func(budget float64) float64 {
			return invertByBisection(func(x float64) float64 {
				return e.model.Footprint(raw, x)
			}, budget, remainingCap)
		},
	)
	return cluster.ContributingProfile(featureProfileGB)
}

func (e *annEstimator) Estimate(app *cluster.App) (MemEstimate, bool) { return estimateOf(app) }
