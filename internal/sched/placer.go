package sched

import (
	"sort"

	"moespark/internal/cluster"
)

// Placer scores candidate nodes for an executor placement. The dispatcher
// gathers the nodes that pass its admission checks (availability, memory,
// CPU, per-node app caps), asks the Placer to score each, and attempts
// placements in descending score order; ties keep node-scan order, so a
// constant-scoring Placer reproduces the classic first-fit dispatcher
// exactly.
type Placer interface {
	// Name identifies the placement strategy in reports.
	Name() string
	// Score rates placing an executor of app on n; higher is better. The
	// score is consulted only among nodes that already passed admission.
	Score(c *cluster.Cluster, app *cluster.App, n *cluster.Node) float64
}

// firstFit scores every node equally: placements happen in node-scan order,
// byte-for-byte the dispatcher's historical behaviour.
type firstFit struct{}

// NewFirstFit returns the default placement strategy: first fit in node-scan
// order, identical to the pre-Placer dispatcher.
func NewFirstFit() Placer { return firstFit{} }

func (firstFit) Name() string { return "first-fit" }

func (firstFit) Score(*cluster.Cluster, *cluster.App, *cluster.Node) float64 { return 0 }

// bestFitMemory prefers the candidate with the least free memory — classic
// best-fit bin packing, which keeps big contiguous holes open for
// memory-hungry applications on heterogeneous fleets.
type bestFitMemory struct{}

// NewBestFitMemory returns the tightest-fit-first placement strategy.
func NewBestFitMemory() Placer { return bestFitMemory{} }

func (bestFitMemory) Name() string { return "best-fit-memory" }

func (bestFitMemory) Score(_ *cluster.Cluster, _ *cluster.App, n *cluster.Node) float64 {
	return -n.FreeGB()
}

// speedAware prefers fast, idle machines: score is the node's speed factor
// discounted by its current utilization (CPU demand relative to the node's
// own capacity, so a half-loaded 32-core node outranks an idle 8-core one
// with the same speed), landing executors on the hardware that will process
// their items quickest. On a homogeneous idle fleet it degenerates to first
// fit.
type speedAware struct{}

// NewSpeedAware returns the speed-aware placement strategy for
// heterogeneous fleets.
func NewSpeedAware() Placer { return speedAware{} }

func (speedAware) Name() string { return "speed-aware" }

func (speedAware) Score(_ *cluster.Cluster, _ *cluster.App, n *cluster.Node) float64 {
	return n.Spec.SpeedFactor / (1 + n.CPUDemand()/n.CPUCapacity())
}

// rackSpread trades failure-domain diversity against locality: the dominant
// term pushes an application's executors onto racks where it has none yet —
// so a rack-correlated storm (RackStormEvents) can take out at most a
// handful of any app's executors — while the locality term breaks ties
// among equally-diverse racks in favour of fast, idle hardware, exactly the
// speedAware score, discounted so it can reorder candidates only within one
// diversity level. Nodes without topology labels (empty Rack) are each
// their own domain: the spread term sees no co-racked executors and the
// placer degenerates to a damped speed-aware ordering.
type rackSpread struct {
	// locality in [0, 1) scales the speed-aware tie-break; it must stay
	// below 1 so one rack-mate always outweighs any hardware advantage.
	locality float64
}

// NewRackSpread returns the failure-domain-aware placement strategy with
// the default locality weight.
func NewRackSpread() Placer { return rackSpread{locality: 0.25} }

func (rackSpread) Name() string { return "rack-spread" }

func (p rackSpread) Score(_ *cluster.Cluster, app *cluster.App, n *cluster.Node) float64 {
	score := 0.0
	if n.Spec.Rack != "" {
		for _, e := range app.Executors {
			if e.Node.Spec.Rack == n.Spec.Rack {
				score--
			}
		}
	}
	return score + p.locality*n.Spec.SpeedFactor/(1+n.CPUDemand()/n.CPUCapacity())
}

// scoredNodes is the dispatcher's reusable candidate buffer: nodes plus their
// scores, sorted descending by score with ties in original (node-scan) order.
// It implements sort.Interface on parallel slices so sorting allocates
// nothing once the buffers are warm.
type scoredNodes struct {
	nodes  []*cluster.Node
	scores []float64
	order  []int // original gather order, the stable tie-break
}

func (s *scoredNodes) reset() {
	s.nodes = s.nodes[:0]
	s.scores = s.scores[:0]
	s.order = s.order[:0]
}

func (s *scoredNodes) add(n *cluster.Node, score float64) {
	s.nodes = append(s.nodes, n)
	s.scores = append(s.scores, score)
	s.order = append(s.order, len(s.order))
}

func (s *scoredNodes) Len() int { return len(s.nodes) }

func (s *scoredNodes) Less(i, j int) bool {
	if s.scores[i] != s.scores[j] {
		return s.scores[i] > s.scores[j]
	}
	return s.order[i] < s.order[j]
}

func (s *scoredNodes) Swap(i, j int) {
	s.nodes[i], s.nodes[j] = s.nodes[j], s.nodes[i]
	s.scores[i], s.scores[j] = s.scores[j], s.scores[i]
	s.order[i], s.order[j] = s.order[j], s.order[i]
}

// sortByScore orders candidates best-first; the embedded original order makes
// the sort stable without sort.SliceStable's allocations.
func (s *scoredNodes) sortByScore() { sort.Sort(s) }
