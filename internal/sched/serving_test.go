package sched

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"moespark/internal/cluster"
	"moespark/internal/moe"
	"moespark/internal/workload"
)

// servingCase is one workload of the serving differential suite: an
// open-system arrival stream scheduled twice — once with every serving
// optimisation live (footprint memo, batched admission gating, indexed KNN
// gate) and once with all of them opted out — that must produce exactly
// identical simulations.
type servingCase struct {
	name     string
	nodes    int
	apps     int
	rate     float64
	seed     int64
	adaptive bool
	bursty   bool
	bimodal  bool
	// quantise buckets arrival times onto a coarse grid so several arrivals
	// share one admission event, exercising multi-app PrepareBatch waves.
	quantise float64
}

// servingCases builds the 25-workload suite: fleets, arrival processes,
// rates, sizes and predictor kinds all vary so the differential covers
// single-arrival waves, coalesced waves, OOM-prone loads and the adaptive
// feedback loop.
func servingCases() []servingCase {
	cases := make([]servingCase, 0, 25)
	for i := 0; i < 25; i++ {
		c := servingCase{
			name:     fmt.Sprintf("w%02d", i),
			nodes:    10 + (i%3)*6,
			apps:     24 + (i%5)*8,
			rate:     0.02 + 0.01*float64(i%4),
			seed:     int64(100 + i),
			adaptive: i%2 == 1,
			bursty:   i%5 == 2,
			bimodal:  i%3 == 0,
		}
		if i%4 == 3 {
			c.quantise = 250
		}
		cases = append(cases, c)
	}
	return cases
}

// servingRun schedules one case and returns the full simulation result. The
// optimised run uses the defaults exactly as production does; the reference
// run opts out of every serving optimisation: memo off (WithoutMemo /
// DisableMemo), per-app admission (NoBatchPrepare) and the linear-scan gate
// (SetLinearGate on a private model clone).
func servingRun(t *testing.T, w servingCase, model *moe.Model, optimised bool) *cluster.Result {
	t.Helper()
	if !optimised {
		model = model.Clone()
		model.SetLinearGate(true)
	}
	fleetRng := rand.New(rand.NewSource(w.seed))
	var fleet []workload.NodeClass
	var err error
	if w.bimodal {
		fleet, err = workload.BimodalFleet(w.nodes, workload.BigNode(), workload.LittleNode(), 0.5, fleetRng)
	} else {
		fleet, err = workload.UniformFleet(w.nodes, workload.BigNode())
	}
	if err != nil {
		t.Fatal(err)
	}
	arrRng := rand.New(rand.NewSource(w.seed + 1))
	var arrivals []workload.Arrival
	if w.bursty {
		arrivals, err = workload.BurstyArrivals(w.apps, 0.05, 6, 900, arrRng)
	} else {
		arrivals, err = workload.PoissonArrivals(w.apps, w.rate, arrRng)
	}
	if err != nil {
		t.Fatal(err)
	}
	if w.quantise > 0 {
		for i := range arrivals {
			arrivals[i].At = math.Floor(arrivals[i].At/w.quantise) * w.quantise
		}
	}
	rng := rand.New(rand.NewSource(w.seed + 2))
	var d *Dispatcher
	if w.adaptive {
		ad := moe.NewAdaptive(model, moe.AdaptiveConfig{})
		if !optimised {
			ad.DisableMemo()
		}
		d = NewMoEPredictor(ad, rng)
	} else {
		st := moe.NewStatic(model)
		if !optimised {
			st = st.WithoutMemo()
		}
		d = NewMoEPredictor(st, rng)
	}
	if !optimised {
		d.NoBatchPrepare = true
	}
	c, err := cluster.NewHetero(cluster.DefaultConfig(), cluster.SpecsFrom(fleet))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunOpen(cluster.Submissions(arrivals), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != w.apps || res.MakespanSec <= 0 {
		t.Fatalf("degenerate run: %d apps (want %d), makespan %v", len(res.Apps), w.apps, res.MakespanSec)
	}
	return res
}

// TestServingDifferential25Workloads pins the serving optimisations as
// exactly semantics-preserving: across 25 varied open-system workloads the
// optimised and fully-opted-out runs must agree bit-for-bit (==, not
// tolerance) on makespan, kill counts and every per-app timestamp.
func TestServingDifferential25Workloads(t *testing.T) {
	model := moEModel(t, 5)
	cases := servingCases()
	if len(cases) != 25 {
		t.Fatalf("suite has %d workloads, want 25", len(cases))
	}
	for _, w := range cases {
		t.Run(w.name, func(t *testing.T) {
			t.Parallel()
			on := servingRun(t, w, model, true)
			off := servingRun(t, w, model, false)
			if on.MakespanSec != off.MakespanSec {
				t.Errorf("makespan: optimised %v != reference %v", on.MakespanSec, off.MakespanSec)
			}
			if on.OOMKills != off.OOMKills {
				t.Errorf("OOM kills: optimised %d != reference %d", on.OOMKills, off.OOMKills)
			}
			if len(on.Apps) != len(off.Apps) {
				t.Fatalf("app count: optimised %d != reference %d", len(on.Apps), len(off.Apps))
			}
			for i := range on.Apps {
				a, b := on.Apps[i], off.Apps[i]
				if a.SubmitTime != b.SubmitTime || a.ReadyTime != b.ReadyTime ||
					a.StartTime != b.StartTime || a.DoneTime != b.DoneTime {
					t.Errorf("app %d timestamps diverge: optimised {%v %v %v %v} != reference {%v %v %v %v}",
						i, a.SubmitTime, a.ReadyTime, a.StartTime, a.DoneTime,
						b.SubmitTime, b.ReadyTime, b.StartTime, b.DoneTime)
				}
			}
		})
	}
}

// benchmarkAdmission isolates the prediction-serving path the engine runs at
// every admission — feature gating, two-point calibration and the allocation
// plan — with the event loop excluded: apps are pre-admitted, gated in
// engine-sized waves through PrepareBatch, then planned against a fixed node.
func benchmarkAdmission(b *testing.B, apps int) {
	model, err := moe.TrainDefault(rand.New(rand.NewSource(5)))
	if err != nil {
		b.Fatal(err)
	}
	cat := workload.Catalog()
	jobRng := rand.New(rand.NewSource(11))
	jobs := make([]workload.Job, apps)
	for i := range jobs {
		jobs[i] = workload.Job{Bench: cat[jobRng.Intn(len(cat))], InputGB: 5 + jobRng.Float64()*120}
	}
	cfg := cluster.DefaultConfig()
	node := cluster.New(cfg).Nodes()[0]
	free := node.FreeGB()
	const waveSize = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := cluster.New(cfg)
		admitted := make([]*cluster.App, apps)
		for j, job := range jobs {
			admitted[j] = c.AddReadyApp(job)
		}
		d := NewMoE(model, rand.New(rand.NewSource(7)))
		b.StartTimer()
		for lo := 0; lo < len(admitted); lo += waveSize {
			hi := lo + waveSize
			if hi > len(admitted) {
				hi = len(admitted)
			}
			d.PrepareBatch(c, admitted[lo:hi])
		}
		for _, app := range admitted {
			est, ok := d.Est.Estimate(app)
			d.plan(cfg, app, node, free, est, ok)
		}
	}
}

func BenchmarkSchedulerAdmission10k(b *testing.B)  { benchmarkAdmission(b, 10_000) }
func BenchmarkSchedulerAdmission100k(b *testing.B) { benchmarkAdmission(b, 100_000) }

// moeScaleRun is the end-to-end open-system serving benchmark: a 64-node
// bimodal fleet absorbing a Poisson arrival stream under the MoE scheme,
// whole engine included. serving=false opts out of the memo, batched gating
// and the indexed gate, isolating their combined contribution.
func moeScaleRun(b *testing.B, apps int, serving bool) {
	b.Helper()
	const nodes = 64
	fleet, err := workload.BimodalFleet(nodes, workload.BigNode(), workload.LittleNode(), 0.5, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	specs := cluster.SpecsFrom(fleet)
	arrivals, err := workload.PoissonArrivals(apps, 0.018, rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	subs := cluster.Submissions(arrivals)
	model, err := moe.TrainDefault(rand.New(rand.NewSource(5)))
	if err != nil {
		b.Fatal(err)
	}
	if !serving {
		model.SetLinearGate(true)
	}
	cfg := cluster.DefaultConfig()
	cfg.FleetAwareSizing = false
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := cluster.NewHetero(cfg, specs)
		if err != nil {
			b.Fatal(err)
		}
		var d *Dispatcher
		if serving {
			d = NewMoE(model, rand.New(rand.NewSource(7)))
		} else {
			d = NewMoEPredictor(moe.NewStatic(model).WithoutMemo(), rand.New(rand.NewSource(7)))
			d.PolicyName = "MoE"
			d.NoBatchPrepare = true
		}
		res, err := c.RunOpen(subs, d)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Apps) != apps {
			b.Fatalf("%d apps completed, want %d", len(res.Apps), apps)
		}
	}
}

func BenchmarkOpenSystemMoE10k(b *testing.B)           { moeScaleRun(b, 10_000, true) }
func BenchmarkOpenSystemMoE100k(b *testing.B)          { moeScaleRun(b, 100_000, true) }
func BenchmarkOpenSystemMoE100kNoServing(b *testing.B) { moeScaleRun(b, 100_000, false) }
