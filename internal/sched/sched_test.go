package sched

import (
	"math/rand"
	"testing"

	"moespark/internal/cluster"
	"moespark/internal/memfunc"
	"moespark/internal/metrics"
	"moespark/internal/moe"
	"moespark/internal/workload"
)

// runMix schedules jobs under a freshly-built policy and returns the
// comparison against the serial baseline.
func runMix(t *testing.T, jobs []workload.Job, mk func() *Dispatcher) metrics.Comparison {
	t.Helper()
	c := cluster.New(cluster.DefaultConfig())
	res, err := c.Run(jobs, mk())
	if err != nil {
		t.Fatalf("run under %s: %v", mk().Name(), err)
	}
	run, err := metrics.FromResult(c, res)
	if err != nil {
		t.Fatalf("metrics under %s: %v", mk().Name(), err)
	}
	base := metrics.SerialBaseline(c, jobs)
	return metrics.Compare(run, base)
}

func moEModel(t *testing.T, seed int64) *moe.Model {
	t.Helper()
	m, err := moe.TrainDefault(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("TrainDefault: %v", err)
	}
	return m
}

func quasarModel(t *testing.T, seed int64) *QuasarModel {
	t.Helper()
	q, err := TrainQuasar(workload.TrainingSet(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("TrainQuasar: %v", err)
	}
	return q
}

func testJobs(t *testing.T, label string, seed int64) []workload.Job {
	t.Helper()
	s, err := workload.ScenarioByLabel(label)
	if err != nil {
		t.Fatal(err)
	}
	return workload.RandomMix(s, rand.New(rand.NewSource(seed)))
}

func TestIsolatedMatchesSerialBaseline(t *testing.T) {
	jobs := testJobs(t, "L4", 1)
	cmp := runMix(t, jobs, NewIsolated)
	// The serial isolated policy should track the analytic serial baseline
	// within a small tolerance (fluid startup effects only).
	c := cluster.New(cluster.DefaultConfig())
	base := metrics.SerialBaseline(c, jobs)
	if cmp.NormalizedSTP < base.STP*0.9 || cmp.NormalizedSTP > base.STP*1.1 {
		t.Errorf("isolated STP = %v, want ~%v (serial baseline)", cmp.NormalizedSTP, base.STP)
	}
	if cmp.ANTTReductionPct < -10 || cmp.ANTTReductionPct > 10 {
		t.Errorf("isolated ANTT reduction = %v%%, want ~0", cmp.ANTTReductionPct)
	}
}

func TestCoLocationOrderingMatchesPaper(t *testing.T) {
	// The paper's headline ordering on large mixes (Figure 6):
	// Pairwise < Quasar <= MoE <= Oracle, with Pairwise falling far behind
	// at scale (it cannot co-locate beyond two applications per node) and
	// MoE close to the ideal predictor (paper: 83.9 %).
	moeModel := moEModel(t, 2)
	qModel := quasarModel(t, 3)
	var pair, quas, ours, oracle float64
	const mixes = 6
	for i := int64(0); i < mixes; i++ {
		jobs := testJobs(t, "L10", 10+i)
		pair += runMix(t, jobs, NewPairwise).NormalizedSTP
		quas += runMix(t, jobs, func() *Dispatcher { return NewQuasar(qModel, rand.New(rand.NewSource(40+i))) }).NormalizedSTP
		ours += runMix(t, jobs, func() *Dispatcher { return NewMoE(moeModel, rand.New(rand.NewSource(50+i))) }).NormalizedSTP
		oracle += runMix(t, jobs, NewOracle).NormalizedSTP
	}
	t.Logf("normalized STP (avg of %d mixes): pairwise=%.2f quasar=%.2f moe=%.2f oracle=%.2f",
		mixes, pair/mixes, quas/mixes, ours/mixes, oracle/mixes)
	if !(pair < ours && ours <= oracle*1.02) {
		t.Errorf("STP ordering violated: pairwise=%.2f moe=%.2f oracle=%.2f", pair, ours, oracle)
	}
	if ours < quas*0.98 {
		t.Errorf("MoE (%.2f) should not trail Quasar (%.2f)", ours, quas)
	}
	if ours < 0.72*oracle {
		t.Errorf("MoE achieves %.1f%% of Oracle STP, want >= 72%% (paper: ~84%%)", ours/oracle*100)
	}
	if pair > 0.85*oracle {
		t.Errorf("Pairwise achieves %.1f%% of Oracle STP, should fall clearly behind at L10", pair/oracle*100)
	}
	// All co-location schemes must beat serial isolation clearly.
	if pair/mixes < 1.5 {
		t.Errorf("pairwise normalized STP %.2f, expected clear win over serial", pair/mixes)
	}
}

func TestMoEBeatsUnifiedModels(t *testing.T) {
	moeModel := moEModel(t, 4)
	jobs := testJobs(t, "L6", 20)
	ours := runMix(t, jobs, func() *Dispatcher { return NewMoE(moeModel, rand.New(rand.NewSource(60))) })
	for _, fam := range memfunc.Families {
		fam := fam
		uni := runMix(t, jobs, func() *Dispatcher { return NewUnified(fam, rand.New(rand.NewSource(61))) })
		if uni.NormalizedSTP > ours.NormalizedSTP*1.05 {
			t.Errorf("unified %v STP %.2f unexpectedly beats MoE %.2f", fam, uni.NormalizedSTP, ours.NormalizedSTP)
		}
	}
}

func TestMoEBeatsOnlineSearch(t *testing.T) {
	moeModel := moEModel(t, 5)
	jobs := testJobs(t, "L6", 30)
	ours := runMix(t, jobs, func() *Dispatcher { return NewMoE(moeModel, rand.New(rand.NewSource(70))) })
	online := runMix(t, jobs, func() *Dispatcher { return NewOnlineSearch(rand.New(rand.NewSource(71))) })
	if online.NormalizedSTP >= ours.NormalizedSTP {
		t.Errorf("online search STP %.2f should trail MoE %.2f (probing overhead)",
			online.NormalizedSTP, ours.NormalizedSTP)
	}
}

func TestANTTReductionPositiveForCoLocation(t *testing.T) {
	moeModel := moEModel(t, 6)
	jobs := testJobs(t, "L8", 40)
	cmp := runMix(t, jobs, func() *Dispatcher { return NewMoE(moeModel, rand.New(rand.NewSource(80))) })
	if cmp.ANTTReductionPct <= 0 {
		t.Errorf("MoE ANTT reduction = %.1f%%, want positive", cmp.ANTTReductionPct)
	}
	if cmp.Speedup <= 1 {
		t.Errorf("MoE makespan speedup = %.2f, want > 1", cmp.Speedup)
	}
}

func TestOracleNoOOMKills(t *testing.T) {
	jobs := testJobs(t, "L8", 50)
	cmp := runMix(t, jobs, NewOracle)
	if cmp.OOMKills != 0 {
		t.Errorf("oracle run had %d OOM kills, want 0 (perfect predictions)", cmp.OOMKills)
	}
}

func TestDispatcherRespectsPairwiseCap(t *testing.T) {
	jobs := testJobs(t, "L8", 60)
	c := cluster.New(cluster.DefaultConfig())
	pw := NewPairwise()
	probe := &capProbe{inner: pw, t: t, maxApps: 2}
	if _, err := c.Run(jobs, probe); err != nil {
		t.Fatal(err)
	}
}

// capProbe wraps a policy and asserts the per-node app cap after every
// scheduling round.
type capProbe struct {
	inner   *Dispatcher
	t       *testing.T
	maxApps int
}

func (p *capProbe) Name() string { return p.inner.Name() }
func (p *capProbe) Prepare(c *cluster.Cluster, a *cluster.App) cluster.ProfilePlan {
	return p.inner.Prepare(c, a)
}
func (p *capProbe) Schedule(c *cluster.Cluster) {
	p.inner.Schedule(c)
	for _, n := range c.Nodes() {
		if got := n.AppCount(); got > p.maxApps {
			p.t.Fatalf("node %d hosts %d apps, cap %d", n.ID, got, p.maxApps)
		}
	}
}

func TestMoEProfilingContributesToOutput(t *testing.T) {
	// A tiny app whose profiling volume covers the whole input must finish
	// during profiling.
	moeModel := moEModel(t, 7)
	b, err := workload.Find("SP.CoreRDD")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []workload.Job{{Bench: b, InputGB: 0.1}}
	c := cluster.New(cluster.DefaultConfig())
	res, err := c.Run(jobs, NewMoE(moeModel, rand.New(rand.NewSource(90))))
	if err != nil {
		t.Fatal(err)
	}
	app := res.Apps[0]
	if app.State != cluster.StateDone {
		t.Fatalf("app state %v, want done", app.State)
	}
	if app.StartTime >= 0 {
		t.Errorf("app should have completed during profiling without executors")
	}
}
