package sched

import (
	"moespark/internal/cluster"
)

// Dispatcher is the paper's job dispatcher (Section 4.3) generalised over
// estimators and placement strategies. It walks the FCFS queue on every
// scheduling event and spawns executors on nodes with spare reserved memory,
// provided the aggregate CPU load stays under the node's capacity. Candidate
// nodes are ranked by the Placer; the default reproduces the historical
// first-fit scan exactly.
type Dispatcher struct {
	// PolicyName is reported by Name().
	PolicyName string
	// Est supplies memory predictions; nil disables prediction (Pairwise).
	Est Estimator
	// Placer ranks admissible candidate nodes for each placement; nil means
	// first fit in node-scan order (the historical behaviour).
	Placer Placer
	// Serial restricts execution to one application at a time (the
	// isolated-execution baseline).
	Serial bool
	// MaxAppsPerNode caps distinct applications per node (Pairwise uses 2);
	// 0 means bounded only by memory and CPU.
	MaxAppsPerNode int
	// ReserveAllFree makes a co-located executor reserve the node's entire
	// free memory (the Pairwise heap policy).
	ReserveAllFree bool
	// SafetyMargin over-provisions predicted footprints by this fraction.
	SafetyMargin float64
	// CheckCPU enforces the dispatcher's aggregate-CPU admission rule.
	CheckCPU bool
	// NoBatchPrepare disables batched admission-wave preparation: the wave
	// is prepared app by app even when the estimator supports batching. The
	// batched path is bit-identical (pinned by differential tests), so this
	// exists for A/B benchmarking.
	NoBatchPrepare bool

	// Reusable scratch buffers: Schedule sits on the simulation's hottest
	// path, and regrowing these every call shows up in the placement
	// benchmark.
	cand    scoredNodes
	waitBuf []*cluster.App
}

var (
	_ cluster.Scheduler      = (*Dispatcher)(nil)
	_ cluster.Observer       = (*Dispatcher)(nil)
	_ cluster.BatchScheduler = (*Dispatcher)(nil)
)

// Name implements cluster.Scheduler.
func (d *Dispatcher) Name() string { return d.PolicyName }

// Prepare implements cluster.Scheduler by delegating to the estimator.
func (d *Dispatcher) Prepare(_ *cluster.Cluster, app *cluster.App) cluster.ProfilePlan {
	if d.Est == nil {
		return cluster.ProfilePlan{}
	}
	return d.Est.Prepare(app)
}

// PrepareBatch implements cluster.BatchScheduler: an estimator with a batch
// face plans the whole admission wave in one call; everything else is
// prepared app by app, exactly as the per-app engine path would.
func (d *Dispatcher) PrepareBatch(_ *cluster.Cluster, apps []*cluster.App) []cluster.ProfilePlan {
	if d.Est == nil {
		return make([]cluster.ProfilePlan, len(apps))
	}
	if be, ok := d.Est.(BatchEstimator); ok && !d.NoBatchPrepare {
		return be.PrepareBatch(apps)
	}
	plans := make([]cluster.ProfilePlan, len(apps))
	for i, app := range apps {
		plans[i] = d.Est.Prepare(app)
	}
	return plans
}

// Observe implements cluster.Observer: realised footprints are forwarded to
// the estimator when it participates in the online prediction pipeline, and
// dropped otherwise. Forwarding only ever updates model state, never cluster
// state, so non-adaptive estimators behave exactly as before.
func (d *Dispatcher) Observe(_ *cluster.Cluster, e *cluster.Executor, outcome cluster.ExecOutcome) {
	if obs, ok := d.Est.(ObservingEstimator); ok {
		obs.Observe(e, outcome)
	}
}

// Schedule implements cluster.Scheduler.
func (d *Dispatcher) Schedule(c *cluster.Cluster) {
	if d.Serial {
		d.scheduleSerial(c)
		return
	}
	// Two passes: applications with no executor yet go first so waiting
	// jobs start as soon as possible (Section 4.3), then everyone grows
	// towards its fleet cap, FCFS within each pass.
	waiting := d.appendWaiting(c)
	for _, app := range waiting {
		if len(app.Executors) == 0 {
			d.placeApp(c, app)
		}
	}
	for _, app := range waiting {
		d.placeApp(c, app)
	}
	// Third pass: dynamically adjust the data allocation of running
	// executors as memory frees up (Section 4.3: "the number of data items
	// to give to the co-located executor is dynamically adjusted over
	// time"). Only the active set can contain running apps, so the walk
	// stays proportional to in-flight work on long arrival streams.
	if d.Est != nil {
		for _, app := range c.ActiveApps() {
			if app.State == cluster.StateRunning {
				d.growExecutors(c, app)
			}
		}
	}
}

// appendWaiting fills the reusable waiting-queue buffer without allocating
// per call.
func (d *Dispatcher) appendWaiting(c *cluster.Cluster) []*cluster.App {
	d.waitBuf = c.AppendWaitingApps(d.waitBuf[:0])
	return d.waitBuf
}

// growExecutors widens shrunken data allocations toward the fair share when
// their node has free memory.
func (d *Dispatcher) growExecutors(c *cluster.Cluster, app *cluster.App) {
	est, ok := d.Est.Estimate(app)
	if !ok {
		return
	}
	margin := 1 + d.SafetyMargin
	for _, e := range app.Executors {
		if e.ItemsGB >= e.FairShareGB {
			continue
		}
		free := e.Node.FreeGB()
		if free <= 0.5 {
			continue
		}
		items := clampItems(est.Items((e.ReservedGB+free)/margin), app.RemainingGB)
		if items > e.FairShareGB {
			items = e.FairShareGB
		}
		if items <= e.ItemsGB*1.05 {
			continue // not worth the churn
		}
		reserve := est.Footprint(items) * margin
		if reserve > e.ReservedGB+free {
			reserve = e.ReservedGB + free
		}
		if reserve < e.ReservedGB {
			reserve = e.ReservedGB
		}
		if c.Grow(e, reserve, items) == nil {
			// Grow may clamp the allocation to the remaining work; restamp
			// the prediction for what was actually granted.
			e.PredictedGB = est.Footprint(e.ItemsGB)
		}
	}
}

// scheduleSerial runs the FCFS head exclusively: executors get whole nodes
// with all their memory, and no other application starts until it finishes.
// The active set is FCFS-ordered and holds exactly the non-done apps, so its
// first entry is the head the full scan used to find.
func (d *Dispatcher) scheduleSerial(c *cluster.Cluster) {
	var head *cluster.App
	if active := c.ActiveApps(); len(active) > 0 {
		head = active[0]
	}
	if head == nil || (head.State != cluster.StateReady && head.State != cluster.StateRunning) {
		return
	}
	for _, n := range c.Nodes() {
		if len(head.Executors) >= head.MaxExecutors || head.RemainingGB <= 0 {
			return
		}
		if !n.Available() || len(n.Executors) > 0 || head.ExecutorOn(n) {
			continue
		}
		share := remainingShare(head)
		if _, err := c.Spawn(head, n, n.AllocatableGB(), share); err != nil {
			continue
		}
	}
}

// remainingShare is the fair data allocation for the app's next executor.
func remainingShare(app *cluster.App) float64 {
	slots := app.MaxExecutors - len(app.Executors)
	if slots < 1 {
		slots = 1
	}
	return app.RemainingGB / float64(slots)
}

// placeApp tries to spawn executors for one application on compatible nodes,
// best Placer score first. Admission checks are independent across nodes
// (a spawn on one node changes neither another node's free memory nor its
// CPU demand), so gathering candidates before spawning places exactly the
// executors the interleaved first-fit scan used to.
func (d *Dispatcher) placeApp(c *cluster.Cluster, app *cluster.App) {
	if len(app.Executors) >= app.MaxExecutors || app.RemainingGB <= 0 {
		return
	}
	cfg := c.Config()
	demand := app.Job.Bench.CPULoad
	// The estimate is app-level state: fetch it once per placement pass and
	// thread it through planning and the PredictedGB stamp, so the stamp is
	// guaranteed to come from the same estimate the plan used.
	var est MemEstimate
	haveEst := false
	if d.Est != nil {
		est, haveEst = d.Est.Estimate(app)
	}
	d.cand.reset()
	for _, n := range c.Nodes() {
		if !n.Available() {
			continue
		}
		if app.ExecutorOn(n) || (app.BlockedOn(n, c.Now()) && len(n.Executors) > 0) {
			continue
		}
		if d.MaxAppsPerNode > 0 && n.AppCount() >= d.MaxAppsPerNode {
			continue
		}
		if d.CheckCPU && n.CPUDemand()+demand > n.CPUCapacity()+1e-9 {
			continue
		}
		if n.FreeGB() <= cfg.MinChunkGB {
			continue
		}
		score := 0.0
		if d.Placer != nil {
			score = d.Placer.Score(c, app, n)
		}
		d.cand.add(n, score)
	}
	if d.Placer != nil {
		d.cand.sortByScore()
	}
	for _, n := range d.cand.nodes {
		if len(app.Executors) >= app.MaxExecutors || app.RemainingGB <= 0 {
			return
		}
		reserve, items, ok := d.plan(cfg, app, n, n.FreeGB(), est, haveEst)
		if !ok {
			continue
		}
		e, err := c.Spawn(app, n, reserve, items)
		if err != nil {
			continue
		}
		if haveEst {
			// Spawn may clamp the allocation to the remaining work; stamp
			// the prediction for what was actually granted so the
			// observation hook compares like with like.
			e.PredictedGB = est.Footprint(e.ItemsGB)
		}
	}
}

// plan decides the reservation and data allocation for a prospective
// executor given the node's free memory and the app's estimate (fetched
// once by the caller — it is app-level, not node-level, state).
func (d *Dispatcher) plan(cfg cluster.Config, app *cluster.App, n *cluster.Node, free float64, est MemEstimate, haveEst bool) (reserve, items float64, ok bool) {
	share := remainingShare(app)
	if !haveEst {
		// No prediction: Spark-default allocation. The first executor on a
		// node takes the default heap (half the node); a co-located one
		// takes all free memory (the Pairwise policy). Items follow the
		// Spark default scheduler: the fair share.
		if d.ReserveAllFree && len(n.Executors) > 0 {
			return free, share, true
		}
		half := n.AllocatableGB() / 2
		if half > free {
			half = free
		}
		return half, share, true
	}
	margin := 1 + d.SafetyMargin
	need := est.Footprint(share) * margin
	if need <= free {
		return need, share, true
	}
	// Shrink the allocation to what fits the free memory.
	fit := clampItems(est.Items(free/margin), app.RemainingGB)
	if fit < cfg.MinChunkGB {
		// The model claims nothing fits. If the node is otherwise empty and
		// the application has no executor at all, run it anyway with the
		// default heap: a mispredicting model must not starve a job forever.
		if len(n.Executors) == 0 && len(app.Executors) == 0 {
			return free, share, true
		}
		return 0, 0, false
	}
	if fit > share {
		fit = share
	}
	reserve = est.Footprint(fit) * margin
	if reserve > free {
		reserve = free
	}
	return reserve, fit, true
}
