package sched

import (
	"math/rand"
	"testing"

	"moespark/internal/cluster"
	"moespark/internal/moe"
	"moespark/internal/workload"
)

// End-to-end observation plumbing: an engine run under the adaptive MoE
// scheme must deliver realised footprints through the dispatcher's Observe
// into the predictor — and through the priority wrapper just the same.
func TestAdaptiveObservationPlumbing(t *testing.T) {
	model, err := moe.TrainDefault(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := workload.PoissonArrivals(10, 60.0/3600, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}

	ad := moe.NewAdaptive(model, moe.AdaptiveConfig{})
	c := cluster.New(cluster.DefaultConfig())
	if _, err := c.RunOpen(cluster.Submissions(arrivals), NewMoEPredictor(ad, rand.New(rand.NewSource(3)))); err != nil {
		t.Fatal(err)
	}
	if ad.Observations() == 0 {
		t.Error("engine run delivered no observations to the adaptive predictor")
	}

	tagged, err := workload.TagArrivals(arrivals, workload.LatencyBatchMix(0.3), rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	ad2 := moe.NewAdaptive(model, moe.AdaptiveConfig{})
	c2 := cluster.New(cluster.DefaultConfig())
	if _, err := c2.RunOpen(cluster.Submissions(tagged), NewPriority(NewMoEPredictor(ad2, rand.New(rand.NewSource(3))), true)); err != nil {
		t.Fatal(err)
	}
	if ad2.Observations() == 0 {
		t.Error("priority wrapper dropped the observation flow")
	}
}

// The dispatcher stamps each executor's planned prediction so observations
// compare like with like; estimator-less schemes leave it zero.
func TestExecutorPredictedGBStamped(t *testing.T) {
	model, err := moe.TrainDefault(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := workload.Table4Mix()
	if err != nil {
		t.Fatal(err)
	}
	probe := &predictedProbe{inner: NewMoE(model, rand.New(rand.NewSource(9)))}
	c := cluster.New(cluster.DefaultConfig())
	if _, err := c.Run(jobs[:8], probe); err != nil {
		t.Fatal(err)
	}
	if !probe.sawStamp {
		t.Error("no executor carried a stamped PredictedGB under the MoE scheme")
	}
}

// predictedProbe checks executor stamps right after each scheduling pass.
type predictedProbe struct {
	inner    *Dispatcher
	sawStamp bool
}

func (p *predictedProbe) Name() string { return p.inner.Name() }
func (p *predictedProbe) Prepare(c *cluster.Cluster, a *cluster.App) cluster.ProfilePlan {
	return p.inner.Prepare(c, a)
}
func (p *predictedProbe) Schedule(c *cluster.Cluster) {
	p.inner.Schedule(c)
	for _, n := range c.Nodes() {
		for _, e := range n.Executors {
			if e.PredictedGB > 0 {
				p.sawStamp = true
			}
		}
	}
}
