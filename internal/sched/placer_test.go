package sched

import (
	"math/rand"
	"testing"

	"moespark/internal/cluster"
	"moespark/internal/workload"
)

func heteroCluster(t *testing.T, specs []cluster.NodeSpec) *cluster.Cluster {
	t.Helper()
	c, err := cluster.NewHetero(cluster.DefaultConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func placerJob(t *testing.T, gb float64) workload.Job {
	t.Helper()
	b, err := workload.Find("HB.Sort")
	if err != nil {
		t.Fatal(err)
	}
	return workload.Job{Bench: b, InputGB: gb}
}

// TestFirstFitMatchesNilPlacer runs a full seeded mix under the nil
// (historical) placer and the explicit first-fit placer: results must be
// bit-identical, which is the contract the default rides on.
func TestFirstFitMatchesNilPlacer(t *testing.T) {
	sc, err := workload.ScenarioByLabel("L8")
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.RandomMix(sc, rand.New(rand.NewSource(3)))
	run := func(p Placer) *cluster.Result {
		d := NewOracle()
		d.Placer = p
		c := cluster.New(cluster.DefaultConfig())
		res, err := c.Run(mix, d)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(nil), run(NewFirstFit())
	if a.MakespanSec != b.MakespanSec {
		t.Errorf("makespan %v vs %v", a.MakespanSec, b.MakespanSec)
	}
	for i := range a.Apps {
		if a.Apps[i].DoneTime != b.Apps[i].DoneTime {
			t.Errorf("app %d done %v vs %v", i, a.Apps[i].DoneTime, b.Apps[i].DoneTime)
		}
	}
}

// TestBestFitPrefersTightestNode gives one candidate less free memory: the
// best-fit placer must pick it first, while first fit takes scan order.
func TestBestFitPrefersTightestNode(t *testing.T) {
	cfg := cluster.DefaultConfig()
	big := cfg.DefaultNodeSpec()
	small := cfg.DefaultNodeSpec()
	small.RAMGB = 40 // less free memory than the 64 GB nodes

	firstExec := func(p Placer) int {
		c := heteroCluster(t, []cluster.NodeSpec{big, big, small})
		d := NewOracle()
		d.Placer = p
		app := c.AddReadyApp(placerJob(t, 8)) // single-executor app
		d.Schedule(c)
		if len(app.Executors) != 1 {
			t.Fatalf("placed %d executors, want 1", len(app.Executors))
		}
		return app.Executors[0].Node.ID
	}
	if got := firstExec(NewFirstFit()); got != 0 {
		t.Errorf("first fit placed on node %d, want 0 (scan order)", got)
	}
	if got := firstExec(NewBestFitMemory()); got != 2 {
		t.Errorf("best fit placed on node %d, want 2 (tightest)", got)
	}
}

// TestSpeedAwarePrefersFastIdleNode puts the fastest machine last in scan
// order: the speed-aware placer must still pick it.
func TestSpeedAwarePrefersFastIdleNode(t *testing.T) {
	cfg := cluster.DefaultConfig()
	slow := cfg.DefaultNodeSpec()
	slow.SpeedFactor = 0.5
	fast := cfg.DefaultNodeSpec()
	fast.SpeedFactor = 2

	c := heteroCluster(t, []cluster.NodeSpec{slow, slow, fast})
	d := NewOracle()
	d.Placer = NewSpeedAware()
	app := c.AddReadyApp(placerJob(t, 8))
	d.Schedule(c)
	if len(app.Executors) != 1 {
		t.Fatalf("placed %d executors, want 1", len(app.Executors))
	}
	if got := app.Executors[0].Node.ID; got != 2 {
		t.Errorf("speed-aware placed on node %d, want 2 (the fast one)", got)
	}
}

// TestPlacerSkipsUnavailableNodes drains the only attractive node: no placer
// may place there.
func TestPlacerSkipsUnavailableNodes(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 2
	c := cluster.New(cfg)
	if err := c.ScheduleNodeEvents(cluster.NodeEvent{At: 0, Kind: cluster.NodeDrain, Node: 0}); err != nil {
		t.Fatal(err)
	}
	d := NewOracle()
	d.Placer = NewBestFitMemory()
	res, err := c.Run([]workload.Job{placerJob(t, 8)}, d)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Apps[0]
	if a.DoneTime < 0 {
		t.Fatal("app never finished")
	}
}

// TestScoredNodesStableSort pins the tie-break: equal scores keep insertion
// order, so constant scorers degrade to first fit.
func TestScoredNodesStableSort(t *testing.T) {
	var s scoredNodes
	nodes := make([]*cluster.Node, 5)
	c := cluster.New(cluster.DefaultConfig())
	copy(nodes, c.Nodes()[:5])
	scores := []float64{1, 3, 1, 3, 2}
	for i, n := range nodes {
		s.add(n, scores[i])
	}
	s.sortByScore()
	wantIDs := []int{1, 3, 4, 0, 2}
	for i, n := range s.nodes {
		if n.ID != wantIDs[i] {
			t.Errorf("rank %d = node %d, want %d", i, n.ID, wantIDs[i])
		}
	}
}
