package moe

import (
	"math/rand"

	"moespark/internal/workload"
)

// BuildTraining profiles the given benchmarks offline (feature collection on
// a small input, footprint sweep across the training grid) and returns them
// as training programs.
func BuildTraining(benches []*workload.Benchmark, rng *rand.Rand) []TrainingProgram {
	out := make([]TrainingProgram, 0, len(benches))
	for _, b := range benches {
		out = append(out, TrainingProgram{
			Name:     b.FullName(),
			Features: b.Counters(rng),
			Curve:    b.CurvePoints(workload.TrainingSweep, rng),
		})
	}
	return out
}

// TrainOnBenchmarks trains a model on the benchmarks, excluding the given
// full names (the paper's leave-one-out protocol also excludes equivalent
// implementations from other suites).
func TrainOnBenchmarks(benches []*workload.Benchmark, exclude map[string]bool, cfg Config, rng *rand.Rand) (*Model, error) {
	kept := make([]*workload.Benchmark, 0, len(benches))
	for _, b := range benches {
		if exclude[b.FullName()] {
			continue
		}
		kept = append(kept, b)
	}
	return Train(BuildTraining(kept, rng), cfg)
}

// TrainDefault trains on the paper's 16 HiBench+BigDataBench programs.
func TrainDefault(rng *rand.Rand) (*Model, error) {
	return TrainOnBenchmarks(workload.TrainingSet(), nil, Config{}, rng)
}
