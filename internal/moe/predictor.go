package moe

import (
	"moespark/internal/features"
	"moespark/internal/memfunc"
)

// Outcome classifies how an observed footprint became known to the system.
type Outcome int

// Observation outcomes.
const (
	// OutcomeCompleted: the executor ran to completion; its true footprint
	// was realised in full.
	OutcomeCompleted Outcome = iota + 1
	// OutcomeOOM: the executor was killed for overflowing its node's memory;
	// the prediction the placement was admitted on was too low.
	OutcomeOOM
)

// Observation is one predicted-vs-actual footprint outcome fed back into a
// Predictor: the engine learned an executor's true memory demand (at
// completion or OOM kill) and reports it against what the model predicted
// for the same data allocation.
type Observation struct {
	// Features is the runtime feature vector the prediction was made from.
	Features features.Vector
	// PCs is the application's position in the model's reduced feature
	// space (from the Selection), where gate self-training plants corrected
	// samples.
	PCs []float64
	// Family is the expert the gate selected for the application (the
	// routing decision the error window and teaching judge).
	Family memfunc.Family
	// Calibrated is the family of the curve that actually produced the
	// prediction — usually Family, but the fallback family when the
	// profiling points were infeasible for the selected expert. The
	// coefficient recalibration is keyed by it: a correction learned from
	// one curve shape's predictions must only ever be applied to that
	// shape.
	Calibrated memfunc.Family
	// AppID identifies the application uniquely for the lifetime of the
	// predictor (the MoE estimator issues a fresh sequence number per
	// prepared app, never reused across runs), so a predictor can act once
	// per app when it completes with several executors.
	AppID int
	// P1, P2 are the two profiling observations the prediction was
	// calibrated from; adaptive predictors re-calibrate alternative experts
	// through them when deciding whether the gate routed the app wrongly.
	P1, P2 memfunc.Point
	// ItemsGB is the data allocation the executor was responsible for.
	ItemsGB float64
	// PredictedGB is the footprint the scheduler planned with (after any
	// online recalibration) — the operative prediction whose error the gate
	// should judge experts by.
	PredictedGB float64
	// RawPredictedGB is the pure two-point calibration's footprint for the
	// same allocation, the stable regression target for coefficient
	// recalibration (correcting corrected values would chase a moving fix
	// point).
	RawPredictedGB float64
	// ActualGB is the true footprint from the workload ground truth.
	ActualGB float64
	// Outcome records how the footprint became known.
	Outcome Outcome
}

// Predictor is the online prediction pipeline the scheduler consumes instead
// of a concrete model: Predict produces a calibrated memory function for an
// application's runtime features and two profiling observations, and Observe
// feeds each predicted-vs-actual outcome back so adaptive implementations
// can recalibrate mid-stream. The static paper model is the Observe-is-a-no-op
// special case (Static); Adaptive recalibrates expert coefficients and
// reweights the gate from the observations.
type Predictor interface {
	// Name identifies the predictor in reports.
	Name() string
	// Predict selects an expert for the features and calibrates it with the
	// two profiling observations (the paper's 5 %/10 % runs).
	Predict(raw features.Vector, p1, p2 memfunc.Point) (Prediction, error)
	// Observe feeds one realised footprint back into the predictor.
	Observe(Observation)
}

// PredictRequest is one gating question: an application's raw runtime
// features plus its two profiling observations.
type PredictRequest struct {
	Raw    features.Vector
	P1, P2 memfunc.Point
}

// BatchResult pairs one request's prediction with its error.
type BatchResult struct {
	Prediction Prediction
	Err        error
}

// BatchPredictor is the optional batch face of a Predictor: PredictBatch
// answers all requests of one admission wave together, so implementations
// can deduplicate identical requests and reuse scratch state across the
// wave. Results are positional and each result must be exactly what Predict
// would have returned for that request — batching is a cost optimisation,
// never a semantic one. Callers fall back to per-request Predict when the
// predictor does not implement this interface.
type BatchPredictor interface {
	PredictBatch(reqs []PredictRequest) []BatchResult
}

// Static adapts a trained Model into the Predictor interface with no
// adaptation: Predict is exactly Model.Predict and Observe is a no-op. It is
// the default predictor behind the paper's MoE scheme, bit-for-bit identical
// to calling the model directly.
//
// Static carries a footprint memo (enabled by NewStatic): nothing mutates a
// static model mid-run, so every prediction is a pure function of its inputs
// and the memo survives the whole run. The memo still validates against the
// model epoch, so even an out-of-band Model.AddProgram invalidates it.
type Static struct {
	model *Model
	memo  *predictMemo
}

var _ Predictor = Static{}
var _ BatchPredictor = Static{}

// NewStatic wraps a trained model as a non-adaptive Predictor with the
// footprint memo enabled.
func NewStatic(m *Model) Static { return Static{model: m, memo: newPredictMemo()} }

// WithoutMemo returns a copy of the predictor with the footprint memo
// disabled — every Predict recomputes. The memoised path is bit-identical
// (pinned by the differential tests), so this exists for A/B benchmarking.
func (s Static) WithoutMemo() Static { return Static{model: s.model} }

// Name implements Predictor.
func (Static) Name() string { return "MoE-static" }

// Predict implements Predictor.
func (s Static) Predict(raw features.Vector, p1, p2 memfunc.Point) (Prediction, error) {
	if s.memo == nil {
		return s.model.Predict(raw, p1, p2)
	}
	key := memoKey{raw: raw, p1: p1, p2: p2}
	if pred, ok := s.memo.lookup(s.model.Epoch(), key); ok {
		return pred, nil
	}
	pred, err := s.model.Predict(raw, p1, p2)
	if err == nil {
		s.memo.store(key, pred)
	}
	return pred, err
}

// PredictBatch implements BatchPredictor. Per-request Predict already
// consults the run-long memo, which subsumes within-wave deduplication:
// the first occurrence of a repeated request computes, the rest hit.
func (s Static) PredictBatch(reqs []PredictRequest) []BatchResult {
	return predictSequential(s, reqs)
}

// Observe implements Predictor as a no-op.
func (Static) Observe(Observation) {}

// Model returns the wrapped model.
func (s Static) Model() *Model { return s.model }

// predictSequential answers a batch through the predictor's own Predict,
// preserving request order. It is the shared body of the BatchPredictor
// implementations whose deduplication lives in the memo layer.
func predictSequential(p Predictor, reqs []PredictRequest) []BatchResult {
	out := make([]BatchResult, len(reqs))
	for i, r := range reqs {
		out[i].Prediction, out[i].Err = p.Predict(r.Raw, r.P1, r.P2)
	}
	return out
}
