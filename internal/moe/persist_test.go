package moe

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"moespark/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := trainedModel(t, 501)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(loaded.Programs()) != len(m.Programs()) {
		t.Fatalf("program count %d, want %d", len(loaded.Programs()), len(m.Programs()))
	}
	if loaded.ConfidenceRadius() != m.ConfidenceRadius() {
		t.Errorf("threshold %v, want %v", loaded.ConfidenceRadius(), m.ConfidenceRadius())
	}
	// The loaded model must make identical selections.
	rng := rand.New(rand.NewSource(502))
	for _, b := range workload.Catalog() {
		counters := b.Counters(rng)
		want, err := m.SelectFamily(counters)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.SelectFamily(counters)
		if err != nil {
			t.Fatal(err)
		}
		if got.Family != want.Family || got.Confident != want.Confident {
			t.Errorf("%s: loaded selection (%v,%v), original (%v,%v)",
				b.FullName(), got.Family, got.Confident, want.Family, want.Confident)
		}
	}
	// End-to-end prediction works on the loaded model.
	b, _ := workload.Find("SP.Kmeans")
	pred, err := loaded.Predict(b.Counters(rng), b.ProfilePoint(1, rng), b.ProfilePoint(4, rng))
	if err != nil {
		t.Fatalf("Predict on loaded model: %v", err)
	}
	if pred.Func.Family != b.Truth.Family {
		t.Errorf("loaded model predicted %v, want %v", pred.Func.Family, b.Truth.Family)
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	cases := map[string]string{
		"garbage":     "not json",
		"bad version": `{"version": 99}`,
		"no programs": `{"version":1,"config":{"k":1,"confidence_factor":1.2},
			"scaler":{"min":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],
			"max":[1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1]},
			"pca":{"mean":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],
			"components":[],"dims":22,"k":0,"explained":[]},
			"programs":[]}`,
		"short scaler": `{"version":1,"scaler":{"min":[1],"max":[2]}}`,
	}
	//moevet:allow maporder subcases are independent; order affects only failure-log order
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Load should fail", name)
		}
	}
}

func TestLoadRejectsBadProgram(t *testing.T) {
	m := trainedModel(t, 503)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt a family label.
	s := strings.Replace(buf.String(), `"family": 1`, `"family": 42`, 1)
	if s == buf.String() {
		s = strings.Replace(buf.String(), `"family": 2`, `"family": 42`, 1)
	}
	if _, err := Load(strings.NewReader(s)); err == nil {
		t.Error("corrupt family label should fail to load")
	}
}
