package moe

import (
	"moespark/internal/features"
	"moespark/internal/memfunc"
)

// This file implements the footprint memo: a prediction cache in front of
// the gate + calibration pipeline, keyed by the complete input identity and
// validated by a version counter over every piece of mutable state the
// prediction reads. Arrival streams repeat benchmarks, so admissions keep
// asking the model the same question; a memo hit answers it without
// re-running the PCA projection, the KNN gate, the confidence scan over the
// training programs and the two-point calibration.
//
// The memo is exact by construction, never heuristically "fresh enough":
//
//   - The key carries everything a prediction is a function of besides model
//     state — the raw feature vector and both profiling points. Two calls
//     agreeing on the key and on the epoch are the same pure computation.
//
//   - The epoch is bumped by every mutation of the state Predict reads:
//     Model.AddProgram and Model.TeachGate bump the model's own counter, and
//     Adaptive adds a counter of its own bumped once per folded-in
//     observation (error windows and recalibration fits feed gate bias and
//     coefficient correction). A stale entry is therefore unreachable — any
//     path that could change the answer has already invalidated the cache.
//
// For Static the model epoch never moves during a run (nothing mutates a
// static model), so the memo survives the whole run; for Adaptive the memo
// lives between observations, which is exactly the window in which hits are
// provably bit-identical to recomputation.
type predictMemo struct {
	epoch   uint64
	entries map[memoKey]Prediction
}

// memoKey is the full input identity of one prediction. All fields are
// comparable values (the feature vector is an array), so the key works as a
// Go map key with bit-exact equality — no hashing or tolerance involved.
type memoKey struct {
	raw    features.Vector
	p1, p2 memfunc.Point
}

// memoLimit bounds the entry count. Distinct keys are bounded by distinct
// (benchmark, profiling-noise) combinations in a run; noisy streams can in
// principle produce unbounded distinct keys, so on overflow the memo drops
// everything and starts over (correctness never depends on an entry being
// present).
const memoLimit = 1 << 14

func newPredictMemo() *predictMemo {
	return &predictMemo{entries: map[memoKey]Prediction{}}
}

// lookup returns the memoised prediction for the key at the given epoch. A
// changed epoch empties the memo first: entries computed under older state
// must never be served.
func (m *predictMemo) lookup(epoch uint64, key memoKey) (Prediction, bool) {
	if m.epoch != epoch {
		m.epoch = epoch
		clear(m.entries)
		return Prediction{}, false
	}
	p, ok := m.entries[key]
	return p, ok
}

// store records a successful prediction computed at the epoch last passed to
// lookup. Failed predictions are recomputed every time — errors are rare,
// cheap to rediscover and not worth widening the entry type for.
func (m *predictMemo) store(key memoKey, p Prediction) {
	if len(m.entries) >= memoLimit {
		clear(m.entries)
	}
	m.entries[key] = p
}
