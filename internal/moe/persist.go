package moe

import (
	"encoding/json"
	"fmt"
	"io"

	"moespark/internal/classify"
	"moespark/internal/features"
	"moespark/internal/mathx"
	"moespark/internal/memfunc"
)

// The paper deploys the trained artefacts — the per-feature min/max bounds,
// the PCA transformation matrix and the labelled training programs — to the
// runtime scheduler. Save and Load serialise exactly those artefacts as
// JSON, so a model trained offline can be shipped to the coordinating node.

// modelJSON is the on-disk representation of a trained model.
type modelJSON struct {
	Version   int           `json:"version"`
	Config    configJSON    `json:"config"`
	Scaler    scalerJSON    `json:"scaler"`
	PCA       pcaJSON       `json:"pca"`
	Programs  []programJSON `json:"programs"`
	Threshold float64       `json:"confidence_threshold"`
}

type configJSON struct {
	K                int     `json:"k"`
	ConfidenceFactor float64 `json:"confidence_factor"`
}

type scalerJSON struct {
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`
}

type pcaJSON struct {
	Mean       []float64 `json:"mean"`
	Components []float64 `json:"components"` // row-major, dims x k
	Dims       int       `json:"dims"`
	K          int       `json:"k"`
	Explained  []float64 `json:"explained"`
}

type programJSON struct {
	Name     string    `json:"name"`
	Family   int       `json:"family"`
	FuncM    float64   `json:"m"`
	FuncB    float64   `json:"b"`
	R2       float64   `json:"r2"`
	PCs      []float64 `json:"pcs"`
	Residual float64   `json:"residual"`
}

const persistVersion = 1

// Save writes the model's deployable artefacts as JSON.
func (m *Model) Save(w io.Writer) error {
	pj := modelJSON{
		Version: persistVersion,
		Config: configJSON{
			K:                m.cfg.K,
			ConfidenceFactor: m.cfg.ConfidenceFactor,
		},
		Scaler: scalerJSON{
			Min: m.pipeline.Scaler.Min[:],
			Max: m.pipeline.Scaler.Max[:],
		},
		PCA: pcaJSON{
			Mean:       m.pipeline.PCA.Mean,
			Components: m.pipeline.PCA.Components.Data,
			Dims:       m.pipeline.PCA.Components.Rows,
			K:          m.pipeline.PCA.K,
			Explained:  m.pipeline.PCA.Explained,
		},
		Threshold: m.threshold,
	}
	for _, p := range m.programs {
		pj.Programs = append(pj.Programs, programJSON{
			Name:     p.Name,
			Family:   int(p.Family),
			FuncM:    p.Fit.Func.M,
			FuncB:    p.Fit.Func.B,
			R2:       p.Fit.R2,
			PCs:      p.PCs,
			Residual: p.Residual,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pj); err != nil {
		return fmt.Errorf("moe: encoding model: %w", err)
	}
	return nil
}

// Load reconstructs a model from its JSON artefacts. The KNN selector is
// rebuilt from the stored program projections.
func Load(r io.Reader) (*Model, error) {
	var pj modelJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("moe: decoding model: %w", err)
	}
	if pj.Version != persistVersion {
		return nil, fmt.Errorf("moe: unsupported model version %d", pj.Version)
	}
	if len(pj.Scaler.Min) != features.NumRaw || len(pj.Scaler.Max) != features.NumRaw {
		return nil, fmt.Errorf("moe: scaler bounds have %d/%d dims, want %d",
			len(pj.Scaler.Min), len(pj.Scaler.Max), features.NumRaw)
	}
	if pj.PCA.Dims != features.NumRaw || pj.PCA.K <= 0 ||
		len(pj.PCA.Components) != pj.PCA.Dims*pj.PCA.K ||
		len(pj.PCA.Mean) != pj.PCA.Dims {
		return nil, fmt.Errorf("moe: inconsistent PCA block (dims=%d k=%d)", pj.PCA.Dims, pj.PCA.K)
	}
	if len(pj.Programs) < 2 {
		return nil, fmt.Errorf("moe: model has %d programs, need at least 2", len(pj.Programs))
	}

	scaler := &features.Scaler{}
	copy(scaler.Min[:], pj.Scaler.Min)
	copy(scaler.Max[:], pj.Scaler.Max)
	comp := mathx.NewMatrix(pj.PCA.Dims, pj.PCA.K)
	copy(comp.Data, pj.PCA.Components)
	pipeline := &features.Pipeline{
		Scaler: scaler,
		PCA: &mathx.PCA{
			Mean:       pj.PCA.Mean,
			Components: comp,
			Explained:  pj.PCA.Explained,
			K:          pj.PCA.K,
		},
	}

	cfg := Config{K: pj.Config.K, ConfidenceFactor: pj.Config.ConfidenceFactor}.withDefaults()
	m := &Model{cfg: cfg, pipeline: pipeline, threshold: pj.Threshold}
	samples := make([]classify.Sample, 0, len(pj.Programs))
	for _, p := range pj.Programs {
		fam := memfunc.Family(p.Family)
		if !fam.Valid() {
			return nil, fmt.Errorf("moe: program %q has invalid family %d", p.Name, p.Family)
		}
		if len(p.PCs) != pj.PCA.K {
			return nil, fmt.Errorf("moe: program %q has %d PCs, want %d", p.Name, len(p.PCs), pj.PCA.K)
		}
		fn := memfunc.Func{Family: fam, M: p.FuncM, B: p.FuncB}
		m.programs = append(m.programs, ProgramLabel{
			Name:     p.Name,
			Family:   fam,
			Fit:      memfunc.Fit{Func: fn, R2: p.R2},
			PCs:      p.PCs,
			Residual: p.Residual,
		})
		samples = append(samples, classify.Sample{X: p.PCs, Label: int(fam)})
	}
	m.selector = classify.NewKNN(cfg.K)
	if err := m.selector.Fit(samples); err != nil {
		return nil, fmt.Errorf("moe: rebuilding selector: %w", err)
	}
	return m, nil
}
