package moe

import (
	"math/rand"
	"testing"

	"moespark/internal/memfunc"
	"moespark/internal/workload"
)

// samePrediction compares two predictions field by field with bit-exact
// equality (Prediction holds a PCs slice, so == does not apply directly).
func samePrediction(a, b Prediction) bool {
	if a.Func != b.Func || a.Uncorrected != b.Uncorrected ||
		a.FellBack != b.FellBack || a.Recalibrated != b.Recalibrated ||
		a.Family != b.Family || a.Distance != b.Distance || a.Confident != b.Confident {
		return false
	}
	if len(a.PCs) != len(b.PCs) {
		return false
	}
	for i := range a.PCs {
		if a.PCs[i] != b.PCs[i] {
			return false
		}
	}
	return true
}

// memoRequests builds a request stream with repeats: every benchmark is
// asked twice with identical inputs (the memo-hit case) and once with fresh
// profiling noise (the distinct-key case).
func memoRequests(t *testing.T, rng *rand.Rand) []PredictRequest {
	t.Helper()
	var reqs []PredictRequest
	for _, name := range []string{"HB.Sort", "HB.PageRank", "SB.MatrixFact", "SP.Kmeans"} {
		b, err := workload.Find(name)
		if err != nil {
			t.Fatal(err)
		}
		r := PredictRequest{Raw: b.Counters(rng), P1: b.ProfilePoint(0.5, rng), P2: b.ProfilePoint(2, rng)}
		reqs = append(reqs, r, r)
		reqs = append(reqs, PredictRequest{Raw: b.Counters(rng), P1: b.ProfilePoint(0.5, rng), P2: b.ProfilePoint(2, rng)})
	}
	return reqs
}

// TestModelEpochBumpsOnMutations pins the epoch contract the memo's
// correctness rests on: every successful model mutation bumps it, failed
// mutations do not, and a clone starts from the original's count but moves
// independently.
func TestModelEpochBumpsOnMutations(t *testing.T) {
	m := trainedModel(t, 21)
	if m.Epoch() != 0 {
		t.Fatalf("fresh model epoch = %d, want 0", m.Epoch())
	}
	pcs := m.Programs()[0].PCs
	if err := m.TeachGate(pcs, memfunc.LinearPower); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 1 {
		t.Fatalf("epoch after TeachGate = %d, want 1", m.Epoch())
	}
	if err := m.TeachGate(pcs, memfunc.Family(99)); err == nil {
		t.Fatal("teaching an invalid family must error")
	}
	if m.Epoch() != 1 {
		t.Fatalf("failed TeachGate bumped the epoch to %d", m.Epoch())
	}
	rng := rand.New(rand.NewSource(22))
	b, err := workload.Find("SB.Hive")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddProgram(TrainingProgram{
		Name:     b.FullName(),
		Features: b.Counters(rng),
		Curve:    b.CurvePoints(workload.TrainingSweep, rng),
	}); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 2 {
		t.Fatalf("epoch after AddProgram = %d, want 2", m.Epoch())
	}
	cp := m.Clone()
	if cp.Epoch() != 2 {
		t.Fatalf("clone epoch = %d, want 2", cp.Epoch())
	}
	if err := cp.TeachGate(pcs, memfunc.Exponential); err != nil {
		t.Fatal(err)
	}
	if cp.Epoch() != 3 || m.Epoch() != 2 {
		t.Fatalf("clone mutation: clone epoch %d (want 3), original %d (want 2)", cp.Epoch(), m.Epoch())
	}
}

// TestStaticMemoBitIdentical pins the static memo: hits are bit-identical
// to the memo-free pipeline, and the memo survives arbitrarily many
// predictions (a static run never bumps the epoch).
func TestStaticMemoBitIdentical(t *testing.T) {
	m := trainedModel(t, 23)
	memoised := NewStatic(m)
	plain := memoised.WithoutMemo()
	rng := rand.New(rand.NewSource(24))
	reqs := memoRequests(t, rng)
	for pass := 0; pass < 3; pass++ { // repeated passes exercise run-long survival
		for i, r := range reqs {
			want, errW := plain.Predict(r.Raw, r.P1, r.P2)
			got, errG := memoised.Predict(r.Raw, r.P1, r.P2)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("pass %d req %d: error mismatch plain=%v memo=%v", pass, i, errW, errG)
			}
			if errW == nil && !samePrediction(got, want) {
				t.Fatalf("pass %d req %d: memoised prediction diverged:\n got %+v\nwant %+v", pass, i, got, want)
			}
		}
	}
	if n := len(memoised.memo.entries); n == 0 {
		t.Fatal("static memo never stored an entry")
	} else if n >= len(reqs) {
		t.Fatalf("memo has %d entries for %d requests with repeats: dedup not happening", n, len(reqs))
	}
	if memoised.memo.epoch != m.Epoch() {
		t.Fatalf("memo epoch %d drifted from model epoch %d", memoised.memo.epoch, m.Epoch())
	}
}

// TestAdaptiveMemoInvalidatesOnEveryMutationPath drives each adaptive
// mutation path — plain observation fold-back (OnlineLS + error window),
// enough folds to activate gate reweighting, and a gate-teaching indictment
// — and checks each one moves the state epoch, while rejected observations
// move nothing. Throughout, the memoised predictor must agree bit-for-bit
// with a memo-disabled twin fed the identical sequence.
func TestAdaptiveMemoInvalidatesOnEveryMutationPath(t *testing.T) {
	model := adaptTestModel(t)
	ad := NewAdaptive(model, AdaptiveConfig{})
	twin := NewAdaptive(model, AdaptiveConfig{})
	twin.DisableMemo()

	b, err := workload.Find("SB.MatrixFact")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	feats := b.Counters(rng)
	p1 := b.ProfilePoint(0.5, rng)
	p2 := b.ProfilePoint(2, rng)

	check := func(stage string) {
		t.Helper()
		want, errW := twin.Predict(feats, p1, p2)
		got, errG := ad.Predict(feats, p1, p2)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("%s: error mismatch twin=%v memo=%v", stage, errW, errG)
		}
		if errW == nil && !samePrediction(got, want) {
			t.Fatalf("%s: memoised prediction diverged:\n got %+v\nwant %+v", stage, got, want)
		}
	}
	observeBoth := func(o Observation) {
		ad.Observe(o)
		twin.Observe(o)
	}

	check("fresh")
	base, err := ad.Predict(feats, p1, p2)
	if err != nil {
		t.Fatal(err)
	}

	// A rejected observation (non-positive actual) mutates nothing: the
	// epoch must hold and the memo keep serving.
	before := ad.stateEpoch()
	observeBoth(Observation{Family: base.Family, Calibrated: base.Func.Family, ActualGB: -1, PredictedGB: 1, RawPredictedGB: 1})
	if ad.stateEpoch() != before {
		t.Fatalf("rejected observation moved the epoch %d -> %d", before, ad.stateEpoch())
	}
	check("after rejected observation")

	// Path 1: ordinary fold-back into the recalibration fit + error window.
	// Every accepted observation must move the epoch.
	for i := 0; i < 10; i++ {
		before = ad.stateEpoch()
		raw := 2.0 + float64(i)
		observeBoth(Observation{
			Family:         base.Family,
			Calibrated:     base.Func.Family,
			AppID:          i,
			ItemsGB:        raw,
			PredictedGB:    raw,
			RawPredictedGB: raw,
			ActualGB:       0.5 + 2*raw, // systematic miss: drives fit and window
			Outcome:        OutcomeCompleted,
		})
		if ad.stateEpoch() == before {
			t.Fatalf("accepted observation %d did not move the epoch", i)
		}
		check("after fold-back")
	}
	rec, err := ad.Predict(feats, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Recalibrated {
		t.Fatal("scenario broken: systematic misses did not recalibrate")
	}

	// Path 2: gate reweighting. The large window errors above push the
	// selected expert's bias over 1, so the biased gate pass is live; the
	// memoised path must keep matching the twin through it.
	if !ad.biasActive() {
		t.Fatal("scenario broken: window errors did not activate the gate bias")
	}
	check("with gate bias active")

	// Path 3: gate teaching. A drifted program misrouted onto the
	// saturating expert gets indicted by its realised footprint; teaching
	// mutates the model, which must bump the model epoch itself.
	drifted := *b
	drifted.CounterSkew = 0.35
	dFeats := drifted.Counters(rng)
	dp1 := drifted.ProfilePoint(0.5, rng)
	dp2 := drifted.ProfilePoint(2, rng)
	pred, err := ad.Predict(dFeats, dp1, dp2)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Family != memfunc.Exponential {
		t.Skipf("drifted counters selected %v, not the exponential expert this path needs", pred.Family)
	}
	const items = 50.0
	predicted, err := pred.Func.Eval(items)
	if err != nil {
		t.Fatal(err)
	}
	modelEpochBefore := ad.model.Epoch()
	observeBoth(Observation{
		Features:       dFeats,
		PCs:            pred.PCs,
		Family:         pred.Family,
		Calibrated:     pred.Func.Family,
		AppID:          100,
		P1:             dp1,
		P2:             dp2,
		ItemsGB:        items,
		PredictedGB:    predicted,
		RawPredictedGB: predicted,
		ActualGB:       drifted.Footprint(items),
		Outcome:        OutcomeCompleted,
	})
	if ad.Taught() != 1 {
		t.Fatalf("taught %d samples, want 1 (teaching path not exercised)", ad.Taught())
	}
	if ad.model.Epoch() == modelEpochBefore {
		t.Fatal("TeachGate did not bump the model epoch")
	}
	check("after gate teaching")
	feats, p1, p2 = dFeats, dp1, dp2
	check("drifted request after teaching")
}

// TestPredictBatchMatchesSequential pins the batch faces of Model, Static
// and Adaptive to their per-request pipelines, including duplicated requests
// (the dedup case) and an invalid request mid-batch (the error case).
func TestPredictBatchMatchesSequential(t *testing.T) {
	m := trainedModel(t, 41)
	rng := rand.New(rand.NewSource(42))
	reqs := memoRequests(t, rng)

	// The reference answers come from a memo-free static predictor.
	plain := NewStatic(m).WithoutMemo()
	want := make([]BatchResult, len(reqs))
	for i, r := range reqs {
		want[i].Prediction, want[i].Err = plain.Predict(r.Raw, r.P1, r.P2)
	}

	checkBatch := func(name string, got []BatchResult) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d results for %d requests", name, len(got), len(reqs))
		}
		for i := range got {
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("%s req %d: error mismatch got=%v want=%v", name, i, got[i].Err, want[i].Err)
			}
			if got[i].Err == nil && !samePrediction(got[i].Prediction, want[i].Prediction) {
				t.Fatalf("%s req %d: batch diverged:\n got %+v\nwant %+v", name, i, got[i].Prediction, want[i].Prediction)
			}
		}
	}
	checkBatch("Model.PredictBatch", m.PredictBatch(reqs))
	checkBatch("Static.PredictBatch", NewStatic(m).PredictBatch(reqs))
	// A fresh adaptive predictor has folded nothing in, so its batch answers
	// must also equal the static pipeline's.
	checkBatch("Adaptive.PredictBatch", NewAdaptive(m, AdaptiveConfig{}).PredictBatch(reqs))

	// An infeasible request (profiling points that calibrate for no family)
	// must fail in the batch exactly where Predict fails, without derailing
	// its neighbours.
	bad := reqs[0]
	bad.P1 = memfunc.Point{X: 1, Y: -5}
	bad.P2 = memfunc.Point{X: 2, Y: -1}
	mixed := []PredictRequest{reqs[0], bad, reqs[1]}
	got := m.PredictBatch(mixed)
	if got[0].Err != nil || got[2].Err != nil {
		t.Fatalf("valid neighbours failed: %v, %v", got[0].Err, got[2].Err)
	}
	if _, wantErr := plain.Predict(bad.Raw, bad.P1, bad.P2); (got[1].Err == nil) != (wantErr == nil) {
		t.Fatalf("bad request: batch err %v, sequential err %v", got[1].Err, wantErr)
	}
}
