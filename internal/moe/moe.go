// Package moe implements the paper's primary contribution: a
// mixture-of-experts memory-footprint predictor for Spark applications.
//
// Offline (Train): every training program is profiled across input sizes,
// the best-fitting memory-function family (the "expert") becomes its label,
// and a KNN expert selector is built over the PCA-reduced runtime features.
//
// Online (SelectFamily / Predict): an unseen application is profiled on a
// small input to collect features, the selector picks the expert of the
// nearest training program, and the expert's two coefficients are
// instantiated from two calibration runs (5 % and 10 % of the input). The
// nearest-neighbour distance doubles as a confidence estimate: a target far
// from every training program triggers the caller's conservative fallback.
package moe

import (
	"errors"
	"fmt"
	"math"

	"moespark/internal/classify"
	"moespark/internal/features"
	"moespark/internal/mathx"
	"moespark/internal/memfunc"
)

// TrainingProgram is one offline training example: the program's runtime
// feature vector (collected on a ~100MB profiling run) and its memory curve
// sweep (footprint measurements across input sizes).
type TrainingProgram struct {
	Name     string
	Features features.Vector
	Curve    []memfunc.Point
}

// Config controls training. The zero value reproduces the paper's setup:
// K=1 nearest neighbour, top-5 PCs at 95 % variance.
type Config struct {
	// K is the KNN neighbourhood size (default 1).
	K int
	// Pipeline configures feature scaling and PCA.
	Pipeline features.PipelineConfig
	// ConfidenceFactor scales the training-set nearest-neighbour radius
	// into the confidence threshold (default 1.2).
	ConfidenceFactor float64
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 1
	}
	if c.ConfidenceFactor <= 0 {
		c.ConfidenceFactor = 1.2
	}
	return c
}

// ProgramLabel records how a training program was labelled during training.
type ProgramLabel struct {
	Name   string
	Family memfunc.Family
	// Fit is the offline least-squares fit on the full sweep (kept for
	// inspection; runtime predictions use fresh two-point calibration).
	Fit memfunc.Fit
	// PCs is the program's position in the reduced feature space.
	PCs []float64
	// Residual is the PCA reconstruction error of the program's features.
	Residual float64
}

// Model is a trained mixture-of-experts predictor.
type Model struct {
	cfg       Config
	pipeline  *features.Pipeline
	selector  *classify.KNN
	programs  []ProgramLabel
	threshold float64 // confidence radius in PC space
	// epoch counts the model's mutations (AddProgram, TeachGate). The
	// footprint memo (memo.go) validates cached predictions against it: any
	// mutation that could change a prediction bumps the epoch and thereby
	// invalidates every cached entry.
	epoch uint64
}

// Epoch returns the model's mutation counter. Two calls returning the same
// value bracket a window in which the model was provably not mutated, so any
// prediction computed inside the window can be replayed bit-identically.
func (m *Model) Epoch() uint64 { return m.epoch }

// SetLinearGate pins the expert selector to its reference linear-scan path
// (true) or restores the default indexed path (false). The two paths are
// bit-identical — classify's differential tests prove it — so this exists
// purely for A/B benchmarking of the serving optimisations.
func (m *Model) SetLinearGate(linear bool) { m.selector.Linear = linear }

// Train builds the mixture-of-experts model from the training programs.
func Train(programs []TrainingProgram, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(programs) < 2 {
		return nil, errors.New("moe: need at least 2 training programs")
	}
	raw := make([]features.Vector, len(programs))
	for i, p := range programs {
		raw[i] = p.Features
	}
	pipeline, err := features.FitPipeline(raw, cfg.Pipeline)
	if err != nil {
		return nil, fmt.Errorf("moe: fitting feature pipeline: %w", err)
	}
	labels := make([]ProgramLabel, len(programs))
	samples := make([]classify.Sample, len(programs))
	for i, p := range programs {
		fit, err := memfunc.BestFit(p.Curve)
		if err != nil {
			return nil, fmt.Errorf("moe: labelling %q: %w", p.Name, err)
		}
		pcs, err := pipeline.Transform(p.Features)
		if err != nil {
			return nil, fmt.Errorf("moe: projecting %q: %w", p.Name, err)
		}
		res, err := pipeline.Residual(p.Features)
		if err != nil {
			return nil, fmt.Errorf("moe: residual of %q: %w", p.Name, err)
		}
		labels[i] = ProgramLabel{Name: p.Name, Family: fit.Func.Family, Fit: fit, PCs: pcs, Residual: res}
		samples[i] = classify.Sample{X: pcs, Label: int(fit.Func.Family)}
	}
	selector := classify.NewKNN(cfg.K)
	if err := selector.Fit(samples); err != nil {
		return nil, fmt.Errorf("moe: fitting expert selector: %w", err)
	}
	m := &Model{cfg: cfg, pipeline: pipeline, selector: selector, programs: labels}
	m.threshold = m.trainingRadius() * cfg.ConfidenceFactor
	return m, nil
}

// trainingRadius is the largest nearest-neighbour distance inside the
// training set, measured in the augmented (PCs, residual) space; targets
// beyond ConfidenceFactor times this radius are flagged as low-confidence.
// The residual coordinate catches programs that project near a cluster but
// sit far off the training manifold.
func (m *Model) trainingRadius() float64 {
	var radius float64
	for i, a := range m.programs {
		nearest := -1.0
		for j, b := range m.programs {
			if i == j {
				continue
			}
			d := augmentedDistance(a.PCs, a.Residual, b.PCs, b.Residual)
			if nearest < 0 || d < nearest {
				nearest = d
			}
		}
		if nearest > radius {
			radius = nearest
		}
	}
	return radius
}

// augmentedDistance is the Euclidean distance in (PC-space, residual) space.
func augmentedDistance(pcsA []float64, resA float64, pcsB []float64, resB float64) float64 {
	d := euclid(pcsA, pcsB)
	dr := resA - resB
	return mathSqrt(d*d + dr*dr)
}

func mathSqrt(x float64) float64 { return math.Sqrt(x) }

func euclid(a, b []float64) float64 { return mathx.Euclidean(a, b) }

// Selection is the outcome of expert selection for one application.
type Selection struct {
	// Family is the chosen expert family.
	Family memfunc.Family
	// Distance is the Euclidean distance to the nearest training program in
	// PC space (the paper's confidence signal).
	Distance float64
	// Confident reports whether Distance falls inside the model's
	// confidence radius.
	Confident bool
	// PCs is the application's position in the reduced feature space.
	PCs []float64
}

// SelectFamily projects the application's raw runtime features and picks the
// expert of the nearest training program. The confidence distance is
// measured in the augmented (PCs, residual) space so that targets far off
// the training manifold are flagged even when their projection lands near a
// cluster.
func (m *Model) SelectFamily(raw features.Vector) (Selection, error) {
	return m.selectFamily(raw, nil)
}

// SelectFamilyBiased is SelectFamily with a reweighted gate: every training
// neighbour's distance is scaled by bias(family) before the vote, so an
// expert whose recent predictions have been poor (bias > 1) must be
// proportionally closer in feature space to be chosen. The confidence
// distance is unaffected by the bias — it measures how far the target sits
// from the training manifold, not which expert wins. A nil bias reproduces
// SelectFamily exactly.
func (m *Model) SelectFamilyBiased(raw features.Vector, bias func(memfunc.Family) float64) (Selection, error) {
	return m.selectFamily(raw, bias)
}

func (m *Model) selectFamily(raw features.Vector, bias func(memfunc.Family) float64) (Selection, error) {
	pcs, err := m.pipeline.Transform(raw)
	if err != nil {
		return Selection{}, fmt.Errorf("moe: projecting target: %w", err)
	}
	var label int
	if bias == nil {
		label, _, err = m.selector.PredictWithDistance(pcs)
	} else {
		label, _, err = m.selector.PredictBiased(pcs, func(l int) float64 { return bias(memfunc.Family(l)) })
	}
	if err != nil {
		return Selection{}, fmt.Errorf("moe: selecting expert: %w", err)
	}
	fam := memfunc.Family(label)
	if !fam.Valid() {
		return Selection{}, fmt.Errorf("moe: selector produced invalid family %d", label)
	}
	res, err := m.pipeline.Residual(raw)
	if err != nil {
		return Selection{}, fmt.Errorf("moe: residual of target: %w", err)
	}
	dist := -1.0
	for _, p := range m.programs {
		if d := augmentedDistance(pcs, res, p.PCs, p.Residual); dist < 0 || d < dist {
			dist = d
		}
	}
	return Selection{
		Family:    fam,
		Distance:  dist,
		Confident: dist <= m.threshold,
		PCs:       pcs,
	}, nil
}

// Prediction is a fully instantiated memory function for one application.
type Prediction struct {
	Selection
	// Func is the calibrated memory function (including any online
	// recalibration an adaptive predictor applied).
	Func memfunc.Func
	// Uncorrected is the pure two-point calibration before online
	// recalibration; equal to Func on the static path.
	Uncorrected memfunc.Func
	// FellBack reports that calibration switched family because the
	// profiling points were infeasible for the selected expert.
	FellBack bool
	// Recalibrated reports that observed footprints adjusted the
	// coefficients (adaptive predictors only).
	Recalibrated bool
}

// Predict selects the expert for the application's features and calibrates
// it with the two profiling observations (the paper's 5 %/10 % runs).
func (m *Model) Predict(raw features.Vector, p1, p2 memfunc.Point) (Prediction, error) {
	sel, err := m.SelectFamily(raw)
	if err != nil {
		return Prediction{}, err
	}
	fn, err := memfunc.CalibrateWithFallback(sel.Family, p1, p2)
	if err != nil {
		return Prediction{}, fmt.Errorf("moe: calibrating %v: %w", sel.Family, err)
	}
	return Prediction{
		Selection:   sel,
		Func:        fn,
		Uncorrected: fn,
		FellBack:    fn.Family != sel.Family,
	}, nil
}

// PredictBatch answers one admission wave's requests together, deduplicating
// identical requests: repeated (features, p1, p2) triples — common when a
// wave carries several arrivals of the same benchmark — are computed once
// and the result shared. The model must not be mutated while the call runs
// (the single-goroutine engine guarantees this); under that contract each
// result is bit-identical to a per-request Predict.
func (m *Model) PredictBatch(reqs []PredictRequest) []BatchResult {
	out := make([]BatchResult, len(reqs))
	var seen map[memoKey]int // key -> index of first occurrence
	for i, r := range reqs {
		key := memoKey{raw: r.Raw, p1: r.P1, p2: r.P2}
		if j, ok := seen[key]; ok {
			out[i] = out[j]
			continue
		}
		out[i].Prediction, out[i].Err = m.Predict(r.Raw, r.P1, r.P2)
		if seen == nil {
			seen = make(map[memoKey]int, len(reqs))
		}
		seen[key] = i
	}
	return out
}

// AddProgram inserts one more labelled training program at runtime without
// refitting the pipeline or the selector — the extensibility property the
// paper highlights (new experts/programs can be added as they appear).
func (m *Model) AddProgram(p TrainingProgram) error {
	fit, err := memfunc.BestFit(p.Curve)
	if err != nil {
		return fmt.Errorf("moe: labelling %q: %w", p.Name, err)
	}
	pcs, err := m.pipeline.Transform(p.Features)
	if err != nil {
		return fmt.Errorf("moe: projecting %q: %w", p.Name, err)
	}
	res, err := m.pipeline.Residual(p.Features)
	if err != nil {
		return fmt.Errorf("moe: residual of %q: %w", p.Name, err)
	}
	if err := m.selector.Add(classify.Sample{X: pcs, Label: int(fit.Func.Family)}); err != nil {
		return fmt.Errorf("moe: extending selector: %w", err)
	}
	m.programs = append(m.programs, ProgramLabel{Name: p.Name, Family: fit.Func.Family, Fit: fit, PCs: pcs, Residual: res})
	m.epoch++
	return nil
}

// Clone returns a model that shares the immutable feature pipeline but owns
// private copies of the expert selector and program labels, so runtime
// extensions — AddProgram, an adaptive gate's self-training via TeachGate —
// never leak into the original. Adaptive predictors clone their model at
// construction; the trained original stays safe to share across runs.
func (m *Model) Clone() *Model {
	cp := *m
	cp.selector = m.selector.Clone()
	cp.programs = append([]ProgramLabel(nil), m.programs...)
	return &cp
}

// TeachGate adds one labelled sample to the expert selector at the given
// position in the reduced feature space: the gate learns that programs
// observed there belong to the family, without touching the pipeline,
// program labels or confidence radius. It is the gate's online-update hook —
// an adaptive predictor calls it when realised footprints prove a region of
// feature space is routed to the wrong expert.
func (m *Model) TeachGate(pcs []float64, fam memfunc.Family) error {
	if !fam.Valid() {
		return fmt.Errorf("moe: cannot teach invalid family %d", int(fam))
	}
	x := append([]float64(nil), pcs...)
	if err := m.selector.Add(classify.Sample{X: x, Label: int(fam)}); err != nil {
		return fmt.Errorf("moe: teaching gate: %w", err)
	}
	m.epoch++
	return nil
}

// Programs returns the labelled training programs (copy).
func (m *Model) Programs() []ProgramLabel {
	out := make([]ProgramLabel, len(m.programs))
	copy(out, m.programs)
	return out
}

// Pipeline exposes the trained feature pipeline (for analysis experiments).
func (m *Model) Pipeline() *features.Pipeline { return m.pipeline }

// ConfidenceRadius returns the distance threshold used for Confident.
func (m *Model) ConfidenceRadius() float64 { return m.threshold }
