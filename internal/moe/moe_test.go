package moe

import (
	"math"
	"math/rand"
	"testing"

	"moespark/internal/memfunc"
	"moespark/internal/workload"
)

// trainingPrograms builds the paper's 16-program training set from the
// synthetic workload models.
func trainingPrograms(rng *rand.Rand) []TrainingProgram {
	var out []TrainingProgram
	for _, b := range workload.TrainingSet() {
		out = append(out, TrainingProgram{
			Name:     b.FullName(),
			Features: b.Counters(rng),
			Curve:    b.CurvePoints(workload.TrainingSweep, rng),
		})
	}
	return out
}

func trainedModel(t *testing.T, seed int64) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, err := Train(trainingPrograms(rng), Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m
}

func TestTrainRejectsTinySet(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Fatal("Train(nil) must error")
	}
	rng := rand.New(rand.NewSource(1))
	one := trainingPrograms(rng)[:1]
	if _, err := Train(one, Config{}); err == nil {
		t.Fatal("Train with one program must error")
	}
}

func TestTrainLabelsMatchTruth(t *testing.T) {
	m := trainedModel(t, 2)
	byName := workload.ByFullName()
	for _, p := range m.Programs() {
		truth := byName[p.Name].Truth.Family
		if p.Family != truth {
			t.Errorf("%s labelled %v, truth %v", p.Name, p.Family, truth)
		}
		if p.Fit.R2 < 0.95 {
			t.Errorf("%s offline fit R2 = %v", p.Name, p.Fit.R2)
		}
	}
}

func TestSelectFamilyOnUnseenSuites(t *testing.T) {
	// Train on HiBench+BigDataBench, test on Spark-Perf and Spark-Bench —
	// the paper's cross-suite protocol. Selection accuracy must be high.
	m := trainedModel(t, 3)
	rng := rand.New(rand.NewSource(4))
	correct, total := 0, 0
	for _, b := range workload.Catalog() {
		if b.Suite == workload.HiBench || b.Suite == workload.BigDataBench {
			continue
		}
		sel, err := m.SelectFamily(b.Counters(rng))
		if err != nil {
			t.Fatalf("%s: SelectFamily: %v", b.FullName(), err)
		}
		total++
		if sel.Family == b.Truth.Family {
			correct++
		}
		if !sel.Confident {
			t.Errorf("%s flagged low-confidence despite in-distribution features", b.FullName())
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Errorf("cross-suite selection accuracy %.2f, want >= 0.9 (paper: ~0.97)", acc)
	}
}

func TestPredictEndToEndAccuracy(t *testing.T) {
	// Full runtime path: features -> expert -> 2-point calibration. The
	// footprint prediction error at a large unseen size must be small
	// (paper: ~5 % average).
	m := trainedModel(t, 5)
	rng := rand.New(rand.NewSource(6))
	var errSum float64
	var n int
	for _, b := range workload.Catalog() {
		input := 280.0
		p1 := b.ProfilePoint(2, rng)
		p2 := b.ProfilePoint(4, rng)
		pred, err := m.Predict(b.Counters(rng), p1, p2)
		if err != nil {
			t.Fatalf("%s: Predict: %v", b.FullName(), err)
		}
		got, err := pred.Func.Eval(input)
		if err != nil {
			t.Fatalf("%s: Eval: %v", b.FullName(), err)
		}
		truth := b.Footprint(input)
		relErr := math.Abs(got-truth) / truth
		errSum += relErr
		n++
		if relErr > 0.5 {
			t.Errorf("%s: footprint %v vs truth %v (rel err %.2f)", b.FullName(), got, truth, relErr)
		}
	}
	avg := errSum / float64(n)
	if avg > 0.10 {
		t.Errorf("average footprint error %.3f, want <= 0.10 (paper: ~0.05)", avg)
	}
}

func TestPredictCalibrationFallback(t *testing.T) {
	m := trainedModel(t, 7)
	// Profiling points with super-linear growth are infeasible for the
	// exponential family; prediction must fall back, not fail.
	rng := rand.New(rand.NewSource(8))
	b, err := workload.Find("HB.Sort") // exponential family features
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(b.Counters(rng), memfunc.Point{X: 1, Y: 1}, memfunc.Point{X: 2, Y: 5})
	if err != nil {
		t.Fatalf("Predict with infeasible points: %v", err)
	}
	if !pred.FellBack {
		t.Error("expected calibration fallback")
	}
	if pred.Func.Family == memfunc.Exponential {
		t.Errorf("fallback kept the infeasible family: %v", pred.Func)
	}
}

func TestPredictDegeneratePointsError(t *testing.T) {
	m := trainedModel(t, 9)
	rng := rand.New(rand.NewSource(10))
	b, _ := workload.Find("HB.Sort")
	if _, err := m.Predict(b.Counters(rng), memfunc.Point{X: 1, Y: 1}, memfunc.Point{X: 1, Y: 1}); err == nil {
		t.Fatal("degenerate calibration points must error")
	}
}

func TestConfidenceFlagsOutOfDistribution(t *testing.T) {
	m := trainedModel(t, 11)
	// An adversarial cache signature unlike any training family: alternating
	// extreme counter values. It projects inside the unit cube but far off
	// the training manifold, so the residual-augmented distance flags it.
	var far [22]float64
	for i := range far {
		if i%2 == 0 {
			far[i] = 100
		} else {
			far[i] = -100
		}
	}
	sel, err := m.SelectFamily(far)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Confident {
		t.Errorf("distance %v within radius %v: out-of-distribution target not flagged", sel.Distance, m.ConfidenceRadius())
	}
}

func TestAddProgramExtendsSelector(t *testing.T) {
	m := trainedModel(t, 12)
	before := len(m.Programs())
	rng := rand.New(rand.NewSource(13))
	b, _ := workload.Find("SB.TriangleCount")
	err := m.AddProgram(TrainingProgram{
		Name:     b.FullName(),
		Features: b.Counters(rng),
		Curve:    b.CurvePoints(workload.TrainingSweep, rng),
	})
	if err != nil {
		t.Fatalf("AddProgram: %v", err)
	}
	if len(m.Programs()) != before+1 {
		t.Errorf("programs = %d, want %d", len(m.Programs()), before+1)
	}
	// Selecting for that very benchmark should now hit the new neighbour.
	sel, err := m.SelectFamily(b.Counters(rng))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Family != b.Truth.Family {
		t.Errorf("family after AddProgram = %v, want %v", sel.Family, b.Truth.Family)
	}
	// Bad curve data is rejected.
	if err := m.AddProgram(TrainingProgram{Name: "broken"}); err == nil {
		t.Error("AddProgram with no curve must error")
	}
}

func TestLeaveOneOutSelectionAccuracy(t *testing.T) {
	// The paper's Table 5 protocol on the KNN selector: leave one training
	// program out, train on the rest, select for the held-out one.
	rng := rand.New(rand.NewSource(14))
	programs := trainingPrograms(rng)
	correct := 0
	byName := workload.ByFullName()
	for i := range programs {
		train := make([]TrainingProgram, 0, len(programs)-1)
		train = append(train, programs[:i]...)
		train = append(train, programs[i+1:]...)
		m, err := Train(train, Config{})
		if err != nil {
			t.Fatalf("fold %d: %v", i, err)
		}
		sel, err := m.SelectFamily(programs[i].Features)
		if err != nil {
			t.Fatalf("fold %d: %v", i, err)
		}
		if sel.Family == byName[programs[i].Name].Truth.Family {
			correct++
		}
	}
	acc := float64(correct) / float64(len(programs))
	if acc < 0.85 {
		t.Errorf("LOOCV selection accuracy %.2f, want >= 0.85 (paper: 0.974)", acc)
	}
}
