package moe

import (
	"math"

	"moespark/internal/classify"
	"moespark/internal/features"
	"moespark/internal/mathx"
	"moespark/internal/memfunc"
)

// AdaptiveConfig tunes the online-adaptation machinery. The zero value
// selects defaults sized for the open-system streams this repository runs.
type AdaptiveConfig struct {
	// Window is the sliding-window length of per-expert relative error the
	// gate reweighting reads (default 32).
	Window int
	// Forget is the recursive-least-squares forgetting factor of the
	// coefficient recalibration: 1 averages all history, smaller values track
	// drift faster (default 0.97).
	Forget float64
	// MinObs is how many observations an expert needs before its correction
	// (and its gate penalty) applies (default 8).
	MinObs int
	// GateGain scales how strongly an expert's window error biases the gate
	// against it: neighbour distances are multiplied by
	// 1 + GateGain * meanRelativeError, capped at MaxGateBias (default 2).
	GateGain float64
	// MaxGateBias caps the gate's distance multiplier. The cap is load
	// bearing: one broken expert's window would otherwise reroute every
	// program near its cluster — including the healthy ones at its centre —
	// onto far-away experts whose wrong-family calibrations are worse than
	// the errors being fled. Capped tightly, the bias can only break
	// genuine near-ties between clusters; wholesale rerouting of a drifted
	// cohort is the teaching mechanism's job (default 1.15).
	MaxGateBias float64
	// TeachErr is the relative-error threshold past which an observation
	// indicts the selected expert and gate self-training considers
	// relabelling the app's feature-space position (default 0.5).
	TeachErr float64
	// TeachTol is how accurately (relative error at the observed
	// allocation) an alternative expert's two-point calibration must explain
	// the realised footprint before the gate is taught its label
	// (default 0.25).
	TeachTol float64
	// MaxTaught bounds how many corrected samples self-training may plant in
	// the gate per run, keeping the KNN's cost bounded on endless streams
	// (default 512).
	MaxTaught int
	// MinScale / MaxScale bound the learned multiplicative correction; fits
	// outside [MinScale, MaxScale] are distrusted and skipped. The band is
	// asymmetric by design (defaults 0.7 and 8): the platform's penalty
	// structure is asymmetric. Raising predictions merely wastes
	// reservation headroom, so upward corrections may swing far; lowering
	// them under-reserves every healthy program sharing the expert
	// (heap-pressure thrash, OOM risk) if the observation mixture is
	// polluted, so downward corrections are confined to mild trims.
	MinScale float64
	MaxScale float64
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.Forget <= 0 || c.Forget > 1 {
		c.Forget = 0.97
	}
	if c.MinObs <= 0 {
		c.MinObs = 8
	}
	if c.GateGain < 0 {
		c.GateGain = 0
	} else if c.GateGain == 0 {
		c.GateGain = 2
	}
	if c.MaxGateBias <= 1 {
		c.MaxGateBias = 1.15
	}
	if c.TeachErr <= 0 {
		c.TeachErr = 0.5
	}
	if c.TeachTol <= 0 {
		c.TeachTol = 0.25
	}
	if c.MaxTaught <= 0 {
		c.MaxTaught = 512
	}
	if c.MinScale <= 0 || c.MinScale > 1 {
		c.MinScale = 0.7
	}
	if c.MaxScale <= 1 {
		c.MaxScale = 8
	}
	return c
}

// Adaptive is the feedback-driven mixture-of-experts predictor: the trained
// model's gate and experts, plus two online mechanisms fed by Observe.
//
//  1. Incremental expert recalibration. Per expert, a running least-squares
//     fit (with forgetting) regresses observed true footprints on the raw
//     two-point-calibrated predictions: actual ≈ a + c·predicted. The affine
//     map composes exactly with the linear and Napierian-log families
//     (m' = a + c·m, b' = c·b) and plateau-exactly with the saturating
//     exponential (m' = a + c·m), so a corrected prediction is still an
//     ordinary memory function and everything downstream — inversion,
//     safety margins, reservations — is unchanged. Under workload drift
//     (input sizes growing past the capped calibration runs, regime
//     switches) the two-point calibration develops systematic extrapolation
//     bias; the recalibration learns it out.
//
//  2. Gate reweighting. A sliding window of each expert's recent relative
//     error (of the operative, post-correction predictions) biases the KNN
//     gate: a mispredicting expert loses genuine near-ties. The bias is
//     tightly capped — see AdaptiveConfig.MaxGateBias — and a flip away from
//     the unbiased choice is accepted only when the rerouted expert's
//     calibration predicts at least as much memory at the extrapolation
//     scale: rerouting may make the scheduler more conservative, never less
//     (an unvalidated reroute onto a lower-predicting expert under-reserves
//     its victims into heap-pressure thrash).
//
//  3. Gate self-training. When an observation indicts the selected expert
//     (relative error past TeachErr) and another family's calibration
//     through the same two profiling points explains the realised footprint
//     within TeachTol, the app's position in the reduced feature space is
//     added to the gate under the better label (Model.TeachGate, the paper's
//     KNN extensibility). A drifted cohort clusters in feature space, so a
//     few corrected samples reroute the whole cohort — including across a
//     full cluster crossing, which no distance bias can fix safely.
//
// On a stationary stream the corrections converge to the identity, the
// window errors stay small and nothing gets taught, so Adaptive tracks the
// static model closely; it earns its keep when the input distribution shifts
// mid-stream.
type Adaptive struct {
	model   *Model
	cfg     AdaptiveConfig
	fits    map[memfunc.Family]*mathx.OnlineLS
	errs    *classify.LabelErrorWindow
	taught  map[int]bool // app IDs that already had their teaching decision
	nTaught int
	obs     int
	// memo caches predictions between mutations (memo.go); mut counts this
	// predictor's own state mutations — every folded-in observation touches
	// the error windows and recalibration fits that Predict reads, so each
	// valid Observe bumps it. The memo validates against model epoch + mut:
	// a hit is provably computed from the exact state a recomputation would
	// read, keeping adaptive semantics bit-identical.
	memo *predictMemo
	mut  uint64
}

var _ Predictor = (*Adaptive)(nil)
var _ BatchPredictor = (*Adaptive)(nil)

// NewAdaptive wraps a trained model with online recalibration state. The
// model is cloned (gate and labels), so self-training never mutates the
// caller's trained model. To warm-start a later run from the learned state,
// reuse the whole scheduler the predictor is wrapped in: the scheduler's
// estimator issues the Observation.AppID sequence, so a fresh scheduler
// around an already-warm predictor would restart that sequence and silently
// suppress the predictor's once-per-app logic for colliding IDs. Runs that
// must not share state get fresh instances of both.
func NewAdaptive(m *Model, cfg AdaptiveConfig) *Adaptive {
	cfg = cfg.withDefaults()
	return &Adaptive{
		model:  m.Clone(),
		cfg:    cfg,
		fits:   map[memfunc.Family]*mathx.OnlineLS{},
		errs:   classify.NewLabelErrorWindow(cfg.Window),
		taught: map[int]bool{},
		memo:   newPredictMemo(),
	}
}

// DisableMemo turns the footprint memo off — every Predict recomputes. The
// memoised path is bit-identical (pinned by the differential tests), so this
// exists for A/B benchmarking.
func (a *Adaptive) DisableMemo() { a.memo = nil }

// stateEpoch versions every piece of mutable state Predict reads: the
// model's own mutations (gate teaching, program additions) plus this
// predictor's observation folds (error windows, recalibration fits). Both
// counters only grow, so the sum is strictly monotonic over mutations.
func (a *Adaptive) stateEpoch() uint64 { return a.model.Epoch() + a.mut }

// Name implements Predictor.
func (a *Adaptive) Name() string { return "MoE-adaptive" }

// Observations counts how many outcomes have been folded in.
func (a *Adaptive) Observations() int { return a.obs }

// Taught counts the corrected samples self-training planted in the gate.
func (a *Adaptive) Taught() int { return a.nTaught }

// gateBias returns the distance multiplier for one expert: 1 until the
// expert has a full-enough window, then grows with its recent mean relative
// error.
func (a *Adaptive) gateBias(f memfunc.Family) float64 {
	if a.errs.Count(int(f)) < a.cfg.MinObs {
		return 1
	}
	b := 1 + a.cfg.GateGain*a.errs.Mean(int(f))
	if b > a.cfg.MaxGateBias {
		return a.cfg.MaxGateBias
	}
	return b
}

// extrapolationRef is where rival calibrations are compared when judging a
// gate flip: far enough past the larger profiling point that the families'
// shapes have diverged (the drift regime's stale predictions hurt at
// extrapolated sizes, not at the calibrated ones).
const extrapolationRef = 25.0

// Predict implements Predictor: reweighted gate selection (conservative
// flips only), two-point calibration with family fallback (exactly the
// static path's), then the expert's learned coefficient correction when one
// is trustworthy.
func (a *Adaptive) Predict(raw features.Vector, p1, p2 memfunc.Point) (Prediction, error) {
	if a.memo == nil {
		return a.predict(raw, p1, p2)
	}
	key := memoKey{raw: raw, p1: p1, p2: p2}
	if pred, ok := a.memo.lookup(a.stateEpoch(), key); ok {
		return pred, nil
	}
	pred, err := a.predict(raw, p1, p2)
	if err == nil {
		a.memo.store(key, pred)
	}
	return pred, err
}

// PredictBatch implements BatchPredictor. An admission wave folds in no
// observations, so the state epoch is constant across the wave and the memo
// deduplicates repeated requests within it (and across waves, until the next
// mutation).
func (a *Adaptive) PredictBatch(reqs []PredictRequest) []BatchResult {
	return predictSequential(a, reqs)
}

// predict is the uncached prediction pipeline.
func (a *Adaptive) predict(raw features.Vector, p1, p2 memfunc.Point) (Prediction, error) {
	sel, err := a.model.SelectFamily(raw)
	if err != nil {
		return Prediction{}, err
	}
	if a.biasActive() {
		if biased, err := a.model.SelectFamilyBiased(raw, a.gateBias); err == nil &&
			biased.Family != sel.Family && flipConservative(sel.Family, biased.Family, p1, p2) {
			sel = biased
		}
	}
	fn, err := memfunc.CalibrateWithFallback(sel.Family, p1, p2)
	if err != nil {
		return Prediction{}, err
	}
	pred := Prediction{
		Selection:   sel,
		Func:        fn,
		Uncorrected: fn,
		FellBack:    fn.Family != sel.Family,
	}
	// The correction is keyed by the calibrated curve's family (not the
	// selected expert): it was learned from that shape's predictions, and
	// on a fallback the shape differs from the gate's choice.
	if off, scale, ok := a.correction(fn.Family); ok {
		if corrected, ok := recalibrate(fn, off, scale, a.cfg.MinScale, p2); ok {
			pred.Func = corrected
			pred.Recalibrated = true
		}
	}
	return pred, nil
}

// biasActive reports whether any expert currently carries a gate bias above
// one; until then the biased selection is guaranteed to equal the unbiased
// one and the second gate pass is skipped.
func (a *Adaptive) biasActive() bool {
	for _, f := range memfunc.Families {
		if a.gateBias(f) > 1 {
			return true
		}
	}
	return false
}

// flipConservative reports whether rerouting from the unbiased expert to
// the bias-preferred one can only over-reserve: both families must
// calibrate through the profiling points, and the new expert must predict
// at least as much memory at the extrapolation scale.
func flipConservative(from, to memfunc.Family, p1, p2 memfunc.Point) bool {
	ref := extrapolationRef * p2.X
	fromFn, err := memfunc.Calibrate(from, p1, p2)
	if err != nil {
		return false
	}
	toFn, err := memfunc.Calibrate(to, p1, p2)
	if err != nil {
		return false
	}
	yFrom, err := fromFn.Eval(ref)
	if err != nil {
		return false
	}
	yTo, err := toFn.Eval(ref)
	if err != nil {
		return false
	}
	return yTo >= yFrom
}

// correction returns the expert's current affine recalibration
// (actual ≈ off + scale·predicted) when it rests on enough observations and
// is sane; identity-equivalent failures (too little data, singular fit,
// non-positive or implausible scale) report ok=false.
func (a *Adaptive) correction(f memfunc.Family) (off, scale float64, ok bool) {
	ls := a.fits[f]
	if ls == nil || ls.Count() < float64(a.cfg.MinObs) {
		return 0, 0, false
	}
	coef, err := ls.Coef()
	if err != nil {
		return 0, 0, false
	}
	off, scale = coef[0], coef[1]
	if math.IsNaN(off) || math.IsInf(off, 0) ||
		scale < a.cfg.MinScale || scale > a.cfg.MaxScale {
		return 0, 0, false
	}
	return off, scale, true
}

// recalibrate folds the affine correction into the calibrated function's own
// coefficients. Linear and Napierian-log compose exactly; the saturating
// exponential maps its plateau exactly (large allocations are where stale
// predictions cost the most) and keeps its rate. The corrected curve must
// still predict a positive footprint at the larger calibration point, and —
// because a negative learned offset could otherwise cut far below what the
// scale band allows — the corrected prediction at both the calibration and
// the extrapolation scale must stay within the minScale trim of the raw
// curve, or the correction is rejected as noise.
func recalibrate(fn memfunc.Func, off, scale, minScale float64, p2 memfunc.Point) (memfunc.Func, bool) {
	out := fn
	switch fn.Family {
	case memfunc.LinearPower, memfunc.NapierianLog:
		out.M = off + scale*fn.M
		out.B = scale * fn.B
	case memfunc.Exponential:
		out.M = off + scale*fn.M
	default:
		return fn, false
	}
	for _, x := range []float64{p2.X, extrapolationRef * p2.X} {
		yRaw, err := fn.Eval(x)
		if err != nil || yRaw <= 0 {
			return fn, false
		}
		y, err := out.Eval(x)
		if err != nil || y <= 0 || math.IsNaN(y) || math.IsInf(y, 0) || y < minScale*yRaw {
			return fn, false
		}
	}
	return out, true
}

// Observe implements Predictor: the selected expert's sliding error window
// is updated with the operative prediction's relative error, the calibrated
// family's recalibration fit absorbs the (raw prediction, actual) pair, and
// — once per app — a large error triggers the gate-teaching check.
func (a *Adaptive) Observe(obs Observation) {
	if !obs.Family.Valid() || !obs.Calibrated.Valid() ||
		obs.ActualGB <= 0 || obs.PredictedGB <= 0 || obs.RawPredictedGB <= 0 {
		return
	}
	a.obs++
	// Every accepted observation mutates state Predict reads (the error
	// window below unconditionally, the fit always, the gate possibly), so
	// the memo epoch moves here, before any of it.
	a.mut++
	relErr := math.Abs(obs.PredictedGB-obs.ActualGB) / obs.ActualGB
	a.errs.Add(int(obs.Family), relErr)
	ls := a.fits[obs.Calibrated]
	if ls == nil {
		ls = mathx.NewOnlineLS(2, a.cfg.Forget)
		a.fits[obs.Calibrated] = ls
	}
	ls.Add([]float64{1, obs.RawPredictedGB}, obs.ActualGB)
	if !a.taught[obs.AppID] {
		a.taught[obs.AppID] = true
		a.maybeTeach(obs, relErr)
	}
}

// maybeTeach relabels the app's feature-space position in the gate when the
// evidence is conclusive: the selected expert mispredicted the realised
// footprint badly, while some other family calibrated through the very same
// profiling points explains it accurately. Both conditions guard against
// noise-driven relabelling — a merely-mediocre prediction, or an
// alternative that is no better, teaches nothing.
//
// Teaching fires only on under-prediction. The guard is the same asymmetry
// as the correction's scale band, applied to routing: an under-prediction
// indictment teaches a faster-growing family, and if healthy neighbours in
// feature space get caught by the taught sample they are merely
// over-reserved. An over-prediction indictment would teach a
// slower-growing (typically saturating) family, and a healthy neighbour
// routed onto a saturating fit is under-reserved into heap-pressure thrash
// — observed to cost far more than the over-prediction being cured.
func (a *Adaptive) maybeTeach(obs Observation, relErr float64) {
	if obs.ActualGB <= obs.PredictedGB {
		return
	}
	if relErr <= a.cfg.TeachErr || a.nTaught >= a.cfg.MaxTaught || len(obs.PCs) == 0 {
		return
	}
	// The incumbent is the curve that actually mispredicted; rivals are the
	// other families calibrated through the same profiling points. Teaching
	// only matters when the winner differs from the gate's routing decision.
	best := obs.Calibrated
	bestErr := relErr
	for _, fam := range memfunc.Families {
		if fam == obs.Calibrated {
			continue
		}
		fn, err := memfunc.Calibrate(fam, obs.P1, obs.P2)
		if err != nil {
			continue
		}
		y, err := fn.Eval(obs.ItemsGB)
		if err != nil || y <= 0 {
			continue
		}
		if e := math.Abs(y-obs.ActualGB) / obs.ActualGB; e < bestErr {
			best, bestErr = fam, e
		}
	}
	if best == obs.Family || best == obs.Calibrated || bestErr > a.cfg.TeachTol {
		return
	}
	if a.model.TeachGate(obs.PCs, best) == nil {
		a.nTaught++
	}
}
