package moe

import (
	"math"
	"math/rand"
	"testing"

	"moespark/internal/memfunc"
	"moespark/internal/workload"
)

func adaptTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := TrainDefault(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Before any observation arrives, the adaptive predictor must behave exactly
// like the static pipeline: same selection, same calibrated coefficients.
func TestAdaptiveMatchesStaticBeforeObservations(t *testing.T) {
	model := adaptTestModel(t)
	ad := NewAdaptive(model, AdaptiveConfig{})
	rng := rand.New(rand.NewSource(3))
	for _, name := range []string{"HB.Sort", "HB.PageRank", "SB.MatrixFact"} {
		b, err := workload.Find(name)
		if err != nil {
			t.Fatal(err)
		}
		feats := b.Counters(rng)
		p1 := b.ProfilePoint(0.5, rng)
		p2 := b.ProfilePoint(2, rng)
		want, errS := model.Predict(feats, p1, p2)
		got, errA := ad.Predict(feats, p1, p2)
		if (errS == nil) != (errA == nil) {
			t.Fatalf("%s: static err %v, adaptive err %v", name, errS, errA)
		}
		if errS != nil {
			continue
		}
		if got.Func != want.Func || got.Family != want.Family || got.Recalibrated {
			t.Errorf("%s: adaptive %+v diverged from static %+v before any observation", name, got.Func, want.Func)
		}
	}
}

// Systematic under-prediction observations must recalibrate the expert's
// coefficients: the incremental fit learns actual ≈ off + scale·predicted
// and folds it into subsequently predicted functions.
func TestAdaptiveRecalibratesFromObservations(t *testing.T) {
	model := adaptTestModel(t)
	ad := NewAdaptive(model, AdaptiveConfig{MinObs: 6})
	b, err := workload.Find("SB.MatrixFact") // linear-family benchmark
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	feats := b.Counters(rng)
	p1 := b.ProfilePoint(0.5, rng)
	p2 := b.ProfilePoint(2, rng)
	base, err := ad.Predict(feats, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	fam := base.Family
	// The model's predictions turn out to systematically miss by
	// actual = 0.5 + 2·predicted.
	for i := 0; i < 10; i++ {
		raw := 2.0 + float64(i)
		ad.Observe(Observation{
			Family:         fam,
			Calibrated:     base.Func.Family,
			AppID:          i,
			ItemsGB:        raw,
			PredictedGB:    raw,
			RawPredictedGB: raw,
			ActualGB:       0.5 + 2*raw,
			Outcome:        OutcomeCompleted,
		})
	}
	if ad.Observations() != 10 {
		t.Fatalf("recorded %d observations, want 10", ad.Observations())
	}
	corrected, err := ad.Predict(feats, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !corrected.Recalibrated {
		t.Fatal("prediction after systematic misses must be recalibrated")
	}
	if corrected.Uncorrected != base.Func {
		t.Errorf("uncorrected calibration changed: %+v vs %+v", corrected.Uncorrected, base.Func)
	}
	const x = 10.0
	rawY, err := base.Func.Eval(x)
	if err != nil {
		t.Fatal(err)
	}
	gotY, err := corrected.Func.Eval(x)
	if err != nil {
		t.Fatal(err)
	}
	wantY := 0.5 + 2*rawY
	if math.Abs(gotY-wantY)/wantY > 0.05 {
		t.Errorf("corrected prediction at %v: got %v, want ~%v (raw %v)", x, gotY, wantY, rawY)
	}
}

// A conclusive under-prediction indictment must teach the gate: a drifted
// linear-family program whose counters land on the exponential cluster is
// misrouted onto the saturating expert (which under-predicts its growing
// footprint by whole multiples), and after one observed outcome proves the
// linear expert explains the realised footprint, the cohort's feature-space
// region routes to the linear expert.
func TestAdaptiveGateTeachingReroutesDriftedCohort(t *testing.T) {
	model := adaptTestModel(t)
	ad := NewAdaptive(model, AdaptiveConfig{})
	orig, err := workload.Find("SB.MatrixFact") // linear-family benchmark
	if err != nil {
		t.Fatal(err)
	}
	drifted := *orig
	drifted.CounterSkew = 0.35
	rng := rand.New(rand.NewSource(11))
	feats := drifted.Counters(rng)
	p1 := drifted.ProfilePoint(0.5, rng)
	p2 := drifted.ProfilePoint(2, rng)
	pred, err := ad.Predict(feats, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Family != memfunc.Exponential {
		t.Skipf("drifted counters selected %v, not the exponential expert this test needs", pred.Family)
	}
	const items = 50.0
	predicted, err := pred.Func.Eval(items)
	if err != nil {
		t.Fatal(err)
	}
	actual := drifted.Footprint(items)
	if actual <= predicted {
		t.Fatalf("scenario broken: saturating fit %v does not under-predict truth %v", predicted, actual)
	}
	ad.Observe(Observation{
		Features:       feats,
		PCs:            pred.PCs,
		Family:         pred.Family,
		Calibrated:     pred.Func.Family,
		AppID:          1,
		P1:             p1,
		P2:             p2,
		ItemsGB:        items,
		PredictedGB:    predicted,
		RawPredictedGB: predicted,
		ActualGB:       actual,
		Outcome:        OutcomeCompleted,
	})
	if ad.Taught() != 1 {
		t.Fatalf("taught %d gate samples, want 1", ad.Taught())
	}
	after, err := ad.Predict(drifted.Counters(rng), drifted.ProfilePoint(0.5, rng), drifted.ProfilePoint(2, rng))
	if err != nil {
		t.Fatal(err)
	}
	if after.Family != memfunc.LinearPower {
		t.Errorf("post-teaching selection %v, want the linear expert", after.Family)
	}
	// The shared trained model must be untouched: a fresh static selection
	// on the same drifted counters still misroutes.
	sel, err := model.SelectFamily(feats)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Family != memfunc.Exponential {
		t.Errorf("teaching leaked into the shared model: static selection now %v", sel.Family)
	}
}

// An over-prediction indictment must not teach: rerouting the neighbourhood
// onto a lower-predicting expert would under-reserve healthy programs.
func TestAdaptiveTeachingRefusesOverPrediction(t *testing.T) {
	model := adaptTestModel(t)
	ad := NewAdaptive(model, AdaptiveConfig{})
	b, err := workload.Find("HB.Sort")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	feats := b.Counters(rng)
	p1 := b.ProfilePoint(0.5, rng)
	p2 := b.ProfilePoint(2, rng)
	pred, err := ad.Predict(feats, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	ad.Observe(Observation{
		Features:       feats,
		PCs:            pred.PCs,
		Family:         pred.Family,
		Calibrated:     pred.Func.Family,
		AppID:          1,
		P1:             p1,
		P2:             p2,
		ItemsGB:        50,
		PredictedGB:    40, // predicted far above...
		RawPredictedGB: 40,
		ActualGB:       4, // ...the realised footprint
		Outcome:        OutcomeCompleted,
	})
	if ad.Taught() != 0 {
		t.Errorf("over-prediction taught %d samples, want 0", ad.Taught())
	}
}
