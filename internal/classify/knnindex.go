package classify

import (
	"math"

	"moespark/internal/mathx"
)

// This file implements the KNN gate's nearest-neighbour index: a k-d tree
// over the training samples that answers K=1 queries without scanning every
// sample. The index is exact, not approximate — the gate's output feeds the
// scheduler whose results are pinned bit-for-bit by golden tests, so the
// indexed query must return the *identical* neighbour (label, distance and
// equal-distance tie-breaking included) that the linear reference scan in
// knn_ref.go returns. Three properties make that hold:
//
//  1. Candidate distances are computed by the very same code as the
//     reference scan (mathx.Euclidean, then the bias multiplier), so a
//     visited sample produces a bit-identical float. The tree only decides
//     *which* samples are visited, never how they are scored.
//
//  2. Ties break by insertion order. The reference scan's stable sort keeps
//     the first-inserted sample among equal distances; the tree replaces the
//     running best only on a strictly smaller distance or an exactly equal
//     distance with a smaller insertion index, which selects the same
//     sample regardless of traversal order.
//
//  3. Pruning is conservative. A subtree is skipped only when its lower
//     bound strictly exceeds the running best with a small relative safety
//     margin (kdPruneMargin), so float rounding in the bound can only cause
//     extra visits, never a missed minimum; and a bound exactly equal to the
//     best never prunes, because the subtree could hold an equal-distance
//     sample with a smaller insertion index.
//
// Under a biased query (PredictBiased) every distance is scaled by
// bias(label) before ranking, so the geometric bound |x[axis]-split| is
// multiplied by the smallest bias over the labels present in the training
// set — a valid lower bound for whatever label the subtree holds. The tree
// is rebuilt eagerly on Fit and Add (never lazily at query time), keeping
// queries read-only and therefore safe under the concurrent experiment
// runner, exactly like the scan path they replace.

// kdPruneMargin is the relative slack added to the running-best distance
// before a subtree may be pruned. Lower bounds and candidate distances are
// rounded differently (a single-axis subtraction vs a full Euclidean sum),
// so an exact comparison could prune a subtree whose true minimum ties or
// undercuts the best by less than one ulp; the margin turns that risk into a
// few extra node visits.
const kdPruneMargin = 1e-9

// kdNode is one k-d tree node: the sample it stores (by insertion index into
// KNN.samples, which doubles as the tie-break rank), its split axis, and its
// children as indices into the flat node slice (-1 for none).
type kdNode struct {
	sample      int32
	left, right int32
	axis        int32
}

// kdTree is an immutable nearest-neighbour index over a KNN training set.
// It holds no sample data of its own — nodes reference KNN.samples by index
// — so clones of a fitted KNN share the tree until one of them mutates and
// rebuilds its own.
type kdTree struct {
	nodes []kdNode
	root  int32
}

// buildKD constructs the tree over samples[0..n). The build is
// deterministic: the split axis cycles with depth, and the median is chosen
// after sorting by (coordinate, insertion index), so equal coordinates order
// by insertion and every build over the same samples yields the same tree.
func buildKD(samples []Sample) *kdTree {
	if len(samples) == 0 {
		return nil
	}
	dim := len(samples[0].X)
	if dim == 0 {
		return nil
	}
	order := make([]int32, len(samples))
	for i := range order {
		order[i] = int32(i)
	}
	t := &kdTree{nodes: make([]kdNode, 0, len(samples))}
	t.root = t.build(samples, order, 0, dim)
	return t
}

// build recursively splits one index range and returns the subtree's node
// index.
func (t *kdTree) build(samples []Sample, order []int32, depth, dim int) int32 {
	if len(order) == 0 {
		return -1
	}
	axis := depth % dim
	insertionSortByAxis(samples, order, axis)
	m := len(order) / 2
	// Walk the median left over duplicates of its coordinate so equal
	// coordinates land in the right subtree: the recursion then never relies
	// on strict inequality at the split.
	for m > 0 && samples[order[m-1]].X[axis] == samples[order[m]].X[axis] {
		m--
	}
	n := int32(len(t.nodes))
	t.nodes = append(t.nodes, kdNode{sample: order[m], axis: int32(axis), left: -1, right: -1})
	left := t.build(samples, order[:m], depth+1, dim)
	right := t.build(samples, order[m+1:], depth+1, dim)
	t.nodes[n].left = left
	t.nodes[n].right = right
	return n
}

// insertionSortByAxis orders the index slice by the samples' coordinate on
// one axis, insertion index breaking ties. Training sets are small (tens to
// a few hundred samples) and the recursion sorts ever-shorter ranges, so an
// allocation-free insertion sort beats sort.Slice here.
func insertionSortByAxis(samples []Sample, order []int32, axis int) {
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j], order[j-1]
			va, vb := samples[a].X[axis], samples[b].X[axis]
			if va > vb || (va == vb && a > b) {
				break
			}
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

// nearest returns the insertion index and (possibly biased) distance of the
// query's nearest neighbour — the exact sample the reference scan would
// select. minBias must be the smallest bias(label) over all labels present
// (1 for an unbiased query); it scales the geometric pruning bound so that
// it remains a lower bound for biased distances.
func (t *kdTree) nearest(samples []Sample, x []float64, bias func(label int) float64, minBias float64) (int, float64) {
	bestIdx, bestD := int32(-1), math.Inf(1)
	t.search(samples, x, bias, minBias, t.root, &bestIdx, &bestD)
	return int(bestIdx), bestD
}

func (t *kdTree) search(samples []Sample, x []float64, bias func(label int) float64, minBias float64, node int32, bestIdx *int32, bestD *float64) {
	if node < 0 {
		return
	}
	n := t.nodes[node]
	s := samples[n.sample]
	d := mathx.Euclidean(x, s.X)
	if bias != nil {
		d *= bias(s.Label)
	}
	if d < *bestD || (d == *bestD && n.sample < *bestIdx) {
		*bestD, *bestIdx = d, n.sample
	}
	diff := x[n.axis] - s.X[n.axis]
	near, far := n.left, n.right
	if diff >= 0 {
		near, far = n.right, n.left
	}
	t.search(samples, x, bias, minBias, near, bestIdx, bestD)
	bound := diff
	if bound < 0 {
		bound = -bound
	}
	bound *= minBias
	if bound <= *bestD*(1+kdPruneMargin) {
		t.search(samples, x, bias, minBias, far, bestIdx, bestD)
	}
}
