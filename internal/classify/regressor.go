package classify

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ANNRegressor is the 3-layer feed-forward regression network the paper uses
// as the strongest unified-model baseline (Figure 9): one model that maps
// (features, input size) directly to a memory footprint, instead of
// selecting among expert curve families.
type ANNRegressor struct {
	// Hidden lists hidden-layer sizes (default []int{16, 8}).
	Hidden []int
	// Epochs is the number of SGD passes (default 600).
	Epochs int
	// LearningRate is the SGD step (default 0.01).
	LearningRate float64
	// Seed drives weight init and shuffling.
	Seed int64

	dim     int
	fitted  bool
	weights []matrixLayer
	std     standardizer
	// Target normalisation so training is well-conditioned regardless of
	// footprint scale.
	yMean, yStd float64
}

// RegSample is one regression observation.
type RegSample struct {
	X []float64
	Y float64
}

// NewANNRegressor returns an unfitted regression network.
func NewANNRegressor(seed int64) *ANNRegressor { return &ANNRegressor{Seed: seed} }

// Fit trains the network on the regression samples.
func (a *ANNRegressor) Fit(samples []RegSample) error {
	if len(samples) == 0 {
		return ErrNoSamples
	}
	a.dim = len(samples[0].X)
	if a.dim == 0 {
		return fmt.Errorf("%w: empty feature vector", ErrDimMismatch)
	}
	for i, s := range samples {
		if len(s.X) != a.dim {
			return fmt.Errorf("%w: sample %d", ErrDimMismatch, i)
		}
	}
	if len(a.Hidden) == 0 {
		a.Hidden = []int{16, 8}
	}
	if a.Epochs <= 0 {
		a.Epochs = 600
	}
	if a.LearningRate <= 0 {
		a.LearningRate = 0.01
	}
	// Normalise targets.
	var mean float64
	for _, s := range samples {
		mean += s.Y
	}
	mean /= float64(len(samples))
	var variance float64
	for _, s := range samples {
		d := s.Y - mean
		variance += d * d
	}
	variance /= float64(len(samples))
	a.yMean = mean
	a.yStd = math.Sqrt(variance)
	if a.yStd == 0 {
		a.yStd = 1
	}

	xs := make([]Sample, len(samples))
	for i, s := range samples {
		xs[i] = Sample{X: s.X}
	}
	a.std = fitStandardizer(xs, a.dim)
	rng := rand.New(rand.NewSource(a.Seed))
	sizes := append([]int{a.dim}, a.Hidden...)
	sizes = append(sizes, 1)
	a.weights = make([]matrixLayer, len(sizes)-1)
	for i := range a.weights {
		in, out := sizes[i], sizes[i+1]
		l := matrixLayer{in: in, out: out, w: make([]float64, (in+1)*out)}
		scale := 1 / math.Sqrt(float64(in))
		for j := range l.w {
			l.w[j] = rng.NormFloat64() * scale
		}
		a.weights[i] = l
	}
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < a.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, ix := range order {
			a.step(samples[ix])
		}
	}
	a.fitted = true
	return nil
}

func (a *ANNRegressor) forward(x []float64) [][]float64 {
	acts := make([][]float64, 0, len(a.weights)+1)
	acts = append(acts, x)
	cur := x
	for li, l := range a.weights {
		next := make([]float64, l.out)
		for j := 0; j < l.out; j++ {
			s := l.at(l.in, j)
			for i := 0; i < l.in; i++ {
				s += l.at(i, j) * cur[i]
			}
			next[j] = s
		}
		if li < len(a.weights)-1 {
			for j := range next {
				next[j] = math.Tanh(next[j])
			}
		}
		acts = append(acts, next)
		cur = next
	}
	return acts
}

func (a *ANNRegressor) step(s RegSample) {
	acts := a.forward(a.std.apply(s.X))
	pred := acts[len(acts)-1][0]
	target := (s.Y - a.yMean) / a.yStd
	delta := []float64{pred - target} // squared-error gradient
	for li := len(a.weights) - 1; li >= 0; li-- {
		l := &a.weights[li]
		prev := acts[li]
		var prevDelta []float64
		if li > 0 {
			prevDelta = make([]float64, l.in)
			for i := 0; i < l.in; i++ {
				var g float64
				for j := 0; j < l.out; j++ {
					g += l.at(i, j) * delta[j]
				}
				prevDelta[i] = g * (1 - prev[i]*prev[i])
			}
		}
		for j := 0; j < l.out; j++ {
			step := a.LearningRate * delta[j]
			for i := 0; i < l.in; i++ {
				l.add(i, j, -step*prev[i])
			}
			l.add(l.in, j, -step)
		}
		delta = prevDelta
	}
}

// ErrRegressorNotFitted is returned by Predict before Fit.
var ErrRegressorNotFitted = errors.New("classify: regressor not fitted")

// Predict returns the regressed value for x.
func (a *ANNRegressor) Predict(x []float64) (float64, error) {
	if !a.fitted {
		return 0, ErrRegressorNotFitted
	}
	if len(x) != a.dim {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), a.dim)
	}
	acts := a.forward(a.std.apply(x))
	return acts[len(acts)-1][0]*a.yStd + a.yMean, nil
}
