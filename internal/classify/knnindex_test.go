package classify

import (
	"math/rand"
	"testing"
)

// randomSamples generates a training set designed to stress the index:
// clustered points, exact duplicates (equal-distance ties) and grid-aligned
// coordinates (equal single-axis splits), across a handful of labels.
func randomSamples(rng *rand.Rand, n, dim int) []Sample {
	samples := make([]Sample, n)
	for i := range samples {
		x := make([]float64, dim)
		switch rng.Intn(3) {
		case 0: // continuous
			for j := range x {
				x[j] = rng.Float64()
			}
		case 1: // grid-aligned: forces equal coordinates and distance ties
			for j := range x {
				x[j] = float64(rng.Intn(4)) * 0.25
			}
		default: // duplicate of an earlier sample, possibly relabelled
			if i == 0 {
				for j := range x {
					x[j] = rng.Float64()
				}
			} else {
				copy(x, samples[rng.Intn(i)].X)
			}
		}
		samples[i] = Sample{X: x, Label: rng.Intn(4)}
	}
	return samples
}

// TestKNNIndexMatchesLinear is the differential property test pinning the
// indexed K=1 path to the linear reference scan (the engine_ref.go pattern):
// over randomized training sets full of duplicates and ties, with and
// without label biases (including biases below 1, which shrink distances and
// stress the pruning bound), every query must agree exactly — same label,
// bit-identical distance.
func TestKNNIndexMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(200)
		dim := 1 + rng.Intn(8)
		samples := randomSamples(rng, n, dim)

		indexed := NewKNN(1)
		if err := indexed.Fit(samples); err != nil {
			t.Fatal(err)
		}
		linear := indexed.Clone()
		linear.Linear = true

		var bias func(label int) float64
		if trial%2 == 1 {
			biases := make([]float64, 4)
			for i := range biases {
				// Mix of shrinking (<1) and inflating (>1) multipliers.
				biases[i] = 0.5 + rng.Float64()*2.5
			}
			bias = func(label int) float64 { return biases[label] }
		}

		for q := 0; q < 30; q++ {
			x := make([]float64, dim)
			if q%3 == 0 && n > 0 {
				copy(x, samples[rng.Intn(n)].X) // exact hit: distance 0 ties
			} else {
				for j := range x {
					x[j] = rng.Float64() * 1.2
				}
			}
			li, ld, lerr := linear.predict(x, bias)
			ii, id, ierr := indexed.predict(x, bias)
			if (lerr == nil) != (ierr == nil) {
				t.Fatalf("trial %d query %d: error mismatch linear=%v indexed=%v", trial, q, lerr, ierr)
			}
			if li != ii || ld != id {
				t.Fatalf("trial %d query %d (n=%d dim=%d bias=%v): linear=(%d, %v) indexed=(%d, %v)",
					trial, q, n, dim, bias != nil, li, ld, ii, id)
			}
		}

		// Mutating mid-stream (the adaptive gate's TeachGate path) must keep
		// the two in lockstep: Add rebuilds the index eagerly.
		extra := make([]float64, dim)
		for j := range extra {
			extra[j] = rng.Float64()
		}
		s := Sample{X: extra, Label: rng.Intn(4)}
		if err := indexed.Add(s); err != nil {
			t.Fatal(err)
		}
		if err := linear.Add(s); err != nil {
			t.Fatal(err)
		}
		li, ld, _ := linear.predict(extra, bias)
		ii, id, _ := indexed.predict(extra, bias)
		if li != ii || ld != id {
			t.Fatalf("trial %d post-Add: linear=(%d, %v) indexed=(%d, %v)", trial, li, ld, ii, id)
		}
	}
}

// TestKNNTieBreakInsertionOrder pins the equal-distance tie rule both paths
// must share: among equidistant neighbours, the first-inserted sample wins.
// The scheduler's golden outputs depend on this — a different-but-equally-
// near expert would calibrate a different curve.
func TestKNNTieBreakInsertionOrder(t *testing.T) {
	// Four samples at the corners of a square, query at the centre: all
	// equidistant, labels all distinct. Insertion order decides.
	samples := []Sample{
		{X: []float64{0, 0}, Label: 2},
		{X: []float64{1, 0}, Label: 0},
		{X: []float64{0, 1}, Label: 3},
		{X: []float64{1, 1}, Label: 1},
	}
	center := []float64{0.5, 0.5}
	for _, linearMode := range []bool{false, true} {
		k := NewKNN(1)
		k.Linear = linearMode
		if err := k.Fit(samples); err != nil {
			t.Fatal(err)
		}
		label, _, err := k.predict(center, nil)
		if err != nil {
			t.Fatal(err)
		}
		if label != 2 {
			t.Errorf("linear=%v: tie broke to label %d, want first-inserted label 2", linearMode, label)
		}
		// A later Add of yet another equidistant sample (a duplicate corner,
		// so its distance is bit-identical) must not steal the tie from the
		// first-inserted one.
		if err := k.Add(Sample{X: []float64{1, 1}, Label: 9}); err != nil {
			t.Fatal(err)
		}
		label, _, err = k.predict(center, nil)
		if err != nil {
			t.Fatal(err)
		}
		if label != 2 {
			t.Errorf("linear=%v post-Add: tie broke to label %d, want 2", linearMode, label)
		}
		// Under a uniform bias the scaled distances still tie; the rule must
		// hold on the biased path too.
		label, _, err = k.PredictBiased(center, func(int) float64 { return 1.5 })
		if err != nil {
			t.Fatal(err)
		}
		if label != 2 {
			t.Errorf("linear=%v biased: tie broke to label %d, want 2", linearMode, label)
		}
	}
}
