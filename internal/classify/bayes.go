package classify

import (
	"fmt"
	"math"
)

// GaussianNB is a Gaussian Naive Bayes classifier: per class, each feature is
// modelled as an independent normal distribution.
type GaussianNB struct {
	dim    int
	fitted bool

	labels []int
	priors map[int]float64
	means  map[int][]float64
	vars   map[int][]float64
}

// NewGaussianNB returns an unfitted Gaussian Naive Bayes classifier.
func NewGaussianNB() *GaussianNB { return &GaussianNB{} }

var _ Classifier = (*GaussianNB)(nil)

// Name implements Classifier.
func (g *GaussianNB) Name() string { return "NaiveBayes" }

// Fit implements Classifier.
func (g *GaussianNB) Fit(samples []Sample) error {
	dim, labels, err := checkSamples(samples)
	if err != nil {
		return err
	}
	g.dim = dim
	g.labels = labels
	g.priors = make(map[int]float64, len(labels))
	g.means = make(map[int][]float64, len(labels))
	g.vars = make(map[int][]float64, len(labels))
	counts := map[int]int{}
	for _, s := range samples {
		counts[s.Label]++
	}
	for _, l := range labels {
		g.priors[l] = float64(counts[l]) / float64(len(samples))
		g.means[l] = make([]float64, dim)
		g.vars[l] = make([]float64, dim)
	}
	for _, s := range samples {
		m := g.means[s.Label]
		for j, x := range s.X {
			m[j] += x
		}
	}
	for _, l := range labels {
		for j := range g.means[l] {
			g.means[l][j] /= float64(counts[l])
		}
	}
	for _, s := range samples {
		m := g.means[s.Label]
		v := g.vars[s.Label]
		for j, x := range s.X {
			d := x - m[j]
			v[j] += d * d
		}
	}
	const varFloor = 1e-9 // avoid zero variance for constant features
	for _, l := range labels {
		for j := range g.vars[l] {
			g.vars[l][j] = g.vars[l][j]/float64(counts[l]) + varFloor
		}
	}
	g.fitted = true
	return nil
}

// Predict implements Classifier.
func (g *GaussianNB) Predict(x []float64) (int, error) {
	if !g.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != g.dim {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), g.dim)
	}
	best := g.labels[0]
	bestLL := math.Inf(-1)
	for _, l := range g.labels {
		ll := math.Log(g.priors[l])
		m := g.means[l]
		v := g.vars[l]
		for j, xi := range x {
			d := xi - m[j]
			ll += -0.5*math.Log(2*math.Pi*v[j]) - d*d/(2*v[j])
		}
		if ll > bestLL {
			best, bestLL = l, ll
		}
	}
	return best, nil
}
