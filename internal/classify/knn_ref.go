package classify

import (
	"fmt"
	"sort"

	"moespark/internal/mathx"
)

// This file is the KNN gate's reference implementation: the original
// O(samples) linear scan with a stable sort by distance. The indexed query
// path (knnindex.go) must return bit-identical results — same label, same
// distance, same insertion-order tie-break — and the differential property
// test in knnindex_test.go pins the two against each other, mirroring how
// engine_ref.go pins the indexed event engine against its quadratic
// reference. The scan also remains the live path for K > 1 (ablation
// configurations), where majority voting needs the full distance ranking.

// neigh is one ranked neighbour of the linear scan.
type neigh struct {
	dist  float64
	label int
}

// predictLinear ranks every training sample by (optionally biased) distance
// and returns the majority label among the K nearest plus the distance to
// the single nearest. The stable sort means equal distances keep insertion
// order, so the first-inserted sample wins ties — a property the scheduler's
// golden tests depend on.
//
//moevet:refpair predictIndexed
func (k *KNN) predictLinear(x []float64, bias func(label int) float64) (label int, nearest float64, err error) {
	var scratch []neigh
	return k.predictLinearBuf(x, bias, &scratch)
}

// predictLinearBuf is predictLinear over a caller-owned ranking buffer, so a
// batch of queries (PredictBatch) allocates it once instead of per query.
// The buffer is grown in place; its contents carry no state between calls.
//
//moevet:refpair predictIndexed
func (k *KNN) predictLinearBuf(x []float64, bias func(label int) float64, scratch *[]neigh) (label int, nearest float64, err error) {
	if !k.fitted {
		return 0, 0, ErrNotFitted
	}
	if len(x) != k.dim {
		return 0, 0, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), k.dim)
	}
	if cap(*scratch) < len(k.samples) {
		*scratch = make([]neigh, len(k.samples))
	}
	neighs := (*scratch)[:len(k.samples)]
	for i, s := range k.samples {
		d := mathx.Euclidean(x, s.X)
		if bias != nil {
			d *= bias(s.Label)
		}
		neighs[i] = neigh{dist: d, label: s.Label}
	}
	sort.SliceStable(neighs, func(a, b int) bool { return neighs[a].dist < neighs[b].dist })
	kk := k.K
	if kk > len(neighs) {
		kk = len(neighs)
	}
	votes := map[int]int{}
	for _, n := range neighs[:kk] {
		votes[n.label]++
	}
	best, bestVotes := neighs[0].label, -1
	for _, n := range neighs[:kk] { // iterate in distance order for stable ties
		if v := votes[n.label]; v > bestVotes {
			best, bestVotes = n.label, v
		}
	}
	return best, neighs[0].dist, nil
}
