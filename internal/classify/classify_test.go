package classify

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// threeBlobs generates n samples from three well-separated Gaussian blobs in
// dim dimensions (labels 1, 2, 3 — enums start at one).
func threeBlobs(r *rand.Rand, n, dim int, spread float64) []Sample {
	centers := make([][]float64, 3)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = float64(c*10) + float64(j%3)
		}
	}
	samples := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		c := i % 3
		x := make([]float64, dim)
		for j := range x {
			x[j] = centers[c][j] + r.NormFloat64()*spread
		}
		samples = append(samples, Sample{X: x, Label: c + 1})
	}
	return samples
}

func allClassifiers(seed int64) []Classifier {
	return []Classifier{
		NewKNN(1),
		NewKNN(3),
		NewGaussianNB(),
		NewDecisionTree(0),
		NewRandomForest(25, seed),
		NewMLP([]int{12}, seed),
		NewMLP([]int{16, 8}, seed),
		NewLinearSVM(seed),
	}
}

func TestAllClassifiersSeparableBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	train := threeBlobs(r, 60, 5, 0.5)
	test := threeBlobs(r, 30, 5, 0.5)
	for _, c := range allClassifiers(7) {
		if err := c.Fit(train); err != nil {
			t.Fatalf("%s Fit: %v", c.Name(), err)
		}
		correct := 0
		for _, s := range test {
			pred, err := c.Predict(s.X)
			if err != nil {
				t.Fatalf("%s Predict: %v", c.Name(), err)
			}
			if pred == s.Label {
				correct++
			}
		}
		acc := float64(correct) / float64(len(test))
		if acc < 0.95 {
			t.Errorf("%s accuracy %.2f on separable blobs, want >= 0.95", c.Name(), acc)
		}
	}
}

func TestPredictBeforeFit(t *testing.T) {
	for _, c := range allClassifiers(7) {
		if _, err := c.Predict([]float64{1, 2}); !errors.Is(err, ErrNotFitted) {
			t.Errorf("%s: want ErrNotFitted, got %v", c.Name(), err)
		}
	}
}

func TestFitValidation(t *testing.T) {
	for _, c := range allClassifiers(7) {
		if err := c.Fit(nil); !errors.Is(err, ErrNoSamples) {
			t.Errorf("%s: Fit(nil) want ErrNoSamples, got %v", c.Name(), err)
		}
		ragged := []Sample{{X: []float64{1, 2}, Label: 1}, {X: []float64{1}, Label: 2}}
		if err := c.Fit(ragged); !errors.Is(err, ErrDimMismatch) {
			t.Errorf("%s: ragged fit want ErrDimMismatch, got %v", c.Name(), err)
		}
		empty := []Sample{{X: nil, Label: 1}}
		if err := c.Fit(empty); !errors.Is(err, ErrDimMismatch) {
			t.Errorf("%s: empty-vector fit want ErrDimMismatch, got %v", c.Name(), err)
		}
	}
}

func TestPredictDimMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	train := threeBlobs(r, 30, 4, 0.3)
	for _, c := range allClassifiers(7) {
		if err := c.Fit(train); err != nil {
			t.Fatalf("%s Fit: %v", c.Name(), err)
		}
		if _, err := c.Predict([]float64{1}); !errors.Is(err, ErrDimMismatch) {
			t.Errorf("%s: want ErrDimMismatch, got %v", c.Name(), err)
		}
	}
}

func TestKNNInvalidK(t *testing.T) {
	k := NewKNN(0)
	err := k.Fit([]Sample{{X: []float64{1}, Label: 1}})
	if !errors.Is(err, ErrInvalidParam) {
		t.Errorf("want ErrInvalidParam, got %v", err)
	}
}

func TestKNNDistanceConfidence(t *testing.T) {
	k := NewKNN(1)
	train := []Sample{
		{X: []float64{0, 0}, Label: 1},
		{X: []float64{10, 10}, Label: 2},
	}
	if err := k.Fit(train); err != nil {
		t.Fatal(err)
	}
	label, dist, err := k.PredictWithDistance([]float64{0.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if label != 1 {
		t.Errorf("label = %d, want 1", label)
	}
	if math.Abs(dist-0.5) > 1e-12 {
		t.Errorf("distance = %v, want 0.5", dist)
	}
	// A far-away query reports a large distance: the paper's low-confidence
	// fallback trigger.
	_, dist, _ = k.PredictWithDistance([]float64{100, 100})
	if dist < 100 {
		t.Errorf("far query distance = %v, want >= 100", dist)
	}
}

func TestKNNAddIncremental(t *testing.T) {
	k := NewKNN(1)
	if err := k.Add(Sample{X: []float64{1}, Label: 1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("Add before Fit: %v", err)
	}
	if err := k.Fit([]Sample{{X: []float64{0, 0}, Label: 1}, {X: []float64{5, 5}, Label: 2}}); err != nil {
		t.Fatal(err)
	}
	// New expert label becomes selectable with no retraining.
	if err := k.Add(Sample{X: []float64{20, 20}, Label: 3}); err != nil {
		t.Fatal(err)
	}
	pred, err := k.Predict([]float64{19, 19})
	if err != nil {
		t.Fatal(err)
	}
	if pred != 3 {
		t.Errorf("pred = %d, want 3 (newly added expert)", pred)
	}
	if err := k.Add(Sample{X: []float64{1}, Label: 1}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("Add with wrong dim: %v", err)
	}
}

func TestKNNMajorityVote(t *testing.T) {
	k := NewKNN(3)
	train := []Sample{
		{X: []float64{0}, Label: 1},
		{X: []float64{0.2}, Label: 2},
		{X: []float64{0.3}, Label: 2},
		{X: []float64{50}, Label: 1},
	}
	if err := k.Fit(train); err != nil {
		t.Fatal(err)
	}
	pred, err := k.Predict([]float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	if pred != 2 {
		t.Errorf("majority vote = %d, want 2", pred)
	}
}

func TestDecisionTreeAxisAlignedSplit(t *testing.T) {
	// A single threshold on feature 1 separates the classes.
	var train []Sample
	for i := 0; i < 20; i++ {
		x := float64(i)
		label := 1
		if x >= 10 {
			label = 2
		}
		train = append(train, Sample{X: []float64{0.5, x}, Label: label})
	}
	tr := NewDecisionTree(0)
	if err := tr.Fit(train); err != nil {
		t.Fatal(err)
	}
	if pred, _ := tr.Predict([]float64{0.5, 3}); pred != 1 {
		t.Errorf("pred(3) = %d, want 1", pred)
	}
	if pred, _ := tr.Predict([]float64{0.5, 15}); pred != 2 {
		t.Errorf("pred(15) = %d, want 2", pred)
	}
}

func TestDecisionTreeMaxDepth(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	train := threeBlobs(r, 60, 3, 0.5)
	tr := NewDecisionTree(1) // depth-1 stump cannot be perfect on 3 classes
	if err := tr.Fit(train); err != nil {
		t.Fatal(err)
	}
	depth := treeDepth(tr.root)
	if depth > 1 {
		t.Errorf("tree depth %d exceeds MaxDepth 1", depth)
	}
}

func treeDepth(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := treeDepth(n.left), treeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

func TestSingleClassRejectedWhereRequired(t *testing.T) {
	oneClass := []Sample{{X: []float64{1, 2}, Label: 1}, {X: []float64{2, 3}, Label: 1}}
	if err := NewMLP([]int{4}, 1).Fit(oneClass); !errors.Is(err, ErrSingleClass) {
		t.Errorf("MLP single-class: %v", err)
	}
	if err := NewLinearSVM(1).Fit(oneClass); !errors.Is(err, ErrSingleClass) {
		t.Errorf("SVM single-class: %v", err)
	}
	// KNN, NB, trees handle a single class gracefully.
	for _, c := range []Classifier{NewKNN(1), NewGaussianNB(), NewDecisionTree(0), NewRandomForest(5, 1)} {
		if err := c.Fit(oneClass); err != nil {
			t.Errorf("%s single-class fit: %v", c.Name(), err)
		}
		pred, err := c.Predict([]float64{1, 2})
		if err != nil || pred != 1 {
			t.Errorf("%s single-class predict = %d, %v", c.Name(), pred, err)
		}
	}
}

func TestLeaveOneOutAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	samples := threeBlobs(r, 24, 4, 0.4)
	acc, err := LeaveOneOutAccuracy(func() Classifier { return NewKNN(1) }, samples)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("LOOCV accuracy = %v, want >= 0.9", acc)
	}
	if _, err := LeaveOneOutAccuracy(func() Classifier { return NewKNN(1) }, samples[:1]); !errors.Is(err, ErrNoSamples) {
		t.Errorf("short LOOCV: %v", err)
	}
}

func TestRegistryCoversTable5(t *testing.T) {
	reg := Registry(5)
	names := RegistryNames()
	if len(names) != 7 {
		t.Fatalf("Table 5 has 7 classifiers, registry names = %d", len(names))
	}
	for _, n := range names {
		factory, ok := reg[n]
		if !ok {
			t.Errorf("registry missing %q", n)
			continue
		}
		c := factory()
		if c == nil {
			t.Errorf("factory %q returned nil", n)
		}
	}
}

// Property: every classifier is deterministic given the same seed and data.
func TestClassifiersDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		r1 := rand.New(rand.NewSource(41))
		train := threeBlobs(r1, 30, 4, 0.6)
		queries := threeBlobs(rand.New(rand.NewSource(42)), 12, 4, 0.6)
		for _, mk := range []func() Classifier{
			func() Classifier { return NewKNN(3) },
			func() Classifier { return NewGaussianNB() },
			func() Classifier { return NewDecisionTree(0) },
			func() Classifier { return NewRandomForest(10, seed) },
			func() Classifier { return NewMLP([]int{8}, seed) },
			func() Classifier { return NewLinearSVM(seed) },
		} {
			a, b := mk(), mk()
			if err := a.Fit(train); err != nil {
				return false
			}
			if err := b.Fit(train); err != nil {
				return false
			}
			for _, q := range queries {
				pa, _ := a.Predict(q.X)
				pb, _ := b.Predict(q.X)
				if pa != pb {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Fatal(err)
	}
}

func TestANNRegressorLearnsLinearMap(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	var samples []RegSample
	for i := 0; i < 200; i++ {
		x := []float64{r.Float64(), r.Float64()}
		samples = append(samples, RegSample{X: x, Y: 3*x[0] + 2*x[1] + 1})
	}
	reg := NewANNRegressor(52)
	if err := reg.Fit(samples); err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := 0; i < 20; i++ {
		x := []float64{r.Float64(), r.Float64()}
		want := 3*x[0] + 2*x[1] + 1
		got, err := reg.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(got - want); e > worst {
			worst = e
		}
	}
	if worst > 0.5 {
		t.Errorf("worst abs error %v, want <= 0.5", worst)
	}
}

func TestANNRegressorValidation(t *testing.T) {
	reg := NewANNRegressor(1)
	if _, err := reg.Predict([]float64{1}); !errors.Is(err, ErrRegressorNotFitted) {
		t.Errorf("predict before fit: %v", err)
	}
	if err := reg.Fit(nil); !errors.Is(err, ErrNoSamples) {
		t.Errorf("fit nil: %v", err)
	}
	if err := reg.Fit([]RegSample{{X: nil, Y: 1}}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("empty vector: %v", err)
	}
	if err := reg.Fit([]RegSample{{X: []float64{1}, Y: 1}, {X: []float64{1, 2}, Y: 2}}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("ragged: %v", err)
	}
	good := []RegSample{{X: []float64{1}, Y: 2}, {X: []float64{2}, Y: 4}}
	if err := reg.Fit(good); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Predict([]float64{1, 2}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("predict wrong dim: %v", err)
	}
}

func TestANNRegressorConstantTarget(t *testing.T) {
	samples := []RegSample{{X: []float64{1}, Y: 7}, {X: []float64{2}, Y: 7}, {X: []float64{3}, Y: 7}}
	reg := NewANNRegressor(3)
	if err := reg.Fit(samples); err != nil {
		t.Fatal(err)
	}
	got, err := reg.Predict([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-7) > 0.5 {
		t.Errorf("constant target predict = %v, want ~7", got)
	}
}

// TestLeaveOneOutParallelMatchesSerial pins the concurrency contract: folds
// are independent, so any worker count yields the serial accuracy.
func TestLeaveOneOutParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	samples := threeBlobs(r, 18, 4, 0.6)
	reg := Registry(99)
	// KNN is deterministic by construction; MLP is the heaviest seeded
	// learner — together they cover both classes of factory.
	for _, name := range []string{"KNN", "MLP"} {
		factory := reg[name]
		serial, err := LeaveOneOutAccuracyParallel(factory, samples, 1)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, workers := range []int{2, 8} {
			par, err := LeaveOneOutAccuracyParallel(factory, samples, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if par != serial {
				t.Errorf("%s: workers=%d accuracy %v != serial %v", name, workers, par, serial)
			}
		}
	}
	if _, err := LeaveOneOutAccuracyParallel(func() Classifier { return NewKNN(1) }, samples[:1], 4); !errors.Is(err, ErrNoSamples) {
		t.Errorf("short sample set: %v", err)
	}
}
