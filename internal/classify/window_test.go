package classify

import (
	"math"
	"testing"
)

func TestLabelErrorWindowSlides(t *testing.T) {
	w := NewLabelErrorWindow(3)
	if w.Count(1) != 0 || w.Mean(1) != 0 {
		t.Fatal("empty window must report zero count and mean")
	}
	w.Add(1, 1)
	w.Add(1, 2)
	w.Add(1, 3)
	if w.Count(1) != 3 || math.Abs(w.Mean(1)-2) > 1e-12 {
		t.Fatalf("full window: count %d mean %v", w.Count(1), w.Mean(1))
	}
	// The oldest (1) ages out.
	w.Add(1, 6)
	if w.Count(1) != 3 || math.Abs(w.Mean(1)-(2+3+6)/3.0) > 1e-12 {
		t.Fatalf("slid window: count %d mean %v", w.Count(1), w.Mean(1))
	}
	// Labels are independent.
	w.Add(2, 10)
	if w.Count(2) != 1 || w.Mean(2) != 10 || w.Count(1) != 3 {
		t.Fatal("labels must not share windows")
	}
}

func TestKNNPredictBiased(t *testing.T) {
	k := NewKNN(1)
	err := k.Fit([]Sample{
		{X: []float64{0}, Label: 0},
		{X: []float64{1}, Label: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 0.45 sits nearer label 0; nil bias keeps the plain prediction.
	label, _, err := k.PredictBiased([]float64{0.45}, nil)
	if err != nil || label != 0 {
		t.Fatalf("nil bias: label %d err %v, want 0", label, err)
	}
	// A modest penalty on label 0 flips the near-tie to label 1...
	penal := func(l int) float64 {
		if l == 0 {
			return 1.5
		}
		return 1
	}
	label, _, err = k.PredictBiased([]float64{0.45}, penal)
	if err != nil || label != 1 {
		t.Fatalf("biased near-tie: label %d err %v, want 1", label, err)
	}
	// ...but cannot flip a target sitting on label 0's sample.
	label, _, err = k.PredictBiased([]float64{0.05}, penal)
	if err != nil || label != 0 {
		t.Fatalf("biased far case: label %d err %v, want 0", label, err)
	}
}

func TestKNNCloneIsIndependent(t *testing.T) {
	k := NewKNN(1)
	if err := k.Fit([]Sample{
		{X: []float64{0}, Label: 0},
		{X: []float64{1}, Label: 1},
	}); err != nil {
		t.Fatal(err)
	}
	cp := k.Clone()
	if err := cp.Add(Sample{X: []float64{0.4}, Label: 1}); err != nil {
		t.Fatal(err)
	}
	orig, err := k.Predict([]float64{0.45})
	if err != nil || orig != 0 {
		t.Fatalf("original changed by clone's Add: label %d err %v", orig, err)
	}
	cloned, err := cp.Predict([]float64{0.45})
	if err != nil || cloned != 1 {
		t.Fatalf("clone did not learn its own sample: label %d err %v", cloned, err)
	}
}
