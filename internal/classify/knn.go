package classify

import (
	"fmt"
	"sort"

	"moespark/internal/mathx"
)

// KNN is the K-nearest-neighbours classifier the paper deploys as its expert
// selector. Beyond the Classifier interface it exposes the distance to the
// nearest neighbour, which the paper uses as a prediction-confidence signal
// (fall back to a conservative policy when the target program is far from
// every training program).
type KNN struct {
	// K is the number of neighbours consulted; the paper effectively uses
	// the single nearest training program (K=1).
	K int

	dim     int
	fitted  bool
	samples []Sample
}

// NewKNN returns a KNN classifier with the given neighbourhood size.
func NewKNN(k int) *KNN { return &KNN{K: k} }

var _ Classifier = (*KNN)(nil)

// Name implements Classifier.
func (k *KNN) Name() string { return fmt.Sprintf("KNN(k=%d)", k.K) }

// Fit stores the training set (KNN is a lazy learner). One advantage the
// paper highlights: adding a new memory function requires no retraining,
// just new labelled samples.
func (k *KNN) Fit(samples []Sample) error {
	if k.K <= 0 {
		return fmt.Errorf("%w: K=%d", ErrInvalidParam, k.K)
	}
	dim, _, err := checkSamples(samples)
	if err != nil {
		return err
	}
	k.samples = make([]Sample, len(samples))
	copy(k.samples, samples)
	k.dim = dim
	k.fitted = true
	return nil
}

// Clone returns an independent copy of the classifier: mutations of either
// copy's training set (Add) never affect the other. Adaptive gates clone
// their selector before self-training so a shared trained model stays
// immutable.
func (k *KNN) Clone() *KNN {
	cp := *k
	cp.samples = make([]Sample, len(k.samples))
	copy(cp.samples, k.samples)
	return &cp
}

// Add inserts one more labelled sample without refitting anything else.
func (k *KNN) Add(s Sample) error {
	if !k.fitted {
		return ErrNotFitted
	}
	if len(s.X) != k.dim {
		return ErrDimMismatch
	}
	k.samples = append(k.samples, s)
	return nil
}

// Predict implements Classifier.
func (k *KNN) Predict(x []float64) (int, error) {
	label, _, err := k.PredictWithDistance(x)
	return label, err
}

// PredictWithDistance returns the majority label among the K nearest
// neighbours and the Euclidean distance to the single nearest one.
func (k *KNN) PredictWithDistance(x []float64) (label int, nearest float64, err error) {
	return k.predict(x, nil)
}

// PredictBiased is PredictWithDistance with per-label distance scaling, the
// online-gate hook of an adaptive mixture: each neighbour's distance is
// multiplied by bias(label) before ranking, so a label whose recent
// predictions have been poor (bias > 1) must be proportionally closer in
// feature space to win the vote. bias must return positive finite values; a
// nil bias reproduces PredictWithDistance exactly. The returned distance is
// the biased distance of the nearest neighbour under the scaling.
func (k *KNN) PredictBiased(x []float64, bias func(label int) float64) (label int, nearest float64, err error) {
	return k.predict(x, bias)
}

func (k *KNN) predict(x []float64, bias func(label int) float64) (label int, nearest float64, err error) {
	if !k.fitted {
		return 0, 0, ErrNotFitted
	}
	if len(x) != k.dim {
		return 0, 0, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), k.dim)
	}
	type neigh struct {
		dist  float64
		label int
	}
	neighs := make([]neigh, len(k.samples))
	for i, s := range k.samples {
		d := mathx.Euclidean(x, s.X)
		if bias != nil {
			d *= bias(s.Label)
		}
		neighs[i] = neigh{dist: d, label: s.Label}
	}
	sort.SliceStable(neighs, func(a, b int) bool { return neighs[a].dist < neighs[b].dist })
	kk := k.K
	if kk > len(neighs) {
		kk = len(neighs)
	}
	votes := map[int]int{}
	for _, n := range neighs[:kk] {
		votes[n.label]++
	}
	best, bestVotes := neighs[0].label, -1
	for _, n := range neighs[:kk] { // iterate in distance order for stable ties
		if v := votes[n.label]; v > bestVotes {
			best, bestVotes = n.label, v
		}
	}
	return best, neighs[0].dist, nil
}
