package classify

import (
	"fmt"
	"math"
)

// KNN is the K-nearest-neighbours classifier the paper deploys as its expert
// selector. Beyond the Classifier interface it exposes the distance to the
// nearest neighbour, which the paper uses as a prediction-confidence signal
// (fall back to a conservative policy when the target program is far from
// every training program).
//
// K=1 queries — the paper's deployed configuration and the scheduler's
// per-arrival hot path — are served by an exact k-d tree index (knnindex.go)
// instead of the linear scan; the scan is kept as the reference path
// (knn_ref.go) and remains live for K > 1 and for the Linear opt-out.
type KNN struct {
	// K is the number of neighbours consulted; the paper effectively uses
	// the single nearest training program (K=1).
	K int
	// Linear forces the reference linear scan even for K=1 queries. The
	// indexed path is bit-identical (pinned by a differential test), so this
	// exists only for A/B benchmarking and debugging.
	Linear bool

	dim     int
	fitted  bool
	samples []Sample
	// index is the exact nearest-neighbour tree over samples, rebuilt
	// eagerly on every Fit/Add so queries stay read-only (trained models are
	// shared across concurrent experiment runs).
	index *kdTree
	// labels holds the distinct sample labels in first-insertion order; the
	// indexed path scans it to lower-bound the bias multiplier for pruning.
	labels []int
}

// NewKNN returns a KNN classifier with the given neighbourhood size.
func NewKNN(k int) *KNN { return &KNN{K: k} }

var _ Classifier = (*KNN)(nil)

// Name implements Classifier.
func (k *KNN) Name() string { return fmt.Sprintf("KNN(k=%d)", k.K) }

// Fit stores the training set (KNN is a lazy learner). One advantage the
// paper highlights: adding a new memory function requires no retraining,
// just new labelled samples.
func (k *KNN) Fit(samples []Sample) error {
	if k.K <= 0 {
		return fmt.Errorf("%w: K=%d", ErrInvalidParam, k.K)
	}
	dim, _, err := checkSamples(samples)
	if err != nil {
		return err
	}
	k.samples = make([]Sample, len(samples))
	copy(k.samples, samples)
	k.dim = dim
	k.fitted = true
	k.reindex()
	return nil
}

// reindex rebuilds the nearest-neighbour tree and the distinct-label list
// from the current training set. Called on every mutation (Fit, Add) so the
// query path never writes.
func (k *KNN) reindex() {
	k.index = buildKD(k.samples)
	k.labels = k.labels[:0]
	seen := map[int]bool{}
	for _, s := range k.samples {
		if !seen[s.Label] {
			seen[s.Label] = true
			k.labels = append(k.labels, s.Label)
		}
	}
}

// Clone returns an independent copy of the classifier: mutations of either
// copy's training set (Add) never affect the other. Adaptive gates clone
// their selector before self-training so a shared trained model stays
// immutable.
func (k *KNN) Clone() *KNN {
	cp := *k
	cp.samples = make([]Sample, len(k.samples))
	copy(cp.samples, k.samples)
	// The tree is immutable and references samples by index, so the copy may
	// share it until its own next mutation rebuilds; the labels slice must be
	// owned, or the copy's reindex would scribble over this one's backing
	// array.
	cp.labels = make([]int, len(k.labels))
	copy(cp.labels, k.labels)
	return &cp
}

// Add inserts one more labelled sample without refitting anything else.
func (k *KNN) Add(s Sample) error {
	if !k.fitted {
		return ErrNotFitted
	}
	if len(s.X) != k.dim {
		return ErrDimMismatch
	}
	k.samples = append(k.samples, s)
	k.reindex()
	return nil
}

// Predict implements Classifier.
func (k *KNN) Predict(x []float64) (int, error) {
	label, _, err := k.PredictWithDistance(x)
	return label, err
}

// PredictWithDistance returns the majority label among the K nearest
// neighbours and the Euclidean distance to the single nearest one.
func (k *KNN) PredictWithDistance(x []float64) (label int, nearest float64, err error) {
	return k.predict(x, nil)
}

// PredictBiased is PredictWithDistance with per-label distance scaling, the
// online-gate hook of an adaptive mixture: each neighbour's distance is
// multiplied by bias(label) before ranking, so a label whose recent
// predictions have been poor (bias > 1) must be proportionally closer in
// feature space to win the vote. bias must return positive finite values; a
// nil bias reproduces PredictWithDistance exactly. The returned distance is
// the biased distance of the nearest neighbour under the scaling.
func (k *KNN) PredictBiased(x []float64, bias func(label int) float64) (label int, nearest float64, err error) {
	return k.predict(x, bias)
}

// PredictBatch answers a sequence of queries together, each exactly as
// PredictBiased would (a nil bias reproduces PredictWithDistance). The batch
// shares one ranking buffer across all queries on the linear path; the
// indexed path needs no buffers. The first failing query aborts the batch.
func (k *KNN) PredictBatch(xs [][]float64, bias func(label int) float64) (labels []int, nearest []float64, err error) {
	labels = make([]int, len(xs))
	nearest = make([]float64, len(xs))
	var scratch []neigh
	for i, x := range xs {
		if k.K == 1 && !k.Linear && k.index != nil {
			labels[i], nearest[i], err = k.predictIndexed(x, bias)
		} else {
			labels[i], nearest[i], err = k.predictLinearBuf(x, bias, &scratch)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("classify: batch query %d: %w", i, err)
		}
	}
	return labels, nearest, nil
}

// predict routes a query to the indexed path when it applies (K=1, index
// built, Linear opt-out unset) and to the reference linear scan otherwise.
// Both paths are bit-identical for K=1; see knnindex.go for the argument.
func (k *KNN) predict(x []float64, bias func(label int) float64) (label int, nearest float64, err error) {
	if k.K == 1 && !k.Linear && k.index != nil {
		return k.predictIndexed(x, bias)
	}
	return k.predictLinear(x, bias)
}

// predictIndexed answers a K=1 query through the k-d tree.
func (k *KNN) predictIndexed(x []float64, bias func(label int) float64) (label int, nearest float64, err error) {
	if !k.fitted {
		return 0, 0, ErrNotFitted
	}
	if len(x) != k.dim {
		return 0, 0, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), k.dim)
	}
	// The pruning bound scales geometric distance by the smallest bias any
	// label can contribute; with no bias every multiplier is 1.
	minBias := 1.0
	if bias != nil {
		minBias = math.Inf(1)
		for _, l := range k.labels {
			if b := bias(l); b < minBias {
				minBias = b
			}
		}
	}
	idx, d := k.index.nearest(k.samples, x, bias, minBias)
	return k.samples[idx].Label, d, nil
}
