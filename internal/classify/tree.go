package classify

import (
	"fmt"
	"math/rand"
	"sort"
)

// DecisionTree is a CART-style binary classification tree split on the Gini
// impurity criterion.
type DecisionTree struct {
	// MaxDepth bounds tree depth; 0 means unbounded.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf (default 1).
	MinLeaf int
	// featureSubset, when non-nil, draws a random subset of features at
	// every split (used by RandomForest).
	featureSubset func(dim int) []int

	dim    int
	fitted bool
	root   *treeNode
}

type treeNode struct {
	leaf    bool
	label   int
	feature int
	thresh  float64
	left    *treeNode
	right   *treeNode
}

// NewDecisionTree returns an unfitted CART tree.
func NewDecisionTree(maxDepth int) *DecisionTree {
	return &DecisionTree{MaxDepth: maxDepth, MinLeaf: 1}
}

var _ Classifier = (*DecisionTree)(nil)

// Name implements Classifier.
func (t *DecisionTree) Name() string { return "DecisionTree" }

// Fit implements Classifier.
func (t *DecisionTree) Fit(samples []Sample) error {
	dim, _, err := checkSamples(samples)
	if err != nil {
		return err
	}
	if t.MinLeaf <= 0 {
		t.MinLeaf = 1
	}
	t.dim = dim
	work := make([]Sample, len(samples))
	copy(work, samples)
	t.root = t.build(work, 0)
	t.fitted = true
	return nil
}

func majority(samples []Sample) int {
	votes := map[int]int{}
	for _, s := range samples {
		votes[s.Label]++
	}
	best, bestV := samples[0].Label, -1
	// Deterministic tie-break: smallest label wins among maxima.
	labels := make([]int, 0, len(votes))
	//moevet:allow maporder collected labels are sorted immediately below
	for l := range votes {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	for _, l := range labels {
		if votes[l] > bestV {
			best, bestV = l, votes[l]
		}
	}
	return best
}

func gini(counts map[int]int, n int) float64 {
	if n == 0 {
		return 0
	}
	// Accumulate the squared counts in integer space — exact, hence
	// iteration-order independent — and divide once. The old per-label
	// float subtraction g -= (c/n)² rounded differently depending on the
	// map's per-run iteration order, so split selection (and with it whole
	// trees) could differ between bit-identical invocations.
	var ss int
	for _, c := range counts {
		ss += c * c
	}
	return 1 - float64(ss)/(float64(n)*float64(n))
}

func pure(samples []Sample) bool {
	for _, s := range samples[1:] {
		if s.Label != samples[0].Label {
			return false
		}
	}
	return true
}

func (t *DecisionTree) build(samples []Sample, depth int) *treeNode {
	if len(samples) <= t.MinLeaf || pure(samples) || (t.MaxDepth > 0 && depth >= t.MaxDepth) {
		return &treeNode{leaf: true, label: majority(samples)}
	}
	feats := make([]int, t.dim)
	for i := range feats {
		feats[i] = i
	}
	if t.featureSubset != nil {
		feats = t.featureSubset(t.dim)
	}
	bestFeat, bestThresh, bestGain := -1, 0.0, 0.0
	parentCounts := map[int]int{}
	for _, s := range samples {
		parentCounts[s.Label]++
	}
	parentGini := gini(parentCounts, len(samples))
	for _, f := range feats {
		// Sort indices by feature value and scan candidate thresholds.
		ordered := make([]Sample, len(samples))
		copy(ordered, samples)
		sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].X[f] < ordered[b].X[f] })
		leftCounts := map[int]int{}
		rightCounts := map[int]int{}
		for l, c := range parentCounts {
			rightCounts[l] = c
		}
		for i := 0; i < len(ordered)-1; i++ {
			leftCounts[ordered[i].Label]++
			rightCounts[ordered[i].Label]--
			if ordered[i].X[f] == ordered[i+1].X[f] {
				continue // cannot split between equal values
			}
			nl, nr := i+1, len(ordered)-i-1
			if nl < t.MinLeaf || nr < t.MinLeaf {
				continue
			}
			w := parentGini -
				(float64(nl)*gini(leftCounts, nl)+float64(nr)*gini(rightCounts, nr))/float64(len(ordered))
			if w > bestGain {
				bestGain = w
				bestFeat = f
				bestThresh = (ordered[i].X[f] + ordered[i+1].X[f]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return &treeNode{leaf: true, label: majority(samples)}
	}
	var left, right []Sample
	for _, s := range samples {
		if s.X[bestFeat] <= bestThresh {
			left = append(left, s)
		} else {
			right = append(right, s)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &treeNode{leaf: true, label: majority(samples)}
	}
	return &treeNode{
		feature: bestFeat,
		thresh:  bestThresh,
		left:    t.build(left, depth+1),
		right:   t.build(right, depth+1),
	}
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(x []float64) (int, error) {
	if !t.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != t.dim {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), t.dim)
	}
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label, nil
}

// RandomForest is a bagged ensemble of CART trees with per-split random
// feature subsets.
type RandomForest struct {
	// Trees is the ensemble size (default 50).
	Trees int
	// MaxDepth bounds each tree (0 = unbounded).
	MaxDepth int
	// Seed drives bootstrap sampling and feature subsets.
	Seed int64

	dim    int
	fitted bool
	forest []*DecisionTree
}

// NewRandomForest returns an unfitted forest with n trees.
func NewRandomForest(n int, seed int64) *RandomForest {
	return &RandomForest{Trees: n, Seed: seed}
}

var _ Classifier = (*RandomForest)(nil)

// Name implements Classifier.
func (rf *RandomForest) Name() string { return "RandomForests" }

// Fit implements Classifier.
func (rf *RandomForest) Fit(samples []Sample) error {
	dim, _, err := checkSamples(samples)
	if err != nil {
		return err
	}
	if rf.Trees <= 0 {
		rf.Trees = 50
	}
	rf.dim = dim
	rng := rand.New(rand.NewSource(rf.Seed))
	rf.forest = make([]*DecisionTree, 0, rf.Trees)
	// sqrt(dim) features per split, the standard heuristic.
	sub := 1
	for sub*sub < dim {
		sub++
	}
	for i := 0; i < rf.Trees; i++ {
		boot := make([]Sample, len(samples))
		for j := range boot {
			boot[j] = samples[rng.Intn(len(samples))]
		}
		tr := NewDecisionTree(rf.MaxDepth)
		treeRng := rand.New(rand.NewSource(rng.Int63()))
		tr.featureSubset = func(d int) []int {
			perm := treeRng.Perm(d)
			return perm[:sub]
		}
		if err := tr.Fit(boot); err != nil {
			return fmt.Errorf("classify: fitting forest tree %d: %w", i, err)
		}
		rf.forest = append(rf.forest, tr)
	}
	rf.fitted = true
	return nil
}

// Predict implements Classifier.
func (rf *RandomForest) Predict(x []float64) (int, error) {
	if !rf.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != rf.dim {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), rf.dim)
	}
	votes := map[int]int{}
	for _, tr := range rf.forest {
		l, err := tr.Predict(x)
		if err != nil {
			return 0, err
		}
		votes[l]++
	}
	labels := make([]int, 0, len(votes))
	//moevet:allow maporder collected labels are sorted immediately below
	for l := range votes {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	best, bestV := labels[0], -1
	for _, l := range labels {
		if votes[l] > bestV {
			best, bestV = l, votes[l]
		}
	}
	return best, nil
}
