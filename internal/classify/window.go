package classify

// LabelErrorWindow tracks a sliding window of the most recent error
// observations per label. It is the online-update state behind a reweighted
// gate: an expert selector records each expert's recent prediction error
// here and biases its choice away from labels whose window mean is high.
// Old observations age out of the fixed-size window, so the gate reacts to
// the current regime instead of averaging over all history.
type LabelErrorWindow struct {
	size int
	wins map[int]*ringWindow
}

// ringWindow is one label's fixed-capacity ring buffer with a running sum.
type ringWindow struct {
	vals []float64
	pos  int
	n    int
	sum  float64
}

// NewLabelErrorWindow returns an empty window holding the last size
// observations per label (size must be positive).
func NewLabelErrorWindow(size int) *LabelErrorWindow {
	if size <= 0 {
		size = 1
	}
	return &LabelErrorWindow{size: size, wins: map[int]*ringWindow{}}
}

// Add records one error observation for the label, evicting the oldest when
// the label's window is full.
func (w *LabelErrorWindow) Add(label int, err float64) {
	r := w.wins[label]
	if r == nil {
		r = &ringWindow{vals: make([]float64, w.size)}
		w.wins[label] = r
	}
	if r.n == w.size {
		r.sum -= r.vals[r.pos]
	} else {
		r.n++
	}
	r.vals[r.pos] = err
	r.sum += err
	r.pos = (r.pos + 1) % w.size
}

// Count returns how many observations the label's window currently holds.
func (w *LabelErrorWindow) Count(label int) int {
	if r := w.wins[label]; r != nil {
		return r.n
	}
	return 0
}

// Mean returns the mean error over the label's window, or 0 when empty.
func (w *LabelErrorWindow) Mean(label int) float64 {
	r := w.wins[label]
	if r == nil || r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}
