package classify

import (
	"testing"
)

// FuzzKNNIndexMatchesLinear fuzzes the k-d tree K=1 path against the linear
// reference scan in knn_ref.go. The input bytes are decoded into a training
// set on a coarse coordinate grid — so the fuzzer can construct exact
// duplicates, equal-distance ties and equal single-axis splits, the cases
// where tie-break order could diverge — plus an optional per-label bias
// (multipliers below 1 stress the pruning bound). Every query must agree
// bit-identically: same label, same float64 distance.
func FuzzKNNIndexMatchesLinear(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, false)
	f.Add([]byte{3, 8, 8, 8, 8, 1, 8, 8, 8, 8, 2}, true)
	f.Add([]byte{1, 0, 0, 4, 1, 0, 2, 4, 3}, true)
	f.Fuzz(func(t *testing.T, data []byte, biased bool) {
		if len(data) < 3 {
			t.Skip("not enough bytes for one sample")
		}
		dim := 1 + int(data[0]%4)
		body := data[1:]
		per := dim + 1 // dim coordinate bytes plus a label byte
		n := len(body) / per
		if n == 0 {
			t.Skip("not enough bytes for one sample")
		}
		if n > 128 {
			n = 128
		}
		samples := make([]Sample, n)
		for i := range samples {
			chunk := body[i*per : (i+1)*per]
			x := make([]float64, dim)
			for j := range x {
				// Grid coordinates: 16 distinct values force frequent ties.
				x[j] = float64(chunk[j]%16) * 0.25
			}
			samples[i] = Sample{X: x, Label: int(chunk[dim] % 4)}
		}

		indexed := NewKNN(1)
		if err := indexed.Fit(samples); err != nil {
			t.Fatalf("fit: %v", err)
		}
		linear := indexed.Clone()
		linear.Linear = true

		var bias func(label int) float64
		if biased {
			var biases [4]float64
			for i := range biases {
				// 0.25..2.125 in steps of 0.25: shrinking and inflating.
				biases[i] = 0.25 + float64(data[(i*3+1)%len(data)]%8)*0.25
			}
			bias = func(label int) float64 { return biases[label] }
		}

		check := func(x []float64) {
			t.Helper()
			li, ld, lerr := linear.predict(x, bias)
			ii, id, ierr := indexed.predict(x, bias)
			if (lerr == nil) != (ierr == nil) {
				t.Fatalf("error mismatch: linear=%v indexed=%v", lerr, ierr)
			}
			if lerr != nil {
				return
			}
			if li != ii || ld != id {
				t.Fatalf("query %v (n=%d dim=%d biased=%v): linear=(%d, %v) indexed=(%d, %v)",
					x, n, dim, biased, li, ld, ii, id)
			}
		}

		// Exact-hit queries on every training point: distance-zero ties must
		// break identically.
		for i := 0; i < n && i < 16; i++ {
			check(samples[i].X)
		}
		// Off-grid query assembled from the raw bytes.
		q := make([]float64, dim)
		for j := range q {
			q[j] = float64(body[(j*7)%len(body)]) / 64
		}
		check(q)
	})
}
