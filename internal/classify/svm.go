package classify

import (
	"fmt"
	"math/rand"
)

// LinearSVM is a one-vs-rest linear support vector machine trained with
// stochastic sub-gradient descent on the L2-regularised hinge loss
// (Pegasos-style step schedule).
type LinearSVM struct {
	// Lambda is the L2 regularisation strength (default 1e-3).
	Lambda float64
	// Epochs is the number of SGD passes (default 300).
	Epochs int
	// Seed drives sample shuffling.
	Seed int64

	dim    int
	fitted bool
	labels []int
	std    standardizer
	// one weight vector (plus bias as the last element) per label
	w [][]float64
}

// NewLinearSVM returns an unfitted one-vs-rest linear SVM.
func NewLinearSVM(seed int64) *LinearSVM { return &LinearSVM{Seed: seed} }

var _ Classifier = (*LinearSVM)(nil)

// Name implements Classifier.
func (s *LinearSVM) Name() string { return "SVM" }

// Fit implements Classifier.
func (s *LinearSVM) Fit(samples []Sample) error {
	dim, labels, err := checkSamples(samples)
	if err != nil {
		return err
	}
	if len(labels) < 2 {
		return ErrSingleClass
	}
	if s.Lambda <= 0 {
		s.Lambda = 1e-3
	}
	if s.Epochs <= 0 {
		s.Epochs = 300
	}
	s.dim = dim
	s.labels = labels
	s.std = fitStandardizer(samples, dim)
	scaled := make([]Sample, len(samples))
	for i, sm := range samples {
		scaled[i] = Sample{X: s.std.apply(sm.X), Label: sm.Label}
	}
	s.w = make([][]float64, len(labels))
	rng := rand.New(rand.NewSource(s.Seed))
	for li, label := range labels {
		s.w[li] = s.trainBinary(scaled, label, rng)
	}
	s.fitted = true
	return nil
}

// trainBinary trains one one-vs-rest margin classifier for label.
func (s *LinearSVM) trainBinary(samples []Sample, label int, rng *rand.Rand) []float64 {
	w := make([]float64, s.dim+1) // last slot = bias
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	t := 0
	for epoch := 0; epoch < s.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, ix := range order {
			t++
			eta := 1 / (s.Lambda * float64(t))
			sm := samples[ix]
			y := -1.0
			if sm.Label == label {
				y = 1.0
			}
			margin := w[s.dim]
			for i, x := range sm.X {
				margin += w[i] * x
			}
			margin *= y
			// L2 shrinkage on the weights (not the bias).
			for i := 0; i < s.dim; i++ {
				w[i] *= 1 - eta*s.Lambda
			}
			if margin < 1 {
				for i, x := range sm.X {
					w[i] += eta * y * x
				}
				w[s.dim] += eta * y
			}
		}
	}
	return w
}

// Predict implements Classifier.
func (s *LinearSVM) Predict(x []float64) (int, error) {
	if !s.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != s.dim {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), s.dim)
	}
	x = s.std.apply(x)
	bestIx := 0
	bestScore := 0.0
	for li := range s.labels {
		w := s.w[li]
		score := w[s.dim]
		for i, xi := range x {
			score += w[i] * xi
		}
		if li == 0 || score > bestScore {
			bestIx, bestScore = li, score
		}
	}
	return s.labels[bestIx], nil
}

// Registry returns fresh factories for every classifier in the paper's
// Table 5, keyed by the paper's display names, with deterministic seeds
// derived from the supplied base seed.
func Registry(seed int64) map[string]func() Classifier {
	return map[string]func() Classifier{
		"Naive Bayes":    func() Classifier { return NewGaussianNB() },
		"SVM":            func() Classifier { return NewLinearSVM(seed) },
		"MLP":            func() Classifier { return NewMLP([]int{12}, seed+1) },
		"Random Forests": func() Classifier { return NewRandomForest(50, seed+2) },
		"Decision Tree":  func() Classifier { return NewDecisionTree(0) },
		"ANN":            func() Classifier { m := NewMLP([]int{16, 8}, seed+3); m.DisplayName = "ANN"; return m },
		"KNN":            func() Classifier { return NewKNN(1) },
	}
}

// RegistryNames returns the Table 5 classifier names in the paper's order.
func RegistryNames() []string {
	return []string{"Naive Bayes", "SVM", "MLP", "Random Forests", "Decision Tree", "ANN", "KNN"}
}
