// Package classify implements the supervised classifiers the paper evaluates
// as expert selectors (Table 5): K-nearest neighbours (the selector the
// system ships with), Gaussian Naive Bayes, a CART decision tree, random
// forests, a multi-layer perceptron, a one-vs-rest linear SVM — plus the
// feed-forward ANN regressor used by the unified-model baseline (Figure 9).
//
// All models operate on small dense float64 vectors (the principal
// components produced by the features pipeline) and integer class labels.
package classify

import (
	"errors"
	"fmt"
	"math"

	"moespark/internal/parallel"
)

// Sample is one labelled training observation.
type Sample struct {
	X     []float64
	Label int
}

// Classifier is a trainable multi-class classifier.
type Classifier interface {
	// Name identifies the classifier in reports.
	Name() string
	// Fit trains on the labelled samples. It may be called again to retrain.
	Fit(samples []Sample) error
	// Predict returns the predicted label for x.
	Predict(x []float64) (int, error)
}

// Common errors shared by the classifier implementations.
var (
	ErrNotFitted    = errors.New("classify: model not fitted")
	ErrNoSamples    = errors.New("classify: no training samples")
	ErrDimMismatch  = errors.New("classify: feature dimension mismatch")
	ErrSingleClass  = errors.New("classify: training set has a single class")
	ErrInvalidParam = errors.New("classify: invalid hyper-parameter")
)

// checkSamples validates a training set and returns its feature dimension
// and the sorted distinct labels.
func checkSamples(samples []Sample) (dim int, labels []int, err error) {
	if len(samples) == 0 {
		return 0, nil, ErrNoSamples
	}
	dim = len(samples[0].X)
	if dim == 0 {
		return 0, nil, fmt.Errorf("%w: empty feature vector", ErrDimMismatch)
	}
	seen := map[int]bool{}
	for i, s := range samples {
		if len(s.X) != dim {
			return 0, nil, fmt.Errorf("%w: sample %d has dim %d, want %d", ErrDimMismatch, i, len(s.X), dim)
		}
		seen[s.Label] = true
	}
	labels = make([]int, 0, len(seen))
	//moevet:allow maporder collected labels are insertion-sorted immediately below
	for l := range seen {
		labels = append(labels, l)
	}
	// Insertion sort: label sets are tiny.
	for i := 1; i < len(labels); i++ {
		for j := i; j > 0 && labels[j] < labels[j-1]; j-- {
			labels[j], labels[j-1] = labels[j-1], labels[j]
		}
	}
	return dim, labels, nil
}

// standardizer rescales inputs to zero mean / unit variance. The
// gradient-trained models (MLP, SVM, ANN regressor) fit one on their
// training inputs so that learning is well-conditioned at any feature scale.
type standardizer struct {
	mean, std []float64
}

func fitStandardizer(samples []Sample, dim int) standardizer {
	s := standardizer{mean: make([]float64, dim), std: make([]float64, dim)}
	for _, sm := range samples {
		for j, x := range sm.X {
			s.mean[j] += x
		}
	}
	n := float64(len(samples))
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, sm := range samples {
		for j, x := range sm.X {
			d := x - s.mean[j]
			s.std[j] += d * d
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] == 0 {
			s.std[j] = 1
		}
	}
	return s
}

func (s standardizer) apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
	return out
}

// LeaveOneOutAccuracy evaluates a classifier factory with leave-one-out
// cross-validation, the protocol the paper uses for Table 5 and Figure 17.
// The factory must return a fresh, unfitted classifier on every call.
func LeaveOneOutAccuracy(factory func() Classifier, samples []Sample) (float64, error) {
	return LeaveOneOutAccuracyParallel(factory, samples, 1)
}

// LeaveOneOutAccuracyParallel is LeaveOneOutAccuracy fanned out over a pool
// of workers. Folds are independent — every factory call returns a fresh
// classifier with its own seeded rng — so the accuracy is identical to the
// serial evaluation for any worker count. workers <= 1 runs serially.
func LeaveOneOutAccuracyParallel(factory func() Classifier, samples []Sample, workers int) (float64, error) {
	if len(samples) < 2 {
		return 0, ErrNoSamples
	}
	fold := func(i int) (bool, error) {
		train := make([]Sample, 0, len(samples)-1)
		train = append(train, samples[:i]...)
		train = append(train, samples[i+1:]...)
		c := factory()
		if err := c.Fit(train); err != nil {
			return false, fmt.Errorf("classify: LOOCV fold %d: %w", i, err)
		}
		pred, err := c.Predict(samples[i].X)
		if err != nil {
			return false, fmt.Errorf("classify: LOOCV fold %d predict: %w", i, err)
		}
		return pred == samples[i].Label, nil
	}
	hits := make([]bool, len(samples))
	if err := parallel.ForEachIndexed(workers, len(samples), func(i int) error {
		ok, err := fold(i)
		if err != nil {
			return err
		}
		hits[i] = ok
		return nil
	}); err != nil {
		return 0, err
	}
	correct := 0
	for _, ok := range hits {
		if ok {
			correct++
		}
	}
	return float64(correct) / float64(len(samples)), nil
}
