package classify

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a feed-forward neural-network classifier trained with
// backpropagation (SGD, tanh hidden units, softmax output, cross-entropy
// loss). The paper's Table 5 evaluates two variants: "MLP" (one hidden
// layer) and "ANN" (the 3-layer network also used as the unified-model
// regressor in Figure 9); both are expressed by Hidden.
type MLP struct {
	// Hidden lists hidden-layer sizes, e.g. []int{16} or []int{16, 8}.
	Hidden []int
	// Epochs is the number of SGD passes (default 400).
	Epochs int
	// LearningRate is the SGD step (default 0.05).
	LearningRate float64
	// Seed drives weight init and sample shuffling.
	Seed int64
	// DisplayName overrides Name() in reports (e.g. "ANN" vs "MLP").
	DisplayName string

	dim     int
	fitted  bool
	labels  []int
	labelIx map[int]int
	weights []matrixLayer
	std     standardizer
}

type matrixLayer struct {
	in, out int
	w       []float64 // (in+1) x out, row-major, last row is bias
}

func (l *matrixLayer) at(i, j int) float64     { return l.w[i*l.out+j] }
func (l *matrixLayer) add(i, j int, d float64) { l.w[i*l.out+j] += d }

// NewMLP returns an unfitted MLP with the given hidden layout.
func NewMLP(hidden []int, seed int64) *MLP {
	return &MLP{Hidden: hidden, Seed: seed}
}

var _ Classifier = (*MLP)(nil)

// Name implements Classifier.
func (m *MLP) Name() string {
	if m.DisplayName != "" {
		return m.DisplayName
	}
	return fmt.Sprintf("MLP%v", m.Hidden)
}

// Fit implements Classifier.
func (m *MLP) Fit(samples []Sample) error {
	dim, labels, err := checkSamples(samples)
	if err != nil {
		return err
	}
	if len(labels) < 2 {
		return ErrSingleClass
	}
	if m.Epochs <= 0 {
		m.Epochs = 400
	}
	if m.LearningRate <= 0 {
		m.LearningRate = 0.05
	}
	if len(m.Hidden) == 0 {
		m.Hidden = []int{16}
	}
	m.dim = dim
	m.labels = labels
	m.labelIx = make(map[int]int, len(labels))
	for i, l := range labels {
		m.labelIx[l] = i
	}
	m.std = fitStandardizer(samples, dim)
	rng := rand.New(rand.NewSource(m.Seed))
	sizes := append([]int{dim}, m.Hidden...)
	sizes = append(sizes, len(labels))
	m.weights = make([]matrixLayer, len(sizes)-1)
	for i := range m.weights {
		in, out := sizes[i], sizes[i+1]
		l := matrixLayer{in: in, out: out, w: make([]float64, (in+1)*out)}
		scale := 1 / math.Sqrt(float64(in))
		for j := range l.w {
			l.w[j] = rng.NormFloat64() * scale
		}
		m.weights[i] = l
	}
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, ix := range order {
			m.backprop(samples[ix])
		}
	}
	m.fitted = true
	return nil
}

// forward runs the network, returning every layer's activations
// (activations[0] is the input, the last entry the softmax output).
func (m *MLP) forward(x []float64) [][]float64 {
	acts := make([][]float64, 0, len(m.weights)+1)
	acts = append(acts, x)
	cur := x
	for li, l := range m.weights {
		next := make([]float64, l.out)
		for j := 0; j < l.out; j++ {
			s := l.at(l.in, j) // bias row
			for i := 0; i < l.in; i++ {
				s += l.at(i, j) * cur[i]
			}
			next[j] = s
		}
		if li < len(m.weights)-1 {
			for j := range next {
				next[j] = math.Tanh(next[j])
			}
		} else {
			softmaxInPlace(next)
		}
		acts = append(acts, next)
		cur = next
	}
	return acts
}

func softmaxInPlace(v []float64) {
	maxV := v[0]
	for _, x := range v[1:] {
		if x > maxV {
			maxV = x
		}
	}
	var sum float64
	for i, x := range v {
		v[i] = math.Exp(x - maxV)
		sum += v[i]
	}
	for i := range v {
		v[i] /= sum
	}
}

func (m *MLP) backprop(s Sample) {
	acts := m.forward(m.std.apply(s.X))
	out := acts[len(acts)-1]
	// Softmax + cross-entropy gradient: delta = p - onehot.
	delta := make([]float64, len(out))
	copy(delta, out)
	delta[m.labelIx[s.Label]] -= 1
	for li := len(m.weights) - 1; li >= 0; li-- {
		l := &m.weights[li]
		prev := acts[li]
		var prevDelta []float64
		if li > 0 {
			prevDelta = make([]float64, l.in)
			for i := 0; i < l.in; i++ {
				var g float64
				for j := 0; j < l.out; j++ {
					g += l.at(i, j) * delta[j]
				}
				// tanh'(a) = 1 - a².
				prevDelta[i] = g * (1 - prev[i]*prev[i])
			}
		}
		for j := 0; j < l.out; j++ {
			step := m.LearningRate * delta[j]
			for i := 0; i < l.in; i++ {
				l.add(i, j, -step*prev[i])
			}
			l.add(l.in, j, -step) // bias
		}
		delta = prevDelta
	}
}

// Predict implements Classifier.
func (m *MLP) Predict(x []float64) (int, error) {
	if !m.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != m.dim {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), m.dim)
	}
	out := m.forward(m.std.apply(x))
	probs := out[len(out)-1]
	best, bestP := 0, probs[0]
	for i, p := range probs[1:] {
		if p > bestP {
			best, bestP = i+1, p
		}
	}
	return m.labels[best], nil
}
