package metrics

import (
	"errors"

	"moespark/internal/cluster"
)

// FaultImpact summarises how much of a run a failure episode actually cost:
// the work thrown away, the fraction of processing that was useful, how the
// system behaved while the faults were landing, and how long it took to work
// off the backlog afterwards. It complements QueueMetrics, which sees only
// the latency side of the damage.
type FaultImpact struct {
	// LostWorkGB is the reprocessing work charged back over the whole run
	// (OOM kills, node failures, preemptions) — Result.LostWorkGB.
	LostWorkGB float64
	// GoodputFrac is useful work over total work processed:
	// sum(InputGB) / (sum(InputGB) + LostWorkGB). 1.0 means no processing
	// was wasted on reprocessing.
	GoodputFrac float64
	// FaultWindowJobsPerHour is the completion rate inside the fault window
	// [faultStartSec, faultEndSec] — the goodput the system sustained while
	// the failures were landing.
	FaultWindowJobsPerHour float64
	// RecoverySec is how long past the end of the fault window the system
	// needed to finish every application submitted before the window closed:
	// the time to drain the backlog the episode created (0 when the affected
	// population finished within the window).
	RecoverySec float64
	// Migrations, OOMRetries and FailKills echo the run's resilience
	// counters.
	Migrations int
	OOMRetries int
	FailKills  int
}

// Faults computes the degradation metrics of a finished run against a fault
// window (typically the storm's span, e.g. first to last RackStormEvents
// departure). The window may be empty (start == end) for a point fault.
func Faults(res *cluster.Result, faultStartSec, faultEndSec float64) (FaultImpact, error) {
	var fi FaultImpact
	if res == nil || len(res.Apps) == 0 {
		return fi, errors.New("metrics: empty run")
	}
	if faultStartSec < 0 || faultEndSec < faultStartSec {
		return fi, errors.New("metrics: invalid fault window")
	}
	fi.LostWorkGB = res.LostWorkGB
	fi.Migrations = res.Migrations
	fi.OOMRetries = res.OOMRetries
	fi.FailKills = res.FailKills
	var usefulGB float64
	var inWindow int
	lastAffected := faultEndSec
	for _, a := range res.Apps {
		if a.DoneTime < 0 {
			return fi, ErrIncompleteRun
		}
		usefulGB += a.Job.InputGB
		if a.DoneTime >= faultStartSec && a.DoneTime <= faultEndSec {
			inWindow++
		}
		if a.SubmitTime <= faultEndSec && a.DoneTime > lastAffected {
			lastAffected = a.DoneTime
		}
	}
	if total := usefulGB + fi.LostWorkGB; total > 0 {
		fi.GoodputFrac = usefulGB / total
	}
	if span := faultEndSec - faultStartSec; span > 0 {
		fi.FaultWindowJobsPerHour = float64(inWindow) / span * 3600
	}
	fi.RecoverySec = lastAffected - faultEndSec
	return fi, nil
}
