package metrics

import (
	"math"
	"math/rand"
	"testing"

	"moespark/internal/cluster"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

// mkApp builds a completed app with the given timestamps.
func mkApp(t *testing.T, submit, start, done float64) *cluster.App {
	t.Helper()
	b, err := workload.Find("HB.Sort")
	if err != nil {
		t.Fatal(err)
	}
	return &cluster.App{
		Job:        workload.Job{Bench: b, InputGB: 10},
		SubmitTime: submit, ReadyTime: start, StartTime: start, DoneTime: done,
		State: cluster.StateDone,
	}
}

func TestQueueingBasics(t *testing.T) {
	res := &cluster.Result{
		Apps: []*cluster.App{
			mkApp(t, 0, 10, 100),    // wait 10, sojourn 100
			mkApp(t, 50, 80, 250),   // wait 30, sojourn 200
			mkApp(t, 100, 150, 400), // wait 50, sojourn 300
		},
		MakespanSec: 400,
	}
	q, err := Queueing(res, 100)
	if err != nil {
		t.Fatal(err)
	}
	if q.Apps != 3 {
		t.Errorf("apps %d", q.Apps)
	}
	if math.Abs(q.MeanWaitSec-30) > 1e-9 {
		t.Errorf("mean wait %v, want 30", q.MeanWaitSec)
	}
	if math.Abs(q.MaxWaitSec-50) > 1e-9 {
		t.Errorf("max wait %v, want 50", q.MaxWaitSec)
	}
	if math.Abs(q.MeanSojournSec-200) > 1e-9 {
		t.Errorf("mean sojourn %v, want 200", q.MeanSojournSec)
	}
	if math.Abs(q.P50SojournSec-200) > 1e-9 {
		t.Errorf("p50 %v, want 200", q.P50SojournSec)
	}
	if q.P95SojournSec <= q.P50SojournSec || q.P99SojournSec < q.P95SojournSec {
		t.Errorf("percentiles not ordered: p50=%v p95=%v p99=%v", q.P50SojournSec, q.P95SojournSec, q.P99SojournSec)
	}
	if math.Abs(q.MaxSojournSec-300) > 1e-9 {
		t.Errorf("max sojourn %v, want 300", q.MaxSojournSec)
	}
	// 3 jobs over 400s span.
	want := 3.0 / 400 * 3600
	if math.Abs(q.ThroughputJobsPerHour-want) > 1e-9 {
		t.Errorf("throughput %v, want %v", q.ThroughputJobsPerHour, want)
	}
	// Windows: done at 100, 250, 400 with 100s windows; the completion at
	// exactly lastDone lands in the final window.
	if len(q.Windows) != 4 {
		t.Fatalf("%d windows, want 4", len(q.Windows))
	}
	counts := []int{0, 1, 1, 1}
	for i, w := range q.Windows {
		if w.Completed != counts[i] {
			t.Errorf("window %d completed %d, want %d", i, w.Completed, counts[i])
		}
		wantRate := float64(counts[i]) / 100 * 3600
		if math.Abs(w.JobsPerHour-wantRate) > 1e-9 {
			t.Errorf("window %d rate %v, want %v", i, w.JobsPerHour, wantRate)
		}
	}
}

func TestQueueingPartialFinalWindow(t *testing.T) {
	// lastDone=400 with 300s windows: the tail window covers only 300-400,
	// and its rate must use the actual 100s span, not the nominal 300s.
	res := &cluster.Result{
		Apps: []*cluster.App{
			mkApp(t, 0, 10, 100),
			mkApp(t, 50, 80, 250),
			mkApp(t, 100, 150, 400),
		},
	}
	q, err := Queueing(res, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Windows) != 2 {
		t.Fatalf("%d windows, want 2", len(q.Windows))
	}
	last := q.Windows[1]
	if last.EndSec != 400 {
		t.Errorf("final window ends at %v, want clamped to 400", last.EndSec)
	}
	if last.Completed != 1 {
		t.Errorf("final window completed %d, want 1", last.Completed)
	}
	want := 1.0 / 100 * 3600
	if math.Abs(last.JobsPerHour-want) > 1e-9 {
		t.Errorf("final window rate %v, want %v (actual span, not nominal)", last.JobsPerHour, want)
	}
}

func TestQueueingRejectsUnfinished(t *testing.T) {
	a := mkApp(t, 0, 10, 100)
	a.DoneTime = -1
	if _, err := Queueing(&cluster.Result{Apps: []*cluster.App{a}}, 0); err == nil {
		t.Error("unfinished app must error")
	}
	if _, err := Queueing(&cluster.Result{}, 0); err == nil {
		t.Error("empty run must error")
	}
}

func TestQueueingNoWindowsWhenDisabled(t *testing.T) {
	res := &cluster.Result{Apps: []*cluster.App{mkApp(t, 0, 10, 100)}}
	q, err := Queueing(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Windows != nil {
		t.Errorf("windows %v, want none", q.Windows)
	}
}

// TestQueueingOnRealOpenRun exercises the full path: Poisson arrivals through
// the event engine into the queueing metrics.
func TestQueueingOnRealOpenRun(t *testing.T) {
	arrivals, err := workload.PoissonArrivals(12, 1.0/60, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.DefaultConfig())
	res, err := c.RunOpen(cluster.Submissions(arrivals), sched.NewPairwise())
	if err != nil {
		t.Fatal(err)
	}
	q, err := Queueing(res, 300)
	if err != nil {
		t.Fatal(err)
	}
	if q.Apps != 12 {
		t.Errorf("apps %d, want 12", q.Apps)
	}
	if q.MeanSojournSec <= 0 || q.ThroughputJobsPerHour <= 0 {
		t.Errorf("degenerate metrics: %+v", q)
	}
	total := 0
	for _, w := range q.Windows {
		total += w.Completed
	}
	if total != 12 {
		t.Errorf("windows cover %d completions, want 12", total)
	}
}
