package metrics

import (
	"math"
	"math/rand"
	"testing"

	"moespark/internal/cluster"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

// mkApp builds a completed app with the given timestamps.
func mkApp(t *testing.T, submit, start, done float64) *cluster.App {
	t.Helper()
	b, err := workload.Find("HB.Sort")
	if err != nil {
		t.Fatal(err)
	}
	return &cluster.App{
		Job:        workload.Job{Bench: b, InputGB: 10},
		SubmitTime: submit, ReadyTime: start, StartTime: start, DoneTime: done,
		State: cluster.StateDone,
	}
}

func TestQueueingBasics(t *testing.T) {
	res := &cluster.Result{
		Apps: []*cluster.App{
			mkApp(t, 0, 10, 100),    // wait 10, sojourn 100
			mkApp(t, 50, 80, 250),   // wait 30, sojourn 200
			mkApp(t, 100, 150, 400), // wait 50, sojourn 300
		},
		MakespanSec: 400,
	}
	q, err := Queueing(res, 100)
	if err != nil {
		t.Fatal(err)
	}
	if q.Apps != 3 {
		t.Errorf("apps %d", q.Apps)
	}
	if math.Abs(q.MeanWaitSec-30) > 1e-9 {
		t.Errorf("mean wait %v, want 30", q.MeanWaitSec)
	}
	if math.Abs(q.MaxWaitSec-50) > 1e-9 {
		t.Errorf("max wait %v, want 50", q.MaxWaitSec)
	}
	if math.Abs(q.MeanSojournSec-200) > 1e-9 {
		t.Errorf("mean sojourn %v, want 200", q.MeanSojournSec)
	}
	if math.Abs(q.P50SojournSec-200) > 1e-9 {
		t.Errorf("p50 %v, want 200", q.P50SojournSec)
	}
	if q.P95SojournSec <= q.P50SojournSec || q.P99SojournSec < q.P95SojournSec {
		t.Errorf("percentiles not ordered: p50=%v p95=%v p99=%v", q.P50SojournSec, q.P95SojournSec, q.P99SojournSec)
	}
	if math.Abs(q.MaxSojournSec-300) > 1e-9 {
		t.Errorf("max sojourn %v, want 300", q.MaxSojournSec)
	}
	// 3 jobs over 400s span.
	want := 3.0 / 400 * 3600
	if math.Abs(q.ThroughputJobsPerHour-want) > 1e-9 {
		t.Errorf("throughput %v, want %v", q.ThroughputJobsPerHour, want)
	}
	// Windows: done at 100, 250, 400 with 100s windows; each window covers
	// (start, end], so the boundary completions at 100 and 400 credit the
	// windows ending there.
	if len(q.Windows) != 4 {
		t.Fatalf("%d windows, want 4", len(q.Windows))
	}
	counts := []int{1, 0, 1, 1}
	for i, w := range q.Windows {
		if w.Completed != counts[i] {
			t.Errorf("window %d completed %d, want %d", i, w.Completed, counts[i])
		}
		wantRate := float64(counts[i]) / 100 * 3600
		if math.Abs(w.JobsPerHour-wantRate) > 1e-9 {
			t.Errorf("window %d rate %v, want %v", i, w.JobsPerHour, wantRate)
		}
	}
}

func TestQueueingPartialFinalWindow(t *testing.T) {
	// lastDone=400 with 300s windows: the tail window covers only 300-400,
	// and its rate must use the actual 100s span, not the nominal 300s.
	res := &cluster.Result{
		Apps: []*cluster.App{
			mkApp(t, 0, 10, 100),
			mkApp(t, 50, 80, 250),
			mkApp(t, 100, 150, 400),
		},
	}
	q, err := Queueing(res, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Windows) != 2 {
		t.Fatalf("%d windows, want 2", len(q.Windows))
	}
	last := q.Windows[1]
	if last.EndSec != 400 {
		t.Errorf("final window ends at %v, want clamped to 400", last.EndSec)
	}
	if last.Completed != 1 {
		t.Errorf("final window completed %d, want 1", last.Completed)
	}
	want := 1.0 / 100 * 3600
	if math.Abs(last.JobsPerHour-want) > 1e-9 {
		t.Errorf("final window rate %v, want %v (actual span, not nominal)", last.JobsPerHour, want)
	}
}

func TestQueueingRejectsUnfinished(t *testing.T) {
	a := mkApp(t, 0, 10, 100)
	a.DoneTime = -1
	if _, err := Queueing(&cluster.Result{Apps: []*cluster.App{a}}, 0); err == nil {
		t.Error("unfinished app must error")
	}
	if _, err := Queueing(&cluster.Result{}, 0); err == nil {
		t.Error("empty run must error")
	}
}

func TestQueueingNoWindowsWhenDisabled(t *testing.T) {
	res := &cluster.Result{Apps: []*cluster.App{mkApp(t, 0, 10, 100)}}
	q, err := Queueing(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Windows != nil {
		t.Errorf("windows %v, want none", q.Windows)
	}
}

// TestThroughputWindowBoundaries is the regression table for the two window
// bugs: completions landing exactly on a window boundary were credited to
// the *following* window even though the earlier window's EndSec claimed to
// cover them, and windows always opened at t=0 so late-starting streams
// diluted the first windows.
func TestThroughputWindowBoundaries(t *testing.T) {
	cases := []struct {
		name      string
		submits   []float64
		dones     []float64
		windowSec float64
		wantStart []float64 // StartSec per window
		wantEnd   []float64
		wantCount []int
	}{
		{
			name:    "boundary completion credits earlier window",
			submits: []float64{0, 0}, dones: []float64{100, 150},
			windowSec: 100,
			wantStart: []float64{0, 100}, wantEnd: []float64{100, 150},
			wantCount: []int{1, 1},
		},
		{
			name:    "late stream opens at first submission",
			submits: []float64{1000, 1100}, dones: []float64{1050, 1250},
			windowSec: 100,
			wantStart: []float64{1000, 1100, 1200}, wantEnd: []float64{1100, 1200, 1250},
			wantCount: []int{1, 0, 1},
		},
		{
			name:    "every completion on a boundary",
			submits: []float64{200, 200, 200}, dones: []float64{300, 400, 500},
			windowSec: 100,
			wantStart: []float64{200, 300, 400}, wantEnd: []float64{300, 400, 500},
			wantCount: []int{1, 1, 1},
		},
		{
			name:    "single window covers everything",
			submits: []float64{50}, dones: []float64{60},
			windowSec: 600,
			wantStart: []float64{50}, wantEnd: []float64{60},
			wantCount: []int{1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			apps := make([]*cluster.App, len(tc.submits))
			for i := range apps {
				apps[i] = mkApp(t, tc.submits[i], tc.submits[i], tc.dones[i])
			}
			q, err := Queueing(&cluster.Result{Apps: apps}, tc.windowSec)
			if err != nil {
				t.Fatal(err)
			}
			if len(q.Windows) != len(tc.wantCount) {
				t.Fatalf("%d windows, want %d: %+v", len(q.Windows), len(tc.wantCount), q.Windows)
			}
			total := 0
			for i, w := range q.Windows {
				if w.StartSec != tc.wantStart[i] || w.EndSec != tc.wantEnd[i] {
					t.Errorf("window %d spans [%v, %v], want [%v, %v]",
						i, w.StartSec, w.EndSec, tc.wantStart[i], tc.wantEnd[i])
				}
				if w.Completed != tc.wantCount[i] {
					t.Errorf("window %d completed %d, want %d", i, w.Completed, tc.wantCount[i])
				}
				total += w.Completed
			}
			if total != len(apps) {
				t.Errorf("windows cover %d completions, want %d", total, len(apps))
			}
		})
	}
}

// TestQueueingByClass groups a mixed run into per-class metrics.
func TestQueueingByClass(t *testing.T) {
	lat := workload.Class{Name: "latency", Weight: 4}
	batch := workload.Class{Name: "batch", Weight: 1, Preemptible: true}
	a1 := mkApp(t, 0, 10, 100) // latency: wait 10, sojourn 100
	a1.Class = lat
	a2 := mkApp(t, 0, 50, 300) // batch: wait 50, sojourn 300
	a2.Class = batch
	a2.PreemptKills = 2
	a3 := mkApp(t, 20, 40, 120) // latency: wait 20, sojourn 100
	a3.Class = lat

	qs, err := QueueingByClass(&cluster.Result{Apps: []*cluster.App{a2, a1, a3}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("%d classes, want 2", len(qs))
	}
	// Ordered by descending weight.
	if qs[0].Class != "latency" || qs[1].Class != "batch" {
		t.Fatalf("class order %q, %q; want latency first", qs[0].Class, qs[1].Class)
	}
	if qs[0].Apps != 2 || qs[1].Apps != 1 {
		t.Errorf("class sizes %d/%d, want 2/1", qs[0].Apps, qs[1].Apps)
	}
	if math.Abs(qs[0].MeanWaitSec-15) > 1e-9 {
		t.Errorf("latency mean wait %v, want 15", qs[0].MeanWaitSec)
	}
	if math.Abs(qs[0].MeanSojournSec-100) > 1e-9 {
		t.Errorf("latency mean sojourn %v, want 100", qs[0].MeanSojournSec)
	}
	if qs[1].PreemptKills != 2 || qs[0].PreemptKills != 0 {
		t.Errorf("preempt kills %d/%d, want 0 latency, 2 batch", qs[0].PreemptKills, qs[1].PreemptKills)
	}
	if !qs[1].Preemptible || qs[1].Weight != 1 {
		t.Errorf("batch class definition lost: %+v", qs[1])
	}
	if _, err := QueueingByClass(&cluster.Result{}, 0); err == nil {
		t.Error("empty run must error")
	}
}

// TestQueueingOnRealOpenRun exercises the full path: Poisson arrivals through
// the event engine into the queueing metrics.
func TestQueueingOnRealOpenRun(t *testing.T) {
	arrivals, err := workload.PoissonArrivals(12, 1.0/60, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.DefaultConfig())
	res, err := c.RunOpen(cluster.Submissions(arrivals), sched.NewPairwise())
	if err != nil {
		t.Fatal(err)
	}
	q, err := Queueing(res, 300)
	if err != nil {
		t.Fatal(err)
	}
	if q.Apps != 12 {
		t.Errorf("apps %d, want 12", q.Apps)
	}
	if q.MeanSojournSec <= 0 || q.ThroughputJobsPerHour <= 0 {
		t.Errorf("degenerate metrics: %+v", q)
	}
	total := 0
	for _, w := range q.Windows {
		total += w.Completed
	}
	if total != 12 {
		t.Errorf("windows cover %d completions, want 12", total)
	}
}
