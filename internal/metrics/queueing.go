package metrics

import (
	"errors"
	"fmt"
	"math"

	"moespark/internal/cluster"
	"moespark/internal/mathx"
)

// QueueMetrics summarises an open-system run from the queueing-theory side:
// how long applications waited for execution, how long they stayed in the
// system, the tail of the latency distribution, and the completion
// throughput over time. These complement the paper's closed-batch STP/ANTT.
type QueueMetrics struct {
	// Apps is the number of completed applications measured.
	Apps int
	// MeanWaitSec averages each app's time from submission to the start of
	// useful execution (first executor spawn, or completion during
	// profiling).
	MeanWaitSec float64
	// MaxWaitSec is the worst per-app wait.
	MaxWaitSec float64
	// MeanSojournSec averages submission-to-completion time.
	MeanSojournSec float64
	// P50SojournSec, P95SojournSec and P99SojournSec are latency percentiles
	// of the sojourn time.
	P50SojournSec float64
	P95SojournSec float64
	P99SojournSec float64
	// MaxSojournSec is the worst per-app sojourn.
	MaxSojournSec float64
	// ThroughputJobsPerHour is completions divided by the span from the
	// first submission to the last completion.
	ThroughputJobsPerHour float64
	// Windows samples completion throughput in fixed windows when a window
	// length was given.
	Windows []ThroughputWindow
}

// ThroughputWindow is one windowed-throughput sample.
type ThroughputWindow struct {
	// StartSec and EndSec bound the window in simulation time.
	StartSec, EndSec float64
	// Completed counts applications finishing inside the window.
	Completed int
	// JobsPerHour is the window's completion rate.
	JobsPerHour float64
}

// Queueing computes the open-system metrics for a finished run. windowSec,
// when positive, additionally samples completion throughput in windows of
// that length from t=0 to the makespan.
func Queueing(res *cluster.Result, windowSec float64) (QueueMetrics, error) {
	var q QueueMetrics
	if res == nil || len(res.Apps) == 0 {
		return q, errors.New("metrics: empty run")
	}
	waits := make([]float64, 0, len(res.Apps))
	sojourns := make([]float64, 0, len(res.Apps))
	firstSubmit := res.Apps[0].SubmitTime
	lastDone := 0.0
	for _, a := range res.Apps {
		sj := a.SojournSec()
		w := a.WaitSec()
		if sj <= 0 || w < 0 {
			return q, fmt.Errorf("%w: %s", ErrIncompleteRun, a.Job)
		}
		waits = append(waits, w)
		sojourns = append(sojourns, sj)
		if a.SubmitTime < firstSubmit {
			firstSubmit = a.SubmitTime
		}
		if a.DoneTime > lastDone {
			lastDone = a.DoneTime
		}
	}
	q.Apps = len(res.Apps)
	q.MeanWaitSec = mathx.Mean(waits)
	_, q.MaxWaitSec = mathx.MinMax(waits)
	q.MeanSojournSec = mathx.Mean(sojourns)
	q.P50SojournSec = mathx.Percentile(sojourns, 50)
	q.P95SojournSec = mathx.Percentile(sojourns, 95)
	q.P99SojournSec = mathx.Percentile(sojourns, 99)
	_, q.MaxSojournSec = mathx.MinMax(sojourns)
	if span := lastDone - firstSubmit; span > 0 {
		q.ThroughputJobsPerHour = float64(q.Apps) / span * 3600
	}
	if windowSec > 0 {
		q.Windows = throughputWindows(res, windowSec, lastDone)
	}
	return q, nil
}

// throughputWindows buckets completions into fixed windows over [0,
// lastDone]. The final window is clamped to lastDone and its rate uses the
// actual covered span, so a partial tail window is not under-reported.
func throughputWindows(res *cluster.Result, windowSec, lastDone float64) []ThroughputWindow {
	n := int(math.Ceil(lastDone / windowSec))
	if n < 1 {
		n = 1
	}
	wins := make([]ThroughputWindow, n)
	for i := range wins {
		wins[i].StartSec = float64(i) * windowSec
		wins[i].EndSec = float64(i+1) * windowSec
	}
	if wins[n-1].EndSec > lastDone {
		wins[n-1].EndSec = lastDone
	}
	for _, a := range res.Apps {
		i := int(a.DoneTime / windowSec)
		if i >= n {
			i = n - 1
		}
		wins[i].Completed++
	}
	for i := range wins {
		if span := wins[i].EndSec - wins[i].StartSec; span > 0 {
			wins[i].JobsPerHour = float64(wins[i].Completed) / span * 3600
		}
	}
	return wins
}
