package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"moespark/internal/cluster"
	"moespark/internal/mathx"
)

// QueueMetrics summarises an open-system run from the queueing-theory side:
// how long applications waited for execution, how long they stayed in the
// system, the tail of the latency distribution, and the completion
// throughput over time. These complement the paper's closed-batch STP/ANTT.
type QueueMetrics struct {
	// Apps is the number of completed applications measured.
	Apps int
	// MeanWaitSec averages each app's time from submission to the start of
	// useful execution (first executor spawn, or completion during
	// profiling).
	MeanWaitSec float64
	// MaxWaitSec is the worst per-app wait.
	MaxWaitSec float64
	// MeanSojournSec averages submission-to-completion time.
	MeanSojournSec float64
	// P50SojournSec, P95SojournSec and P99SojournSec are latency percentiles
	// of the sojourn time.
	P50SojournSec float64
	P95SojournSec float64
	P99SojournSec float64
	// MaxSojournSec is the worst per-app sojourn.
	MaxSojournSec float64
	// ThroughputJobsPerHour is completions divided by the span from the
	// first submission to the last completion.
	ThroughputJobsPerHour float64
	// Windows samples completion throughput in fixed windows when a window
	// length was given.
	Windows []ThroughputWindow
}

// ThroughputWindow is one windowed-throughput sample.
type ThroughputWindow struct {
	// StartSec and EndSec bound the window in simulation time.
	StartSec, EndSec float64
	// Completed counts applications finishing inside the window.
	Completed int
	// JobsPerHour is the window's completion rate.
	JobsPerHour float64
}

// Queueing computes the open-system metrics for a finished run. windowSec,
// when positive, additionally samples completion throughput in windows of
// that length from the first submission to the last completion.
func Queueing(res *cluster.Result, windowSec float64) (QueueMetrics, error) {
	var q QueueMetrics
	if res == nil || len(res.Apps) == 0 {
		return q, errors.New("metrics: empty run")
	}
	waits := make([]float64, 0, len(res.Apps))
	sojourns := make([]float64, 0, len(res.Apps))
	firstSubmit := res.Apps[0].SubmitTime
	lastDone := 0.0
	for _, a := range res.Apps {
		sj := a.SojournSec()
		w := a.WaitSec()
		if sj <= 0 || w < 0 {
			return q, fmt.Errorf("%w: %s", ErrIncompleteRun, a.Job)
		}
		waits = append(waits, w)
		sojourns = append(sojourns, sj)
		if a.SubmitTime < firstSubmit {
			firstSubmit = a.SubmitTime
		}
		if a.DoneTime > lastDone {
			lastDone = a.DoneTime
		}
	}
	q.Apps = len(res.Apps)
	q.MeanWaitSec = mathx.Mean(waits)
	_, q.MaxWaitSec = mathx.MinMax(waits)
	q.MeanSojournSec = mathx.Mean(sojourns)
	q.P50SojournSec = mathx.Percentile(sojourns, 50)
	q.P95SojournSec = mathx.Percentile(sojourns, 95)
	q.P99SojournSec = mathx.Percentile(sojourns, 99)
	_, q.MaxSojournSec = mathx.MinMax(sojourns)
	if span := lastDone - firstSubmit; span > 0 {
		q.ThroughputJobsPerHour = float64(q.Apps) / span * 3600
	}
	if windowSec > 0 {
		q.Windows = throughputWindows(res, windowSec, firstSubmit, lastDone)
	}
	return q, nil
}

// throughputWindows buckets completions into fixed windows over
// [firstSubmit, lastDone]. Windows open at the first submission — not t=0 —
// so a late-starting arrival stream does not dilute the leading windows
// with empty time. Each window covers the half-open interval
// (StartSec, EndSec]: a completion landing exactly on a boundary is
// credited to the window whose EndSec claims to cover it. The final window
// is clamped to lastDone and its rate uses the actual covered span, so a
// partial tail window is not under-reported.
func throughputWindows(res *cluster.Result, windowSec, firstSubmit, lastDone float64) []ThroughputWindow {
	n := int(math.Ceil((lastDone - firstSubmit) / windowSec))
	if n < 1 {
		n = 1
	}
	wins := make([]ThroughputWindow, n)
	for i := range wins {
		wins[i].StartSec = firstSubmit + float64(i)*windowSec
		wins[i].EndSec = firstSubmit + float64(i+1)*windowSec
	}
	if wins[n-1].EndSec > lastDone {
		wins[n-1].EndSec = lastDone
	}
	for _, a := range res.Apps {
		i := int(math.Ceil((a.DoneTime-firstSubmit)/windowSec)) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		wins[i].Completed++
	}
	for i := range wins {
		if span := wins[i].EndSec - wins[i].StartSec; span > 0 {
			wins[i].JobsPerHour = float64(wins[i].Completed) / span * 3600
		}
	}
	return wins
}

// ClassQueueMetrics is the queueing summary of one tenant class.
type ClassQueueMetrics struct {
	// Class is the class name ("" groups untagged applications).
	Class string
	// Weight and Preemptible echo the class definition.
	Weight      float64
	Preemptible bool
	// PreemptKills counts executors this class lost to preemption.
	PreemptKills int
	QueueMetrics
}

// QueueingByClass computes per-tenant-class queueing metrics: the run's
// applications are grouped by class name and each group is measured like an
// independent stream (its windows open at the class's own first
// submission). Classes are ordered by descending weight, then name, so
// reports are deterministic.
func QueueingByClass(res *cluster.Result, windowSec float64) ([]ClassQueueMetrics, error) {
	if res == nil || len(res.Apps) == 0 {
		return nil, errors.New("metrics: empty run")
	}
	groups := map[string][]*cluster.App{}
	order := []string{}
	for _, a := range res.Apps {
		name := a.Class.Name
		if _, ok := groups[name]; !ok {
			order = append(order, name)
		}
		groups[name] = append(groups[name], a)
	}
	sort.SliceStable(order, func(i, j int) bool {
		wi, wj := groups[order[i]][0].Class.Weight, groups[order[j]][0].Class.Weight
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	out := make([]ClassQueueMetrics, 0, len(order))
	for _, name := range order {
		apps := groups[name]
		q, err := Queueing(&cluster.Result{Apps: apps}, windowSec)
		if err != nil {
			return nil, fmt.Errorf("metrics: class %q: %w", name, err)
		}
		cq := ClassQueueMetrics{
			Class:        name,
			Weight:       apps[0].Class.Weight,
			Preemptible:  apps[0].Class.Preemptible,
			QueueMetrics: q,
		}
		for _, a := range apps {
			cq.PreemptKills += a.PreemptKills
		}
		out = append(out, cq)
	}
	return out, nil
}
