package metrics

import (
	"errors"
	"math/rand"
	"testing"

	"moespark/internal/cluster"
	"moespark/internal/moe"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

func TestReplayConvergesOnLowVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	calls := 0
	out, err := Replay{}.Run(func(int) (RunMetrics, error) {
		calls++
		return RunMetrics{STP: 10 + rng.Float64()*0.01, ANTT: 2}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Error("low-variance series should converge")
	}
	if out.Runs != calls || out.Runs > 5 {
		t.Errorf("runs = %d (calls %d), expected quick convergence", out.Runs, calls)
	}
	if out.MeanSTP < 10 || out.MeanSTP > 10.02 {
		t.Errorf("mean STP = %v", out.MeanSTP)
	}
}

func TestReplayHitsCapOnHighVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	out, err := Replay{MaxRuns: 8}.Run(func(int) (RunMetrics, error) {
		return RunMetrics{STP: 1 + rng.Float64()*100, ANTT: 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Converged {
		t.Error("wild series should not converge in 8 runs")
	}
	if out.Runs != 8 {
		t.Errorf("runs = %d, want the cap", out.Runs)
	}
}

func TestReplayPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	if _, err := (Replay{}).Run(func(int) (RunMetrics, error) {
		return RunMetrics{}, boom
	}); !errors.Is(err, boom) {
		t.Errorf("want boom, got %v", err)
	}
}

func TestReplayEndToEndWithScheduler(t *testing.T) {
	// The paper's protocol against the real simulator: replicas differ only
	// in profiling noise seeds.
	model, err := moe.TrainDefault(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := workload.ScenarioByLabel("L3")
	if err != nil {
		t.Fatal(err)
	}
	jobs := workload.RandomMix(sc, rand.New(rand.NewSource(4)))
	out, err := Replay{MaxRuns: 10}.Run(func(rep int) (RunMetrics, error) {
		c := cluster.New(cluster.DefaultConfig())
		res, err := c.Run(jobs, sched.NewMoE(model, rand.New(rand.NewSource(int64(100+rep)))))
		if err != nil {
			return RunMetrics{}, err
		}
		return FromResult(c, res)
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.MeanSTP <= 1 {
		t.Errorf("mean STP %v, want co-location win", out.MeanSTP)
	}
	if !out.Converged {
		t.Logf("did not converge in 10 runs (half-width %v) — acceptable", out.HalfWidthSTP)
	}
}
