package metrics

import (
	"errors"
	"math"

	"moespark/internal/cluster"
)

// Imbalance summarises how unevenly CPU load spreads across the fleet,
// computed from a utilization trace. Placement quality on heterogeneous
// fleets shows up here: a scheduler that dogpiles the fast nodes or strands
// the little ones has a high coefficient of variation even when mean
// utilization looks healthy.
type Imbalance struct {
	// Samples is the number of trace samples measured.
	Samples int
	// MeanUtilization is the time-averaged CPU utilization across all alive
	// nodes and samples.
	MeanUtilization float64
	// MeanCV is the time-averaged coefficient of variation (stddev/mean) of
	// per-node utilization; 0 is a perfectly balanced fleet. Samples with
	// zero mean utilization (an idle fleet) contribute 0.
	MeanCV float64
	// PeakCV is the worst single-sample coefficient of variation.
	PeakCV float64
	// NodeMeanMin and NodeMeanMax bound the per-node time-averaged
	// utilizations: the spread between the least- and most-loaded machine
	// over the run.
	NodeMeanMin float64
	NodeMeanMax float64
}

// ErrNoTrace is returned when imbalance is requested without trace samples.
var ErrNoTrace = errors.New("metrics: no utilization trace (set Config.TraceInterval)")

// UtilizationImbalance computes fleet-imbalance metrics from a trace. The
// trace may cover a varying node set (joins, drains, failures): per-sample
// statistics use whichever nodes were alive at that sample, and per-node
// means average each node over the samples it appears in.
func UtilizationImbalance(tr *cluster.Trace) (Imbalance, error) {
	var im Imbalance
	if tr == nil || len(tr.CPU) == 0 {
		return im, ErrNoTrace
	}
	var cvSum, utilSum float64
	var utilN int
	nodeSum := map[int]float64{}
	nodeN := map[int]int{}
	for i, row := range tr.CPU {
		if len(row) == 0 {
			continue
		}
		var mean float64
		for k, u := range row {
			mean += u
			utilSum += u
			utilN++
			id := tr.NodeIDs[i][k]
			nodeSum[id] += u
			nodeN[id]++
		}
		mean /= float64(len(row))
		cv := 0.0
		if mean > 0 {
			var varSum float64
			for _, u := range row {
				d := u - mean
				varSum += d * d
			}
			cv = math.Sqrt(varSum/float64(len(row))) / mean
		}
		cvSum += cv
		if cv > im.PeakCV {
			im.PeakCV = cv
		}
		im.Samples++
	}
	if im.Samples == 0 {
		return im, ErrNoTrace
	}
	im.MeanCV = cvSum / float64(im.Samples)
	if utilN > 0 {
		im.MeanUtilization = utilSum / float64(utilN)
	}
	im.NodeMeanMin = math.Inf(1)
	//moevet:allow maporder min/max reduction commutes exactly; no other state is touched
	for id, s := range nodeSum {
		m := s / float64(nodeN[id])
		if m < im.NodeMeanMin {
			im.NodeMeanMin = m
		}
		if m > im.NodeMeanMax {
			im.NodeMeanMax = m
		}
	}
	if math.IsInf(im.NodeMeanMin, 1) {
		im.NodeMeanMin = 0
	}
	return im, nil
}
