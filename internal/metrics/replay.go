package metrics

import (
	"errors"
	"fmt"

	"moespark/internal/mathx"
)

// Replay implements the paper's measurement protocol (Section 5.2): a test
// case is replayed until the difference between the upper and lower bounds
// of the 95 % confidence interval of the mean STP is below a target fraction
// of the mean, or a replay cap is hit.
type Replay struct {
	// TargetFraction is the CI-width target relative to the mean (the paper
	// uses 5 %). Defaults to 0.05.
	TargetFraction float64
	// MinRuns is the minimum number of replays before the CI is consulted
	// (default 3).
	MinRuns int
	// MaxRuns caps the replays (default 50).
	MaxRuns int
}

func (r Replay) withDefaults() Replay {
	if r.TargetFraction <= 0 {
		r.TargetFraction = 0.05
	}
	if r.MinRuns < 2 {
		r.MinRuns = 3
	}
	if r.MaxRuns < r.MinRuns {
		r.MaxRuns = 50
	}
	return r
}

// ReplayOutcome reports the converged measurement.
type ReplayOutcome struct {
	// MeanSTP and MeanANTT are the converged means.
	MeanSTP  float64
	MeanANTT float64
	// HalfWidthSTP is the final 95 % CI half-width of the STP mean.
	HalfWidthSTP float64
	// Runs is how many replays were needed.
	Runs int
	// Converged reports whether the CI target was met within MaxRuns.
	Converged bool
}

// ErrNoRuns is returned when the run function never succeeds.
var ErrNoRuns = errors.New("metrics: no successful replays")

// Run replays the case (the closure executes one scheduling run, typically
// with a different seed per invocation) until the CI target is met.
func (r Replay) Run(runOnce func(replica int) (RunMetrics, error)) (ReplayOutcome, error) {
	r = r.withDefaults()
	var stps, antts []float64
	for i := 0; i < r.MaxRuns; i++ {
		m, err := runOnce(i)
		if err != nil {
			return ReplayOutcome{}, fmt.Errorf("metrics: replay %d: %w", i, err)
		}
		stps = append(stps, m.STP)
		antts = append(antts, m.ANTT)
		if len(stps) < r.MinRuns {
			continue
		}
		mean, half := mathx.MeanConfidence95(stps)
		// The paper's criterion: upper-lower bound difference (2*half)
		// below TargetFraction of the mean.
		if mean > 0 && 2*half <= r.TargetFraction*mean {
			return ReplayOutcome{
				MeanSTP:      mean,
				MeanANTT:     mathx.Mean(antts),
				HalfWidthSTP: half,
				Runs:         len(stps),
				Converged:    true,
			}, nil
		}
	}
	if len(stps) == 0 {
		return ReplayOutcome{}, ErrNoRuns
	}
	mean, half := mathx.MeanConfidence95(stps)
	return ReplayOutcome{
		MeanSTP:      mean,
		MeanANTT:     mathx.Mean(antts),
		HalfWidthSTP: half,
		Runs:         len(stps),
		Converged:    false,
	}, nil
}
