package metrics

import (
	"errors"
	"math"
	"testing"

	"moespark/internal/cluster"
	"moespark/internal/workload"
)

func jobsFor(t *testing.T, names []string, gbs []float64) []workload.Job {
	t.Helper()
	jobs := make([]workload.Job, len(names))
	for i, n := range names {
		b, err := workload.Find(n)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = workload.Job{Bench: b, InputGB: gbs[i]}
	}
	return jobs
}

func TestSerialBaselineTwoEqualJobs(t *testing.T) {
	c := cluster.New(cluster.DefaultConfig())
	jobs := jobsFor(t, []string{"HB.Sort", "HB.Sort"}, []float64{30, 30})
	b := SerialBaseline(c, jobs)
	// Equal jobs: STP = 1 + 1/2, ANTT = (1 + 2)/2.
	if math.Abs(b.STP-1.5) > 1e-9 {
		t.Errorf("serial STP = %v, want 1.5", b.STP)
	}
	if math.Abs(b.ANTT-1.5) > 1e-9 {
		t.Errorf("serial ANTT = %v, want 1.5", b.ANTT)
	}
	cis := c.IsolatedTime(jobs[0])
	if math.Abs(b.MakespanSec-2*cis) > 1e-9 {
		t.Errorf("serial makespan = %v, want %v", b.MakespanSec, 2*cis)
	}
}

func TestSerialBaselineEmpty(t *testing.T) {
	c := cluster.New(cluster.DefaultConfig())
	b := SerialBaseline(c, nil)
	if b.STP != 0 || b.ANTT != 0 || b.MakespanSec != 0 {
		t.Errorf("empty baseline = %+v", b)
	}
}

func TestFromResultRejectsUnfinished(t *testing.T) {
	c := cluster.New(cluster.DefaultConfig())
	jobs := jobsFor(t, []string{"HB.Sort"}, []float64{10})
	app := &cluster.App{Job: jobs[0], DoneTime: -1}
	res := &cluster.Result{Apps: []*cluster.App{app}}
	if _, err := FromResult(c, res); !errors.Is(err, ErrIncompleteRun) {
		t.Errorf("want ErrIncompleteRun, got %v", err)
	}
	if _, err := FromResult(c, &cluster.Result{}); err == nil {
		t.Error("empty result must error")
	}
}

func TestFromResultComputesEquations(t *testing.T) {
	c := cluster.New(cluster.DefaultConfig())
	jobs := jobsFor(t, []string{"HB.Sort", "HB.Kmeans"}, []float64{30, 30})
	cis0 := c.IsolatedTime(jobs[0])
	cis1 := c.IsolatedTime(jobs[1])
	apps := []*cluster.App{
		{Job: jobs[0], SubmitTime: 0, DoneTime: 2 * cis0},
		{Job: jobs[1], SubmitTime: 0, DoneTime: 4 * cis1},
	}
	res := &cluster.Result{Apps: apps, MakespanSec: 4 * cis1, OOMKills: 3}
	m, err := FromResult(c, res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.STP-(0.5+0.25)) > 1e-9 {
		t.Errorf("STP = %v, want 0.75", m.STP)
	}
	if math.Abs(m.ANTT-3) > 1e-9 {
		t.Errorf("ANTT = %v, want 3", m.ANTT)
	}
	if m.OOMKills != 3 {
		t.Errorf("OOMKills = %d", m.OOMKills)
	}
}

func TestCompareProducesReductions(t *testing.T) {
	run := RunMetrics{STP: 8, ANTT: 2, MakespanSec: 100}
	base := Baseline{STP: 3, ANTT: 8, MakespanSec: 400}
	cmp := Compare(run, base)
	if cmp.NormalizedSTP != 8 {
		t.Errorf("NormalizedSTP = %v, want the Equation-1 value 8", cmp.NormalizedSTP)
	}
	if math.Abs(cmp.ANTTReductionPct-75) > 1e-9 {
		t.Errorf("ANTT reduction = %v, want 75", cmp.ANTTReductionPct)
	}
	if math.Abs(cmp.Speedup-4) > 1e-9 {
		t.Errorf("speedup = %v, want 4", cmp.Speedup)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	cmp := Compare(RunMetrics{STP: 5}, Baseline{})
	if cmp.ANTTReductionPct != 0 || cmp.Speedup != 0 {
		t.Errorf("zero baseline should leave reductions zero: %+v", cmp)
	}
}

func TestAggregateComparisons(t *testing.T) {
	cs := []Comparison{
		{NormalizedSTP: 4, ANTTReductionPct: 40},
		{NormalizedSTP: 9, ANTTReductionPct: 60},
	}
	agg := AggregateComparisons(cs)
	if math.Abs(agg.NormalizedSTP-6) > 1e-9 { // geomean(4,9)=6
		t.Errorf("geomean STP = %v, want 6", agg.NormalizedSTP)
	}
	if agg.ANTTReductionPct != 50 {
		t.Errorf("mean ANTT reduction = %v, want 50", agg.ANTTReductionPct)
	}
	if agg.STPMin != 4 || agg.STPMax != 9 || agg.ANTTMin != 40 || agg.ANTTMax != 60 {
		t.Errorf("min/max wrong: %+v", agg)
	}
	if agg.Runs != 2 {
		t.Errorf("runs = %d", agg.Runs)
	}
	empty := AggregateComparisons(nil)
	if empty.Runs != 0 {
		t.Error("empty aggregate should be zero")
	}
}
