package metrics

import (
	"errors"
	"math"
	"testing"

	"moespark/internal/cluster"
)

func traceOf(times []float64, ids [][]int, cpu [][]float64) *cluster.Trace {
	return &cluster.Trace{Interval: 10, Times: times, NodeIDs: ids, CPU: cpu, MemGB: cpu}
}

func TestImbalanceBalancedFleet(t *testing.T) {
	tr := traceOf(
		[]float64{0, 10},
		[][]int{{0, 1}, {0, 1}},
		[][]float64{{0.5, 0.5}, {0.8, 0.8}},
	)
	im, err := UtilizationImbalance(tr)
	if err != nil {
		t.Fatal(err)
	}
	if im.MeanCV != 0 || im.PeakCV != 0 {
		t.Errorf("balanced fleet CV = %v/%v, want 0/0", im.MeanCV, im.PeakCV)
	}
	if got, want := im.MeanUtilization, 0.65; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean utilization = %v, want %v", got, want)
	}
	if im.NodeMeanMin != im.NodeMeanMax {
		t.Errorf("per-node means differ on a balanced fleet: %v vs %v", im.NodeMeanMin, im.NodeMeanMax)
	}
}

func TestImbalanceSkewedFleet(t *testing.T) {
	// One node at full load, one idle: CV = stddev/mean = 0.5/0.5 = 1.
	tr := traceOf(
		[]float64{0},
		[][]int{{0, 1}},
		[][]float64{{1, 0}},
	)
	im, err := UtilizationImbalance(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(im.MeanCV-1) > 1e-12 || math.Abs(im.PeakCV-1) > 1e-12 {
		t.Errorf("skewed fleet CV = %v/%v, want 1/1", im.MeanCV, im.PeakCV)
	}
	if im.NodeMeanMin != 0 || im.NodeMeanMax != 1 {
		t.Errorf("per-node spread = [%v, %v], want [0, 1]", im.NodeMeanMin, im.NodeMeanMax)
	}
}

func TestImbalanceVaryingNodeSet(t *testing.T) {
	// Node 2 joins at the second sample; node 0 fails before the third.
	tr := traceOf(
		[]float64{0, 10, 20},
		[][]int{{0, 1}, {0, 1, 2}, {1, 2}},
		[][]float64{{0.4, 0.6}, {0.3, 0.6, 0.9}, {0.5, 0.7}},
	)
	im, err := UtilizationImbalance(tr)
	if err != nil {
		t.Fatal(err)
	}
	if im.Samples != 3 {
		t.Fatalf("samples = %d, want 3", im.Samples)
	}
	// Node 0 mean = (0.4+0.3)/2 = 0.35, node 1 = 0.6 exactly, node 2 = 0.8.
	if math.Abs(im.NodeMeanMin-0.35) > 1e-12 {
		t.Errorf("min node mean = %v, want 0.35", im.NodeMeanMin)
	}
	if math.Abs(im.NodeMeanMax-0.8) > 1e-12 {
		t.Errorf("max node mean = %v, want 0.8", im.NodeMeanMax)
	}
}

func TestImbalanceNoTrace(t *testing.T) {
	if _, err := UtilizationImbalance(nil); !errors.Is(err, ErrNoTrace) {
		t.Errorf("nil trace: err = %v, want ErrNoTrace", err)
	}
	if _, err := UtilizationImbalance(&cluster.Trace{}); !errors.Is(err, ErrNoTrace) {
		t.Errorf("empty trace: err = %v, want ErrNoTrace", err)
	}
}

// TestImbalanceIdleSamplesContributeZero pins the zero-mean convention.
func TestImbalanceIdleSamplesContributeZero(t *testing.T) {
	tr := traceOf(
		[]float64{0, 10},
		[][]int{{0, 1}, {0, 1}},
		[][]float64{{0, 0}, {1, 0}},
	)
	im, err := UtilizationImbalance(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(im.MeanCV-0.5) > 1e-12 {
		t.Errorf("mean CV = %v, want 0.5 (idle sample contributes 0, skewed contributes 1)", im.MeanCV)
	}
}
