// Package metrics computes the paper's evaluation metrics (Section 5.3):
// system throughput (STP, Equation 1) and average normalized turnaround time
// (ANTT, Equation 2), plus the normalizations against the serial
// isolated-execution baseline used throughout Section 6.
package metrics

import (
	"errors"
	"fmt"

	"moespark/internal/cluster"
	"moespark/internal/mathx"
	"moespark/internal/workload"
)

// RunMetrics summarises one scheduled run of a job mix.
type RunMetrics struct {
	// STP is Equation 1: sum over tasks of C_is / C_cl, where C_is is the
	// task's isolated execution time and C_cl its turnaround under the
	// scheme.
	STP float64
	// ANTT is Equation 2: mean over tasks of C_cl / C_is.
	ANTT float64
	// MakespanSec is the wall-clock time to finish the whole mix (the
	// "turnaround time" of Figure 8).
	MakespanSec float64
	// OOMKills counts executor OOM kills during the run.
	OOMKills int
}

// Baseline summarises the serial isolated-execution baseline for a mix.
type Baseline struct {
	// STP / ANTT computed with serial turnarounds (task i waits for tasks
	// 0..i-1).
	STP  float64
	ANTT float64
	// MakespanSec is the serial makespan: the sum of isolated times.
	MakespanSec float64
}

// Comparison is a run set against the serial baseline, the form the paper
// reports. Equation 1's STP is already normalized to isolated execution
// (each task's progress is divided by its isolated time), so NormalizedSTP
// is the Equation-1 value itself; ANTT reduction and makespan speedup are
// relative to the serial isolated baseline.
type Comparison struct {
	RunMetrics
	// NormalizedSTP is the Equation-1 STP (aggregated progress relative to
	// isolated execution), the quantity of Figure 6a.
	NormalizedSTP float64
	// ANTTReductionPct is the percentage reduction of ANTT vs the serial
	// baseline (Figure 6b).
	ANTTReductionPct float64
	// Speedup is baseline makespan over scheme makespan.
	Speedup float64
}

// ErrIncompleteRun is returned when an app never finished.
var ErrIncompleteRun = errors.New("metrics: run has unfinished applications")

// FromResult computes STP and ANTT for a finished run, with isolated times
// supplied by the cluster's closed form.
func FromResult(c *cluster.Cluster, res *cluster.Result) (RunMetrics, error) {
	var m RunMetrics
	if len(res.Apps) == 0 {
		return m, errors.New("metrics: empty run")
	}
	for _, a := range res.Apps {
		turn := a.Turnaround()
		if turn <= 0 {
			return m, fmt.Errorf("%w: %s", ErrIncompleteRun, a.Job)
		}
		cis := c.IsolatedTime(a.Job)
		m.STP += cis / turn
		m.ANTT += turn / cis
	}
	m.ANTT /= float64(len(res.Apps))
	m.MakespanSec = res.MakespanSec
	m.OOMKills = res.OOMKills
	return m, nil
}

// SerialBaseline computes the paper's baseline: applications scheduled one
// by one, each using all the memory of its nodes. Task i's turnaround is the
// sum of isolated times of tasks 0..i.
func SerialBaseline(c *cluster.Cluster, jobs []workload.Job) Baseline {
	var b Baseline
	var elapsed float64
	for _, j := range jobs {
		cis := c.IsolatedTime(j)
		elapsed += cis
		b.STP += cis / elapsed
		b.ANTT += elapsed / cis
	}
	if len(jobs) > 0 {
		b.ANTT /= float64(len(jobs))
	}
	b.MakespanSec = elapsed
	return b
}

// Compare normalizes a run against the serial baseline.
func Compare(run RunMetrics, base Baseline) Comparison {
	cmp := Comparison{RunMetrics: run}
	cmp.NormalizedSTP = run.STP
	if base.ANTT > 0 {
		cmp.ANTTReductionPct = (base.ANTT - run.ANTT) / base.ANTT * 100
	}
	if run.MakespanSec > 0 {
		cmp.Speedup = base.MakespanSec / run.MakespanSec
	}
	return cmp
}

// Aggregate combines comparisons across mixes the way the paper reports
// scenarios: geometric-mean STP, arithmetic-mean ANTT reduction, and the
// min/max range for the error bars of Figure 6.
type Aggregate struct {
	NormalizedSTP    float64
	STPMin, STPMax   float64
	ANTTReductionPct float64
	ANTTMin, ANTTMax float64
	Runs             int
}

// Aggregate summarises a set of comparisons.
func AggregateComparisons(cs []Comparison) Aggregate {
	if len(cs) == 0 {
		return Aggregate{}
	}
	stp := make([]float64, len(cs))
	antt := make([]float64, len(cs))
	for i, c := range cs {
		stp[i] = c.NormalizedSTP
		antt[i] = c.ANTTReductionPct
	}
	lo, hi := mathx.MinMax(stp)
	alo, ahi := mathx.MinMax(antt)
	return Aggregate{
		NormalizedSTP:    mathx.GeoMean(stp),
		STPMin:           lo,
		STPMax:           hi,
		ANTTReductionPct: mathx.Mean(antt),
		ANTTMin:          alo,
		ANTTMax:          ahi,
		Runs:             len(cs),
	}
}
