package parallel

import (
	"runtime"
	"testing"
)

// TestPoolPartitionedSums drives a pool through many generations and checks
// that every partition ran exactly once per Run and wrote only its own slot.
func TestPoolPartitionedSums(t *testing.T) {
	for _, parts := range []int{1, 2, 3, 8} {
		p := NewPool(parts)
		slots := make([]int, parts)
		const rounds = 500
		for r := 0; r < rounds; r++ {
			p.Run(func(part int) {
				slots[part]++
			})
		}
		p.Close()
		for i, got := range slots {
			if got != rounds {
				t.Fatalf("parts=%d: partition %d ran %d times, want %d", parts, i, got, rounds)
			}
		}
	}
}

// TestPoolBarrier checks the join: after Run returns, every partition's output
// from THIS generation is visible to the caller.
func TestPoolBarrier(t *testing.T) {
	const parts = 4
	p := NewPool(parts)
	defer p.Close()
	out := make([]int, parts)
	for gen := 1; gen <= 200; gen++ {
		g := gen
		p.Run(func(part int) {
			out[part] = g*10 + part
		})
		for i := 0; i < parts; i++ {
			if out[i] != gen*10+i {
				t.Fatalf("gen %d: slot %d holds %d, want %d", gen, i, out[i], gen*10+i)
			}
		}
	}
}

// TestPoolCloseStopsWorkers checks Close reaps its goroutines (pools are
// created per engine run; leaking workers across thousands of test runs would
// add up) and that double Close is a no-op.
func TestPoolCloseStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	pools := make([]*Pool, 50)
	for i := range pools {
		pools[i] = NewPool(4)
	}
	for _, p := range pools {
		p.Run(func(part int) {})
		p.Close()
		p.Close()
	}
	// Workers have acknowledged exit before Close returns; NumGoroutine can
	// still be momentarily high while exited goroutines are reaped.
	for i := 0; i < 100 && runtime.NumGoroutine() > before+5; i++ {
		runtime.Gosched()
	}
	if g := runtime.NumGoroutine(); g > before+5 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}
