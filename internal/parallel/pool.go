package parallel

import (
	"runtime"
	"sync/atomic"
)

// Pool is a persistent pool of workers for running one partitioned task many
// times with very low per-run overhead. ForEachIndexed pays a goroutine spawn
// per worker per call, which is fine for coarse tasks (experiment mixes, LOOCV
// folds) but far too heavy for a task dispatched once per engine event; Pool
// keeps its workers alive between runs and hands them work through a single
// atomic generation counter, so a dispatch-plus-barrier costs well under a
// microsecond when runs are back to back.
//
// Determinism contract (the same one ForEachIndexed documents): fn must write
// its outputs only to partition-addressed state (slot part of a slice sized
// for the pool, state owned exclusively by that partition) and must not read
// another partition's outputs. Under that contract the results are
// bit-identical to calling fn(0), fn(1), ... serially, regardless of how the
// scheduler interleaves the workers.
//
// A Pool serves one caller: Run must not be invoked concurrently with itself
// or with Close.
type Pool struct {
	parts  int
	closed bool

	// gen is the release signal: Run publishes the task in fn, then increments
	// gen; a worker observing the increment (atomic load, acquire) runs the
	// task. done counts workers finished with the current generation — the
	// join barrier Run spins on — and doubles as the exit acknowledgement for
	// Close. A nil fn under a fresh generation tells the workers to exit.
	gen  atomic.Uint64
	done atomic.Int64
	fn   func(part int)
}

// NewPool starts parts-1 workers serving partitions 1..parts-1; partition 0
// always runs on the caller inside Run. parts <= 1 starts no goroutines and
// Run degenerates to a plain call.
func NewPool(parts int) *Pool {
	p := &Pool{parts: parts}
	for w := 1; w < parts; w++ {
		go p.worker(w)
	}
	return p
}

// worker loops waiting for generations. The wait is a bounded spin — runs
// arrive one engine event apart, so the next generation is usually
// nanoseconds away — followed by a yield, so an idle pool does not starve the
// caller's serial phase of a CPU.
func (p *Pool) worker(part int) {
	var seen uint64
	for {
		g := p.gen.Load()
		if g == seen {
			for i := 0; i < 64 && p.gen.Load() == seen; i++ {
			}
			if p.gen.Load() == seen {
				runtime.Gosched()
			}
			continue
		}
		seen = g
		fn := p.fn
		if fn == nil {
			p.done.Add(1)
			return
		}
		fn(part)
		p.done.Add(1)
	}
}

// Run executes fn(part) for every partition in [0, parts): partitions
// 1..parts-1 on the pool's workers, partition 0 on the caller. It returns only
// when every partition has finished (a full barrier), so the caller may read
// all partition outputs immediately after.
func (p *Pool) Run(fn func(part int)) {
	if p.parts <= 1 {
		fn(0)
		return
	}
	// The previous Run (or NewPool) left every worker parked at the generation
	// check, so resetting the barrier before the release cannot race a
	// straggler's done.Add.
	p.fn = fn
	p.done.Store(0)
	p.gen.Add(1)
	fn(0)
	for spins := 0; p.done.Load() != int64(p.parts-1); spins++ {
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// Close releases the workers and waits for them to exit, so callers that
// create many short-lived pools do not accumulate goroutines. The pool must
// not be used afterwards. Closing a parts<=1 or already-closed pool is a
// no-op.
func (p *Pool) Close() {
	if p.parts <= 1 || p.closed {
		return
	}
	p.closed = true
	p.fn = nil
	p.done.Store(0)
	p.gen.Add(1)
	for spins := 0; p.done.Load() != int64(p.parts-1); spins++ {
		if spins > 64 {
			runtime.Gosched()
		}
	}
}
