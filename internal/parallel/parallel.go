// Package parallel provides the deterministic worker pool shared by the
// concurrent experiment runner and the LOOCV evaluator.
package parallel

import (
	"sync"
	"sync/atomic"
)

// ForEachIndexed runs fn(i) for every i in [0, n) on a pool of workers.
//
// Determinism contract: fn must write its outputs only to index-addressed
// slots (results[i] = ...) and must derive any randomness from seeds keyed on
// i, never from shared rng state. Under that contract the outputs are
// bit-identical to the serial loop regardless of worker count or scheduling.
//
// On error the lowest-index error is returned (what the serial loop would
// have reported first); in-flight work is left to finish but no new work
// starts. workers <= 1 runs serially.
func ForEachIndexed(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		errIdx   = n
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
