package cluster

// Trace records periodic per-node utilization samples, the data behind the
// paper's Figure 7 heatmaps.
type Trace struct {
	// Interval between samples in seconds.
	Interval float64
	// Times holds the sample timestamps.
	Times []float64
	// CPU[i][n] is node n's CPU utilization (0..1) at sample i.
	CPU [][]float64
	// MemGB[i][n] is node n's actual memory use at sample i.
	MemGB [][]float64

	nodes      int
	nextSample float64
}

func newTrace(nodes int, interval float64) *Trace {
	return &Trace{Interval: interval, nodes: nodes}
}

func (t *Trace) nextSampleTime(now float64) float64 {
	if t.nextSample < now {
		t.nextSample = now
	}
	return t.nextSample
}

func (t *Trace) maybeSample(now float64, nodes []*Node) {
	const slack = 1e-6
	for now+slack >= t.nextSample {
		cpu := make([]float64, len(nodes))
		mem := make([]float64, len(nodes))
		for i, n := range nodes {
			cpu[i] = n.Utilization()
			mem[i] = n.ActualGB()
		}
		t.Times = append(t.Times, t.nextSample)
		t.CPU = append(t.CPU, cpu)
		t.MemGB = append(t.MemGB, mem)
		t.nextSample += t.Interval
	}
}

// MeanUtilization returns the time-averaged CPU utilization across nodes and
// samples.
func (t *Trace) MeanUtilization() float64 {
	if len(t.CPU) == 0 {
		return 0
	}
	var sum float64
	var n int
	for _, row := range t.CPU {
		for _, u := range row {
			sum += u
			n++
		}
	}
	return sum / float64(n)
}

// ResourceMonitor is the paper's per-node daemon view: it reports memory and
// CPU readings averaged over a reporting window (the paper uses 5 minutes).
// The scheduler consults it rather than poking nodes directly. With a zero
// window it reports instantaneous values.
type ResourceMonitor struct {
	c      *Cluster
	window float64

	// exponential-moving-average state per node
	emaCPU []float64
	emaMem []float64
	last   float64
	seeded bool
}

// NewResourceMonitor attaches a monitor with the given averaging window (in
// seconds) to the cluster.
func NewResourceMonitor(c *Cluster, windowSec float64) *ResourceMonitor {
	return &ResourceMonitor{
		c:      c,
		window: windowSec,
		emaCPU: make([]float64, len(c.nodes)),
		emaMem: make([]float64, len(c.nodes)),
	}
}

// Observe folds the current node state into the windowed averages; the
// engine-driving code calls it on scheduling events.
func (m *ResourceMonitor) Observe() {
	now := m.c.Now()
	alpha := 1.0
	if m.seeded && m.window > 0 {
		dt := now - m.last
		if dt < 0 {
			dt = 0
		}
		alpha = dt / m.window
		if alpha > 1 {
			alpha = 1
		}
	}
	for i, n := range m.c.nodes {
		cpu := n.CPUDemand()
		mem := n.ActualGB()
		if !m.seeded {
			m.emaCPU[i] = cpu
			m.emaMem[i] = mem
		} else {
			m.emaCPU[i] += alpha * (cpu - m.emaCPU[i])
			m.emaMem[i] += alpha * (mem - m.emaMem[i])
		}
	}
	m.seeded = true
	m.last = now
}

// CPULoad returns the windowed CPU load of a node.
func (m *ResourceMonitor) CPULoad(nodeID int) float64 { return m.emaCPU[nodeID] }

// MemoryGB returns the windowed actual memory use of a node.
func (m *ResourceMonitor) MemoryGB(nodeID int) float64 { return m.emaMem[nodeID] }
