package cluster

// Trace records periodic per-node utilization samples, the data behind the
// paper's Figure 7 heatmaps. The node set may vary over a run (joins, drains,
// failures), so rows are ragged: row i covers exactly the nodes alive at
// sample i, identified by NodeIDs[i].
type Trace struct {
	// Interval between samples in seconds.
	Interval float64
	// Times holds the sample timestamps.
	Times []float64
	// NodeIDs[i][k] is the node ID of column k in sample i. Failed nodes
	// drop out of subsequent samples; joined nodes appear from their join.
	NodeIDs [][]int
	// CPU[i][k] is the CPU utilization (0..1) of node NodeIDs[i][k] at
	// sample i.
	CPU [][]float64
	// MemGB[i][k] is the actual memory use of node NodeIDs[i][k] at sample i.
	MemGB [][]float64

	nextSample float64
}

func newTrace(interval float64) *Trace {
	return &Trace{Interval: interval}
}

func (t *Trace) nextSampleTime(now float64) float64 {
	if t.nextSample < now {
		t.nextSample = now
	}
	return t.nextSample
}

func (t *Trace) maybeSample(now float64, nodes []*Node) {
	const slack = 1e-6
	for now+slack >= t.nextSample {
		alive := 0
		for _, n := range nodes {
			if n.state != NodeFailed && n.state != NodeRemoved {
				alive++
			}
		}
		ids := make([]int, 0, alive)
		cpu := make([]float64, 0, alive)
		mem := make([]float64, 0, alive)
		for _, n := range nodes {
			if n.state == NodeFailed || n.state == NodeRemoved {
				continue
			}
			ids = append(ids, n.ID)
			cpu = append(cpu, n.Utilization())
			mem = append(mem, n.ActualGB())
		}
		t.Times = append(t.Times, t.nextSample)
		t.NodeIDs = append(t.NodeIDs, ids)
		t.CPU = append(t.CPU, cpu)
		t.MemGB = append(t.MemGB, mem)
		t.nextSample += t.Interval
	}
}

// MeanUtilization returns the time-averaged CPU utilization across nodes and
// samples.
func (t *Trace) MeanUtilization() float64 {
	if len(t.CPU) == 0 {
		return 0
	}
	var sum float64
	var n int
	for _, row := range t.CPU {
		for _, u := range row {
			sum += u
			n++
		}
	}
	return sum / float64(n)
}

// ResourceMonitor is the paper's per-node daemon view: it reports memory and
// CPU readings averaged over a reporting window (the paper uses 5 minutes).
// The scheduler consults it rather than poking nodes directly. With a zero
// window it reports instantaneous values.
type ResourceMonitor struct {
	c      *Cluster
	window float64

	// exponential-moving-average state, keyed by node ID so joins and
	// failures keep readings attached to the right machine.
	emaCPU map[int]float64
	emaMem map[int]float64
	last   float64
	seeded bool
}

// NewResourceMonitor attaches a monitor with the given averaging window (in
// seconds) to the cluster.
func NewResourceMonitor(c *Cluster, windowSec float64) *ResourceMonitor {
	return &ResourceMonitor{
		c:      c,
		window: windowSec,
		emaCPU: make(map[int]float64, len(c.nodes)),
		emaMem: make(map[int]float64, len(c.nodes)),
	}
}

// Observe folds the current node state into the windowed averages; the
// engine-driving code calls it on scheduling events. Nodes joining
// mid-window seed from their first reading; failed nodes keep their last
// reading.
func (m *ResourceMonitor) Observe() {
	now := m.c.Now()
	alpha := 1.0
	if m.seeded && m.window > 0 {
		dt := now - m.last
		if dt < 0 {
			dt = 0
		}
		alpha = dt / m.window
		if alpha > 1 {
			alpha = 1
		}
	}
	for _, n := range m.c.nodes {
		if n.state == NodeFailed || n.state == NodeRemoved {
			continue
		}
		cpu := n.CPUDemand()
		mem := n.ActualGB()
		if _, ok := m.emaCPU[n.ID]; !ok {
			m.emaCPU[n.ID] = cpu
			m.emaMem[n.ID] = mem
			continue
		}
		m.emaCPU[n.ID] += alpha * (cpu - m.emaCPU[n.ID])
		m.emaMem[n.ID] += alpha * (mem - m.emaMem[n.ID])
	}
	m.seeded = true
	m.last = now
}

// CPULoad returns the windowed CPU load of a node.
func (m *ResourceMonitor) CPULoad(nodeID int) float64 { return m.emaCPU[nodeID] }

// MemoryGB returns the windowed actual memory use of a node.
func (m *ResourceMonitor) MemoryGB(nodeID int) float64 { return m.emaMem[nodeID] }
