package cluster

import (
	"fmt"
	"math"

	"moespark/internal/workload"
)

// permanentBlock is the blacklist expiry of an entry that never lapses (the
// legacy no-retry policy, or a spent retry budget).
var permanentBlock = math.Inf(1)

// AppState tracks an application through its lifecycle.
type AppState int

// Application lifecycle states.
const (
	// StateQueued: submitted, waiting for a profiling slot (or directly
	// ready if the policy needs no profiling).
	StateQueued AppState = iota + 1
	// StateProfiling: running feature-extraction/calibration passes on the
	// coordinating node.
	StateProfiling
	// StateReady: profiled and waiting for executors.
	StateReady
	// StateRunning: at least one executor is processing data.
	StateRunning
	// StateDone: all input processed.
	StateDone
)

// String implements fmt.Stringer.
func (s AppState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateProfiling:
		return "profiling"
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("AppState(%d)", int(s))
	}
}

// App is one submitted application.
type App struct {
	// ID is the submission index (FCFS order).
	ID int
	// Job is the benchmark + input size.
	Job workload.Job
	// Class is the submitting tenant's priority class; the zero class is the
	// untagged single-tenant default.
	Class workload.Class

	// SubmitTime, ReadyTime, StartTime, DoneTime are simulation timestamps
	// (seconds); Ready/Start/Done are -1 until reached.
	SubmitTime float64
	ReadyTime  float64
	StartTime  float64
	DoneTime   float64

	// RemainingGB is unprocessed input.
	RemainingGB float64
	// ProfileGB is the profiling volume the policy requested; it is
	// processed on the coordinator.
	ProfileGB float64
	// ContributeGB is the part of the profiling volume whose output counts
	// towards completion.
	ContributeGB float64
	// profileLeft tracks profiling progress.
	profileLeft float64

	// MaxExecutors is the fleet-size cap from dynamic allocation.
	MaxExecutors int
	// Executors currently running for this app.
	Executors []*Executor
	// OOMKills counts executors lost to out-of-memory on an oversubscribed
	// node.
	OOMKills int
	// PreemptKills counts executors this app lost to higher-priority
	// preemption; the lost work is charged back exactly like an OOM kill.
	PreemptKills int
	// Migrations counts executors this app had checkpointed and moved off a
	// draining node (Config.MigrateOnDrain).
	Migrations int
	// OOMRetries counts OOM blacklist entries granted a cool-off expiry
	// instead of permanence under Config.OOMRetryBudget.
	OOMRetries int
	// LostWorkGB is the total reprocessing work charged back to this app by
	// OOM kills, node failures and preemptions (the actual RemainingGB
	// increase after clamping, not the nominal fraction).
	LostWorkGB float64

	// State is the current lifecycle state.
	State AppState

	// PredictedGB is the policy's predicted executor footprint for this
	// app's fair-share allocation, recorded at Prepare time by predicting
	// estimators (0 = no prediction installed). The engine never reads it;
	// it is a reporting field (moeschedsim's JSON/verbose output) — the
	// observation hooks compare the per-executor Executor.PredictedGB,
	// which tracks the allocation actually granted.
	PredictedGB float64

	// blockedNodes maps node IDs where an executor of this app was
	// OOM-killed to the absolute time the blacklist entry expires: +Inf
	// under the legacy permanent policy (the paper re-runs OOM victims
	// elsewhere, in isolation), a finite cool-off under
	// Config.OOMRetryBudget. Entries are dropped when their node leaves the
	// fleet (Cluster.unblockNode).
	blockedNodes map[int]float64
	// startupUntil is the time processing can begin (launch latency).
	startupUntil float64

	// settledAt is the last instant RemainingGB / profileLeft were settled
	// (integrated to). Rates are piecewise-constant between settle points, so
	// progress fields are exact at settledAt and integrated forward in one
	// multiply when the next settle point arrives (see eventindex.go).
	settledAt float64
	// deadline is the absolute completion time registered on the completion
	// heap (+Inf when the app has none); a heap entry is live only while its
	// time still equals this field.
	deadline float64
	// touched marks the app as pending a deadline refresh this iteration
	// (it is on Cluster.touchedApps).
	touched bool

	// Estimate is scratch space for the scheduling policy (e.g. the
	// calibrated memory function); the engine never touches it.
	Estimate any
}

// Turnaround returns DoneTime - SubmitTime, the quantity ANTT averages.
func (a *App) Turnaround() float64 {
	if a.DoneTime < 0 {
		return -1
	}
	return a.DoneTime - a.SubmitTime
}

// SojournSec is the open-system name for the turnaround: total time the
// application spent in the system from submission to completion.
func (a *App) SojournSec() float64 { return a.Turnaround() }

// WaitSec returns the time between submission and the start of useful
// execution: the first executor spawn, or completion when the app finished
// entirely during profiling. It is -1 until execution has started.
func (a *App) WaitSec() float64 {
	var w float64
	switch {
	case a.StartTime >= 0:
		w = a.StartTime - a.SubmitTime
	case a.DoneTime >= 0:
		w = a.DoneTime - a.SubmitTime
	default:
		return -1
	}
	if w < 0 {
		// Arrival admission tolerates ~1e-9s of clock slack (an app can be
		// admitted epsilon-early); never report a negative wait for it.
		return 0
	}
	return w
}

// BlockedOn reports whether the node is blacklisted for this app at the
// given instant (typically Cluster.Now()). Permanent entries carry a +Inf
// expiry, so the legacy no-retry policy blocks at every instant.
func (a *App) BlockedOn(n *Node, now float64) bool { return a.blockedNodes[n.ID] > now }

// blockNode blacklists a node for this app until the given absolute time
// (+Inf for permanently).
func (a *App) blockNode(n *Node, until float64) {
	if a.blockedNodes == nil {
		a.blockedNodes = map[int]float64{}
	}
	a.blockedNodes[n.ID] = until
}

// ExecutorOn reports whether the app already has an executor on the node.
func (a *App) ExecutorOn(n *Node) bool {
	for _, e := range a.Executors {
		if e.Node == n {
			return true
		}
	}
	return false
}

// Executor is one executor process placed on a node.
type Executor struct {
	App  *App
	Node *Node
	// ReservedGB is the admission-time memory reservation (heap size the
	// scheduler granted).
	ReservedGB float64
	// ItemsGB is the data allocation the scheduler granted (the "number of
	// RDD data items" in paper terms).
	ItemsGB float64
	// NeedGB is the true memory demand for the allocation, from the
	// workload ground truth; it may exceed ReservedGB when the policy
	// under-predicted.
	NeedGB float64
	// ActualGB is the resident memory: the JVM caps the heap at the
	// reservation, so residency is min(NeedGB, ReservedGB*(1+offheap));
	// the un-resident remainder spills, which the heap penalty models.
	ActualGB float64
	// Demand is the executor's CPU demand as a fraction of the node.
	Demand float64
	// FairShareGB is the per-executor data share at spawn time, used for
	// the cache-efficiency penalty.
	FairShareGB float64
	// SpawnTime records when the executor started.
	SpawnTime float64
	// PredictedGB is the footprint the placing policy predicted for
	// ItemsGB (0 = the policy had no prediction). The engine never reads
	// it; the dispatcher stamps it at spawn/grow time and the observation
	// hook reports it against NeedGB once the outcome is known.
	PredictedGB float64

	// rate is the current processing rate (GB/s), recomputed between
	// events.
	rate float64
	// gateUntil is a per-executor processing gate: the rate is zero until
	// both it and the app-level startupUntil have passed. Zero for ordinary
	// spawns (the app gate alone governs); migration sets it to the
	// checkpoint-restore-plus-restart completion time on the new node.
	gateUntil float64
	// processedGB is the work this executor has processed since it spawned,
	// integrated at the app's settle points. It is the state a graceful
	// migration must checkpoint and move.
	processedGB float64
}

// Rate returns the executor's current processing rate in GB/s.
func (e *Executor) Rate() float64 { return e.rate }

// ProcessedGB returns the work this executor has processed so far, exact as
// of the owning app's last settle point.
func (e *Executor) ProcessedGB() float64 { return e.processedGB }
