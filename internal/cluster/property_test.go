package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"moespark/internal/workload"
)

// greedyScheduler is a simple est-free policy for property tests: first-fit
// with bounded reservations.
type greedyScheduler struct{}

func (greedyScheduler) Name() string                       { return "test-greedy" }
func (greedyScheduler) Prepare(*Cluster, *App) ProfilePlan { return ProfilePlan{} }
func (greedyScheduler) Schedule(c *Cluster) {
	for _, app := range c.WaitingApps() {
		for _, n := range c.Nodes() {
			if len(app.Executors) >= app.MaxExecutors {
				break
			}
			if app.ExecutorOn(n) || app.BlockedOn(n) {
				continue
			}
			free := n.FreeGB()
			if free < 5 {
				continue
			}
			share := app.RemainingGB / float64(app.MaxExecutors-len(app.Executors))
			reserve := free / 2
			if reserve > 30 {
				reserve = 30
			}
			_, _ = c.Spawn(app, n, reserve, share)
		}
	}
}

// randomJobs draws a random mix of 1..10 jobs.
func randomJobs(r *rand.Rand) []workload.Job {
	cat := workload.Catalog()
	n := 1 + r.Intn(10)
	jobs := make([]workload.Job, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, workload.Job{
			Bench:   cat[r.Intn(len(cat))],
			InputGB: []float64{0.3, 10, 30, 120}[r.Intn(4)],
		})
	}
	return jobs
}

// Property: every run completes all applications, timestamps are ordered
// (submit <= ready <= start <= done where defined), and turnarounds are at
// least the isolated time divided by available parallelism headroom.
func TestRunInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		jobs := randomJobs(r)
		c := New(DefaultConfig())
		res, err := c.Run(jobs, greedyScheduler{})
		if err != nil {
			return false
		}
		for _, a := range res.Apps {
			if a.State != StateDone {
				return false
			}
			if a.DoneTime < 0 || a.DoneTime > res.MakespanSec+1e-6 {
				return false
			}
			if a.ReadyTime >= 0 && a.ReadyTime < a.SubmitTime {
				return false
			}
			if a.StartTime >= 0 && a.ReadyTime >= 0 && a.StartTime+1e-9 < a.ReadyTime {
				return false
			}
			if a.DoneTime < a.StartTime {
				return false
			}
			// Executors are all released at completion.
			if len(a.Executors) != 0 {
				return false
			}
			// No app can beat the startup latency.
			if a.Turnaround() < c.Config().StartupSec-1e-6 {
				return false
			}
		}
		// Nodes end empty.
		for _, n := range c.Nodes() {
			if len(n.Executors) != 0 || n.ReservedGB() != 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: reservations never exceed the advertised allocatable memory on
// any node at any scheduling point.
type reservationProbe struct {
	inner  Scheduler
	failed bool
}

func (p *reservationProbe) Name() string { return p.inner.Name() }
func (p *reservationProbe) Prepare(c *Cluster, a *App) ProfilePlan {
	return p.inner.Prepare(c, a)
}
func (p *reservationProbe) Schedule(c *Cluster) {
	p.inner.Schedule(c)
	limit := c.Config().AllocatableGB() + 1e-6
	for _, n := range c.Nodes() {
		if n.ReservedGB() > limit {
			p.failed = true
		}
	}
}

func TestReservationsBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		jobs := randomJobs(r)
		c := New(DefaultConfig())
		probe := &reservationProbe{inner: greedyScheduler{}}
		if _, err := c.Run(jobs, probe); err != nil {
			return false
		}
		return !probe.failed
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(72))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: with fleet sizes pinned (one executor per app), doubling every
// input never makes the mix finish sooner. (With dynamic fleets the property
// is false: a larger input earns a larger fleet and can finish earlier.)
func TestMakespanMonotoneInWorkProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		jobs := randomJobs(r)
		run := func(scale float64) float64 {
			scaled := make([]workload.Job, len(jobs))
			for i, j := range jobs {
				scaled[i] = workload.Job{Bench: j.Bench, InputGB: j.InputGB * scale}
			}
			cfg := DefaultConfig()
			cfg.ExecutorSpreadGB = 1e9 // one executor per app at any size
			c := New(cfg)
			res, err := c.Run(scaled, greedyScheduler{})
			if err != nil {
				return -1
			}
			return res.MakespanSec
		}
		base := run(1)
		double := run(2)
		if base < 0 || double < 0 {
			return false
		}
		return double+1e-6 >= base
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(73))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGrowValidation(t *testing.T) {
	c := New(DefaultConfig())
	b, err := workload.Find("SP.Pca")
	if err != nil {
		t.Fatal(err)
	}
	app := &App{
		ID: 0, Job: workload.Job{Bench: b, InputGB: 100},
		RemainingGB: 100, MaxExecutors: 2, State: StateReady,
		ReadyTime: 0, StartTime: -1, DoneTime: -1,
	}
	n := c.Nodes()[0]
	e, err := c.Spawn(app, n, 10, 15)
	if err != nil {
		t.Fatal(err)
	}
	// Shrinking is rejected.
	if err := c.Grow(e, 12, 10); err == nil {
		t.Error("Grow must not shrink the allocation")
	}
	// Growing beyond free memory is rejected.
	if err := c.Grow(e, c.Config().AllocatableGB()+20, 80); err == nil {
		t.Error("Grow must respect free memory")
	}
	// Valid growth updates reservation, items, and footprints.
	oldNeed := e.NeedGB
	if err := c.Grow(e, 25, 40); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if e.ReservedGB != 25 || e.ItemsGB != 40 {
		t.Errorf("grow result: reserve=%v items=%v", e.ReservedGB, e.ItemsGB)
	}
	if e.NeedGB <= oldNeed {
		t.Errorf("need did not grow: %v -> %v", oldNeed, e.NeedGB)
	}
	if e.ActualGB > e.ReservedGB*(1+c.Config().OffHeapFrac)+1e-9 {
		t.Errorf("resident %v exceeds heap cap", e.ActualGB)
	}
	// Items clamp at remaining work.
	if err := c.Grow(e, 30, 500); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if e.ItemsGB > app.RemainingGB {
		t.Errorf("items %v exceed remaining %v", e.ItemsGB, app.RemainingGB)
	}
}
