package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"moespark/internal/workload"
)

// greedyScheduler is a simple est-free policy for property tests: first-fit
// with bounded reservations.
type greedyScheduler struct{}

func (greedyScheduler) Name() string                       { return "test-greedy" }
func (greedyScheduler) Prepare(*Cluster, *App) ProfilePlan { return ProfilePlan{} }
func (greedyScheduler) Schedule(c *Cluster) {
	for _, app := range c.WaitingApps() {
		for _, n := range c.Nodes() {
			if len(app.Executors) >= app.MaxExecutors {
				break
			}
			if app.ExecutorOn(n) || app.BlockedOn(n, c.Now()) {
				continue
			}
			free := n.FreeGB()
			if free < 5 {
				continue
			}
			share := app.RemainingGB / float64(app.MaxExecutors-len(app.Executors))
			reserve := free / 2
			if reserve > 30 {
				reserve = 30
			}
			_, _ = c.Spawn(app, n, reserve, share)
		}
	}
}

// randomJobs draws a random mix of 1..10 jobs.
func randomJobs(r *rand.Rand) []workload.Job {
	cat := workload.Catalog()
	n := 1 + r.Intn(10)
	jobs := make([]workload.Job, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, workload.Job{
			Bench:   cat[r.Intn(len(cat))],
			InputGB: []float64{0.3, 10, 30, 120}[r.Intn(4)],
		})
	}
	return jobs
}

// Property: every run completes all applications, timestamps are ordered
// (submit <= ready <= start <= done where defined), and turnarounds are at
// least the isolated time divided by available parallelism headroom.
func TestRunInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		jobs := randomJobs(r)
		c := New(DefaultConfig())
		res, err := c.Run(jobs, greedyScheduler{})
		if err != nil {
			return false
		}
		for _, a := range res.Apps {
			if a.State != StateDone {
				return false
			}
			if a.DoneTime < 0 || a.DoneTime > res.MakespanSec+1e-6 {
				return false
			}
			if a.ReadyTime >= 0 && a.ReadyTime < a.SubmitTime {
				return false
			}
			if a.StartTime >= 0 && a.ReadyTime >= 0 && a.StartTime+1e-9 < a.ReadyTime {
				return false
			}
			if a.DoneTime < a.StartTime {
				return false
			}
			// Executors are all released at completion.
			if len(a.Executors) != 0 {
				return false
			}
			// No app can beat the startup latency.
			if a.Turnaround() < c.Config().StartupSec-1e-6 {
				return false
			}
		}
		// Nodes end empty.
		for _, n := range c.Nodes() {
			if len(n.Executors) != 0 || n.ReservedGB() != 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: reservations never exceed the advertised allocatable memory on
// any node at any scheduling point.
type reservationProbe struct {
	inner  Scheduler
	failed bool
}

func (p *reservationProbe) Name() string { return p.inner.Name() }
func (p *reservationProbe) Prepare(c *Cluster, a *App) ProfilePlan {
	return p.inner.Prepare(c, a)
}
func (p *reservationProbe) Schedule(c *Cluster) {
	p.inner.Schedule(c)
	limit := c.Config().AllocatableGB() + 1e-6
	for _, n := range c.Nodes() {
		if n.ReservedGB() > limit {
			p.failed = true
		}
	}
}

func TestReservationsBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		jobs := randomJobs(r)
		c := New(DefaultConfig())
		probe := &reservationProbe{inner: greedyScheduler{}}
		if _, err := c.Run(jobs, probe); err != nil {
			return false
		}
		return !probe.failed
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(72))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: with fleet sizes pinned (one executor per app), doubling every
// input never makes the mix finish sooner. (With dynamic fleets the property
// is false: a larger input earns a larger fleet and can finish earlier.)
func TestMakespanMonotoneInWorkProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		jobs := randomJobs(r)
		run := func(scale float64) float64 {
			scaled := make([]workload.Job, len(jobs))
			for i, j := range jobs {
				scaled[i] = workload.Job{Bench: j.Bench, InputGB: j.InputGB * scale}
			}
			cfg := DefaultConfig()
			cfg.ExecutorSpreadGB = 1e9 // one executor per app at any size
			c := New(cfg)
			res, err := c.Run(scaled, greedyScheduler{})
			if err != nil {
				return -1
			}
			return res.MakespanSec
		}
		base := run(1)
		double := run(2)
		if base < 0 || double < 0 {
			return false
		}
		return double+1e-6 >= base
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(73))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// diffScheduler drives the differential engine test through every hot path:
// profiling plans for larger jobs, greedy bounded-reservation placement,
// deliberate under-reservation (heap pressure), a mid-run oversized foreign
// "hog" that overflows a busy node past RAM+swap (admission charged the
// executors before the hog existed, so the OOM-kill and blacklist paths
// fire) and — for classed runs — preemption on behalf of starved
// high-weight arrivals.
type diffScheduler struct {
	preempt  bool
	hog      bool
	hogAdded bool
	waitBuf  []*App
}

func (s *diffScheduler) Name() string { return "test-differential" }
func (s *diffScheduler) Prepare(c *Cluster, a *App) ProfilePlan {
	if a.Job.InputGB >= 10 {
		return ContributingProfile(a.Job.InputGB * 0.04)
	}
	return ProfilePlan{}
}
func (s *diffScheduler) Schedule(c *Cluster) {
	if s.hog && !s.hogAdded && c.Now() > 50 {
		for _, app := range c.ActiveApps() {
			if len(app.Executors) > 0 {
				n := app.Executors[0].Node
				over := n.Spec.UsableGB() + n.Spec.SwapGB - n.ActualGB() + 5
				if _, err := c.AddForeign(n.ID, "hog", 0.3, over, 200); err == nil {
					s.hogAdded = true
				}
				break
			}
		}
	}
	s.waitBuf = c.AppendWaitingApps(s.waitBuf[:0])
	if len(s.waitBuf) == 0 {
		return
	}
	// One fleet scan bounds the best placement anywhere: whenever even the
	// freest available node is under the 5 GB spawn minimum, every node walk
	// below would place nothing, so the walks are skipped wholesale. The
	// bound only decays under the loop (spawns never free memory), so it
	// stays conservative without rescanning per app; preemption kills free
	// memory and force a rescan. This fixes the unconditioned
	// O(waiting×nodes) walk flagged in the settle-engine PR: on storm seeds
	// a backed-up waiting set times a packed fleet dominated the suite's
	// runtime while deciding nothing. Placement decisions are identical
	// either way.
	maxFree := maxFreeGB(c)
	for _, app := range s.waitBuf {
		if s.preempt && app.Class.Weight >= 2 && len(app.Executors) == 0 {
			if c.PreemptFor(app, 25, app.Job.Bench.CPULoad, 0) > 0 {
				maxFree = maxFreeGB(c)
			}
		}
		if maxFree < 5 {
			continue
		}
		for _, n := range c.Nodes() {
			if len(app.Executors) >= app.MaxExecutors {
				break
			}
			if !n.Available() || app.ExecutorOn(n) || (app.BlockedOn(n, c.Now()) && len(n.Executors) > 0) {
				continue
			}
			free := n.FreeGB()
			if free < 5 {
				continue
			}
			share := app.RemainingGB / float64(app.MaxExecutors-len(app.Executors))
			reserve := free / 2
			if reserve > 30 {
				reserve = 30
			}
			if app.ID%5 == 3 {
				// Under-reserve every fifth app: heap-pressure rates, and —
				// together with oversized foreign working sets — OOM kills.
				reserve = free / 6
			}
			_, _ = c.Spawn(app, n, reserve, share)
		}
	}
}

// maxFreeGB returns the largest free reservation on any available node — the
// upper bound diffScheduler's walk-skipping relies on.
func maxFreeGB(c *Cluster) float64 {
	best := 0.0
	for _, n := range c.Nodes() {
		if !n.Available() {
			continue
		}
		if f := n.FreeGB(); f > best {
			best = f
		}
	}
	return best
}

// shadowIntegrator replays the pre-settle engine's per-event integration of
// remaining work alongside the settle-based engine. The engine brings an
// entity's progress forward in ONE multiply when its rate actually changes
// (remaining -= rate * (now - settledAt)); the shadow subtracts rate*dt on
// EVERY event, exactly like the PR4 engine did. Both follow the same
// piecewise-constant rate trajectory, so mathematically they agree; in floats
// they differ by reassociation only — computing r*(dt1+...+dtk) as one product
// versus k fused subtract-multiplies. Each step contributes O(ulp) error:
// rounding of r*dt_i (~ulp(remaining) ≈ 1.4e-14 at 100 GB) plus the engine's
// now - settledAt cancellation (~ulp(now) * r ≈ 4e-13 at t=20000s, r=0.1).
// With at most a few thousand events between an app's settle points the drift
// is bounded well under 1e-8 GB; the check uses tol = 1e-6 absolute + 1e-9
// relative, three orders of magnitude of headroom while still far below any
// physically meaningful amount of work (the engine's own completion epsilon
// is 1e-6 GB). This is the one deliberately non-exact check in the
// differential harness — everything else (rates, deadlines, dt, share,
// waiting set) must agree bit-for-bit.
//
// Comparisons happen at settle points only (a.settledAt == now, the instant
// the engine's value is current), and are skipped — with a re-anchor — across
// events that mutate remaining work outside rate integration: executor kill
// charge-backs (detected via the kill counters) and state transitions (the
// profiling-completion ContributeGB subtraction).
type shadowIntegrator struct {
	c       *Cluster
	apps    map[*App]float64
	state   map[*App]AppState
	foreign map[*ForeignTask]float64
	kills   int
}

func newShadow(c *Cluster) *shadowIntegrator {
	return &shadowIntegrator{
		c:       c,
		apps:    map[*App]float64{},
		state:   map[*App]AppState{},
		foreign: map[*ForeignTask]float64{},
	}
}

// step runs inside the checkEvent hook (rates fresh, advance(dt) about to
// run): it compares freshly settled entities against the shadow trajectory,
// re-anchors at every settle point, then integrates rate*dt for the upcoming
// interval. Returns "" or a description of the first divergence.
func (s *shadowIntegrator) step(dt float64) string {
	const tiny = 1e-9
	kills := s.c.totalOOM + s.c.totalFailKills + s.c.totalPreemptKills
	killed := kills != s.kills
	s.kills = kills
	for _, a := range s.c.active {
		if a.settledAt == s.c.now {
			prev, seen := s.apps[a]
			if seen && !killed && s.state[a] == StateRunning && a.State == StateRunning {
				tol := 1e-6 + 1e-9*math.Abs(a.RemainingGB)
				if math.Abs(prev-a.RemainingGB) > tol {
					return fmt.Sprintf("app %d: settled remaining %.12g GB, shadow per-event integral %.12g GB (diff %.3g > tol %.3g)",
						a.ID, a.RemainingGB, prev, math.Abs(prev-a.RemainingGB), tol)
				}
			}
			s.apps[a] = a.RemainingGB
		}
		s.state[a] = a.State
		if a.State == StateRunning && a.startupUntil <= s.c.now {
			if r := appRate(a); r > tiny {
				if v, seen := s.apps[a]; seen {
					s.apps[a] = v - r*dt
				}
			}
		}
	}
	for _, f := range s.c.activeForeign {
		if f.done {
			continue
		}
		if f.settledAt == s.c.now {
			prev, seen := s.foreign[f]
			if seen {
				tol := 1e-6 + 1e-9*math.Abs(f.remaining)
				if math.Abs(prev-f.remaining) > tol {
					return fmt.Sprintf("foreign %q: settled remaining %.12g s, shadow per-event integral %.12g s (diff %.3g > tol %.3g)",
						f.Name, f.remaining, prev, math.Abs(prev-f.remaining), tol)
				}
			}
			s.foreign[f] = f.remaining
		}
		if f.rate > tiny {
			if v, seen := s.foreign[f]; seen {
				s.foreign[f] = v - f.rate*dt
			}
		}
	}
	return ""
}

// buildDiffWorkload reconstructs the differential suite's seeded workload:
// the same seed always yields the same fleet, arrivals, classes, storms and
// foreign tasks regardless of the shard count, so runs at different shard
// counts simulate the identical scenario. It returns the cluster, the
// submission stream, the scheduler, and whether this is a rack-storm seed.
func buildDiffWorkload(t *testing.T, seed int64, shards int) (*Cluster, []Submission, *diffScheduler, bool) {
	t.Helper()
	// The last three seeds run the failure-domain machinery: racked
	// fleets, correlated rack storms with warning drains, graceful
	// migration with handoff, OOM retry budgets and capacity-ratcheted
	// fleet sizing — all under the same exact-agreement harness.
	rackStorm := seed >= 25
	r := rand.New(rand.NewSource(seed))
	nodeCount := 6 + r.Intn(12)
	var fleet []workload.NodeClass
	var err error
	switch r.Intn(3) {
	case 0:
		fleet, err = workload.UniformFleet(nodeCount, workload.PaperNode())
	case 1:
		fleet, err = workload.BimodalFleet(nodeCount, workload.BigNode(), workload.LittleNode(), 0.4, r)
	default:
		fleet, err = workload.StragglerFleet(nodeCount, workload.PaperNode(), 0.3, 0.4, r)
	}
	if err != nil {
		t.Fatalf("seed %d: fleet: %v", seed, err)
	}
	if rackStorm {
		if fleet, err = workload.AssignRacks(fleet, 3, 2); err != nil {
			t.Fatalf("seed %d: racks: %v", seed, err)
		}
	}
	arrivals, err := workload.PoissonArrivals(15+r.Intn(25), 0.01+0.02*r.Float64(), r)
	if err != nil {
		t.Fatalf("seed %d: arrivals: %v", seed, err)
	}
	classed := r.Intn(2) == 0
	if classed {
		if arrivals, err = workload.TagArrivals(arrivals, workload.LatencyBatchMix(0.3), r); err != nil {
			t.Fatalf("seed %d: classes: %v", seed, err)
		}
	}
	cfg := DefaultConfig()
	cfg.Shards = shards
	if r.Intn(2) == 0 {
		cfg.TraceInterval = 40
	}
	// Half the seeds release completed foreign working sets: the memory
	// sums then move on foreign completion, and the reference rate check
	// must still agree with the dirty-node pass.
	cfg.ReleaseForeignMem = r.Intn(2) == 0
	if rackStorm {
		cfg.MigrateOnDrain = true
		cfg.OOMRetryBudget = 1 + r.Intn(3)
		cfg.RefreshFleetSizing = true
	}
	specs := SpecsFrom(fleet)
	c, err := NewHetero(cfg, specs)
	if err != nil {
		t.Fatalf("seed %d: cluster: %v", seed, err)
	}
	span := arrivals[len(arrivals)-1].At
	switch {
	case rackStorm:
		storm, err := RackStormEvents(specs, 1, 1, span*0.1, span*0.8+1, 20, 60, r)
		if err != nil {
			t.Fatalf("seed %d: rack storm: %v", seed, err)
		}
		if err := c.ScheduleNodeEvents(storm...); err != nil {
			t.Fatalf("seed %d: node events: %v", seed, err)
		}
	case r.Intn(2) == 0:
		storm, err := StormEvents(nodeCount, 1, 1, span*0.1, span*0.8+1, 25, r)
		if err != nil {
			t.Fatalf("seed %d: storm: %v", seed, err)
		}
		if err := c.ScheduleNodeEvents(storm...); err != nil {
			t.Fatalf("seed %d: node events: %v", seed, err)
		}
	}
	for i, fn := 0, r.Intn(3); i < fn; i++ {
		// Oversized working sets bypass admission control, forcing the
		// OOM-kill and blacklist paths on co-located executors.
		if _, err := c.AddForeign(r.Intn(nodeCount), "co-runner", 0.2+0.5*r.Float64(), 10+25*r.Float64(), 400+600*r.Float64()); err != nil {
			t.Fatalf("seed %d: foreign: %v", seed, err)
		}
	}
	return c, Submissions(arrivals), &diffScheduler{preempt: classed, hog: seed%3 == 0}, rackStorm
}

// installDiffHook wires the full exact-agreement hook — scan-based reference
// replays plus the shadow integrator — onto the cluster and returns the
// fired-event counter.
func installDiffHook(t *testing.T, c *Cluster, label string) *int {
	t.Helper()
	events := new(int)
	shadow := newShadow(c)
	c.checkEvent = func(share, dt float64, ok bool) {
		*events++
		if ref := c.refProfilingShare(); share != ref {
			t.Fatalf("%s event %d: profiling share %v, reference %v", label, *events, share, ref)
		}
		refDt, refOK := c.refNextEventDt(share)
		if ok != refOK || (ok && dt != refDt) {
			t.Fatalf("%s event %d: next event dt (%v,%v), reference (%v,%v)", label, *events, dt, ok, refDt, refOK)
		}
		if diff := c.refCheckRates(); diff != "" {
			t.Fatalf("%s event %d: %s", label, *events, diff)
		}
		if diff := c.refCheckDeadlines(share); diff != "" {
			t.Fatalf("%s event %d: %s", label, *events, diff)
		}
		if diff := shadow.step(dt); diff != "" {
			t.Fatalf("%s event %d: %s", label, *events, diff)
		}
		if got, ref := c.allDone(), c.refAllDone(); got != ref {
			t.Fatalf("%s event %d: allDone %v, reference %v", label, *events, got, ref)
		}
		got := c.AppendWaitingApps(nil)
		ref := c.refWaitingApps()
		if len(got) != len(ref) {
			t.Fatalf("%s event %d: waiting set size %d, reference %d", label, *events, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%s event %d: waiting[%d] = app %d, reference app %d", label, *events, i, got[i].ID, ref[i].ID)
			}
		}
	}
	return events
}

// resultFingerprint renders every observable outcome of a run — per-app
// timestamps and kill counters bit-for-bit (float bits, not formatted
// decimals), foreign completions, global counters, the epoch count, and the
// shard-count-invariant totals of the per-shard event counters — into a
// string two runs can be compared by. Exact string equality means exact
// (==) result equality.
func resultFingerprint(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %x epochs %d oom %d fail %d preempt %d migr %d retries %d lost %x\n",
		math.Float64bits(res.MakespanSec), res.Epochs, res.OOMKills, res.FailKills,
		res.PreemptKills, res.Migrations, res.OOMRetries, math.Float64bits(res.LostWorkGB))
	var rated, wakes int64
	for _, s := range res.ShardStats {
		rated += s.Rated
		wakes += s.Wakes
	}
	fmt.Fprintf(&b, "rated %d wakes %d\n", rated, wakes)
	for _, a := range res.Apps {
		fmt.Fprintf(&b, "app %d state %v submit %x ready %x start %x done %x oom %d preempt %d migr %d retries %d lost %x\n",
			a.ID, a.State, math.Float64bits(a.SubmitTime), math.Float64bits(a.ReadyTime),
			math.Float64bits(a.StartTime), math.Float64bits(a.DoneTime),
			a.OOMKills, a.PreemptKills, a.Migrations, a.OOMRetries, math.Float64bits(a.LostWorkGB))
	}
	for _, f := range res.Foreign {
		fmt.Fprintf(&b, "foreign %s done %x lost %v\n", f.Name, math.Float64bits(f.DoneTime), f.Lost)
	}
	return b.String()
}

// fingerprintDiff locates the first differing line of two fingerprints for a
// readable failure message.
func fingerprintDiff(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  shards=1: %s\n  sharded:  %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("fingerprint lengths differ: %d vs %d lines", len(w), len(g))
}

// TestIndexedEngineMatchesScanReference is the differential property test
// for the event index AND the sharded event loop: each of the 28 seeded
// randomized workloads — mixed fleets, node events, tenant classes,
// preemption, foreign tasks, profiling, traces, rack storms — runs at shard
// counts 1, 2, 4 and 8 with the engine's per-event hook replaying the
// preserved scan-based reference paths (engine_ref.go) against the indexed
// engine's state on every event, requiring exact (==, not approximate)
// agreement of the profiling share, the chosen event dt, the completion
// check, the waiting set, every stored rate and every stored completion
// deadline. On top of the per-event replay, the complete result of every
// sharded run must be bit-identical to the shards=1 run of the same seed
// (resultFingerprint). The one approximate check is the shadow per-event
// integrator (see shadowIntegrator), which bounds the settle-vs-per-event
// float drift.
func TestIndexedEngineMatchesScanReference(t *testing.T) {
	stormMigrations := 0
	for seed := int64(0); seed < 28; seed++ {
		var base string
		for _, shards := range []int{1, 2, 4, 8} {
			c, subs, sched, rackStorm := buildDiffWorkload(t, seed, shards)
			label := fmt.Sprintf("seed %d shards %d:", seed, shards)
			events := installDiffHook(t, c, label)
			res, err := c.RunOpen(subs, sched)
			if err != nil {
				t.Fatalf("%s run: %v", label, err)
			}
			if *events == 0 {
				t.Fatalf("%s differential hook never fired", label)
			}
			for _, a := range res.Apps {
				if a.State != StateDone {
					t.Fatalf("%s app %d finished in state %v", label, a.ID, a.State)
				}
			}
			fp := resultFingerprint(res)
			if shards == 1 {
				base = fp
				if rackStorm {
					stormMigrations += res.Migrations
				}
			} else if fp != base {
				t.Fatalf("%s result diverged from shards=1 at %s", label, fingerprintDiff(base, fp))
			}
		}
	}
	if stormMigrations == 0 {
		t.Error("rack-storm seeds never migrated an executor: the failure-domain paths went untested")
	}
}

// scaleDiffScheduler drives the fleet-scale differential run: the whole-node
// policy of the engine benchmarks plus a contributing profiling plan for
// larger jobs, so the profiling-share settle path is on the clock too.
// diffScheduler is not reusable here — its per-event walk of the whole
// waiting set against every node is fine at 40 apps and pathological once a
// 20k stream backs up.
type scaleDiffScheduler struct {
	fullSpeedScheduler
}

func (s *scaleDiffScheduler) Prepare(c *Cluster, a *App) ProfilePlan {
	if a.Job.InputGB >= 10 {
		return ContributingProfile(a.Job.InputGB * 0.04)
	}
	return ProfilePlan{}
}

// TestIndexedEngineMatchesScanReference20000 runs the differential harness at
// fleet scale: a 20,000-application classed stream on the 64-node bimodal
// storm fleet of the scaling benchmarks. The shadow integrator (O(in-flight)
// per event) runs on every event; the heavy O(total-apps) reference scans are
// subsampled to every 8th event, which still lands tens of thousands of full
// scan-vs-index comparisons across the run while keeping the test minutes off
// the critical path. Excluded under -short.
func TestIndexedEngineMatchesScanReference20000(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-app differential run excluded under -short")
	}
	const apps = 20000
	const nodes = 64
	fleet, err := workload.BimodalFleet(nodes, workload.BigNode(), workload.LittleNode(), 0.5, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	arrivals, err := workload.PoissonArrivals(apps, 0.018, rng)
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := workload.TagArrivals(arrivals, workload.LatencyBatchMix(0.3), rng)
	if err != nil {
		t.Fatal(err)
	}
	build := func(shards int) *Cluster {
		cfg := DefaultConfig()
		cfg.Shards = shards
		c, err := NewHetero(cfg, SpecsFrom(fleet))
		if err != nil {
			t.Fatal(err)
		}
		span := tagged[len(tagged)-1].At
		storm, err := StormEvents(nodes, 4, 4, span*0.1, span*0.8, 30, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.ScheduleNodeEvents(storm...); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := c.AddForeign(i*7, "co-runner", 0.4, 20, 900); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	c := build(1)
	events, checked := 0, 0
	shadow := newShadow(c)
	c.checkEvent = func(share, dt float64, ok bool) {
		events++
		if diff := shadow.step(dt); diff != "" {
			t.Fatalf("event %d: %s", events, diff)
		}
		if events%8 != 0 {
			return
		}
		checked++
		if ref := c.refProfilingShare(); share != ref {
			t.Fatalf("event %d: profiling share %v, reference %v", events, share, ref)
		}
		refDt, refOK := c.refNextEventDt(share)
		if ok != refOK || (ok && dt != refDt) {
			t.Fatalf("event %d: next event dt (%v,%v), reference (%v,%v)", events, dt, ok, refDt, refOK)
		}
		if diff := c.refCheckRates(); diff != "" {
			t.Fatalf("event %d: %s", events, diff)
		}
		if diff := c.refCheckDeadlines(share); diff != "" {
			t.Fatalf("event %d: %s", events, diff)
		}
		if got, ref := c.allDone(), c.refAllDone(); got != ref {
			t.Fatalf("event %d: allDone %v, reference %v", events, got, ref)
		}
		got := c.AppendWaitingApps(nil)
		ref := c.refWaitingApps()
		if len(got) != len(ref) {
			t.Fatalf("event %d: waiting set size %d, reference %d", events, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("event %d: waiting[%d] = app %d, reference app %d", events, i, got[i].ID, ref[i].ID)
			}
		}
	}
	res, err := c.RunOpen(Submissions(tagged), &scaleDiffScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if checked < 1000 {
		t.Fatalf("only %d subsampled reference checks over %d events; harness misconfigured", checked, events)
	}
	for _, a := range res.Apps {
		if a.State != StateDone {
			t.Fatalf("app %d finished in state %v", a.ID, a.State)
		}
	}
	// Replay the identical 20k workload on two shards — no hook, full speed —
	// and require the complete result bit-identical to the single-loop run.
	sharded, err := build(2).RunOpen(Submissions(tagged), &scaleDiffScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if base, got := resultFingerprint(res), resultFingerprint(sharded); got != base {
		t.Fatalf("shards=2 result diverged from shards=1 at %s", fingerprintDiff(base, got))
	}
}

func TestGrowValidation(t *testing.T) {
	c := New(DefaultConfig())
	b, err := workload.Find("SP.Pca")
	if err != nil {
		t.Fatal(err)
	}
	app := &App{
		ID: 0, Job: workload.Job{Bench: b, InputGB: 100},
		RemainingGB: 100, MaxExecutors: 2, State: StateReady,
		ReadyTime: 0, StartTime: -1, DoneTime: -1,
	}
	n := c.Nodes()[0]
	e, err := c.Spawn(app, n, 10, 15)
	if err != nil {
		t.Fatal(err)
	}
	// Shrinking is rejected.
	if err := c.Grow(e, 12, 10); err == nil {
		t.Error("Grow must not shrink the allocation")
	}
	// Growing beyond free memory is rejected.
	if err := c.Grow(e, c.Config().AllocatableGB()+20, 80); err == nil {
		t.Error("Grow must respect free memory")
	}
	// Valid growth updates reservation, items, and footprints.
	oldNeed := e.NeedGB
	if err := c.Grow(e, 25, 40); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if e.ReservedGB != 25 || e.ItemsGB != 40 {
		t.Errorf("grow result: reserve=%v items=%v", e.ReservedGB, e.ItemsGB)
	}
	if e.NeedGB <= oldNeed {
		t.Errorf("need did not grow: %v -> %v", oldNeed, e.NeedGB)
	}
	if e.ActualGB > e.ReservedGB*(1+c.Config().OffHeapFrac)+1e-9 {
		t.Errorf("resident %v exceeds heap cap", e.ActualGB)
	}
	// Items clamp at remaining work.
	if err := c.Grow(e, 30, 500); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if e.ItemsGB > app.RemainingGB {
		t.Errorf("items %v exceed remaining %v", e.ItemsGB, app.RemainingGB)
	}
}
