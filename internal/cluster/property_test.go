package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"moespark/internal/workload"
)

// greedyScheduler is a simple est-free policy for property tests: first-fit
// with bounded reservations.
type greedyScheduler struct{}

func (greedyScheduler) Name() string                       { return "test-greedy" }
func (greedyScheduler) Prepare(*Cluster, *App) ProfilePlan { return ProfilePlan{} }
func (greedyScheduler) Schedule(c *Cluster) {
	for _, app := range c.WaitingApps() {
		for _, n := range c.Nodes() {
			if len(app.Executors) >= app.MaxExecutors {
				break
			}
			if app.ExecutorOn(n) || app.BlockedOn(n) {
				continue
			}
			free := n.FreeGB()
			if free < 5 {
				continue
			}
			share := app.RemainingGB / float64(app.MaxExecutors-len(app.Executors))
			reserve := free / 2
			if reserve > 30 {
				reserve = 30
			}
			_, _ = c.Spawn(app, n, reserve, share)
		}
	}
}

// randomJobs draws a random mix of 1..10 jobs.
func randomJobs(r *rand.Rand) []workload.Job {
	cat := workload.Catalog()
	n := 1 + r.Intn(10)
	jobs := make([]workload.Job, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, workload.Job{
			Bench:   cat[r.Intn(len(cat))],
			InputGB: []float64{0.3, 10, 30, 120}[r.Intn(4)],
		})
	}
	return jobs
}

// Property: every run completes all applications, timestamps are ordered
// (submit <= ready <= start <= done where defined), and turnarounds are at
// least the isolated time divided by available parallelism headroom.
func TestRunInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		jobs := randomJobs(r)
		c := New(DefaultConfig())
		res, err := c.Run(jobs, greedyScheduler{})
		if err != nil {
			return false
		}
		for _, a := range res.Apps {
			if a.State != StateDone {
				return false
			}
			if a.DoneTime < 0 || a.DoneTime > res.MakespanSec+1e-6 {
				return false
			}
			if a.ReadyTime >= 0 && a.ReadyTime < a.SubmitTime {
				return false
			}
			if a.StartTime >= 0 && a.ReadyTime >= 0 && a.StartTime+1e-9 < a.ReadyTime {
				return false
			}
			if a.DoneTime < a.StartTime {
				return false
			}
			// Executors are all released at completion.
			if len(a.Executors) != 0 {
				return false
			}
			// No app can beat the startup latency.
			if a.Turnaround() < c.Config().StartupSec-1e-6 {
				return false
			}
		}
		// Nodes end empty.
		for _, n := range c.Nodes() {
			if len(n.Executors) != 0 || n.ReservedGB() != 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: reservations never exceed the advertised allocatable memory on
// any node at any scheduling point.
type reservationProbe struct {
	inner  Scheduler
	failed bool
}

func (p *reservationProbe) Name() string { return p.inner.Name() }
func (p *reservationProbe) Prepare(c *Cluster, a *App) ProfilePlan {
	return p.inner.Prepare(c, a)
}
func (p *reservationProbe) Schedule(c *Cluster) {
	p.inner.Schedule(c)
	limit := c.Config().AllocatableGB() + 1e-6
	for _, n := range c.Nodes() {
		if n.ReservedGB() > limit {
			p.failed = true
		}
	}
}

func TestReservationsBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		jobs := randomJobs(r)
		c := New(DefaultConfig())
		probe := &reservationProbe{inner: greedyScheduler{}}
		if _, err := c.Run(jobs, probe); err != nil {
			return false
		}
		return !probe.failed
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(72))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: with fleet sizes pinned (one executor per app), doubling every
// input never makes the mix finish sooner. (With dynamic fleets the property
// is false: a larger input earns a larger fleet and can finish earlier.)
func TestMakespanMonotoneInWorkProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		jobs := randomJobs(r)
		run := func(scale float64) float64 {
			scaled := make([]workload.Job, len(jobs))
			for i, j := range jobs {
				scaled[i] = workload.Job{Bench: j.Bench, InputGB: j.InputGB * scale}
			}
			cfg := DefaultConfig()
			cfg.ExecutorSpreadGB = 1e9 // one executor per app at any size
			c := New(cfg)
			res, err := c.Run(scaled, greedyScheduler{})
			if err != nil {
				return -1
			}
			return res.MakespanSec
		}
		base := run(1)
		double := run(2)
		if base < 0 || double < 0 {
			return false
		}
		return double+1e-6 >= base
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(73))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// diffScheduler drives the differential engine test through every hot path:
// profiling plans for larger jobs, greedy bounded-reservation placement,
// deliberate under-reservation (heap pressure), a mid-run oversized foreign
// "hog" that overflows a busy node past RAM+swap (admission charged the
// executors before the hog existed, so the OOM-kill and blacklist paths
// fire) and — for classed runs — preemption on behalf of starved
// high-weight arrivals.
type diffScheduler struct {
	preempt  bool
	hog      bool
	hogAdded bool
	waitBuf  []*App
}

func (s *diffScheduler) Name() string { return "test-differential" }
func (s *diffScheduler) Prepare(c *Cluster, a *App) ProfilePlan {
	if a.Job.InputGB >= 10 {
		return ContributingProfile(a.Job.InputGB * 0.04)
	}
	return ProfilePlan{}
}
func (s *diffScheduler) Schedule(c *Cluster) {
	if s.hog && !s.hogAdded && c.Now() > 50 {
		for _, app := range c.ActiveApps() {
			if len(app.Executors) > 0 {
				n := app.Executors[0].Node
				over := n.Spec.UsableGB() + n.Spec.SwapGB - n.ActualGB() + 5
				if _, err := c.AddForeign(n.ID, "hog", 0.3, over, 200); err == nil {
					s.hogAdded = true
				}
				break
			}
		}
	}
	s.waitBuf = c.AppendWaitingApps(s.waitBuf[:0])
	for _, app := range s.waitBuf {
		if s.preempt && app.Class.Weight >= 2 && len(app.Executors) == 0 {
			c.PreemptFor(app, 25, app.Job.Bench.CPULoad, 0)
		}
		for _, n := range c.Nodes() {
			if len(app.Executors) >= app.MaxExecutors {
				break
			}
			if !n.Available() || app.ExecutorOn(n) || (app.BlockedOn(n) && len(n.Executors) > 0) {
				continue
			}
			free := n.FreeGB()
			if free < 5 {
				continue
			}
			share := app.RemainingGB / float64(app.MaxExecutors-len(app.Executors))
			reserve := free / 2
			if reserve > 30 {
				reserve = 30
			}
			if app.ID%5 == 3 {
				// Under-reserve every fifth app: heap-pressure rates, and —
				// together with oversized foreign working sets — OOM kills.
				reserve = free / 6
			}
			_, _ = c.Spawn(app, n, reserve, share)
		}
	}
}

// TestIndexedEngineMatchesScanReference is the differential property test
// for the event index: on seeded randomized workloads — mixed fleets, node
// events, tenant classes, preemption, foreign tasks, profiling, traces — it
// installs the engine's per-event hook and replays the preserved scan-based
// reference paths (engine_ref.go) against the indexed engine's state on
// every event, requiring exact (==, not approximate) agreement of the
// profiling share, the chosen event dt, the completion check, the waiting
// set and every stored rate.
func TestIndexedEngineMatchesScanReference(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		nodeCount := 6 + r.Intn(12)
		var fleet []workload.NodeClass
		var err error
		switch r.Intn(3) {
		case 0:
			fleet, err = workload.UniformFleet(nodeCount, workload.PaperNode())
		case 1:
			fleet, err = workload.BimodalFleet(nodeCount, workload.BigNode(), workload.LittleNode(), 0.4, r)
		default:
			fleet, err = workload.StragglerFleet(nodeCount, workload.PaperNode(), 0.3, 0.4, r)
		}
		if err != nil {
			t.Fatalf("seed %d: fleet: %v", seed, err)
		}
		arrivals, err := workload.PoissonArrivals(15+r.Intn(25), 0.01+0.02*r.Float64(), r)
		if err != nil {
			t.Fatalf("seed %d: arrivals: %v", seed, err)
		}
		classed := r.Intn(2) == 0
		if classed {
			if arrivals, err = workload.TagArrivals(arrivals, workload.LatencyBatchMix(0.3), r); err != nil {
				t.Fatalf("seed %d: classes: %v", seed, err)
			}
		}
		cfg := DefaultConfig()
		if r.Intn(2) == 0 {
			cfg.TraceInterval = 40
		}
		// Half the seeds release completed foreign working sets: the memory
		// sums then move on foreign completion, and the reference rate check
		// must still agree with the dirty-node pass.
		cfg.ReleaseForeignMem = r.Intn(2) == 0
		c, err := NewHetero(cfg, SpecsFrom(fleet))
		if err != nil {
			t.Fatalf("seed %d: cluster: %v", seed, err)
		}
		if r.Intn(2) == 0 {
			span := arrivals[len(arrivals)-1].At
			storm, err := StormEvents(nodeCount, 1, 1, span*0.1, span*0.8+1, 25, r)
			if err != nil {
				t.Fatalf("seed %d: storm: %v", seed, err)
			}
			if err := c.ScheduleNodeEvents(storm...); err != nil {
				t.Fatalf("seed %d: node events: %v", seed, err)
			}
		}
		for i, fn := 0, r.Intn(3); i < fn; i++ {
			// Oversized working sets bypass admission control, forcing the
			// OOM-kill and blacklist paths on co-located executors.
			if _, err := c.AddForeign(r.Intn(nodeCount), "co-runner", 0.2+0.5*r.Float64(), 10+25*r.Float64(), 400+600*r.Float64()); err != nil {
				t.Fatalf("seed %d: foreign: %v", seed, err)
			}
		}
		events := 0
		c.checkEvent = func(share, dt float64, ok bool) {
			events++
			if ref := c.refProfilingShare(); share != ref {
				t.Fatalf("seed %d event %d: profiling share %v, reference %v", seed, events, share, ref)
			}
			refDt, refOK := c.refNextEventDt(share)
			if ok != refOK || (ok && dt != refDt) {
				t.Fatalf("seed %d event %d: next event dt (%v,%v), reference (%v,%v)", seed, events, dt, ok, refDt, refOK)
			}
			if diff := c.refCheckRates(); diff != "" {
				t.Fatalf("seed %d event %d: %s", seed, events, diff)
			}
			if got, ref := c.allDone(), c.refAllDone(); got != ref {
				t.Fatalf("seed %d event %d: allDone %v, reference %v", seed, events, got, ref)
			}
			got := c.AppendWaitingApps(nil)
			ref := c.refWaitingApps()
			if len(got) != len(ref) {
				t.Fatalf("seed %d event %d: waiting set size %d, reference %d", seed, events, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("seed %d event %d: waiting[%d] = app %d, reference app %d", seed, events, i, got[i].ID, ref[i].ID)
				}
			}
		}
		res, err := c.RunOpen(Submissions(arrivals), &diffScheduler{preempt: classed, hog: seed%3 == 0})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if events == 0 {
			t.Fatalf("seed %d: differential hook never fired", seed)
		}
		for _, a := range res.Apps {
			if a.State != StateDone {
				t.Fatalf("seed %d: app %d finished in state %v", seed, a.ID, a.State)
			}
		}
	}
}

func TestGrowValidation(t *testing.T) {
	c := New(DefaultConfig())
	b, err := workload.Find("SP.Pca")
	if err != nil {
		t.Fatal(err)
	}
	app := &App{
		ID: 0, Job: workload.Job{Bench: b, InputGB: 100},
		RemainingGB: 100, MaxExecutors: 2, State: StateReady,
		ReadyTime: 0, StartTime: -1, DoneTime: -1,
	}
	n := c.Nodes()[0]
	e, err := c.Spawn(app, n, 10, 15)
	if err != nil {
		t.Fatal(err)
	}
	// Shrinking is rejected.
	if err := c.Grow(e, 12, 10); err == nil {
		t.Error("Grow must not shrink the allocation")
	}
	// Growing beyond free memory is rejected.
	if err := c.Grow(e, c.Config().AllocatableGB()+20, 80); err == nil {
		t.Error("Grow must respect free memory")
	}
	// Valid growth updates reservation, items, and footprints.
	oldNeed := e.NeedGB
	if err := c.Grow(e, 25, 40); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if e.ReservedGB != 25 || e.ItemsGB != 40 {
		t.Errorf("grow result: reserve=%v items=%v", e.ReservedGB, e.ItemsGB)
	}
	if e.NeedGB <= oldNeed {
		t.Errorf("need did not grow: %v -> %v", oldNeed, e.NeedGB)
	}
	if e.ActualGB > e.ReservedGB*(1+c.Config().OffHeapFrac)+1e-9 {
		t.Errorf("resident %v exceeds heap cap", e.ActualGB)
	}
	// Items clamp at remaining work.
	if err := c.Grow(e, 30, 500); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if e.ItemsGB > app.RemainingGB {
		t.Errorf("items %v exceed remaining %v", e.ItemsGB, app.RemainingGB)
	}
}
