package cluster

import (
	"errors"
	"math"
	"testing"

	"moespark/internal/workload"
)

// testBench returns a benchmark handle for tests.
func testBench(t *testing.T, name string) *workload.Benchmark {
	t.Helper()
	b, err := workload.Find(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fullSpeedScheduler gives the FCFS head whole nodes, like the isolated
// baseline, but concurrently for every app. Schedule runs on every engine
// event, so it reuses a waiting buffer (the same AppendWaitingApps idiom the
// production dispatchers use) instead of allocating a fresh waiting set per
// call — the engine benchmarks drive it thousands of times per run.
type fullSpeedScheduler struct {
	waitBuf  []*App
	emptyBuf []*Node
}

func (*fullSpeedScheduler) Name() string                       { return "test-full" }
func (*fullSpeedScheduler) Prepare(*Cluster, *App) ProfilePlan { return ProfilePlan{} }
func (s *fullSpeedScheduler) Schedule(c *Cluster) {
	s.waitBuf = c.AppendWaitingApps(s.waitBuf[:0])
	if len(s.waitBuf) == 0 {
		return
	}
	// Candidate nodes can only fill up during this call (Spawn adds, nothing
	// removes), so the empty-and-available set is collected once, in node
	// order, and rechecked for emptiness per placement: the walk below makes
	// exactly the placements the full per-app node scan made.
	s.emptyBuf = s.emptyBuf[:0]
	for _, n := range c.Nodes() {
		if n.Available() && len(n.Executors) == 0 {
			s.emptyBuf = append(s.emptyBuf, n)
		}
	}
	for _, app := range s.waitBuf {
		for _, n := range s.emptyBuf {
			if len(app.Executors) >= app.MaxExecutors {
				break
			}
			if len(n.Executors) > 0 || app.ExecutorOn(n) {
				continue
			}
			share := app.RemainingGB / float64(app.MaxExecutors-len(app.Executors))
			if _, err := c.Spawn(app, n, n.FreeGB(), share); err != nil {
				break
			}
		}
	}
}

func TestConfigNodesFor(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		gb   float64
		want int
	}{
		{0.3, 1}, {16, 1}, {17, 2}, {30, 2}, {1000, 40}, {0, 1},
	}
	for _, c := range cases {
		if got := cfg.NodesFor(c.gb); got != c.want {
			t.Errorf("NodesFor(%v) = %d, want %d", c.gb, got, c.want)
		}
	}
}

func TestConfigAllocatable(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.UsableGB() != 60 {
		t.Errorf("UsableGB = %v, want 60", cfg.UsableGB())
	}
	want := 0.92 * 60
	if math.Abs(cfg.AllocatableGB()-want) > 1e-9 {
		t.Errorf("AllocatableGB = %v, want %v", cfg.AllocatableGB(), want)
	}
	cfg.PressureWatermark = 0
	if cfg.AllocatableGB() != 60 {
		t.Errorf("zero watermark should mean full usable memory")
	}
}

func TestSingleAppMatchesIsolatedTime(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	job := workload.Job{Bench: testBench(t, "HB.Sort"), InputGB: 30}
	res, err := c.Run([]workload.Job{job}, &fullSpeedScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	want := c.IsolatedTime(job)
	got := res.Apps[0].Turnaround()
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("turnaround %v, isolated closed form %v", got, want)
	}
}

func TestRunRejectsEmpty(t *testing.T) {
	c := New(DefaultConfig())
	if _, err := c.Run(nil, &fullSpeedScheduler{}); err == nil {
		t.Fatal("empty run must error")
	}
}

func TestSpawnValidation(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	b := testBench(t, "HB.Sort")
	app := &App{
		ID: 0, Job: workload.Job{Bench: b, InputGB: 100},
		RemainingGB: 100, MaxExecutors: 2, State: StateReady,
		ReadyTime: -1, StartTime: -1, DoneTime: -1,
	}
	n0, n1 := c.Nodes()[0], c.Nodes()[1]

	// Over-reservation.
	if _, err := c.Spawn(app, n0, cfg.AllocatableGB()+5, 10); !errors.Is(err, ErrNoFreeMemory) {
		t.Errorf("over-reserve: %v", err)
	}
	// Chunk too small.
	if _, err := c.Spawn(app, n0, 10, 0.001); !errors.Is(err, ErrChunkTooSmall) {
		t.Errorf("tiny chunk: %v", err)
	}
	// Good spawn.
	e, err := c.Spawn(app, n0, 10, 50)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if e.NeedGB != b.Footprint(50) {
		t.Errorf("need %v, want ground truth %v", e.NeedGB, b.Footprint(50))
	}
	if e.ActualGB > 10*(1+cfg.OffHeapFrac)+1e-9 {
		t.Errorf("resident %v exceeds heap cap", e.ActualGB)
	}
	if app.State != StateRunning {
		t.Errorf("app state %v after first spawn", app.State)
	}
	// Same node twice.
	if _, err := c.Spawn(app, n0, 10, 50); !errors.Is(err, ErrAlreadyOnNode) {
		t.Errorf("dup node: %v", err)
	}
	// Cap.
	if _, err := c.Spawn(app, n1, 10, 50); err != nil {
		t.Fatalf("second spawn: %v", err)
	}
	if _, err := c.Spawn(app, c.Nodes()[2], 10, 50); !errors.Is(err, ErrExecutorCap) {
		t.Errorf("cap: %v", err)
	}
}

func TestSpawnRejectsWrongState(t *testing.T) {
	c := New(DefaultConfig())
	b := testBench(t, "HB.Sort")
	app := &App{Job: workload.Job{Bench: b, InputGB: 10}, RemainingGB: 10, MaxExecutors: 1, State: StateQueued}
	if _, err := c.Spawn(app, c.Nodes()[0], 5, 5); !errors.Is(err, ErrAppNotSchedulable) {
		t.Errorf("queued spawn: %v", err)
	}
	app.State = StateReady
	//moevet:allow settledstate hand-built app with no engine run; probing Spawn's no-work rejection
	app.RemainingGB = 0
	if _, err := c.Spawn(app, c.Nodes()[0], 5, 5); !errors.Is(err, ErrAppNotSchedulable) {
		t.Errorf("no-work spawn: %v", err)
	}
}

// oversubscribeScheduler packs two executors with understated reservations
// onto one node to trigger paging/OOM paths.
type oversubscribeScheduler struct {
	reserve float64
}

func (oversubscribeScheduler) Name() string                       { return "test-oversub" }
func (oversubscribeScheduler) Prepare(*Cluster, *App) ProfilePlan { return ProfilePlan{} }
func (s oversubscribeScheduler) Schedule(c *Cluster) {
	for _, app := range c.WaitingApps() {
		for _, n := range c.Nodes() {
			if app.ExecutorOn(n) || app.BlockedOn(n, c.Now()) {
				continue
			}
			if _, err := c.Spawn(app, n, s.reserve, app.RemainingGB); err == nil {
				break
			}
		}
	}
}

func TestHeapPressureSlowsUnderProvisionedExecutor(t *testing.T) {
	// One app, reservation far below its true footprint: the run must take
	// markedly longer than the isolated time.
	cfg := DefaultConfig()
	cfg.Nodes = 1
	cfg.MaxExecutorNodes = 1
	c := New(cfg)
	b := testBench(t, "HB.PageRank") // footprint(30) ~ 22GB
	job := workload.Job{Bench: b, InputGB: 30}
	res, err := c.Run([]workload.Job{job}, oversubscribeScheduler{reserve: 5})
	if err != nil {
		t.Fatal(err)
	}
	iso := 30/b.ScanRate + cfg.StartupSec
	if res.Apps[0].Turnaround() < 2*iso {
		t.Errorf("under-provisioned run %.0fs, want >= 2x the full-heap time %.0fs",
			res.Apps[0].Turnaround(), iso)
	}
}

func TestOOMKillAndBlacklist(t *testing.T) {
	// Admission control plus JVM heap caps mean well-formed schedules never
	// reach RAM+swap (matching the paper's "OOM was not observed"), so the
	// OOM path is exercised white-box: pin oversized foreign memory onto a
	// node that already hosts an executor and recompute rates.
	cfg := DefaultConfig()
	c := New(cfg)
	b := testBench(t, "BDB.PageRank")
	app := &App{
		ID: 0, Job: workload.Job{Bench: b, InputGB: 60},
		RemainingGB: 60, MaxExecutors: 1, State: StateReady,
		ReadyTime: 0, StartTime: -1, DoneTime: -1,
	}
	n := c.Nodes()[0]
	if _, err := c.Spawn(app, n, 10, 60); err != nil {
		t.Fatal(err)
	}
	// Pin 70GB of untracked foreign memory: actual exceeds RAM+swap.
	hog := &ForeignTask{Name: "hog", Node: n, CPULoad: 0.05, MemoryGB: 70, WorkSec: 10, remaining: 10, DoneTime: -1}
	n.Foreign = append(n.Foreign, hog)
	c.foreign = append(c.foreign, hog)

	c.recomputeRates()
	if c.TotalOOMKills() != 1 {
		t.Fatalf("OOM kills = %d, want 1", c.TotalOOMKills())
	}
	if len(app.Executors) != 0 {
		t.Error("victim executor not removed")
	}
	if !app.BlockedOn(n, c.Now()) {
		t.Error("app not blacklisted on the OOM node")
	}
	if app.State != StateReady {
		t.Errorf("app state %v, want ready for re-run", app.State)
	}
	if app.RemainingGB <= 60-1e-9 {
		t.Errorf("remaining %.2f, want reprocessing charge added", app.RemainingGB)
	}
	// An empty blacklisted node is usable again (isolation re-run).
	for i, x := range n.Foreign {
		_ = i
		//moevet:allow settledstate forcing co-runner completion without an engine to test blacklisted-node reuse
		x.done = true
	}
	n.Foreign = nil
	if _, err := c.Spawn(app, n, 10, 60); err != nil {
		t.Errorf("isolation re-run on empty blacklisted node should work: %v", err)
	}
}

func TestProfilingPlanValidation(t *testing.T) {
	c := New(DefaultConfig())
	jobs := []workload.Job{{Bench: testBench(t, "HB.Sort"), InputGB: 10}}
	bad := &planScheduler{plan: ProfilePlan{VolumeGB: -1}}
	if _, err := c.Run(jobs, bad); err == nil {
		t.Fatal("negative profiling volume must error")
	}
	c2 := New(DefaultConfig())
	bad2 := &planScheduler{plan: ProfilePlan{VolumeGB: 1, ContributesGB: 2}}
	if _, err := c2.Run(jobs, bad2); err == nil {
		t.Fatal("contribution above volume must error")
	}
}

type planScheduler struct {
	plan ProfilePlan
	full fullSpeedScheduler
}

func (*planScheduler) Name() string                         { return "test-plan" }
func (p *planScheduler) Prepare(*Cluster, *App) ProfilePlan { return p.plan }
func (p *planScheduler) Schedule(c *Cluster)                { p.full.Schedule(c) }

func TestProfilingContributionCapped(t *testing.T) {
	// Contribution is capped at the input size: the app finishes during
	// profiling with no executors.
	c := New(DefaultConfig())
	jobs := []workload.Job{{Bench: testBench(t, "HB.Sort"), InputGB: 0.2}}
	res, err := c.Run(jobs, &planScheduler{plan: ContributingProfile(5)})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Apps[0]
	if a.State != StateDone || a.StartTime >= 0 {
		t.Errorf("app should finish during profiling: state=%v start=%v", a.State, a.StartTime)
	}
	if a.DoneTime <= 0 {
		t.Error("profiling must take time")
	}
}

func TestStallDetection(t *testing.T) {
	// A scheduler that never spawns anything must be reported as stalled.
	c := New(DefaultConfig())
	jobs := []workload.Job{{Bench: testBench(t, "HB.Sort"), InputGB: 10}}
	_, err := c.Run(jobs, &planScheduler{plan: ProfilePlan{}})
	_ = err // planScheduler delegates to fullSpeed; use a no-op instead
	c2 := New(DefaultConfig())
	if _, err := c2.Run(jobs, noopScheduler{}); err == nil {
		t.Fatal("expected stall error")
	}
}

type noopScheduler struct{}

func (noopScheduler) Name() string                       { return "noop" }
func (noopScheduler) Prepare(*Cluster, *App) ProfilePlan { return ProfilePlan{} }
func (noopScheduler) Schedule(*Cluster)                  {}

func TestForeignTaskRunsAndInterferes(t *testing.T) {
	// A CPU-heavy foreign task plus a Spark executor on the same node: both
	// finish, the foreign task slower than its isolated runtime.
	cfg := DefaultConfig()
	cfg.Nodes = 1
	cfg.MaxExecutorNodes = 1
	c := New(cfg)
	ft, err := c.AddForeign(0, "Swaptions", 0.95, 0.5, 800)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []workload.Job{{Bench: testBench(t, "HB.Kmeans"), InputGB: 30}}
	res, err := c.Run(jobs, &fullSpeedScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if !ft.Done() {
		t.Fatal("foreign task did not finish")
	}
	slowdown := ft.DoneTime/ft.WorkSec - 1
	if slowdown <= 0 {
		t.Errorf("foreign slowdown %v, want positive (CPU contention)", slowdown)
	}
	if slowdown > 0.6 {
		t.Errorf("foreign slowdown %v unreasonably large", slowdown)
	}
	if res.Apps[0].State != StateDone {
		t.Error("spark app did not finish")
	}
}

func TestForeignAloneFinishesOnTime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	c := New(cfg)
	ft, err := c.AddForeign(0, "Vips", 0.8, 1.1, 950)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(nil, noopScheduler{}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(ft.DoneTime-950) > 1 {
		t.Errorf("isolated foreign task took %v, want ~950", ft.DoneTime)
	}
	if _, err := c.AddForeign(99, "X", 1, 1, 1); err == nil {
		t.Error("out-of-range node must error")
	}
}

func TestTraceSamplesUtilization(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceInterval = 30
	c := New(cfg)
	jobs := []workload.Job{
		{Bench: testBench(t, "HB.Sort"), InputGB: 64},
		{Bench: testBench(t, "HB.Kmeans"), InputGB: 64},
	}
	res, err := c.Run(jobs, &fullSpeedScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil || len(tr.Times) < 3 {
		t.Fatalf("expected trace samples, got %+v", tr)
	}
	if len(tr.CPU[0]) != cfg.Nodes {
		t.Errorf("trace row width %d, want %d", len(tr.CPU[0]), cfg.Nodes)
	}
	if tr.MeanUtilization() <= 0 {
		t.Error("mean utilization should be positive")
	}
	for _, row := range tr.CPU {
		for _, u := range row {
			if u < 0 || u > 1 {
				t.Fatalf("utilization %v out of range", u)
			}
		}
	}
}

func TestResourceMonitorWindowing(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	m := NewResourceMonitor(c, 300)
	m.Observe()
	if m.CPULoad(0) != 0 {
		t.Errorf("idle cluster CPU = %v", m.CPULoad(0))
	}
	// Place an executor manually and advance the clock via a short run.
	b := testBench(t, "HB.Sort")
	app := &App{ID: 0, Job: workload.Job{Bench: b, InputGB: 10}, RemainingGB: 10, MaxExecutors: 1, State: StateReady}
	if _, err := c.Spawn(app, c.Nodes()[0], 10, 10); err != nil {
		t.Fatal(err)
	}
	m.Observe()
	// Zero elapsed time: EMA must not jump fully.
	if m.CPULoad(0) >= b.CPULoad {
		t.Errorf("windowed CPU %v jumped immediately to %v", m.CPULoad(0), b.CPULoad)
	}
	// Instant monitor follows immediately.
	mi := NewResourceMonitor(c, 0)
	mi.Observe()
	if math.Abs(mi.CPULoad(0)-b.CPULoad) > 1e-9 {
		t.Errorf("instant monitor CPU %v, want %v", mi.CPULoad(0), b.CPULoad)
	}
	if mi.MemoryGB(0) <= 0 {
		t.Error("instant monitor memory should be positive")
	}
}

func TestAppStateString(t *testing.T) {
	states := []AppState{StateQueued, StateProfiling, StateReady, StateRunning, StateDone, AppState(99)}
	for _, s := range states {
		if s.String() == "" {
			t.Errorf("empty string for state %d", int(s))
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	mkJobs := func() []workload.Job {
		return []workload.Job{
			{Bench: testBench(t, "HB.Sort"), InputGB: 100},
			{Bench: testBench(t, "HB.Kmeans"), InputGB: 30},
			{Bench: testBench(t, "BDB.Grep"), InputGB: 300},
		}
	}
	run := func() *Result {
		c := New(DefaultConfig())
		res, err := c.Run(mkJobs(), &fullSpeedScheduler{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MakespanSec != b.MakespanSec {
		t.Errorf("non-deterministic makespan: %v vs %v", a.MakespanSec, b.MakespanSec)
	}
	for i := range a.Apps {
		if a.Apps[i].DoneTime != b.Apps[i].DoneTime {
			t.Errorf("non-deterministic completion for app %d", i)
		}
	}
}
