package cluster

import (
	"math"
	"testing"

	"moespark/internal/workload"
)

// prepTimeScheduler records the simulation time at which Prepare fires for
// each app, then schedules greedily.
type prepTimeScheduler struct {
	prepAt map[int]float64
	plan   ProfilePlan
	full   fullSpeedScheduler
}

func (s *prepTimeScheduler) Name() string { return "test-preptime" }
func (s *prepTimeScheduler) Prepare(c *Cluster, app *App) ProfilePlan {
	if s.prepAt == nil {
		s.prepAt = map[int]float64{}
	}
	s.prepAt[app.ID] = c.Now()
	return s.plan
}
func (s *prepTimeScheduler) Schedule(c *Cluster) { s.full.Schedule(c) }

func openJobs(t *testing.T) (workload.Job, workload.Job) {
	t.Helper()
	return workload.Job{Bench: testBench(t, "HB.Sort"), InputGB: 30},
		workload.Job{Bench: testBench(t, "HB.Kmeans"), InputGB: 30}
}

func TestRunOpenPrepareFiresAtArrival(t *testing.T) {
	j1, j2 := openJobs(t)
	s := &prepTimeScheduler{}
	c := New(DefaultConfig())
	res, err := c.RunOpen([]Submission{{At: 0, Job: j1}, {At: 500, Job: j2}}, s)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.prepAt[0]; got != 0 {
		t.Errorf("app 0 prepared at t=%v, want 0", got)
	}
	if got := s.prepAt[1]; math.Abs(got-500) > 1e-6 {
		t.Errorf("app 1 prepared at t=%v, want its arrival time 500", got)
	}
	if res.Apps[1].SubmitTime != 500 {
		t.Errorf("app 1 SubmitTime %v, want 500", res.Apps[1].SubmitTime)
	}
	if res.Apps[1].StartTime < 500 {
		t.Errorf("app 1 started at %v, before its submission", res.Apps[1].StartTime)
	}
	if res.Apps[1].DoneTime <= res.Apps[1].SubmitTime {
		t.Errorf("app 1 not finished after submission: done=%v", res.Apps[1].DoneTime)
	}
	if w := res.Apps[1].WaitSec(); w < 0 {
		t.Errorf("app 1 wait %v, want >= 0", w)
	}
}

func TestRunOpenIdlesBetweenArrivals(t *testing.T) {
	// A gap much longer than the first job's runtime: the engine must coast
	// through the idle period to the second arrival instead of stalling.
	j1, j2 := openJobs(t)
	c := New(DefaultConfig())
	res, err := c.RunOpen([]Submission{{At: 0, Job: j1}, {At: 10_000, Job: j2}}, &prepTimeScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].DoneTime >= 10_000 {
		t.Errorf("first app done at %v, expected well before the second arrival", res.Apps[0].DoneTime)
	}
	if res.MakespanSec <= 10_000 {
		t.Errorf("makespan %v, want past the second arrival", res.MakespanSec)
	}
}

func TestRunOpenSortsSubmissions(t *testing.T) {
	// Out-of-order submissions are admitted in time order, and FCFS ids
	// follow arrival order.
	j1, j2 := openJobs(t)
	c := New(DefaultConfig())
	res, err := c.RunOpen([]Submission{{At: 300, Job: j1}, {At: 0, Job: j2}}, &prepTimeScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].Job.Bench != j2.Bench || res.Apps[0].SubmitTime != 0 {
		t.Errorf("app 0 should be the t=0 submission, got %v at %v", res.Apps[0].Job, res.Apps[0].SubmitTime)
	}
	if res.Apps[1].SubmitTime != 300 {
		t.Errorf("app 1 SubmitTime %v, want 300", res.Apps[1].SubmitTime)
	}
}

func TestRunOpenRejectsInvalidTimes(t *testing.T) {
	j1, _ := openJobs(t)
	for _, at := range []float64{-1, math.Inf(1), math.NaN()} {
		c := New(DefaultConfig())
		if _, err := c.RunOpen([]Submission{{At: at, Job: j1}}, &prepTimeScheduler{}); err == nil {
			t.Errorf("submission time %v must be rejected", at)
		}
	}
	c := New(DefaultConfig())
	if _, err := c.RunOpen(nil, &prepTimeScheduler{}); err == nil {
		t.Error("empty open run must error")
	}
}

func TestRunOpenProfilingDelayedToArrival(t *testing.T) {
	// With a profiling plan, the app's ReadyTime must trail its arrival by
	// the profiling duration, not start from t=0.
	j1, _ := openJobs(t)
	s := &prepTimeScheduler{plan: ContributingProfile(1)}
	c := New(DefaultConfig())
	res, err := c.RunOpen([]Submission{{At: 200, Job: j1}}, s)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Apps[0]
	if a.ReadyTime <= 200 {
		t.Errorf("ready at %v, want after the 200s arrival plus profiling", a.ReadyTime)
	}
	if a.WaitSec() <= 0 {
		t.Errorf("wait %v, want positive (profiling counts as waiting)", a.WaitSec())
	}
}

// batchSizeScheduler records how many apps were registered when each
// Prepare fired.
type batchSizeScheduler struct {
	sizes []int
	full  fullSpeedScheduler
}

func (s *batchSizeScheduler) Name() string { return "test-batchsize" }
func (s *batchSizeScheduler) Prepare(c *Cluster, _ *App) ProfilePlan {
	s.sizes = append(s.sizes, len(c.Apps()))
	return ProfilePlan{}
}
func (s *batchSizeScheduler) Schedule(c *Cluster) { s.full.Schedule(c) }

func TestPrepareSeesWholeSimultaneousBatch(t *testing.T) {
	// Pre-refactor closed-batch semantics: every app of a batch is
	// registered before any Prepare fires, so a policy can size its plans
	// from the whole batch.
	j1, j2 := openJobs(t)
	s := &batchSizeScheduler{}
	c := New(DefaultConfig())
	if _, err := c.Run([]workload.Job{j1, j2, j1}, s); err != nil {
		t.Fatal(err)
	}
	if len(s.sizes) != 3 {
		t.Fatalf("Prepare fired %d times, want 3", len(s.sizes))
	}
	for i, n := range s.sizes {
		if n != 3 {
			t.Errorf("Prepare %d saw %d apps, want the whole batch of 3", i, n)
		}
	}
}

func TestStartTimeSurvivesRespawn(t *testing.T) {
	// An OOM respawn sends the app back through StateReady; its recorded
	// execution start (which feeds WaitSec) must not be rewritten.
	j1, _ := openJobs(t)
	c := New(DefaultConfig())
	app := &App{
		ID: 0, Job: j1, RemainingGB: j1.InputGB, MaxExecutors: 2,
		State: StateReady, SubmitTime: 0, ReadyTime: 0, StartTime: -1, DoneTime: -1,
	}
	c.apps = []*App{app}
	c.now = 500
	if _, err := c.Spawn(app, c.Nodes()[0], 10, 10); err != nil {
		t.Fatal(err)
	}
	if app.StartTime != 500 {
		t.Fatalf("first spawn StartTime %v, want 500", app.StartTime)
	}
	// Simulate the OOM path: executor gone, app back to ready, later respawn.
	c.removeExecutor(app.Executors[0])
	app.State = StateReady
	c.now = 2000
	if _, err := c.Spawn(app, c.Nodes()[1], 10, 10); err != nil {
		t.Fatal(err)
	}
	if app.StartTime != 500 {
		t.Errorf("respawn rewrote StartTime to %v, want original 500", app.StartTime)
	}
	if app.WaitSec() != 500 {
		t.Errorf("WaitSec %v, want 500", app.WaitSec())
	}
}

func TestSubmissionsFromArrivals(t *testing.T) {
	j1, j2 := openJobs(t)
	subs := Submissions([]workload.Arrival{{At: 1, Job: j1}, {At: 2, Job: j2}})
	if len(subs) != 2 || subs[0].At != 1 || subs[1].At != 2 || subs[0].Job.Bench != j1.Bench {
		t.Errorf("conversion broken: %+v", subs)
	}
}

// batchPrepScheduler implements BatchScheduler and records the waves it was
// handed; Prepare records any per-app fallback calls.
type batchPrepScheduler struct {
	waves    [][]int // app IDs per PrepareBatch call
	prepared []int   // app IDs handed to per-app Prepare
	plan     ProfilePlan
	full     fullSpeedScheduler
}

func (s *batchPrepScheduler) Name() string { return "test-batchprep" }
func (s *batchPrepScheduler) Prepare(c *Cluster, app *App) ProfilePlan {
	s.prepared = append(s.prepared, app.ID)
	return s.plan
}
func (s *batchPrepScheduler) PrepareBatch(c *Cluster, apps []*App) []ProfilePlan {
	wave := make([]int, len(apps))
	plans := make([]ProfilePlan, len(apps))
	for i, a := range apps {
		wave[i] = a.ID
		plans[i] = s.plan
	}
	s.waves = append(s.waves, wave)
	return plans
}
func (s *batchPrepScheduler) Schedule(c *Cluster) { s.full.Schedule(c) }

// TestAdmitArrivalsUsesBatchPrepare pins the batched admission plumbing: a
// BatchScheduler gets each simultaneous wave in one arrival-ordered call,
// per-app Prepare never fires, and plans apply with the per-app semantics
// (profiling volume, ready-state transition).
func TestAdmitArrivalsUsesBatchPrepare(t *testing.T) {
	j1, j2 := openJobs(t)
	s := &batchPrepScheduler{plan: ContributingProfile(1)}
	c := New(DefaultConfig())
	subs := []Submission{{At: 0, Job: j1}, {At: 0, Job: j2}, {At: 0, Job: j1}, {At: 700, Job: j2}}
	res, err := c.RunOpen(subs, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.prepared) != 0 {
		t.Errorf("per-app Prepare fired for apps %v despite the batch face", s.prepared)
	}
	if len(s.waves) != 2 {
		t.Fatalf("PrepareBatch fired %d times, want 2 (one per admission instant)", len(s.waves))
	}
	if got := s.waves[0]; len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("first wave %v, want [0 1 2] in arrival order", got)
	}
	if got := s.waves[1]; len(got) != 1 || got[0] != 3 {
		t.Errorf("second wave %v, want [3]", got)
	}
	for _, a := range res.Apps {
		if a.ProfileGB != 1 {
			t.Errorf("app %d ProfileGB %v, want the batch plan's 1", a.ID, a.ProfileGB)
		}
		if a.ReadyTime <= a.SubmitTime {
			t.Errorf("app %d ready at %v despite profiling after arrival %v", a.ID, a.ReadyTime, a.SubmitTime)
		}
	}
}

// TestBatchPrepareMatchesSequential runs the same open stream through a
// batch-capable scheduler and a per-app twin and requires identical engine
// results — the engine-level half of the batched-gating exactness argument.
func TestBatchPrepareMatchesSequential(t *testing.T) {
	j1, j2 := openJobs(t)
	subs := []Submission{{At: 0, Job: j1}, {At: 0, Job: j2}, {At: 400, Job: j1}}
	cb := New(DefaultConfig())
	rb, err := cb.RunOpen(subs, &batchPrepScheduler{plan: ContributingProfile(1)})
	if err != nil {
		t.Fatal(err)
	}
	cs := New(DefaultConfig())
	rs, err := cs.RunOpen(subs, &prepTimeScheduler{plan: ContributingProfile(1)})
	if err != nil {
		t.Fatal(err)
	}
	if rb.MakespanSec != rs.MakespanSec {
		t.Errorf("makespan differs: batch %v, sequential %v", rb.MakespanSec, rs.MakespanSec)
	}
	for i := range rb.Apps {
		b, s := rb.Apps[i], rs.Apps[i]
		if b.ReadyTime != s.ReadyTime || b.StartTime != s.StartTime || b.DoneTime != s.DoneTime {
			t.Errorf("app %d timing differs: batch (%v,%v,%v) vs sequential (%v,%v,%v)",
				i, b.ReadyTime, b.StartTime, b.DoneTime, s.ReadyTime, s.StartTime, s.DoneTime)
		}
	}
}
