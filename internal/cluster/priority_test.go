package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"moespark/internal/workload"
)

var (
	batchClass   = workload.Class{Name: "batch", Weight: 1, Preemptible: true}
	latencyClass = workload.Class{Name: "latency", Weight: 4}
)

// TestWeightedAdmissionOrder submits a batch and a latency-sensitive job at
// the same instant: the higher-weight class must be admitted and scheduled
// first (weighted FCFS), so the latency job starts before the batch job on a
// one-node cluster.
func TestWeightedAdmissionOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	c := New(cfg)
	subs := []Submission{
		{At: 0, Job: testJob(t, 10), Class: batchClass},
		{At: 0, Job: testJob(t, 10), Class: latencyClass},
	}
	res, err := c.RunOpen(subs, &fullSpeedScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Apps[0].Class.Name; got != "latency" {
		t.Fatalf("first admitted app is %q, want the higher-weight latency class", got)
	}
	lat, batch := res.Apps[0], res.Apps[1]
	if lat.WaitSec() >= batch.WaitSec() {
		t.Errorf("latency waited %.1fs, batch %.1fs: weighted FCFS must start the heavy class first",
			lat.WaitSec(), batch.WaitSec())
	}
}

// TestUntaggedSubmissionsKeepFCFS pins the single-class path: without class
// tags, simultaneous submissions keep their original order exactly as before
// priority classes existed.
func TestUntaggedSubmissionsKeepFCFS(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	c := New(cfg)
	subs := []Submission{
		{At: 0, Job: testJob(t, 10)},
		{At: 0, Job: testJob(t, 5)},
	}
	res, err := c.RunOpen(subs, &fullSpeedScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].Job.InputGB != 10 || res.Apps[1].Job.InputGB != 5 {
		t.Errorf("untagged simultaneous submissions reordered: %v then %v GB",
			res.Apps[0].Job.InputGB, res.Apps[1].Job.InputGB)
	}
}

// TestPreemptChargeback preempts an executor directly: the kill must reuse
// the reclaimExecutor charge-back (remaining work restored), count in
// App.PreemptKills and TotalPreemptKills, and validate class rules.
func TestPreemptChargeback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	c := New(cfg)
	n := c.Nodes()[0]

	victim := c.AddReadyApp(testJob(t, 30))
	victim.Class = batchClass
	e, err := c.Spawn(victim, n, 40, 30)
	if err != nil {
		t.Fatal(err)
	}
	hi := c.AddReadyApp(testJob(t, 10))
	hi.Class = latencyClass

	// Rule checks before the kill.
	if err := c.Preempt(e, victim); !errors.Is(err, ErrNoPriority) {
		t.Errorf("self-preemption: err = %v, want ErrNoPriority", err)
	}
	peer := c.AddReadyApp(testJob(t, 10))
	peer.Class = batchClass
	if err := c.Preempt(e, peer); !errors.Is(err, ErrNoPriority) {
		t.Errorf("equal-weight preemption: err = %v, want ErrNoPriority", err)
	}

	if err := c.Preempt(e, hi); err != nil {
		t.Fatal(err)
	}
	if victim.PreemptKills != 1 || c.TotalPreemptKills() != 1 {
		t.Errorf("preempt kills = %d/%d, want 1/1", victim.PreemptKills, c.TotalPreemptKills())
	}
	if len(victim.Executors) != 0 || len(n.Executors) != 0 {
		t.Error("victim executor not removed")
	}
	if victim.State != StateReady {
		t.Errorf("victim state = %v, want ready (back to the queue)", victim.State)
	}
	if victim.RemainingGB != 30 {
		t.Errorf("victim remaining = %v GB, want the full 30 charged back", victim.RemainingGB)
	}

	// A non-preemptible victim must be refused.
	prot := c.AddReadyApp(testJob(t, 10))
	prot.Class = workload.Class{Name: "prod", Weight: 2}
	pe, err := c.Spawn(prot, n, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Preempt(pe, hi); !errors.Is(err, ErrNotPreemptible) {
		t.Errorf("non-preemptible victim: err = %v, want ErrNotPreemptible", err)
	}
}

// TestPreemptForFreesOneNode packs two nodes with preemptible batch work and
// asks for room: PreemptFor must free the target memory on a single node
// with the fewest kills, newest first, and report zero kills when a node
// already fits.
func TestPreemptForFreesOneNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	c := New(cfg)
	n0, n1 := c.Nodes()[0], c.Nodes()[1]

	// Node 0: two batch executors (20 GB + 30 GB). Node 1: one 50 GB batch
	// executor.
	b1 := c.AddReadyApp(testJob(t, 30))
	b1.Class = batchClass
	if _, err := c.Spawn(b1, n0, 20, 10); err != nil {
		t.Fatal(err)
	}
	b2 := c.AddReadyApp(testJob(t, 30))
	b2.Class = batchClass
	if _, err := c.Spawn(b2, n0, 30, 10); err != nil {
		t.Fatal(err)
	}
	b3 := c.AddReadyApp(testJob(t, 30))
	b3.Class = batchClass
	if _, err := c.Spawn(b3, n1, 50, 10); err != nil {
		t.Fatal(err)
	}

	hi := c.AddReadyApp(testJob(t, 10))
	hi.Class = latencyClass

	// Allocatable per node is 0.92*60 = 55.2 GB; node 0 has 5.2 free, node 1
	// has 5.2 free. Asking for 30 GB: node 0 reaches it by killing only its
	// newest executor (30 GB), node 1 needs its whole 50 GB executor — both
	// are one kill, so scan order picks node 0 and its newest victim.
	if got := c.PreemptFor(hi, 30, 0, 0); got != 1 {
		t.Fatalf("PreemptFor killed %d, want 1", got)
	}
	if b2.PreemptKills != 1 {
		t.Errorf("newest victim on node 0 should die; kills: b1=%d b2=%d b3=%d",
			b1.PreemptKills, b2.PreemptKills, b3.PreemptKills)
	}
	if free := n0.FreeGB(); free < 30 {
		t.Errorf("node 0 free = %.1f GB after preemption, want >= 30", free)
	}
	// Now a node fits: further calls must be no-ops.
	if got := c.PreemptFor(hi, 30, 0, 0); got != 0 {
		t.Errorf("PreemptFor killed %d with room already free, want 0", got)
	}
	// An oversized demand clamps per node and degrades to a whole-node
	// takeover: node 0 empties with one more kill (its last 20 GB executor),
	// never more.
	if got := c.PreemptFor(hi, 10_000, 0, 0); got != 1 {
		t.Errorf("PreemptFor killed %d for an oversized demand, want 1 (whole-node takeover)", got)
	}
	if b1.PreemptKills != 1 || len(n0.Executors) != 0 {
		t.Errorf("takeover should empty node 0: b1 kills=%d, %d executors left",
			b1.PreemptKills, len(n0.Executors))
	}
	if c.TotalPreemptKills() != 2 {
		t.Errorf("total preempt kills = %d, want 2", c.TotalPreemptKills())
	}
}

// TestPreemptForOpensAppSlot pins the per-node app-cap constraint: with
// MaxAppsPerNode-style caps, a node can be memory-rich yet slot-starved, and
// PreemptFor must free a slot rather than report the node as already
// satisfying.
func TestPreemptForOpensAppSlot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	c := New(cfg)
	n := c.Nodes()[0]
	b1 := c.AddReadyApp(testJob(t, 10))
	b1.Class = batchClass
	if _, err := c.Spawn(b1, n, 5, 10); err != nil {
		t.Fatal(err)
	}
	b2 := c.AddReadyApp(testJob(t, 10))
	b2.Class = batchClass
	if _, err := c.Spawn(b2, n, 5, 10); err != nil {
		t.Fatal(err)
	}
	hi := c.AddReadyApp(testJob(t, 10))
	hi.Class = latencyClass
	// Plenty of memory free (45.2 GB) but both app slots taken under a
	// pairwise-style cap of 2: one kill must open a slot.
	if got := c.PreemptFor(hi, 10, 0, 2); got != 1 {
		t.Fatalf("PreemptFor killed %d under an app cap, want 1", got)
	}
	if n.AppCount() != 1 {
		t.Errorf("app count = %d after slot preemption, want 1", n.AppCount())
	}
	// With a free slot the same call is a no-op.
	if got := c.PreemptFor(hi, 10, 0, 2); got != 0 {
		t.Errorf("PreemptFor killed %d with a slot free, want 0", got)
	}
}

// TestGrowRejectsReservationShrink is the regression test for the admission
// bypass: Grow used to accept a negative reservation delta, silently
// shrinking ReservedGB below the executor's admitted footprint.
func TestGrowRejectsReservationShrink(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	c := New(cfg)
	app := c.AddReadyApp(testJob(t, 20))
	e, err := c.Spawn(app, c.Nodes()[0], 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Grow(e, 20, 12); !errors.Is(err, ErrShrinkReservation) {
		t.Errorf("reservation shrink: err = %v, want ErrShrinkReservation", err)
	}
	if e.ReservedGB != 30 || e.ItemsGB != 10 {
		t.Errorf("failed Grow mutated the executor: reserve %v items %v", e.ReservedGB, e.ItemsGB)
	}
	// Same reservation with more items stays legal.
	if err := c.Grow(e, 30, 12); err != nil {
		t.Errorf("non-shrinking Grow rejected: %v", err)
	}
}

// foreignInjector adds a foreign co-runner to node 1 at the first scheduling
// event after the clock started moving, modelling a mid-run driver.
type foreignInjector struct {
	inner fullSpeedScheduler
	task  *ForeignTask
	err   error
}

func (s *foreignInjector) Name() string                       { return "foreign-injector" }
func (s *foreignInjector) Prepare(*Cluster, *App) ProfilePlan { return ProfilePlan{} }
func (s *foreignInjector) Schedule(c *Cluster) {
	if s.task == nil && s.err == nil && c.Now() >= 1 {
		s.task, s.err = c.AddForeign(1, "parsec-canneal", 0.3, 2, 30)
	}
	s.inner.Schedule(c)
}

// TestAddForeignMidRunStartTime is the regression test for the hard-coded
// StartTime: a foreign task added while the clock is at t must record t, not
// 0.
func TestAddForeignMidRunStartTime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	c := New(cfg)
	inj := &foreignInjector{}
	res, err := c.Run([]workload.Job{testJob(t, 40)}, inj)
	if err != nil {
		t.Fatal(err)
	}
	if inj.err != nil {
		t.Fatal(inj.err)
	}
	if inj.task == nil {
		t.Fatal("driver never injected the foreign task")
	}
	if inj.task.StartTime < 1 {
		t.Errorf("mid-run foreign task StartTime = %v, want the injection clock (>= 1, not the hard-coded 0)", inj.task.StartTime)
	}
	if inj.task.DoneTime <= inj.task.StartTime {
		t.Errorf("foreign task done at %v, before its start %v", inj.task.DoneTime, inj.task.StartTime)
	}
	if res.MakespanSec < inj.task.DoneTime {
		t.Errorf("makespan %v excludes the foreign completion %v", res.MakespanSec, inj.task.DoneTime)
	}
}

// TestDrainThenLaterEventCompletes pins the timing-independence of event
// scripts: a drain followed by a later fail of the same node must not abort
// the run when the node happens to empty (and decommission) first.
func TestDrainThenLaterEventCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	c := New(cfg)
	if err := c.ScheduleNodeEvents(
		NodeEvent{At: 1, Kind: NodeDrain, Node: 0},
		NodeEvent{At: 10_000, Kind: NodeFail, Node: 0}, // fires long after the drain completed
	); err != nil {
		t.Fatal(err)
	}
	// Keep the run alive past the late event with a long foreign task on the
	// surviving node.
	if _, err := c.AddForeign(1, "parsec-ferret", 0.4, 2, 11_000); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run([]workload.Job{testJob(t, 20)}, &fullSpeedScheduler{})
	if err != nil {
		t.Fatalf("run aborted by a fail event against the decommissioned node: %v", err)
	}
	if got := c.Nodes()[0].State(); got != NodeRemoved {
		t.Errorf("node 0 state = %v, want removed (the stale fail must be a no-op)", got)
	}
	if res.FailKills != 0 {
		t.Errorf("fail kills = %d, want 0", res.FailKills)
	}
}

// TestNewPanicsOnInvalidConfig is the regression test for the swallowed
// constructor error: New used to return a zero-node cluster that later died
// with a misleading "simulation stalled" message.
func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New with zero nodes did not panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "node spec") {
			t.Errorf("panic %q does not name the real cause", msg)
		}
	}()
	New(Config{})
}

// TestDrainDecommissionWaitsForForeign pins the full drain lifecycle: a
// draining node leaves the fleet only after its last executor AND foreign
// task finish, with StateTime stamped at the decommission instant; a drained
// idle node decommissions at the drain itself.
func TestDrainDecommissionWaitsForForeign(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 3
	c := New(cfg)
	if _, err := c.AddForeign(0, "parsec-ferret", 0.4, 2, 120); err != nil {
		t.Fatal(err)
	}
	if err := c.ScheduleNodeEvents(
		NodeEvent{At: 1, Kind: NodeDrain, Node: 0},
		NodeEvent{At: 5, Kind: NodeDrain, Node: 2}, // node 2 stays idle
	); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run([]workload.Job{testJob(t, 20)}, &fullSpeedScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	n0, n2 := c.Nodes()[0], c.Nodes()[2]
	if n0.State() != NodeRemoved {
		t.Fatalf("busy drained node state = %v, want removed after work finished", n0.State())
	}
	foreignDone := res.Foreign[0].DoneTime
	if n0.StateTime < foreignDone {
		t.Errorf("node 0 decommissioned at %v, before its foreign task finished at %v", n0.StateTime, foreignDone)
	}
	if n2.State() != NodeRemoved {
		t.Fatalf("idle drained node state = %v, want removed immediately", n2.State())
	}
	if n2.StateTime < 5 || n2.StateTime > 5.1 {
		t.Errorf("idle drained node decommissioned at %v, want ~5 (the drain instant)", n2.StateTime)
	}
	// A later event against a decommissioned node is a no-op, not an error:
	// whether the drain completes before the event fires depends on workload
	// timing, which must not decide a run's validity.
	if err := c.ScheduleNodeEvents(NodeEvent{At: 0, Kind: NodeFail, Node: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.applyNodeEvents(); err != nil {
		t.Errorf("fail event against a removed node errored: %v", err)
	}
	if n2.State() != NodeRemoved {
		t.Errorf("no-op event changed the removed node's state to %v", n2.State())
	}
}
