package cluster

// This file is the sharded event loop: the engine's per-node work split
// across Config.Shards partitions, synchronised at every event boundary.
//
// One event-loop iteration is one epoch. The serial phases — lifecycle
// events, drain completion, admission, the policy's Schedule, deadline
// refresh, event selection, completion pops — are inherently global (they
// read and mutate cross-shard state: admission waves, preemption targeting,
// fleet-aware sizing, drain migration) and stay exactly the single-loop code.
// What fans out is the per-node half of rate recomputation, the engine's
// dominant cost on co-location-heavy fleets: after a serial settle/OOM
// prepass over the dirty nodes in node-ID order (the order the single loop
// uses — OOM charge-backs on different nodes can touch the same application,
// so this order is semantics), each shard recomputes the pure rate formulas
// of its own dirty nodes concurrently, then the loop rejoins at the epoch
// edge before deadlines are refreshed. Anything that crosses shards — an
// application spanning nodes on different shards, a storm, a preemption — is
// therefore applied in canonical engine order on the serial side of the
// barrier.
//
// Bit-identity at any shard count holds because the parallel half is pure
// per-node arithmetic over state the prepass froze: the rate formula reads
// only the node's own executor/foreign lists, spec, CPU cap and startup/
// migration gates, none of which another node's settle or OOM kill can
// change, and it writes only the node's own rates, its wake time and its own
// shard's wake heap (each node belongs to exactly one shard, so no slot is
// written twice). Per-shard wake heaps keep the pop order irrelevant: a
// wake-up only re-dirties its node, and the dirty list is re-sorted by node
// ID before every pass. shards=1 runs the identical code composition with no
// pool and a single wake heap — bit-for-bit today's engine, pinned by the
// differential suite across shard counts.

// ShardStat summarises one event-loop shard's share of a run (Result.ShardStats).
type ShardStat struct {
	// Shard is the partition index.
	Shard int
	// Nodes counts the nodes homed on the shard at the end of the run.
	Nodes int
	// Rated counts the per-node rate recomputations the shard executed.
	Rated int64
	// Wakes counts the startup/migration gate expiries served off the shard's
	// wake heap.
	Wakes int64
}

// assignShards homes every initial node on an event-loop partition. When the
// whole fleet carries rack topology, racks (in first-appearance order) are
// packed into contiguous shard groups balanced by node count, so a rack —
// the failure domain correlated storms hit — never straddles shards;
// otherwise nodes fall back to contiguous ID blocks. Either way the
// assignment is a pure function of the spec list and the shard count.
func (c *Cluster) assignShards() {
	c.rackShard = nil
	if c.shards <= 1 {
		return
	}
	racked := true
	for _, n := range c.nodes {
		if n.Spec.Rack == "" {
			racked = false
			break
		}
	}
	if !racked {
		for i, n := range c.nodes {
			n.shard = i * c.shards / len(c.nodes)
		}
		return
	}
	c.rackShard = make(map[string]int)
	var racks []string
	rackNodes := make(map[string]int)
	for _, n := range c.nodes {
		if _, ok := rackNodes[n.Spec.Rack]; !ok {
			racks = append(racks, n.Spec.Rack)
		}
		rackNodes[n.Spec.Rack]++
	}
	assigned, shard := 0, 0
	for _, r := range racks {
		// Advance once the current shard holds its proportional share of the
		// fleet, never past the last shard.
		for shard < c.shards-1 && assigned >= (shard+1)*len(c.nodes)/c.shards {
			shard++
		}
		c.rackShard[r] = shard
		assigned += rackNodes[r]
	}
	for _, n := range c.nodes {
		n.shard = c.rackShard[n.Spec.Rack]
	}
}

// joinShard picks the partition of a node joining mid-run: its rack's shard
// when the initial fleet was rack-partitioned and the rack is known (a
// backfill rejoining its rack lands with its peers), otherwise its ID modulo
// the shard count. Deterministic either way — IDs come from a monotone
// counter.
func (c *Cluster) joinShard(id int, spec NodeSpec) int {
	if c.shards <= 1 {
		return 0
	}
	if spec.Rack != "" {
		if s, ok := c.rackShard[spec.Rack]; ok {
			return s
		}
	}
	return id % c.shards
}

// rateDirtySharded is the sharded rate pass (the dirty list is already sorted
// by node ID): the serial settle/OOM prepass in that order, then the pure
// rate halves fanned out across the shard pool, one partition per shard. See
// the file comment for why the fan-out is bit-identical to the single loop.
func (c *Cluster) rateDirtySharded() {
	// Index walk, not a range: enforceOOM inside the prepass can markDirty
	// (today only the node being settled, whose flag is still set, but an
	// appended node must be settled too, exactly as in the single loop).
	for i := 0; i < len(c.dirtyNodes); i++ {
		c.settleNode(c.dirtyNodes[i])
	}
	if cap(c.shardDirty) < c.shards {
		c.shardDirty = make([][]*Node, c.shards)
	}
	c.shardDirty = c.shardDirty[:c.shards]
	for s := range c.shardDirty {
		c.shardDirty[s] = c.shardDirty[s][:0]
	}
	for _, n := range c.dirtyNodes {
		c.shardDirty[n.shard] = append(c.shardDirty[n.shard], n)
	}
	c.pool.Run(func(part int) {
		for _, n := range c.shardDirty[part] {
			c.computeNodeRates(n, part)
		}
	})
	for _, n := range c.dirtyNodes {
		n.dirty = false
	}
	c.dirtyNodes = c.dirtyNodes[:0]
}

// Shards returns the resolved event-loop partition count (1 on a single-loop
// cluster).
func (c *Cluster) Shards() int { return c.shards }
