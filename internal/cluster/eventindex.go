package cluster

import "math"

// This file is the engine's event index: the bookkeeping that makes one
// event-loop iteration cost proportional to *what changed* instead of to the
// size of the whole run. The scan-based engine (kept verbatim in
// engine_ref.go as the differential-testing reference) rescanned every
// application, foreign task and node on every event, making long arrival
// streams quadratic. The index splits the engine's event sources in two:
//
//   - Exact-time events — pending submissions, node lifecycle events, trace
//     samples, and executor startup expiries — have immutable absolute
//     timestamps. Submissions and node events live in time-sorted queues
//     (O(1) head), the next trace sample is a single stored instant, and
//     startup expiries live in the lazy-deletion min-heap below.
//
//   - Rate-driven completions — profiling apps, running apps, foreign
//     tasks — have deadlines of the form remaining/rate, where remaining is
//     re-integrated with an explicit floating-point subtraction on every
//     event. Those deadlines therefore move by an ulp or two each iteration,
//     so a heap key recorded at push time drifts away from the freshly
//     computed scan value and would eventually pick a different event dt.
//     Reproducibility is a hard invariant here (golden regression tests pin
//     the engine bit-for-bit), so these candidates are *scanned* — but only
//     over the compact active sets (active, profiling, activeForeign), which
//     are bounded by in-flight work rather than stream length.
//
// The same change-proportionality applies to rate recomputation: rates are
// deterministic functions of node-local state, so a node whose executors,
// foreign tasks and startup gates did not change since the last pass would
// recompute to bit-identical values. Such nodes are skipped entirely; every
// mutation that can change a rate marks its node dirty (see markDirty), and
// startup expiries — the one rate change that arrives with the clock rather
// than with a mutation — are re-dirtied through the wake heap.

// nodeWake is one scheduled rate wake-up: node n must be re-dirtied at time
// at because an executor's startup gate expires then.
type nodeWake struct {
	at float64
	n  *Node
}

// wakeHeap is a hand-rolled min-heap of node wake-ups ordered by time, with
// lazy deletion: an entry is live only while its node's wakeAt still equals
// the entry's time. Re-dirtying a node rewrites n.wakeAt (and pushes a fresh
// entry if a future expiry remains), which invalidates any older entries in
// place; they are discarded when they surface at the top. The invariant is
// one-directional — whenever n.wakeAt is finite, an entry with exactly that
// time is somewhere in the heap — so a peek never misses a due wake-up.
type wakeHeap []nodeWake

// push adds a wake-up entry.
func (h *wakeHeap) push(at float64, n *Node) {
	*h = append(*h, nodeWake{at: at, n: n})
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].at <= (*h)[i].at {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

// pop removes and returns the earliest entry; callers must check ok.
func (h *wakeHeap) pop() (nodeWake, bool) {
	if len(*h) == 0 {
		return nodeWake{}, false
	}
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	(*h)[last] = nodeWake{}
	*h = (*h)[:last]
	h.siftDown(0)
	return top, true
}

// siftDown restores the heap order below index i.
func (h *wakeHeap) siftDown(i int) {
	n := len(*h)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && (*h)[left].at < (*h)[smallest].at {
			smallest = left
		}
		if right < n && (*h)[right].at < (*h)[smallest].at {
			smallest = right
		}
		if smallest == i {
			return
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
}

// markDirty queues a node for the next rate recomputation pass. Every
// mutation that can change an executor or foreign rate on the node must call
// it: executor membership changes (Spawn, removeExecutor — which covers app
// completion, OOM kills, node-failure kills and preemption), reservation and
// allocation changes (Grow), foreign-task arrival and completion, node
// lifecycle events, and startup-expiry wake-ups. Idempotent per pass.
func (c *Cluster) markDirty(n *Node) {
	if !n.dirty {
		n.dirty = true
		c.dirtyNodes = append(c.dirtyNodes, n)
	}
}

// wakeExpiredNodes pops every due wake-up off the heap and re-dirties its
// node, discarding entries invalidated by a later recompute. The comparison
// is strict-past (at <= now), mirroring the startupUntil > now gate in the
// rate formula: the node recomputes on exactly the event where the gate
// flips.
func (c *Cluster) wakeExpiredNodes() {
	for len(c.wakes) > 0 {
		top := c.wakes[0]
		if top.n.wakeAt != top.at {
			// Stale: the node's wake time was rewritten since this entry was
			// pushed.
			c.wakes.pop()
			continue
		}
		if top.at > c.now {
			return
		}
		c.wakes.pop()
		top.n.wakeAt = math.Inf(1)
		c.markDirty(top.n)
	}
}

// resetIndex rebuilds the event index for a fresh run: empty active sets,
// zeroed done-counters (pre-registered foreign tasks may already be done
// from an earlier run on the same cluster), every node dirty (no rates have
// been computed for this run), and no pending wake-ups.
func (c *Cluster) resetIndex() {
	c.active = c.active[:0]
	c.profiling = c.profiling[:0]
	c.doneApps = 0
	c.activeForeign = c.activeForeign[:0]
	c.doneForeign = 0
	for _, f := range c.foreign {
		if f.done {
			c.doneForeign++
		} else {
			c.activeForeign = append(c.activeForeign, f)
		}
	}
	c.wakes = c.wakes[:0]
	c.draining = c.draining[:0]
	for _, n := range c.nodes {
		n.wakeAt = math.Inf(1)
		if n.state == NodeDraining {
			c.draining = append(c.draining, n)
		}
		c.markDirty(n)
	}
}

// ActiveApps returns the submitted applications that have not completed, in
// submission (FCFS) order. It is the scheduler-facing view of the engine's
// active set: policies that walk applications every scheduling event should
// iterate it instead of Apps(), which includes every already-finished
// application of the stream. Callers must not mutate the returned slice.
func (c *Cluster) ActiveApps() []*App { return c.active }
