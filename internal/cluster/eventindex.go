package cluster

import "math"

// This file is the engine's event index: the bookkeeping that makes one
// event-loop iteration cost proportional to *what changed* instead of to the
// size of the whole run. The scan-based engine (kept verbatim in
// engine_ref.go as the differential-testing reference) rescanned every
// application, foreign task and node on every event, making long arrival
// streams quadratic. The index splits the engine's event sources in two:
//
//   - Exact-time events — pending submissions, node lifecycle events, trace
//     samples, and executor startup expiries — have immutable absolute
//     timestamps. Submissions and node events live in time-sorted queues
//     (O(1) head), the next trace sample is a single stored instant, and
//     startup expiries live in the lazy-deletion min-heap below.
//
//   - Rate-driven completions — profiling apps, running apps, foreign
//     tasks — have deadlines of the form settledAt + remaining/rate. Progress
//     is integrated settle-on-rate-change: remaining is exact at the entity's
//     last settle point and is brought forward in ONE multiply when the next
//     rate change (spawn, grow, kill, foreign arrival/completion, node join/
//     fail, paging transition, startup expiry, profiling-share change)
//     actually arrives, instead of an explicit subtraction on every event.
//     Between settle points (settledAt, remaining, rate) are all constants,
//     so the absolute deadline is a stable, reproducible float: it can be
//     registered on the completion heap below and trusted verbatim until the
//     next rate change re-registers it. The pre-settle engine re-integrated
//     remaining every event, which moved the deadline by an ulp or two per
//     iteration and made heap keys drift from fresh scan values; that is why
//     completions used to be scanned, and why switching to settle-based
//     integration deliberately broke bit-for-bit agreement with the PR1-5
//     goldens (re-captured once, see README "Engine internals").
//
// The same change-proportionality applies to rate recomputation: rates are
// deterministic functions of node-local state, so a node whose executors,
// foreign tasks and startup gates did not change since the last pass would
// recompute to bit-identical values. Such nodes are skipped entirely; every
// mutation that can change a rate marks its node dirty (see markDirty), and
// startup expiries — the one rate change that arrives with the clock rather
// than with a mutation — are re-dirtied through the wake heap.

// nodeWake is one scheduled rate wake-up: node n must be re-dirtied at time
// at because an executor's startup gate expires then.
type nodeWake struct {
	at float64
	n  *Node
}

// wakeHeap is a hand-rolled min-heap of node wake-ups ordered by time, with
// lazy deletion: an entry is live only while its node's wakeAt still equals
// the entry's time. Re-dirtying a node rewrites n.wakeAt (and pushes a fresh
// entry if a future expiry remains), which invalidates any older entries in
// place; they are discarded when they surface at the top. The invariant is
// one-directional — whenever n.wakeAt is finite, an entry with exactly that
// time is somewhere in the heap — so a peek never misses a due wake-up.
type wakeHeap []nodeWake

// push adds a wake-up entry.
func (h *wakeHeap) push(at float64, n *Node) {
	*h = append(*h, nodeWake{at: at, n: n})
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].at <= (*h)[i].at {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

// pop removes and returns the earliest entry; callers must check ok.
func (h *wakeHeap) pop() (nodeWake, bool) {
	if len(*h) == 0 {
		return nodeWake{}, false
	}
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	(*h)[last] = nodeWake{}
	*h = (*h)[:last]
	h.siftDown(0)
	return top, true
}

// siftDown restores the heap order below index i.
func (h *wakeHeap) siftDown(i int) {
	n := len(*h)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && (*h)[left].at < (*h)[smallest].at {
			smallest = left
		}
		if right < n && (*h)[right].at < (*h)[smallest].at {
			smallest = right
		}
		if smallest == i {
			return
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
}

// markDirty queues a node for the next rate recomputation pass. Every
// mutation that can change an executor or foreign rate on the node must call
// it: executor membership changes (Spawn, removeExecutor — which covers app
// completion, OOM kills, node-failure kills and preemption), reservation and
// allocation changes (Grow), foreign-task arrival and completion, node
// lifecycle events, and startup-expiry wake-ups. Idempotent per pass.
func (c *Cluster) markDirty(n *Node) {
	if !n.dirty {
		n.dirty = true
		c.dirtyNodes = append(c.dirtyNodes, n)
	}
}

// wakeExpiredNodes pops every due wake-up off each shard's heap and
// re-dirties its node, discarding entries invalidated by a later recompute.
// The comparison is strict-past (at <= now), mirroring the startupUntil > now
// gate in the rate formula: the node recomputes on exactly the event where
// the gate flips. Shards are visited in order, but a wake-up only marks its
// node dirty and the dirty list is re-sorted by node ID before every rate
// pass, so the visit order cannot be observed.
func (c *Cluster) wakeExpiredNodes() {
	for s := range c.wakes {
		h := &c.wakes[s]
		for len(*h) > 0 {
			top := (*h)[0]
			if top.n.wakeAt != top.at {
				// Stale: the node's wake time was rewritten since this entry
				// was pushed.
				h.pop()
				continue
			}
			if top.at > c.now {
				break
			}
			h.pop()
			top.n.wakeAt = math.Inf(1)
			c.shardWakes[s]++
			c.markDirty(top.n)
		}
	}
}

// completionEntry is one scheduled completion: the app (or foreign task, when
// app is nil) is expected to finish at absolute time at. seq is the push
// counter, breaking ties between equal deadlines so pops stay FIFO in
// registration order and heap compaction cannot reorder same-time events.
type completionEntry struct {
	at  float64
	seq uint64
	app *App
	f   *ForeignTask
}

// completionHeap is a lazy-deletion min-heap of completion deadlines ordered
// by (at, seq), with the same one-directional invariant as the wake heap: an
// entry is live only while its entity's stored deadline still equals the
// entry's time (and the entity is not already done), and whenever an entity
// holds a finite deadline an entry with exactly that time is somewhere in the
// heap. Re-registering a deadline just pushes a fresh entry; stale ones are
// discarded when they surface at the top, or swept out by compact once they
// dominate the slice.
type completionHeap []completionEntry

// before is the heap order: earlier deadline first, push order among equals.
func (h completionHeap) before(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push adds a completion entry.
func (h *completionHeap) push(e completionEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.before(parent, i) {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

// pop removes and returns the earliest entry; callers must check ok.
func (h *completionHeap) pop() (completionEntry, bool) {
	if len(*h) == 0 {
		return completionEntry{}, false
	}
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	(*h)[last] = completionEntry{}
	*h = (*h)[:last]
	h.siftDown(0)
	return top, true
}

// siftDown restores the heap order below index i.
func (h *completionHeap) siftDown(i int) {
	n := len(*h)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.before(left, smallest) {
			smallest = left
		}
		if right < n && h.before(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
}

// stale reports whether the entry no longer speaks for its entity: the
// stored deadline moved (a later settle re-registered it) or the entity
// already completed.
func (e completionEntry) stale() bool {
	if e.app != nil {
		return e.app.deadline != e.at || e.app.State == StateDone
	}
	return e.f.deadline != e.at || e.f.done
}

// compact drops every stale entry and re-heapifies in place. Pop order is
// fully determined by (at, seq), so rebuilding cannot reorder events.
func (h *completionHeap) compact() {
	w := 0
	for _, e := range *h {
		if !e.stale() {
			(*h)[w] = e
			w++
		}
	}
	clear((*h)[w:])
	*h = (*h)[:w]
	for i := w/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// settleApp integrates the app's progress from its last settle point to the
// current instant. Every rate feeding the integral has been constant since
// settledAt — settle points are exactly the rate changes — so one multiply
// is the whole integral. Idempotent at a given instant, and must run BEFORE
// any of the app's rates are reassigned or its progress fields are read or
// mutated at the current time.
func (c *Cluster) settleApp(a *App) {
	if a.settledAt == c.now {
		return
	}
	dt := c.now - a.settledAt
	switch a.State {
	case StateProfiling:
		a.profileLeft -= a.Job.Bench.ScanRate * c.cfg.ProfilingRateFactor * c.lastShare * dt
	case StateRunning:
		if r := appRate(a); r > 0 {
			a.RemainingGB -= r * dt
			// Attribute the same integral per executor: processedGB is the
			// checkpoint volume a graceful migration must move, and every
			// rate in the sum has been constant since settledAt too.
			for _, e := range a.Executors {
				if e.rate > 0 {
					e.processedGB += e.rate * dt
				}
			}
		}
	}
	a.settledAt = c.now
}

// settleForeign is settleApp for a foreign co-runner.
func (c *Cluster) settleForeign(f *ForeignTask) {
	if f.settledAt == c.now || f.done {
		return
	}
	f.remaining -= f.rate * (c.now - f.settledAt)
	f.settledAt = c.now
}

// touchApp queues the app for a deadline refresh at the end of the current
// iteration (refreshDeadlines). Idempotent per iteration.
func (c *Cluster) touchApp(a *App) {
	if !a.touched {
		a.touched = true
		c.touchedApps = append(c.touchedApps, a)
	}
}

// touchForeign is touchApp for a foreign co-runner.
func (c *Cluster) touchForeign(f *ForeignTask) {
	if !f.touched {
		f.touched = true
		c.touchedForeign = append(c.touchedForeign, f)
	}
}

// setAppDeadline recomputes the app's absolute completion deadline from its
// settled state and registers it on the completion heap when it moved. The
// expressions mirror refNextEventDt exactly — the stored deadline must be the
// same float a fresh scan would compute.
func (c *Cluster) setAppDeadline(a *App, share float64) {
	const tiny = 1e-9
	at := math.Inf(1)
	switch a.State {
	case StateProfiling:
		rate := a.Job.Bench.ScanRate * c.cfg.ProfilingRateFactor * share
		if rate > 0 && a.profileLeft > 0 {
			at = a.settledAt + a.profileLeft/rate
		}
	case StateRunning:
		// During startup the wake heap owns the next event; the completion
		// deadline registers once the gate expires and rates come alive.
		if a.startupUntil <= c.now {
			if r := appRate(a); r > tiny {
				at = a.settledAt + a.RemainingGB/r
			}
		}
	}
	if at != a.deadline {
		a.deadline = at
		if !math.IsInf(at, 1) {
			c.completionSeq++
			c.completions.push(completionEntry{at: at, seq: c.completionSeq, app: a})
		}
	}
}

// setForeignDeadline is setAppDeadline for a foreign co-runner.
func (c *Cluster) setForeignDeadline(f *ForeignTask) {
	const tiny = 1e-9
	at := math.Inf(1)
	if !f.done && f.rate > tiny {
		at = f.settledAt + f.remaining/f.rate
	}
	if at != f.deadline {
		f.deadline = at
		if !math.IsInf(at, 1) {
			c.completionSeq++
			c.completions.push(completionEntry{at: at, seq: c.completionSeq, f: f})
		}
	}
}

// refreshDeadlines runs once per event-loop iteration, after rates are fresh
// and the profiling share is known: it settles the profiling set when the
// share moved (the share is a rate too — it was constant over the elapsed
// interval and changes only when the profiling set changes), then recomputes
// the deadline of every entity touched this iteration. When stale entries
// dominate the heap it is compacted, keeping memory proportional to live
// deadlines rather than total pushes.
func (c *Cluster) refreshDeadlines(share float64) {
	if share != c.lastShare {
		for _, a := range c.profiling {
			c.settleApp(a)
			c.touchApp(a)
		}
		c.lastShare = share
	}
	for _, a := range c.touchedApps {
		a.touched = false
		c.setAppDeadline(a, share)
	}
	c.touchedApps = c.touchedApps[:0]
	for _, f := range c.touchedForeign {
		f.touched = false
		c.setForeignDeadline(f)
	}
	c.touchedForeign = c.touchedForeign[:0]
	if live := len(c.active) + len(c.activeForeign); len(c.completions) > 64 && len(c.completions) > 4*live {
		c.completions.compact()
	}
}

// resetIndex rebuilds the event index for a fresh run: empty active sets,
// zeroed done-counters (pre-registered foreign tasks may already be done
// from an earlier run on the same cluster), every node dirty (no rates have
// been computed for this run), and no pending wake-ups or deadlines.
func (c *Cluster) resetIndex() {
	c.active = c.active[:0]
	c.profiling = c.profiling[:0]
	c.doneApps = 0
	c.activeForeign = c.activeForeign[:0]
	c.doneForeign = 0
	c.completions = c.completions[:0]
	c.completionSeq = 0
	c.touchedApps = c.touchedApps[:0]
	c.touchedForeign = c.touchedForeign[:0]
	c.lastShare = 1
	for _, f := range c.foreign {
		if f.done {
			c.doneForeign++
		} else {
			f.settledAt = c.now
			f.deadline = math.Inf(1)
			f.touched = false
			c.activeForeign = append(c.activeForeign, f)
		}
	}
	if len(c.wakes) != c.shards {
		c.wakes = make([]wakeHeap, c.shards)
	}
	for s := range c.wakes {
		c.wakes[s] = c.wakes[s][:0]
	}
	if len(c.shardRated) != c.shards {
		c.shardRated = make([]int64, c.shards)
		c.shardWakes = make([]int64, c.shards)
	}
	for s := 0; s < c.shards; s++ {
		c.shardRated[s] = 0
		c.shardWakes[s] = 0
	}
	c.epochs = 0
	c.draining = c.draining[:0]
	for _, n := range c.nodes {
		n.wakeAt = math.Inf(1)
		if n.state == NodeDraining {
			c.draining = append(c.draining, n)
		}
		c.markDirty(n)
	}
}

// ActiveApps returns the submitted applications that have not completed, in
// submission (FCFS) order. It is the scheduler-facing view of the engine's
// active set: policies that walk applications every scheduling event should
// iterate it instead of Apps(), which includes every already-finished
// application of the stream. Callers must not mutate the returned slice.
func (c *Cluster) ActiveApps() []*App { return c.active }
