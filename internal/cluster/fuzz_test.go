package cluster

import (
	"math/rand"
	"testing"
)

// FuzzCompletionHeapMatchesScan fuzzes the completion-deadline heap against
// the full-scan reference in engine_ref.go. Each input seeds a short random
// workload (optionally with foreign co-runners and trace sampling); the
// Cluster.checkEvent hook then fires on every engine event — rates fresh,
// advance about to run — where the heap-top event pick must equal the
// full-scan minimum float-for-float and every stored deadline must equal a
// fresh recompute from the settled state. This is the differential property
// test of property_test.go reshaped so the fuzzer, rather than a fixed seed
// loop, explores the workload space.
func FuzzCompletionHeapMatchesScan(f *testing.F) {
	f.Add(int64(1), false, false)
	f.Add(int64(42), true, false)
	f.Add(int64(7), false, true)
	f.Add(int64(-3), true, true)
	f.Fuzz(func(t *testing.T, seed int64, foreign, trace bool) {
		r := rand.New(rand.NewSource(seed))
		jobs := randomJobs(r)
		cfg := DefaultConfig()
		if trace {
			cfg.TraceInterval = 40
		}
		cfg.ReleaseForeignMem = foreign
		c := New(cfg)
		if foreign {
			nodes := len(c.Nodes())
			for i, fn := 0, 1+r.Intn(2); i < fn; i++ {
				if _, err := c.AddForeign(r.Intn(nodes), "co-runner",
					0.2+0.5*r.Float64(), 10+25*r.Float64(), 40+60*r.Float64()); err != nil {
					t.Fatalf("foreign: %v", err)
				}
			}
		}
		events := 0
		c.checkEvent = func(share, dt float64, ok bool) {
			events++
			if ref := c.refProfilingShare(); share != ref {
				t.Fatalf("event %d: profiling share %v, reference %v", events, share, ref)
			}
			refDt, refOK := c.refNextEventDt(share)
			if ok != refOK || (ok && dt != refDt) {
				t.Fatalf("event %d: next event dt (%v,%v), reference (%v,%v)", events, dt, ok, refDt, refOK)
			}
			if diff := c.refCheckDeadlines(share); diff != "" {
				t.Fatalf("event %d: %s", events, diff)
			}
		}
		res, err := c.Run(jobs, greedyScheduler{})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if events == 0 {
			t.Fatal("differential hook never fired")
		}
		for _, a := range res.Apps {
			if a.State != StateDone {
				t.Fatalf("app %d finished in state %v", a.ID, a.State)
			}
		}
	})
}
