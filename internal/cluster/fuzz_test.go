package cluster

import (
	"math/rand"
	"testing"

	"moespark/internal/workload"
)

// FuzzCompletionHeapMatchesScan fuzzes the completion-deadline heap against
// the full-scan reference in engine_ref.go. Each input seeds a short random
// workload (optionally with foreign co-runners and trace sampling); the
// Cluster.checkEvent hook then fires on every engine event — rates fresh,
// advance about to run — where the heap-top event pick must equal the
// full-scan minimum float-for-float and every stored deadline must equal a
// fresh recompute from the settled state. This is the differential property
// test of property_test.go reshaped so the fuzzer, rather than a fixed seed
// loop, explores the workload space. The shards input folds onto an event-loop
// shard count in {1, 2, 4, 8}, so the fuzzer also explores the sharded engine:
// the per-event scan agreement must hold at every partition count.
func FuzzCompletionHeapMatchesScan(f *testing.F) {
	f.Add(int64(1), false, false, false, false, 0)
	f.Add(int64(42), true, false, false, false, 1)
	f.Add(int64(7), false, true, false, false, 2)
	f.Add(int64(-3), true, true, false, false, 3)
	f.Add(int64(9), false, false, true, false, 2)
	f.Add(int64(11), true, false, true, true, 1)
	f.Fuzz(func(t *testing.T, seed int64, foreign, trace, rackStorm, migrate bool, shards int) {
		r := rand.New(rand.NewSource(seed))
		jobs := randomJobs(r)
		cfg := DefaultConfig()
		cfg.Shards = []int{1, 2, 4, 8}[((shards%4)+4)%4]
		if trace {
			cfg.TraceInterval = 40
		}
		cfg.ReleaseForeignMem = foreign
		if migrate {
			// Graceful evacuation plus the rest of the failure-domain
			// machinery: retry-budget blacklists and capacity-ratcheted
			// fleet sizing.
			cfg.MigrateOnDrain = true
			cfg.OOMRetryBudget = 2
			cfg.RefreshFleetSizing = true
		}
		var c *Cluster
		if rackStorm {
			// A racked uniform fleet hit by a correlated storm: one rack
			// drains and one fails after a warning drain, and every node
			// rejoins later. Executors caught on the warned rack exercise
			// the migration (or run-in-place) paths under the same
			// exact-agreement hook.
			fleet, err := workload.UniformFleet(cfg.Nodes, workload.PaperNode())
			if err != nil {
				t.Fatalf("fleet: %v", err)
			}
			if fleet, err = workload.AssignRacks(fleet, 3, 2); err != nil {
				t.Fatalf("racks: %v", err)
			}
			specs := SpecsFrom(fleet)
			if c, err = NewHetero(cfg, specs); err != nil {
				t.Fatalf("cluster: %v", err)
			}
			storm, err := RackStormEvents(specs, 1, 1, 30, 150, 20, 90, r)
			if err != nil {
				t.Fatalf("rack storm: %v", err)
			}
			if err := c.ScheduleNodeEvents(storm...); err != nil {
				t.Fatalf("node events: %v", err)
			}
		} else {
			c = New(cfg)
		}
		if foreign {
			nodes := len(c.Nodes())
			for i, fn := 0, 1+r.Intn(2); i < fn; i++ {
				if _, err := c.AddForeign(r.Intn(nodes), "co-runner",
					0.2+0.5*r.Float64(), 10+25*r.Float64(), 40+60*r.Float64()); err != nil {
					t.Fatalf("foreign: %v", err)
				}
			}
		}
		events := 0
		c.checkEvent = func(share, dt float64, ok bool) {
			events++
			if ref := c.refProfilingShare(); share != ref {
				t.Fatalf("event %d: profiling share %v, reference %v", events, share, ref)
			}
			refDt, refOK := c.refNextEventDt(share)
			if ok != refOK || (ok && dt != refDt) {
				t.Fatalf("event %d: next event dt (%v,%v), reference (%v,%v)", events, dt, ok, refDt, refOK)
			}
			if diff := c.refCheckDeadlines(share); diff != "" {
				t.Fatalf("event %d: %s", events, diff)
			}
		}
		res, err := c.Run(jobs, greedyScheduler{})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if events == 0 {
			t.Fatal("differential hook never fired")
		}
		for _, a := range res.Apps {
			if a.State != StateDone {
				t.Fatalf("app %d finished in state %v", a.ID, a.State)
			}
		}
	})
}
