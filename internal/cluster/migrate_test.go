package cluster

import (
	"math"
	"testing"
)

// homeScheduler places each waiting app's first executor on one fixed home
// node and never grows it: migration tests need an app that lives on exactly
// one node while another stays free as a target. When the home node has left
// the fleet (the fail branch of the warn-then-fail test) it falls back to
// the first available node, so a killed app can restart instead of stalling.
type homeScheduler struct {
	node    int
	waitBuf []*App
}

func (*homeScheduler) Name() string                       { return "pin" }
func (*homeScheduler) Prepare(*Cluster, *App) ProfilePlan { return ProfilePlan{} }
func (s *homeScheduler) Schedule(c *Cluster) {
	s.waitBuf = c.AppendWaitingApps(s.waitBuf[:0])
	for _, app := range s.waitBuf {
		if len(app.Executors) > 0 {
			continue
		}
		var fallback *Node
		for _, n := range c.Nodes() {
			if !n.Available() {
				continue
			}
			if n.ID == s.node {
				fallback = n
				break
			}
			if fallback == nil {
				fallback = n
			}
		}
		if fallback != nil {
			c.Spawn(app, fallback, fallback.AllocatableGB(), app.RemainingGB)
		}
	}
}

// TestMigrateOnDrainEvacuates is the warn-then-fail scenario the rack storm
// generator emits: a drain lands on a busy node with a free peer, then the
// node fails shortly after. With migration the executor moves during the
// warning, the emptied node decommissions immediately, and the later fail
// event is a no-op against the decommissioned node; without it, the fail
// kills the executor and charges its partial work back.
func TestMigrateOnDrainEvacuates(t *testing.T) {
	run := func(migrate bool) *Result {
		cfg := DefaultConfig()
		cfg.Nodes = 2
		cfg.MigrateOnDrain = migrate
		c := New(cfg)
		if err := c.ScheduleNodeEvents(
			NodeEvent{At: 60, Kind: NodeDrain, Node: 0},
			NodeEvent{At: 90, Kind: NodeFail, Node: 0},
		); err != nil {
			t.Fatal(err)
		}
		subs := []Submission{{At: 0, Job: testJob(t, 200)}}
		res, err := c.RunOpen(subs, &homeScheduler{node: 0})
		if err != nil {
			t.Fatal(err)
		}
		if res.Apps[0].DoneTime < 0 {
			t.Fatal("app never finished")
		}
		return res
	}

	base := run(false)
	if base.FailKills != 1 {
		t.Fatalf("without migration: fail kills = %d, want 1", base.FailKills)
	}
	if base.LostWorkGB <= 0 {
		t.Errorf("without migration: lost work = %v, want > 0 (work was in flight)", base.LostWorkGB)
	}

	mig := run(true)
	if mig.Migrations != 1 {
		t.Fatalf("with migration: migrations = %d, want 1", mig.Migrations)
	}
	if mig.FailKills != 0 {
		t.Errorf("with migration: fail kills = %d, want 0 (node was evacuated in the warning window)", mig.FailKills)
	}
	if mig.LostWorkGB != 0 {
		t.Errorf("with migration: lost work = %v, want 0", mig.LostWorkGB)
	}
	if mig.Apps[0].Migrations != 1 {
		t.Errorf("per-app migrations = %d, want 1", mig.Apps[0].Migrations)
	}
	if base.Apps[0].DoneTime <= mig.Apps[0].DoneTime {
		t.Errorf("reprocessing (%v) should finish later than migrating (%v)",
			base.Apps[0].DoneTime, mig.Apps[0].DoneTime)
	}
}

// TestMigrateEmptiedNodeDecommissions pins the drain->decommission->no-op
// chain directly: once migration empties the draining node it leaves the
// fleet the same instant, and both a later fail and a later drain against
// its ID resolve to nothing regardless of when they fire.
func TestMigrateEmptiedNodeDecommissions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.MigrateOnDrain = true
	c := New(cfg)
	if err := c.ScheduleNodeEvents(
		NodeEvent{At: 60, Kind: NodeDrain, Node: 0},
		NodeEvent{At: 61, Kind: NodeDrain, Node: 0}, // drain of a draining/removed node
		NodeEvent{At: 800, Kind: NodeFail, Node: 0}, // long after decommission
		NodeEvent{At: 900, Kind: NodeJoin, Spec: cfg.DefaultNodeSpec()},
	); err != nil {
		t.Fatal(err)
	}
	subs := []Submission{{At: 0, Job: testJob(t, 200)}}
	res, err := c.RunOpen(subs, &homeScheduler{node: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailKills != 0 || res.Migrations != 1 {
		t.Fatalf("fail kills = %d, migrations = %d, want 0 and 1", res.FailKills, res.Migrations)
	}
	var n0 *Node
	for _, n := range c.Nodes() {
		if n.ID == 0 {
			n0 = n
		}
	}
	if got := n0.State(); got != NodeRemoved {
		t.Errorf("node 0 state = %v, want removed (evacuated drains decommission immediately)", got)
	}
	// The rejoin after decommission took a fresh ID and is a usable node.
	last := c.Nodes()[len(c.Nodes())-1]
	if last.ID == 0 || last.State() != NodeActive {
		t.Errorf("rejoined node = id %d state %v, want fresh ID and active", last.ID, last.State())
	}
}

// TestMigrateRestartPenaltyGatesCompletion checks the cost model end to end:
// two identical runs that differ only in the fixed restart penalty must
// finish exactly the penalty difference apart — the migrated executor sits
// at rate zero behind its gate for exactly that much longer.
func TestMigrateRestartPenaltyGatesCompletion(t *testing.T) {
	run := func(restartSec float64) float64 {
		cfg := DefaultConfig()
		cfg.Nodes = 2
		cfg.MigrateOnDrain = true
		cfg.MigrateRestartSec = restartSec
		c := New(cfg)
		if err := c.ScheduleNodeEvents(NodeEvent{At: 60, Kind: NodeDrain, Node: 0}); err != nil {
			t.Fatal(err)
		}
		res, err := c.RunOpen([]Submission{{At: 0, Job: testJob(t, 200)}}, &homeScheduler{node: 0})
		if err != nil {
			t.Fatal(err)
		}
		if res.Migrations != 1 {
			t.Fatalf("migrations = %d, want 1", res.Migrations)
		}
		return res.Apps[0].DoneTime
	}
	d1, d2 := run(8), run(23)
	if diff := d2 - d1; math.Abs(diff-15) > 1e-6 {
		t.Errorf("restart penalty delta: done %v vs %v (diff %v), want exactly 15s apart", d1, d2, diff)
	}
}

// TestMigrateHandoffToSibling drains a node whose executor cannot relocate
// (the app already runs on the only other node): the executor must hand its
// work off to the sibling — no charge-back, no kill — and the emptied node
// decommissions immediately, so a later fail against it is a no-op.
func TestMigrateHandoffToSibling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.MigrateOnDrain = true
	c := New(cfg)
	if err := c.ScheduleNodeEvents(
		NodeEvent{At: 60, Kind: NodeDrain, Node: 0},
		NodeEvent{At: 90, Kind: NodeFail, Node: 0},
	); err != nil {
		t.Fatal(err)
	}
	// fullSpeedScheduler lands the app on both nodes before the drain.
	res, err := c.RunOpen([]Submission{{At: 0, Job: testJob(t, 200)}}, &fullSpeedScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 1 {
		t.Errorf("migrations = %d, want 1 (handoff into the sibling executor)", res.Migrations)
	}
	if res.Apps[0].DoneTime < 0 {
		t.Fatal("app never finished")
	}
	if res.LostWorkGB != 0 || res.FailKills != 0 {
		t.Errorf("lost work = %v, fail kills = %d, want 0 and 0 (handoff preserves the work)",
			res.LostWorkGB, res.FailKills)
	}
	if got := len(res.Apps[0].Executors); got != 0 {
		t.Errorf("executors left after completion = %d, want 0", got)
	}
	for _, n := range c.Nodes() {
		if n.ID == 0 && n.State() != NodeRemoved {
			t.Errorf("node 0 state = %v, want removed the instant the handoff emptied it", n.State())
		}
	}
}

// TestMigrateNoFeasibleTargetStays drains the only node in the fleet: with
// no relocation target and no sibling the executor must finish in place —
// the pre-migration drain semantics — and the node decommissions only
// afterwards.
func TestMigrateNoFeasibleTargetStays(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	cfg.MigrateOnDrain = true
	c := New(cfg)
	if err := c.ScheduleNodeEvents(NodeEvent{At: 60, Kind: NodeDrain, Node: 0}); err != nil {
		t.Fatal(err)
	}
	res, err := c.RunOpen([]Submission{{At: 0, Job: testJob(t, 200)}}, &fullSpeedScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Errorf("migrations = %d, want 0 (nowhere to go)", res.Migrations)
	}
	if res.Apps[0].DoneTime < 0 {
		t.Fatal("app never finished")
	}
	if res.LostWorkGB != 0 || res.FailKills != 0 {
		t.Errorf("lost work = %v, fail kills = %d, want 0 and 0 (drain runs work to completion)",
			res.LostWorkGB, res.FailKills)
	}
	if got := c.Nodes()[0].State(); got != NodeRemoved {
		t.Errorf("node 0 state = %v, want removed after its work finished", got)
	}
}

// TestUnblockNodeOnDepart is the blockedNodes-leak regression test: an OOM
// blacklist entry must disappear when its node leaves the fleet for good,
// whether by failure or by drain decommission. Before the unblockNode sweep
// this test fails: the per-app map kept every departed node's ID for the
// app's whole lifetime.
func TestUnblockNodeOnDepart(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 3
	c := New(cfg)
	app := c.AddReadyApp(testJob(t, 10))
	n1, n2 := c.Nodes()[1], c.Nodes()[2]

	app.blockNode(n1, permanentBlock)
	app.blockNode(n2, permanentBlock)
	if !app.BlockedOn(n1, c.Now()) || !app.BlockedOn(n2, c.Now()) {
		t.Fatal("blacklist entries not in effect")
	}

	c.failNode(n1)
	if _, ok := app.blockedNodes[n1.ID]; ok {
		t.Errorf("failed node %d still in blockedNodes: the map leaks", n1.ID)
	}

	// Drain path: an idle draining node decommissions on the next sweep.
	n2.state = NodeDraining
	c.draining = append(c.draining, n2)
	c.completeDrains()
	if n2.State() != NodeRemoved {
		t.Fatalf("node %d state = %v, want removed", n2.ID, n2.State())
	}
	if _, ok := app.blockedNodes[n2.ID]; ok {
		t.Errorf("decommissioned node %d still in blockedNodes: the map leaks", n2.ID)
	}
}

// TestBlacklistRetryBudget checks the deterministic backoff policy: with a
// budget of 2 and a 100s base cool-off the first entry expires after 100s,
// the second after 200s, and the third is permanent; a zero budget is the
// legacy permanent blacklist from the first OOM on.
func TestBlacklistRetryBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	cfg.OOMRetryBudget = 2
	cfg.OOMCoolOffSec = 100
	c := New(cfg)
	app := c.AddReadyApp(testJob(t, 10))
	n := c.Nodes()[0]

	u1 := c.blacklistUntil(app)
	if u1 != 100 {
		t.Errorf("first entry expires at %v, want 100", u1)
	}
	app.blockNode(n, u1)
	if !app.BlockedOn(n, 99) {
		t.Error("entry should block before its expiry")
	}
	if app.BlockedOn(n, 100) {
		t.Error("entry should stop blocking at its expiry")
	}

	if u2 := c.blacklistUntil(app); u2 != 200 {
		t.Errorf("second entry expires at %v, want 200 (doubled cool-off)", u2)
	}
	if u3 := c.blacklistUntil(app); !math.IsInf(u3, 1) {
		t.Errorf("third entry = %v, want permanent (+Inf): budget of 2 is spent", u3)
	}
	if app.OOMRetries != 2 || c.totalRetries != 2 {
		t.Errorf("retries consumed = %d/%d, want 2/2 (the permanent entry consumes none)",
			app.OOMRetries, c.totalRetries)
	}

	legacy := New(func() Config { cfg := DefaultConfig(); cfg.Nodes = 1; return cfg }())
	lapp := legacy.AddReadyApp(testJob(t, 10))
	if u := legacy.blacklistUntil(lapp); !math.IsInf(u, 1) {
		t.Errorf("zero budget: entry = %v, want permanent (+Inf)", u)
	}
}
