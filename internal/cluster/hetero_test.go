package cluster

import (
	"errors"
	"math/rand"
	"testing"

	"moespark/internal/workload"
)

func testJob(t *testing.T, gb float64) workload.Job {
	t.Helper()
	b, err := workload.Find("HB.Sort")
	if err != nil {
		t.Fatal(err)
	}
	return workload.Job{Bench: b, InputGB: gb}
}

func TestNodeSpecValidate(t *testing.T) {
	good := DefaultConfig().DefaultNodeSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	bad := []NodeSpec{
		{},
		{RAMGB: 64, Cores: 16, SpeedFactor: 0, SwapGB: 16, OSReserveGB: 4},
		{RAMGB: 64, Cores: 0, SpeedFactor: 1, SwapGB: 16, OSReserveGB: 4},
		{RAMGB: 4, Cores: 16, SpeedFactor: 1, SwapGB: 16, OSReserveGB: 8},
		{RAMGB: 64, Cores: 16, SpeedFactor: 1, SwapGB: -1, OSReserveGB: 4},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d (%+v) passed validation", i, s)
		}
	}
}

// TestPerNodeCapacity checks the capacity math reads each node's own spec.
func TestPerNodeCapacity(t *testing.T) {
	cfg := DefaultConfig()
	big := NodeSpec{RAMGB: 128, Cores: 32, SpeedFactor: 1.25, SwapGB: 32, OSReserveGB: 6}
	little := NodeSpec{RAMGB: 32, Cores: 8, SpeedFactor: 0.75, SwapGB: 8, OSReserveGB: 3}
	c, err := NewHetero(cfg, []NodeSpec{big, little})
	if err != nil {
		t.Fatal(err)
	}
	nb, nl := c.Nodes()[0], c.Nodes()[1]
	if got, want := nb.UsableGB(), 122.0; got != want {
		t.Errorf("big usable = %v, want %v", got, want)
	}
	if got, want := nl.UsableGB(), 29.0; got != want {
		t.Errorf("little usable = %v, want %v", got, want)
	}
	if got, want := nb.AllocatableGB(), cfg.PressureWatermark*122; got != want {
		t.Errorf("big allocatable = %v, want %v", got, want)
	}
	if got, want := nb.CPUCapacity(), 2.0; got != want {
		t.Errorf("big CPU capacity = %v, want %v", got, want)
	}
	if got, want := nl.CPUCapacity(), 0.5; got != want {
		t.Errorf("little CPU capacity = %v, want %v", got, want)
	}
}

// TestSpeedFactorScalesRates runs the same single job on a fast and a slow
// one-node cluster: completion time must scale inversely with speed.
func TestSpeedFactorScalesRates(t *testing.T) {
	cfg := DefaultConfig()
	run := func(speed float64) float64 {
		spec := cfg.DefaultNodeSpec()
		spec.SpeedFactor = speed
		c, err := NewHetero(cfg, []NodeSpec{spec})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run([]workload.Job{testJob(t, 10)}, &fullSpeedScheduler{})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakespanSec
	}
	fast, slow := run(2), run(0.5)
	// Makespan includes the fixed startup latency; processing time scales 4x.
	fastProc := fast - cfg.StartupSec
	slowProc := slow - cfg.StartupSec
	if ratio := slowProc / fastProc; ratio < 3.99 || ratio > 4.01 {
		t.Errorf("slow/fast processing ratio = %v, want ~4 (speeds 0.5 vs 2)", ratio)
	}
}

// TestDrainStopsPlacements drains a node mid-run: no executor may spawn on
// it after the drain fires, resident executors finish their work, and the
// emptied node is then decommissioned (NodeRemoved) rather than idling
// forever.
func TestDrainStopsPlacements(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	c := New(cfg)
	if err := c.ScheduleNodeEvents(NodeEvent{At: 1, Kind: NodeDrain, Node: 0}); err != nil {
		t.Fatal(err)
	}
	subs := []Submission{
		{At: 0, Job: testJob(t, 20)},   // lands on both nodes before the drain
		{At: 200, Job: testJob(t, 20)}, // arrives after: node 0 must be off-limits
	}
	res, err := c.RunOpen(subs, &fullSpeedScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Apps {
		if a.DoneTime < 0 {
			t.Fatalf("app %d never finished", a.ID)
		}
	}
	if got := c.Nodes()[0].State(); got != NodeRemoved {
		t.Errorf("node 0 state = %v, want removed (drain completed once empty)", got)
	}
	// Direct spawns on a decommissioned node must be rejected too.
	app := c.AddReadyApp(testJob(t, 10))
	if _, err := c.Spawn(app, c.Nodes()[0], 10, 10); !errors.Is(err, ErrNodeUnavailable) {
		t.Errorf("Spawn on draining node: err = %v, want ErrNodeUnavailable", err)
	}
}

// TestFailKillsAndReprocesses fails the only busy node mid-run: its
// executors die, the lost work is charged back, and the app completes on the
// surviving node.
func TestFailKillsAndReprocesses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.ExecutorSpreadGB = 100 // one executor for the whole job
	c := New(cfg)
	if err := c.ScheduleNodeEvents(NodeEvent{At: 30, Kind: NodeFail, Node: 0}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run([]workload.Job{testJob(t, 50)}, &fullSpeedScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailKills != 1 {
		t.Fatalf("fail kills = %d, want 1", res.FailKills)
	}
	if got := c.Nodes()[0].State(); got != NodeFailed {
		t.Errorf("node 0 state = %v, want failed", got)
	}
	a := res.Apps[0]
	if a.DoneTime < 0 {
		t.Fatal("app never finished after the failure")
	}
	// The app must have restarted on node 1 and re-done the killed
	// executor's reprocessing share, so it finishes later than an untouched
	// run would.
	c2 := New(cfg)
	base, err := c2.Run([]workload.Job{testJob(t, 50)}, &fullSpeedScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if a.DoneTime <= base.Apps[0].DoneTime {
		t.Errorf("failed run finished at %v, not later than clean run %v", a.DoneTime, base.Apps[0].DoneTime)
	}
}

// TestJoinAddsCapacity verifies a joined node becomes placeable and speeds
// up a queued backlog relative to not joining.
func TestJoinAddsCapacity(t *testing.T) {
	jobs := []workload.Job{testJob(t, 30), testJob(t, 30), testJob(t, 30), testJob(t, 30)}
	run := func(join bool) float64 {
		cfg := DefaultConfig()
		cfg.Nodes = 1
		c := New(cfg)
		if join {
			spec := cfg.DefaultNodeSpec()
			if err := c.ScheduleNodeEvents(NodeEvent{At: 20, Kind: NodeJoin, Spec: spec}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := c.Run(jobs, &fullSpeedScheduler{})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakespanSec
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Errorf("makespan with join = %v, want < %v (without)", with, without)
	}
}

// TestNodeEventValidation covers event-time and target validation.
func TestNodeEventValidation(t *testing.T) {
	c := New(DefaultConfig())
	if err := c.ScheduleNodeEvents(NodeEvent{At: -1, Kind: NodeDrain, Node: 0}); err == nil {
		t.Error("negative event time accepted")
	}
	if err := c.ScheduleNodeEvents(NodeEvent{At: 1, Kind: NodeEventKind(99), Node: 0}); err == nil {
		t.Error("unknown event kind accepted")
	}
	if err := c.ScheduleNodeEvents(NodeEvent{At: 1, Kind: NodeFail, Node: 999}); err != nil {
		t.Fatalf("deferred target validation should accept unknown node at schedule time: %v", err)
	}
	// ...but the run must fail when the event fires against a missing node.
	_, err := c.Run([]workload.Job{testJob(t, 5)}, &fullSpeedScheduler{})
	if err == nil {
		t.Error("run succeeded despite a fail event targeting a nonexistent node")
	}
}

// TestStormEventsDeterministic pins the seeded storm generator.
func TestStormEventsDeterministic(t *testing.T) {
	a, err := StormEvents(40, 3, 2, 100, 500, 60, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := StormEvents(40, 3, 2, 100, 500, 60, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 10 {
		t.Fatalf("storm sizes %d vs %d, want 10 (5 events + 5 joins)", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("event %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	targets := map[int]bool{}
	for _, ev := range a {
		if ev.Kind != NodeJoin {
			if targets[ev.Node] {
				t.Errorf("storm targets node %d twice", ev.Node)
			}
			targets[ev.Node] = true
		}
	}
	if _, err := StormEvents(4, 2, 2, 0, 100, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("fleet-exhausting storm accepted")
	}
}

// rackedTestSpecs builds a small racked uniform fleet for storm tests.
func rackedTestSpecs(t *testing.T, nodes, racks, zones int) []NodeSpec {
	t.Helper()
	fleet, err := workload.UniformFleet(nodes, workload.PaperNode())
	if err != nil {
		t.Fatal(err)
	}
	if fleet, err = workload.AssignRacks(fleet, racks, zones); err != nil {
		t.Fatal(err)
	}
	return SpecsFrom(fleet)
}

// TestRackStormEventsDeterministic pins the seeded rack-storm generator: the
// same seed yields the identical event list, element for element.
func TestRackStormEventsDeterministic(t *testing.T) {
	specs := rackedTestSpecs(t, 12, 4, 2)
	gen := func() []NodeEvent {
		evs, err := RackStormEvents(specs, 1, 2, 100, 400, 30, 120, rand.New(rand.NewSource(17)))
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("storm sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("event %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRackStormEventsStructure checks the correlated-failure shape: every
// node of a chosen rack leaves at the same instant, failing racks get their
// warning drain exactly warnSec ahead, and every departed node rejoins with
// the identical spec rejoinDelay after it went away.
func TestRackStormEventsStructure(t *testing.T) {
	const warn, rejoin = 30.0, 120.0
	specs := rackedTestSpecs(t, 12, 4, 2)
	evs, err := RackStormEvents(specs, 1, 2, 100, 400, warn, rejoin, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	// 4 racks of 3 nodes: 3 drained nodes (drain+join each) plus 6 failed
	// nodes (drain+fail+join each).
	if len(evs) != 3*2+6*3 {
		t.Fatalf("%d events, want %d", len(evs), 3*2+6*3)
	}
	drainAt := map[int]float64{}
	failAt := map[int]float64{}
	goneAt := map[int]float64{}
	var joins []NodeEvent
	for _, ev := range evs {
		switch ev.Kind {
		case NodeDrain:
			drainAt[ev.Node] = ev.At
			if _, ok := goneAt[ev.Node]; !ok {
				goneAt[ev.Node] = ev.At
			}
		case NodeFail:
			failAt[ev.Node] = ev.At
			goneAt[ev.Node] = ev.At
		case NodeJoin:
			joins = append(joins, ev)
		}
	}
	rackGone := map[string]float64{}
	//moevet:allow maporder order-independent consistency check over a set
	for id, at := range goneAt {
		rack := specs[id].Rack
		if prev, ok := rackGone[rack]; ok && prev != at {
			t.Errorf("rack %s leaves at both %v and %v", rack, prev, at)
		}
		rackGone[rack] = at
	}
	if len(rackGone) != 3 {
		t.Fatalf("storm hit %d racks, want 3", len(rackGone))
	}
	//moevet:allow maporder order-independent per-node check
	for id, at := range failAt {
		d, ok := drainAt[id]
		if !ok {
			t.Errorf("failed node %d got no warning drain", id)
			continue
		}
		if got := at - d; got != warn {
			t.Errorf("node %d warned %v ahead, want %v", id, got, warn)
		}
	}
	// Each departed node's spec rejoins rejoinDelay after it went away;
	// match joins to departures by (time, spec) multiset.
	if len(joins) != len(goneAt) {
		t.Fatalf("%d joins for %d departures", len(joins), len(goneAt))
	}
	type rejoinKey struct {
		at   float64
		rack string
	}
	want := map[rejoinKey]int{}
	for id, at := range goneAt {
		want[rejoinKey{at + rejoin, specs[id].Rack}]++
	}
	for _, ev := range joins {
		k := rejoinKey{ev.At, ev.Spec.Rack}
		if want[k] == 0 {
			t.Errorf("unexpected join %+v at %v", ev.Spec, ev.At)
			continue
		}
		want[k]--
	}
}

// TestRackStormEventsValidation covers the generator's error paths.
func TestRackStormEventsValidation(t *testing.T) {
	specs := rackedTestSpecs(t, 12, 4, 2)
	rng := func() *rand.Rand { return rand.New(rand.NewSource(1)) }
	if _, err := RackStormEvents(nil, 1, 1, 0, 10, 0, 0, rng()); err == nil {
		t.Error("empty fleet accepted")
	}
	unracked := SpecsFrom([]workload.NodeClass{workload.PaperNode()})
	if _, err := RackStormEvents(unracked, 1, 0, 0, 10, 0, 0, rng()); err == nil {
		t.Error("unracked fleet accepted")
	}
	if _, err := RackStormEvents(specs, 0, 0, 0, 10, 0, 0, rng()); err == nil {
		t.Error("zero-rack storm accepted")
	}
	if _, err := RackStormEvents(specs, -1, 2, 0, 10, 0, 0, rng()); err == nil {
		t.Error("negative drain count accepted")
	}
	if _, err := RackStormEvents(specs, 2, 2, 0, 10, 0, 0, rng()); err == nil {
		t.Error("fleet-exhausting storm accepted")
	}
	for _, w := range [][4]float64{{-1, 10, 0, 0}, {0, 0, 0, 0}, {0, 10, -1, 0}, {0, 10, 0, -1}} {
		if _, err := RackStormEvents(specs, 1, 1, w[0], w[1], w[2], w[3], rng()); err == nil {
			t.Errorf("invalid window %v accepted", w)
		}
	}
}
