package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// Unit tests for the completion heap's invariants, independent of the engine:
// lazy-deletion staleness, duplicate registrations for one entity, FIFO pop
// order among equal deadlines, and randomized heap-vs-scan min agreement.
// The differential property tests cover the same structure end-to-end; these
// pin the data-structure contract directly so a violation fails with a
// one-screen reproduction instead of a diverging 20k-app run.

// TestCompletionEntryStaleness pins the validity rule: an entry speaks for
// its entity only while the stored deadline still equals the entry's time and
// the entity has not completed.
func TestCompletionEntryStaleness(t *testing.T) {
	a := &App{ID: 1, State: StateRunning, deadline: 50}
	e := completionEntry{at: 50, seq: 1, app: a}
	if e.stale() {
		t.Error("matching deadline on a live app must be fresh")
	}
	//moevet:allow settledstate staleness unit test drives the stored deadline by hand; no engine is running
	a.deadline = 60 // re-registered later: the old entry dies in place
	if !e.stale() {
		t.Error("entry must go stale when the stored deadline moves")
	}
	//moevet:allow settledstate staleness unit test drives the stored deadline by hand; no engine is running
	a.deadline = 50
	a.State = StateDone
	if !e.stale() {
		t.Error("entry for a done app must be stale even with a matching deadline")
	}

	f := &ForeignTask{Name: "co", deadline: 30}
	fe := completionEntry{at: 30, seq: 2, f: f}
	if fe.stale() {
		t.Error("matching deadline on a live foreign task must be fresh")
	}
	//moevet:allow settledstate staleness unit test completes the task by hand; no engine is running
	f.done = true
	if !fe.stale() {
		t.Error("entry for a done foreign task must be stale")
	}
}

// TestCompletionHeapDuplicatePushes re-registers one app several times, as a
// string of rate changes does: every superseded entry must surface stale and
// exactly one pop must be live, at the final deadline.
func TestCompletionHeapDuplicatePushes(t *testing.T) {
	var h completionHeap
	a := &App{ID: 7, State: StateRunning}
	for i, at := range []float64{100, 40, 70, 55} {
		//moevet:allow settledstate heap unit test re-registers deadlines by hand; no engine is running
		a.deadline = at
		h.push(completionEntry{at: at, seq: uint64(i + 1), app: a})
	}
	live := 0
	for {
		top, ok := h.pop()
		if !ok {
			break
		}
		if top.stale() {
			continue
		}
		live++
		if top.at != 55 {
			t.Errorf("live entry at %v, want the final registration 55", top.at)
		}
	}
	if live != 1 {
		t.Errorf("%d live entries for one app, want exactly 1", live)
	}
}

// TestCompletionHeapEqualDeadlineFIFO pushes many entries with one deadline
// and checks pops come back in registration (seq) order — the tie-break that
// keeps same-instant completions deterministic — including after a compact
// rebuilt the heap around interleaved stale entries.
func TestCompletionHeapEqualDeadlineFIFO(t *testing.T) {
	var h completionHeap
	const n = 32
	apps := make([]*App, n)
	for i := range apps {
		apps[i] = &App{ID: i, State: StateRunning, deadline: 200}
		h.push(completionEntry{at: 200, seq: uint64(i + 1), app: apps[i]})
	}
	// Invalidate every third app and push fresh later deadlines for them, so
	// compact has real work and survivors keep their original seqs.
	for i := 0; i < n; i += 3 {
		//moevet:allow settledstate compaction unit test invalidates deadlines by hand; no engine is running
		apps[i].deadline = 300
		h.push(completionEntry{at: 300, seq: uint64(n + i + 1), app: apps[i]})
	}
	h.compact()
	var lastSeq uint64
	var lastAt float64
	for {
		top, ok := h.pop()
		if !ok {
			break
		}
		if top.stale() {
			t.Fatalf("stale entry survived compact: at=%v seq=%d", top.at, top.seq)
		}
		if top.at < lastAt || (top.at == lastAt && top.seq <= lastSeq) {
			t.Fatalf("pop order broken: (at=%v seq=%d) after (at=%v seq=%d)", top.at, top.seq, lastAt, lastSeq)
		}
		lastAt, lastSeq = top.at, top.seq
	}
}

// TestCompletionHeapRandomizedMinAgreement drives the heap through random
// registrations, re-registrations, completions and pops, mirroring the live
// deadline of every entity in a plain map; at every pop the surfaced live
// minimum must equal a linear scan of the mirror under the (at, seq) order.
func TestCompletionHeapRandomizedMinAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var h completionHeap
	var seq uint64
	type reg struct {
		at  float64
		seq uint64
	}
	mirror := map[*App]reg{}
	var apps []*App
	register := func(a *App, at float64) {
		seq++
		//moevet:allow settledstate randomized heap test mirrors registrations by hand; no engine is running
		a.deadline = at
		h.push(completionEntry{at: at, seq: seq, app: a})
		mirror[a] = reg{at: at, seq: seq}
	}
	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(10); {
		case op < 4 || len(apps) == 0: // new entity
			a := &App{ID: len(apps), State: StateRunning}
			apps = append(apps, a)
			register(a, 1000*rng.Float64())
		case op < 7: // re-register an existing entity (rate change)
			a := apps[rng.Intn(len(apps))]
			if a.State != StateDone {
				register(a, 1000*rng.Float64())
			}
		case op < 8: // complete an entity without popping (lazy death)
			a := apps[rng.Intn(len(apps))]
			if a.State != StateDone {
				a.State = StateDone
				delete(mirror, a)
			}
		default: // pop the live minimum and check it against the scan
			var want *App
			best := reg{at: math.Inf(1)}
			//moevet:allow maporder min selection under the (at, seq) total order has a unique winner
			for a, r := range mirror {
				if r.at < best.at || (r.at == best.at && r.seq < best.seq) {
					best, want = r, a
				}
			}
			var got *App
			for {
				top, ok := h.pop()
				if !ok {
					break
				}
				if top.stale() {
					continue
				}
				got = top.app
				break
			}
			if got != want {
				t.Fatalf("step %d: heap min app %v, scan min app %v", step, got, want)
			}
			if want != nil {
				if got.deadline != best.at {
					t.Fatalf("step %d: popped deadline %v, mirror %v", step, got.deadline, best.at)
				}
				// Popped = consumed: the engine marks the app done or
				// re-registers; here it leaves the system.
				got.State = StateDone
				delete(mirror, got)
			}
		}
		if step%500 == 250 {
			h.compact()
			if len(h) != len(mirror) {
				t.Fatalf("step %d: %d entries after compact, %d live entities", step, len(h), len(mirror))
			}
		}
	}
}
