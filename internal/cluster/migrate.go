package cluster

import "math"

// Graceful drain migration (Config.MigrateOnDrain): instead of letting a
// draining node's executors run to completion in place — leaving the node in
// the fleet's bookkeeping for the rest of their lifetimes, and leaving them
// exposed if the drain was the warning phase of a failure — the engine
// checkpoints each executor and moves its work to a safe node. Two moves
// exist, tried in order:
//
//  1. Relocation: the executor moves intact to a node where its app has no
//     executor yet, keeping its reservation and allocation. The cost model
//     gates its rate at zero on the new node for
//
//     processedGB / MigrateCheckpointGBps + MigrateRestartSec
//
//     seconds (serialize, ship and rehydrate the state it has built, then
//     pay the container/JVM restart), carried by Executor.gateUntil and
//     woken through the same wake-heap machinery as the app-level startup
//     gate.
//
//  2. Handoff: when the app already has an executor on every feasible node
//     (large apps legitimately span the fleet) or no node has room, the
//     draining executor checkpoints its state into a sibling executor on a
//     safe node — Spark's graceful decommission shipping blocks to peers —
//     and leaves the fleet without any charge-back: the work it processed
//     stays done. The receiving sibling is gated for the ship time
//     processedGB / MigrateCheckpointGBps (no restart: the receiver is
//     already running).
//
// Executors with no feasible relocation target and no sibling stay put and
// run to completion in place (the pre-migration drain semantics).
//
// Everything here follows the settle discipline (see eventindex.go): the
// app settles under the rates that held up to this instant BEFORE the
// executor changes nodes, both nodes are dirtied so the next rate pass
// recomputes them, and the touch queues the deadline refresh. migrateFrom,
// migrateExecutor and handoffExecutor are registered settle touch points for
// the moevet settledstate analyzer.

// migrateFrom evacuates every executor on a draining node, in spawn order:
// relocation when a fresh node qualifies, handoff into a sibling otherwise.
func (c *Cluster) migrateFrom(n *Node) {
	// Walk a snapshot: each successful migration removes the executor from
	// n.Executors in place.
	c.victimBuf = append(c.victimBuf[:0], n.Executors...)
	for _, e := range c.victimBuf {
		if !c.migrateExecutor(e) {
			c.handoffExecutor(e)
		}
	}
}

// migrateExecutor checkpoints one executor and moves it to the first
// feasible node in node-scan order: available, not already hosting an
// executor of the app, not blacklisted for it (unless empty, mirroring
// Spawn), and with enough free memory for the executor's reservation as is.
// Returns false when no node qualifies and the executor stays where it is.
func (c *Cluster) migrateExecutor(e *Executor) bool {
	const eps = 1e-9
	app := e.App
	var target *Node
	for _, cand := range c.nodes {
		if !cand.Available() || cand == e.Node || app.ExecutorOn(cand) {
			continue
		}
		if app.BlockedOn(cand, c.now) && len(cand.Executors) > 0 {
			continue
		}
		if e.ReservedGB > cand.FreeGB()+eps {
			continue
		}
		target = cand
		break
	}
	if target == nil {
		return false
	}
	// Settle the app's progress (and this executor's processedGB) under the
	// rates that held up to this instant, then queue the deadline refresh:
	// the checkpoint size must be the work actually done, and the app may
	// keep executors on clean nodes the dirty marks below would not touch.
	c.settleApp(app)
	c.touchApp(app)
	old := e.Node
	for i, x := range old.Executors {
		if x == e {
			old.Executors = append(old.Executors[:i], old.Executors[i+1:]...)
			break
		}
	}
	c.markDirty(old)
	e.Node = target
	target.Executors = append(target.Executors, e)
	c.markDirty(target)
	cost := c.cfg.MigrateRestartSec
	if c.cfg.MigrateCheckpointGBps > 0 {
		cost += e.processedGB / c.cfg.MigrateCheckpointGBps
	}
	if cost < 0 {
		cost = 0
	}
	e.gateUntil = c.now + cost
	app.Migrations++
	c.totalMigrations++
	return true
}

// handoffExecutor retires the draining executor into the app's first sibling
// executor on an available node (node-scan order): the executor's state
// ships to the sibling, which is gated for the transfer time, and the
// executor leaves without charging any work back — its processed items stay
// processed, and the app's remaining work keeps flowing through the
// surviving fleet. Returns false when the app has no sibling on a safe node.
func (c *Cluster) handoffExecutor(e *Executor) bool {
	app := e.App
	// Ship to the least-gated sibling (ties keep node-scan order): a
	// correlated storm hands several executors of the same app off in one
	// batch, and always picking the first sibling would serialize every
	// transfer behind one receiver.
	var sibling *Executor
	for _, cand := range c.nodes {
		if !cand.Available() || cand == e.Node {
			continue
		}
		for _, x := range cand.Executors {
			if x.App == app {
				if sibling == nil || x.gateUntil < sibling.gateUntil {
					sibling = x
				}
				break // at most one executor per app per node
			}
		}
	}
	if sibling == nil {
		return false
	}
	// Settle first: the ship cost reads processedGB, and removeExecutor
	// changes the app's rate structure. The touch queues the deadline
	// refresh for the app's executors on clean nodes.
	c.settleApp(app)
	c.touchApp(app)
	ship := 0.0
	if c.cfg.MigrateCheckpointGBps > 0 {
		ship = e.processedGB / c.cfg.MigrateCheckpointGBps
	}
	c.removeExecutor(e)
	if gate := c.now + ship; gate > sibling.gateUntil {
		sibling.gateUntil = gate
	}
	c.markDirty(sibling.Node)
	app.Migrations++
	c.totalMigrations++
	return true
}

// blacklistUntil returns the expiry of a new OOM blacklist entry for the
// app: permanent (+Inf) under the legacy policy (OOMRetryBudget 0) or once
// the app's budget is spent, otherwise a cool-off that doubles with every
// retry already consumed — deterministic exponential backoff, seeded only by
// the run itself.
func (c *Cluster) blacklistUntil(a *App) float64 {
	if c.cfg.OOMRetryBudget <= 0 || a.OOMRetries >= c.cfg.OOMRetryBudget {
		return permanentBlock
	}
	cool := c.cfg.OOMCoolOffSec * math.Ldexp(1, a.OOMRetries)
	a.OOMRetries++
	c.totalRetries++
	return c.now + cool
}
