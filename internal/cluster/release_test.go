package cluster

import (
	"testing"

	"moespark/internal/workload"
)

// Direct accounting: with ReleaseForeignMem a completed foreign task's
// working set leaves both memory sums; without it the set stays resident
// (the historical quirk).
func TestReleaseForeignMemFreesWorkingSet(t *testing.T) {
	for _, release := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Nodes = 1
		cfg.ReleaseForeignMem = release
		c := New(cfg)
		f, err := c.AddForeign(0, "hog", 0.3, 40, 50)
		if err != nil {
			t.Fatal(err)
		}
		n := c.Nodes()[0]
		if n.ActualGB() != 40 || n.ReservedGB() != 40 {
			t.Fatalf("release=%v: running foreign task must be resident (actual %v reserved %v)",
				release, n.ActualGB(), n.ReservedGB())
		}
		//moevet:allow settledstate flipping completion directly to probe ReservedGB/ActualGB accounting
		f.done = true
		want := 40.0
		if release {
			want = 0
		}
		if n.ActualGB() != want || n.ReservedGB() != want {
			t.Errorf("release=%v: after completion actual %v reserved %v, want %v",
				release, n.ActualGB(), n.ReservedGB(), want)
		}
	}
}

// pinScheduler spawns every waiting app once on node 0 with a fixed
// reservation, so the paging arithmetic of the regression test below is
// fully controlled.
type pinScheduler struct {
	reserveGB float64
}

func (pinScheduler) Name() string                       { return "test-pin" }
func (pinScheduler) Prepare(*Cluster, *App) ProfilePlan { return ProfilePlan{} }
func (s pinScheduler) Schedule(c *Cluster) {
	for _, app := range c.WaitingApps() {
		if len(app.Executors) == 0 {
			_, _ = c.Spawn(app, c.Nodes()[0], s.reserveGB, app.RemainingGB)
		}
	}
}

// Regression: a big co-runner pushes the node over the pressure watermark;
// once it completes, a release-enabled node un-pages and the surviving
// executor speeds up, while the default node stays paging-penalized for the
// rest of the run.
func TestReleaseForeignMemUnpagesNode(t *testing.T) {
	b, err := workload.Find("BDB.PageRank") // log family: footprint >> reservation
	if err != nil {
		t.Fatal(err)
	}
	run := func(release bool) (makespan float64, trailingActual float64) {
		cfg := DefaultConfig()
		cfg.Nodes = 1
		cfg.ReleaseForeignMem = release
		c := New(cfg)
		// 45 GB working set + the executor's ~11.5 GB residency exceeds the
		// 55.2 GB watermark, so the node pages while the hog lives.
		if _, err := c.AddForeign(0, "hog", 0.4, 45, 200); err != nil {
			t.Fatal(err)
		}
		res, err := c.RunOpen([]Submission{{At: 0, Job: workload.Job{Bench: b, InputGB: 16}}},
			pinScheduler{reserveGB: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakespanSec, c.Nodes()[0].ActualGB()
	}
	keepSpan, keepActual := run(false)
	relSpan, relActual := run(true)
	if keepActual != 45 {
		t.Errorf("default path: completed hog must stay resident, ActualGB = %v", keepActual)
	}
	if relActual != 0 {
		t.Errorf("release path: completed hog must free its set, ActualGB = %v", relActual)
	}
	if relSpan >= keepSpan {
		t.Errorf("un-paged node must finish sooner: release %v s vs keep %v s", relSpan, keepSpan)
	}
}

// The fleet-aware sizing must read the specs of nodes actually free at
// admission: a little-node fleet needs far more executors than the
// reference formula assumes, a big-node fleet fewer, and unavailable nodes
// don't count. Clearing the flag keeps the reference formula everywhere.
func TestFleetAwareSizing(t *testing.T) {
	b, err := workload.Find("SP.Gmm")
	if err != nil {
		t.Fatal(err)
	}
	job := workload.Job{Bench: b, InputGB: 64}
	mkCluster := func(spec NodeSpec, nodes int, aware bool) *Cluster {
		cfg := DefaultConfig()
		cfg.FleetAwareSizing = aware
		specs := make([]NodeSpec, nodes)
		for i := range specs {
			specs[i] = spec
		}
		c, err := NewHetero(cfg, specs)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	little := NodeSpec{RAMGB: 16, Cores: 8, SpeedFactor: 1, SwapGB: 8, OSReserveGB: 4}
	big := NodeSpec{RAMGB: 128, Cores: 32, SpeedFactor: 1.2, SwapGB: 16, OSReserveGB: 4}

	// Reference formula, regardless of fleet: ceil(64/16) = 4 executors.
	if got := mkCluster(little, 24, false).AddReadyApp(job).MaxExecutors; got != 4 {
		t.Errorf("reference sizing on little fleet: %d executors, want 4", got)
	}
	// Aware sizing on little nodes: each contributes 16 GB scaled by
	// 11.04/55.2 allocatable = 3.2 GB, so 64 GB needs 20 of them.
	if got := mkCluster(little, 24, true).AddReadyApp(job).MaxExecutors; got != 20 {
		t.Errorf("aware sizing on little fleet: %d executors, want 20", got)
	}
	// Aware sizing on big nodes: each contributes 16 * 114.08/55.2 ≈ 33 GB,
	// so 2 executors cover 64 GB (the reference formula would start 4).
	if got := mkCluster(big, 24, true).AddReadyApp(job).MaxExecutors; got != 2 {
		t.Errorf("aware sizing on big fleet: %d executors, want 2", got)
	}
	// Unavailable nodes are not free at admission: with only 10 little
	// nodes placeable, the fleet caps there.
	c := mkCluster(little, 24, true)
	for i, n := range c.Nodes() {
		if i >= 10 {
			n.state = NodeDraining
		}
	}
	if got := c.AddReadyApp(job).MaxExecutors; got != 10 {
		t.Errorf("aware sizing with 10 free nodes: %d executors, want 10", got)
	}
}
