package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"moespark/internal/workload"
)

// SpecsFrom converts a workload fleet description into per-node specs for
// NewHetero. (The conversion lives here because cluster already imports
// workload; the reverse import would cycle.)
func SpecsFrom(fleet []workload.NodeClass) []NodeSpec {
	specs := make([]NodeSpec, len(fleet))
	for i, c := range fleet {
		specs[i] = NodeSpec{
			RAMGB:       c.RAMGB,
			Cores:       c.Cores,
			SpeedFactor: c.SpeedFactor,
			SwapGB:      c.SwapGB,
			OSReserveGB: c.OSReserveGB,
			Rack:        c.Rack,
			Zone:        c.Zone,
		}
	}
	return specs
}

// StormEvents generates a seeded drain/fail storm over an initial fleet of
// nodeCount nodes: drains and fails hit distinct uniformly-drawn nodes at
// uniform times in [start, start+span), and each failed or drained node is
// replaced by a default-spec join one startup-latency later, modelling an
// autoscaler backfilling lost capacity. The same seed yields the identical
// storm.
func StormEvents(nodeCount, drains, fails int, start, span, rejoinDelay float64, rng *rand.Rand) ([]NodeEvent, error) {
	if nodeCount <= 0 {
		return nil, fmt.Errorf("cluster: storm needs a positive node count, got %d", nodeCount)
	}
	if drains < 0 || fails < 0 || drains+fails == 0 {
		return nil, fmt.Errorf("cluster: storm needs a non-negative mix of drains (%d) and fails (%d)", drains, fails)
	}
	if drains+fails >= nodeCount {
		return nil, fmt.Errorf("cluster: storm of %d events would exhaust the %d-node fleet", drains+fails, nodeCount)
	}
	if start < 0 || span <= 0 || rejoinDelay < 0 {
		return nil, fmt.Errorf("cluster: invalid storm window start=%v span=%v rejoin=%v", start, span, rejoinDelay)
	}
	perm := rng.Perm(nodeCount)
	events := make([]NodeEvent, 0, 2*(drains+fails))
	for i := 0; i < drains+fails; i++ {
		at := start + rng.Float64()*span
		kind := NodeDrain
		if i >= drains {
			kind = NodeFail
		}
		events = append(events, NodeEvent{At: at, Kind: kind, Node: perm[i]})
		events = append(events, NodeEvent{At: at + rejoinDelay, Kind: NodeJoin})
	}
	return events, nil
}

// RackStormEvents generates a seeded rack-correlated storm over an initial
// fleet: whole racks leave together, the failure mode production schedulers
// actually plan for (a ToR switch or PDU takes every machine behind it).
// The specs slice is the initial fleet in node-ID order (node i has spec
// specs[i], as NewHetero builds it); distinct rack labels are collected in
// first-appearance order and drainRacks+failRacks of them are drawn from a
// seeded permutation. Each chosen rack gets one uniform time in
// [start, start+span): a drained rack drains every node at that instant; a
// failed rack first drains every node (the warnSec advance notice a
// maintenance controller gives — the window graceful migration gets to
// evacuate) and then fails them warnSec later. warnSec = 0 means unannounced
// failure. Every lost node is backfilled by a join with the identical spec —
// same rack label — rejoinDelay after it left. The same seed yields the
// identical storm.
func RackStormEvents(specs []NodeSpec, drainRacks, failRacks int, start, span, warnSec, rejoinDelay float64, rng *rand.Rand) ([]NodeEvent, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: rack storm needs a non-empty fleet")
	}
	var racks []string
	seen := map[string]bool{}
	for i, s := range specs {
		if s.Rack == "" {
			return nil, fmt.Errorf("cluster: rack storm needs topology, node %d has no rack", i)
		}
		if !seen[s.Rack] {
			seen[s.Rack] = true
			racks = append(racks, s.Rack)
		}
	}
	if drainRacks < 0 || failRacks < 0 || drainRacks+failRacks == 0 {
		return nil, fmt.Errorf("cluster: rack storm needs a non-negative mix of drains (%d) and fails (%d)", drainRacks, failRacks)
	}
	if drainRacks+failRacks >= len(racks) {
		return nil, fmt.Errorf("cluster: storm over %d racks would exhaust the %d-rack fleet", drainRacks+failRacks, len(racks))
	}
	if start < 0 || span <= 0 || warnSec < 0 || rejoinDelay < 0 {
		return nil, fmt.Errorf("cluster: invalid storm window start=%v span=%v warn=%v rejoin=%v", start, span, warnSec, rejoinDelay)
	}
	perm := rng.Perm(len(racks))
	events := make([]NodeEvent, 0, 3*len(specs))
	for i := 0; i < drainRacks+failRacks; i++ {
		rack := racks[perm[i]]
		at := start + rng.Float64()*span
		failing := i >= drainRacks
		for id, s := range specs {
			if s.Rack != rack {
				continue
			}
			gone := at
			if failing {
				if warnSec > 0 {
					events = append(events, NodeEvent{At: at, Kind: NodeDrain, Node: id})
				}
				gone = at + warnSec
				events = append(events, NodeEvent{At: gone, Kind: NodeFail, Node: id})
			} else {
				events = append(events, NodeEvent{At: at, Kind: NodeDrain, Node: id})
			}
			events = append(events, NodeEvent{At: gone + rejoinDelay, Kind: NodeJoin, Spec: s})
		}
	}
	return events, nil
}

// NodeEventKind enumerates timed node lifecycle events.
type NodeEventKind int

// Node lifecycle event kinds.
const (
	// NodeJoin adds a new node (with NodeEvent.Spec, or the platform default
	// spec when zero) to the cluster.
	NodeJoin NodeEventKind = iota + 1
	// NodeDrain stops new placements on the target node; resident executors
	// run to completion.
	NodeDrain
	// NodeFail removes the target node immediately: resident executors are
	// killed and their partial work is charged back to their applications
	// (OOMReprocessFrac), foreign tasks on the node are lost.
	NodeFail
)

// String implements fmt.Stringer.
func (k NodeEventKind) String() string {
	switch k {
	case NodeJoin:
		return "join"
	case NodeDrain:
		return "drain"
	case NodeFail:
		return "fail"
	default:
		return fmt.Sprintf("NodeEventKind(%d)", int(k))
	}
}

// NodeEvent is one timed node lifecycle event consumed by the engine: at time
// At the node set changes. Together with Submissions, NodeEvents make the
// open-system engine model churny fleets — scale-ups, rolling drains and
// hardware failures — rather than the paper's fixed 40 nodes.
type NodeEvent struct {
	// At is the event time in simulation seconds.
	At float64
	// Kind selects join, drain or fail.
	Kind NodeEventKind
	// Node is the target node ID for drain and fail; ignored for join.
	Node int
	// Spec is the joining node's hardware (join only); the zero value means
	// the platform's default spec.
	Spec NodeSpec
}

// ScheduleNodeEvents registers lifecycle events before a run. Events may be
// given in any order; ties keep their registration order. Target validity is
// checked when the event fires (a join may create the target of a later
// drain).
func (c *Cluster) ScheduleNodeEvents(events ...NodeEvent) error {
	for _, ev := range events {
		if ev.At < 0 || math.IsNaN(ev.At) || math.IsInf(ev.At, 0) {
			return fmt.Errorf("cluster: invalid node event time %v", ev.At)
		}
		switch ev.Kind {
		case NodeJoin:
			if ev.Spec != (NodeSpec{}) {
				if err := ev.Spec.Validate(); err != nil {
					return err
				}
			}
		case NodeDrain, NodeFail:
			if ev.Node < 0 {
				return fmt.Errorf("cluster: %s event targets negative node %d", ev.Kind, ev.Node)
			}
		default:
			return fmt.Errorf("cluster: unknown node event kind %v", ev.Kind)
		}
	}
	c.nodeEvents = append(c.nodeEvents, events...)
	sort.SliceStable(c.nodeEvents, func(i, j int) bool {
		return c.nodeEvents[i].At < c.nodeEvents[j].At
	})
	return nil
}

// applyNodeEvents fires every scheduled lifecycle event whose time has come.
// Nodes that entered the Draining state this call are migrated after the
// whole due batch has been applied (not per event): in a correlated storm
// several racks can leave at the same instant, and evacuating the first one
// before its peers' drain events have fired would migrate executors onto a
// node about to drain itself, paying the checkpoint cost twice.
func (c *Cluster) applyNodeEvents() error {
	const eps = 1e-9
	firstDraining := len(c.draining)
	for len(c.nodeEvents) > 0 && c.nodeEvents[0].At <= c.now+eps {
		ev := c.nodeEvents[0]
		c.nodeEvents = c.nodeEvents[1:]
		switch ev.Kind {
		case NodeJoin:
			spec := ev.Spec
			if spec == (NodeSpec{}) {
				spec = c.cfg.DefaultNodeSpec()
			}
			n := newNode(c.nextNodeID, spec, c.cfg, c.now)
			n.shard = c.joinShard(n.ID, spec)
			c.nodes = append(c.nodes, n)
			c.nextNodeID++
			c.markDirty(n)
		case NodeDrain:
			n, err := c.nodeByID(ev.Node, ev.Kind)
			if err != nil {
				return err
			}
			if n == nil {
				continue // the node already drained out; nothing left to act on
			}
			if n.state != NodeDraining {
				c.draining = append(c.draining, n)
			}
			n.state = NodeDraining
			n.StateTime = c.now
		case NodeFail:
			n, err := c.nodeByID(ev.Node, ev.Kind)
			if err != nil {
				return err
			}
			if n == nil {
				continue
			}
			c.failNode(n)
		}
	}
	if c.cfg.MigrateOnDrain {
		// Index, not range: a same-instant drain of a migration target cannot
		// happen (all due drains fired above), but a defensive copy-free walk
		// keeps any future append during migration visible.
		for i := firstDraining; i < len(c.draining); i++ {
			if n := c.draining[i]; n.state == NodeDraining {
				c.migrateFrom(n)
			}
		}
	}
	return nil
}

// completeDrains decommissions every draining node whose last executor and
// foreign task have finished: the node leaves the fleet (NodeRemoved,
// StateTime stamped at the decommission instant) instead of idling in traces
// and bookkeeping forever. A drain of an already-empty node decommissions it
// immediately. Only nodes actually in the Draining state are visited: drain
// events enqueue their node on the draining list, and a node leaves it when
// it decommissions or a failure overtook the drain. Decommissions are
// per-node-independent state flips, so visiting the short list in drain
// order decides exactly what the historical full-fleet scan decided.
func (c *Cluster) completeDrains() {
	if len(c.draining) == 0 {
		return
	}
	w := 0
	for _, n := range c.draining {
		if n.state != NodeDraining {
			continue // failed mid-drain; failNode already settled it
		}
		busy := len(n.Executors) > 0
		for _, f := range n.Foreign {
			if busy {
				break
			}
			busy = !f.done
		}
		if busy {
			c.draining[w] = n
			w++
			continue
		}
		n.state = NodeRemoved
		n.StateTime = c.now
		c.unblockNode(n.ID)
	}
	clear(c.draining[w:])
	c.draining = c.draining[:w]
}

// unblockNode drops the node's ID from every active application's OOM
// blacklist when the node leaves the fleet for good (decommission or
// failure). Node IDs are never reused — joins allocate from a monotone
// counter — so a stale entry could never block a future node, but without
// this sweep the per-app maps grow with every decommissioned ID for the
// app's whole lifetime (the blockedNodes leak). Behaviour is unchanged:
// Removed/Failed nodes never pass the Available check that guards every
// BlockedOn consultation.
func (c *Cluster) unblockNode(id int) {
	for _, a := range c.active {
		delete(a.blockedNodes, id)
	}
}

// nodeByID resolves a lifecycle event target. Failed nodes are invalid
// targets (the event script is wrong); a decommissioned node resolves to
// (nil, nil) — whether a drain completes before or after a later event
// against the same node fires depends on workload timing, so the event is a
// no-op rather than an error.
func (c *Cluster) nodeByID(id int, kind NodeEventKind) (*Node, error) {
	for _, n := range c.nodes {
		if n.ID == id {
			if n.state == NodeFailed {
				return nil, fmt.Errorf("cluster: %s event targets node %d, which already failed", kind, id)
			}
			if n.state == NodeRemoved {
				return nil, nil
			}
			return n, nil
		}
	}
	return nil, fmt.Errorf("cluster: %s event targets unknown node %d", kind, id)
}

// failNode kills everything resident on the node and removes it from
// placement. Killed executors charge reprocessing work back to their
// applications, mirroring the OOM-kill path: a failure loses the same
// partial state an OOM kill does.
func (c *Cluster) failNode(n *Node) {
	for len(n.Executors) > 0 {
		victim := n.Executors[len(n.Executors)-1]
		c.totalFailKills++
		c.reclaimExecutor(victim)
	}
	for _, f := range n.Foreign {
		if !f.done {
			// The co-runner dies with its node; it never completes its work.
			f.done = true
			f.DoneTime = c.now
			f.Lost = true
			c.doneForeign++
		}
	}
	n.state = NodeFailed
	n.StateTime = c.now
	c.unblockNode(n.ID)
	c.markDirty(n)
}

// nextNodeEventDt returns the time to the next scheduled lifecycle event.
func (c *Cluster) nextNodeEventDt() (float64, bool) {
	if len(c.nodeEvents) == 0 {
		return 0, false
	}
	return c.nodeEvents[0].At - c.now, true
}
