package cluster

import (
	"math/rand"
	"testing"

	"moespark/internal/workload"
)

// BenchmarkOpenSystemEngine times the event-engine hot loop (nextEventDt /
// advance / admitArrivals) under a 200-application open-system run with
// Poisson arrivals: the baseline for future engine optimizations such as an
// indexed event queue. The scheduler is deliberately trivial so the engine
// dominates the profile.
func BenchmarkOpenSystemEngine(b *testing.B) {
	arrivals, err := workload.PoissonArrivals(200, 0.05, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	subs := Submissions(arrivals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(DefaultConfig())
		res, err := c.RunOpen(subs, &fullSpeedScheduler{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Apps) != 200 {
			b.Fatalf("%d apps completed, want 200", len(res.Apps))
		}
	}
}

// scaleRun is one large open-system run for the scaling benchmarks: a
// bimodal big/little fleet, a drain/fail storm with autoscaler rejoins, and
// a classed (latency/batch) arrival stream, so the weighted-admission,
// node-event and heterogeneous-rate paths are all on the clock. The
// scheduler is the trivial whole-node policy so the engine dominates. The
// arrival rate keeps the system loaded but *stable* (in-flight apps plateau
// near 80 at any stream length): an overloaded queue grows its backlog with
// the stream, making every engine — indexed or not — intrinsically
// quadratic, which would measure the workload rather than the engine. For the
// same reason the run pins the pre-flip reference fleet sizing: under
// FleetAwareSizing (the DefaultConfig default since the settle-engine
// re-capture) apps admitted into the saturated fleet get smaller executor
// fleets, which tips this workload just past stability — the in-flight set
// drifts from ~80 at 10k apps to ~180 at 100k and the scaling ratio starts
// measuring backlog growth instead of the event loop.
func scaleRun(b *testing.B, apps int) {
	b.Helper()
	const nodes = 64
	fleet, err := workload.BimodalFleet(nodes, workload.BigNode(), workload.LittleNode(), 0.5, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	specs := SpecsFrom(fleet)
	rng := rand.New(rand.NewSource(3))
	arrivals, err := workload.PoissonArrivals(apps, 0.018, rng)
	if err != nil {
		b.Fatal(err)
	}
	tagged, err := workload.TagArrivals(arrivals, workload.LatencyBatchMix(0.3), rng)
	if err != nil {
		b.Fatal(err)
	}
	subs := Submissions(tagged)
	span := tagged[len(tagged)-1].At
	storm, err := StormEvents(nodes, 4, 4, span*0.1, span*0.8, 30, rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.FleetAwareSizing = false // stability: see the comment above
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewHetero(cfg, specs)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.ScheduleNodeEvents(storm...); err != nil {
			b.Fatal(err)
		}
		res, err := c.RunOpen(subs, &fullSpeedScheduler{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Apps) != apps {
			b.Fatalf("%d apps completed, want %d", len(res.Apps), apps)
		}
	}
}

// BenchmarkOpenSystemEngine2500 is the half-scale point of the scaling pair:
// together with the 5k benchmark it pins the engine's growth rate (doubling
// the stream should far undercut the old engine's ~4x quadratic cost).
func BenchmarkOpenSystemEngine2500(b *testing.B) { scaleRun(b, 2500) }

// BenchmarkOpenSystemEngine5000 is the production-scale stress point from
// the ROADMAP's event-queue-indexing item: 5k classed arrivals on a churny
// 64-node bimodal fleet.
func BenchmarkOpenSystemEngine5000(b *testing.B) { scaleRun(b, 5000) }

// BenchmarkOpenSystemEngine10000 through 100000 are the fleet-scale points of
// the completion-heap PR: with settle-on-rate-change integration the engine
// no longer rescans rate-driven completions on every event, so 10x-ing the
// stream should cost close to 10x in wall time (the 10k→100k engine-only
// ratio recorded in BENCH_engine.json must stay ≤ 12x). The 100k point was
// out of reach for the scan engine, which paid O(total apps) per event.
func BenchmarkOpenSystemEngine10000(b *testing.B) { scaleRun(b, 10000) }

func BenchmarkOpenSystemEngine20000(b *testing.B) { scaleRun(b, 20000) }

func BenchmarkOpenSystemEngine100000(b *testing.B) { scaleRun(b, 100000) }

// BenchmarkClosedBatchEngine is the closed-batch counterpart on the same
// 200-job set, isolating the cost of arrival handling from the rest of the
// loop.
func BenchmarkClosedBatchEngine(b *testing.B) {
	arrivals, err := workload.PoissonArrivals(200, 0.05, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	jobs := make([]workload.Job, len(arrivals))
	for i, a := range arrivals {
		jobs[i] = a.Job
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(DefaultConfig())
		if _, err := c.Run(jobs, &fullSpeedScheduler{}); err != nil {
			b.Fatal(err)
		}
	}
}
