package cluster

import (
	"math/rand"
	"testing"

	"moespark/internal/workload"
)

// BenchmarkOpenSystemEngine times the event-engine hot loop (nextEventDt /
// advance / admitArrivals) under a 200-application open-system run with
// Poisson arrivals: the baseline for future engine optimizations such as an
// indexed event queue. The scheduler is deliberately trivial so the engine
// dominates the profile.
func BenchmarkOpenSystemEngine(b *testing.B) {
	arrivals, err := workload.PoissonArrivals(200, 0.05, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	subs := Submissions(arrivals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(DefaultConfig())
		res, err := c.RunOpen(subs, &fullSpeedScheduler{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Apps) != 200 {
			b.Fatalf("%d apps completed, want 200", len(res.Apps))
		}
	}
}

// scaleRun is one large open-system run for the scaling benchmarks: a
// bimodal big/little fleet, a drain/fail storm with autoscaler rejoins, and
// a classed (latency/batch) arrival stream, so the weighted-admission,
// node-event and heterogeneous-rate paths are all on the clock. The
// scheduler is the trivial whole-node policy so the engine dominates. The
// arrival rate keeps the system loaded but *stable* (in-flight apps plateau
// near 80 at any stream length): an overloaded queue grows its backlog with
// the stream, making every engine — indexed or not — intrinsically
// quadratic, which would measure the workload rather than the engine. For the
// same reason the run pins the pre-flip reference fleet sizing: under
// FleetAwareSizing (the DefaultConfig default since the settle-engine
// re-capture) apps admitted into the saturated fleet get smaller executor
// fleets, which tips this workload just past stability — the in-flight set
// drifts from ~80 at 10k apps to ~180 at 100k and the scaling ratio starts
// measuring backlog growth instead of the event loop.
func scaleRun(b *testing.B, apps int) {
	b.Helper()
	const nodes = 64
	fleet, err := workload.BimodalFleet(nodes, workload.BigNode(), workload.LittleNode(), 0.5, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	specs := SpecsFrom(fleet)
	rng := rand.New(rand.NewSource(3))
	arrivals, err := workload.PoissonArrivals(apps, 0.018, rng)
	if err != nil {
		b.Fatal(err)
	}
	tagged, err := workload.TagArrivals(arrivals, workload.LatencyBatchMix(0.3), rng)
	if err != nil {
		b.Fatal(err)
	}
	subs := Submissions(tagged)
	span := tagged[len(tagged)-1].At
	storm, err := StormEvents(nodes, 4, 4, span*0.1, span*0.8, 30, rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.FleetAwareSizing = false // stability: see the comment above
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewHetero(cfg, specs)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.ScheduleNodeEvents(storm...); err != nil {
			b.Fatal(err)
		}
		res, err := c.RunOpen(subs, &fullSpeedScheduler{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Apps) != apps {
			b.Fatalf("%d apps completed, want %d", len(res.Apps), apps)
		}
	}
}

// BenchmarkOpenSystemEngine2500 is the half-scale point of the scaling pair:
// together with the 5k benchmark it pins the engine's growth rate (doubling
// the stream should far undercut the old engine's ~4x quadratic cost).
func BenchmarkOpenSystemEngine2500(b *testing.B) { scaleRun(b, 2500) }

// BenchmarkOpenSystemEngine5000 is the production-scale stress point from
// the ROADMAP's event-queue-indexing item: 5k classed arrivals on a churny
// 64-node bimodal fleet.
func BenchmarkOpenSystemEngine5000(b *testing.B) { scaleRun(b, 5000) }

// BenchmarkOpenSystemEngine10000 through 100000 are the fleet-scale points of
// the completion-heap PR: with settle-on-rate-change integration the engine
// no longer rescans rate-driven completions on every event, so 10x-ing the
// stream should cost close to 10x in wall time (the 10k→100k engine-only
// ratio recorded in BENCH_engine.json must stay ≤ 12x). The 100k point was
// out of reach for the scan engine, which paid O(total apps) per event.
func BenchmarkOpenSystemEngine10000(b *testing.B) { scaleRun(b, 10000) }

func BenchmarkOpenSystemEngine20000(b *testing.B) { scaleRun(b, 20000) }

func BenchmarkOpenSystemEngine100000(b *testing.B) { scaleRun(b, 100000) }

// colocationScheduler drives the sharded-engine benchmarks: it packs every
// waiting app across many nodes with small, deliberately under-reserved
// executors, so fleets run dozens of executors per node and every completion
// dirties many nodes at once. That pushes the engine's cost into the
// per-node rate formulas — cacheEff (items below fair share) and heapFactor
// (reservation shortfall) both active on every executor — which is exactly
// the half of the event loop the sharded engine (Config.Shards) fans out.
type colocationScheduler struct {
	waitBuf []*App
	free    []float64 // per-node FreeGB snapshot for the current pass
	actual  []float64 // per-node ActualGB snapshot for the current pass
}

func (*colocationScheduler) Name() string                       { return "test-colocation" }
func (*colocationScheduler) Prepare(*Cluster, *App) ProfilePlan { return ProfilePlan{} }
func (s *colocationScheduler) Schedule(c *Cluster) {
	s.waitBuf = c.AppendWaitingApps(s.waitBuf[:0])
	if len(s.waitBuf) == 0 {
		return
	}
	nodes := c.Nodes()
	// Bound the placement walk to the FIFO head: under a transient backlog
	// the per-event scheduling cost stays constant instead of O(waiting),
	// so the benchmark keeps timing the engine, not the queue.
	if len(s.waitBuf) > 48 {
		s.waitBuf = s.waitBuf[:48]
	}
	// Snapshot each node's free/resident memory once per pass instead of
	// re-summing its executor list on every visit: FreeGB and ActualGB are
	// O(executors), and with a dozen co-runners per node the fresh sums would
	// dwarf the engine being measured. Only this scheduler mutates the fleet
	// between events, so refreshing the one spawned-on node keeps the
	// snapshot exactly what a fresh read would return.
	if len(s.free) < len(nodes) {
		s.free = make([]float64, len(nodes))
		s.actual = make([]float64, len(nodes))
	}
	for i, n := range nodes {
		s.free[i] = n.FreeGB()
		s.actual[i] = n.ActualGB()
	}
	for _, app := range s.waitBuf {
		// One footprint-model eval per app, not per node: items stay fixed
		// for the pass, pinned below every spawn's fair share so cacheEff is
		// on the clock, with the reservation below the footprint so
		// heapFactor is too.
		items := 0.6 * app.RemainingGB / float64(app.MaxExecutors)
		need := app.Job.Bench.Footprint(items)
		reserve := need * 0.8
		// Rotate the scan start per app so executors spread evenly instead of
		// piling onto the low node IDs. A waiting app holds no executors, and
		// each node is visited once per pass, so no ExecutorOn check is
		// needed.
		start := app.ID % len(nodes)
		for i := 0; i < len(nodes) && len(app.Executors) < app.MaxExecutors; i++ {
			idx := (start + i) % len(nodes)
			n := nodes[idx]
			if !n.Available() || app.BlockedOn(n, c.Now()) {
				continue
			}
			// Admit by projected residency, not reservation: staying under the
			// pressure watermark keeps the paging spiral off the benchmark.
			if reserve > s.free[idx] || s.actual[idx]+need > 0.85*n.Spec.UsableGB() {
				continue
			}
			if _, err := c.Spawn(app, n, reserve, items); err != nil {
				break
			}
			s.free[idx] = n.FreeGB()
			s.actual[idx] = n.ActualGB()
		}
	}
}

// colocationRun is one co-location-heavy open-system run for the sharded
// benchmarks: a 96-node uniform fleet where small ExecutorSpreadGB sizing
// fans each app across up to a dozen nodes. Unlike scaleRun — whose
// whole-node executors leave the rate pass a small slice of each event (an
// Amdahl ceiling no shard count can beat) — the rate recomputation dominates
// here, so the shards=1 vs shards=2 pair measures the fan-out itself.
func colocationRun(b *testing.B, apps, shards int) {
	b.Helper()
	const nodes = 96
	fleet, err := workload.UniformFleet(nodes, workload.BigNode())
	if err != nil {
		b.Fatal(err)
	}
	specs := SpecsFrom(fleet)
	arrivals, err := workload.PoissonArrivals(apps, 0.06, rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	// Stretch every input so each app wants an executor on a large slice of
	// the fleet: arrivals, startup-gate expiries and completions then all
	// dirty dozens of nodes at once, the dense-event shape the fan-out is
	// built for.
	for i := range arrivals {
		arrivals[i].Job.InputGB = 450 + 20*float64(i%5)
	}
	subs := Submissions(arrivals)
	cfg := DefaultConfig()
	cfg.Shards = shards
	cfg.ExecutorSpreadGB = 3  // size executor fleets at many small chunks
	cfg.MaxExecutorNodes = 96 // let every app reach the whole fleet
	cfg.FleetAwareSizing = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewHetero(cfg, specs)
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.RunOpen(subs, &colocationScheduler{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Apps) != apps {
			b.Fatalf("%d apps completed, want %d", len(res.Apps), apps)
		}
	}
}

// BenchmarkColocationEngine20000 / 100000 pin the sharded engine's cost
// model: the Sharded variants run the identical workload with two
// epoch-synchronised event loops (bit-identical results, pinned by the
// differential suite). On a multi-core host the pair measures the fan-out's
// wall-clock win over the ~56% parallel rate phase; on a single-CPU host it
// bounds the fan-out's overhead instead (the sharded run must stay within a
// few percent of the serial one). BENCH_engine.json records which regime the
// captured numbers came from.
func BenchmarkColocationEngine20000(b *testing.B)         { colocationRun(b, 20000, 1) }
func BenchmarkColocationEngine20000Sharded(b *testing.B)  { colocationRun(b, 20000, 2) }
func BenchmarkColocationEngine100000(b *testing.B)        { colocationRun(b, 100000, 1) }
func BenchmarkColocationEngine100000Sharded(b *testing.B) { colocationRun(b, 100000, 2) }

// BenchmarkClosedBatchEngine is the closed-batch counterpart on the same
// 200-job set, isolating the cost of arrival handling from the rest of the
// loop.
func BenchmarkClosedBatchEngine(b *testing.B) {
	arrivals, err := workload.PoissonArrivals(200, 0.05, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	jobs := make([]workload.Job, len(arrivals))
	for i, a := range arrivals {
		jobs[i] = a.Job
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(DefaultConfig())
		if _, err := c.Run(jobs, &fullSpeedScheduler{}); err != nil {
			b.Fatal(err)
		}
	}
}
