package cluster

import (
	"math/rand"
	"testing"

	"moespark/internal/workload"
)

// BenchmarkOpenSystemEngine times the event-engine hot loop (nextEventDt /
// advance / admitArrivals) under a 200-application open-system run with
// Poisson arrivals: the baseline for future engine optimizations such as an
// indexed event queue. The scheduler is deliberately trivial so the engine
// dominates the profile.
func BenchmarkOpenSystemEngine(b *testing.B) {
	arrivals, err := workload.PoissonArrivals(200, 0.05, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	subs := Submissions(arrivals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(DefaultConfig())
		res, err := c.RunOpen(subs, fullSpeedScheduler{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Apps) != 200 {
			b.Fatalf("%d apps completed, want 200", len(res.Apps))
		}
	}
}

// BenchmarkClosedBatchEngine is the closed-batch counterpart on the same
// 200-job set, isolating the cost of arrival handling from the rest of the
// loop.
func BenchmarkClosedBatchEngine(b *testing.B) {
	arrivals, err := workload.PoissonArrivals(200, 0.05, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	jobs := make([]workload.Job, len(arrivals))
	for i, a := range arrivals {
		jobs[i] = a.Job
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(DefaultConfig())
		if _, err := c.Run(jobs, fullSpeedScheduler{}); err != nil {
			b.Fatal(err)
		}
	}
}
