package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"moespark/internal/parallel"
	"moespark/internal/workload"
)

// ProfilePlan describes the profiling a policy performs for one application
// before scheduling it: VolumeGB is processed on the coordinating node (and
// costs time); ContributesGB of it is useful output that counts towards the
// job (the paper's profiling wastes no cycles; an online search wastes most
// of its probing volume).
type ProfilePlan struct {
	VolumeGB      float64
	ContributesGB float64
}

// ContributingProfile is the common case: all profiled data contributes.
func ContributingProfile(gb float64) ProfilePlan {
	return ProfilePlan{VolumeGB: gb, ContributesGB: gb}
}

// ExecOutcome classifies how an executor's true footprint became known to
// the engine.
type ExecOutcome int

// Executor observation outcomes.
const (
	// ExecCompleted: the executor's application completed; the footprint was
	// realised in full.
	ExecCompleted ExecOutcome = iota + 1
	// ExecOOMKilled: the executor was killed for overflowing its node's
	// RAM+swap.
	ExecOOMKilled
)

// Observer is an optional Scheduler extension, the engine side of the online
// prediction pipeline: when the scheduler implements it, the engine reports
// each executor's predicted-vs-actual footprint at the exact moment the
// outcome becomes known — application completion (before the executors are
// released) or an OOM kill (before the victim is reclaimed). Observe runs
// inside the event loop and must not mutate the cluster (no Spawn, Grow or
// Preempt); it exists to feed prediction error back into adaptive models.
// Executors complete in deterministic engine order, so observer-driven model
// updates are reproducible.
type Observer interface {
	Observe(c *Cluster, e *Executor, outcome ExecOutcome)
}

// Scheduler is a co-location policy driving the simulated cluster. The
// engine invokes Prepare once per submitted application (to plan profiling)
// and Schedule whenever cluster state changes (submission, profiling
// completion, executor/app completion).
type Scheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Prepare returns the profiling plan the policy needs for the
	// application before it becomes schedulable. Profiling runs on the
	// coordinating node; the contributed part of its output counts towards
	// job completion, as in the paper. Return the zero plan for no
	// profiling.
	Prepare(c *Cluster, app *App) ProfilePlan
	// Schedule may inspect the cluster and spawn executors via Spawn.
	Schedule(c *Cluster)
}

// BatchScheduler is the optional batch face of a Scheduler: the engine hands
// PrepareBatch every application admitted in the same instant (one admission
// wave, arrival order) instead of calling Prepare once per app, so policies
// can gate the wave's predictions together. The returned plans are
// positional — plans[i] belongs to apps[i] — and each must be exactly what
// Prepare would have returned for that app in that order: batching is a cost
// optimisation, never a semantic one. The whole wave is registered (visible
// via Apps()) before the call, just as with per-app Prepare.
type BatchScheduler interface {
	PrepareBatch(c *Cluster, apps []*App) []ProfilePlan
}

// Cluster is the simulated platform plus simulation state.
type Cluster struct {
	cfg        Config
	nodes      []*Node
	apps       []*App
	pending    []Submission
	nodeEvents []NodeEvent
	foreign    []*ForeignTask
	now        float64
	trace      *Trace
	nextNodeID int

	// classed is set when any submission carries a non-zero tenant class;
	// untagged runs skip the weighted-admission ordering entirely so the
	// single-class path stays bit-for-bit identical to the pre-class engine.
	classed bool

	// Event index (see eventindex.go): active sets and done-counters keep
	// the per-event loops proportional to in-flight work, dirtyNodes and the
	// wake heap keep rate recomputation proportional to what changed.
	active        []*App         // apps not yet done, submission order
	profiling     []*App         // apps currently profiling, submission order
	activeForeign []*ForeignTask // foreign tasks not yet done, registration order
	draining      []*Node        // nodes in the Draining state, drain order
	doneApps      int
	doneForeign   int
	dirtyNodes    []*Node
	// wakes holds one lazy-deletion wake heap per event-loop shard, indexed
	// by Node.shard (a single heap on a single-loop cluster): the parallel
	// rate phase pushes each node's wake-up onto its own shard's heap, so the
	// fan-out never contends on a shared structure.
	wakes []wakeHeap
	// completions is the lazy-deletion min-heap of absolute completion
	// deadlines; completionSeq numbers pushes so equal deadlines pop FIFO.
	// touchedApps/touchedForeign collect the entities whose deadlines must be
	// recomputed at the end of the current iteration (refreshDeadlines), and
	// lastShare is the profiling share in force since the last settle point —
	// the rate profiling progress is integrated with.
	completions    completionHeap
	completionSeq  uint64
	touchedApps    []*App
	touchedForeign []*ForeignTask
	lastShare      float64

	// observer is the scheduler's optional observation hook (see Observer),
	// resolved once per run.
	observer Observer

	// checkEvent, when set (differential property tests only), is invoked
	// once per event-loop iteration with the profiling share and the chosen
	// event dt, so a test can replay the scan-based reference engine against
	// the indexed state and assert exact agreement.
	checkEvent func(share, dt float64, ok bool)

	// victimBuf/bestVictimBuf are PreemptFor scratch: victims are collected
	// during the feasibility scan so the kill phase never rescans the node.
	victimBuf     []*Executor
	bestVictimBuf []*Executor
	// shareBuf is fleetFor scratch (per-node spread shares).
	shareBuf []float64

	// Sharded event loop (see shard.go): shards is the resolved partition
	// count (1 = single loop), rackShard maps rack labels to shards for
	// mid-run joins, shardDirty are the reused per-shard slices the dirty
	// list is split into before the parallel rate phase, and pool is the
	// persistent worker pool alive for the duration of one RunOpen.
	shards     int
	rackShard  map[string]int
	shardDirty [][]*Node
	pool       *parallel.Pool
	// epochs counts event-loop iterations this run; shardRated/shardWakes
	// count per-shard rate recomputations and served wake-ups (Result.Epochs
	// and Result.ShardStats).
	epochs     int
	shardRated []int64
	shardWakes []int64

	totalOOM          int
	totalFailKills    int
	totalPreemptKills int
	totalMigrations   int
	totalRetries      int
	totalLostGB       float64
}

// New creates an idle homogeneous cluster: cfg.Nodes nodes, each with the
// platform's default spec (the paper's testbed). An invalid config — a
// non-positive cfg.Nodes or a degenerate platform memory layout — is a
// programmer error and panics with the underlying cause; New used to swallow
// it and return a zero-node cluster whose Run later died with a misleading
// "simulation stalled" message. Callers that construct configs from untrusted
// input should use NewHetero, which returns the error instead.
func New(cfg Config) *Cluster {
	specs := make([]NodeSpec, cfg.Nodes)
	for i := range specs {
		specs[i] = cfg.DefaultNodeSpec()
	}
	c, err := NewHetero(cfg, specs)
	if err != nil {
		panic(fmt.Sprintf("cluster.New: invalid config: %v", err))
	}
	return c
}

// NewHetero creates an idle heterogeneous cluster with one node per spec
// (the spec slice overrides cfg.Nodes). Platform-wide behaviour — penalty
// shapes, watermark, startup latency — still comes from cfg.
func NewHetero(cfg Config, specs []NodeSpec) (*Cluster, error) {
	if len(specs) == 0 {
		return nil, errors.New("cluster: need at least one node spec")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("cluster: negative shard count %d", cfg.Shards)
	}
	c := &Cluster{cfg: cfg}
	c.shards = cfg.Shards
	if c.shards < 1 {
		c.shards = 1
	}
	if c.shards > len(specs) {
		c.shards = len(specs)
	}
	c.nodes = make([]*Node, len(specs))
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.nodes[i] = newNode(i, s, cfg, 0)
	}
	c.nextNodeID = len(specs)
	c.assignShards()
	c.wakes = make([]wakeHeap, c.shards)
	c.shardRated = make([]int64, c.shards)
	c.shardWakes = make([]int64, c.shards)
	if cfg.TraceInterval > 0 {
		c.trace = newTrace(cfg.TraceInterval)
	}
	return c, nil
}

// Config returns the platform configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Now returns the current simulation time in seconds.
func (c *Cluster) Now() float64 { return c.now }

// Nodes returns the node list (callers must not mutate it).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Apps returns all submitted applications in FCFS order.
func (c *Cluster) Apps() []*App { return c.apps }

// TotalOOMKills counts executors killed for overflowing RAM+swap.
func (c *Cluster) TotalOOMKills() int { return c.totalOOM }

// TotalFailKills counts executors killed by node failures.
func (c *Cluster) TotalFailKills() int { return c.totalFailKills }

// TotalPreemptKills counts executors killed by higher-priority preemption.
func (c *Cluster) TotalPreemptKills() int { return c.totalPreemptKills }

// TotalMigrations counts executors gracefully moved off draining nodes.
func (c *Cluster) TotalMigrations() int { return c.totalMigrations }

// TotalOOMRetries counts OOM blacklist entries granted a cool-off expiry
// under Config.OOMRetryBudget.
func (c *Cluster) TotalOOMRetries() int { return c.totalRetries }

// TotalLostWorkGB is the reprocessing work charged back across all kills
// (OOM, node failure, preemption): the sum of actual RemainingGB increases.
func (c *Cluster) TotalLostWorkGB() float64 { return c.totalLostGB }

// AvailableNodes counts nodes currently accepting placements.
func (c *Cluster) AvailableNodes() int {
	var n int
	for _, node := range c.nodes {
		if node.Available() {
			n++
		}
	}
	return n
}

// WaitingApps returns the ready-or-running applications that still have
// unassigned work and spare executor slots. Untagged runs list them in FCFS
// order; once any submission carries a tenant class the list is weighted
// FCFS — higher-weight classes first, submission order within a class.
func (c *Cluster) WaitingApps() []*App { return c.AppendWaitingApps(nil) }

// AppendWaitingApps is the allocation-free form of WaitingApps for hot-path
// callers: the waiting set is appended to buf (typically buf[:0] of a reused
// slice) and returned. Only the active set is scanned: completed apps can
// never be waiting, so the filter's outcome is identical and the walk stays
// proportional to in-flight work on long streams.
func (c *Cluster) AppendWaitingApps(buf []*App) []*App {
	start := len(buf)
	for _, a := range c.active {
		if (a.State == StateReady || a.State == StateRunning) &&
			a.RemainingGB > 0 && len(a.Executors) < a.MaxExecutors {
			buf = append(buf, a)
		}
	}
	if c.classed {
		// Stable insertion sort by descending class weight: allocation-free,
		// and the waiting set is small (bounded by in-flight apps). Equal
		// weights keep submission order, so an all-equal-weight run is
		// untouched.
		tail := buf[start:]
		for i := 1; i < len(tail); i++ {
			for j := i; j > 0 && tail[j].Class.Weight > tail[j-1].Class.Weight; j-- {
				tail[j], tail[j-1] = tail[j-1], tail[j]
			}
		}
	}
	return buf
}

// AddReadyApp registers an application in the ready state at the current
// simulation time, bypassing submission and profiling. It exists for
// benchmarks and custom drivers that exercise scheduling logic directly;
// engine-driven runs go through Run / RunOpen instead.
func (c *Cluster) AddReadyApp(job workload.Job) *App {
	a := &App{
		ID: len(c.apps), Job: job,
		SubmitTime: c.now, ReadyTime: c.now, StartTime: -1, DoneTime: -1,
		RemainingGB:  job.InputGB,
		MaxExecutors: c.fleetFor(job.InputGB),
		State:        StateReady,
		settledAt:    c.now, deadline: math.Inf(1),
	}
	c.apps = append(c.apps, a)
	c.active = append(c.active, a)
	return a
}

// fleetFor sizes an application's executor fleet at admission. With
// Config.FleetAwareSizing set (the default), the fleet is sized from the
// specs of nodes actually free at admission: each placeable node contributes
// a spread share proportional to its allocatable memory, and the fleet is
// the fewest largest-first nodes whose shares cover the input (every
// eligible node, when even that is not enough). Without it the platform
// formula Config.NodesFor applies, which assumes every executor lands on a
// reference-sized node — wrong on big/little fleets, where a little node
// carries far less than ExecutorSpreadGB and a big node far more. On a
// uniform reference fleet with enough free nodes both paths agree.
func (c *Cluster) fleetFor(inputGB float64) int {
	if !c.cfg.FleetAwareSizing {
		return c.cfg.NodesFor(inputGB)
	}
	refAlloc := c.cfg.AllocatableGB()
	if refAlloc <= 0 {
		return c.cfg.NodesFor(inputGB)
	}
	c.shareBuf = c.shareBuf[:0]
	for _, n := range c.nodes {
		if !n.Available() || n.FreeGB() <= c.cfg.MinChunkGB {
			continue
		}
		share := c.cfg.ExecutorSpreadGB * n.AllocatableGB() / refAlloc
		// Insertion sort descending: fleets are small and node order breaks
		// ties deterministically.
		c.shareBuf = append(c.shareBuf, share)
		for i := len(c.shareBuf) - 1; i > 0 && c.shareBuf[i] > c.shareBuf[i-1]; i-- {
			c.shareBuf[i], c.shareBuf[i-1] = c.shareBuf[i-1], c.shareBuf[i]
		}
	}
	if len(c.shareBuf) == 0 {
		return c.cfg.NodesFor(inputGB)
	}
	const eps = 1e-9
	k, covered := 0, 0.0
	for k < len(c.shareBuf) && covered < inputGB-eps {
		covered += c.shareBuf[k]
		k++
	}
	if k > c.cfg.MaxExecutorNodes {
		k = c.cfg.MaxExecutorNodes
	}
	if k < 1 {
		k = 1
	}
	return k
}

// refreshFleetCaps re-derives the executor-fleet cap of every in-flight
// application from the nodes free right now, ratcheting the cap upward when
// capacity has freed that the admission-time sizing could not see. Without
// this, a job admitted into a transiently packed fleet — a storm window, a
// burst of arrivals — is capped at one or two executors for its whole
// lifetime and crawls on an otherwise idle cluster. The cap never shrinks
// (executors are never revoked by sizing), and an app already at the
// reference-formula size is skipped, so admissions that saw a free fleet —
// every closed-system run — are bit-for-bit unchanged either way.
func (c *Cluster) refreshFleetCaps() {
	if !c.cfg.RefreshFleetSizing || !c.cfg.FleetAwareSizing {
		// Off (historical admission-time-only sizing), or the static
		// platform formula applies, which does not depend on free capacity
		// and is already final.
		return
	}
	for _, a := range c.active {
		if a.State != StateReady && a.State != StateRunning {
			continue
		}
		if a.RemainingGB <= 0 || a.MaxExecutors >= c.cfg.NodesFor(a.Job.InputGB) {
			continue
		}
		if k := c.fleetFor(a.Job.InputGB); k > a.MaxExecutors {
			a.MaxExecutors = k
		}
	}
}

// AddForeign pins a foreign co-runner task (e.g. a PARSEC benchmark) to a
// node, typically before the run starts. A task added by a mid-run driver
// starts at the cluster's current clock, not at t=0.
func (c *Cluster) AddForeign(nodeID int, name string, cpuLoad, memoryGB, workSec float64) (*ForeignTask, error) {
	if nodeID < 0 || nodeID >= len(c.nodes) {
		return nil, fmt.Errorf("cluster: node %d out of range", nodeID)
	}
	f := &ForeignTask{
		Name: name, Node: c.nodes[nodeID], CPULoad: cpuLoad,
		MemoryGB: memoryGB, WorkSec: workSec, remaining: workSec,
		StartTime: c.now, DoneTime: -1,
		settledAt: c.now, deadline: math.Inf(1),
	}
	c.nodes[nodeID].Foreign = append(c.nodes[nodeID].Foreign, f)
	c.foreign = append(c.foreign, f)
	c.activeForeign = append(c.activeForeign, f)
	c.markDirty(c.nodes[nodeID])
	return f, nil
}

// IsolatedTime is the closed-form execution time of a job run alone on the
// cluster with its full executor fleet and all node memory (the C_is of
// Equations 1 and 2).
func (c *Cluster) IsolatedTime(job workload.Job) float64 {
	k := c.cfg.NodesFor(job.InputGB)
	return c.cfg.StartupSec + job.InputGB/(float64(k)*job.Bench.ScanRate)
}

// Spawn / Grow / Preempt validation errors.
var (
	ErrAppNotSchedulable = errors.New("cluster: app not in a schedulable state")
	ErrNoFreeMemory      = errors.New("cluster: insufficient unreserved memory on node")
	ErrExecutorCap       = errors.New("cluster: app already at its executor cap")
	ErrAlreadyOnNode     = errors.New("cluster: app already has an executor on node")
	ErrChunkTooSmall     = errors.New("cluster: data allocation below minimum chunk")
	ErrNodeUnavailable   = errors.New("cluster: node is draining or failed")
	ErrShrinkReservation = errors.New("cluster: Grow cannot shrink the reservation")
	ErrNotPreemptible    = errors.New("cluster: victim's class is not preemptible")
	ErrNoPriority        = errors.New("cluster: preemptor does not outrank the victim")
)

// Spawn places a new executor of app on node with the given memory
// reservation (heap) and data allocation. The executor's true footprint
// comes from the workload ground truth for itemsGB; the reservation is what
// admission control charges against the node.
func (c *Cluster) Spawn(app *App, node *Node, reserveGB, itemsGB float64) (*Executor, error) {
	const eps = 1e-9
	if !node.Available() {
		return nil, fmt.Errorf("%w: node %d is %v", ErrNodeUnavailable, node.ID, node.state)
	}
	if app.State != StateReady && app.State != StateRunning {
		return nil, fmt.Errorf("%w: %s is %v", ErrAppNotSchedulable, app.Job, app.State)
	}
	// Spawning changes the app's rate structure: settle its progress first so
	// the validation, fair-share and clamp below read RemainingGB exact at
	// the current instant, and queue the deadline refresh.
	c.settleApp(app)
	c.touchApp(app)
	if app.RemainingGB <= eps {
		return nil, fmt.Errorf("%w: no work left", ErrAppNotSchedulable)
	}
	if len(app.Executors) >= app.MaxExecutors {
		return nil, ErrExecutorCap
	}
	if app.ExecutorOn(node) {
		return nil, ErrAlreadyOnNode
	}
	if app.BlockedOn(node, c.now) && len(node.Executors) > 0 {
		// After an OOM kill the app avoids the node while it is shared; an
		// empty node is fine again (the paper re-runs OOM victims in
		// isolation).
		return nil, fmt.Errorf("%w: node %d blacklisted after OOM", ErrAppNotSchedulable, node.ID)
	}
	if reserveGB > node.FreeGB()+eps {
		return nil, fmt.Errorf("%w: want %.2f GB, free %.2f GB", ErrNoFreeMemory, reserveGB, node.FreeGB())
	}
	if itemsGB+eps < math.Min(c.cfg.MinChunkGB, app.RemainingGB) {
		return nil, fmt.Errorf("%w: %.3f GB", ErrChunkTooSmall, itemsGB)
	}
	if itemsGB > app.RemainingGB {
		itemsGB = app.RemainingGB
	}
	slotsLeft := app.MaxExecutors - len(app.Executors)
	fair := app.RemainingGB / float64(slotsLeft)
	need := app.Job.Bench.Footprint(itemsGB)
	e := &Executor{
		App: app, Node: node,
		ReservedGB:  reserveGB,
		ItemsGB:     itemsGB,
		NeedGB:      need,
		ActualGB:    c.resident(need, reserveGB),
		Demand:      app.Job.Bench.CPULoad,
		FairShareGB: fair,
		SpawnTime:   c.now,
	}
	node.Executors = append(node.Executors, e)
	app.Executors = append(app.Executors, e)
	c.markDirty(node)
	if app.State == StateReady {
		app.State = StateRunning
		if app.StartTime < 0 {
			// First executor only: a respawn after an OOM kill must not
			// rewrite the app's recorded execution start (WaitSec feeds the
			// open-system queueing metrics).
			app.StartTime = c.now
		}
		app.startupUntil = c.now + c.cfg.StartupSec
	}
	return e, nil
}

// resident caps an executor's resident memory at its heap plus off-heap
// overhead; the remainder of the demand spills to disk.
func (c *Cluster) resident(needGB, reserveGB float64) float64 {
	cap := reserveGB * (1 + c.cfg.OffHeapFrac)
	if needGB > cap {
		return cap
	}
	return needGB
}

// Grow raises an executor's data allocation and memory reservation in place
// (the paper dynamically adjusts the items given to a co-located executor as
// stages complete and memory frees up). Both deltas must be non-negative:
// shrinking the reservation would drop ReservedGB below the footprint the
// executor was admitted with, bypassing admission control, and is rejected
// with ErrShrinkReservation.
func (c *Cluster) Grow(e *Executor, newReserveGB, newItemsGB float64) error {
	const eps = 1e-9
	if newItemsGB+eps < e.ItemsGB {
		return errors.New("cluster: Grow cannot shrink the allocation")
	}
	if newReserveGB+eps < e.ReservedGB {
		return fmt.Errorf("%w: %.2f GB -> %.2f GB", ErrShrinkReservation, e.ReservedGB, newReserveGB)
	}
	delta := newReserveGB - e.ReservedGB
	if delta > e.Node.FreeGB()+eps {
		return fmt.Errorf("%w: grow needs %.2f GB, free %.2f GB", ErrNoFreeMemory, delta, e.Node.FreeGB())
	}
	// Growing changes the executor's rate inputs: settle before clamping the
	// allocation against the app's progress. (The dirty mark below re-touches
	// the app through the node's rate pass.)
	c.settleApp(e.App)
	if newItemsGB > e.App.RemainingGB {
		newItemsGB = e.App.RemainingGB
	}
	e.ReservedGB = newReserveGB
	e.ItemsGB = newItemsGB
	e.NeedGB = e.App.Job.Bench.Footprint(newItemsGB)
	e.ActualGB = c.resident(e.NeedGB, e.ReservedGB)
	c.markDirty(e.Node)
	return nil
}

// removeExecutor detaches e from its node and app. The node's co-runners
// lose a contender, so it is marked for rate recomputation.
func (c *Cluster) removeExecutor(e *Executor) {
	n := e.Node
	c.markDirty(n)
	for i, x := range n.Executors {
		if x == e {
			n.Executors = append(n.Executors[:i], n.Executors[i+1:]...)
			break
		}
	}
	a := e.App
	for i, x := range a.Executors {
		if x == e {
			a.Executors = append(a.Executors[:i], a.Executors[i+1:]...)
			break
		}
	}
}

// Result summarises one simulation run.
type Result struct {
	// Apps in FCFS order with their timestamps filled in.
	Apps []*App
	// Foreign tasks (if any) with completion times.
	Foreign []*ForeignTask
	// MakespanSec is the time the last app (or foreign task) finished.
	MakespanSec float64
	// OOMKills counts executor OOM kills over the whole run.
	OOMKills int
	// FailKills counts executors killed by node failures.
	FailKills int
	// PreemptKills counts executors killed by higher-priority preemption.
	PreemptKills int
	// Migrations counts executors gracefully moved off draining nodes
	// (Config.MigrateOnDrain).
	Migrations int
	// OOMRetries counts OOM blacklist entries granted a cool-off expiry
	// instead of permanence (Config.OOMRetryBudget).
	OOMRetries int
	// LostWorkGB is the total reprocessing work charged back by OOM kills,
	// node failures and preemptions over the whole run.
	LostWorkGB float64
	// Epochs counts event-loop iterations: on a sharded cluster each is one
	// barrier-synchronised step of every shard (see shard.go), on a
	// single-loop cluster simply one event.
	Epochs int
	// ShardStats has one entry per event-loop shard (a single entry on a
	// single-loop cluster) with the shard's node count and event counters.
	ShardStats []ShardStat
	// Trace holds utilization samples when tracing was enabled.
	Trace *Trace
}

// maxEvents bounds the event loop against policy bugs.
const maxEvents = 2_000_000

// Submission is one timed job arrival: the job enters the cluster's queue at
// time At (seconds). A slice of Submissions is the event source of the
// open-system engine; the closed-batch Run is the special case where every
// At is zero. Class tags the submitting tenant: among simultaneous arrivals,
// higher-weight classes are admitted (and scheduled) first.
type Submission struct {
	At    float64
	Job   workload.Job
	Class workload.Class
}

// Submissions lifts a workload arrival stream into engine submissions,
// carrying any tenant class tags along.
func Submissions(arrivals []workload.Arrival) []Submission {
	subs := make([]Submission, len(arrivals))
	for i, a := range arrivals {
		subs[i] = Submission{At: a.At, Job: a.Job, Class: a.Class}
	}
	return subs
}

// Run submits the jobs at time zero (FCFS order) and simulates until every
// application and foreign task completes. It is a thin closed-batch wrapper
// over RunOpen.
func (c *Cluster) Run(jobs []workload.Job, sched Scheduler) (*Result, error) {
	subs := make([]Submission, len(jobs))
	for i, job := range jobs {
		subs[i] = Submission{At: 0, Job: job}
	}
	return c.RunOpen(subs, sched)
}

// RunOpen consumes a stream of timed submissions and simulates until every
// application and foreign task completes. Each application enters the queue
// at its submission time: the policy's Prepare fires on arrival (not at t=0),
// profiling runs from there, and the recorded SubmitTime yields real per-app
// waiting times. Submissions may be given in any order; ties are admitted
// highest class weight first, then original order (weighted FCFS — plain
// FCFS when no submission carries a class).
func (c *Cluster) RunOpen(subs []Submission, sched Scheduler) (*Result, error) {
	if len(subs) == 0 && len(c.foreign) == 0 {
		return nil, errors.New("cluster: nothing to run")
	}
	for _, s := range subs {
		if s.At < 0 || math.IsNaN(s.At) || math.IsInf(s.At, 0) {
			return nil, fmt.Errorf("cluster: invalid submission time %v", s.At)
		}
		if s.Class != (workload.Class{}) {
			c.classed = true
		}
	}
	c.observer, _ = sched.(Observer)
	c.pending = make([]Submission, len(subs))
	copy(c.pending, subs)
	sort.SliceStable(c.pending, func(i, j int) bool {
		if c.pending[i].At != c.pending[j].At {
			return c.pending[i].At < c.pending[j].At
		}
		return c.pending[i].Class.Weight > c.pending[j].Class.Weight
	})
	c.apps = make([]*App, 0, len(subs))
	c.resetIndex()
	if c.shards > 1 {
		// The shard pool lives for exactly one run: workers park between
		// events on a bounded spin, and closing at return keeps thousands of
		// short test runs from accumulating goroutines. recomputeRates takes
		// the sharded path only while the pool exists.
		c.pool = parallel.NewPool(c.shards)
		defer func() {
			c.pool.Close()
			c.pool = nil
		}()
	}

	// The event cap guards against stalled-policy loops; it scales with the
	// workload so fleet-scale streams (millions of arrivals, each worth a
	// handful of admission/wake/completion events) do not trip it.
	limit := maxEvents
	if n := 8 * (len(subs) + len(c.foreign) + len(c.nodeEvents)); n > limit {
		limit = n
	}
	for ev := 0; ev < limit; ev++ {
		c.epochs++
		if err := c.applyNodeEvents(); err != nil {
			return nil, err
		}
		c.completeDrains()
		first, err := c.admitArrivals(sched)
		if err != nil {
			return nil, err
		}
		if c.allDone() {
			return c.result(), nil
		}
		c.admitProfiling(first)
		c.refreshFleetCaps()
		sched.Schedule(c)
		c.recomputeRates()
		// The profiling share is a pure function of the profiling set, which
		// cannot change until the next iteration mutates it: compute it once,
		// settle the profiling set if it moved, and refresh the completion
		// deadlines of everything whose rates changed this iteration.
		share := c.profilingShare()
		c.refreshDeadlines(share)
		dt, ok := c.nextEventDt()
		if c.checkEvent != nil {
			c.checkEvent(share, dt, ok)
		}
		if !ok {
			return nil, fmt.Errorf("cluster: simulation stalled at t=%.1fs under %s (no runnable work)", c.now, sched.Name())
		}
		c.advance(dt)
	}
	return nil, fmt.Errorf("cluster: exceeded %d events under %s", limit, sched.Name())
}

// admitArrivals moves every submission whose time has come into the cluster
// and returns the index of the first newly admitted application. All apps
// arriving at the same instant are registered (visible via Apps()) before
// any of their Prepare calls fire, preserving the pre-refactor closed-batch
// semantics where a policy's Prepare could inspect the whole batch;
// profiling plans are then gathered in arrival order.
func (c *Cluster) admitArrivals(sched Scheduler) (int, error) {
	const eps = 1e-9
	first := len(c.apps)
	for len(c.pending) > 0 && c.pending[0].At <= c.now+eps {
		sub := c.pending[0]
		c.pending = c.pending[1:]
		a := &App{
			ID: len(c.apps), Job: sub.Job, Class: sub.Class,
			SubmitTime: sub.At, ReadyTime: -1, StartTime: -1, DoneTime: -1,
			RemainingGB:  sub.Job.InputGB,
			MaxExecutors: c.fleetFor(sub.Job.InputGB),
			State:        StateQueued,
			settledAt:    c.now, deadline: math.Inf(1),
		}
		c.apps = append(c.apps, a)
		c.active = append(c.active, a)
	}
	wave := c.apps[first:]
	if bs, ok := sched.(BatchScheduler); ok && len(wave) > 0 {
		plans := bs.PrepareBatch(c, wave)
		if len(plans) != len(wave) {
			return first, fmt.Errorf("cluster: %s returned %d profiling plans for a %d-app wave", sched.Name(), len(plans), len(wave))
		}
		for i, app := range wave {
			if err := c.applyProfilePlan(sched, app, plans[i]); err != nil {
				return first, err
			}
		}
		return first, nil
	}
	for _, app := range wave {
		if err := c.applyProfilePlan(sched, app, sched.Prepare(c, app)); err != nil {
			return first, err
		}
	}
	return first, nil
}

// applyProfilePlan validates one profiling plan and installs it on the app —
// the shared tail of the per-app and batched admission paths, so both apply
// byte-identical semantics.
func (c *Cluster) applyProfilePlan(sched Scheduler, app *App, plan ProfilePlan) error {
	if plan.VolumeGB < 0 || plan.ContributesGB < 0 || plan.ContributesGB > plan.VolumeGB+1e-9 {
		return fmt.Errorf("cluster: %s returned invalid profiling plan %+v", sched.Name(), plan)
	}
	if plan.ContributesGB > app.RemainingGB {
		plan.ContributesGB = app.RemainingGB
	}
	app.ProfileGB = plan.VolumeGB
	app.ContributeGB = plan.ContributesGB
	app.profileLeft = plan.VolumeGB
	if plan.VolumeGB == 0 {
		app.State = StateReady
		app.ReadyTime = c.now
	}
	return nil
}

// allDone is O(1): pending is a queue head and the done-counters are bumped
// at the single place each entity completes (advance, or failNode for
// foreign tasks lost with their node).
func (c *Cluster) allDone() bool {
	return len(c.pending) == 0 && c.doneApps == len(c.apps) && c.doneForeign == len(c.foreign)
}

// admitProfiling moves every queued application onto the coordinating node;
// profiling runs share the coordinator's capacity processor-style. Queued
// apps are always the tail admitted this iteration (admission and this call
// run back-to-back every event), so only apps[first:] is walked.
func (c *Cluster) admitProfiling(first int) {
	for _, a := range c.apps[first:] {
		if a.State == StateQueued {
			a.State = StateProfiling
			a.settledAt = c.now
			c.profiling = append(c.profiling, a)
			// A new profiling app needs a deadline even when the share does
			// not move (refreshDeadlines only settles the set on a change).
			c.touchApp(a)
		}
	}
}

// profilingShare returns the rate scale applied to each profiling app so the
// aggregate stays within the coordinator's capacity. The profiling list is
// kept in submission order, so the sum accumulates in exactly the order the
// full-apps scan used to.
func (c *Cluster) profilingShare() float64 {
	var sum float64
	for _, a := range c.profiling {
		sum += a.Job.Bench.ScanRate
	}
	if sum <= c.cfg.CoordinatorRateGBps || sum == 0 {
		return 1
	}
	return c.cfg.CoordinatorRateGBps / sum
}

// recomputeRates refreshes executor/foreign rates, applying CPU contention,
// interference, paging, cache-efficiency and OOM kills. All capacity math
// reads the node's own spec, so heterogeneous fleets page, contend and
// speed-scale per node. Only dirty nodes are recomputed: a rate is a
// deterministic function of node-local state, so a node whose executors,
// foreign tasks and startup gates did not change since the last pass holds
// bit-identical rates already (every mutation marks its node via markDirty,
// and startup expiries re-dirty through the wake heap). Dirty nodes are
// processed in node order — the order the full scan used — because OOM-kill
// charge-backs on different nodes can touch the same application.
func (c *Cluster) recomputeRates() {
	c.wakeExpiredNodes()
	if len(c.dirtyNodes) == 0 {
		return
	}
	// Insertion sort by node ID: c.nodes is ID-ordered (joins append rising
	// IDs), the dirty list is short, and sort.Slice would allocate.
	for i := 1; i < len(c.dirtyNodes); i++ {
		for j := i; j > 0 && c.dirtyNodes[j].ID < c.dirtyNodes[j-1].ID; j-- {
			c.dirtyNodes[j], c.dirtyNodes[j-1] = c.dirtyNodes[j-1], c.dirtyNodes[j]
		}
	}
	if c.pool != nil {
		// Sharded run: serial settle/OOM prepass in the same node-ID order,
		// then the pure rate halves fanned out one partition per shard
		// (shard.go). Bit-identical to the loop below at any shard count.
		c.rateDirtySharded()
		return
	}
	// Drain by index, not by range snapshot: rateNode's enforceOOM can call
	// markDirty mid-drain (today only for the node being rated, whose flag
	// is still set, but a range over a stale snapshot would silently strand
	// any newly appended node with dirty=true and no list entry).
	for i := 0; i < len(c.dirtyNodes); i++ {
		n := c.dirtyNodes[i]
		c.rateNode(n)
		n.dirty = false
	}
	c.dirtyNodes = c.dirtyNodes[:0]
}

// rateNode recomputes every rate on one node (the former recomputeRates
// per-node body): the settle/OOM half followed by the pure rate half — the
// exact composition the sharded pass runs with the halves regrouped into a
// serial prepass and a parallel fan-out.
func (c *Cluster) rateNode(n *Node) {
	c.settleNode(n)
	c.computeNodeRates(n, n.shard)
}

// settleNode is the serial half of rating one node: settle every resident
// entity's progress under the OLD rates (they held from the last settle
// point up to this instant) and queue deadline refreshes — even for entities
// already settled this iteration, since the new rates shift their deadlines —
// then apply OOM kills. Across a dirty set it must run in node-ID order
// before any rate is reassigned: OOM charge-backs on different nodes can
// touch the same application.
func (c *Cluster) settleNode(n *Node) {
	for _, e := range n.Executors {
		c.settleApp(e.App)
		c.touchApp(e.App)
	}
	for _, f := range n.Foreign {
		if !f.done {
			c.settleForeign(f)
			c.touchForeign(f)
		}
	}
	c.enforceOOM(n)
}

// computeNodeRates is the pure half: recompute every rate on the node from
// its settled state and refresh the node's wake-up — the earliest future
// startup expiry among its executors, re-registered on the given shard's
// wake heap when it changed so the node is re-dirtied the instant a zero
// rate comes alive. It reads only node-local state (plus per-app startup
// gates, which only the serial engine writes) and writes only the node's own
// rates, wake time and shard slots, so the sharded pass runs it for
// different shards concurrently.
func (c *Cluster) computeNodeRates(n *Node, shard int) {
	c.shardRated[shard]++
	sumD := n.CPUDemand()
	usable := n.Spec.UsableGB()
	speed := n.Spec.SpeedFactor
	overflow := n.ActualGB() - c.cfg.PressureWatermark*usable
	pageFactor := 1.0
	if overflow > 0 {
		pageFactor = 1 / (1 + c.cfg.PagePenalty*overflow/usable)
	}
	cpuFactor := 1.0
	if cap := n.cpuCap; sumD > cap {
		cpuFactor = cap / sumD
	}
	wake := math.Inf(1)
	for _, e := range n.Executors {
		// The effective gate is the later of the app-level startup and the
		// executor's own migration gate; until it passes the executor holds a
		// zero rate and the node wakes (re-dirties) the instant it expires.
		gate := e.App.startupUntil
		if e.gateUntil > gate {
			gate = e.gateUntil
		}
		if gate > c.now {
			e.rate = 0
			if gate < wake {
				wake = gate
			}
			continue
		}
		interference := 1 / (1 + c.cfg.InterferenceAlpha*(sumD-e.Demand))
		cacheEff := 1.0
		if e.FairShareGB > c.cfg.MinChunkGB && e.ItemsGB < e.FairShareGB {
			cacheEff = math.Pow(e.ItemsGB/e.FairShareGB, c.cfg.CacheGamma)
			if cacheEff < c.cfg.CacheFloor {
				cacheEff = c.cfg.CacheFloor
			}
		}
		heapFactor := 1.0
		if e.ReservedGB > 0 && e.NeedGB > e.ReservedGB {
			shortfall := (e.NeedGB - e.ReservedGB) / e.ReservedGB
			heapFactor = 1 / (1 + c.cfg.HeapPenalty*shortfall*shortfall)
			if heapFactor < c.cfg.HeapFloor {
				heapFactor = c.cfg.HeapFloor
			}
		}
		e.rate = e.App.Job.Bench.ScanRate * speed * cpuFactor * interference * pageFactor * cacheEff * heapFactor
	}
	for _, f := range n.Foreign {
		if f.done {
			continue
		}
		interference := 1 / (1 + c.cfg.InterferenceAlpha*(sumD-f.CPULoad))
		f.rate = speed * cpuFactor * interference * pageFactor
	}
	if wake != n.wakeAt {
		n.wakeAt = wake
		if !math.IsInf(wake, 1) {
			c.wakes[shard].push(wake, n)
		}
	}
}

// reclaimExecutor removes a killed executor and charges its lost partial
// work back to the application: the partially-processed partitions must be
// recomputed when the app is re-run, and an app that lost its last executor
// goes back to waiting. Shared by the OOM-kill and node-failure paths so
// the reprocessing accounting cannot diverge between them.
func (c *Cluster) reclaimExecutor(victim *Executor) {
	app := victim.App
	// Settle before the charge-back lands, and queue a deadline refresh: the
	// app may keep executors on other (clean) nodes, so the node's own rate
	// pass would not necessarily re-register it.
	c.settleApp(app)
	c.touchApp(app)
	c.removeExecutor(victim)
	before := app.RemainingGB
	app.RemainingGB += c.cfg.OOMReprocessFrac * victim.ItemsGB
	if app.RemainingGB > app.Job.InputGB {
		app.RemainingGB = app.Job.InputGB
	}
	// Degradation accounting: the actual post-clamp increase is the work
	// genuinely lost, the quantity the faults study's goodput is built on.
	app.LostWorkGB += app.RemainingGB - before
	c.totalLostGB += app.RemainingGB - before
	if len(app.Executors) == 0 && app.State == StateRunning {
		app.State = StateReady
	}
}

// Preempt kills one executor on behalf of a higher-priority application,
// reusing the OOM/fail charge-back path: the victim's partially-processed
// items return to its app's remaining pool and the kill is counted in
// App.PreemptKills / Result.PreemptKills. The victim's class must be
// preemptible and strictly outranked by the preemptor's.
func (c *Cluster) Preempt(victim *Executor, by *App) error {
	if !victim.App.Class.Preemptible {
		return fmt.Errorf("%w: %s", ErrNotPreemptible, victim.App.Job)
	}
	if victim.App == by || victim.App.Class.Weight >= by.Class.Weight {
		return fmt.Errorf("%w: weight %.1f vs %.1f", ErrNoPriority,
			by.Class.Weight, victim.App.Class.Weight)
	}
	victim.App.PreemptKills++
	c.totalPreemptKills++
	c.reclaimExecutor(victim)
	return nil
}

// PreemptFor frees resources for an arriving high-priority application by
// reclaiming preemptible lower-priority executors, newest first, on a single
// node: needGB of reservable memory, cpuDemand of CPU headroom, and — when
// maxAppsPerNode is positive — an application slot under that cap (pass 0
// for constraints the scheduling policy does not enforce; killed executors
// free their CPU demand and app slot along with their reservation). The
// memory target is clamped per node to the node's allocatable memory: a
// bigger ask than a whole node can never be freed on one machine, and
// schedulers shrink oversized allocations to whatever fits anyway. It picks
// the placeable node that can reach every target with the fewest kills
// (ties keep node-scan order) and returns the number of executors killed —
// zero when some placeable node already has the resources, or when no node
// can reach them even after killing every eligible victim. Victims are
// collected during the feasibility scan itself (newest first, exactly the
// executors the scan charged), so the kill phase is a straight walk of that
// list instead of a tail rescan per kill.
func (c *Cluster) PreemptFor(app *App, needGB, cpuDemand float64, maxAppsPerNode int) int {
	const eps = 1e-9
	bestNode := -1
	c.bestVictimBuf = c.bestVictimBuf[:0]
	for i, n := range c.nodes {
		if !n.Available() || app.ExecutorOn(n) || (app.BlockedOn(n, c.now) && len(n.Executors) > 0) {
			continue
		}
		target := needGB
		if a := n.AllocatableGB(); target > a {
			target = a
		}
		// Deliberately not n.FreeGB(): its clamp at zero would hide an
		// overcommit (foreign working sets bypass admission), and the kill
		// simulation must start from the true deficit.
		free := n.AllocatableGB() - n.ReservedGB()
		cpuFree := n.CPUCapacity() - n.CPUDemand()
		// An app never holds two executors on one node, so each kill frees
		// one application slot.
		apps := n.AppCount()
		ok := func() bool {
			return free+eps >= target && cpuFree+eps >= cpuDemand &&
				(maxAppsPerNode <= 0 || apps < maxAppsPerNode)
		}
		if ok() {
			return 0
		}
		c.victimBuf = c.victimBuf[:0]
		for j := len(n.Executors) - 1; j >= 0 && !ok(); j-- {
			e := n.Executors[j]
			if !e.App.Class.Preemptible || e.App == app || e.App.Class.Weight >= app.Class.Weight {
				continue
			}
			free += e.ReservedGB
			cpuFree += e.Demand
			apps--
			c.victimBuf = append(c.victimBuf, e)
		}
		if !ok() {
			continue
		}
		if bestNode < 0 || len(c.victimBuf) < len(c.bestVictimBuf) {
			bestNode = i
			c.victimBuf, c.bestVictimBuf = c.bestVictimBuf, c.victimBuf
		}
	}
	if bestNode < 0 {
		return 0
	}
	killed := 0
	for _, victim := range c.bestVictimBuf {
		if err := c.Preempt(victim, app); err != nil {
			break
		}
		killed++
	}
	return killed
}

// enforceOOM kills the newest executors on a node until actual memory fits
// within RAM+swap, mirroring the paper's re-run-on-OOM policy (the lost
// executor's data stays in the app's remaining pool).
func (c *Cluster) enforceOOM(n *Node) {
	limit := n.Spec.UsableGB() + n.Spec.SwapGB
	for n.ActualGB() > limit && len(n.Executors) > 0 {
		victim := n.Executors[len(n.Executors)-1]
		victim.App.OOMKills++
		c.totalOOM++
		victim.App.blockNode(n, c.blacklistUntil(victim.App))
		if c.observer != nil {
			c.observer.Observe(c, victim, ExecOOMKilled)
		}
		c.reclaimExecutor(victim)
	}
}

// appRate sums the executor rates of an app.
func appRate(a *App) float64 {
	var s float64
	for _, e := range a.Executors {
		s += e.rate
	}
	return s
}

// nextEventDt finds the time to the next state-changing event. Every event
// source is now a queue head: rate-driven completions come off the deadline
// heap (stale tops are discarded in passing), startup expiries off the wake
// heap, and submissions, node events and trace samples off their time-sorted
// queues — O(log heap) per event instead of a scan over the active sets.
// Every deadline on the heap equals what a fresh scan over the settled state
// would compute (refreshDeadlines re-registers on every rate change), so the
// heap top IS the scan minimum.
func (c *Cluster) nextEventDt() (float64, bool) {
	const tiny = 1e-9
	best := math.Inf(1)
	for len(c.completions) > 0 {
		top := c.completions[0]
		if top.stale() {
			c.completions.pop()
			continue
		}
		if dt := top.at - c.now; dt < best {
			best = dt
		}
		break
	}
	for s := range c.wakes {
		h := &c.wakes[s]
		for len(*h) > 0 {
			top := (*h)[0]
			if top.n.wakeAt != top.at {
				h.pop()
				continue
			}
			if dt := top.at - c.now; dt < best {
				best = dt
			}
			break
		}
	}
	if len(c.pending) > 0 {
		if dt := c.pending[0].At - c.now; dt < best {
			best = dt
		}
	}
	if dt, ok := c.nextNodeEventDt(); ok && dt < best {
		best = dt
	}
	if c.trace != nil {
		if dt := c.trace.nextSampleTime(c.now) - c.now; dt < best {
			best = dt
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	if best < tiny {
		best = tiny
	}
	return best, true
}

// advance moves the clock to the chosen event and fires every completion
// whose deadline has come. Progress integration happens at settle points
// (settleApp/settleForeign), not here: an event that changes no rates costs
// O(pops), not O(active).
func (c *Cluster) advance(dt float64) {
	c.now += dt
	c.popCompletions()
	if c.trace != nil {
		c.trace.maybeSample(c.now, c.nodes)
	}
}

// popCompletions fires every due completion off the deadline heap in
// (deadline, registration) order. The pop window extends one dt-clamp (1e-9s)
// past the clock: the event dt is computed as deadline-minus-now and added
// back onto the clock, so the landing instant can sit an ulp on either side
// of the stored deadline; an entity popped marginally early has at most
// rate*1e-9 GB left, absorbed by the completion epsilon exactly like the
// per-event engine's threshold was. Completed apps are compacted out of the
// order-preserving active/profiling lists in one sweep per completion event.
func (c *Cluster) popCompletions() {
	const tiny = 1e-9
	appsDone, profilingLeft, foreignDone := false, false, false
	for len(c.completions) > 0 {
		top := c.completions[0]
		if top.stale() {
			c.completions.pop()
			continue
		}
		if top.at > c.now+tiny {
			break
		}
		c.completions.pop()
		if top.app != nil {
			wasProfiling := top.app.State == StateProfiling
			c.completeApp(top.app)
			appsDone = appsDone || top.app.State == StateDone
			profilingLeft = profilingLeft || (wasProfiling && top.app.State != StateProfiling)
		} else {
			c.completeForeign(top.f)
			foreignDone = foreignDone || top.f.done
		}
	}
	if appsDone {
		w := 0
		for _, a := range c.active {
			if a.State != StateDone {
				c.active[w] = a
				w++
			}
		}
		clear(c.active[w:])
		c.active = c.active[:w]
	}
	if profilingLeft {
		w := 0
		for _, a := range c.profiling {
			if a.State == StateProfiling {
				c.profiling[w] = a
				w++
			}
		}
		clear(c.profiling[w:])
		c.profiling = c.profiling[:w]
	}
	if foreignDone {
		w := 0
		for _, f := range c.activeForeign {
			// Drops deadline completions and any task killed by a node
			// failure since the last sweep (counted there already).
			if !f.done {
				c.activeForeign[w] = f
				w++
			}
		}
		clear(c.activeForeign[w:])
		c.activeForeign = c.activeForeign[:w]
	}
}

// completeApp settles the app at its deadline and fires the completion
// transition the per-event engine used to detect by thresholding the
// freshly-integrated remainder. If the settled remainder is somehow still
// above the epsilon the deadline was premature (defensive; the refresh pass
// re-registers on every rate change) and the app is simply re-registered.
func (c *Cluster) completeApp(a *App) {
	const eps = 1e-6
	c.settleApp(a)
	switch a.State {
	case StateProfiling:
		if a.profileLeft > eps {
			c.reregisterDeadline(a)
			return
		}
		a.profileLeft = 0
		// The contributed part of the profiled data counts towards the final
		// output.
		a.RemainingGB -= a.ContributeGB
		if a.RemainingGB <= eps {
			a.RemainingGB = 0
			a.State = StateDone
			a.ReadyTime = c.now
			a.DoneTime = c.now
			c.doneApps++
		} else {
			a.State = StateReady
			a.ReadyTime = c.now
		}
	case StateRunning:
		if a.RemainingGB > eps {
			c.reregisterDeadline(a)
			return
		}
		a.RemainingGB = 0
		if c.observer != nil {
			// Report realised footprints while the executors are still
			// attached: the completion is the moment their true demand is
			// confirmed.
			for _, e := range a.Executors {
				c.observer.Observe(c, e, ExecCompleted)
			}
		}
		for len(a.Executors) > 0 {
			c.removeExecutor(a.Executors[0])
		}
		a.State = StateDone
		a.DoneTime = c.now
		c.doneApps++
	}
	a.deadline = math.Inf(1)
}

// reregisterDeadline force-pushes a fresh deadline for an app whose popped
// entry fired before its work was actually done (the entry itself is gone, so
// the one-entry-per-finite-deadline invariant must be restored even if the
// recomputed time is bit-identical).
func (c *Cluster) reregisterDeadline(a *App) {
	a.deadline = math.Inf(1)
	c.setAppDeadline(a, c.lastShare)
}

// completeForeign settles the foreign task at its deadline and completes it.
func (c *Cluster) completeForeign(f *ForeignTask) {
	const eps = 1e-6
	c.settleForeign(f)
	if f.remaining > eps {
		f.deadline = math.Inf(1)
		c.setForeignDeadline(f)
		return
	}
	f.remaining = 0
	f.done = true
	f.DoneTime = c.now
	c.doneForeign++
	f.deadline = math.Inf(1)
	// The finished co-runner stops contending for CPU, so its node's
	// survivors speed up. (Its working set stays resident by default — see
	// the ActualGB quirk note in node.go — or leaves the memory sums too
	// under Config.ReleaseForeignMem; the dirty mark covers both.)
	c.markDirty(f.Node)
}

func (c *Cluster) result() *Result {
	makespan := 0.0
	for _, a := range c.apps {
		if a.DoneTime > makespan {
			makespan = a.DoneTime
		}
	}
	for _, f := range c.foreign {
		if f.DoneTime > makespan {
			makespan = f.DoneTime
		}
	}
	stats := make([]ShardStat, c.shards)
	for s := range stats {
		stats[s] = ShardStat{Shard: s, Rated: c.shardRated[s], Wakes: c.shardWakes[s]}
	}
	for _, n := range c.nodes {
		stats[n.shard].Nodes++
	}
	return &Result{
		Apps:         c.apps,
		Foreign:      c.foreign,
		MakespanSec:  makespan,
		OOMKills:     c.totalOOM,
		FailKills:    c.totalFailKills,
		PreemptKills: c.totalPreemptKills,
		Migrations:   c.totalMigrations,
		OOMRetries:   c.totalRetries,
		LostWorkGB:   c.totalLostGB,
		Epochs:       c.epochs,
		ShardStats:   stats,
		Trace:        c.trace,
	}
}
