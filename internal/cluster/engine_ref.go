package cluster

import (
	"fmt"
	"math"
)

// This file holds full-scan reference implementations of event selection,
// rate recomputation, the profiling share, the waiting set, the completion
// check and the stored completion deadlines. They are not called by the
// engine — the indexed paths in engine.go replaced them — but they are the
// ground truth the index must reproduce exactly: the differential property
// test (property_test.go) installs Cluster.checkEvent and replays these
// scans against the indexed engine's state on every event of randomized
// workloads, asserting float-for-float agreement. Any bookkeeping bug in the
// active sets, dirty marking, wake heap or deadline heap shows up as a
// divergence on the exact event where it happens, not as a mysteriously
// shifted makespan.
//
// Since the settle-on-rate-change refactor the scans read the SETTLED state:
// a completion candidate is settledAt + remaining/rate (an absolute
// deadline), computed with exactly the expressions setAppDeadline /
// setForeignDeadline use, so the heap top must still match a fresh full scan
// float-for-float. The per-event re-integration semantics of the pre-settle
// engine live on in the property test's shadow integrator, which bounds the
// trajectory difference by a documented epsilon instead of bit equality.

// refProfilingShare is the full-apps-scan profiling share.
func (c *Cluster) refProfilingShare() float64 {
	var sum float64
	for _, a := range c.apps {
		if a.State == StateProfiling {
			sum += a.Job.Bench.ScanRate
		}
	}
	if sum <= c.cfg.CoordinatorRateGBps || sum == 0 {
		return 1
	}
	return c.cfg.CoordinatorRateGBps / sum
}

// refNextEventDt is the full-scan event selection: every app, every foreign
// task, the pending head, the node-event head and the next trace sample.
// Completion candidates are absolute deadlines recomputed from the settled
// state with the exact expressions setAppDeadline/setForeignDeadline use, so
// the engine's heap-top pick must agree float-for-float (dt = deadline - now
// is monotone in the deadline, so min-of-dt equals dt-of-min). It reads
// trace.nextSampleTime through a side-effect-free copy of the clamp, since
// the engine's own call already advanced the stored instant.
func (c *Cluster) refNextEventDt(share float64) (float64, bool) {
	const tiny = 1e-9
	best := math.Inf(1)
	for _, a := range c.apps {
		switch a.State {
		case StateProfiling:
			rate := a.Job.Bench.ScanRate * c.cfg.ProfilingRateFactor * share
			if rate > 0 && a.profileLeft > 0 {
				if dt := a.settledAt + a.profileLeft/rate - c.now; dt < best {
					best = dt
				}
			}
		case StateRunning:
			// Per-executor candidates mirror the wake heap exactly: each
			// executor whose effective gate (app startup or its own migration
			// gate, whichever is later) lies in the future contributes that
			// gate — the engine stores the per-node minimum as Node.wakeAt,
			// and a min over all gates equals a min over per-node minima.
			for _, e := range a.Executors {
				gate := a.startupUntil
				if e.gateUntil > gate {
					gate = e.gateUntil
				}
				if gate > c.now {
					if dt := gate - c.now; dt < best {
						best = dt
					}
				}
			}
			if a.startupUntil <= c.now {
				if r := appRate(a); r > tiny {
					if dt := a.settledAt + a.RemainingGB/r - c.now; dt < best {
						best = dt
					}
				}
			}
		}
	}
	for _, f := range c.foreign {
		if !f.done && f.rate > tiny {
			if dt := f.settledAt + f.remaining/f.rate - c.now; dt < best {
				best = dt
			}
		}
	}
	if len(c.pending) > 0 {
		if dt := c.pending[0].At - c.now; dt < best {
			best = dt
		}
	}
	if dt, ok := c.nextNodeEventDt(); ok && dt < best {
		best = dt
	}
	if c.trace != nil {
		next := c.trace.nextSample
		if next < c.now {
			next = c.now
		}
		if dt := next - c.now; dt < best {
			best = dt
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	if best < tiny {
		best = tiny
	}
	return best, true
}

// refAllDone is the full-scan completion check.
func (c *Cluster) refAllDone() bool {
	if len(c.pending) > 0 {
		return false
	}
	for _, a := range c.apps {
		if a.State != StateDone {
			return false
		}
	}
	for _, f := range c.foreign {
		if !f.done {
			return false
		}
	}
	return true
}

// refWaitingApps is the full-apps-scan waiting set (including the classed
// weighted ordering).
func (c *Cluster) refWaitingApps() []*App {
	var buf []*App
	for _, a := range c.apps {
		if (a.State == StateReady || a.State == StateRunning) &&
			a.RemainingGB > 0 && len(a.Executors) < a.MaxExecutors {
			buf = append(buf, a)
		}
	}
	if c.classed {
		for i := 1; i < len(buf); i++ {
			for j := i; j > 0 && buf[j].Class.Weight > buf[j-1].Class.Weight; j-- {
				buf[j], buf[j-1] = buf[j-1], buf[j]
			}
		}
	}
	return buf
}

// refCheckRates recomputes every rate on every node with the original
// formula — into locals, never into engine state — and compares against the
// rates the dirty-node pass left behind. It returns a description of the
// first divergence, or "" when every stored rate is bit-identical to a full
// recompute. It must run after the engine's recomputeRates and before
// advance (the window where stored rates are supposed to be fresh); it
// deliberately omits enforceOOM, which the engine's own pass already applied
// to every node whose memory changed.
//
//moevet:allow refpair pure cross-checker comparing stored rates to a fresh scan; no live twin by design
func (c *Cluster) refCheckRates() string {
	for _, n := range c.nodes {
		sumD := n.CPUDemand()
		usable := n.Spec.UsableGB()
		speed := n.Spec.SpeedFactor
		overflow := n.ActualGB() - c.cfg.PressureWatermark*usable
		pageFactor := 1.0
		if overflow > 0 {
			pageFactor = 1 / (1 + c.cfg.PagePenalty*overflow/usable)
		}
		cpuFactor := 1.0
		if cap := n.cpuCap; sumD > cap {
			cpuFactor = cap / sumD
		}
		for _, e := range n.Executors {
			gate := e.App.startupUntil
			if e.gateUntil > gate {
				gate = e.gateUntil
			}
			var want float64
			if gate > c.now {
				want = 0
			} else {
				interference := 1 / (1 + c.cfg.InterferenceAlpha*(sumD-e.Demand))
				cacheEff := 1.0
				if e.FairShareGB > c.cfg.MinChunkGB && e.ItemsGB < e.FairShareGB {
					cacheEff = math.Pow(e.ItemsGB/e.FairShareGB, c.cfg.CacheGamma)
					if cacheEff < c.cfg.CacheFloor {
						cacheEff = c.cfg.CacheFloor
					}
				}
				heapFactor := 1.0
				if e.ReservedGB > 0 && e.NeedGB > e.ReservedGB {
					shortfall := (e.NeedGB - e.ReservedGB) / e.ReservedGB
					heapFactor = 1 / (1 + c.cfg.HeapPenalty*shortfall*shortfall)
					if heapFactor < c.cfg.HeapFloor {
						heapFactor = c.cfg.HeapFloor
					}
				}
				want = e.App.Job.Bench.ScanRate * speed * cpuFactor * interference * pageFactor * cacheEff * heapFactor
			}
			if e.rate != want {
				return fmt.Sprintf("node %d app %d executor rate %v, full recompute %v", n.ID, e.App.ID, e.rate, want)
			}
		}
		for _, f := range n.Foreign {
			if f.done {
				continue
			}
			interference := 1 / (1 + c.cfg.InterferenceAlpha*(sumD-f.CPULoad))
			want := speed * cpuFactor * interference * pageFactor
			if f.rate != want {
				return fmt.Sprintf("node %d foreign %q rate %v, full recompute %v", n.ID, f.Name, f.rate, want)
			}
		}
	}
	return ""
}

// refCheckDeadlines recomputes every stored completion deadline from the
// settled state — the same expressions setAppDeadline/setForeignDeadline
// evaluate — and returns the first divergence, or "" when every stored
// deadline is bit-identical to a full recompute. It also pins the settle
// bookkeeping itself: no settle point may lie in the future. Like
// refCheckRates it must run in the window after refreshDeadlines and before
// advance.
//
//moevet:allow refpair pure cross-checker comparing stored deadlines to a fresh scan; no live twin by design
func (c *Cluster) refCheckDeadlines(share float64) string {
	const tiny = 1e-9
	for _, a := range c.apps {
		if a.settledAt > c.now {
			return fmt.Sprintf("app %d settled at %v, ahead of the clock %v", a.ID, a.settledAt, c.now)
		}
		want := math.Inf(1)
		switch a.State {
		case StateProfiling:
			rate := a.Job.Bench.ScanRate * c.cfg.ProfilingRateFactor * share
			if rate > 0 && a.profileLeft > 0 {
				want = a.settledAt + a.profileLeft/rate
			}
		case StateRunning:
			if a.startupUntil <= c.now {
				if r := appRate(a); r > tiny {
					want = a.settledAt + a.RemainingGB/r
				}
			}
		}
		if a.State != StateDone && a.deadline != want {
			return fmt.Sprintf("app %d (%v) deadline %v, full recompute %v", a.ID, a.State, a.deadline, want)
		}
	}
	for _, f := range c.foreign {
		if f.done {
			continue
		}
		if f.settledAt > c.now {
			return fmt.Sprintf("foreign %q settled at %v, ahead of the clock %v", f.Name, f.settledAt, c.now)
		}
		want := math.Inf(1)
		if f.rate > tiny {
			want = f.settledAt + f.remaining/f.rate
		}
		if f.deadline != want {
			return fmt.Sprintf("foreign %q deadline %v, full recompute %v", f.Name, f.deadline, want)
		}
	}
	return ""
}
