package cluster

import (
	"fmt"
	"math"
)

// NodeSpec is the hardware description of one computing node. The paper's
// testbed is uniform (every node a 64 GB / 16-thread Xeon with 16 GB swap),
// but real co-location fleets are heterogeneous: NodeSpec lets every node
// carry its own capacity and speed, while platform-wide behaviour (penalty
// shapes, watermarks, startup latency) stays in Config.
type NodeSpec struct {
	// RAMGB is the node's physical memory.
	RAMGB float64
	// Cores is the number of hardware threads. CPU demands are expressed as
	// fractions of a Config.BaselineCores node, so a node with twice the
	// baseline cores hosts twice the aggregate demand before saturating.
	Cores int
	// SpeedFactor scales executor processing rates on this node relative to
	// the paper's reference machine (1.0). Stragglers sit below 1, newer
	// hardware above.
	SpeedFactor float64
	// SwapGB is the node's swap space.
	SwapGB float64
	// OSReserveGB is memory unavailable to executors on this node.
	OSReserveGB float64
	// Rack is the node's failure domain: nodes sharing a rack share power
	// and top-of-rack networking, so correlated faults (RackStormEvents)
	// take them out together and spread-aware placement avoids stacking one
	// application's executors behind a single rack. Empty means no topology
	// information (every node its own implicit domain).
	Rack string
	// Zone is the coarser failure domain the rack belongs to (availability
	// zone / room). Informational for placers; empty means unknown.
	Zone string
}

// UsableGB is the node memory available to executors.
func (s NodeSpec) UsableGB() float64 { return s.RAMGB - s.OSReserveGB }

// Validate rejects physically meaningless specs.
func (s NodeSpec) Validate() error {
	for _, v := range []float64{s.RAMGB, s.SpeedFactor, s.SwapGB, s.OSReserveGB} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("cluster: non-finite value in node spec %+v", s)
		}
	}
	if s.RAMGB <= 0 || s.UsableGB() <= 0 {
		return fmt.Errorf("cluster: node spec has no usable memory (%+v)", s)
	}
	if s.Cores <= 0 {
		return fmt.Errorf("cluster: node spec needs positive cores (%+v)", s)
	}
	if s.SpeedFactor <= 0 {
		return fmt.Errorf("cluster: node spec needs a positive speed factor (%+v)", s)
	}
	if s.SwapGB < 0 || s.OSReserveGB < 0 {
		return fmt.Errorf("cluster: negative swap or OS reserve (%+v)", s)
	}
	return nil
}

// DefaultNodeSpec is the per-node view of the platform config: the spec every
// node gets when the cluster is built homogeneously (the paper's testbed).
func (c Config) DefaultNodeSpec() NodeSpec {
	return NodeSpec{
		RAMGB:       c.RAMGB,
		Cores:       c.baselineCores(),
		SpeedFactor: 1,
		SwapGB:      c.SwapGB,
		OSReserveGB: c.OSReserveGB,
	}
}

// baselineCores resolves the reference core count, defaulting to the paper's
// 16-thread nodes for configs predating the field.
func (c Config) baselineCores() int {
	if c.BaselineCores > 0 {
		return c.BaselineCores
	}
	return defaultBaselineCores
}

const defaultBaselineCores = 16
