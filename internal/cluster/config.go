// Package cluster is a discrete-event simulator of the paper's evaluation
// platform: a 40-node cluster (8-core/16-thread Xeon, 64 GB RAM, 16 GB swap
// per node) running Spark executors under a YARN-like resource manager.
//
// The simulator models exactly the quantities the paper's scheduling problem
// depends on: per-executor memory footprints (ground truth from the
// workload models), admission-time memory reservations, CPU demand
// aggregation and contention, paging when actual memory use overflows a
// node, out-of-memory kills when it overflows swap, RDD-cache efficiency
// when an executor is given fewer data items than its fair share, and a
// coordinating node that runs profiling passes whose output counts towards
// job completion. Progress is fluid (piecewise-constant rates integrated
// between events), which keeps runs deterministic and fast while preserving
// the contention behaviour that separates the co-location policies.
package cluster

// Config describes the simulated platform. DefaultConfig matches the paper's
// testbed (Section 5.1).
type Config struct {
	// Nodes is the number of computing nodes (the driver runs on a separate
	// coordinating node).
	Nodes int
	// RAMGB is physical memory per node.
	RAMGB float64
	// BaselineCores is the hardware-thread count of the reference node that
	// CPU demands are expressed against: a demand of 1.0 saturates a
	// BaselineCores node. Heterogeneous nodes scale their CPU capacity as
	// NodeSpec.Cores / BaselineCores. Zero means the paper's 16 threads.
	BaselineCores int
	// OSReserveGB is memory unavailable to executors (OS, daemons, HDFS).
	OSReserveGB float64
	// SwapGB is swap space per node; actual use beyond RAM spills here with
	// a heavy paging penalty, and beyond RAM+swap executors are OOM-killed.
	SwapGB float64
	// PagePenalty scales the paging slowdown: executor rates are divided by
	// (1 + PagePenalty * overflowGB / usableGB) while a node's actual
	// memory use exceeds the pressure watermark.
	PagePenalty float64
	// PressureWatermark is the fraction of usable memory beyond which the
	// node is under memory pressure (page-cache loss, GC storms) and the
	// paging penalty starts to apply.
	PressureWatermark float64
	// ProfilingRateFactor scales an application's scan rate during
	// profiling runs (instrumented, single-host execution is slower).
	ProfilingRateFactor float64
	// HeapPenalty scales the executor-level slowdown when an executor's
	// true footprint exceeds its granted heap (reservation): spilling,
	// recomputation and GC thrash. The rate is divided by
	// (1 + HeapPenalty * (shortfall/reserve)^2), floored at HeapFloor —
	// quadratic, so small under-predictions are survivable and large ones
	// are crippling.
	HeapPenalty float64
	// HeapFloor bounds the heap-pressure penalty from below.
	HeapFloor float64
	// OffHeapFrac is how far an executor's resident memory can exceed its
	// granted heap (JVM metaspace, off-heap buffers) before the excess
	// spills to disk instead of RAM.
	OffHeapFrac float64
	// InterferenceAlpha is the mild co-location slowdown from shared
	// caches/memory bandwidth even when CPU is not saturated: rates are
	// divided by (1 + alpha * co-runner CPU demand).
	InterferenceAlpha float64
	// CacheGamma shapes the RDD-cache efficiency penalty for executors
	// allocated fewer data items than their fair share: rate is multiplied
	// by (items/fairShare)^CacheGamma (capped at 1).
	CacheGamma float64
	// CacheFloor bounds the cache-efficiency penalty from below.
	CacheFloor float64
	// CoordinatorRateGBps is the aggregate profiling throughput of the
	// coordinating node. Profiling applications share it processor-style:
	// each proceeds at its own scan rate, scaled down when the sum of scan
	// rates exceeds the capacity.
	CoordinatorRateGBps float64
	// MaxExecutorNodes caps how many nodes a single application spreads
	// over (Spark dynamic allocation).
	MaxExecutorNodes int
	// ExecutorSpreadGB is the input volume one executor is sized for when
	// deciding an app's executor fleet: fleet = ceil(input/ExecutorSpreadGB).
	ExecutorSpreadGB float64
	// MinChunkGB is the smallest data allocation worth spawning an executor
	// for.
	MinChunkGB float64
	// OOMReprocessFrac is the fraction of an OOM-killed executor's
	// allocation that must be reprocessed (lost partial work).
	OOMReprocessFrac float64
	// StartupSec is the application/executor launch latency (driver start,
	// JVM spin-up, YARN container allocation) before processing begins.
	StartupSec float64
	// ReleaseForeignMem, when set, frees a completed foreign task's working
	// set: its MemoryGB leaves the node's reserved and actual memory the
	// moment the task finishes, so a node stops paying paging/OOM pressure
	// for co-runners that are gone. On by default since the settle-engine
	// golden re-capture; clear it to restore the historical quirk where
	// foreign working sets stay resident forever (documented in node.go).
	ReleaseForeignMem bool
	// FleetAwareSizing, when set, sizes each application's executor fleet
	// from the specs of nodes actually free at admission instead of assuming
	// ExecutorSpreadGB-per-reference-node (see Cluster.fleetFor). On by
	// default since the settle-engine golden re-capture; clear it to restore
	// the reference formula NodesFor unconditionally. On a uniform reference
	// fleet with enough free nodes the two agree.
	FleetAwareSizing bool
	// RefreshFleetSizing, when set with FleetAwareSizing, re-derives each
	// in-flight application's executor-fleet cap at every scheduling event
	// instead of freezing it at admission, ratcheting the cap upward (never
	// down) as capacity frees (see Cluster.refreshFleetCaps). Without it, a
	// job admitted into a transiently packed fleet — a storm window, an
	// arrival burst — keeps its one-or-two-executor cap for life and crawls
	// on an otherwise idle cluster. Off by default: the historical goldens
	// pin admission-time-only sizing, straggler pathology included.
	RefreshFleetSizing bool
	// TraceInterval, when positive, samples per-node utilization every so
	// many simulated seconds (Figure 7).
	TraceInterval float64
	// MigrateOnDrain, when set, gracefully evacuates a draining node: each
	// resident executor is checkpointed and moved to a feasible node (free
	// reservation, no same-app executor, not blacklisted) instead of running
	// to completion in place. The moved executor keeps its reservation,
	// allocation and accumulated progress; it resumes after a gate of
	// processedGB / MigrateCheckpointGBps + MigrateRestartSec. Off by
	// default: migration changes drain dynamics, and the PR1-8 goldens pin
	// the run-in-place behaviour.
	MigrateOnDrain bool
	// MigrateCheckpointGBps is the bandwidth at which an executor's
	// processed state is checkpointed and restored during a migration
	// (serialize + ship + rehydrate, end to end). Non-positive means the
	// checkpoint is free and only MigrateRestartSec gates the move.
	MigrateCheckpointGBps float64
	// MigrateRestartSec is the fixed restart penalty a migrated executor
	// pays on its new node (container allocation, JVM spin-up) on top of the
	// checkpoint time.
	MigrateRestartSec float64
	// OOMRetryBudget, when positive, replaces the permanent per-node OOM
	// blacklist with a retry budget: the app's first OOMRetryBudget
	// blacklist entries expire after a cool-off (OOMCoolOffSec, doubling
	// per retry consumed — deterministic exponential backoff), and only
	// once the budget is exhausted do entries become permanent again. Zero
	// keeps the legacy permanent blacklist the goldens pin.
	OOMRetryBudget int
	// OOMCoolOffSec is the base cool-off of the first retried blacklist
	// entry under OOMRetryBudget.
	OOMCoolOffSec float64
	// Shards splits the engine's per-node work across that many event-loop
	// partitions (see shard.go): nodes are partitioned by rack when the fleet
	// has topology, by contiguous ID blocks otherwise, and the rate
	// recomputation of each event fans out across a persistent worker pool,
	// synchronised at the event (epoch) boundary. Results are bit-identical at
	// any shard count; 0 or 1 runs the plain single-loop engine. Negative
	// values are rejected by NewHetero, and counts beyond the node count are
	// clamped to it.
	Shards int
}

// DefaultConfig returns the paper's platform.
func DefaultConfig() Config {
	return Config{
		Nodes:               40,
		RAMGB:               64,
		BaselineCores:       16,
		OSReserveGB:         4,
		SwapGB:              16,
		PagePenalty:         30,
		PressureWatermark:   0.92,
		ProfilingRateFactor: 0.7,
		HeapPenalty:         4,
		HeapFloor:           0.05,
		OffHeapFrac:         0.15,
		InterferenceAlpha:   0.12,
		CacheGamma:          0.3,
		CacheFloor:          0.6,
		CoordinatorRateGBps: 1.2,
		MaxExecutorNodes:    40,
		ExecutorSpreadGB:    16,
		MinChunkGB:          0.05,
		OOMReprocessFrac:    1.0,
		StartupSec:          8,
		ReleaseForeignMem:   true,
		FleetAwareSizing:    true,
		TraceInterval:       0,
		// Resilience features stay opt-in: flipping them moves every golden
		// that includes a drain or an OOM kill. The cost knobs carry
		// defaults so enabling the features needs no further tuning: 0.5
		// GB/s end-to-end checkpoint bandwidth, a restart penalty matching
		// the startup latency, and a 4-minute first cool-off.
		MigrateOnDrain:        false,
		MigrateCheckpointGBps: 0.5,
		MigrateRestartSec:     8,
		OOMRetryBudget:        0,
		OOMCoolOffSec:         240,
	}
}

// UsableGB is the per-node memory available to executors.
func (c Config) UsableGB() float64 { return c.RAMGB - c.OSReserveGB }

// AllocatableGB is the memory a node advertises for reservations: the
// pressure watermark keeps a safety band below the physical limit, exactly
// like YARN's node-manager resource setting.
func (c Config) AllocatableGB() float64 {
	w := c.PressureWatermark
	if w <= 0 || w > 1 {
		w = 1
	}
	return w * c.UsableGB()
}

// NodesFor returns the executor-fleet size Spark's dynamic allocation picks
// for an input of the given size.
func (c Config) NodesFor(inputGB float64) int {
	n := int((inputGB + c.ExecutorSpreadGB - 1) / c.ExecutorSpreadGB)
	if inputGB > 0 && n < 1 {
		n = 1
	}
	if n > c.MaxExecutorNodes {
		n = c.MaxExecutorNodes
	}
	if n < 1 {
		n = 1
	}
	return n
}
