package cluster

import (
	"math/rand"
	"testing"

	"moespark/internal/workload"
)

// fleetScaleScheduler is a whole-node FIFO policy built for fleet-scale
// streams: per-event cost is O(1) amortised, independent of both the fleet
// size and the arrival-stream length. Admitted apps enter a FIFO via Prepare
// (the engine calls it once per admission, in arrival order); free nodes live
// on a stack fed by the engine's Observe callback at executor completion.
// Schedule therefore never walks the waiting set or the fleet — it pops the
// FIFO head and the free stack until either runs dry. Every executor owns its
// whole node (reservation = footprint, one executor per node), so no rate
// penalty and no OOM path fires and the engine's event loop itself is what
// the race detector exercises.
type fleetScaleScheduler struct {
	queue []*App  // arrival-order FIFO of apps still wanting executors
	head  int     // index of the FIFO head (popped entries are not reused)
	free  []int32 // stack of node IDs with no executor
}

func (*fleetScaleScheduler) Name() string { return "test-fleet-scale" }

func (s *fleetScaleScheduler) Prepare(c *Cluster, app *App) ProfilePlan {
	s.queue = append(s.queue, app)
	return ProfilePlan{}
}

// Observe returns a completing executor's node to the free stack: Observe
// fires once per executor at app completion or OOM kill, just before the
// engine reclaims it, so each spawn pushes exactly one entry and the stack
// never holds duplicates.
func (s *fleetScaleScheduler) Observe(c *Cluster, e *Executor, outcome ExecOutcome) {
	s.free = append(s.free, int32(e.Node.ID))
}

func (s *fleetScaleScheduler) Schedule(c *Cluster) {
	nodes := c.Nodes()
	for s.head < len(s.queue) {
		app := s.queue[s.head]
		if app.State == StateDone || app.RemainingGB <= 0 {
			s.head++
			continue
		}
		items := app.RemainingGB / float64(app.MaxExecutors)
		need := app.Job.Bench.Footprint(items)
		for len(app.Executors) < app.MaxExecutors && len(s.free) > 0 {
			idx := s.free[len(s.free)-1]
			s.free = s.free[:len(s.free)-1]
			n := nodes[idx]
			// A popped node can be stale (still draining its reclaimed
			// executor) or too small; dropping it is safe because its next
			// completion pushes it back.
			if !n.Available() || len(n.Executors) > 0 ||
				app.BlockedOn(n, c.Now()) || need > n.Spec.UsableGB() {
				continue
			}
			if _, err := c.Spawn(app, n, need, items); err != nil {
				return
			}
		}
		if len(app.Executors) < app.MaxExecutors {
			// Head-of-line app still wants nodes and the stack is dry: hold
			// it at the head (strict FIFO, no starvation of wide apps).
			return
		}
		s.head++
	}
}

// runFleetScale drives one fleet-scale open-system run and returns the
// result: a 10k-node uniform fleet under a Poisson stream, sharded event
// loops. The arrival rate keeps node utilization near 90% — loaded but
// stable (the FIFO drains between arrivals), so the run's cost is linear in
// the stream, not quadratic in a growing backlog.
func runFleetScale(t *testing.T, apps, nodes, shards int) *Result {
	t.Helper()
	fleet, err := workload.UniformFleet(nodes, workload.PaperNode())
	if err != nil {
		t.Fatal(err)
	}
	specs := SpecsFrom(fleet)
	arrivals, err := workload.PoissonArrivals(apps, 1.5, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Shards = shards
	cfg.FleetAwareSizing = false // fixed fleets keep the load profile flat
	c, err := NewHetero(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	sched := &fleetScaleScheduler{free: make([]int32, 0, nodes)}
	for id := nodes - 1; id >= 0; id-- {
		sched.free = append(sched.free, int32(id)) // pop low IDs first
	}
	res, err := c.RunOpen(Submissions(arrivals), sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != apps {
		t.Fatalf("%d apps completed, want %d", len(res.Apps), apps)
	}
	for _, a := range res.Apps {
		if a.State != StateDone {
			t.Fatalf("app %d finished in state %v", a.ID, a.State)
		}
	}
	return res
}

// TestFleetScaleMillionArrivals is the sharded engine's scale point: one
// million arrivals over a 10,000-node fleet with two event-loop shards. Its
// job is twofold: prove the engine's per-event cost holds up at fleet scale
// (the run is minutes, not hours, even under -race), and give the race
// detector a full-length look at the fan-out — every epoch dispatches the
// rate pass across the shard pool, so a single unsynchronised read anywhere
// in the parallel half would surface here. Run it with -race in CI.
func TestFleetScaleMillionArrivals(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale stream: minutes under -race; skipped in -short runs")
	}
	res := runFleetScale(t, 1_000_000, 10_000, 2)
	if res.OOMKills != 0 {
		// Whole-node reservations can never overcommit; a kill here means
		// the placement or accounting broke, not that memory ran short.
		t.Fatalf("%d OOM kills on whole-node reservations", res.OOMKills)
	}
}
