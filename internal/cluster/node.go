package cluster

import (
	"fmt"
	"math"
)

// NodeState tracks a node through its lifecycle.
type NodeState int

// Node lifecycle states.
const (
	// NodeActive: accepting placements and processing normally.
	NodeActive NodeState = iota
	// NodeDraining: no new placements; resident executors run to completion.
	NodeDraining
	// NodeFailed: the node is gone; its executors were killed when it
	// failed.
	NodeFailed
	// NodeRemoved: a drained node whose last executor and foreign task
	// finished was decommissioned; it has left the fleet (no placements, no
	// trace samples). StateTime records the decommission instant.
	NodeRemoved
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	switch s {
	case NodeActive:
		return "active"
	case NodeDraining:
		return "draining"
	case NodeFailed:
		return "failed"
	case NodeRemoved:
		return "removed"
	default:
		return fmt.Sprintf("NodeState(%d)", int(s))
	}
}

// Node is one computing node.
type Node struct {
	ID int

	// Spec is the node's hardware description; all capacity and speed math
	// reads it, so nodes in one cluster may differ.
	Spec NodeSpec

	// Executors placed on this node, in spawn order.
	Executors []*Executor
	// Foreign tasks (e.g. PARSEC co-runners) pinned to this node.
	Foreign []*ForeignTask

	// JoinTime is when the node entered the cluster (0 for the initial
	// fleet); StateTime is when it last changed lifecycle state.
	JoinTime  float64
	StateTime float64

	cfg    Config
	state  NodeState
	cpuCap float64

	// dirty marks the node for the next rate recomputation pass: something
	// that feeds its executors' rates changed (executor membership, a Grow,
	// a foreign task arriving or finishing, a lifecycle event, a startup
	// expiry). Clean nodes keep their previously-computed rates, which are
	// bit-identical to what a recompute would produce. Always set via
	// Cluster.markDirty so the node lands on the pending dirty list.
	dirty bool
	// wakeAt is the earliest future startup expiry among this node's
	// executors (+Inf when none): the instant an executor's rate flips from
	// zero to positive with no membership change, so the node must be
	// re-dirtied even though nothing touched it. Maintained together with
	// the cluster's wake heap; see eventindex.go for the invariant.
	wakeAt float64
	// shard is the event-loop partition the node is homed on (always 0 on a
	// single-loop cluster): its rates are recomputed by that shard's worker
	// and its wake-ups live on that shard's wake heap. Assigned at
	// construction or join (see shard.go) and never moved.
	shard int
}

// newNode builds a node with its CPU capacity normalised against the
// platform's baseline cores.
func newNode(id int, spec NodeSpec, cfg Config, joinTime float64) *Node {
	return &Node{
		ID: id, Spec: spec, cfg: cfg,
		JoinTime: joinTime, StateTime: joinTime,
		cpuCap: float64(spec.Cores) / float64(cfg.baselineCores()),
		wakeAt: math.Inf(1),
	}
}

// State returns the node's lifecycle state.
func (n *Node) State() NodeState { return n.state }

// Available reports whether the node accepts new placements.
func (n *Node) Available() bool { return n.state == NodeActive }

// UsableGB is this node's memory available to executors.
func (n *Node) UsableGB() float64 { return n.Spec.UsableGB() }

// AllocatableGB is the memory this node advertises for reservations: the
// platform pressure watermark keeps a safety band below the node's physical
// limit, exactly like YARN's node-manager resource setting.
func (n *Node) AllocatableGB() float64 {
	w := n.cfg.PressureWatermark
	if w <= 0 || w > 1 {
		w = 1
	}
	return w * n.Spec.UsableGB()
}

// CPUCapacity is the node's CPU capacity in baseline-node units: aggregate
// demand beyond it is time-shared.
func (n *Node) CPUCapacity() float64 { return n.cpuCap }

// ReservedGB sums admission-time memory reservations (plus resident foreign
// working sets).
func (n *Node) ReservedGB() float64 {
	var s float64
	for _, e := range n.Executors {
		s += e.ReservedGB
	}
	for _, f := range n.Foreign {
		if f.done && n.cfg.ReleaseForeignMem {
			continue
		}
		s += f.MemoryGB
	}
	return s
}

// ActualGB sums true memory use. Under Config.ReleaseForeignMem (the default
// since the settle-engine golden re-capture) a finished co-runner's working
// set leaves both the reserved and actual sums, so the node can un-page once
// its foreign guest is gone. Clearing the flag restores the historical
// modeling quirk: a completed foreign task releases its CPU demand (CPUDemand
// checks done) but its working set stays resident for the rest of the run —
// only node failure clears it. Either way a foreign completion marks the
// node dirty, so the rate bookkeeping stays exact.
func (n *Node) ActualGB() float64 {
	var s float64
	for _, e := range n.Executors {
		s += e.ActualGB
	}
	for _, f := range n.Foreign {
		if f.done && n.cfg.ReleaseForeignMem {
			continue
		}
		s += f.MemoryGB
	}
	return s
}

// FreeGB is the unreserved allocatable memory left on the node.
func (n *Node) FreeGB() float64 {
	free := n.AllocatableGB() - n.ReservedGB()
	if free < 0 {
		return 0
	}
	return free
}

// CPUDemand sums the CPU demands of everything on the node.
func (n *Node) CPUDemand() float64 {
	var s float64
	for _, e := range n.Executors {
		s += e.Demand
	}
	for _, f := range n.Foreign {
		if !f.done {
			s += f.CPULoad
		}
	}
	return s
}

// Utilization is the node's CPU utilization in [0,1], relative to its own
// capacity.
func (n *Node) Utilization() float64 {
	u := n.CPUDemand() / n.cpuCap
	if u > 1 {
		return 1
	}
	return u
}

// AppCount returns the number of distinct applications with an executor on
// this node.
func (n *Node) AppCount() int {
	seen := map[int]bool{}
	for _, e := range n.Executors {
		seen[e.App.ID] = true
	}
	return len(seen)
}

// ForeignTask is a non-Spark co-runner (the PARSEC programs of Figure 15):
// a CPU-bound job with a fixed working set, measured in seconds of isolated
// runtime.
type ForeignTask struct {
	Name     string
	Node     *Node
	CPULoad  float64
	MemoryGB float64
	// WorkSec is the isolated runtime; progress accrues at the contended
	// rate.
	WorkSec float64

	remaining float64
	rate      float64
	done      bool
	// settledAt / deadline / touched mirror the App fields of the same
	// names: remaining is exact at settledAt, deadline is the absolute
	// completion time registered on the completion heap (+Inf when none),
	// touched marks a pending deadline refresh.
	settledAt float64
	deadline  float64
	touched   bool
	// StartTime and DoneTime are simulation timestamps.
	StartTime float64
	DoneTime  float64
	// Lost marks a task killed by a node failure before completing its work.
	Lost bool
}

// Done reports completion.
func (f *ForeignTask) Done() bool { return f.done }
