package cluster

// Node is one computing node.
type Node struct {
	ID int

	// Executors placed on this node, in spawn order.
	Executors []*Executor
	// Foreign tasks (e.g. PARSEC co-runners) pinned to this node.
	Foreign []*ForeignTask

	cfg Config
}

// ReservedGB sums admission-time memory reservations (plus foreign working
// sets).
func (n *Node) ReservedGB() float64 {
	var s float64
	for _, e := range n.Executors {
		s += e.ReservedGB
	}
	for _, f := range n.Foreign {
		s += f.MemoryGB
	}
	return s
}

// ActualGB sums true memory use.
func (n *Node) ActualGB() float64 {
	var s float64
	for _, e := range n.Executors {
		s += e.ActualGB
	}
	for _, f := range n.Foreign {
		s += f.MemoryGB
	}
	return s
}

// FreeGB is the unreserved allocatable memory left on the node.
func (n *Node) FreeGB() float64 {
	free := n.cfg.AllocatableGB() - n.ReservedGB()
	if free < 0 {
		return 0
	}
	return free
}

// CPUDemand sums the CPU demands of everything on the node.
func (n *Node) CPUDemand() float64 {
	var s float64
	for _, e := range n.Executors {
		s += e.Demand
	}
	for _, f := range n.Foreign {
		if !f.done {
			s += f.CPULoad
		}
	}
	return s
}

// Utilization is the node's CPU utilization in [0,1].
func (n *Node) Utilization() float64 {
	u := n.CPUDemand()
	if u > 1 {
		return 1
	}
	return u
}

// AppCount returns the number of distinct applications with an executor on
// this node.
func (n *Node) AppCount() int {
	seen := map[int]bool{}
	for _, e := range n.Executors {
		seen[e.App.ID] = true
	}
	return len(seen)
}

// ForeignTask is a non-Spark co-runner (the PARSEC programs of Figure 15):
// a CPU-bound job with a fixed working set, measured in seconds of isolated
// runtime.
type ForeignTask struct {
	Name     string
	Node     *Node
	CPULoad  float64
	MemoryGB float64
	// WorkSec is the isolated runtime; progress accrues at the contended
	// rate.
	WorkSec float64

	remaining float64
	rate      float64
	done      bool
	// StartTime and DoneTime are simulation timestamps.
	StartTime float64
	DoneTime  float64
}

// Done reports completion.
func (f *ForeignTask) Done() bool { return f.done }
