package cluster

import (
	"math/rand"
	"testing"

	"moespark/internal/workload"
)

func testNodes(t *testing.T, count int) []*Node {
	t.Helper()
	cfg := DefaultConfig()
	nodes := make([]*Node, count)
	for i := range nodes {
		nodes[i] = newNode(i, cfg.DefaultNodeSpec(), cfg, 0)
	}
	return nodes
}

// TestTraceCatchUpAfterLargeGap drives maybeSample across an event gap many
// intervals wide: the trace must emit every interim sample, at exact interval
// timestamps, not just one sample at the far side of the gap.
func TestTraceCatchUpAfterLargeGap(t *testing.T) {
	tr := newTrace(10)
	nodes := testNodes(t, 3)
	tr.maybeSample(0, nodes)   // t=0 sample
	tr.maybeSample(105, nodes) // 10 catch-up samples: 10, 20, ..., 100, plus none beyond
	if got, want := len(tr.Times), 11; got != want {
		t.Fatalf("samples after gap = %d, want %d", got, want)
	}
	for i, at := range tr.Times {
		if want := float64(i) * 10; at != want {
			t.Errorf("sample %d at t=%v, want %v", i, at, want)
		}
		if len(tr.CPU[i]) != 3 || len(tr.MemGB[i]) != 3 || len(tr.NodeIDs[i]) != 3 {
			t.Errorf("sample %d has ragged row widths cpu=%d mem=%d ids=%d",
				i, len(tr.CPU[i]), len(tr.MemGB[i]), len(tr.NodeIDs[i]))
		}
	}
}

// TestTraceIntervalEdges pins the slack handling at interval boundaries: a
// call epsilon before the boundary must not sample, a call within the slack
// of the boundary must.
func TestTraceIntervalEdges(t *testing.T) {
	tr := newTrace(5)
	nodes := testNodes(t, 1)
	tr.maybeSample(0, nodes)
	if len(tr.Times) != 1 {
		t.Fatalf("t=0 samples = %d, want 1", len(tr.Times))
	}
	tr.maybeSample(4.9999, nodes)
	if len(tr.Times) != 1 {
		t.Fatalf("pre-boundary call sampled: %d samples", len(tr.Times))
	}
	tr.maybeSample(5-1e-7, nodes) // within the 1e-6 slack of the boundary
	if len(tr.Times) != 2 {
		t.Fatalf("slack-boundary call did not sample: %d samples", len(tr.Times))
	}
	if tr.Times[1] != 5 {
		t.Errorf("boundary sample recorded at %v, want 5 (the scheduled time)", tr.Times[1])
	}
	tr.maybeSample(5.0001, nodes)
	if len(tr.Times) != 2 {
		t.Fatalf("re-sampled the same boundary: %d samples", len(tr.Times))
	}
}

// TestTraceNextSampleTimeNeverPast ensures the engine's next-event query
// cannot return a sample time in the past (which would stall the event loop).
func TestTraceNextSampleTimeNeverPast(t *testing.T) {
	tr := newTrace(10)
	if got := tr.nextSampleTime(37); got < 37 {
		t.Errorf("nextSampleTime(37) = %v, in the past", got)
	}
}

// TestTraceVaryingNodeCount samples across joins and failures: rows must
// track the alive node set, and NodeIDs must identify the columns.
func TestTraceVaryingNodeCount(t *testing.T) {
	cfg := DefaultConfig()
	tr := newTrace(10)
	nodes := testNodes(t, 2)
	tr.maybeSample(0, nodes)

	nodes = append(nodes, newNode(2, cfg.DefaultNodeSpec(), cfg, 10))
	tr.maybeSample(10, nodes)

	nodes[0].state = NodeFailed
	tr.maybeSample(20, nodes)

	widths := []int{2, 3, 2}
	ids := [][]int{{0, 1}, {0, 1, 2}, {1, 2}}
	for i, want := range widths {
		if len(tr.CPU[i]) != want {
			t.Errorf("sample %d width = %d, want %d", i, len(tr.CPU[i]), want)
		}
		for k, id := range ids[i] {
			if tr.NodeIDs[i][k] != id {
				t.Errorf("sample %d column %d = node %d, want %d", i, k, tr.NodeIDs[i][k], id)
			}
		}
	}
}

// TestTraceThroughEngineWithChurn runs a traced open-system simulation with
// a node failure and join, checking the engine keeps sampling through the
// churn and the trace reflects the changing fleet size.
func TestTraceThroughEngineWithChurn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.TraceInterval = 20
	c := New(cfg)
	if err := c.ScheduleNodeEvents(
		NodeEvent{At: 50, Kind: NodeFail, Node: 0},
		NodeEvent{At: 100, Kind: NodeJoin},
	); err != nil {
		t.Fatal(err)
	}
	arrivals, err := workload.PoissonArrivals(8, 0.02, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunOpen(Submissions(arrivals), &fullSpeedScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Times) == 0 {
		t.Fatal("no trace recorded")
	}
	seen := map[int]bool{}
	for _, row := range res.Trace.NodeIDs {
		seen[len(row)] = true
	}
	if !seen[3] {
		t.Errorf("no sample saw the 3-node fleet after the failure; widths seen: %v", seen)
	}
}
