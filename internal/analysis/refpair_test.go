package analysis_test

import (
	"testing"

	"moespark/internal/analysis"
	"moespark/internal/analysis/analysistest"
)

func TestRefPair(t *testing.T) {
	analysistest.Run(t, "testdata/src/refpair", []*analysis.Analyzer{analysis.RefPair})
}
