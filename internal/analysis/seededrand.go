package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// simulationPkgs are the packages where time and randomness must be
// simulated: wall-clock reads and unseeded randomness there make two runs of
// the same seed diverge. The set is the deterministic result-path packages
// plus everything that feeds them (experiment harnesses, calibration, math
// kernels, the deterministic parallel runner).
var simulationPkgs = map[string]bool{
	"cluster":     true,
	"sched":       true,
	"moe":         true,
	"classify":    true,
	"workload":    true,
	"metrics":     true,
	"experiments": true,
	"memfunc":     true,
	"features":    true,
	"mathx":       true,
	"parallel":    true,
}

// SeededRand forbids the global math/rand generator and wall-clock reads in
// simulation packages. Randomness must flow from an explicitly seeded
// *rand.Rand handed down by the caller (rand.New(rand.NewSource(seed))), and
// time must come from the engine clock (Cluster.Now), never the machine's.
// Constructors (rand.New*, rand.NewSource) are allowed — they are how seeded
// generators are built; every other package-level math/rand function, plus
// time.Now / time.Since / time.Until, is a finding. Both calls and uses as
// function values are flagged.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbids global math/rand functions and wall-clock reads (time.Now/Since/Until) in simulation packages",
	Run:  runSeededRand,
}

func runSeededRand(pass *Pass) {
	if !simulationPkgs[pass.PkgBaseName()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true
			}
			// Only package-qualified references (rand.Intn), not methods.
			if id, ok := sel.X.(*ast.Ident); !ok {
				return true
			} else if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); !isPkg {
				return true
			}
			switch obj.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !strings.HasPrefix(obj.Name(), "New") {
					pass.Reportf(sel.Pos(),
						"global %s.%s is unseeded: draw from a seeded *rand.Rand passed in by the caller",
						obj.Pkg().Name(), obj.Name())
				}
			case "time":
				switch obj.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock: simulation code must take time from the engine clock",
						obj.Name())
				}
			}
			return true
		})
	}
}
