package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
	"unicode"
	"unicode/utf8"
)

// RefPair keeps reference implementations and their optimised twins from
// drifting apart structurally. Files named *_ref.go hold full-scan reference
// paths (engine_ref.go, knn_ref.go) that differential tests replay against
// the live indexed paths; if someone changes a live function's results (or
// removes it) without updating the reference, the differential test can rot
// into comparing different quantities. For every reference function —
// a *_ref.go function whose name starts with "ref", or any function carrying
// an explicit `//moevet:refpair <twin>` directive — the analyzer requires:
//
//  1. the twin exists in the same package (same receiver type for methods);
//  2. the result types are identical;
//  3. the twin's parameters appear, in order and with identical types,
//     among the reference's parameters (references often take extra
//     explicit state the live path reads from cached engine fields).
//
// Name resolution without a directive: refNextEventDt pairs with
// nextEventDt or NextEventDt. A reference with no live twin at all (pure
// cross-checkers like refCheckRates) is annotated
// //moevet:allow refpair <reason>.
var RefPair = &Analyzer{
	Name: "refpair",
	Doc:  "checks that reference implementations in *_ref.go keep signatures matching their optimised twins",
	Run:  runRefPair,
}

const refPairDirective = "//moevet:refpair"

func runRefPair(pass *Pass) {
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		isRefFile := strings.HasSuffix(name, "_ref.go")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			twin := directiveTwin(fd)
			if twin == "" && (!isRefFile || !strings.HasPrefix(fd.Name.Name, "ref")) {
				continue
			}
			checkRefPair(pass, fd, twin)
		}
	}
}

// directiveTwin returns the twin named by a //moevet:refpair directive in
// the function's doc comment, or "".
func directiveTwin(fd *ast.FuncDecl) string {
	if fd.Doc == nil {
		return ""
	}
	for _, c := range fd.Doc.List {
		if rest, ok := strings.CutPrefix(c.Text, refPairDirective); ok {
			if fields := strings.Fields(rest); len(fields) > 0 {
				return fields[0]
			}
		}
	}
	return ""
}

func checkRefPair(pass *Pass, fd *ast.FuncDecl, twinName string) {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)

	candidates := []string{twinName}
	if twinName == "" {
		rest := strings.TrimPrefix(fd.Name.Name, "ref")
		candidates = []string{lowerFirst(rest), rest}
	}
	twin := findTwin(pass, sig, candidates)
	if twin == nil {
		pass.Reportf(fd.Name.Pos(),
			"reference %s has no twin %s: pair it with //moevet:refpair <twin>, or annotate //moevet:allow refpair <reason> if it is a pure cross-checker",
			fd.Name.Name, strings.Join(candidates, " or "))
		return
	}
	twinSig := twin.Type().(*types.Signature)
	if !types.Identical(sig.Results(), twinSig.Results()) {
		pass.Reportf(fd.Name.Pos(),
			"reference %s results %s differ from twin %s results %s: the differential test would compare different quantities",
			fd.Name.Name, tupleString(sig.Results()), twin.Name(), tupleString(twinSig.Results()))
		return
	}
	if !paramsSubsequence(twinSig.Params(), sig.Params()) {
		pass.Reportf(fd.Name.Pos(),
			"twin %s parameters %s are not a subsequence of reference %s parameters %s",
			twin.Name(), tupleString(twinSig.Params()), fd.Name.Name, tupleString(sig.Params()))
	}
}

// findTwin looks the candidate names up in the package scope, or — for
// methods — in the method set of the reference's receiver type.
func findTwin(pass *Pass, sig *types.Signature, candidates []string) *types.Func {
	for _, name := range candidates {
		if name == "" {
			continue
		}
		if recv := sig.Recv(); recv != nil {
			named := namedRecv(recv.Type())
			if named == nil {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(named, true, pass.Pkg, name)
			if fn, ok := obj.(*types.Func); ok {
				return fn
			}
			continue
		}
		if fn, ok := pass.Pkg.Scope().Lookup(name).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// paramsSubsequence reports whether sub's parameter types appear in order
// within full's.
func paramsSubsequence(sub, full *types.Tuple) bool {
	j := 0
	for i := 0; i < sub.Len(); i++ {
		found := false
		for ; j < full.Len(); j++ {
			if types.Identical(sub.At(i).Type(), full.At(j).Type()) {
				j++
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func tupleString(t *types.Tuple) string {
	parts := make([]string, t.Len())
	for i := range parts {
		parts[i] = t.At(i).Type().String()
	}
	return fmt.Sprintf("(%s)", strings.Join(parts, ", "))
}

func lowerFirst(s string) string {
	r, size := utf8.DecodeRuneInString(s)
	if r == utf8.RuneError {
		return s
	}
	return string(unicode.ToLower(r)) + s[size:]
}
