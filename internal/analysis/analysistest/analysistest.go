// Package analysistest runs analyzers over fixture packages and compares
// the diagnostics against expectations written in the fixtures themselves,
// mirroring golang.org/x/tools/go/analysis/analysistest for moevet's
// stdlib-only framework. A fixture is a small self-contained module under
// testdata/src/<name>/ (its own go.mod keeps it out of the repo build), and
// an expectation is a trailing comment
//
//	// want `regexp` `regexp` ...
//
// on the line the diagnostic should land on. Each backtick-quoted regexp
// must match a distinct diagnostic of the form "[analyzer] message" on that
// line; diagnostics with no matching expectation and expectations with no
// matching diagnostic both fail the test.
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"moespark/internal/analysis"
)

var wantRE = regexp.MustCompile("`([^`]*)`")

// Run loads the fixture module rooted at dir, runs the analyzers over
// patterns (default ./...), and checks the diagnostics against the
// fixtures' want comments. It returns the surviving diagnostics so callers
// can make extra assertions.
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer, patterns ...string) []analysis.Diagnostic {
	t.Helper()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, pkgs, err := analysis.Run(dir, patterns, analyzers)
	if err != nil {
		t.Fatalf("analysis.Run(%s): %v", dir, err)
	}

	type expectation struct {
		re      *regexp.Regexp
		matched bool
	}
	// key: "file:line"
	expects := map[string][]*expectation{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want")
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, m := range wantRE.FindAllStringSubmatch(c.Text[idx:], -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
						}
						expects[key] = append(expects[key], &expectation{re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Position.Filename, d.Position.Line)
		text := fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
		found := false
		for _, e := range expects[key] {
			if !e.matched && e.re.MatchString(text) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", key, text)
		}
	}
	for key, es := range expects {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.re)
			}
		}
	}
	return diags
}
