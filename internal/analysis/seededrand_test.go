package analysis_test

import (
	"testing"

	"moespark/internal/analysis"
	"moespark/internal/analysis/analysistest"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata/src/seededrand", []*analysis.Analyzer{analysis.SeededRand})
}
