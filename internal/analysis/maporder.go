package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// deterministicPkgs are the packages whose code runs on result paths:
// everything they compute feeds goldens, differential suites or benchstat
// numbers, so iteration order anywhere inside them must be reproducible.
// External test packages ("cluster_test") inherit the policy of the package
// they test.
var deterministicPkgs = map[string]bool{
	"cluster":  true,
	"sched":    true,
	"moe":      true,
	"classify": true,
	"workload": true,
	"metrics":  true,
}

// MapOrder flags `range` over a map inside a deterministic package. Go
// randomizes map iteration order per run, so any map range whose body is
// order-sensitive makes results differ between bit-identical invocations.
// A range is exempt only when the body is provably order-insensitive:
// every statement is commutative accumulation — integer `x++`/`x--`/`x op= v`
// into a loop-invariant scalar, any `m[k] op= v` or `m[k] = v` keyed by the
// range key itself (each key visited once), or `delete(m, k)` by the range
// key — with side-effect-free operands. Anything else (float accumulation,
// whose rounding is order-dependent; conditionals; calls; appends) must
// either iterate sorted keys or carry //moevet:allow maporder <reason>.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags range over a map in deterministic packages unless the body is provably order-insensitive",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	if !deterministicPkgs[pass.PkgBaseName()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitiveBody(pass, rng) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"range over map %s: iteration order is nondeterministic; iterate sorted keys, or annotate //moevet:allow maporder <reason> if order cannot affect results",
				types.ExprString(rng.X))
			return true
		})
	}
}

// orderInsensitiveBody reports whether every statement of the range body is
// commutative accumulation in the sense documented on MapOrder.
func orderInsensitiveBody(pass *Pass, rng *ast.RangeStmt) bool {
	key, _ := rng.Key.(*ast.Ident)
	if key != nil && key.Name == "_" {
		key = nil
	}
	for _, stmt := range rng.Body.List {
		if !orderInsensitiveStmt(pass, key, stmt) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *Pass, key *ast.Ident, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		// x++ / x-- is exact (hence commutative) only for integers; per-key
		// targets are visited once so any type goes.
		if keyedByRange(pass, key, s.X) {
			return pureExpr(pass, s.X)
		}
		return isInteger(pass, s.X) && pureExpr(pass, s.X)
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		if !pureExpr(pass, lhs) || !pureExpr(pass, rhs) {
			return false
		}
		if keyedByRange(pass, key, lhs) {
			// m[k] = v / m[k] op= v: the range produces each key exactly
			// once, so per-key writes commute regardless of element type.
			return s.Tok == token.ASSIGN || commutativeAssignOp(s.Tok)
		}
		// Scalar accumulator: only exact commutative integer ops; plain
		// assignment (last writer wins) is order-sensitive.
		return commutativeAssignOp(s.Tok) && isInteger(pass, lhs)
	case *ast.ExprStmt:
		// delete(m, k) by the range key: each reached entry removed once.
		call, ok := s.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "delete" {
			return false
		}
		if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "delete" {
			return false
		}
		arg, ok := call.Args[1].(*ast.Ident)
		return ok && key != nil && sameObject(pass, arg, key) && pureExpr(pass, call.Args[0])
	}
	return false
}

// keyedByRange reports whether expr is an index expression whose index is
// exactly the range key variable.
func keyedByRange(pass *Pass, key *ast.Ident, expr ast.Expr) bool {
	if key == nil {
		return false
	}
	ix, ok := expr.(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ix.Index.(*ast.Ident)
	return ok && sameObject(pass, id, key)
}

// sameObject reports whether two identifiers denote the same object.
func sameObject(pass *Pass, a, b *ast.Ident) bool {
	oa := pass.TypesInfo.Uses[a]
	if oa == nil {
		oa = pass.TypesInfo.Defs[a]
	}
	ob := pass.TypesInfo.Uses[b]
	if ob == nil {
		ob = pass.TypesInfo.Defs[b]
	}
	return oa != nil && oa == ob
}

func commutativeAssignOp(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		return true
	}
	return false
}

func isInteger(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// pureExpr reports whether evaluating the expression is free of side effects
// and of observable evaluation order: identifiers, selectors, literals,
// index expressions, unary/binary operators, conversions and len/cap calls
// over pure operands. Any other call is assumed impure.
func pureExpr(pass *Pass, expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.SelectorExpr:
		return pureExpr(pass, e.X)
	case *ast.IndexExpr:
		return pureExpr(pass, e.X) && pureExpr(pass, e.Index)
	case *ast.ParenExpr:
		return pureExpr(pass, e.X)
	case *ast.UnaryExpr:
		return e.Op != token.AND && pureExpr(pass, e.X)
	case *ast.BinaryExpr:
		return pureExpr(pass, e.X) && pureExpr(pass, e.Y)
	case *ast.StarExpr:
		return pureExpr(pass, e.X)
	case *ast.CallExpr:
		// Conversions and len/cap of pure operands.
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			return len(e.Args) == 1 && pureExpr(pass, e.Args[0])
		}
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
				return len(e.Args) == 1 && pureExpr(pass, e.Args[0])
			}
		}
		return false
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if !pureExpr(pass, elt) {
				return false
			}
		}
		return true
	case *ast.KeyValueExpr:
		return pureExpr(pass, e.Key) && pureExpr(pass, e.Value)
	}
	return false
}
