package analysis_test

import (
	"testing"

	"moespark/internal/analysis"
	"moespark/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src/maporder", []*analysis.Analyzer{analysis.MapOrder})
}
