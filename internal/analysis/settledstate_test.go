package analysis_test

import (
	"testing"

	"moespark/internal/analysis"
	"moespark/internal/analysis/analysistest"
)

func TestSettledState(t *testing.T) {
	analysistest.Run(t, "testdata/src/settledstate", []*analysis.Analyzer{analysis.SettledState})
}
