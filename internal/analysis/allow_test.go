package analysis_test

import (
	"strings"
	"testing"

	"moespark/internal/analysis"
	"moespark/internal/analysis/analysistest"
)

// TestAllowScope pins the suppression scope with want comments: exactly the
// named analyzer, exactly the next statement (standalone form) or the same
// line (trailing form).
func TestAllowScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/allow",
		[]*analysis.Analyzer{analysis.MapOrder, analysis.SeededRand}, "./scope")
}

// TestAllowMalformed asserts the pseudo-diagnostics for broken annotations
// programmatically: a trailing // want comment on an annotation line would
// be absorbed into the annotation's reason text, so the fixture cannot
// carry expectations inline.
func TestAllowMalformed(t *testing.T) {
	diags, _, err := analysis.Run("testdata/src/allow", []string{"./malformed"},
		[]*analysis.Analyzer{analysis.MapOrder})
	if err != nil {
		t.Fatalf("analysis.Run: %v", err)
	}
	want := []struct {
		analyzer string
		substr   string
	}{
		// typoed: the unknown name is a finding, and the broken annotation
		// suppresses nothing — the range below it is still flagged.
		{"moevet", `names unknown analyzer "mapporder"`},
		{"maporder", "range over map m"},
		// missingReason: same shape for a reason-less annotation.
		{"moevet", "moevet:allow maporder needs a reason"},
		{"maporder", "range over map m"},
		// bare //moevet:allow with nothing after it.
		{"moevet", "needs an analyzer name and a reason"},
		// valid-looking annotation dangling at end of file.
		{"moevet", "is not followed by a statement"},
	}
	if len(diags) != len(want) {
		var got []string
		for _, d := range diags {
			got = append(got, d.String())
		}
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(want), strings.Join(got, "\n"))
	}
	for i, w := range want {
		d := diags[i]
		if d.Analyzer != w.analyzer || !strings.Contains(d.Message, w.substr) {
			t.Errorf("diagnostic %d = %s, want analyzer %q message containing %q",
				i, d.String(), w.analyzer, w.substr)
		}
	}
}
