// Package analysis is moevet's static-analysis framework: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface the repo's invariant checkers need. The module is deliberately
// stdlib-only, so the framework loads packages itself (load.go) instead of
// importing go/packages, and drives analyzers over parsed, type-checked
// syntax the same way a multichecker would.
//
// The four analyzers it ships (maporder.go, seededrand.go, settledstate.go,
// refpair.go) encode the determinism discipline every result in this repo
// rests on — goldens, the 25-workload differential suites, benchstat
// comparisons — as mechanical checks; see README "Determinism discipline".
// Findings are suppressed one statement at a time with
//
//	//moevet:allow <analyzer> <reason>
//
// annotations (allow.go), never globally.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one invariant checker. Run is invoked once per loaded
// package with a fully type-checked Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //moevet:allow annotations.
	Name string
	// Doc is a one-paragraph description printed by the driver's -help.
	Doc string
	// Run reports the package's violations through pass.Reportf.
	Run func(*Pass)
}

// A Pass carries one type-checked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PkgBaseName returns the package name with any external-test suffix
// stripped, so "cluster_test" is governed by the same package policies as
// "cluster".
func (p *Pass) PkgBaseName() string {
	return strings.TrimSuffix(p.Pkg.Name(), "_test")
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic the way the driver prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// All returns the full moevet analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{MapOrder, SeededRand, SettledState, RefPair}
}

// Run loads the packages matching patterns (relative to dir), runs every
// analyzer over each, applies //moevet:allow suppression, and returns the
// surviving diagnostics sorted by position. Malformed annotations (unknown
// analyzer name, missing reason) are themselves diagnostics, attributed to
// the pseudo-analyzer "moevet". The known set used to validate annotation
// names is always the full suite, independent of which analyzers run.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, []*Package, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows, allowDiags := collectAllows(pkg, known)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &raw,
			}
			a.Run(pass)
		}
		for _, d := range raw {
			if !allows.suppresses(d) {
				diags = append(diags, d)
			}
		}
		diags = append(diags, allowDiags...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, pkgs, nil
}
