// Package cluster is a settledstate fixture: it fakes the engine types
// (App, ForeignTask, Node in a package named cluster) so the analyzer's
// field table applies, then writes their settle-discipline fields from
// both allowed touch points and stray helpers.
package cluster

// App mirrors the engine's settle-discipline fields.
type App struct {
	ID          int
	RemainingGB float64
	profileLeft float64
	settledAt   float64
	deadline    float64
	touched     bool
}

// ForeignTask mirrors the engine's foreign-load bookkeeping.
type ForeignTask struct {
	Name      string
	remaining float64
	settledAt float64
	deadline  float64
	touched   bool
	done      bool
}

// Node mirrors the engine's wake bookkeeping.
type Node struct {
	ID     int
	wakeAt float64
	dirty  bool
}

// Cluster is the owning engine stand-in.
type Cluster struct {
	now  float64
	apps []*App
}

// settleApp is an allowed touch point: the whole point of the discipline
// is that settlement happens here.
func (c *Cluster) settleApp(a *App, rate float64) {
	a.RemainingGB -= rate * (c.now - a.settledAt)
	a.settledAt = c.now
	a.touched = true
}

// settleForeign is also on the allowlist.
func (c *Cluster) settleForeign(f *ForeignTask) {
	f.remaining -= c.now - f.settledAt
	f.settledAt = c.now
}

// markDirty is an allowed touch point for node wake bookkeeping.
func (c *Cluster) markDirty(n *Node, at float64) {
	n.wakeAt = at
	n.dirty = true
}

// evilSettle duplicates settleApp's body outside the allowlist: exactly
// the bug class the analyzer exists to catch.
func (c *Cluster) evilSettle(a *App, rate float64) {
	a.RemainingGB -= rate * (c.now - a.settledAt) // want `write to settle-discipline field App.RemainingGB`
	a.settledAt = c.now                           // want `write to settle-discipline field App.settledAt`
}

// drainForeign decrements remaining outside the allowlist.
func drainForeign(f *ForeignTask, amount float64) {
	f.remaining -= amount // want `write to settle-discipline field ForeignTask.remaining`
	if f.remaining <= 0 {
		f.done = true // want `write to settle-discipline field ForeignTask.done`
	}
}

// pokeNode writes wakeAt outside the allowlist.
func pokeNode(n *Node) {
	n.wakeAt = 0 // want `write to settle-discipline field Node.wakeAt`
}

// readOnly only reads settled fields: reads are always fine.
func readOnly(a *App, f *ForeignTask) float64 {
	if f.done {
		return a.RemainingGB
	}
	return a.deadline - a.settledAt
}

// trailingAllow shows the trailing-comment annotation form.
func trailingAllow(a *App) {
	a.deadline = 0 //moevet:allow settledstate test harness resets the deadline between scenarios
}

// computeNodeRates is the sharded loop's pure rate half: allowed to place
// the wake time it derives.
func (c *Cluster) computeNodeRates(n *Node, shard int) {
	n.wakeAt = c.now + float64(shard)
}

// rateDirtySharded is the epoch fan-out: allowed to clear dirty flags after
// the barrier.
func (c *Cluster) rateDirtySharded(dirty []*Node) {
	for _, n := range dirty {
		n.dirty = false
	}
}

// shardShortcut recomputes a wake time outside the sharded-loop touch
// points: the stray-writer class the shard split must not reintroduce.
func shardShortcut(n *Node, at float64) {
	n.wakeAt = at  // want `write to settle-discipline field Node.wakeAt`
	n.dirty = true // want `write to settle-discipline field Node.dirty`
}
