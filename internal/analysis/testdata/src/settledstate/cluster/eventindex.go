package cluster

// Files named eventindex.go are the deadline-index home and are exempt
// wholesale: these writes produce no diagnostics.
func (c *Cluster) reindex(a *App, at float64) {
	a.deadline = at
	a.touched = false
}
