// Package consumer writes a settled field from outside the cluster
// package entirely: the discipline follows the type, not the file.
package consumer

import "settledstate/cluster"

func Drain(a *cluster.App) {
	a.RemainingGB = 0 // want `write to settle-discipline field App.RemainingGB`
}
