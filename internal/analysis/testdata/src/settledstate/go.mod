module settledstate

go 1.24
