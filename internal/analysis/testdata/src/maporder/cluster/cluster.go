// Package cluster is a maporder fixture: its name places it in the
// deterministic-package set, so every map range here is checked.
package cluster

// appendValues is order-sensitive: the output slice order follows map
// iteration order.
func appendValues(m map[string][]int) []int {
	var out []int
	for _, vs := range m { // want `range over map m`
		out = append(out, vs...)
	}
	return out
}

// sumInts is exempt: integer accumulation is exact, hence commutative.
func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// countKeys is exempt: integer increment.
func countKeys(m map[string]bool) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// sumFloats is order-sensitive: float addition rounds differently per
// iteration order.
func sumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `range over map m`
		sum += v
	}
	return sum
}

// copyKeyed is exempt: each key is written exactly once.
func copyKeyed(src, dst map[int]float64) {
	for k, v := range src {
		dst[k] = v
	}
}

// accumulateKeyed is exempt: per-key op-assign, each key visited once.
func accumulateKeyed(src, dst map[int]float64) {
	for k, v := range src {
		dst[k] += v * 2
	}
}

// dropKeys is exempt: delete by the range key removes each reached entry
// once.
func dropKeys(src map[int]bool, dst map[int]bool) {
	for k := range src {
		delete(dst, k)
	}
}

// wrongKey is order-sensitive: the written key is not the range key, so
// iterations can collide on one slot.
func wrongKey(src, dst map[int]float64) {
	for k, v := range src { // want `range over map src`
		dst[k/2] = v
	}
}

// impureRHS is order-sensitive: the call's side effects observe iteration
// order even though the write is keyed.
func impureRHS(src map[int]int, dst map[int]int, f func(int) int) {
	for k, v := range src { // want `range over map src`
		dst[k] = f(v)
	}
}

// conditionalMin is a real reduction that commutes, but not provably so for
// the analyzer: the annotation records the reason.
func conditionalMin(m map[int]float64) float64 {
	best := 1e300
	//moevet:allow maporder min reduction commutes; fixture mirrors imbalance metrics
	for _, v := range m {
		if v < best {
			best = v
		}
	}
	return best
}
