// Package other is outside the deterministic-package set: map ranges here
// are not moevet's business.
package other

func appendValues(m map[string][]int) []int {
	var out []int
	for _, vs := range m {
		out = append(out, vs...)
	}
	return out
}
