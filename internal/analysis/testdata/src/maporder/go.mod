module maporder

go 1.24
