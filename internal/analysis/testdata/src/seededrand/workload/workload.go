// Package workload is a seededrand fixture: its name places it in the
// simulation-package set, so global randomness and wall-clock reads are
// flagged.
package workload

import (
	"math/rand"
	"time"
)

// badValue demonstrates that value uses of global rand functions are
// caught, not just calls.
var badValue = rand.Intn // want `global rand.Intn is unseeded`

func badDraws() (float64, int64) {
	f := rand.Float64() // want `global rand.Float64 is unseeded`
	n := rand.Int63n(7) // want `global rand.Int63n is unseeded`
	return f, n
}

func badClock(t time.Time) (time.Time, time.Duration) {
	now := time.Now()     // want `time.Now reads the wall clock`
	aged := time.Since(t) // want `time.Since reads the wall clock`
	_ = time.Until(t)     // want `time.Until reads the wall clock`
	return now, aged
}

// goodDraws uses a caller-seeded source: every draw is reproducible.
func goodDraws(r *rand.Rand) (float64, int) {
	return r.Float64(), r.Intn(10)
}

// goodConstruction builds the seeded source itself; constructors are
// exempt (they are how seeded sources come to exist).
func goodConstruction() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// goodTypes only names types and constants from the packages; no draw, no
// clock read.
func goodTypes(d time.Duration) time.Duration {
	return d + time.Second
}

// annotated shows the escape hatch for deliberate wall-clock reads.
func annotated() time.Time {
	//moevet:allow seededrand fixture exercising the annotation path
	return time.Now()
}
