// Package free is outside the simulation-package set: global randomness
// and wall-clock reads are allowed here.
package free

import (
	"math/rand"
	"time"
)

func unchecked() (float64, time.Time) {
	return rand.Float64(), time.Now()
}
