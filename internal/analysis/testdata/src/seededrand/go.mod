module seededrand

go 1.24
