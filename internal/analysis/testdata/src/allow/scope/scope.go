// Package cluster (under allow/scope) pins the annotation's scope: exactly
// the named analyzer, exactly the next statement (standalone form) or the
// same line (trailing form). The package is named cluster so both maporder
// and seededrand govern it.
package cluster

import "math/rand"

// onlyNext: the annotation excuses the first range and nothing else — the
// second, identical range is still flagged.
func onlyNext(m map[string][]int) []int {
	var out []int
	//moevet:allow maporder fixture pins the next-statement-only scope
	for _, vs := range m {
		out = append(out, vs...)
	}
	for _, vs := range m { // want `range over map m`
		out = append(out, vs...)
	}
	return out
}

// wrongAnalyzer: an annotation naming maporder does not excuse a
// seededrand finding on the next statement.
func wrongAnalyzer() float64 {
	//moevet:allow maporder names a different analyzer than the finding below
	return rand.Float64() // want `global rand.Float64 is unseeded`
}

// trailing: the trailing form covers its own line only.
func trailing() (float64, float64) {
	a := rand.Float64() //moevet:allow seededrand fixture pins the same-line-only scope
	b := rand.Float64() // want `global rand.Float64 is unseeded`
	return a, b
}
