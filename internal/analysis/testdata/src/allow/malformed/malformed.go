// Package cluster (under allow/malformed) holds deliberately broken
// annotations. The test asserts the resulting moevet pseudo-diagnostics
// programmatically rather than with want comments: a trailing // want on
// an annotation line would be absorbed into the annotation's reason text,
// since a line comment runs to end of line.
package cluster

// typoed: the misspelled analyzer name is itself a finding, and the broken
// annotation suppresses nothing — the range below is still flagged.
func typoed(m map[string][]int) []int {
	var out []int
	//moevet:allow mapporder the analyzer name is misspelled
	for _, vs := range m {
		out = append(out, vs...)
	}
	return out
}

// missingReason: a bare analyzer name without a written reason is rejected.
func missingReason(m map[string][]int) []int {
	var out []int
	//moevet:allow maporder
	for _, vs := range m {
		out = append(out, vs...)
	}
	return out
}

// bare: no analyzer name at all.
func bare() {
	//moevet:allow
}

// The annotation below is valid in form but dangles at end of file with no
// statement to attach to.
//
//moevet:allow maporder nothing follows this comment
