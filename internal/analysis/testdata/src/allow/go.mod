module allow

go 1.24
