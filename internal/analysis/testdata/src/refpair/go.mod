module refpair

go 1.24
