package engine

// refNextEventDt pairs with nextEventDt by name. The extra share parameter
// is explicit state the live path reads from cached fields: allowed, because
// the twin's (empty) parameter list is a subsequence of the reference's.
func refNextEventDt(share float64) (float64, bool) {
	return share, true
}

// refScan pairs with the method scan on the same receiver type.
func (e *Engine) refScan(limit int) int {
	if e.top > limit {
		return limit
	}
	return e.top
}

func refMissing() int { // want `reference refMissing has no twin`
	return 0
}

func refDrifted() (int, error) { // want `results .* differ from twin drifted`
	return 0, nil
}

// linearProbe does not start with "ref": only the directive pairs it.
//
//moevet:refpair indexed
func linearProbe(xs []float64, extra float64, k int) int {
	_ = extra
	return indexed(xs, k)
}

// probeBad pairs with indexedBad by directive, but the twin's string
// parameter never appears among the reference's parameters.
//
//moevet:refpair indexedBad
func probeBad(x float64) int { // want `parameters .* are not a subsequence`
	return int(x)
}

// refCheckAll is a pure cross-checker: it compares stored state against a
// fresh scan and deliberately has no live twin.
//
//moevet:allow refpair pure cross-checker comparing stored state to a fresh scan
func refCheckAll() string {
	return ""
}
