// Package engine is a refpair fixture: engine.go holds the live optimised
// paths, engine_ref.go the full-scan references that must keep matching
// signatures.
package engine

// Engine is a stand-in for the indexed simulation engine.
type Engine struct {
	items []float64
	top   int
}

// nextEventDt is the live indexed event pick.
func nextEventDt() (float64, bool) {
	return 1, true
}

// drifted is a live function whose reference twin has grown an extra
// result: the pair is broken.
func drifted() int {
	return 0
}

// indexed is the live twin named by an explicit //moevet:refpair directive.
func indexed(xs []float64, k int) int {
	return len(xs) % (k + 1)
}

// indexedBad is a live function whose directive-paired reference takes
// incompatible parameters.
func indexedBad(name string) int {
	return len(name)
}

// scan is the live method twin of (*Engine).refScan.
func (e *Engine) scan() int {
	return e.top
}
