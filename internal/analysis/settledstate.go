package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// settledFields lists the engine's settle-discipline state, keyed by the
// owning type in package cluster. These fields obey the settle-on-rate-change
// contract (see internal/cluster/eventindex.go): progress fields are exact
// only at their settle point, deadlines must equal what a fresh scan would
// compute, and the dirty/wake bookkeeping carries one-directional heap
// invariants. A write from anywhere outside the engine's touch points can
// silently break bit-for-bit replay, which is why the rule is mechanical.
var settledFields = map[string]map[string]bool{
	"App": {
		"RemainingGB": true,
		"profileLeft": true,
		"settledAt":   true,
		"deadline":    true,
		"touched":     true,
	},
	"ForeignTask": {
		"remaining": true,
		"settledAt": true,
		"deadline":  true,
		"touched":   true,
		"done":      true,
	},
	"Node": {
		"wakeAt": true,
		"dirty":  true,
	},
	"Executor": {
		// gateUntil feeds the rate formula and the wake heap exactly like
		// App.startupUntil; processedGB is integrated at settle points like
		// App.RemainingGB.
		"gateUntil":   true,
		"processedGB": true,
	},
}

// settleTouchPoints are the engine methods allowed to mutate settled fields:
// the settle/touch/deadline machinery itself plus the engine paths that
// legitimately rewrite progress (profiling admission, completion, OOM
// charge-back) — each of which settles first and re-registers deadlines
// after. All of eventindex.go is allowed wholesale; it IS the discipline.
var settleTouchPoints = map[string]bool{
	// eventindex.go machinery (also covered by the file allowance; named so
	// the rule survives a file split).
	"settleApp":          true,
	"settleForeign":      true,
	"touchApp":           true,
	"touchForeign":       true,
	"setAppDeadline":     true,
	"setForeignDeadline": true,
	"refreshDeadlines":   true,
	"resetIndex":         true,
	"wakeExpiredNodes":   true,
	"markDirty":          true,
	// engine.go touch points.
	"applyProfilePlan": true,
	"admitProfiling":   true,
	"recomputeRates":   true,
	"rateNode":         true,
	// engine.go/shard.go sharded-loop halves of rateNode: settleNode is the
	// serial settle/OOM prepass, computeNodeRates the pure rate half (writes
	// Node.wakeAt), rateDirtySharded the epoch fan-out (clears Node.dirty).
	"settleNode":         true,
	"computeNodeRates":   true,
	"rateDirtySharded":   true,
	"reclaimExecutor":    true,
	"completeApp":        true,
	"reregisterDeadline": true,
	"completeForeign":    true,
	// lifecycle.go: a failing node takes its co-runners with it (marks them
	// done/Lost and re-dirties the node).
	"failNode": true,
	// migrate.go: graceful drain migration settles the app, moves the
	// executor (or hands its work to a sibling) and installs the
	// checkpoint/restart gate.
	"migrateFrom":     true,
	"migrateExecutor": true,
	"handoffExecutor": true,
}

// SettledState forbids writes (assignment, op-assignment, increment) to the
// settle-discipline fields of cluster.App, cluster.ForeignTask and
// cluster.Node outside the engine's touch-point methods and eventindex.go.
// This is the rule PRs 4 and 6 state in prose — settled engine state is
// mutated only through touch points — made mechanical. Test code that needs
// to poke a field directly must carry //moevet:allow settledstate <reason>.
var SettledState = &Analyzer{
	Name: "settledstate",
	Doc:  "forbids writes to settle-discipline engine fields outside the engine's touch-point methods",
	Run:  runSettledState,
}

func runSettledState(pass *Pass) {
	for _, f := range pass.Files {
		if filepath.Base(pass.Fset.Position(f.Pos()).Filename) == "eventindex.go" {
			continue
		}
		var fns []string // enclosing function-name stack
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fns = append(fns, n.Name.Name)
				if n.Body != nil {
					ast.Inspect(n.Body, walk)
				}
				fns = fns[:len(fns)-1]
				return false
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkSettledWrite(pass, fns, lhs)
				}
			case *ast.IncDecStmt:
				checkSettledWrite(pass, fns, n.X)
			}
			return true
		}
		ast.Inspect(f, walk)
	}
}

// checkSettledWrite reports the write when lhs is a settled field and no
// enclosing function is a touch point.
func checkSettledWrite(pass *Pass, fns []string, lhs ast.Expr) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || field.Pkg() == nil || field.Pkg().Name() != "cluster" {
		return
	}
	named := namedRecv(selection.Recv())
	if named == nil {
		return
	}
	fields, ok := settledFields[named.Obj().Name()]
	if !ok || !fields[field.Name()] {
		return
	}
	for _, fn := range fns {
		if settleTouchPoints[fn] {
			return
		}
	}
	pass.Reportf(sel.Pos(),
		"write to settle-discipline field %s.%s outside an engine touch point: mutate through the settle/touch machinery (eventindex.go), or annotate //moevet:allow settledstate <reason>",
		named.Obj().Name(), field.Name())
}

// namedRecv unwraps pointers to the named type a selection starts from.
func namedRecv(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}
