package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// This file implements the //moevet:allow annotation: the one sanctioned way
// to suppress a finding. The syntax is
//
//	//moevet:allow <analyzer> <reason>
//
// and the scope is deliberately narrow — exactly the named analyzer, exactly
// the next statement (or declaration) when the comment stands on its own
// line, or exactly the statements on the same line when it trails code. A
// blanket opt-out does not exist: every surviving exception in the tree
// carries a written reason next to the code it excuses, and a malformed
// annotation (unknown analyzer name, missing reason) is itself a finding so
// a typo cannot silently disable a check.

const allowPrefix = "//moevet:allow"

// An allowRegion is the suppression span of one valid annotation.
type allowRegion struct {
	analyzer string
	// file+line identify trailing-comment scope; start/end bound the
	// next-statement scope of a standalone comment.
	file       string
	line       int
	trailing   bool
	start, end token.Pos
}

// allowSet is every valid annotation of one package.
type allowSet struct {
	regions []allowRegion
}

// suppresses reports whether some annotation covers the diagnostic.
func (s *allowSet) suppresses(d Diagnostic) bool {
	for _, r := range s.regions {
		if r.analyzer != d.Analyzer {
			continue
		}
		if r.trailing {
			if d.Position.Filename == r.file && d.Position.Line == r.line {
				return true
			}
			continue
		}
		if d.Pos >= r.start && d.Pos < r.end {
			return true
		}
	}
	return false
}

// collectAllows parses every //moevet:allow comment in the package, returning
// the valid suppression regions and a diagnostic (pseudo-analyzer "moevet")
// for each malformed one. known is the set of annotatable analyzer names.
func collectAllows(pkg *Package, known map[string]bool) (*allowSet, []Diagnostic) {
	set := &allowSet{}
	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      pos,
			Position: pkg.Fset.Position(pos),
			Analyzer: "moevet",
			Message:  msg,
		})
	}
	for _, f := range pkg.Files {
		spans := statementSpans(f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other directive, e.g. //moevet:allowX
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "moevet:allow needs an analyzer name and a reason")
					continue
				}
				name := fields[0]
				if !known[name] {
					report(c.Pos(), fmt.Sprintf("moevet:allow names unknown analyzer %q", name))
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "moevet:allow "+name+" needs a reason")
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				region := allowRegion{analyzer: name, file: pos.Filename, line: pos.Line}
				if onOwnLine(pkg.Fset, f, c) {
					start, end, ok := nextSpan(spans, c.End())
					if !ok {
						report(c.Pos(), "moevet:allow "+name+" is not followed by a statement")
						continue
					}
					region.start, region.end = start, end
				} else {
					region.trailing = true
				}
				set.regions = append(set.regions, region)
			}
		}
	}
	return set, diags
}

// onOwnLine reports whether no statement or declaration starts on the
// comment's line before it (i.e. the comment is not trailing code).
func onOwnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	own := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !own {
			return false
		}
		if _, ok := n.(ast.Stmt); ok {
			if fset.Position(n.Pos()).Line == line && n.Pos() < c.Pos() {
				own = false
				return false
			}
		}
		return n.End() >= c.Pos() // prune subtrees entirely before the comment
	})
	return own
}

// span is one statement's or declaration's position range.
type span struct{ start, end token.Pos }

// statementSpans collects the spans of every statement and top-level
// declaration in source order.
func statementSpans(f *ast.File) []span {
	var spans []span
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, ast.Decl:
			spans = append(spans, span{n.Pos(), n.End()})
		}
		return true
	})
	return spans
}

// nextSpan returns the full extent of the next statement after pos: the
// widest span among those sharing the smallest start position > pos (a
// statement and its first child can start together; the annotation covers
// the outermost).
func nextSpan(spans []span, pos token.Pos) (start, end token.Pos, ok bool) {
	best := span{}
	for _, s := range spans {
		if s.start <= pos {
			continue
		}
		switch {
		case !ok, s.start < best.start:
			best, ok = s, true
		case s.start == best.start && s.end > best.end:
			best = s
		}
	}
	return best.start, best.end, ok
}
