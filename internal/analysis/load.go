package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// This file is moevet's package loader. It cannot use go/packages (the
// module is dependency-free), so it rebuilds the minimal subset: one
// `go list -export -deps -test -json` invocation enumerates every package in
// the build — including per-package export-data files the go command already
// compiled into its build cache — and the loader parses and type-checks only
// the packages under analysis, resolving their imports through the export
// data. That keeps the whole pipeline offline and proportional to the size
// of the repo, not of the standard library.

// A Package is one parsed, type-checked package under analysis.
type Package struct {
	// ImportPath is the go list import path, including the " [pkg.test]"
	// variant suffix for test packages.
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
}

// Load enumerates, parses and type-checks the packages matching patterns,
// with dir as the working directory (the enclosing module decides what the
// patterns mean). Test variants are included; when go list reports both a
// base package and its [pkg.test] variant (a strict superset adding the
// in-package _test.go files), only the variant is analyzed so no file is
// visited twice.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps", "-test",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,ForTest,ImportMap",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var metas []*listPkg
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		meta := p
		metas = append(metas, &meta)
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// Packages superseded by their [pkg.test] variant: an internal-test
	// variant "p [p.test]" carries ForTest == p and its base path == p, and
	// its file list is the base package's plus the in-package _test.go
	// files. (External test packages "p_test [p.test]" also set ForTest but
	// have their own base path, so they never supersede anything.)
	superseded := map[string]bool{}
	for _, p := range metas {
		base, _, _ := strings.Cut(p.ImportPath, " [")
		if p.ForTest != "" && base == p.ForTest {
			superseded[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, p := range metas {
		switch {
		case p.Standard, p.DepOnly:
			continue
		case strings.HasSuffix(p.ImportPath, ".test"):
			// The generated test-binary main package (_testmain.go).
			continue
		case superseded[p.ImportPath]:
			continue
		case len(p.GoFiles) == 0:
			continue
		}
		pkg, err := typecheck(fset, p, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one package, resolving its imports from
// export data. Each package gets its own gc importer because import paths
// resolve through the package's ImportMap (an external test package imports
// the [pkg.test] variant of the package it tests under the plain path).
func typecheck(fset *token.FileSet, meta *listPkg, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range meta.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(meta.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := meta.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
	}
	tpkg, err := conf.Check(meta.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", meta.ImportPath, err)
	}
	return &Package{
		ImportPath: meta.ImportPath,
		Dir:        meta.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
