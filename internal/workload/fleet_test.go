package workload

import (
	"math/rand"
	"testing"
)

func TestUniformFleet(t *testing.T) {
	fleet, err := UniformFleet(7, PaperNode())
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 7 {
		t.Fatalf("fleet size = %d, want 7", len(fleet))
	}
	for i, n := range fleet {
		if n != PaperNode() {
			t.Errorf("node %d = %+v, want the paper node", i, n)
		}
	}
	if _, err := UniformFleet(0, PaperNode()); err == nil {
		t.Error("zero-size fleet accepted")
	}
}

func TestBimodalFleetSeededAndMixed(t *testing.T) {
	a, err := BimodalFleet(100, BigNode(), LittleNode(), 0.5, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BimodalFleet(100, BigNode(), LittleNode(), 0.5, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	var bigs int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d differs across identical seeds", i)
		}
		if a[i] == BigNode() {
			bigs++
		} else if a[i] != LittleNode() {
			t.Fatalf("node %d is neither class: %+v", i, a[i])
		}
	}
	if bigs < 30 || bigs > 70 {
		t.Errorf("bigs = %d of 100 at bigFrac 0.5, badly unbalanced", bigs)
	}
	if _, err := BimodalFleet(10, BigNode(), LittleNode(), 1.5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("bigFrac > 1 accepted")
	}
}

func TestStragglerFleetTail(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	fleet, err := StragglerFleet(200, PaperNode(), 0.25, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	var stragglers int
	for i, n := range fleet {
		if n.SpeedFactor > 1 || n.SpeedFactor < 0.4 {
			t.Errorf("node %d speed %v outside [0.4, 1]", i, n.SpeedFactor)
		}
		if n.SpeedFactor < 1 {
			stragglers++
		}
		base := PaperNode()
		base.SpeedFactor = n.SpeedFactor
		if n != base {
			t.Errorf("node %d changed non-speed fields: %+v", i, n)
		}
	}
	if stragglers < 25 || stragglers > 75 {
		t.Errorf("stragglers = %d of 200 at frac 0.25", stragglers)
	}
	if _, err := StragglerFleet(10, PaperNode(), 0.25, 1.5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("floor speed above base accepted")
	}
}

// TestAssignRacks pins the contiguous-block racking and its validation.
func TestAssignRacks(t *testing.T) {
	fleet, err := UniformFleet(10, PaperNode())
	if err != nil {
		t.Fatal(err)
	}
	if fleet, err = AssignRacks(fleet, 4, 2); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	zones := map[string]string{}
	prev := ""
	for i, n := range fleet {
		if n.Rack == "" || n.Zone == "" {
			t.Fatalf("node %d unracked: %+v", i, n)
		}
		counts[n.Rack]++
		if z, ok := zones[n.Rack]; ok && z != n.Zone {
			t.Errorf("rack %s spans zones %s and %s", n.Rack, z, n.Zone)
		}
		zones[n.Rack] = n.Zone
		// Contiguous blocks: a rack label never reappears after it ends.
		if n.Rack != prev && counts[n.Rack] > 1 {
			t.Errorf("rack %s is not contiguous", n.Rack)
		}
		prev = n.Rack
	}
	if len(counts) != 4 {
		t.Fatalf("%d racks, want 4", len(counts))
	}
	zoneSet := map[string]bool{}
	//moevet:allow maporder order-independent set collection
	for _, z := range zones {
		zoneSet[z] = true
	}
	if len(zoneSet) != 2 {
		t.Errorf("%d zones, want 2", len(zoneSet))
	}
	for _, bad := range [][2]int{{0, 1}, {11, 1}, {4, 0}, {2, 3}} {
		if _, err := AssignRacks(fleet, bad[0], bad[1]); err == nil {
			t.Errorf("AssignRacks(%d racks, %d zones) accepted", bad[0], bad[1])
		}
	}
	if _, err := AssignRacks(nil, 1, 1); err == nil {
		t.Error("empty fleet accepted")
	}
}
