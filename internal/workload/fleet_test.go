package workload

import (
	"math/rand"
	"testing"
)

func TestUniformFleet(t *testing.T) {
	fleet, err := UniformFleet(7, PaperNode())
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 7 {
		t.Fatalf("fleet size = %d, want 7", len(fleet))
	}
	for i, n := range fleet {
		if n != PaperNode() {
			t.Errorf("node %d = %+v, want the paper node", i, n)
		}
	}
	if _, err := UniformFleet(0, PaperNode()); err == nil {
		t.Error("zero-size fleet accepted")
	}
}

func TestBimodalFleetSeededAndMixed(t *testing.T) {
	a, err := BimodalFleet(100, BigNode(), LittleNode(), 0.5, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BimodalFleet(100, BigNode(), LittleNode(), 0.5, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	var bigs int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d differs across identical seeds", i)
		}
		if a[i] == BigNode() {
			bigs++
		} else if a[i] != LittleNode() {
			t.Fatalf("node %d is neither class: %+v", i, a[i])
		}
	}
	if bigs < 30 || bigs > 70 {
		t.Errorf("bigs = %d of 100 at bigFrac 0.5, badly unbalanced", bigs)
	}
	if _, err := BimodalFleet(10, BigNode(), LittleNode(), 1.5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("bigFrac > 1 accepted")
	}
}

func TestStragglerFleetTail(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	fleet, err := StragglerFleet(200, PaperNode(), 0.25, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	var stragglers int
	for i, n := range fleet {
		if n.SpeedFactor > 1 || n.SpeedFactor < 0.4 {
			t.Errorf("node %d speed %v outside [0.4, 1]", i, n.SpeedFactor)
		}
		if n.SpeedFactor < 1 {
			stragglers++
		}
		base := PaperNode()
		base.SpeedFactor = n.SpeedFactor
		if n != base {
			t.Errorf("node %d changed non-speed fields: %+v", i, n)
		}
	}
	if stragglers < 25 || stragglers > 75 {
		t.Errorf("stragglers = %d of 200 at frac 0.25", stragglers)
	}
	if _, err := StragglerFleet(10, PaperNode(), 0.25, 1.5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("floor speed above base accepted")
	}
}
