package workload

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"moespark/internal/memfunc"
)

func TestCatalogHas44Benchmarks(t *testing.T) {
	cat := Catalog()
	if len(cat) != 44 {
		t.Fatalf("catalogue has %d benchmarks, want 44", len(cat))
	}
	counts := map[Suite]int{}
	names := map[string]bool{}
	for _, b := range cat {
		counts[b.Suite]++
		fn := b.FullName()
		if names[fn] {
			t.Errorf("duplicate benchmark %q", fn)
		}
		names[fn] = true
		if !b.Truth.Family.Valid() {
			t.Errorf("%s has invalid memory family", fn)
		}
		if b.CPULoad <= 0 || b.CPULoad >= 1 {
			t.Errorf("%s CPULoad = %v, want (0,1)", fn, b.CPULoad)
		}
		if b.ScanRate <= 0 {
			t.Errorf("%s ScanRate = %v", fn, b.ScanRate)
		}
	}
	if counts[HiBench] != 9 || counts[BigDataBench] != 7 {
		t.Errorf("training suites: HB=%d BDB=%d, want 9/7", counts[HiBench], counts[BigDataBench])
	}
	if counts[SparkPerf] != 18 || counts[SparkBench] != 10 {
		t.Errorf("unseen suites: SP=%d SB=%d, want 18/10", counts[SparkPerf], counts[SparkBench])
	}
}

func TestTrainingSetIs16(t *testing.T) {
	ts := TrainingSet()
	if len(ts) != 16 {
		t.Fatalf("training set has %d benchmarks, want 16", len(ts))
	}
	for _, b := range ts {
		if b.Suite != HiBench && b.Suite != BigDataBench {
			t.Errorf("%s should not be in the training set", b.FullName())
		}
	}
}

func TestPaperCoefficients(t *testing.T) {
	byName := ByFullName()
	sort := byName["HB.Sort"]
	if sort.Truth.Family != memfunc.Exponential || sort.Truth.M != 5.768 || sort.Truth.B != 4.479 {
		t.Errorf("HB.Sort curve %v does not match the paper's Figure 3", sort.Truth)
	}
	pr := byName["HB.PageRank"]
	if pr.Truth.Family != memfunc.NapierianLog || pr.Truth.M != 16.333 || pr.Truth.B != 1.79 {
		t.Errorf("HB.PageRank curve %v does not match the paper's Figure 3", pr.Truth)
	}
}

func TestCPULoadDistributionMatchesFig13(t *testing.T) {
	// Figure 13: CPU load mostly under 40 %, none above 60 %.
	var under40, total int
	for _, b := range Catalog() {
		total++
		if b.CPULoad < 0.4 {
			under40++
		}
		if b.CPULoad >= 0.6 {
			t.Errorf("%s CPU load %v >= 0.6, outside Figure 13's range", b.FullName(), b.CPULoad)
		}
	}
	if frac := float64(under40) / float64(total); frac < 0.6 {
		t.Errorf("only %.0f%% of benchmarks under 40%% CPU, want most", frac*100)
	}
}

func TestFootprintsFitNodeAt1TB(t *testing.T) {
	// Even the hungriest benchmark must fit a 64GB node when its 1TB input
	// is spread over its executor fleet (otherwise isolated execution would
	// be infeasible, contradicting the paper's setup).
	for _, b := range Catalog() {
		fp := b.Footprint(1000.0 / 16) // 1TB over 16 executors
		if fp <= 0 || fp > 60 {
			t.Errorf("%s footprint(62.5GB) = %v, want (0, 60]", b.FullName(), fp)
		}
	}
}

func TestFind(t *testing.T) {
	b, err := Find("HB.Sort")
	if err != nil || b.Name != "Sort" {
		t.Fatalf("Find(HB.Sort) = %v, %v", b, err)
	}
	if _, err := Find("XX.Nope"); err == nil {
		t.Fatal("Find of unknown benchmark must error")
	}
}

func TestSignatureDeterministicAndClustered(t *testing.T) {
	byName := ByFullName()
	a1 := byName["HB.Sort"].Signature()
	a2 := byName["HB.Sort"].Signature()
	if a1 != a2 {
		t.Error("signature must be deterministic")
	}
	// Same family -> close driven features; different family -> far.
	sortSig := byName["HB.Sort"].Signature()      // exponential
	grepSig := byName["BDB.Grep"].Signature()     // exponential
	prSig := byName["HB.PageRank"].Signature()    // log
	sameDist := math.Abs(sortSig[0] - grepSig[0]) // L1_TCM
	diffDist := math.Abs(sortSig[0] - prSig[0])
	if sameDist >= diffDist {
		t.Errorf("driven feature distances: same-family %v >= cross-family %v", sameDist, diffDist)
	}
}

// TestSignatureMemoBitIdentical pins the signature memo's exactness: the
// memoised vector is bit-identical to a from-scratch derivation, a mutated
// identity field (CounterSkew, the drift axis) routes to a fresh entry
// instead of serving the stale one, and concurrent lookups are race-safe
// (this test runs under -race in CI).
func TestSignatureMemoBitIdentical(t *testing.T) {
	b, _ := Find("HB.Sort")
	if got, want := b.Signature(), b.computeSignature(); got != want {
		t.Fatalf("memoised signature differs from recomputation:\n got %v\nwant %v", got, want)
	}
	drifted := *b
	drifted.CounterSkew = 0.2
	if drifted.Signature() == b.Signature() {
		t.Fatal("drifted copy served the undrifted signature: memo key must include CounterSkew")
	}
	if got, want := drifted.Signature(), drifted.computeSignature(); got != want {
		t.Fatalf("drifted memo entry differs from recomputation:\n got %v\nwant %v", got, want)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if b.Signature() != drifted.Signature() {
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestCountersAddNoise(t *testing.T) {
	b, _ := Find("HB.Sort")
	rng := rand.New(rand.NewSource(1))
	c1 := b.Counters(rng)
	c2 := b.Counters(rng)
	if c1 == c2 {
		t.Error("two counter collections should differ by run noise")
	}
	sig := b.Signature()
	for i := range c1 {
		if math.Abs(c1[i]-sig[i]) > 0.15 {
			t.Errorf("counter %d deviates too much: %v vs %v", i, c1[i], sig[i])
		}
	}
}

func TestMeasuredFootprintNoiseBounded(t *testing.T) {
	b, _ := Find("HB.PageRank")
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		x := 10.0
		y := b.MeasuredFootprint(x, rng)
		truth := b.Footprint(x)
		if math.Abs(y-truth)/truth > 0.10 {
			t.Fatalf("measurement noise too large: %v vs %v", y, truth)
		}
	}
}

func TestCurvePointsSkipNonPositive(t *testing.T) {
	b, _ := Find("HB.PageRank") // log curve is 0 at tiny x
	rng := rand.New(rand.NewSource(3))
	pts := b.CurvePoints([]float64{1e-9, 1, 10}, rng)
	for _, p := range pts {
		if p.Y <= 0 {
			t.Errorf("curve point with non-positive footprint: %+v", p)
		}
	}
	if len(pts) != 2 {
		t.Errorf("got %d points, want 2 (tiny x dropped)", len(pts))
	}
}

func TestEquivalentNames(t *testing.T) {
	b, _ := Find("HB.Sort")
	eq := EquivalentNames(b)
	want := map[string]bool{"BDB.Sort": true, "SP.Sort": true}
	if len(eq) != 2 || !want[eq[0]] || !want[eq[1]] {
		t.Errorf("EquivalentNames(HB.Sort) = %v", eq)
	}
	solo, _ := Find("SB.Hive")
	if eq := EquivalentNames(solo); eq != nil {
		t.Errorf("SB.Hive equivalents = %v, want none", eq)
	}
}

func TestScenariosMatchTable3(t *testing.T) {
	want := map[string]int{
		"L1": 2, "L2": 6, "L3": 7, "L4": 9, "L5": 11,
		"L6": 13, "L7": 19, "L8": 23, "L9": 26, "L10": 30,
	}
	if len(Scenarios) != len(want) {
		t.Fatalf("got %d scenarios, want %d", len(Scenarios), len(want))
	}
	for _, s := range Scenarios {
		if want[s.Label] != s.Apps {
			t.Errorf("%s has %d apps, want %d", s.Label, s.Apps, want[s.Label])
		}
	}
	if _, err := ScenarioByLabel("L10"); err != nil {
		t.Error(err)
	}
	if _, err := ScenarioByLabel("L99"); err == nil {
		t.Error("unknown label must error")
	}
}

func TestRandomMixProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s, _ := ScenarioByLabel("L8")
	jobs := RandomMix(s, rng)
	if len(jobs) != s.Apps {
		t.Fatalf("mix has %d jobs, want %d", len(jobs), s.Apps)
	}
	validSize := map[float64]bool{0.3: true, 30: true, 1000: true}
	seen := map[string]bool{}
	for _, j := range jobs {
		if !validSize[j.InputGB] {
			t.Errorf("job %v has unexpected size", j)
		}
		seen[j.Bench.FullName()] = true
	}
	// 23 draws from a 44-benchmark permutation must be 23 distinct programs.
	if len(seen) != s.Apps {
		t.Errorf("mix has %d distinct benchmarks, want %d", len(seen), s.Apps)
	}
}

func TestRandomMixCoversCatalogueOverDraws(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, _ := ScenarioByLabel("L5")
	seen := map[string]bool{}
	for i := 0; i < 40; i++ {
		for _, j := range RandomMix(s, rng) {
			seen[j.Bench.FullName()] = true
		}
	}
	if len(seen) != 44 {
		t.Errorf("40 mixes cover %d benchmarks, want all 44", len(seen))
	}
}

func TestTable4Mix(t *testing.T) {
	jobs, err := Table4Mix()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 30 {
		t.Fatalf("Table 4 mix has %d jobs, want 30", len(jobs))
	}
	if jobs[0].String() != "BDB.Wordcount 30GB" {
		t.Errorf("first job = %q", jobs[0].String())
	}
	if jobs[20].String() != "SP.CoreRDD 300MB" {
		t.Errorf("job 21 = %q, want SP.CoreRDD 300MB", jobs[20].String())
	}
	if jobs[29].String() != "HB.Kmeans 1TB" {
		t.Errorf("last job = %q", jobs[29].String())
	}
}

func TestParsecSuite(t *testing.T) {
	ps := ParsecSuite()
	if len(ps) != 12 {
		t.Fatalf("PARSEC suite has %d entries, want 12", len(ps))
	}
	for _, p := range ps {
		if p.CPULoad < 0.7 || p.CPULoad > 1 {
			t.Errorf("%s CPU load %v not computation-intensive", p.Name, p.CPULoad)
		}
		if p.MemoryGB <= 0 || p.RuntimeSec <= 0 {
			t.Errorf("%s has non-positive resources", p.Name)
		}
	}
}

func TestBestFitRecoversCatalogueFamilies(t *testing.T) {
	// The offline training procedure must label every benchmark with its
	// true family from noisy sweep measurements.
	rng := rand.New(rand.NewSource(6))
	for _, b := range Catalog() {
		pts := b.CurvePoints(TrainingSweep, rng)
		fit, err := memfunc.BestFit(pts)
		if err != nil {
			t.Fatalf("%s: BestFit: %v", b.FullName(), err)
		}
		if fit.Func.Family != b.Truth.Family {
			t.Errorf("%s labelled %v, truth %v", b.FullName(), fit.Func.Family, b.Truth.Family)
		}
	}
}
