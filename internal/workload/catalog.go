package workload

import (
	"fmt"

	"moespark/internal/memfunc"
)

// The catalogue holds the 44 benchmarks of the paper's evaluation (Section
// 5.1): 9 from HiBench, 7 from BigDataBench (these 16 form the training
// set), 18 from Spark-Perf and 10 from Spark-Bench (unseen suites). Memory
// curves follow the family assignments visible in Figures 16-18; HB.Sort and
// HB.PageRank use the exact coefficients the paper reports in Figure 3
// (m=5.768, b=4.479 and m=16.333, b=1.79). CPU loads realise the Figure 13
// histogram (most programs between 10 % and 40 %).

func lin(m, b float64) memfunc.Func {
	return memfunc.Func{Family: memfunc.LinearPower, M: m, B: b}
}
func exp(m, b float64) memfunc.Func {
	return memfunc.Func{Family: memfunc.Exponential, M: m, B: b}
}
func nlog(m, b float64) memfunc.Func {
	return memfunc.Func{Family: memfunc.NapierianLog, M: m, B: b}
}

// Catalog returns the full 44-benchmark catalogue. The result is freshly
// allocated: callers may mutate it freely.
func Catalog() []*Benchmark {
	return []*Benchmark{
		// --- HiBench (9) ---
		{Suite: HiBench, Name: "Sort", Domain: "micro", Truth: exp(5.768, 4.479), CPULoad: 0.105, ScanRate: 0.14},
		{Suite: HiBench, Name: "WordCount", Domain: "micro", Truth: exp(5.0, 3.8), CPULoad: 0.165, ScanRate: 0.13},
		{Suite: HiBench, Name: "TeraSort", Domain: "micro", Truth: exp(5.5, 4.1), CPULoad: 0.203, ScanRate: 0.11},
		{Suite: HiBench, Name: "Scan", Domain: "sql", Truth: exp(4.2, 5.0), CPULoad: 0.09, ScanRate: 0.16},
		{Suite: HiBench, Name: "Aggregation", Domain: "sql", Truth: exp(4.6, 4.4), CPULoad: 0.345, ScanRate: 0.12},
		{Suite: HiBench, Name: "Join", Domain: "sql", Truth: exp(5.9, 3.5), CPULoad: 0.247, ScanRate: 0.10},
		{Suite: HiBench, Name: "PageRank", Domain: "graph", Truth: nlog(16.333, 1.79), CPULoad: 0.285, ScanRate: 0.055},
		{Suite: HiBench, Name: "Kmeans", Domain: "ml", Truth: nlog(16.5, 1.6), CPULoad: 0.315, ScanRate: 0.06},
		{Suite: HiBench, Name: "Bayes", Domain: "ml", Truth: nlog(14.8, 1.5), CPULoad: 0.232, ScanRate: 0.065},

		// --- BigDataBench (7) ---
		{Suite: BigDataBench, Name: "Sort", Domain: "micro", Truth: lin(1.5, 0.568), CPULoad: 0.12, ScanRate: 0.13},
		{Suite: BigDataBench, Name: "Wordcount", Domain: "micro", Truth: exp(4.8, 3.6), CPULoad: 0.143, ScanRate: 0.14},
		{Suite: BigDataBench, Name: "Grep", Domain: "micro", Truth: exp(4.4, 4.8), CPULoad: 0.068, ScanRate: 0.16},
		{Suite: BigDataBench, Name: "PageRank", Domain: "graph", Truth: nlog(20.2, 1.85), CPULoad: 0.33, ScanRate: 0.05},
		{Suite: BigDataBench, Name: "Kmeans", Domain: "ml", Truth: nlog(17.6, 1.7), CPULoad: 0.27, ScanRate: 0.06},
		{Suite: BigDataBench, Name: "Con.Com", Domain: "graph", Truth: nlog(15.9, 1.55), CPULoad: 0.217, ScanRate: 0.055},
		{Suite: BigDataBench, Name: "NaivesBayes", Domain: "ml", Truth: lin(1.5, 0.4), CPULoad: 0.18, ScanRate: 0.08},

		// --- Spark-Perf (18) ---
		{Suite: SparkPerf, Name: "Kmeans", Domain: "ml", Truth: nlog(17.0, 1.65), CPULoad: 0.307, ScanRate: 0.06},
		{Suite: SparkPerf, Name: "glm-classification", Domain: "ml", Truth: lin(1.5, 0.606), CPULoad: 0.36, ScanRate: 0.07},
		{Suite: SparkPerf, Name: "glm-regression", Domain: "ml", Truth: lin(1.5, 0.546), CPULoad: 0.338, ScanRate: 0.07},
		{Suite: SparkPerf, Name: "Pca", Domain: "ml", Truth: lin(1.5, 0.532), CPULoad: 0.39, ScanRate: 0.065},
		{Suite: SparkPerf, Name: "DecisionTree", Domain: "ml", Truth: lin(1.5, 0.496), CPULoad: 0.255, ScanRate: 0.075},
		{Suite: SparkPerf, Name: "Spearman", Domain: "ml", Truth: nlog(14.5, 1.4), CPULoad: 0.195, ScanRate: 0.07},
		{Suite: SparkPerf, Name: "NaiveBayes", Domain: "ml", Truth: lin(1.5, 0.386), CPULoad: 0.173, ScanRate: 0.08},
		{Suite: SparkPerf, Name: "CoreRDD", Domain: "micro", Truth: exp(4.0, 4.0), CPULoad: 0.083, ScanRate: 0.15},
		{Suite: SparkPerf, Name: "Gmm", Domain: "ml", Truth: lin(1.5, 0.562), CPULoad: 0.367, ScanRate: 0.06},
		{Suite: SparkPerf, Name: "Pearson", Domain: "ml", Truth: nlog(13.8, 1.35), CPULoad: 0.158, ScanRate: 0.075},
		{Suite: SparkPerf, Name: "Chi-sq", Domain: "ml", Truth: exp(4.9, 3.3), CPULoad: 0.128, ScanRate: 0.10},
		{Suite: SparkPerf, Name: "Sum.Statis", Domain: "ml", Truth: exp(4.3, 3.9), CPULoad: 0.098, ScanRate: 0.12},
		{Suite: SparkPerf, Name: "B.MatrixMult", Domain: "ml", Truth: lin(1.5, 0.786), CPULoad: 0.42, ScanRate: 0.05},
		{Suite: SparkPerf, Name: "Sort", Domain: "micro", Truth: exp(5.3, 4.2), CPULoad: 0.112, ScanRate: 0.13},
		{Suite: SparkPerf, Name: "Count", Domain: "micro", Truth: exp(3.8, 5.2), CPULoad: 0.06, ScanRate: 0.17},
		{Suite: SparkPerf, Name: "Filter", Domain: "micro", Truth: exp(4.1, 4.6), CPULoad: 0.075, ScanRate: 0.16},
		{Suite: SparkPerf, Name: "Aggregate", Domain: "micro", Truth: exp(4.7, 3.7), CPULoad: 0.135, ScanRate: 0.12},
		{Suite: SparkPerf, Name: "ALS", Domain: "ml", Truth: lin(1.5, 0.537), CPULoad: 0.292, ScanRate: 0.065},

		// --- Spark-Bench (10) ---
		{Suite: SparkBench, Name: "Hive", Domain: "sql", Truth: exp(5.6, 3.4), CPULoad: 0.188, ScanRate: 0.11},
		{Suite: SparkBench, Name: "MatrixFact", Domain: "ml", Truth: lin(1.5, 0.654), CPULoad: 0.383, ScanRate: 0.055},
		{Suite: SparkBench, Name: "SVD++", Domain: "graph", Truth: lin(1.5, 0.639), CPULoad: 0.352, ScanRate: 0.05},
		{Suite: SparkBench, Name: "LogRegre", Domain: "ml", Truth: lin(1.5, 0.532), CPULoad: 0.277, ScanRate: 0.07},
		{Suite: SparkBench, Name: "RDDRelation", Domain: "sql", Truth: exp(5.1, 3.9), CPULoad: 0.15, ScanRate: 0.12},
		{Suite: SparkBench, Name: "PageRank", Domain: "graph", Truth: nlog(19.1, 1.8), CPULoad: 0.3, ScanRate: 0.05},
		{Suite: SparkBench, Name: "SVM", Domain: "ml", Truth: lin(1.5, 0.561), CPULoad: 0.323, ScanRate: 0.065},
		{Suite: SparkBench, Name: "TriangleCount", Domain: "graph", Truth: nlog(16.2, 1.6), CPULoad: 0.262, ScanRate: 0.055},
		{Suite: SparkBench, Name: "ShortestPaths", Domain: "graph", Truth: nlog(15.4, 1.5), CPULoad: 0.21, ScanRate: 0.06},
		{Suite: SparkBench, Name: "PregelOp", Domain: "graph", Truth: nlog(14.9, 1.45), CPULoad: 0.24, ScanRate: 0.06},
	}
}

// TrainingSet returns the 16 HiBench + BigDataBench benchmarks the paper
// trains its memory functions and expert selector on.
func TrainingSet() []*Benchmark {
	var out []*Benchmark
	for _, b := range Catalog() {
		if b.Suite == HiBench || b.Suite == BigDataBench {
			out = append(out, b)
		}
	}
	return out
}

// ByFullName returns the catalogue keyed by suite-qualified name.
func ByFullName() map[string]*Benchmark {
	m := make(map[string]*Benchmark, 44)
	for _, b := range Catalog() {
		m[b.FullName()] = b
	}
	return m
}

// Find returns the benchmark with the given suite-qualified name.
func Find(fullName string) (*Benchmark, error) {
	b, ok := ByFullName()[fullName]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", fullName)
	}
	return b, nil
}

// EquivalentNames maps a benchmark to same-algorithm implementations in
// other suites. The paper excludes these from training when testing (e.g.
// when testing HB.Sort, BDB.Sort is excluded too).
func EquivalentNames(b *Benchmark) []string {
	groups := [][]string{
		{"HB.Sort", "BDB.Sort", "SP.Sort"},
		{"HB.WordCount", "BDB.Wordcount"},
		{"HB.PageRank", "BDB.PageRank", "SB.PageRank"},
		{"HB.Kmeans", "BDB.Kmeans", "SP.Kmeans"},
		{"HB.Bayes", "BDB.NaivesBayes", "SP.NaiveBayes"},
	}
	full := b.FullName()
	for _, g := range groups {
		for _, n := range g {
			if n == full {
				out := make([]string, 0, len(g)-1)
				for _, m := range g {
					if m != full {
						out = append(out, m)
					}
				}
				return out
			}
		}
	}
	return nil
}
