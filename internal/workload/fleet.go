package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// NodeClass is the hardware description of one node class in a simulated
// fleet. It mirrors the cluster package's per-node spec (the cluster package
// converts, since it already imports workload) so fleet generation stays next
// to the other seeded generators.
type NodeClass struct {
	// RAMGB is physical memory.
	RAMGB float64
	// Cores is the hardware-thread count.
	Cores int
	// SpeedFactor scales processing rates relative to the paper's reference
	// machine.
	SpeedFactor float64
	// SwapGB is swap space.
	SwapGB float64
	// OSReserveGB is memory unavailable to executors.
	OSReserveGB float64
	// Rack is the node's failure domain label (empty: no topology). Fleet
	// generators leave it empty; AssignRacks stamps contiguous rack blocks
	// over a generated fleet, the way machines are racked in delivery order.
	Rack string
	// Zone is the coarser failure domain the rack belongs to.
	Zone string
}

// PaperNode is the paper's testbed machine: 64 GB RAM, 16 hardware threads,
// 16 GB swap, 4 GB OS reserve.
func PaperNode() NodeClass {
	return NodeClass{RAMGB: 64, Cores: 16, SpeedFactor: 1, SwapGB: 16, OSReserveGB: 4}
}

// BigNode is a memory-rich, faster machine for bimodal fleets.
func BigNode() NodeClass {
	return NodeClass{RAMGB: 128, Cores: 32, SpeedFactor: 1.25, SwapGB: 32, OSReserveGB: 6}
}

// LittleNode is a small, slower machine for bimodal fleets.
func LittleNode() NodeClass {
	return NodeClass{RAMGB: 32, Cores: 8, SpeedFactor: 0.75, SwapGB: 8, OSReserveGB: 3}
}

// UniformFleet returns n identical nodes of the given class (the paper's
// homogeneous testbed when class is PaperNode).
func UniformFleet(n int, class NodeClass) ([]NodeClass, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need a positive fleet size, got %d", n)
	}
	fleet := make([]NodeClass, n)
	for i := range fleet {
		fleet[i] = class
	}
	return fleet, nil
}

// BimodalFleet returns an n-node big/little mix: each node is independently
// the big class with probability bigFrac, else the little class. The same
// seed yields the identical fleet.
func BimodalFleet(n int, big, little NodeClass, bigFrac float64, rng *rand.Rand) ([]NodeClass, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need a positive fleet size, got %d", n)
	}
	if bigFrac < 0 || bigFrac > 1 || math.IsNaN(bigFrac) {
		return nil, fmt.Errorf("workload: big-node fraction %v outside [0,1]", bigFrac)
	}
	fleet := make([]NodeClass, n)
	for i := range fleet {
		if rng.Float64() < bigFrac {
			fleet[i] = big
		} else {
			fleet[i] = little
		}
	}
	return fleet, nil
}

// AssignRacks stamps rack and zone labels over a fleet in place (and returns
// it): the fleet is cut into racks contiguous blocks — machines are racked in
// delivery order, so generated node classes stay clustered the way real
// heterogeneous fleets are — and the racks are spread round-robin over zones
// many zones. Rack r gets label "rack-r" and zone "zone-(r mod zones)".
func AssignRacks(fleet []NodeClass, racks, zones int) ([]NodeClass, error) {
	if len(fleet) == 0 {
		return nil, fmt.Errorf("workload: cannot rack an empty fleet")
	}
	if racks <= 0 || racks > len(fleet) {
		return nil, fmt.Errorf("workload: rack count %d outside [1, %d]", racks, len(fleet))
	}
	if zones <= 0 || zones > racks {
		return nil, fmt.Errorf("workload: zone count %d outside [1, %d]", zones, racks)
	}
	for i := range fleet {
		r := i * racks / len(fleet)
		fleet[i].Rack = fmt.Sprintf("rack-%d", r)
		fleet[i].Zone = fmt.Sprintf("zone-%d", r%zones)
	}
	return fleet, nil
}

// StragglerFleet returns n nodes of the base class where a stragglerFrac
// fraction carries a long-tail speed factor: stragglers draw their speed from
// a power-law-shaped tail on [minSpeed, base speed), so most stragglers are
// mildly slow and a few are crippling — the classic straggler profile. The
// same seed yields the identical fleet.
func StragglerFleet(n int, base NodeClass, stragglerFrac, minSpeed float64, rng *rand.Rand) ([]NodeClass, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need a positive fleet size, got %d", n)
	}
	if stragglerFrac < 0 || stragglerFrac > 1 || math.IsNaN(stragglerFrac) {
		return nil, fmt.Errorf("workload: straggler fraction %v outside [0,1]", stragglerFrac)
	}
	if minSpeed <= 0 || minSpeed >= base.SpeedFactor {
		return nil, fmt.Errorf("workload: straggler floor speed %v must lie in (0, %v)", minSpeed, base.SpeedFactor)
	}
	fleet := make([]NodeClass, n)
	for i := range fleet {
		fleet[i] = base
		if rng.Float64() < stragglerFrac {
			// u^3 concentrates draws near 0, putting most stragglers close to
			// the base speed and a thin tail near the floor.
			tail := math.Pow(rng.Float64(), 3)
			fleet[i].SpeedFactor = base.SpeedFactor - tail*(base.SpeedFactor-minSpeed)
		}
	}
	return fleet, nil
}
