// Package workload models the paper's 44 Spark benchmarks (HiBench,
// BigDataBench, Spark-Perf, Spark-Bench), the PARSEC co-runners of Figure 15,
// and the task-mix scenarios of Tables 3 and 4.
//
// The real benchmarks are unavailable without a Spark deployment, so each is
// replaced by a synthetic model with (a) a ground-truth memory curve from one
// of the paper's three expert families, (b) an isolation-mode CPU load drawn
// from the paper's Figure 13 distribution, (c) a per-executor processing
// rate, and (d) a deterministic 22-feature runtime signature whose cluster
// structure mirrors Figure 16 (programs sharing a memory-function family have
// similar cache behaviour). The predictor and scheduler only ever observe
// profiling measurements and feature vectors, so every code path of the
// paper's system is exercised end to end.
package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"

	"moespark/internal/features"
	"moespark/internal/memfunc"
)

// Suite identifies a benchmark suite.
type Suite string

// The four suites used in the paper's evaluation.
const (
	HiBench      Suite = "HB"
	BigDataBench Suite = "BDB"
	SparkPerf    Suite = "SP"
	SparkBench   Suite = "SB"
)

// Benchmark is the synthetic model of one Spark application.
type Benchmark struct {
	Suite Suite
	Name  string
	// Domain is a coarse application domain ("micro", "sql", "ml", "graph",
	// "web"), used only for reporting.
	Domain string
	// Truth is the ground-truth memory curve: executor footprint (GB) as a
	// function of the input size (GB) the executor is responsible for.
	Truth memfunc.Func
	// CPULoad is the average CPU load (fraction of one node's capacity) the
	// application exhibits in isolation (Figure 13).
	CPULoad float64
	// ScanRate is the processing rate of one executor in GB/s when its CPU
	// demand is fully satisfied.
	ScanRate float64
	// CounterSkew shifts the family-driven cache counters of Signature by
	// this amount, modelling runtime-behaviour drift (a framework upgrade, a
	// data-format change, working sets outgrowing caches) that moves a
	// program's observed counters toward another family's cluster without
	// changing its true memory curve. Zero — the catalogue default — is the
	// undrifted signature; drift generators run skewed copies.
	CounterSkew float64
}

// FullName returns the suite-qualified name, e.g. "HB.Sort".
func (b *Benchmark) FullName() string { return fmt.Sprintf("%s.%s", b.Suite, b.Name) }

// Footprint returns the true executor memory footprint for x GB of input,
// clamping out-of-domain inputs to zero.
func (b *Benchmark) Footprint(x float64) float64 {
	y, err := b.Truth.Eval(x)
	if err != nil {
		return 0
	}
	return y
}

// MeasuredFootprint returns the footprint as observed by a profiling run:
// the ground truth perturbed by measurement noise (JVM variance, sampling).
func (b *Benchmark) MeasuredFootprint(x float64, rng *rand.Rand) float64 {
	const measurementNoise = 0.008
	y := b.Footprint(x)
	if y <= 0 {
		return y
	}
	return y * (1 + rng.NormFloat64()*measurementNoise)
}

// seed derives a stable per-benchmark seed from the full name.
func (b *Benchmark) seed() int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(b.FullName()))
	return int64(h.Sum64() & math.MaxInt64)
}

// familyLevel maps the benchmark's memory-function family to the level of
// its cache-behaviour signature. Programs in the same family cluster tightly
// (Figure 16); the levels are well separated so the clusters are, too.
func familyLevel(f memfunc.Family) float64 {
	switch f {
	case memfunc.LinearPower:
		return 0.15
	case memfunc.Exponential:
		return 0.50
	case memfunc.NapierianLog:
		return 0.85
	default:
		return 0
	}
}

// drivenFeatures are the counters whose values track the memory-function
// family; the paper finds exactly these cache/memory features dominate the
// PCA space (Figure 4b).
var drivenFeatures = []int{
	features.L1TCM, features.L1DCM, features.VCache, features.L1STM,
	features.BO, features.L2TCM, features.L3TCM, features.CS,
}

// sigKey is the complete identity Signature is a pure function of: the
// suite-qualified name (which seeds the per-benchmark offsets), the
// memory-function family (which sets the driven-counter level), the drift
// skew and the CPU load. Two Benchmark values agreeing on these fields have
// bit-identical signatures, so the memo below may serve either.
type sigKey struct {
	suite  Suite
	name   string
	family memfunc.Family
	skew   float64
	cpu    float64
}

// sigMemo caches computed signatures by benchmark identity. Deriving a
// signature seeds two fresh PRNGs per call, which dominated the per-arrival
// admission profile on 100k-app streams (~48 % of the run); repeated
// arrivals of a catalogue benchmark now pay one map lookup instead. The memo
// is safe under the concurrent experiment runner (sync.Map) and cannot go
// stale: the key carries every field the computation reads, so a drifted
// copy (CounterSkew) or a renamed benchmark simply occupies a new entry, and
// the entry count stays bounded by the distinct benchmark identities in the
// process (the 44-program catalogue plus a handful of drift skews).
var sigMemo sync.Map // sigKey -> features.Vector

// Signature returns the benchmark's noiseless characteristic feature vector.
// Every feature is centred on a family-specific value (cache counters at the
// family level, the rest at stable family-hashed positions) with a small
// per-benchmark offset, reproducing the paper's Figure 16: programs sharing
// a memory-function family form one tight cluster in feature space. The
// vector is deterministic per benchmark identity and memoised process-wide.
func (b *Benchmark) Signature() features.Vector {
	key := sigKey{suite: b.Suite, name: b.Name, family: b.Truth.Family, skew: b.CounterSkew, cpu: b.CPULoad}
	if v, ok := sigMemo.Load(key); ok {
		return v.(features.Vector)
	}
	v := b.computeSignature()
	sigMemo.Store(key, v)
	return v
}

// computeSignature derives the signature from scratch (see Signature).
func (b *Benchmark) computeSignature() features.Vector {
	famRng := rand.New(rand.NewSource(int64(b.Truth.Family) * 7919))
	var v features.Vector
	for i := range v {
		// Non-driven features sit in a narrow family-hashed band: they
		// carry a little family signal, but the cache counters below are
		// what separates the clusters (Figure 4b).
		v[i] = 0.40 + 0.20*famRng.Float64()
	}
	level := familyLevel(b.Truth.Family) + b.CounterSkew
	for _, f := range drivenFeatures {
		v[f] = level
	}
	rng := rand.New(rand.NewSource(b.seed()))
	driven := map[int]bool{}
	for _, f := range drivenFeatures {
		driven[f] = true
	}
	for i := range v {
		// Driven features are tight around the family level; the rest vary
		// benchmark-to-benchmark far more than between families, which is
		// what demotes them in the PCA variance ranking (Figure 4b).
		amp := 0.30
		if driven[i] {
			amp = 0.05
		}
		v[i] += (rng.Float64() - 0.5) * amp
	}
	// CPU-time split features track the benchmark's compute intensity
	// (damped: within-family load spread must not dwarf the cluster
	// structure, or unseen programs would land outside their cluster).
	v[features.US] = 0.35 + 0.25*b.CPULoad + (rng.Float64()-0.5)*0.04
	v[features.ID] = 0.65 - 0.25*b.CPULoad + (rng.Float64()-0.5)*0.04
	return v
}

// Counters simulates one runtime feature-collection pass (vmstat/perf/PAPI
// over a ~100MB profiling run): the signature plus per-run measurement noise.
func (b *Benchmark) Counters(rng *rand.Rand) features.Vector {
	const runNoise = 0.02
	v := b.Signature()
	for i := range v {
		v[i] += rng.NormFloat64() * runNoise
	}
	return v
}

// ProfilePoint runs a simulated profiling execution on x GB of input and
// returns the observed (x, footprint) pair for model calibration.
func (b *Benchmark) ProfilePoint(x float64, rng *rand.Rand) memfunc.Point {
	return memfunc.Point{X: x, Y: b.MeasuredFootprint(x, rng)}
}

// CurvePoints samples the measured memory curve at the given input sizes,
// emulating the offline training sweeps (~300MB to ~1TB per program).
func (b *Benchmark) CurvePoints(xs []float64, rng *rand.Rand) []memfunc.Point {
	pts := make([]memfunc.Point, 0, len(xs))
	for _, x := range xs {
		y := b.MeasuredFootprint(x, rng)
		if y > 0 {
			pts = append(pts, memfunc.Point{X: x, Y: y})
		}
	}
	return pts
}

// TrainingSweep is the canonical offline profiling grid (GB).
var TrainingSweep = []float64{0.3, 1, 3, 10, 30, 100, 300, 1000}
