package workload

import (
	"math"
	"math/rand"
	"testing"
)

type arrivalGen struct {
	name string
	gen  func(n int, rng *rand.Rand) ([]Arrival, error)
}

func generators() []arrivalGen {
	return []arrivalGen{
		{"poisson", func(n int, rng *rand.Rand) ([]Arrival, error) {
			return PoissonArrivals(n, 0.05, rng)
		}},
		{"bursty", func(n int, rng *rand.Rand) ([]Arrival, error) {
			return BurstyArrivals(n, 0.5, 5, 120, rng)
		}},
		{"diurnal", func(n int, rng *rand.Rand) ([]Arrival, error) {
			return DiurnalArrivals(n, 0.05, 0.8, 3600, rng)
		}},
	}
}

func TestArrivalsDeterministicForSeed(t *testing.T) {
	for _, g := range generators() {
		a, err := g.gen(200, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		b, err := g.gen(200, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		for i := range a {
			// Catalog() allocates fresh *Benchmark values per call, so
			// compare jobs by identity-relevant fields, not pointers.
			if a[i].At != b[i].At || a[i].Job.Bench.FullName() != b[i].Job.Bench.FullName() ||
				a[i].Job.InputGB != b[i].Job.InputGB {
				t.Fatalf("%s: stream diverges at %d: %+v vs %+v", g.name, i, a[i], b[i])
			}
		}
		c, err := g.gen(200, rand.New(rand.NewSource(12)))
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		same := true
		for i := range a {
			if a[i].At != c[i].At {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced an identical stream", g.name)
		}
	}
}

func TestArrivalsMonotoneNonDecreasing(t *testing.T) {
	for _, g := range generators() {
		arr, err := g.gen(500, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		if arr[0].At < 0 {
			t.Errorf("%s: negative first arrival %v", g.name, arr[0].At)
		}
		for i := 1; i < len(arr); i++ {
			if arr[i].At < arr[i-1].At {
				t.Fatalf("%s: arrival %d at %v before predecessor %v", g.name, i, arr[i].At, arr[i-1].At)
			}
		}
	}
}

func TestPoissonEmpiricalRate(t *testing.T) {
	const n, rate = 4000, 0.2
	arr, err := PoissonArrivals(n, rate, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	empirical := float64(n) / arr[n-1].At
	if rel := math.Abs(empirical-rate) / rate; rel > 0.05 {
		t.Errorf("empirical rate %.4f vs configured %.4f (rel err %.3f)", empirical, rate, rel)
	}
}

func TestDiurnalMeanRateNearBase(t *testing.T) {
	// Over many whole periods the sinusoid averages out: the empirical rate
	// approaches the base rate.
	const n, base, period = 4000, 0.5, 600.0
	arr, err := DiurnalArrivals(n, base, 0.9, period, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	empirical := float64(n) / arr[n-1].At
	if rel := math.Abs(empirical-base) / base; rel > 0.10 {
		t.Errorf("empirical rate %.4f vs base %.4f (rel err %.3f)", empirical, base, rel)
	}
}

func TestBurstyHasBurstsAndGaps(t *testing.T) {
	// Within-burst gaps (mean 2s at rate 0.5) must be far shorter than idle
	// gaps (mean 300s); the gap distribution should show both modes.
	arr, err := BurstyArrivals(1000, 0.5, 8, 300, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	short, long := 0, 0
	for i := 1; i < len(arr); i++ {
		gap := arr[i].At - arr[i-1].At
		if gap < 20 {
			short++
		}
		if gap > 100 {
			long++
		}
	}
	if short < 500 {
		t.Errorf("only %d short within-burst gaps, want many", short)
	}
	if long < 50 {
		t.Errorf("only %d long idle gaps, want a clear off phase", long)
	}
}

func TestArrivalsDrawFromWholeCatalog(t *testing.T) {
	arr, err := PoissonArrivals(100, 1, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, a := range arr {
		seen[a.Job.Bench.FullName()] = true
	}
	if len(seen) != len(Catalog()) {
		t.Errorf("stream of 100 jobs covered %d/%d benchmarks; should cycle the whole catalogue", len(seen), len(Catalog()))
	}
}

func TestArrivalGeneratorsValidateParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := PoissonArrivals(0, 1, rng); err == nil {
		t.Error("zero-length poisson stream must error")
	}
	if _, err := PoissonArrivals(10, 0, rng); err == nil {
		t.Error("zero rate must error")
	}
	if _, err := PoissonArrivals(10, math.Inf(1), rng); err == nil {
		t.Error("infinite rate must error")
	}
	if _, err := BurstyArrivals(10, 0, 5, 10, rng); err == nil {
		t.Error("zero burst rate must error")
	}
	if _, err := BurstyArrivals(10, 1, 0.5, 10, rng); err == nil {
		t.Error("mean burst below 1 must error")
	}
	if _, err := DiurnalArrivals(10, 1, 1.5, 600, rng); err == nil {
		t.Error("amplitude >= 1 must error")
	}
	if _, err := DiurnalArrivals(10, 1, 0.5, 0, rng); err == nil {
		t.Error("zero period must error")
	}
}
