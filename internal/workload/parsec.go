package workload

// ParsecBenchmark models one PARSEC 3.0 program (native input) used in the
// Figure 15 interference study: a computation-intensive, share-memory
// co-runner with a fixed working set and a high CPU demand. Substitution
// note (DESIGN.md): the study only needs a CPU-hungry co-runner whose
// slowdown under memory-safe co-location can be measured, which this model
// provides.
type ParsecBenchmark struct {
	Name string
	// CPULoad is the CPU demand as a fraction of one node (PARSEC programs
	// use most of the machine with native inputs).
	CPULoad float64
	// MemoryGB is the fixed resident working set.
	MemoryGB float64
	// RuntimeSec is the isolated wall-clock runtime with native inputs.
	RuntimeSec float64
}

// ParsecSuite returns the 12 PARSEC benchmarks of Figure 15.
func ParsecSuite() []ParsecBenchmark {
	return []ParsecBenchmark{
		{Name: "Blackscholes", CPULoad: 0.92, MemoryGB: 1.2, RuntimeSec: 900},
		{Name: "Bodytrack", CPULoad: 0.85, MemoryGB: 0.8, RuntimeSec: 1100},
		{Name: "Canneal", CPULoad: 0.78, MemoryGB: 2.5, RuntimeSec: 1300},
		{Name: "Facesim", CPULoad: 0.88, MemoryGB: 3.1, RuntimeSec: 1500},
		{Name: "Ferret", CPULoad: 0.90, MemoryGB: 1.0, RuntimeSec: 1200},
		{Name: "Fluidanimate", CPULoad: 0.86, MemoryGB: 1.5, RuntimeSec: 1400},
		{Name: "Freqmine", CPULoad: 0.94, MemoryGB: 2.0, RuntimeSec: 1600},
		{Name: "Raytrace", CPULoad: 0.82, MemoryGB: 1.8, RuntimeSec: 1000},
		{Name: "Streamcluster", CPULoad: 0.89, MemoryGB: 0.9, RuntimeSec: 1700},
		{Name: "Swaptions", CPULoad: 0.95, MemoryGB: 0.5, RuntimeSec: 800},
		{Name: "Vips", CPULoad: 0.80, MemoryGB: 1.1, RuntimeSec: 950},
		{Name: "X264", CPULoad: 0.91, MemoryGB: 1.4, RuntimeSec: 1050},
	}
}
