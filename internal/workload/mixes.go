package workload

import (
	"fmt"
	"math/rand"
)

// Job is one application submission: a benchmark plus an input dataset size.
type Job struct {
	Bench   *Benchmark
	InputGB float64
}

// String renders the job like the paper's Table 4 rows.
func (j Job) String() string { return fmt.Sprintf("%s %s", j.Bench.FullName(), sizeLabel(j.InputGB)) }

func sizeLabel(gb float64) string {
	switch {
	case gb >= 1000:
		return "1TB"
	case gb >= 1:
		return fmt.Sprintf("%.0fGB", gb)
	default:
		return fmt.Sprintf("%.0fMB", gb*1000)
	}
}

// InputSizes are the paper's three input scales: small (~300MB), medium
// (~30GB) and large (~1TB).
var InputSizes = []float64{0.3, 30, 1000}

// Scenario is one of the paper's runtime scenarios (Table 3).
type Scenario struct {
	Label string
	Apps  int
}

// Scenarios lists the ten task-mix scenarios of Table 3.
var Scenarios = []Scenario{
	{"L1", 2}, {"L2", 6}, {"L3", 7}, {"L4", 9}, {"L5", 11},
	{"L6", 13}, {"L7", 19}, {"L8", 23}, {"L9", 26}, {"L10", 30},
}

// ScenarioByLabel returns the scenario with the given label.
func ScenarioByLabel(label string) (Scenario, error) {
	for _, s := range Scenarios {
		if s.Label == label {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("workload: unknown scenario %q", label)
}

// RandomMix draws one application mix for a scenario: benchmarks are sampled
// so that repeated draws cycle through the whole catalogue (the paper makes
// sure all benchmarks are included in each scenario's ~100 mixes), and each
// job gets a random input scale.
func RandomMix(s Scenario, rng *rand.Rand) []Job {
	return drawJobStream(s.Apps, rng)
}

// table4Rows reproduces the paper's Table 4 (the 30-application L10 mix used
// for Figures 7 and 8), in submission order.
var table4Rows = []struct {
	name string
	gb   float64
}{
	{"BDB.Wordcount", 30}, {"SP.Kmeans", 1000}, {"SP.glm-classification", 1000},
	{"SP.glm-regression", 1000}, {"SP.Pca", 30}, {"SB.SVD++", 1000},
	{"HB.Scan", 30}, {"HB.TeraSort", 1000}, {"SB.Hive", 1000},
	{"SP.NaiveBayes", 1000}, {"BDB.PageRank", 1000}, {"HB.PageRank", 30},
	{"SP.DecisionTree", 30}, {"SP.Spearman", 1000}, {"SB.MatrixFact", 1000},
	{"BDB.Grep", 1000}, {"SB.LogRegre", 1000}, {"BDB.NaivesBayes", 30},
	{"BDB.Kmeans", 30}, {"HB.Sort", 1000}, {"SP.CoreRDD", 0.3},
	{"SP.Gmm", 1000}, {"HB.Join", 1000}, {"SP.Sum.Statis", 30},
	{"SP.B.MatrixMult", 1000}, {"BDB.Sort", 30}, {"SB.RDDRelation", 1000},
	{"SP.Pearson", 1000}, {"SP.Chi-sq", 30}, {"HB.Kmeans", 1000},
}

// Table4Mix returns the exact 30-application mix of the paper's Table 4.
func Table4Mix() ([]Job, error) {
	byName := ByFullName()
	jobs := make([]Job, 0, len(table4Rows))
	for _, r := range table4Rows {
		b, ok := byName[r.name]
		if !ok {
			return nil, fmt.Errorf("workload: Table 4 references unknown benchmark %q", r.name)
		}
		jobs = append(jobs, Job{Bench: b, InputGB: r.gb})
	}
	return jobs, nil
}
