package workload

import (
	"math/rand"
	"testing"
)

func testArrivals(t *testing.T, n int) []Arrival {
	t.Helper()
	arr, err := PoissonArrivals(n, 1.0/60, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestTagArrivalsDeterministicAndComplete(t *testing.T) {
	arr := testArrivals(t, 200)
	mix := LatencyBatchMix(0.3)
	a, err := TagArrivals(arr, mix, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := TagArrivals(arr, mix, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := range a {
		if a[i].Class != b[i].Class || a[i].Job != b[i].Job {
			t.Fatalf("arrival %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].At != arr[i].At || a[i].Job.Bench != arr[i].Job.Bench {
			t.Fatalf("arrival %d timing/benchmark mutated by tagging", i)
		}
		switch a[i].Class.Name {
		case "latency":
			// The latency tenant's profile caps inputs at 30 GB.
			if a[i].Job.InputGB > 30 {
				t.Fatalf("latency arrival %d kept a %v GB input beyond the class cap", i, a[i].Job.InputGB)
			}
		default:
			if a[i].Job.InputGB != arr[i].Job.InputGB {
				t.Fatalf("uncapped arrival %d resized: %v -> %v GB", i, arr[i].Job.InputGB, a[i].Job.InputGB)
			}
		}
		counts[a[i].Class.Name]++
	}
	// The input stream must stay untagged (no mutation).
	for i := range arr {
		if arr[i].Class != (Class{}) {
			t.Fatalf("input arrival %d mutated: %+v", i, arr[i].Class)
		}
	}
	if counts["latency"] == 0 || counts["batch"] == 0 {
		t.Errorf("degenerate tagging: %v", counts)
	}
	// ~30% latency share over 200 draws: allow a generous band.
	if frac := float64(counts["latency"]) / 200; frac < 0.15 || frac > 0.45 {
		t.Errorf("latency share %v far from configured 0.3", frac)
	}
}

func TestTagArrivalsValidation(t *testing.T) {
	arr := testArrivals(t, 3)
	rng := rand.New(rand.NewSource(1))
	bad := [][]ClassShare{
		nil,
		{{Class: Class{Name: ""}, Frac: 1}},
		{{Class: Class{Name: "a"}, Frac: 0.5}, {Class: Class{Name: "a"}, Frac: 0.5}},
		{{Class: Class{Name: "a", Weight: -1}, Frac: 1}},
		{{Class: Class{Name: "a"}, Frac: 0.4}},
		{{Class: Class{Name: "a"}, Frac: 0.4}, {Class: Class{Name: "b"}, Frac: 0.4}},
		{{Class: Class{Name: "a"}, Frac: -0.2}, {Class: Class{Name: "b"}, Frac: 1.2}},
	}
	for i, mix := range bad {
		if _, err := TagArrivals(arr, mix, rng); err == nil {
			t.Errorf("bad mix %d accepted: %+v", i, mix)
		}
	}
}
