package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Arrival is one timed job submission for the open-system engine: the job
// enters the cluster queue At seconds into the run. Class tags the submitting
// tenant (see TagArrivals); the zero Class is the untagged single-tenant
// default.
type Arrival struct {
	At    float64
	Job   Job
	Class Class
}

// drawJobStream samples n jobs the way RandomMix does: benchmarks cycle
// through a seeded permutation of the whole catalogue (so long streams cover
// all 44 benchmarks) and each job gets a random input scale.
func drawJobStream(n int, rng *rand.Rand) []Job {
	cat := Catalog()
	perm := rng.Perm(len(cat))
	jobs := make([]Job, 0, n)
	for i := 0; i < n; i++ {
		b := cat[perm[i%len(cat)]]
		size := InputSizes[rng.Intn(len(InputSizes))]
		jobs = append(jobs, Job{Bench: b, InputGB: size})
	}
	return jobs
}

// timeJobs zips a non-decreasing arrival-time sequence with a job stream.
func timeJobs(times []float64, jobs []Job) []Arrival {
	out := make([]Arrival, len(jobs))
	for i := range jobs {
		out[i] = Arrival{At: times[i], Job: jobs[i]}
	}
	return out
}

// PoissonArrivals generates n jobs arriving as a homogeneous Poisson process
// with the given mean rate (jobs per second): inter-arrival gaps are
// exponential with mean 1/ratePerSec. The same seed yields the identical
// stream.
func PoissonArrivals(n int, ratePerSec float64, rng *rand.Rand) ([]Arrival, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need a positive stream length, got %d", n)
	}
	if ratePerSec <= 0 || math.IsInf(ratePerSec, 0) || math.IsNaN(ratePerSec) {
		return nil, fmt.Errorf("workload: invalid arrival rate %v jobs/sec", ratePerSec)
	}
	times := make([]float64, n)
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.ExpFloat64() / ratePerSec
		times[i] = t
	}
	return timeJobs(times, drawJobStream(n, rng)), nil
}

// BurstyArrivals generates n jobs from an on/off process: jobs arrive in
// bursts whose sizes are geometric with the given mean, gaps within a burst
// are exponential with mean 1/burstRate, and consecutive bursts are separated
// by exponential idle gaps with mean idleSec. This models the flash-crowd /
// batch-drop traffic the closed setting cannot express.
func BurstyArrivals(n int, burstRate float64, meanBurst float64, idleSec float64, rng *rand.Rand) ([]Arrival, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need a positive stream length, got %d", n)
	}
	if burstRate <= 0 || meanBurst < 1 || idleSec < 0 {
		return nil, fmt.Errorf("workload: invalid bursty parameters rate=%v meanBurst=%v idle=%v",
			burstRate, meanBurst, idleSec)
	}
	// Geometric burst sizes with mean meanBurst: continue the burst with
	// probability 1-1/meanBurst after each arrival.
	contP := 1 - 1/meanBurst
	times := make([]float64, n)
	t := 0.0
	inBurst := false
	for i := 0; i < n; i++ {
		if !inBurst {
			t += rng.ExpFloat64() * idleSec
			inBurst = true
		} else {
			t += rng.ExpFloat64() / burstRate
		}
		times[i] = t
		if rng.Float64() >= contP {
			inBurst = false
		}
	}
	return timeJobs(times, drawJobStream(n, rng)), nil
}

// DiurnalArrivals generates n jobs from a non-homogeneous Poisson process
// with a sinusoidal day/night rate profile,
//
//	lambda(t) = baseRate * (1 + amplitude*sin(2*pi*t/periodSec)),
//
// sampled by Lewis-Shedler thinning so the stream is deterministic for a
// given seed. amplitude must lie in [0, 1); the long-run mean rate is
// baseRate.
func DiurnalArrivals(n int, baseRate, amplitude, periodSec float64, rng *rand.Rand) ([]Arrival, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need a positive stream length, got %d", n)
	}
	if baseRate <= 0 || amplitude < 0 || amplitude >= 1 || periodSec <= 0 {
		return nil, fmt.Errorf("workload: invalid diurnal parameters base=%v amp=%v period=%v",
			baseRate, amplitude, periodSec)
	}
	maxRate := baseRate * (1 + amplitude)
	times := make([]float64, 0, n)
	t := 0.0
	for len(times) < n {
		t += rng.ExpFloat64() / maxRate
		rate := baseRate * (1 + amplitude*math.Sin(2*math.Pi*t/periodSec))
		if rng.Float64()*maxRate <= rate {
			times = append(times, t)
		}
	}
	return timeJobs(times, drawJobStream(n, rng)), nil
}
