package workload

import (
	"fmt"
	"math"
	"math/rand"

	"moespark/internal/memfunc"
)

// This file generates non-stationary (drifting) arrival streams: workloads
// whose input distribution shifts mid-run. A model calibrated once per
// submission keeps up with a stationary stream; these generators produce the
// regimes where a feedback-driven predictor should pull ahead. The drift
// dimension that actually breaks a trained gate is the runtime *signature*:
// when a program's cache counters move toward another family's cluster
// (Benchmark.CounterSkew), the gate confidently selects the wrong expert and
// the two-point calibration extrapolates on the wrong curve shape — errors
// of 10x and more at large inputs, exactly the stale-prediction cost a
// memory-pressure-sensitive co-location scheduler cannot afford.

// skewedCohort copies a benchmark with drifted counters when it belongs to
// the drift cohort (one growing-footprint family — think of a
// storage-format upgrade changing the cache profile of one engine family);
// other programs are returned unchanged. A skew that lands the cohort's
// counters on the saturating-exponential cluster makes the trained gate
// confidently hand growing-footprint programs to the saturating expert —
// whose calibration under-predicts them ever worse as inputs grow, the
// expensive direction for a memory-pressure-sensitive scheduler (heap
// thrash, OOM risk).
func skewedCohort(b *Benchmark, cohort memfunc.Family, skew float64) *Benchmark {
	if skew == 0 || b.Truth.Family != cohort {
		return b
	}
	drifted := *b
	drifted.CounterSkew = skew
	return &drifted
}

// GrowthArrivals generates a Poisson stream under gradual input growth: job
// i draws a log-uniform jitter around startGB and is scaled by
// growth^(i/(n-1)), so the stream starts at interactive sizes and ends
// growth times larger. As the working sets outgrow the caches, the
// Napierian-log cohort's counters drift linearly from their trained
// signature to skew (use ~-0.35 to land on the saturating cluster; 0
// disables behaviour drift), so late in the stream the gate faces both
// unseen sizes and shifted signatures. Benchmarks cycle through a seeded
// permutation of the catalogue; the same seed yields the identical stream.
func GrowthArrivals(n int, ratePerSec, startGB, growth, skew float64, rng *rand.Rand) ([]Arrival, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need a positive stream length, got %d", n)
	}
	if ratePerSec <= 0 || math.IsInf(ratePerSec, 0) || math.IsNaN(ratePerSec) {
		return nil, fmt.Errorf("workload: invalid arrival rate %v jobs/sec", ratePerSec)
	}
	if startGB <= 0 || growth < 1 || math.IsNaN(startGB) || math.IsNaN(growth) || math.IsInf(growth, 0) {
		return nil, fmt.Errorf("workload: invalid growth drift start=%v growth=%v", startGB, growth)
	}
	if math.IsNaN(skew) || math.Abs(skew) > 1 {
		return nil, fmt.Errorf("workload: invalid counter skew %v", skew)
	}
	cat := Catalog()
	perm := rng.Perm(len(cat))
	times := make([]float64, n)
	jobs := make([]Job, n)
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.ExpFloat64() / ratePerSec
		times[i] = t
		progress := 0.0
		if n > 1 {
			progress = float64(i) / float64(n-1)
		}
		// Log-uniform jitter in [1/2, 2] keeps sizes varied without hiding
		// the trend.
		jitter := math.Pow(2, 2*rng.Float64()-1)
		jobs[i] = Job{
			Bench:   skewedCohort(cat[perm[i%len(cat)]], memfunc.NapierianLog, skew*progress),
			InputGB: startGB * jitter * math.Pow(growth, progress),
		}
	}
	return timeJobs(times, jobs), nil
}

// RegimeArrivals generates a Poisson stream that switches between workload
// mixes every periodJobs arrivals: even regimes draw the clean catalogue,
// odd regimes draw exclusively from the post-upgrade drift cohort — the
// log-family programs running with their counters skewed onto the
// saturating cluster (see skewedCohort), the way a migration wave or a
// tenant's nightly graph/ML pipeline takes over the queue. Each switch
// abruptly moves the arrival stream into or out of the region where the
// trained gate picks the wrong (under-predicting) expert — the
// regime-switch drift scenario. Input sizes are drawn from fixed scales
// capped well below the terabyte tier, so queueing differences come from
// prediction quality rather than giant stragglers.
func RegimeArrivals(n int, ratePerSec float64, periodJobs int, skew float64, rng *rand.Rand) ([]Arrival, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need a positive stream length, got %d", n)
	}
	if ratePerSec <= 0 || math.IsInf(ratePerSec, 0) || math.IsNaN(ratePerSec) {
		return nil, fmt.Errorf("workload: invalid arrival rate %v jobs/sec", ratePerSec)
	}
	if periodJobs <= 0 {
		return nil, fmt.Errorf("workload: need a positive regime period, got %d jobs", periodJobs)
	}
	if math.IsNaN(skew) || math.Abs(skew) > 1 {
		return nil, fmt.Errorf("workload: invalid counter skew %v", skew)
	}
	cat := Catalog()
	perm := rng.Perm(len(cat))
	var cohort []*Benchmark
	for _, b := range cat {
		if c := skewedCohort(b, memfunc.NapierianLog, skew); c != b {
			cohort = append(cohort, c)
		}
	}
	if len(cohort) == 0 && skew != 0 {
		return nil, fmt.Errorf("workload: catalogue has no drift-cohort benchmarks")
	}
	sizes := []float64{10, 30, 90}
	times := make([]float64, n)
	jobs := make([]Job, n)
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.ExpFloat64() / ratePerSec
		times[i] = t
		b := cat[perm[i%len(cat)]]
		if skew != 0 && (i/periodJobs)%2 == 1 {
			b = cohort[rng.Intn(len(cohort))]
		}
		jobs[i] = Job{Bench: b, InputGB: sizes[rng.Intn(len(sizes))]}
	}
	return timeJobs(times, jobs), nil
}
