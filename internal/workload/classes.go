package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Class is one tenant priority class. Production co-location fleets mix
// latency-sensitive and batch tenants; the class a submission carries decides
// how urgently the cluster treats it. The zero Class (empty name, weight 0,
// not preemptible) is the untagged single-tenant default: runs whose
// submissions all carry the zero class behave bit-for-bit like runs predating
// priority classes.
type Class struct {
	// Name identifies the class in reports and per-class metrics.
	Name string
	// Weight orders classes for admission: among simultaneously-ready
	// applications, higher-weight classes are scheduled first (weighted FCFS;
	// equal weights fall back to plain FCFS submission order).
	Weight float64
	// Preemptible marks the class's executors reclaimable: an arriving
	// higher-weight application may kill them to free memory, charging the
	// lost work back exactly like an OOM kill.
	Preemptible bool
}

// ClassShare is one entry of a class mix: the class, the fraction of the
// arrival stream it submits, and the class's workload profile.
type ClassShare struct {
	Class Class
	Frac  float64
	// MaxInputGB caps the input size of jobs this class submits (0 = no
	// cap): a latency-sensitive tenant runs interactive queries, not
	// terabyte batch scans, so jobs drawn into the class are clamped to its
	// largest scale.
	MaxInputGB float64
}

// LatencyBatchMix is the canonical two-tenant mix of the multi-tenant study:
// a latency-sensitive class (weight 4, not preemptible, interactive inputs
// up to 30 GB) submitting latencyFrac of the stream, and a preemptible
// batch class (weight 1, unbounded inputs) with the rest.
func LatencyBatchMix(latencyFrac float64) []ClassShare {
	return []ClassShare{
		{Class: Class{Name: "latency", Weight: 4}, Frac: latencyFrac, MaxInputGB: 30},
		{Class: Class{Name: "batch", Weight: 1, Preemptible: true}, Frac: 1 - latencyFrac},
	}
}

// TagArrivals assigns a tenant class to every arrival of a stream: each
// arrival independently draws its class from the mix's share fractions, and
// jobs exceeding their class's MaxInputGB are clamped to it (the tenant's
// workload profile). The input stream is not mutated; the same seed yields
// the identical tagging. Fractions must be positive and sum to 1, class
// names must be non-empty and distinct, and weights must be finite and
// non-negative.
func TagArrivals(arrivals []Arrival, mix []ClassShare, rng *rand.Rand) ([]Arrival, error) {
	if len(mix) == 0 {
		return nil, fmt.Errorf("workload: class mix needs at least one class")
	}
	var sum float64
	seen := map[string]bool{}
	for _, s := range mix {
		if s.Class.Name == "" {
			return nil, fmt.Errorf("workload: class mix entry has an empty name")
		}
		if seen[s.Class.Name] {
			return nil, fmt.Errorf("workload: class %q appears twice in the mix", s.Class.Name)
		}
		seen[s.Class.Name] = true
		if s.Class.Weight < 0 || math.IsNaN(s.Class.Weight) || math.IsInf(s.Class.Weight, 0) {
			return nil, fmt.Errorf("workload: class %q has invalid weight %v", s.Class.Name, s.Class.Weight)
		}
		if s.Frac <= 0 || math.IsNaN(s.Frac) {
			return nil, fmt.Errorf("workload: class %q has invalid share %v", s.Class.Name, s.Frac)
		}
		if s.MaxInputGB < 0 || math.IsNaN(s.MaxInputGB) {
			return nil, fmt.Errorf("workload: class %q has invalid input cap %v", s.Class.Name, s.MaxInputGB)
		}
		sum += s.Frac
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("workload: class shares sum to %v, want 1", sum)
	}
	out := make([]Arrival, len(arrivals))
	copy(out, arrivals)
	for i := range out {
		u := rng.Float64()
		acc := 0.0
		share := mix[len(mix)-1]
		for _, s := range mix {
			acc += s.Frac
			if u < acc {
				share = s
				break
			}
		}
		out[i].Class = share.Class
		if share.MaxInputGB > 0 && out[i].Job.InputGB > share.MaxInputGB {
			out[i].Job.InputGB = share.MaxInputGB
		}
	}
	return out, nil
}
