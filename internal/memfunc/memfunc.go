// Package memfunc implements the paper's "memory functions" — the experts of
// the mixture-of-experts predictor. Each expert is a two-parameter curve
// family mapping input size x (RDD data items or bytes) to the memory
// footprint y of a Spark executor (Table 1 of the paper):
//
//	Linear:                   y = m + b * x
//	Exponential (saturating): y = m * (1 - e^(-b*x))
//	Napierian logarithmic:    y = m + ln(x) * b
//
// (Table 1 of the paper prints the first family as "y = m * x^b" under the
// heading "(piecewise) linear regression"; we read that as a typesetting
// slip for ordinary linear regression — a power law with a free exponent
// would approximate the other two families and defeat the figure-9
// comparison the paper itself reports.)
//
// A family can be fitted offline on many (x, y) profiling points
// (least-squares, used at training time), or calibrated at runtime from
// exactly two profiling observations (the paper's 5 % / 10 % runs).
package memfunc

import (
	"errors"
	"fmt"
	"math"
)

// Family enumerates the expert curve families.
type Family int

const (
	// LinearPower is the paper's "(piecewise) linear regression" family,
	// y = m + b*x (see the package comment for the Table 1 reading).
	LinearPower Family = iota + 1
	// Exponential is the saturating-exponential family y = m * (1 - e^(-b*x)).
	Exponential
	// NapierianLog is the natural-logarithm family y = m + ln(x) * b.
	NapierianLog
)

// Families lists all expert families in a stable order.
var Families = []Family{LinearPower, Exponential, NapierianLog}

// String returns the human-readable family name used in reports.
func (f Family) String() string {
	switch f {
	case LinearPower:
		return "LinearRegression"
	case Exponential:
		return "ExponentialRegression"
	case NapierianLog:
		return "NapierianLogRegression"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Valid reports whether f is a known family.
func (f Family) Valid() bool {
	return f == LinearPower || f == Exponential || f == NapierianLog
}

// Func is an instantiated memory function: a family with concrete
// coefficients M and B. X is measured in gigabytes of input, Y in gigabytes
// of executor footprint.
type Func struct {
	Family Family
	M, B   float64
}

// ErrOutOfDomain is returned when a function is evaluated outside the domain
// where the family is meaningful (e.g. log at x <= 0).
var ErrOutOfDomain = errors.New("memfunc: input size outside function domain")

// Eval returns the predicted memory footprint for input size x.
func (f Func) Eval(x float64) (float64, error) {
	if x < 0 {
		return 0, ErrOutOfDomain
	}
	switch f.Family {
	case LinearPower:
		v := f.M + f.B*x
		if v < 0 {
			v = 0
		}
		return v, nil
	case Exponential:
		return f.M * (1 - math.Exp(-f.B*x)), nil
	case NapierianLog:
		if x <= 0 {
			return 0, ErrOutOfDomain
		}
		v := f.M + math.Log(x)*f.B
		if v < 0 {
			v = 0
		}
		return v, nil
	default:
		return 0, fmt.Errorf("memfunc: unknown family %d", int(f.Family))
	}
}

// MustEval is Eval for known-good inputs; it panics on domain errors and is
// intended for internal sweeps over controlled grids.
func (f Func) MustEval(x float64) float64 {
	y, err := f.Eval(x)
	if err != nil {
		panic(fmt.Sprintf("memfunc: MustEval(%v) on %v: %v", x, f, err))
	}
	return y
}

// Invert returns the largest input size x such that Eval(x) <= budget.
// This is the scheduler's central query: how many data items can an executor
// cache under a given memory budget. Returns 0 if no positive x fits, and
// +Inf if the function is bounded below the budget for all x (the scheduler
// then caps by remaining input).
func (f Func) Invert(budget float64) (float64, error) {
	if budget <= 0 {
		return 0, nil
	}
	switch f.Family {
	case LinearPower:
		if f.B <= 0 {
			return math.Inf(1), nil
		}
		// budget = m + b*x  =>  x = (budget - m) / b
		x := (budget - f.M) / f.B
		if x < 0 {
			x = 0
		}
		return x, nil
	case Exponential:
		// Bounded above by m: anything fits if budget >= m.
		if budget >= f.M {
			return math.Inf(1), nil
		}
		if f.M <= 0 || f.B <= 0 {
			return math.Inf(1), nil
		}
		// budget = m(1-e^{-bx}) => x = -ln(1-budget/m)/b
		return -math.Log(1-budget/f.M) / f.B, nil
	case NapierianLog:
		if f.B <= 0 {
			return math.Inf(1), nil
		}
		// budget = m + b ln x => x = e^{(budget-m)/b}
		return math.Exp((budget - f.M) / f.B), nil
	default:
		return 0, fmt.Errorf("memfunc: unknown family %d", int(f.Family))
	}
}

func (f Func) String() string {
	switch f.Family {
	case LinearPower:
		return fmt.Sprintf("y = %.4g + %.4g * x", f.M, f.B)
	case Exponential:
		return fmt.Sprintf("y = %.4g * (1 - e^(-%.4g*x))", f.M, f.B)
	case NapierianLog:
		return fmt.Sprintf("y = %.4g + ln(x) * %.4g", f.M, f.B)
	default:
		return fmt.Sprintf("unknown family %d", int(f.Family))
	}
}
