package memfunc

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// The paper's Figure 3 instantiations: Sort is exponential with m=5.768,
// b=4.479; PageRank is Napierian-log with m=16.333, b=1.79.
var (
	paperSort     = Func{Family: Exponential, M: 5.768, B: 4.479}
	paperPageRank = Func{Family: NapierianLog, M: 16.333, B: 1.79}
)

func TestFamilyString(t *testing.T) {
	if LinearPower.String() != "LinearRegression" {
		t.Error(LinearPower.String())
	}
	if Exponential.String() != "ExponentialRegression" {
		t.Error(Exponential.String())
	}
	if NapierianLog.String() != "NapierianLogRegression" {
		t.Error(NapierianLog.String())
	}
	if Family(99).Valid() {
		t.Error("Family(99) should be invalid")
	}
	for _, f := range Families {
		if !f.Valid() {
			t.Errorf("family %v should be valid", f)
		}
	}
}

func TestEvalPaperSort(t *testing.T) {
	// Saturating exponential approaches m for large inputs.
	y, err := paperSort.Eval(100)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if !almostEqual(y, 5.768, 1e-6) {
		t.Errorf("Sort(100GB) = %v, want ~5.768 (saturated)", y)
	}
	y, _ = paperSort.Eval(0.1)
	if y <= 0 || y >= 5.768 {
		t.Errorf("Sort(0.1GB) = %v, want in (0, 5.768)", y)
	}
}

func TestEvalPaperPageRank(t *testing.T) {
	// m + ln(x)*b at x=e^2 => 16.333 + 2*1.79.
	y, err := paperPageRank.Eval(math.Exp(2))
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if !almostEqual(y, 16.333+2*1.79, 1e-9) {
		t.Errorf("PageRank(e^2) = %v", y)
	}
	// Very small x would go negative: clamped to 0.
	y, err = paperPageRank.Eval(1e-9)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if y != 0 {
		t.Errorf("clamped eval = %v, want 0", y)
	}
}

func TestEvalDomainErrors(t *testing.T) {
	if _, err := paperPageRank.Eval(0); !errors.Is(err, ErrOutOfDomain) {
		t.Error("log at 0 should be out of domain")
	}
	if _, err := paperSort.Eval(-1); !errors.Is(err, ErrOutOfDomain) {
		t.Error("negative x should be out of domain")
	}
	lin := Func{Family: LinearPower, M: 2, B: 1}
	if y, err := lin.Eval(0); err != nil || y != 2 {
		t.Errorf("linear at 0: %v, %v (affine intercept)", y, err)
	}
	if _, err := (Func{Family: Family(42)}).Eval(1); err == nil {
		t.Error("unknown family must error")
	}
}

func TestInvertRoundTrip(t *testing.T) {
	fns := []Func{
		{Family: LinearPower, M: 0.02, B: 1.0},
		{Family: LinearPower, M: 0.5, B: 0.8},
		paperSort,
		paperPageRank,
	}
	for _, fn := range fns {
		for _, budget := range []float64{0.5, 2, 5} {
			x, err := fn.Invert(budget)
			if err != nil {
				t.Fatalf("%v Invert(%v): %v", fn, budget, err)
			}
			if math.IsInf(x, 1) {
				// Bounded family under a generous budget: any x fits.
				if fn.Family == Exponential && budget >= fn.M {
					continue
				}
				t.Fatalf("%v Invert(%v) = +Inf unexpectedly", fn, budget)
			}
			y, err := fn.Eval(x)
			if err != nil {
				t.Fatalf("%v Eval(%v): %v", fn, x, err)
			}
			if !almostEqual(y, budget, 1e-6*math.Max(1, budget)) {
				t.Errorf("%v: Eval(Invert(%v)) = %v", fn, budget, y)
			}
		}
	}
}

func TestInvertEdgeCases(t *testing.T) {
	if x, _ := paperSort.Invert(0); x != 0 {
		t.Error("zero budget must give zero items")
	}
	if x, _ := paperSort.Invert(100); !math.IsInf(x, 1) {
		t.Error("budget above exponential ceiling must give +Inf")
	}
	if _, err := (Func{Family: Family(42)}).Invert(1); err == nil {
		t.Error("unknown family must error")
	}
}

func makeCurvePoints(fn Func, xs []float64, noise float64, rng *rand.Rand) []Point {
	pts := make([]Point, 0, len(xs))
	for _, x := range xs {
		y, err := fn.Eval(x)
		if err != nil || y <= 0 {
			continue
		}
		if noise > 0 {
			y *= 1 + rng.NormFloat64()*noise
		}
		if y > 0 {
			pts = append(pts, Point{X: x, Y: y})
		}
	}
	return pts
}

var sweepXs = []float64{0.001, 0.01, 0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000}

func TestFitRecoversLinearPower(t *testing.T) {
	truth := Func{Family: LinearPower, M: 0.031, B: 0.97}
	pts := makeCurvePoints(truth, sweepXs, 0, nil)
	fit, err := FitFamily(LinearPower, pts)
	if err != nil {
		t.Fatalf("FitFamily: %v", err)
	}
	if !almostEqual(fit.Func.M, truth.M, 1e-6) || !almostEqual(fit.Func.B, truth.B, 1e-6) {
		t.Errorf("fit = %v, want %v", fit.Func, truth)
	}
	if fit.R2 < 0.9999 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestFitRecoversNapierianLog(t *testing.T) {
	pts := makeCurvePoints(paperPageRank, []float64{0.01, 0.1, 1, 10, 100, 1000}, 0, nil)
	fit, err := FitFamily(NapierianLog, pts)
	if err != nil {
		t.Fatalf("FitFamily: %v", err)
	}
	if !almostEqual(fit.Func.M, paperPageRank.M, 1e-6) || !almostEqual(fit.Func.B, paperPageRank.B, 1e-6) {
		t.Errorf("fit = %v, want %v", fit.Func, paperPageRank)
	}
}

func TestFitRecoversExponential(t *testing.T) {
	pts := makeCurvePoints(paperSort, sweepXs, 0, nil)
	fit, err := FitFamily(Exponential, pts)
	if err != nil {
		t.Fatalf("FitFamily: %v", err)
	}
	if math.Abs(fit.Func.M-paperSort.M)/paperSort.M > 0.01 {
		t.Errorf("m = %v, want ~%v", fit.Func.M, paperSort.M)
	}
	if math.Abs(fit.Func.B-paperSort.B)/paperSort.B > 0.05 {
		t.Errorf("b = %v, want ~%v", fit.Func.B, paperSort.B)
	}
}

func TestBestFitPicksTrueFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []Func{
		{Family: LinearPower, M: 0.05, B: 1.0},
		paperSort,
		paperPageRank,
	}
	for _, truth := range cases {
		pts := makeCurvePoints(truth, sweepXs, 0.005, rng)
		best, err := BestFit(pts)
		if err != nil {
			t.Fatalf("BestFit(%v): %v", truth, err)
		}
		if best.Func.Family != truth.Family {
			t.Errorf("BestFit picked %v for truth %v", best.Func.Family, truth.Family)
		}
	}
}

func TestFitInsufficientData(t *testing.T) {
	if _, err := FitFamily(LinearPower, []Point{{X: 1, Y: 1}}); !errors.Is(err, ErrInsufficientData) {
		t.Error("single point must be insufficient")
	}
	// Points with non-positive coordinates are filtered out.
	if _, err := FitFamily(LinearPower, []Point{{X: -1, Y: 1}, {X: 0, Y: 2}, {X: 1, Y: -3}}); !errors.Is(err, ErrInsufficientData) {
		t.Error("unusable points must be insufficient")
	}
	// Duplicate X collapses to one point.
	if _, err := FitFamily(NapierianLog, []Point{{X: 2, Y: 1}, {X: 2, Y: 5}}); !errors.Is(err, ErrInsufficientData) {
		t.Error("duplicate X must be insufficient")
	}
	if _, err := BestFit(nil); err == nil {
		t.Error("BestFit(nil) must error")
	}
}

func TestCalibrateLinearPowerExact(t *testing.T) {
	truth := Func{Family: LinearPower, M: 0.04, B: 1.1}
	p1 := Point{X: 5, Y: truth.MustEval(5)}
	p2 := Point{X: 10, Y: truth.MustEval(10)}
	got, err := Calibrate(LinearPower, p1, p2)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if !almostEqual(got.M, truth.M, 1e-9) || !almostEqual(got.B, truth.B, 1e-9) {
		t.Errorf("calibrated %v, want %v", got, truth)
	}
}

func TestCalibrateExponentialExact(t *testing.T) {
	p1 := Point{X: 0.05, Y: paperSort.MustEval(0.05)}
	p2 := Point{X: 0.10, Y: paperSort.MustEval(0.10)}
	got, err := Calibrate(Exponential, p1, p2)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if math.Abs(got.M-paperSort.M)/paperSort.M > 1e-6 {
		t.Errorf("m = %v, want %v", got.M, paperSort.M)
	}
	if math.Abs(got.B-paperSort.B)/paperSort.B > 1e-6 {
		t.Errorf("b = %v, want %v", got.B, paperSort.B)
	}
}

func TestCalibrateNapierianLogExact(t *testing.T) {
	p1 := Point{X: 2, Y: paperPageRank.MustEval(2)}
	p2 := Point{X: 20, Y: paperPageRank.MustEval(20)}
	got, err := Calibrate(NapierianLog, p1, p2)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if !almostEqual(got.M, paperPageRank.M, 1e-9) || !almostEqual(got.B, paperPageRank.B, 1e-9) {
		t.Errorf("calibrated %v, want %v", got, paperPageRank)
	}
}

func TestCalibrateSwapsPoints(t *testing.T) {
	truth := Func{Family: LinearPower, M: 1, B: 1}
	// Points given in descending X order must still calibrate.
	got, err := Calibrate(LinearPower, Point{X: 10, Y: 10}, Point{X: 5, Y: 5})
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if !almostEqual(got.B, truth.B, 1e-9) {
		t.Errorf("b = %v", got.B)
	}
}

func TestCalibrateDegenerate(t *testing.T) {
	cases := [][2]Point{
		{{X: 1, Y: 1}, {X: 1, Y: 2}},  // equal X
		{{X: 0, Y: 1}, {X: 2, Y: 2}},  // zero X
		{{X: 1, Y: 0}, {X: 2, Y: 2}},  // zero Y
		{{X: 1, Y: -1}, {X: 2, Y: 2}}, // negative Y
		{{X: -1, Y: 1}, {X: 2, Y: 2}}, // negative X
	}
	for _, fam := range Families {
		for _, c := range cases {
			if _, err := Calibrate(fam, c[0], c[1]); !errors.Is(err, ErrDegenerateCalibration) {
				t.Errorf("%v %v: want ErrDegenerateCalibration, got %v", fam, c, err)
			}
		}
	}
	if _, err := Calibrate(Family(42), Point{X: 1, Y: 1}, Point{X: 2, Y: 2}); err == nil {
		t.Error("unknown family must error")
	}
}

func TestCalibrateExponentialInfeasible(t *testing.T) {
	// Super-linear growth (y ratio > x ratio) cannot come from a saturating
	// exponential.
	_, err := Calibrate(Exponential, Point{X: 1, Y: 1}, Point{X: 2, Y: 5})
	if !errors.Is(err, ErrInfeasibleCalibration) {
		t.Errorf("want ErrInfeasibleCalibration, got %v", err)
	}
	// Flat footprints mean the curve is saturated: calibration returns a
	// plateau at the observed level rather than failing.
	fn, err := Calibrate(Exponential, Point{X: 1, Y: 2}, Point{X: 2, Y: 2})
	if err != nil {
		t.Fatalf("flat observations should calibrate as saturated: %v", err)
	}
	if y := fn.MustEval(100); math.Abs(y-2) > 1e-6 {
		t.Errorf("saturated plateau = %v, want 2", y)
	}
}

func TestCalibrateWithFallback(t *testing.T) {
	// Infeasible for exponential, feasible for linear-power.
	fn, err := CalibrateWithFallback(Exponential, Point{X: 1, Y: 1}, Point{X: 2, Y: 5})
	if err != nil {
		t.Fatalf("CalibrateWithFallback: %v", err)
	}
	if fn.Family == Exponential {
		t.Errorf("fallback did not switch family: %v", fn)
	}
	// Degenerate points fail outright, no fallback.
	if _, err := CalibrateWithFallback(Exponential, Point{X: 1, Y: 1}, Point{X: 1, Y: 1}); !errors.Is(err, ErrDegenerateCalibration) {
		t.Errorf("want ErrDegenerateCalibration, got %v", err)
	}
}

// Property: calibration from two exact points of a random family member
// recovers a function that agrees with the truth across the whole sweep.
func TestCalibrateRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var truth Func
		switch r.Intn(3) {
		case 0:
			truth = Func{Family: LinearPower, M: 0.01 + r.Float64(), B: 0.5 + r.Float64()}
		case 1:
			truth = Func{Family: Exponential, M: 1 + 30*r.Float64(), B: 0.05 + 5*r.Float64()}
		default:
			truth = Func{Family: NapierianLog, M: 5 + 20*r.Float64(), B: 0.5 + 3*r.Float64()}
		}
		x1 := 0.02 + r.Float64()*0.05
		x2 := 2 * x1
		y1, err1 := truth.Eval(x1)
		y2, err2 := truth.Eval(x2)
		if err1 != nil || err2 != nil || y1 <= 0 || y2 <= 0 {
			return true // skip degenerate draw
		}
		got, err := Calibrate(truth.Family, Point{X: x1, Y: y1}, Point{X: x2, Y: y2})
		if err != nil {
			return true // infeasible draws are acceptable to skip
		}
		for _, x := range []float64{x1, x2, 5 * x2, 50 * x2} {
			want, errW := truth.Eval(x)
			have, errH := got.Eval(x)
			if errW != nil || errH != nil {
				continue
			}
			if want > 1e-9 && math.Abs(have-want)/want > 0.02 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Invert is the right inverse of Eval wherever finite.
func TestInvertProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fams := []Func{
			{Family: LinearPower, M: 0.01 + r.Float64(), B: 0.5 + r.Float64()},
			{Family: Exponential, M: 1 + 30*r.Float64(), B: 0.05 + 5*r.Float64()},
			{Family: NapierianLog, M: 5 + 20*r.Float64(), B: 0.5 + 3*r.Float64()},
		}
		for _, fn := range fams {
			budget := 0.1 + r.Float64()*10
			x, err := fn.Invert(budget)
			if err != nil {
				return false
			}
			if math.IsInf(x, 1) || x == 0 {
				continue
			}
			y, err := fn.Eval(x)
			if err != nil {
				continue
			}
			if math.Abs(y-budget) > 1e-6*math.Max(1, budget) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(100))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFuncString(t *testing.T) {
	for _, fn := range []Func{paperSort, paperPageRank, {Family: LinearPower, M: 1, B: 1}, {Family: Family(9)}} {
		if fn.String() == "" {
			t.Error("empty String()")
		}
	}
}
