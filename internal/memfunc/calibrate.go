package memfunc

import (
	"errors"
	"fmt"
	"math"
)

// Calibration errors.
var (
	// ErrDegenerateCalibration is returned when the two profiling points do
	// not determine the coefficients (equal X, non-positive values, ...).
	ErrDegenerateCalibration = errors.New("memfunc: degenerate calibration points")
	// ErrInfeasibleCalibration is returned when no member of the family can
	// pass through the two points (e.g. a saturating exponential through a
	// super-linear pair). Callers should fall back to another family or a
	// conservative policy, as the paper's runtime falls back when the KNN
	// confidence is low.
	ErrInfeasibleCalibration = errors.New("memfunc: points infeasible for family")
)

// Calibrate instantiates the two coefficients (m, b) of the given family from
// exactly two profiling observations. This is the paper's runtime model
// calibration: the application is run on 5 % and 10 % of the input items and
// the measured footprints pin down the curve.
func Calibrate(family Family, p1, p2 Point) (Func, error) {
	if p1.X > p2.X {
		p1, p2 = p2, p1
	}
	if p1.X <= 0 || p2.X <= 0 || p1.X == p2.X {
		return Func{}, ErrDegenerateCalibration
	}
	if p1.Y <= 0 || p2.Y <= 0 {
		return Func{}, ErrDegenerateCalibration
	}
	switch family {
	case LinearPower:
		return calibrateLinearPower(p1, p2)
	case Exponential:
		return calibrateExponential(p1, p2)
	case NapierianLog:
		return calibrateNapierianLog(p1, p2)
	default:
		return Func{}, fmt.Errorf("memfunc: unknown family %d", int(family))
	}
}

func calibrateLinearPower(p1, p2 Point) (Func, error) {
	// y = m + b*x through both points.
	b := (p2.Y - p1.Y) / (p2.X - p1.X)
	m := p1.Y - b*p1.X
	if math.IsNaN(b) || math.IsInf(b, 0) {
		return Func{}, ErrDegenerateCalibration
	}
	return Func{Family: LinearPower, M: m, B: b}, nil
}

func calibrateNapierianLog(p1, p2 Point) (Func, error) {
	// y = m + b ln x through both points.
	b := (p2.Y - p1.Y) / (math.Log(p2.X) - math.Log(p1.X))
	m := p1.Y - b*math.Log(p1.X)
	if math.IsNaN(b) || math.IsInf(b, 0) {
		return Func{}, ErrDegenerateCalibration
	}
	return Func{Family: NapierianLog, M: m, B: b}, nil
}

func calibrateExponential(p1, p2 Point) (Func, error) {
	// y = m (1 - e^{-bx}). The footprint ratio
	//   rho(b) = (1 - e^{-b x2}) / (1 - e^{-b x1})
	// decreases monotonically from x2/x1 (b -> 0) to 1 (b -> inf), so the
	// observed ratio y2/y1 must lie strictly inside (1, x2/x1).
	target := p2.Y / p1.Y
	upper := p2.X / p1.X
	if target <= 1 {
		// Flat (or noise-decreasing) observations mean the curve is already
		// saturated at both profiling sizes: the amplitude is the observed
		// plateau and the rate is fast enough to saturate well before p1.
		m := p1.Y
		if p2.Y > m {
			m = p2.Y
		}
		return Func{Family: Exponential, M: m, B: 5 / p1.X}, nil
	}
	if target >= upper {
		return Func{}, ErrInfeasibleCalibration
	}
	rho := func(b float64) float64 {
		return (1 - math.Exp(-b*p2.X)) / (1 - math.Exp(-b*p1.X))
	}
	// Bracket the root: rho is decreasing, find lo with rho(lo) > target and
	// hi with rho(hi) < target.
	lo, hi := 1e-12, 1.0
	for rho(hi) > target {
		hi *= 2
		if hi > 1e15 {
			return Func{}, ErrInfeasibleCalibration
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if rho(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	b := (lo + hi) / 2
	den := 1 - math.Exp(-b*p1.X)
	if den <= 0 {
		return Func{}, ErrInfeasibleCalibration
	}
	m := p1.Y / den
	if m <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
		return Func{}, ErrInfeasibleCalibration
	}
	return Func{Family: Exponential, M: m, B: b}, nil
}

// CalibrateWithFallback calibrates the predicted family, and if the two
// observations are infeasible for it, retries the remaining families in
// order of plausibility. This mirrors the paper's graceful-degradation note:
// a bad expert pick should degrade accuracy, not crash the scheduler.
func CalibrateWithFallback(family Family, p1, p2 Point) (Func, error) {
	fn, err := Calibrate(family, p1, p2)
	if err == nil {
		return fn, nil
	}
	if errors.Is(err, ErrDegenerateCalibration) {
		return Func{}, err
	}
	for _, alt := range Families {
		if alt == family {
			continue
		}
		if fn, altErr := Calibrate(alt, p1, p2); altErr == nil {
			return fn, nil
		}
	}
	return Func{}, err
}
