package memfunc

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"moespark/internal/mathx"
)

// Point is one profiling observation: input size X and measured executor
// memory footprint Y (both in GB).
type Point struct {
	X, Y float64
}

// Fit holds a fitted memory function together with goodness-of-fit metrics
// computed on the fitting data. RelRMSE is the root-mean-square *relative*
// error; because profiled input sizes span six decades, relative error is the
// scale-balanced criterion for choosing between families (and matches the
// paper's "average error of 5 %" reporting).
type Fit struct {
	Func    Func
	R2      float64
	RMSE    float64
	RelRMSE float64
}

// ErrInsufficientData is returned when fewer than two usable points are
// supplied to a fitting routine.
var ErrInsufficientData = errors.New("memfunc: need at least 2 distinct profiling points")

// FitFamily fits the coefficients of one family to the profiling points by
// least squares (closed-form for the linearisable families, a bounded 1-D
// search for the exponential family).
func FitFamily(family Family, pts []Point) (Fit, error) {
	usable := filterUsable(family, pts)
	if len(usable) < 2 {
		return Fit{}, ErrInsufficientData
	}
	var fn Func
	switch family {
	case LinearPower:
		f, err := fitLinearPower(usable)
		if err != nil {
			return Fit{}, err
		}
		fn = f
	case Exponential:
		f, err := fitExponential(usable)
		if err != nil {
			return Fit{}, err
		}
		fn = f
	case NapierianLog:
		f, err := fitNapierianLog(usable)
		if err != nil {
			return Fit{}, err
		}
		fn = f
	default:
		return Fit{}, fmt.Errorf("memfunc: unknown family %d", int(family))
	}
	r2, rmse, relRMSE := goodness(fn, usable)
	return Fit{Func: fn, R2: r2, RMSE: rmse, RelRMSE: relRMSE}, nil
}

// BestFit fits every family and returns the fit with the smallest relative
// RMSE, which is how the offline training phase assigns each training program
// its memory-function label. Because the saturating exponential degenerates
// to a straight line for small b*x, a later family only displaces an earlier
// one when it improves the criterion by a clear margin (Occam tie-break);
// otherwise noise would routinely relabel linear programs as exponential.
func BestFit(pts []Point) (Fit, error) {
	const improvement = 0.90 // must cut relative RMSE by >10 % to displace
	var best Fit
	var found bool
	var firstErr error
	for _, fam := range Families {
		fit, err := FitFamily(fam, pts)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !found || fit.RelRMSE < best.RelRMSE*improvement {
			best = fit
			found = true
		}
	}
	if !found {
		if firstErr == nil {
			firstErr = ErrInsufficientData
		}
		return Fit{}, firstErr
	}
	return best, nil
}

func filterUsable(family Family, pts []Point) []Point {
	out := make([]Point, 0, len(pts))
	for _, p := range pts {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			continue
		}
		if p.X <= 0 || p.Y <= 0 {
			continue // all three families are fitted in the positive quadrant
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	// Drop duplicate X values, keeping the first.
	dedup := out[:0]
	var lastX float64
	for i, p := range out {
		if i > 0 && p.X == lastX {
			continue
		}
		dedup = append(dedup, p)
		lastX = p.X
	}
	return dedup
}

// fitLinearPower solves y = m + b*x by least squares on *relative*
// residuals (each row weighted by 1/y): profiled sizes span six decades, and
// unweighted least squares would let the largest footprints drown out the
// small-input behaviour the scheduler also depends on.
func fitLinearPower(pts []Point) (Func, error) {
	a := mathx.NewMatrix(len(pts), 2)
	b := make([]float64, len(pts))
	for i, p := range pts {
		a.Set(i, 0, 1/p.Y)
		a.Set(i, 1, p.X/p.Y)
		b[i] = 1
	}
	coef, err := mathx.LeastSquares(a, b)
	if err != nil {
		return Func{}, fmt.Errorf("memfunc: linear fit: %w", err)
	}
	return Func{Family: LinearPower, M: coef[0], B: coef[1]}, nil
}

// fitNapierianLog solves y = m + b ln x by least squares on relative
// residuals (see fitLinearPower for the weighting rationale).
func fitNapierianLog(pts []Point) (Func, error) {
	a := mathx.NewMatrix(len(pts), 2)
	b := make([]float64, len(pts))
	for i, p := range pts {
		a.Set(i, 0, 1/p.Y)
		a.Set(i, 1, math.Log(p.X)/p.Y)
		b[i] = 1
	}
	coef, err := mathx.LeastSquares(a, b)
	if err != nil {
		return Func{}, fmt.Errorf("memfunc: napierian-log fit: %w", err)
	}
	return Func{Family: NapierianLog, M: coef[0], B: coef[1]}, nil
}

// fitExponential fits y = m (1 - e^{-b x}). For a fixed rate b the optimal
// amplitude has the closed form m = Σ y g / Σ g² with g = 1 - e^{-b x}, so a
// golden-section search over log(b) suffices.
func fitExponential(pts []Point) (Func, error) {
	sse := func(bRate float64) (float64, float64) {
		// Closed-form amplitude under 1/y^2 weighting: minimize
		// sum ((y - m g)/y)^2 => m = sum(g/y) / sum(g^2/y^2).
		var syg, sgg float64
		for _, p := range pts {
			g := 1 - math.Exp(-bRate*p.X)
			syg += g / p.Y
			sgg += (g / p.Y) * (g / p.Y)
		}
		if sgg == 0 {
			return 0, math.Inf(1)
		}
		m := syg / sgg
		var e float64
		for _, p := range pts {
			d := p.Y - m*(1-math.Exp(-bRate*p.X))
			e += d * d
		}
		return m, e
	}
	// Search b over a generous log-spaced range; input sizes span roughly
	// 1e-5 GB to 1e3 GB in this system, so rates from 1e-6 to 1e6 cover all
	// plausible saturation points.
	const lo, hi = -6.0, 6.0
	bestB, bestM, bestE := 0.0, 0.0, math.Inf(1)
	for i := 0; i <= 240; i++ {
		bRate := math.Pow(10, lo+(hi-lo)*float64(i)/240)
		m, e := sse(bRate)
		if e < bestE {
			bestB, bestM, bestE = bRate, m, e
		}
	}
	// Local refinement around the best grid cell.
	l := bestB / 2
	r := bestB * 2
	for i := 0; i < 60; i++ {
		m1 := l + (r-l)/3
		m2 := r - (r-l)/3
		_, e1 := sse(m1)
		_, e2 := sse(m2)
		if e1 < e2 {
			r = m2
		} else {
			l = m1
		}
	}
	finalB := (l + r) / 2
	m, e := sse(finalB)
	if e < bestE {
		bestB, bestM = finalB, m
	}
	if bestM <= 0 || math.IsInf(bestE, 1) {
		return Func{}, errors.New("memfunc: exponential fit did not converge")
	}
	return Func{Family: Exponential, M: bestM, B: bestB}, nil
}

// goodness computes R², RMSE and relative RMSE of fn on pts.
func goodness(fn Func, pts []Point) (r2, rmse, relRMSE float64) {
	var meanY float64
	for _, p := range pts {
		meanY += p.Y
	}
	meanY /= float64(len(pts))
	var ssRes, ssTot, ssRel float64
	for _, p := range pts {
		pred, err := fn.Eval(p.X)
		if err != nil {
			pred = 0
		}
		d := p.Y - pred
		ssRes += d * d
		t := p.Y - meanY
		ssTot += t * t
		rel := d / p.Y // pts are filtered to Y > 0
		ssRel += rel * rel
	}
	n := float64(len(pts))
	rmse = math.Sqrt(ssRes / n)
	relRMSE = math.Sqrt(ssRel / n)
	if ssTot == 0 {
		if ssRes == 0 {
			return 1, rmse, relRMSE
		}
		return 0, rmse, relRMSE
	}
	return 1 - ssRes/ssTot, rmse, relRMSE
}
