package experiments

import (
	"fmt"
	"math"

	"moespark/internal/classify"
	"moespark/internal/mathx"
	"moespark/internal/memfunc"
	"moespark/internal/workload"
)

// looExclusions returns the exclusion set for testing one benchmark under
// the paper's protocol: the benchmark itself plus equivalent implementations
// in other suites.
func looExclusions(b *workload.Benchmark) map[string]bool {
	ex := map[string]bool{b.FullName(): true}
	for _, n := range workload.EquivalentNames(b) {
		ex[n] = true
	}
	return ex
}

// Fig17Result reproduces Figure 17: predicted vs measured memory footprints
// for the 16 HiBench/BigDataBench benchmarks with ~280GB inputs, under
// leave-one-out cross-validation.
type Fig17Result struct {
	Rows []Fig17Row
	// MeanAbsErrPct is the average |error| (paper: ~5%).
	MeanAbsErrPct float64
}

// Fig17Row is one benchmark's prediction.
type Fig17Row struct {
	Name        string
	PredictedGB float64
	MeasuredGB  float64
	ErrPct      float64 // signed: positive = over-provision
}

// Fig17 runs the LOOCV prediction study. The footprint is evaluated at the
// per-executor data allocation a 280GB input implies.
func Fig17(ctx Context) (Fig17Result, error) {
	ctx = ctx.withDefaults()
	var out Fig17Result
	var absSum float64
	for i, b := range workload.TrainingSet() {
		model, rng, err := trainedMoE(ctx, looExclusions(b), 171+int64(i))
		if err != nil {
			return Fig17Result{}, err
		}
		s1, s2 := 1.0, 4.0
		pred, err := model.Predict(b.Counters(rng), b.ProfilePoint(s1, rng), b.ProfilePoint(s2, rng))
		if err != nil {
			return Fig17Result{}, fmt.Errorf("experiments: fig17 %s: %w", b.FullName(), err)
		}
		// Per-executor allocation for a 280GB input.
		x := 280.0 / float64(ctx.Cfg.NodesFor(280))
		got, err := pred.Func.Eval(x)
		if err != nil {
			return Fig17Result{}, err
		}
		truth := b.Footprint(x)
		errPct := (got - truth) / truth * 100
		absSum += math.Abs(errPct)
		out.Rows = append(out.Rows, Fig17Row{
			Name: b.FullName(), PredictedGB: got, MeasuredGB: truth, ErrPct: errPct,
		})
	}
	out.MeanAbsErrPct = absSum / float64(len(out.Rows))
	return out, nil
}

// Table renders Figure 17.
func (r Fig17Result) Table() Table {
	t := Table{
		Title:   "Figure 17: predicted vs measured memory footprints (~280GB, LOOCV)",
		Header:  []string{"benchmark", "predicted (GB)", "measured (GB)", "error"},
		Caption: fmt.Sprintf("Mean |error| %.1f%% (paper: ~5%%, worst ~12%%).", r.MeanAbsErrPct),
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Name, f1(row.PredictedGB), f1(row.MeasuredGB), pct(row.ErrPct)})
	}
	return t
}

// Table5Result reproduces Table 5: expert-selection accuracy for the
// alternative classifiers, evaluated with leave-one-out cross-validation
// over the training programs of all 44 benchmarks' feature observations.
type Table5Result struct {
	Rows []Table5Row
}

// Table5Row is one classifier's accuracy.
type Table5Row struct {
	Classifier  string
	AccuracyPct float64
}

// Table5 builds the labelled dataset (PCA-projected features -> true memory
// family) over the whole catalogue and scores every classifier with LOOCV.
func Table5(ctx Context) (Table5Result, error) {
	ctx = ctx.withDefaults()
	model, rng, err := trainedMoE(ctx, nil, 181)
	if err != nil {
		return Table5Result{}, err
	}
	pipeline := model.Pipeline()
	var samples []classify.Sample
	for _, b := range workload.Catalog() {
		// Two independent observations per benchmark to give the folds
		// within-program variance, as repeated profiling runs would.
		for k := 0; k < 2; k++ {
			pcs, err := pipeline.Transform(b.Counters(rng))
			if err != nil {
				return Table5Result{}, err
			}
			samples = append(samples, classify.Sample{X: pcs, Label: int(b.Truth.Family)})
		}
	}
	reg := classify.Registry(ctx.Seed + 182)
	var out Table5Result
	for _, name := range classify.RegistryNames() {
		factory := reg[name]
		// LOOCV folds are independent (each factory call builds a fresh,
		// identically-seeded classifier), so fanning them out keeps the
		// accuracy identical to a serial evaluation.
		acc, err := classify.LeaveOneOutAccuracyParallel(factory, samples, ctx.workers())
		if err != nil {
			return Table5Result{}, fmt.Errorf("experiments: table5 %s: %w", name, err)
		}
		out.Rows = append(out.Rows, Table5Row{Classifier: name, AccuracyPct: acc * 100})
	}
	return out, nil
}

// Table renders Table 5.
func (r Table5Result) Table() Table {
	t := Table{
		Title:   "Table 5: expert-selection accuracy per classifier (LOOCV)",
		Header:  []string{"classifier", "accuracy"},
		Caption: "Paper: NB 92.5, MLP 94.1, SVM 95.4, RF 95.5, DT 96.8, ANN 96.9, KNN 97.4 (%); KNN chosen because adding an expert needs no retraining.",
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Classifier, pct(row.AccuracyPct)})
	}
	return t
}

// Fig18Result reproduces Figure 18: predicted vs measured memory curves for
// the 16 training benchmarks across the input sweep, under LOOCV.
type Fig18Result struct {
	Curves []Fig18Curve
	// MeanAbsErrPct across all benchmarks and sweep points.
	MeanAbsErrPct float64
}

// Fig18Curve is one benchmark's predicted/measured series.
type Fig18Curve struct {
	Name      string
	Family    memfunc.Family
	InputGB   []float64
	Measured  []float64
	Predicted []float64
	// R2 of predicted vs measured over the sweep.
	R2 float64
}

// Fig18 predicts each training benchmark's curve with a LOOCV model and
// two-point calibration, then sweeps it.
func Fig18(ctx Context) (Fig18Result, error) {
	ctx = ctx.withDefaults()
	grid := []float64{0.3, 3, 30, 100, 280}
	var out Fig18Result
	var absSum float64
	var n int
	for i, b := range workload.TrainingSet() {
		model, rng, err := trainedMoE(ctx, looExclusions(b), 191+int64(i))
		if err != nil {
			return Fig18Result{}, err
		}
		pred, err := model.Predict(b.Counters(rng), b.ProfilePoint(1, rng), b.ProfilePoint(4, rng))
		if err != nil {
			return Fig18Result{}, fmt.Errorf("experiments: fig18 %s: %w", b.FullName(), err)
		}
		curve := Fig18Curve{Name: b.FullName(), Family: pred.Func.Family}
		var meas, predv []float64
		for _, x := range grid {
			truth := b.Footprint(x)
			if truth <= 0 {
				continue
			}
			got, err := pred.Func.Eval(x)
			if err != nil {
				continue
			}
			curve.InputGB = append(curve.InputGB, x)
			curve.Measured = append(curve.Measured, truth)
			curve.Predicted = append(curve.Predicted, got)
			meas = append(meas, truth)
			predv = append(predv, got)
			absSum += math.Abs(got-truth) / truth * 100
			n++
		}
		curve.R2 = r2Of(meas, predv)
		out.Curves = append(out.Curves, curve)
	}
	if n > 0 {
		out.MeanAbsErrPct = absSum / float64(n)
	}
	return out, nil
}

func r2Of(measured, predicted []float64) float64 {
	if len(measured) < 2 {
		return 0
	}
	mean := mathx.Mean(measured)
	var ssRes, ssTot float64
	for i := range measured {
		d := measured[i] - predicted[i]
		ssRes += d * d
		t := measured[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Table renders Figure 18.
func (r Fig18Result) Table() Table {
	t := Table{
		Title:   "Figure 18: predicted vs measured memory curves (LOOCV, 2-point calibration)",
		Header:  []string{"benchmark", "family", "input(GB)", "measured", "predicted"},
		Caption: fmt.Sprintf("Mean |error| across curves: %.1f%%.", r.MeanAbsErrPct),
	}
	for _, c := range r.Curves {
		for i := range c.InputGB {
			fam := ""
			if i == 0 {
				fam = c.Family.String()
			}
			t.Rows = append(t.Rows, []string{c.Name, fam, f1(c.InputGB[i]), f2(c.Measured[i]), f2(c.Predicted[i])})
		}
	}
	return t
}
