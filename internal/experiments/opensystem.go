package experiments

import (
	"fmt"
	"math/rand"

	"moespark/internal/cluster"
	"moespark/internal/metrics"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

// openSystemRates are the offered loads of the open-system study, in jobs
// per hour. The low end is comfortably inside every scheme's capacity; the
// high end exceeds what serial isolated execution can drain, so queueing
// differences between the co-location policies become visible.
var openSystemRates = []float64{20, 40, 80, 160}

// openSystemApps is the stream length per run.
const openSystemApps = 30

// OpenSystemResult is the open-system scheduling study: Poisson job arrivals
// at rising rates, compared across co-location schemes on queueing metrics
// rather than closed-batch STP.
type OpenSystemResult struct {
	// AppsPerStream is the number of jobs per arrival stream.
	AppsPerStream int
	// Streams is how many independent streams were averaged per rate.
	Streams int
	// Rates holds one point per offered load.
	Rates []OpenRatePoint
}

// OpenRatePoint is one offered load evaluated under every scheme.
type OpenRatePoint struct {
	// JobsPerHour is the configured Poisson arrival rate.
	JobsPerHour float64
	// Schemes holds per-scheme queueing outcomes, in openSystemSchemes order.
	Schemes []OpenSchemeResult
}

// OpenSchemeResult aggregates one scheme's queueing behaviour at one rate,
// averaged across the independent streams.
type OpenSchemeResult struct {
	Scheme string
	// MeanWaitSec is the average time from submission to execution start.
	MeanWaitSec float64
	// MeanSojournSec is the average time in system.
	MeanSojournSec float64
	// P95SojournSec is the mean (across streams) of the per-stream p95
	// sojourn time.
	P95SojournSec float64
	// ThroughputJobsPerHour is the achieved completion rate.
	ThroughputJobsPerHour float64
	// OOMKills sums executor OOM kills across streams.
	OOMKills int
}

func openSystemSchemes(ctx Context) (schemeSet, error) {
	moeModel, _, err := trainedMoE(ctx, nil, 201)
	if err != nil {
		return schemeSet{}, err
	}
	quasarModel, err := sched.TrainQuasar(workload.TrainingSet(), ctx.rng(202))
	if err != nil {
		return schemeSet{}, err
	}
	return schemeSet{
		names: []string{"Isolated", "Pairwise", "Quasar", "MoE"},
		factories: map[string]func(int64) cluster.Scheduler{
			"Isolated": func(int64) cluster.Scheduler { return sched.NewIsolated() },
			"Pairwise": func(int64) cluster.Scheduler { return sched.NewPairwise() },
			"Quasar": func(seed int64) cluster.Scheduler {
				return sched.NewQuasar(quasarModel, rand.New(rand.NewSource(seed)))
			},
			"MoE": func(seed int64) cluster.Scheduler {
				return sched.NewMoE(moeModel, rand.New(rand.NewSource(seed)))
			},
		},
	}, nil
}

// OpenSystem runs the open-system comparison: for each arrival rate, several
// independent Poisson streams are replayed through the event engine under
// each scheme, and the queueing metrics are averaged. (rate, stream) units
// fan out over the concurrent runner with per-unit seeds.
func OpenSystem(ctx Context) (OpenSystemResult, error) {
	ctx = ctx.withDefaults()
	set, err := openSystemSchemes(ctx)
	if err != nil {
		return OpenSystemResult{}, err
	}
	streams := ctx.MixesPerScenario / 4
	if streams < 1 {
		streams = 1
	}
	type unit struct {
		qs  []metrics.QueueMetrics // per scheme
		oom []int
	}
	units := make([]unit, len(openSystemRates)*streams)
	err = forEachIndexed(ctx.workers(), len(units), func(item int) error {
		ri, si := item/streams, item%streams
		rate := openSystemRates[ri]
		streamSeed := ctx.Seed*2_000_003 + int64(ri)*4013 + int64(si)
		arrivals, err := workload.PoissonArrivals(openSystemApps, rate/3600, rand.New(rand.NewSource(streamSeed)))
		if err != nil {
			return err
		}
		subs := cluster.Submissions(arrivals)
		u := unit{qs: make([]metrics.QueueMetrics, len(set.names)), oom: make([]int, len(set.names))}
		for ni, name := range set.names {
			c := cluster.New(ctx.Cfg)
			res, err := c.RunOpen(subs, set.factories[name](streamSeed+int64(len(name))))
			if err != nil {
				return fmt.Errorf("experiments: open system %.0f jobs/h under %s: %w", rate, name, err)
			}
			q, err := metrics.Queueing(res, 0)
			if err != nil {
				return err
			}
			u.qs[ni] = q
			u.oom[ni] = res.OOMKills
		}
		units[item] = u
		return nil
	})
	if err != nil {
		return OpenSystemResult{}, err
	}

	out := OpenSystemResult{AppsPerStream: openSystemApps, Streams: streams}
	for ri, rate := range openSystemRates {
		point := OpenRatePoint{JobsPerHour: rate}
		for ni, name := range set.names {
			var agg OpenSchemeResult
			agg.Scheme = name
			for si := 0; si < streams; si++ {
				u := units[ri*streams+si]
				agg.MeanWaitSec += u.qs[ni].MeanWaitSec
				agg.MeanSojournSec += u.qs[ni].MeanSojournSec
				agg.P95SojournSec += u.qs[ni].P95SojournSec
				agg.ThroughputJobsPerHour += u.qs[ni].ThroughputJobsPerHour
				agg.OOMKills += u.oom[ni]
			}
			n := float64(streams)
			agg.MeanWaitSec /= n
			agg.MeanSojournSec /= n
			agg.P95SojournSec /= n
			agg.ThroughputJobsPerHour /= n
			point.Schemes = append(point.Schemes, agg)
		}
		out.Rates = append(out.Rates, point)
	}
	return out, nil
}

// Tables renders the open-system study: mean wait, p95 sojourn and achieved
// throughput per offered load.
func (r OpenSystemResult) Tables() []Table {
	names := []string{}
	if len(r.Rates) > 0 {
		for _, s := range r.Rates[0].Schemes {
			names = append(names, s.Scheme)
		}
	}
	header := append([]string{"jobs/hour"}, names...)
	wait := Table{
		Title:   "Open system: mean queue wait (s) vs offered load",
		Header:  header,
		Caption: fmt.Sprintf("Poisson arrivals, %d-app streams, %d streams per rate.", r.AppsPerStream, r.Streams),
	}
	p95 := Table{Title: "Open system: p95 sojourn time (s) vs offered load", Header: header}
	thr := Table{Title: "Open system: achieved throughput (jobs/hour) vs offered load", Header: header}
	for _, pt := range r.Rates {
		wRow := []string{f1(pt.JobsPerHour)}
		pRow := []string{f1(pt.JobsPerHour)}
		tRow := []string{f1(pt.JobsPerHour)}
		for _, s := range pt.Schemes {
			wRow = append(wRow, f1(s.MeanWaitSec))
			pRow = append(pRow, f1(s.P95SojournSec))
			tRow = append(tRow, f1(s.ThroughputJobsPerHour))
		}
		wait.Rows = append(wait.Rows, wRow)
		p95.Rows = append(p95.Rows, pRow)
		thr.Rows = append(thr.Rows, tRow)
	}
	return []Table{wait, p95, thr}
}
