package experiments

import (
	"strings"
	"testing"
)

// driftCtx pins the adaptation study's test setup: two streams per point
// (the default `reproduce -exp drift` shape) at the default seed.
func driftCtx() Context {
	ctx := DefaultContext()
	ctx.MixesPerScenario = 16
	return ctx
}

// The study's headline claim: under drifting workloads the feedback-driven
// pipeline improves the p99 sojourn tail over predict-once (aggregated over
// the offered loads — single points are dominated by whichever stream drew
// an unlucky heap-thrash victim).
func TestDriftAdaptiveImprovesTail(t *testing.T) {
	r, err := Drift(driftCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workloads) != 2 {
		t.Fatalf("%d workloads, want 2", len(r.Workloads))
	}
	for _, wr := range r.Workloads {
		if len(wr.Rates) != len(driftRates) {
			t.Fatalf("%s: %d rate points, want %d", wr.Workload, len(wr.Rates), len(driftRates))
		}
		var static, adaptive float64
		for _, pt := range wr.Rates {
			bySch := map[string]DriftSchemeResult{}
			for _, s := range pt.Schemes {
				bySch[s.Scheme] = s
				if s.MeanSojournSec <= 0 || s.P99SojournSec <= 0 || s.ThroughputJobsPerHour <= 0 {
					t.Errorf("%s at %.0f jobs/h: degenerate result %+v", s.Scheme, pt.JobsPerHour, s)
				}
			}
			for _, name := range []string{"MoE-static", "MoE-adaptive", "Oracle"} {
				if _, ok := bySch[name]; !ok {
					t.Fatalf("%s at %.0f jobs/h: scheme %s missing", wr.Workload, pt.JobsPerHour, name)
				}
			}
			static += bySch["MoE-static"].P99SojournSec
			adaptive += bySch["MoE-adaptive"].P99SojournSec
			// Ground truth without profiling cost bounds both from below.
			if o := bySch["Oracle"].P99SojournSec; o > bySch["MoE-adaptive"].P99SojournSec*1.05 &&
				o > bySch["MoE-static"].P99SojournSec*1.05 {
				t.Errorf("%s at %.0f jobs/h: Oracle p99 %v above both predictors", wr.Workload, pt.JobsPerHour, o)
			}
		}
		if adaptive >= static {
			t.Errorf("%s: adaptive aggregate p99 %.1f did not improve on static %.1f", wr.Workload, adaptive, static)
		}
	}
	tables := r.Tables()
	if len(tables) != 3 || !strings.Contains(tables[0].String(), "p99") {
		t.Error("drift tables broken")
	}
}

// Adaptation state lives inside per-run predictor instances, so the study
// must stay bit-identical at any worker count.
func TestDriftDeterministicAcrossWorkerCounts(t *testing.T) {
	ctx := driftCtx()
	if testing.Short() {
		ctx.MixesPerScenario = 8
	}
	ctx.Workers = 1
	a, err := Drift(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Workers = 4
	b, err := Drift(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Workloads) != len(b.Workloads) {
		t.Fatal("workload counts differ")
	}
	for i := range a.Workloads {
		for j := range a.Workloads[i].Rates {
			for k := range a.Workloads[i].Rates[j].Schemes {
				x := a.Workloads[i].Rates[j].Schemes[k]
				y := b.Workloads[i].Rates[j].Schemes[k]
				if x != y {
					t.Errorf("%s rate %d scheme %s: %+v vs %+v",
						a.Workloads[i].Workload, j, x.Scheme, x, y)
				}
			}
		}
	}
}
