package experiments

import (
	"strings"
	"testing"

	"moespark/internal/memfunc"
	"moespark/internal/workload"
)

// quickCtx keeps experiment tests fast. Under -short the mix counts shrink
// further; CI runs the full suite, `go test -short` is the quick local loop.
func quickCtx() Context {
	ctx := DefaultContext()
	ctx.MixesPerScenario = 2
	if testing.Short() {
		ctx.MixesPerScenario = 1
	}
	return ctx
}

func TestFig3CurvesMatchPaperFamilies(t *testing.T) {
	r, err := Fig3(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("got %d curves, want 2", len(r.Benchmarks))
	}
	if r.Benchmarks[0].Fitted.Family != memfunc.Exponential {
		t.Errorf("Sort fitted as %v, want exponential", r.Benchmarks[0].Fitted.Family)
	}
	if r.Benchmarks[1].Fitted.Family != memfunc.NapierianLog {
		t.Errorf("PageRank fitted as %v, want napierian log", r.Benchmarks[1].Fitted.Family)
	}
	for _, c := range r.Benchmarks {
		if c.R2 < 0.99 {
			t.Errorf("%s fit R2 = %v", c.Name, c.R2)
		}
		for i := range c.InputGB {
			rel := (c.Predicted[i] - c.Observed[i]) / c.Observed[i]
			if rel > 0.2 || rel < -0.2 {
				t.Errorf("%s at %vGB: predicted %v vs observed %v", c.Name, c.InputGB[i], c.Predicted[i], c.Observed[i])
			}
		}
	}
	if !strings.Contains(r.Table().String(), "Figure 3") {
		t.Error("table rendering broken")
	}
}

func TestFig4VarianceConcentratesInTopPCs(t *testing.T) {
	r, err := Fig4(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if r.KeptComponents < 1 || r.KeptComponents > 5 {
		t.Errorf("kept %d PCs, want 1..5", r.KeptComponents)
	}
	var top5 float64
	for i := 0; i < 5 && i < len(r.ExplainedPct); i++ {
		top5 += r.ExplainedPct[i]
	}
	if top5 < 80 {
		t.Errorf("top-5 PCs explain %.1f%%, want >= 80%% (paper: 95%%)", top5)
	}
	if len(r.Importances) == 0 {
		t.Fatal("no importances")
	}
	// The top features should be among the cache/memory counters the paper
	// identifies (L1_TCM, L1_DCM, vcache, L1_STM, bo, cs and friends).
	driven := map[string]bool{
		"L1_TCM": true, "L1_DCM": true, "vcache": true, "L1_STM": true,
		"bo": true, "L2_TCM": true, "L3_TCM": true, "cs": true,
	}
	hits := 0
	for i := 0; i < 5; i++ {
		if driven[r.Importances[i].Name] {
			hits++
		}
	}
	if hits < 3 {
		t.Errorf("top-5 features %v, want cache features dominant", r.Importances[:5])
	}
}

func TestFig13Histogram(t *testing.T) {
	r := Fig13(quickCtx())
	total := 0
	over60 := 0
	under40 := 0
	for i, c := range r.BucketCounts {
		total += c
		if i >= 6 {
			over60 += c
		}
		if i < 4 {
			under40 += c
		}
	}
	if total != 44 {
		t.Fatalf("histogram covers %d benchmarks, want 44", total)
	}
	if over60 != 0 {
		t.Errorf("%d benchmarks above 60%% CPU, paper has none", over60)
	}
	if under40 < 30 {
		t.Errorf("only %d benchmarks under 40%%, paper has most there", under40)
	}
}

func TestFig16ClustersAreTight(t *testing.T) {
	r, err := Fig16(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 44 {
		t.Fatalf("projected %d points, want 44", len(r.Points))
	}
	if r.SeparationRatio < 3 {
		t.Errorf("cluster separation ratio %.2f, want >= 3 (visually distinct clusters)", r.SeparationRatio)
	}
	if r.PearsonOneFrac < 0.75 {
		t.Errorf("only %.0f%%%% of programs correlate ~1 with their cluster centre", r.PearsonOneFrac*100)
	}
	// Cluster centroids must be separated: mean PC1 per family ordered.
	sums := map[memfunc.Family][]float64{}
	for _, p := range r.Points {
		sums[p.Family] = append(sums[p.Family], p.PC1)
	}
	if len(sums) != 3 {
		t.Fatalf("expected 3 families, got %d", len(sums))
	}
}

func TestFig17PredictionAccuracy(t *testing.T) {
	r, err := Fig17(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 16 {
		t.Fatalf("%d rows, want 16", len(r.Rows))
	}
	if r.MeanAbsErrPct > 10 {
		t.Errorf("mean |error| %.1f%%, want <= 10%% (paper: ~5%%)", r.MeanAbsErrPct)
	}
	for _, row := range r.Rows {
		if row.ErrPct > 35 || row.ErrPct < -35 {
			t.Errorf("%s error %.1f%% out of range", row.Name, row.ErrPct)
		}
	}
}

func TestTable5AllClassifiersAccurate(t *testing.T) {
	if testing.Short() {
		// The LOOCV sweep over all seven classifiers dominates the suite's
		// wall-clock; CI runs it in full.
		t.Skip("skipping LOOCV classifier sweep in -short mode")
	}
	r, err := Table5(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("%d classifiers, want 7", len(r.Rows))
	}
	var knn float64
	var best float64
	for _, row := range r.Rows {
		if row.AccuracyPct < 85 {
			t.Errorf("%s accuracy %.1f%%, want >= 85%% (paper: >= 92.5%%)", row.Classifier, row.AccuracyPct)
		}
		if row.Classifier == "KNN" {
			knn = row.AccuracyPct
		}
		if row.AccuracyPct > best {
			best = row.AccuracyPct
		}
	}
	if knn < best-8 {
		t.Errorf("KNN accuracy %.1f%% should be comparable to the best (%.1f%%)", knn, best)
	}
}

func TestFig18CurveErrors(t *testing.T) {
	r, err := Fig18(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 16 {
		t.Fatalf("%d curves, want 16", len(r.Curves))
	}
	if r.MeanAbsErrPct > 12 {
		t.Errorf("mean curve error %.1f%%, want small", r.MeanAbsErrPct)
	}
	for _, c := range r.Curves {
		if len(c.InputGB) < 3 {
			t.Errorf("%s has only %d sweep points", c.Name, len(c.InputGB))
		}
	}
}

func TestFig6ShapeMatchesPaper(t *testing.T) {
	ctx := quickCtx()
	if !testing.Short() {
		ctx.MixesPerScenario = 3
	}
	r, err := Fig6(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 10 {
		t.Fatalf("%d scenarios, want 10", len(r.Scenarios))
	}
	geo := r.Geomean
	moe := geo["MoE"].NormalizedSTP
	oracle := geo["Oracle"].NormalizedSTP
	pair := geo["Pairwise"].NormalizedSTP
	if moe < 0.70*oracle || moe > 1.05*oracle {
		t.Errorf("MoE/Oracle = %.2f, want ~0.84", moe/oracle)
	}
	if pair >= moe {
		t.Errorf("Pairwise %.2f should trail MoE %.2f", pair, moe)
	}
	// STP grows with the scenario size (Figure 6a's overall trend).
	firstMoE := schemeSTP(r.Scenarios[0], "MoE")
	lastMoE := schemeSTP(r.Scenarios[9], "MoE")
	if lastMoE <= firstMoE {
		t.Errorf("MoE STP should grow from L1 (%.2f) to L10 (%.2f)", firstMoE, lastMoE)
	}
	// ANTT reductions positive at scale for our scheme.
	if geo["MoE"].ANTTReductionPct <= 0 {
		t.Errorf("MoE ANTT reduction %.1f%%, want positive (paper: 49%%)", geo["MoE"].ANTTReductionPct)
	}
	tables := r.Tables()
	if len(tables) != 2 || !strings.Contains(tables[0].String(), "L10") {
		t.Error("figure 6 tables broken")
	}
}

func schemeSTP(sr ScenarioResult, name string) float64 {
	for _, s := range sr.Schemes {
		if s.Scheme == name {
			return s.NormalizedSTP
		}
	}
	return 0
}

func TestFig9MoEBeatsUnifiedGeomean(t *testing.T) {
	ctx := quickCtx()
	r, err := Fig9(ctx)
	if err != nil {
		t.Fatal(err)
	}
	moe := r.Geomean["MoE"].NormalizedSTP
	for _, name := range []string{"Linear", "Exponential", "NapierianLog", "ANN"} {
		if r.Geomean[name].NormalizedSTP > moe*1.03 {
			t.Errorf("unified %s STP %.2f beats MoE %.2f", name, r.Geomean[name].NormalizedSTP, moe)
		}
	}
	if len(r.Tables()) != 2 {
		t.Error("tables broken")
	}
}

func TestFig10MoEBeatsOnlineSearch(t *testing.T) {
	ctx := quickCtx()
	r, err := Fig10(ctx)
	if err != nil {
		t.Fatal(err)
	}
	moe := r.Geomean["MoE"].NormalizedSTP
	online := r.Geomean["OnlineSearch"].NormalizedSTP
	if online >= moe {
		t.Errorf("online search %.2f should trail MoE %.2f", online, moe)
	}
}

func TestFig7UtilizationOrdering(t *testing.T) {
	r, err := Fig7(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Schemes) != 3 {
		t.Fatalf("%d schemes, want 3", len(r.Schemes))
	}
	byName := map[string]Fig7Scheme{}
	for _, s := range r.Schemes {
		byName[s.Scheme] = s
		if s.Trace == nil || len(s.Trace.Times) == 0 {
			t.Fatalf("%s has no trace", s.Scheme)
		}
	}
	// Our approach should finish the mix faster than Pairwise (paper: 1.46x).
	if byName["MoE"].MakespanMin >= byName["Pairwise"].MakespanMin {
		t.Errorf("MoE turnaround %.0fmin should beat Pairwise %.0fmin",
			byName["MoE"].MakespanMin, byName["Pairwise"].MakespanMin)
	}
	if byName["MoE"].STP <= byName["Pairwise"].STP {
		t.Errorf("MoE STP %.2f should beat Pairwise %.2f", byName["MoE"].STP, byName["Pairwise"].STP)
	}
}

func TestFig11OverheadModest(t *testing.T) {
	ctx := quickCtx()
	r, err := Fig11(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("%d rows, want 10", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.TotalMin <= 0 {
			t.Errorf("%s total time %.2f", row.Label, row.TotalMin)
		}
		oh := (row.FeatureMin + row.CalibrationMin) / row.TotalMin * 100
		if oh > 30 {
			t.Errorf("%s profiling overhead %.1f%%, want modest (paper: ~13%%)", row.Label, oh)
		}
	}
}

func TestFig12PerBenchmarkOverhead(t *testing.T) {
	r, err := Fig12(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 16 {
		t.Fatalf("%d rows, want 16", len(r.Rows))
	}
	for _, row := range r.Rows {
		oh := (row.FeatureMin + row.CalibrationMin) / row.TotalMin * 100
		if oh > 25 {
			t.Errorf("%s overhead %.1f%%, want < 25%% (paper: <13%%)", row.Name, oh)
		}
	}
}

func TestFig14SlowdownsBounded(t *testing.T) {
	r, err := Fig14(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Dists) != 16 {
		t.Fatalf("%d distributions, want 16", len(r.Dists))
	}
	if r.OverallMeanPct > 15 {
		t.Errorf("mean co-location slowdown %.1f%%, want <= 15%% (paper: <10%%)", r.OverallMeanPct)
	}
	if r.MaxPct > 40 {
		t.Errorf("max co-location slowdown %.1f%%, want <= 40%% (paper: <25%%)", r.MaxPct)
	}
}

func TestFig15ParsecSlowdownsBounded(t *testing.T) {
	r, err := Fig15(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Dists) != 12 {
		t.Fatalf("%d PARSEC distributions, want 12", len(r.Dists))
	}
	if r.MaxPct > 45 {
		t.Errorf("max PARSEC slowdown %.1f%%, want <= 45%% (paper: <30%%)", r.MaxPct)
	}
	for _, d := range r.Dists {
		if d.Median < 0 {
			t.Errorf("%s median slowdown negative", d.Name)
		}
	}
}

func TestWorkloadTable4RendersInContext(t *testing.T) {
	jobs, err := workload.Table4Mix()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 30 {
		t.Fatal("table 4 mix broken")
	}
}
