package experiments

import (
	"fmt"
	"sort"

	"moespark/internal/cluster"
	"moespark/internal/mathx"
	"moespark/internal/moe"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

// fig14TargetGB is the target input size for the interference study (see
// the Fig14 substitution note).
const fig14TargetGB = 45.0

// SlowdownDist summarises a slowdown distribution (the violin plots of
// Figures 14 and 15), in percent over isolated execution.
type SlowdownDist struct {
	Name   string
	Median float64
	P25    float64
	P75    float64
	Max    float64
	Mean   float64
}

func distFrom(name string, slowdowns []float64) SlowdownDist {
	return SlowdownDist{
		Name:   name,
		Median: mathx.Median(slowdowns),
		P25:    mathx.Percentile(slowdowns, 25),
		P75:    mathx.Percentile(slowdowns, 75),
		Max:    mathx.Percentile(slowdowns, 100),
		Mean:   mathx.Mean(slowdowns),
	}
}

// Fig14Result reproduces Figure 14: the slowdown distribution of each
// HiBench/BigDataBench benchmark when co-located with every other benchmark
// under our scheme, relative to isolated execution.
type Fig14Result struct {
	Dists []SlowdownDist
	// OverallMeanPct is the average slowdown across all pairs (paper: <10%).
	OverallMeanPct float64
	// MaxPct is the worst pairwise slowdown (paper: <25%).
	MaxPct float64
}

// Fig14 runs each of the 16 target benchmarks together with each of the
// other 43 benchmarks on a single host under our scheme. Substitution note:
// the paper uses ~280GB targets; our synthetic linear-family footprints do
// not saturate, so a 280GB working set cannot fit one simulated host. We use
// the largest input whose footprint fits a single node (45GB), which
// preserves the study's purpose — measuring co-location interference in the
// absence of memory exhaustion.
func Fig14(ctx Context) (Fig14Result, error) {
	ctx = ctx.withDefaults()
	moeModel, _, err := trainedMoE(ctx, nil, 141)
	if err != nil {
		return Fig14Result{}, err
	}
	// Single-host setup, as in the paper's interference study.
	cfg := ctx.Cfg
	cfg.Nodes = 1
	cfg.MaxExecutorNodes = 1

	var out Fig14Result
	var all []float64
	targets := workload.TrainingSet()
	catalog := workload.Catalog()
	for ti, target := range targets {
		// Isolated reference on the same single host.
		iso, err := singleHostTime(cfg, target, fig14TargetGB, moeModel, ctx, int64(ti))
		if err != nil {
			return Fig14Result{}, err
		}
		var slowdowns []float64
		for ci, co := range catalog {
			if co.FullName() == target.FullName() {
				continue
			}
			t, err := coLocatedTime(cfg, target, co, moeModel, ctx, int64(ti*100+ci))
			if err != nil {
				return Fig14Result{}, err
			}
			sd := (t/iso - 1) * 100
			if sd < 0 {
				sd = 0
			}
			slowdowns = append(slowdowns, sd)
			all = append(all, sd)
		}
		out.Dists = append(out.Dists, distFrom(target.FullName(), slowdowns))
	}
	out.OverallMeanPct = mathx.Mean(all)
	out.MaxPct = mathx.Percentile(all, 100)
	sort.Slice(out.Dists, func(i, j int) bool { return out.Dists[i].Name < out.Dists[j].Name })
	return out, nil
}

// singleHostTime runs the target alone on the single-host cluster under the
// MoE scheme and returns its turnaround.
func singleHostTime(cfg cluster.Config, b *workload.Benchmark, inputGB float64, model *moe.Model, ctx Context, salt int64) (float64, error) {
	c := cluster.New(cfg)
	res, err := c.Run([]workload.Job{{Bench: b, InputGB: inputGB}}, sched.NewMoE(model, ctx.rng(1410+salt)))
	if err != nil {
		return 0, fmt.Errorf("experiments: isolated %s: %w", b.FullName(), err)
	}
	return res.Apps[0].Turnaround(), nil
}

// coLocatedTime launches the target first and co-locates one competing
// workload, returning the target's turnaround.
func coLocatedTime(cfg cluster.Config, target, co *workload.Benchmark, model *moe.Model, ctx Context, salt int64) (float64, error) {
	c := cluster.New(cfg)
	jobs := []workload.Job{
		{Bench: target, InputGB: fig14TargetGB},
		{Bench: co, InputGB: 30},
	}
	res, err := c.Run(jobs, sched.NewMoE(model, ctx.rng(1420+salt)))
	if err != nil {
		return 0, fmt.Errorf("experiments: co-locating %s with %s: %w", target.FullName(), co.FullName(), err)
	}
	return res.Apps[0].Turnaround(), nil
}

// Table renders Figure 14.
func (r Fig14Result) Table() Table {
	t := Table{
		Title:   "Figure 14: co-location slowdown per target benchmark (vs isolated)",
		Header:  []string{"benchmark", "median %", "p25 %", "p75 %", "max %"},
		Caption: fmt.Sprintf("Overall mean %.1f%% (paper: <10%%), max %.1f%% (paper: <25%%).", r.OverallMeanPct, r.MaxPct),
	}
	for _, d := range r.Dists {
		t.Rows = append(t.Rows, []string{d.Name, f1(d.Median), f1(d.P25), f1(d.P75), f1(d.Max)})
	}
	return t
}

// Fig15Result reproduces Figure 15: the slowdown of computation-intensive
// PARSEC benchmarks when co-located with Spark tasks under our scheme.
type Fig15Result struct {
	Dists []SlowdownDist
	// MaxPct is the worst observed slowdown (paper: <30%).
	MaxPct float64
}

// Fig15 runs each PARSEC benchmark on a single host together with each of
// the 44 Spark benchmarks.
func Fig15(ctx Context) (Fig15Result, error) {
	ctx = ctx.withDefaults()
	moeModel, _, err := trainedMoE(ctx, nil, 151)
	if err != nil {
		return Fig15Result{}, err
	}
	cfg := ctx.Cfg
	cfg.Nodes = 1
	cfg.MaxExecutorNodes = 1

	var out Fig15Result
	for pi, p := range workload.ParsecSuite() {
		var slowdowns []float64
		for si, sb := range workload.Catalog() {
			c := cluster.New(cfg)
			ft, err := c.AddForeign(0, p.Name, p.CPULoad, p.MemoryGB, p.RuntimeSec)
			if err != nil {
				return Fig15Result{}, err
			}
			jobs := []workload.Job{{Bench: sb, InputGB: 30}}
			// PARSEC co-runners are plain OS processes outside YARN's
			// resource view, so the dispatcher's aggregate-CPU admission
			// rule cannot account for them — exactly the paper's setup,
			// where co-location proceeds and both sides share the cores.
			d := sched.NewMoE(moeModel, ctx.rng(1510+int64(pi*100+si)))
			d.CheckCPU = false
			if _, err := c.Run(jobs, d); err != nil {
				return Fig15Result{}, fmt.Errorf("experiments: fig15 %s+%s: %w", p.Name, sb.FullName(), err)
			}
			sd := (ft.DoneTime/p.RuntimeSec - 1) * 100
			if sd < 0 {
				sd = 0
			}
			slowdowns = append(slowdowns, sd)
		}
		dist := distFrom(p.Name, slowdowns)
		if dist.Max > out.MaxPct {
			out.MaxPct = dist.Max
		}
		out.Dists = append(out.Dists, dist)
	}
	return out, nil
}

// Table renders Figure 15.
func (r Fig15Result) Table() Table {
	t := Table{
		Title:   "Figure 15: PARSEC slowdown when co-running with Spark tasks",
		Header:  []string{"PARSEC benchmark", "median %", "p25 %", "p75 %", "max %"},
		Caption: fmt.Sprintf("Max slowdown %.1f%% (paper: <30%%, mostly <20%%).", r.MaxPct),
	}
	for _, d := range r.Dists {
		t.Rows = append(t.Rows, []string{d.Name, f1(d.Median), f1(d.P25), f1(d.P75), f1(d.Max)})
	}
	return t
}
