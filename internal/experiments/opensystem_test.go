package experiments

import (
	"strings"
	"testing"
)

func TestOpenSystemQueueingAcrossRates(t *testing.T) {
	ctx := quickCtx()
	ctx.MixesPerScenario = 4 // one stream per rate
	r, err := OpenSystem(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rates) != len(openSystemRates) {
		t.Fatalf("%d rate points, want %d", len(r.Rates), len(openSystemRates))
	}
	byName := func(pt OpenRatePoint, name string) OpenSchemeResult {
		for _, s := range pt.Schemes {
			if s.Scheme == name {
				return s
			}
		}
		t.Fatalf("scheme %s missing at %.0f jobs/h", name, pt.JobsPerHour)
		return OpenSchemeResult{}
	}
	for _, pt := range r.Rates {
		for _, s := range pt.Schemes {
			if s.MeanSojournSec <= 0 || s.P95SojournSec <= 0 {
				t.Errorf("%s at %.0f jobs/h: non-positive sojourn %+v", s.Scheme, pt.JobsPerHour, s)
			}
			if s.MeanWaitSec < 0 {
				t.Errorf("%s at %.0f jobs/h: negative wait", s.Scheme, pt.JobsPerHour)
			}
			if s.ThroughputJobsPerHour <= 0 {
				t.Errorf("%s at %.0f jobs/h: no throughput", s.Scheme, pt.JobsPerHour)
			}
		}
	}
	// Under the heaviest load the serial isolated baseline must queue far
	// worse than the co-locating MoE scheme — the point of the open system.
	heavy := r.Rates[len(r.Rates)-1]
	iso := byName(heavy, "Isolated")
	moe := byName(heavy, "MoE")
	if iso.MeanWaitSec <= moe.MeanWaitSec {
		t.Errorf("at %.0f jobs/h isolated wait %.0fs should exceed MoE wait %.0fs",
			heavy.JobsPerHour, iso.MeanWaitSec, moe.MeanWaitSec)
	}
	// Waiting under the serial baseline grows with the offered load.
	lightIso := byName(r.Rates[0], "Isolated")
	if lightIso.MeanWaitSec >= iso.MeanWaitSec {
		t.Errorf("isolated wait should rise with load: %.0fs at %.0f/h vs %.0fs at %.0f/h",
			lightIso.MeanWaitSec, r.Rates[0].JobsPerHour, iso.MeanWaitSec, heavy.JobsPerHour)
	}
	tables := r.Tables()
	if len(tables) != 3 || !strings.Contains(tables[0].String(), "jobs/hour") {
		t.Error("open-system tables broken")
	}
}

func TestOpenSystemDeterministicAcrossWorkerCounts(t *testing.T) {
	ctx := quickCtx()
	ctx.MixesPerScenario = 4
	ctx.Workers = 1
	a, err := OpenSystem(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Workers = 4
	b, err := OpenSystem(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rates) != len(b.Rates) {
		t.Fatal("rate point counts differ")
	}
	for i := range a.Rates {
		for j := range a.Rates[i].Schemes {
			x, y := a.Rates[i].Schemes[j], b.Rates[i].Schemes[j]
			if x != y {
				t.Errorf("rate %d scheme %s: %+v vs %+v", i, x.Scheme, x, y)
			}
		}
	}
}
