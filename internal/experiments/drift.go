package experiments

import (
	"fmt"
	"math/rand"

	"moespark/internal/cluster"
	"moespark/internal/metrics"
	"moespark/internal/moe"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

// driftRates are the offered loads of the adaptation study (jobs/hour). The
// low end leaves slack on every scheme; the high end queues hard enough
// that prediction quality shows up in the sojourn tail.
var driftRates = []float64{30, 60, 90}

// driftApps is the stream length per run: long enough that an adaptive
// predictor has observed outcomes to learn from well before the stream
// ends.
const driftApps = 60

// DriftGrowthStartGB / DriftGrowthFactor shape the gradual-input-growth
// scenario: jobs start around 2 GB (well inside the capped calibration
// volumes) and end ~50x larger, far beyond anything the profiling runs saw,
// while the drift cohort's counters shift toward the saturating cluster
// (DriftSkew) as working sets outgrow the caches. Exported so the
// moeschedsim -drift flag replays exactly the study's workloads.
const (
	DriftGrowthStartGB = 2.0
	DriftGrowthFactor  = 50.0
)

// DriftSkew is how far each scenario's drift cohort's counters move from
// the log cluster onto the saturating-exponential cluster: far enough that
// the gate confidently selects the wrong (under-predicting) expert.
const DriftSkew = -0.35

// DriftRegimePeriod is the regime length (jobs) of the mix-switch scenario.
const DriftRegimePeriod = 10

// DriftResult is the adaptation study: non-stationary arrival streams
// (gradual input growth, regime switches between expert families) replayed
// at rising rates under the static predict-once MoE pipeline and the
// feedback-driven adaptive one, compared on sojourn tails.
type DriftResult struct {
	// AppsPerStream is the number of jobs per arrival stream.
	AppsPerStream int
	// Streams is how many independent streams were averaged per point.
	Streams int
	// Workloads holds one entry per drift scenario.
	Workloads []DriftWorkloadResult
}

// DriftWorkloadResult is one drift scenario across the offered loads.
type DriftWorkloadResult struct {
	// Workload names the scenario ("growth", "regimes").
	Workload string
	// Rates holds one point per offered load.
	Rates []DriftRatePoint
}

// DriftRatePoint is one offered load evaluated under every scheme.
type DriftRatePoint struct {
	JobsPerHour float64
	Schemes     []DriftSchemeResult
}

// DriftSchemeResult aggregates one scheme's queueing behaviour at one
// (workload, rate) point, averaged across the independent streams.
type DriftSchemeResult struct {
	Scheme string
	// MeanSojournSec / P95 / P99 are time-in-system statistics (per-stream
	// percentiles averaged across streams).
	MeanSojournSec float64
	P95SojournSec  float64
	P99SojournSec  float64
	// ThroughputJobsPerHour is the achieved completion rate.
	ThroughputJobsPerHour float64
	// OOMKills sums executor OOM kills across streams.
	OOMKills int
}

// driftWorkload is one drift scenario: a seeded arrival-stream generator.
type driftWorkload struct {
	name   string
	stream func(rate float64, seed int64) ([]workload.Arrival, error)
}

func driftWorkloads() []driftWorkload {
	return []driftWorkload{
		{
			name: "growth",
			stream: func(rate float64, seed int64) ([]workload.Arrival, error) {
				return workload.GrowthArrivals(driftApps, rate/3600,
					DriftGrowthStartGB, DriftGrowthFactor, DriftSkew, rand.New(rand.NewSource(seed)))
			},
		},
		{
			name: "regimes",
			stream: func(rate float64, seed int64) ([]workload.Arrival, error) {
				return workload.RegimeArrivals(driftApps, rate/3600,
					DriftRegimePeriod, DriftSkew, rand.New(rand.NewSource(seed)))
			},
		},
	}
}

// driftSchemes builds the comparison set: the same trained model behind the
// static and the adaptive prediction pipeline, plus the ground-truth Oracle
// as the no-prediction-error reference.
func driftSchemes(ctx Context) (schemeSet, error) {
	moeModel, _, err := trainedMoE(ctx, nil, 401)
	if err != nil {
		return schemeSet{}, err
	}
	return schemeSet{
		names: []string{"MoE-static", "MoE-adaptive", "Oracle"},
		factories: map[string]func(int64) cluster.Scheduler{
			"MoE-static": func(seed int64) cluster.Scheduler {
				d := sched.NewMoE(moeModel, rand.New(rand.NewSource(seed)))
				d.PolicyName = "MoE-static"
				return d
			},
			"MoE-adaptive": func(seed int64) cluster.Scheduler {
				// A fresh Adaptive per run: its recalibration state is
				// per-stream, never shared across runs or schemes.
				return sched.NewAdaptiveMoE(moeModel, moe.AdaptiveConfig{}, rand.New(rand.NewSource(seed)))
			},
			"Oracle": func(int64) cluster.Scheduler { return sched.NewOracle() },
		},
	}, nil
}

// Drift runs the adaptation study: for each drift scenario and offered load,
// several independent streams are replayed through the event engine under
// the static and adaptive MoE pipelines (same trained model, same rng
// streams — the runs differ only through the feedback loop), and queueing
// metrics are averaged. (workload, rate, stream) units fan out over the
// concurrent runner with per-unit seeds; every scheduler is constructed
// inside its unit, so results are identical at any worker count.
func Drift(ctx Context) (DriftResult, error) {
	ctx = ctx.withDefaults()
	set, err := driftSchemes(ctx)
	if err != nil {
		return DriftResult{}, err
	}
	loads := driftWorkloads()
	streams := ctx.MixesPerScenario / 8
	if streams < 1 {
		streams = 1
	}
	type unit struct {
		qs  []metrics.QueueMetrics
		oom []int
	}
	units := make([]unit, len(loads)*len(driftRates)*streams)
	err = forEachIndexed(ctx.workers(), len(units), func(item int) error {
		wi := item / (len(driftRates) * streams)
		ri := (item / streams) % len(driftRates)
		si := item % streams
		rate := driftRates[ri]
		streamSeed := ctx.Seed*5_000_011 + int64(wi)*16001 + int64(ri)*4057 + int64(si)
		arrivals, err := loads[wi].stream(rate, streamSeed)
		if err != nil {
			return err
		}
		subs := cluster.Submissions(arrivals)
		u := unit{qs: make([]metrics.QueueMetrics, len(set.names)), oom: make([]int, len(set.names))}
		for ni, name := range set.names {
			c := cluster.New(ctx.Cfg)
			// One scheduler seed for every scheme: the static and adaptive
			// arms draw identical profiling-noise streams, so they differ
			// only through the feedback loop.
			res, err := c.RunOpen(subs, set.factories[name](streamSeed+101))
			if err != nil {
				return fmt.Errorf("experiments: drift %s %.0f jobs/h under %s: %w", loads[wi].name, rate, name, err)
			}
			q, err := metrics.Queueing(res, 0)
			if err != nil {
				return err
			}
			u.qs[ni] = q
			u.oom[ni] = res.OOMKills
		}
		units[item] = u
		return nil
	})
	if err != nil {
		return DriftResult{}, err
	}

	out := DriftResult{AppsPerStream: driftApps, Streams: streams}
	for wi, load := range loads {
		wr := DriftWorkloadResult{Workload: load.name}
		for ri, rate := range driftRates {
			point := DriftRatePoint{JobsPerHour: rate}
			for ni, name := range set.names {
				var agg DriftSchemeResult
				agg.Scheme = name
				for si := 0; si < streams; si++ {
					u := units[(wi*len(driftRates)+ri)*streams+si]
					agg.MeanSojournSec += u.qs[ni].MeanSojournSec
					agg.P95SojournSec += u.qs[ni].P95SojournSec
					agg.P99SojournSec += u.qs[ni].P99SojournSec
					agg.ThroughputJobsPerHour += u.qs[ni].ThroughputJobsPerHour
					agg.OOMKills += u.oom[ni]
				}
				n := float64(streams)
				agg.MeanSojournSec /= n
				agg.P95SojournSec /= n
				agg.P99SojournSec /= n
				agg.ThroughputJobsPerHour /= n
				point.Schemes = append(point.Schemes, agg)
			}
			wr.Rates = append(wr.Rates, point)
		}
		out.Workloads = append(out.Workloads, wr)
	}
	return out, nil
}

// Tables renders the adaptation study: p99 sojourn, mean sojourn and OOM
// kills per drift scenario and offered load.
func (r DriftResult) Tables() []Table {
	names := []string{}
	if len(r.Workloads) > 0 && len(r.Workloads[0].Rates) > 0 {
		for _, s := range r.Workloads[0].Rates[0].Schemes {
			names = append(names, s.Scheme)
		}
	}
	header := append([]string{"workload", "jobs/hour"}, names...)
	p99 := Table{
		Title:  "Drift: p99 sojourn time (s) vs offered load, static vs adaptive MoE",
		Header: header,
		Caption: fmt.Sprintf("Non-stationary streams, %d apps per stream, %d streams per point; growth: %.0fGB inputs growing %.0fx; regimes: expert family switches every %d jobs.",
			r.AppsPerStream, r.Streams, DriftGrowthStartGB, DriftGrowthFactor, DriftRegimePeriod),
	}
	mean := Table{Title: "Drift: mean sojourn time (s) vs offered load", Header: header}
	oom := Table{Title: "Drift: executor OOM kills (summed across streams)", Header: header}
	for _, wr := range r.Workloads {
		for _, pt := range wr.Rates {
			pRow := []string{wr.Workload, f1(pt.JobsPerHour)}
			mRow := []string{wr.Workload, f1(pt.JobsPerHour)}
			oRow := []string{wr.Workload, f1(pt.JobsPerHour)}
			for _, s := range pt.Schemes {
				pRow = append(pRow, f1(s.P99SojournSec))
				mRow = append(mRow, f1(s.MeanSojournSec))
				oRow = append(oRow, fmt.Sprintf("%d", s.OOMKills))
			}
			p99.Rows = append(p99.Rows, pRow)
			mean.Rows = append(mean.Rows, mRow)
			oom.Rows = append(oom.Rows, oRow)
		}
	}
	return []Table{p99, mean, oom}
}
