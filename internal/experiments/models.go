package experiments

import (
	"fmt"
	"math/rand"

	"moespark/internal/mathx"
	"moespark/internal/memfunc"
	"moespark/internal/moe"
	"moespark/internal/workload"
)

// Fig3 reproduces Figure 3: observed vs predicted memory footprints for
// HiBench Sort (exponential expert) and PageRank (Napierian-log expert)
// across input sizes.
type Fig3Result struct {
	Benchmarks []Fig3Curve
}

// Fig3Curve is one benchmark's observed/predicted series.
type Fig3Curve struct {
	Name      string
	Fitted    memfunc.Func
	R2        float64
	InputGB   []float64
	Observed  []float64
	Predicted []float64
}

// Fig3 fits the expert families to Sort and PageRank sweeps and evaluates
// the fit across the grid.
func Fig3(ctx Context) (Fig3Result, error) {
	ctx = ctx.withDefaults()
	rng := ctx.rng(3)
	var out Fig3Result
	grid := []float64{0.001, 0.01, 0.1, 1, 10, 100, 1000}
	for _, name := range []string{"HB.Sort", "HB.PageRank"} {
		b, err := workload.Find(name)
		if err != nil {
			return Fig3Result{}, err
		}
		pts := b.CurvePoints(workload.TrainingSweep, rng)
		fit, err := memfunc.BestFit(pts)
		if err != nil {
			return Fig3Result{}, fmt.Errorf("experiments: fig3 fit for %s: %w", name, err)
		}
		curve := Fig3Curve{Name: name, Fitted: fit.Func, R2: fit.R2}
		for _, x := range grid {
			obs := b.Footprint(x)
			if obs <= 0 {
				continue
			}
			pred, err := fit.Func.Eval(x)
			if err != nil {
				continue
			}
			curve.InputGB = append(curve.InputGB, x)
			curve.Observed = append(curve.Observed, obs)
			curve.Predicted = append(curve.Predicted, pred)
		}
		out.Benchmarks = append(out.Benchmarks, curve)
	}
	return out, nil
}

// Table renders the Figure 3 series.
func (r Fig3Result) Table() Table {
	t := Table{
		Title:   "Figure 3: observed vs predicted memory footprints (Sort, PageRank)",
		Header:  []string{"benchmark", "input(GB)", "observed(GB)", "predicted(GB)", "fitted function"},
		Caption: "Paper: Sort follows y=m(1-e^(-bx)) (m=5.768, b=4.479); PageRank follows y=m+ln(x)b (m=16.333, b=1.79).",
	}
	for _, c := range r.Benchmarks {
		for i := range c.InputGB {
			fn := ""
			if i == 0 {
				fn = c.Fitted.String()
			}
			t.Rows = append(t.Rows, []string{c.Name, f3(c.InputGB[i]), f2(c.Observed[i]), f2(c.Predicted[i]), fn})
		}
	}
	return t
}

// Fig4Result reproduces Figure 4: the variance explained per principal
// component and the most important raw features after Varimax rotation.
type Fig4Result struct {
	// ExplainedPct is the % of variance per PC (descending), full spectrum.
	ExplainedPct []float64
	// KeptComponents is the number of PCs retained (paper: 5).
	KeptComponents int
	// Importances ranks raw features by contribution (Figure 4b / Table 2).
	Importances []FeatureImportance
}

// FeatureImportance mirrors features.Importance for reporting.
type FeatureImportance struct {
	Name    string
	Percent float64
}

// Fig4 trains the feature pipeline on the 16 training programs and reports
// the PCA/Varimax analysis.
func Fig4(ctx Context) (Fig4Result, error) {
	ctx = ctx.withDefaults()
	rng := ctx.rng(4)
	model, err := moe.TrainDefault(rng)
	if err != nil {
		return Fig4Result{}, err
	}
	p := model.Pipeline()
	ratios := p.ExplainedRatio()
	out := Fig4Result{KeptComponents: p.Components()}
	for _, r := range ratios {
		out.ExplainedPct = append(out.ExplainedPct, r*100)
	}
	for _, imp := range p.Importances() {
		out.Importances = append(out.Importances, FeatureImportance{Name: imp.Name, Percent: imp.Percent})
	}
	return out, nil
}

// Table renders the Figure 4 analysis.
func (r Fig4Result) Table() Table {
	t := Table{
		Title:   "Figure 4: PCA variance shares and Varimax feature importance",
		Header:  []string{"item", "value"},
		Caption: fmt.Sprintf("Top %d PCs retained (paper keeps 5 PCs at >=95%% variance; PC1=71%% there).", r.KeptComponents),
	}
	for i := 0; i < len(r.ExplainedPct) && i < 5; i++ {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("PC%d variance", i+1), pct(r.ExplainedPct[i])})
	}
	for i := 0; i < len(r.Importances) && i < 6; i++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("feature #%d: %s", i+1, r.Importances[i].Name),
			pct(r.Importances[i].Percent),
		})
	}
	return t
}

// Fig16Result reproduces Figure 16: the 44 benchmarks projected onto the
// first two principal components, grouped into the three expert families.
type Fig16Result struct {
	Points []Fig16Point
	// SeparationRatio is the mean inter-centroid distance divided by the
	// mean intra-cluster distance on the 2-d projection; large values mean
	// the three family clusters are visually distinct, as in the paper.
	SeparationRatio float64
	// PearsonOneFrac is the fraction of programs whose 2-d profile has
	// Pearson correlation >= 0.999 with its cluster centre (the paper
	// reports >= 0.9999 for all programs; on two coordinates Pearson is
	// +-1, so this counts the programs on the +1 side).
	PearsonOneFrac float64
}

// Fig16Point is one benchmark in the projected space.
type Fig16Point struct {
	Name   string
	Family memfunc.Family
	PC1    float64
	PC2    float64
}

// Fig16 projects every benchmark's features onto two PCs and measures the
// cluster tightness.
func Fig16(ctx Context) (Fig16Result, error) {
	ctx = ctx.withDefaults()
	rng := ctx.rng(16)
	model, err := moe.TrainDefault(rng)
	if err != nil {
		return Fig16Result{}, err
	}
	p := model.Pipeline()
	var out Fig16Result
	byFamily := map[memfunc.Family][][]float64{}
	for _, b := range workload.Catalog() {
		pcs, err := p.Transform(b.Counters(rng))
		if err != nil {
			return Fig16Result{}, err
		}
		pc2 := 0.0
		if len(pcs) > 1 {
			pc2 = pcs[1]
		}
		out.Points = append(out.Points, Fig16Point{
			Name: b.FullName(), Family: b.Truth.Family, PC1: pcs[0], PC2: pc2,
		})
		byFamily[b.Truth.Family] = append(byFamily[b.Truth.Family], []float64{pcs[0], pc2})
	}
	var centroids [][]float64
	var intraSum float64
	var intraN, oneCount, total int
	for _, vecs := range byFamily {
		centroid := []float64{0, 0}
		for _, v := range vecs {
			centroid[0] += v[0]
			centroid[1] += v[1]
		}
		centroid[0] /= float64(len(vecs))
		centroid[1] /= float64(len(vecs))
		centroids = append(centroids, centroid)
		for _, v := range vecs {
			intraSum += mathx.Euclidean(v, centroid)
			intraN++
			total++
			if r, err := mathx.Pearson(v, centroid); err == nil && r >= 0.999 {
				oneCount++
			}
		}
	}
	var interSum float64
	var interN int
	for i := 0; i < len(centroids); i++ {
		for j := i + 1; j < len(centroids); j++ {
			interSum += mathx.Euclidean(centroids[i], centroids[j])
			interN++
		}
	}
	if intraN > 0 && interN > 0 && intraSum > 0 {
		out.SeparationRatio = (interSum / float64(interN)) / (intraSum / float64(intraN))
	}
	if total > 0 {
		out.PearsonOneFrac = float64(oneCount) / float64(total)
	}
	return out, nil
}

// Table renders the Figure 16 projection.
func (r Fig16Result) Table() Table {
	t := Table{
		Title:   "Figure 16: program feature space (2 PCs), clustered by memory function",
		Header:  []string{"benchmark", "family", "PC1", "PC2"},
		Caption: fmt.Sprintf("Cluster separation ratio %.1f (inter/intra); %.0f%% of programs at Pearson ~1 with their cluster centre (paper: all >= 0.9999).", r.SeparationRatio, r.PearsonOneFrac*100),
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{p.Name, p.Family.String(), f3(p.PC1), f3(p.PC2)})
	}
	return t
}

// Fig13Result reproduces Figure 13: the distribution of isolation-mode CPU
// loads across the 44 benchmarks.
type Fig13Result struct {
	// BucketCounts[i] counts benchmarks with CPU load in [i*10%, (i+1)*10%).
	BucketCounts [10]int
}

// Fig13 histograms the catalogue's CPU loads.
func Fig13(Context) Fig13Result {
	var out Fig13Result
	for _, b := range workload.Catalog() {
		bucket := int(b.CPULoad * 10)
		if bucket > 9 {
			bucket = 9
		}
		out.BucketCounts[bucket]++
	}
	return out
}

// Table renders the Figure 13 histogram.
func (r Fig13Result) Table() Table {
	t := Table{
		Title:   "Figure 13: CPU load distribution in isolation mode",
		Header:  []string{"CPU load", "# benchmarks"},
		Caption: "Paper: most benchmarks under 40% CPU, none above 60%.",
	}
	for i, c := range r.BucketCounts {
		if i >= 6 && c == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d-%d%%", i*10, (i+1)*10), fmt.Sprintf("%d", c)})
	}
	return t
}

// trainedModels builds the MoE model (optionally with exclusions) and shares
// the derivation across experiments.
func trainedMoE(ctx Context, exclude map[string]bool, offset int64) (*moe.Model, *rand.Rand, error) {
	rng := ctx.rng(offset)
	model, err := moe.TrainOnBenchmarks(workload.TrainingSet(), exclude, moe.Config{}, rng)
	if err != nil {
		return nil, nil, err
	}
	return model, rng, nil
}
