package experiments

import (
	"strings"
	"testing"
)

func TestTenantsPreemptionHelpsLatencyClass(t *testing.T) {
	ctx := quickCtx()
	ctx.MixesPerScenario = 8 // one stream per fleet
	r, err := Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fleets) != 4 {
		t.Fatalf("%d fleet scenarios, want 4 (uniform, bimodal, stragglers, storm)", len(r.Fleets))
	}
	byName := func(fr TenantsFleetResult, name string) TenantsSchemeResult {
		for _, s := range fr.Schemes {
			if s.Scheme == name {
				return s
			}
		}
		t.Fatalf("scheme %s missing on fleet %s", name, fr.Fleet)
		return TenantsSchemeResult{}
	}
	var killsTotal int
	var waitNo, waitYes float64
	var moeP99No, moeP99Yes float64
	for _, fr := range r.Fleets {
		for _, s := range fr.Schemes {
			if s.NoPreempt.PreemptKills != 0 {
				t.Errorf("fleet %s scheme %s: %d kills without preemption", fr.Fleet, s.Scheme, s.NoPreempt.PreemptKills)
			}
			for _, m := range []TenantsModeMetrics{s.NoPreempt, s.Preempt} {
				if m.LatencyP99Sec <= 0 || m.BatchP99Sec <= 0 || m.ThroughputJobsPerHour <= 0 {
					t.Errorf("fleet %s scheme %s: degenerate metrics %+v", fr.Fleet, s.Scheme, m)
				}
			}
		}
		// Aggregate the co-locating schemes (Isolated cannot exploit freed
		// memory: its serial head-of-line policy starts nothing early).
		for _, name := range []string{"Pairwise", "Quasar", "MoE"} {
			s := byName(fr, name)
			killsTotal += s.Preempt.PreemptKills
			waitNo += s.NoPreempt.LatencyMeanWaitSec
			waitYes += s.Preempt.LatencyMeanWaitSec
		}
		moe := byName(fr, "MoE")
		moeP99No += moe.NoPreempt.LatencyP99Sec
		moeP99Yes += moe.Preempt.LatencyP99Sec
		if moe.Preempt.LatencyP99Sec > moe.NoPreempt.LatencyP99Sec*1.05 {
			t.Errorf("fleet %s: MoE latency p99 worsened under preemption: %.0f -> %.0f",
				fr.Fleet, moe.NoPreempt.LatencyP99Sec, moe.Preempt.LatencyP99Sec)
		}
	}
	if killsTotal == 0 {
		t.Error("preemption never fired across the co-locating schemes; the study's load should force it")
	}
	// The point of the study: the latency-sensitive class's tail and queueing
	// improve when preemption is enabled.
	if moeP99Yes >= moeP99No {
		t.Errorf("MoE latency p99 across fleets did not improve: %.0f -> %.0f", moeP99No, moeP99Yes)
	}
	if waitYes >= waitNo {
		t.Errorf("co-locating latency mean wait did not improve: %.0f -> %.0f", waitNo, waitYes)
	}
	tables := r.Tables()
	if len(tables) != 4 || !strings.Contains(tables[0].String(), "fleet") {
		t.Error("tenants tables broken")
	}
}

func TestTenantsDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("tenants determinism check runs in the full suite")
	}
	ctx := quickCtx()
	ctx.MixesPerScenario = 8
	ctx.Workers = 1
	a, err := Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Workers = 4
	b, err := Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Fleets) != len(b.Fleets) {
		t.Fatal("fleet counts differ")
	}
	for i := range a.Fleets {
		for j := range a.Fleets[i].Schemes {
			x, y := a.Fleets[i].Schemes[j], b.Fleets[i].Schemes[j]
			if x != y {
				t.Errorf("fleet %s scheme %s: %+v vs %+v", a.Fleets[i].Fleet, x.Scheme, x, y)
			}
		}
	}
}
