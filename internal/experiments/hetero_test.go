package experiments

import (
	"strings"
	"testing"
)

func TestHeteroFleetsAndStorm(t *testing.T) {
	ctx := quickCtx()
	ctx.MixesPerScenario = 8 // one stream per fleet
	r, err := Hetero(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fleets) != 4 {
		t.Fatalf("%d fleet scenarios, want 4 (uniform, bimodal, stragglers, storm)", len(r.Fleets))
	}
	byName := func(fr HeteroFleetResult, name string) HeteroSchemeResult {
		for _, s := range fr.Schemes {
			if s.Scheme == name {
				return s
			}
		}
		t.Fatalf("scheme %s missing on fleet %s", name, fr.Fleet)
		return HeteroSchemeResult{}
	}
	var storm *HeteroFleetResult
	for i := range r.Fleets {
		fr := &r.Fleets[i]
		if fr.Fleet == "storm" {
			storm = fr
		}
		for _, s := range fr.Schemes {
			if s.ThroughputJobsPerHour <= 0 {
				t.Errorf("fleet %s scheme %s: no throughput", fr.Fleet, s.Scheme)
			}
			if s.P95SojournSec <= 0 || s.MeanSojournSec <= 0 {
				t.Errorf("fleet %s scheme %s: non-positive sojourn %+v", fr.Fleet, s.Scheme, s)
			}
			if s.UtilizationCV < 0 {
				t.Errorf("fleet %s scheme %s: negative imbalance", fr.Fleet, s.Scheme)
			}
		}
		// Co-location must beat serial isolation on every fleet.
		iso, moe := byName(*fr, "Isolated"), byName(*fr, "MoE")
		if iso.ThroughputJobsPerHour >= moe.ThroughputJobsPerHour {
			t.Errorf("fleet %s: isolated throughput %.1f should trail MoE %.1f",
				fr.Fleet, iso.ThroughputJobsPerHour, moe.ThroughputJobsPerHour)
		}
	}
	if storm == nil {
		t.Fatal("storm scenario missing")
	}
	var anyFailKills bool
	for _, s := range storm.Schemes {
		if s.FailKills > 0 {
			anyFailKills = true
		}
	}
	if !anyFailKills {
		t.Error("storm scenario produced no node-failure kills under any scheme")
	}
	tables := r.Tables()
	if len(tables) != 4 || !strings.Contains(tables[0].String(), "fleet") {
		t.Error("hetero tables broken")
	}
}

func TestHeteroDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("hetero determinism check runs in the full suite")
	}
	ctx := quickCtx()
	ctx.MixesPerScenario = 8
	ctx.Workers = 1
	a, err := Hetero(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Workers = 4
	b, err := Hetero(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Fleets) != len(b.Fleets) {
		t.Fatal("fleet counts differ")
	}
	for i := range a.Fleets {
		for j := range a.Fleets[i].Schemes {
			x, y := a.Fleets[i].Schemes[j], b.Fleets[i].Schemes[j]
			if x != y {
				t.Errorf("fleet %s scheme %s: %+v vs %+v", a.Fleets[i].Fleet, x.Scheme, x, y)
			}
		}
	}
}
