package experiments

import (
	"fmt"
	"math/rand"

	"moespark/internal/cluster"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

// Fig11Result reproduces Figure 11: per-scenario time spent on feature
// extraction and model calibration relative to total execution time under
// our approach.
type Fig11Result struct {
	Rows []Fig11Row
}

// Fig11Row is one scenario's profiling breakdown (all values in minutes,
// averaged across the scenario's mixes).
type Fig11Row struct {
	Label          string
	FeatureMin     float64
	CalibrationMin float64
	TotalMin       float64
}

// profilingSplit estimates the feature-extraction and calibration time for
// one app from its profiling volumes and effective coordinator rate.
func profilingSplit(app *cluster.App, cfg cluster.Config) (featureSec, calibSec float64) {
	if app.ProfileGB <= 0 {
		return 0, 0
	}
	rate := app.Job.Bench.ScanRate * cfg.ProfilingRateFactor
	if rate <= 0 {
		return 0, 0
	}
	elapsed := app.ReadyTime - app.SubmitTime
	if elapsed <= 0 {
		return 0, 0
	}
	// Split the observed profiling wall-clock in proportion to the feature
	// vs calibration volumes.
	featureFrac := 0.1 / app.ProfileGB
	if featureFrac > 1 {
		featureFrac = 1
	}
	return elapsed * featureFrac, elapsed * (1 - featureFrac)
}

// Fig11 measures profiling overhead per scenario.
func Fig11(ctx Context) (Fig11Result, error) {
	ctx = ctx.withDefaults()
	moeModel, _, err := trainedMoE(ctx, nil, 111)
	if err != nil {
		return Fig11Result{}, err
	}
	// One unit per (scenario, mix); per-app contributions are kept in order
	// and folded serially afterwards so the result matches the serial loop
	// bit-for-bit.
	type appSplit struct{ feat, calib, turn float64 }
	mixes := ctx.MixesPerScenario
	splits := make([][]appSplit, len(workload.Scenarios)*mixes)
	err = forEachIndexed(ctx.workers(), len(splits), func(item int) error {
		si, mix := item/mixes, item%mixes
		sc := workload.Scenarios[si]
		mixSeed := ctx.Seed*999_983 + int64(si)*733 + int64(mix)
		jobs := workload.RandomMix(sc, rand.New(rand.NewSource(mixSeed)))
		c := cluster.New(ctx.Cfg)
		res, err := c.Run(jobs, sched.NewMoE(moeModel, rand.New(rand.NewSource(mixSeed+7))))
		if err != nil {
			return fmt.Errorf("experiments: fig11 %s: %w", sc.Label, err)
		}
		rows := make([]appSplit, 0, len(res.Apps))
		for _, a := range res.Apps {
			f, cal := profilingSplit(a, ctx.Cfg)
			rows = append(rows, appSplit{feat: f, calib: cal, turn: a.Turnaround()})
		}
		splits[item] = rows
		return nil
	})
	if err != nil {
		return Fig11Result{}, err
	}
	var out Fig11Result
	for si, sc := range workload.Scenarios {
		var feat, calib, total float64
		var n int
		for mix := 0; mix < mixes; mix++ {
			for _, s := range splits[si*mixes+mix] {
				feat += s.feat
				calib += s.calib
				total += s.turn
				n++
			}
		}
		nf := float64(n)
		out.Rows = append(out.Rows, Fig11Row{
			Label:          sc.Label,
			FeatureMin:     feat / nf / 60,
			CalibrationMin: calib / nf / 60,
			TotalMin:       total / nf / 60,
		})
	}
	return out, nil
}

// Table renders Figure 11.
func (r Fig11Result) Table() Table {
	t := Table{
		Title:   "Figure 11: average profiling time vs total task execution time",
		Header:  []string{"scenario", "feature extr. (min)", "calibration (min)", "total (min)", "overhead %"},
		Caption: "Paper: feature extraction ~5% and calibration ~8% of total execution time; profiled data contributes to the output.",
	}
	for _, row := range r.Rows {
		oh := 0.0
		if row.TotalMin > 0 {
			oh = (row.FeatureMin + row.CalibrationMin) / row.TotalMin * 100
		}
		t.Rows = append(t.Rows, []string{
			row.Label, f2(row.FeatureMin), f2(row.CalibrationMin), f2(row.TotalMin), pct(oh),
		})
	}
	return t
}

// Fig12Result reproduces Figure 12: per-benchmark profiling overhead for the
// 16 training programs with a ~280GB input.
type Fig12Result struct {
	Rows []Fig12Row
}

// Fig12Row is one benchmark's breakdown, in minutes.
type Fig12Row struct {
	Name           string
	FeatureMin     float64
	CalibrationMin float64
	TotalMin       float64
}

// Fig12 runs each training benchmark alone with a 280GB input under our
// approach and splits its profiling time.
func Fig12(ctx Context) (Fig12Result, error) {
	ctx = ctx.withDefaults()
	moeModel, _, err := trainedMoE(ctx, nil, 121)
	if err != nil {
		return Fig12Result{}, err
	}
	var out Fig12Result
	for i, b := range workload.TrainingSet() {
		jobs := []workload.Job{{Bench: b, InputGB: 280}}
		c := cluster.New(ctx.Cfg)
		res, err := c.Run(jobs, sched.NewMoE(moeModel, ctx.rng(122+int64(i))))
		if err != nil {
			return Fig12Result{}, fmt.Errorf("experiments: fig12 %s: %w", b.FullName(), err)
		}
		a := res.Apps[0]
		f, cal := profilingSplit(a, ctx.Cfg)
		out.Rows = append(out.Rows, Fig12Row{
			Name:           b.FullName(),
			FeatureMin:     f / 60,
			CalibrationMin: cal / 60,
			TotalMin:       a.Turnaround() / 60,
		})
	}
	return out, nil
}

// Table renders Figure 12.
func (r Fig12Result) Table() Table {
	t := Table{
		Title:   "Figure 12: profiling time vs total runtime per benchmark (~280GB input)",
		Header:  []string{"benchmark", "feature extr. (min)", "calibration (min)", "total (min)", "overhead %"},
		Caption: "Paper: total profiling below ~13% per benchmark.",
	}
	for _, row := range r.Rows {
		oh := 0.0
		if row.TotalMin > 0 {
			oh = (row.FeatureMin + row.CalibrationMin) / row.TotalMin * 100
		}
		t.Rows = append(t.Rows, []string{
			row.Name, f2(row.FeatureMin), f2(row.CalibrationMin), f1(row.TotalMin), pct(oh),
		})
	}
	return t
}
