// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment is a function of a Context
// (seed, mix count, platform config) returning a typed result that renders
// the same rows/series the paper reports. The cmd/reproduce binary runs them
// all; bench_test.go exposes one benchmark per table/figure.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"moespark/internal/cluster"
)

// Context carries the shared experiment parameters.
type Context struct {
	// Seed drives all randomness (mix draws, profiling noise, model
	// training); a fixed seed reproduces results bit-for-bit.
	Seed int64
	// MixesPerScenario is how many application mixes are drawn per runtime
	// scenario (the paper uses ~100; smaller values keep runs quick).
	MixesPerScenario int
	// Workers bounds the concurrent experiment runner's worker pool; 0 uses
	// one worker per CPU. Any worker count produces results bit-identical to
	// the serial path (Workers = 1): every parallel unit derives its
	// randomness from per-index seeds and writes to index-addressed slots.
	Workers int
	// Cfg is the simulated platform.
	Cfg cluster.Config
}

// DefaultContext returns the paper's setup with a moderate mix count.
func DefaultContext() Context {
	return Context{Seed: 1, MixesPerScenario: 20, Cfg: cluster.DefaultConfig()}
}

func (c Context) withDefaults() Context {
	if c.MixesPerScenario <= 0 {
		c.MixesPerScenario = 20
	}
	if c.Cfg.Nodes == 0 {
		c.Cfg = cluster.DefaultConfig()
	}
	return c
}

func (c Context) rng(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*7919 + offset))
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&sb, "%s\n", t.Caption)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
