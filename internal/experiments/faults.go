package experiments

import (
	"fmt"
	"math/rand"

	"moespark/internal/cluster"
	"moespark/internal/metrics"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

// faultsRate is the offered load of the failure-domain study (jobs/hour):
// high enough that the storm lands on a busy fleet, low enough that every
// scheme/mode combination still drains its queue.
const faultsRate = 60.0

// faultsApps is the stream length per run.
const faultsApps = 30

// Topology and storm shape: a 40-node fleet in 8 racks across 2 zones; each
// storm drains one full rack and hard-fails two more with a warning drain
// faultsWarnSec ahead of each failure — the evacuation window graceful
// migration exploits. Every rack rejoins faultsRejoinSec after it goes away.
const (
	faultsNodes      = 40
	faultsRacks      = 8
	faultsZones      = 2
	faultsDrainRacks = 1
	faultsFailRacks  = 2
	faultsStormStart = 400.0
	faultsStormSpan  = 600.0
	faultsWarnSec    = 60.0
	faultsRejoinSec  = 180.0
)

// faultsWindowEnd is the end of the degradation-metrics window: the last
// instant a storm departure (drain or delayed failure) can land.
const faultsWindowEnd = faultsStormStart + faultsStormSpan + faultsWarnSec

// FaultsResult is the failure-domain resilience study: the same rack-level
// storm (one rack drained, two racks failed with warning) replayed under
// each co-location scheme with the resilience machinery switched off and on,
// compared on lost work, latency tails and recovery.
type FaultsResult struct {
	// AppsPerStream is the number of jobs per arrival stream.
	AppsPerStream int
	// Streams is how many independent streams were averaged.
	Streams int
	// RatePerHour is the configured Poisson arrival rate.
	RatePerHour float64
	// Nodes and Racks describe the fleet topology.
	Nodes int
	Racks int
	// WindowStartSec and WindowEndSec bound the fault window the degradation
	// metrics are computed against.
	WindowStartSec float64
	WindowEndSec   float64
	// Schemes holds one entry per scheduling scheme.
	Schemes []FaultsSchemeResult
}

// FaultsSchemeResult is one scheme evaluated under every resilience mode.
type FaultsSchemeResult struct {
	Scheme string
	Modes  []FaultsModeResult
}

// FaultsModeResult aggregates one (scheme, mode) cell across the independent
// streams; counters are summed, everything else averaged.
type FaultsModeResult struct {
	// Mode names the resilience configuration (no-migration, migration,
	// migration+retry).
	Mode string
	// LostWorkGB is the reprocessing work charged back per stream (mean).
	LostWorkGB float64
	// GoodputFrac is useful work over total work processed (mean).
	GoodputFrac float64
	// MeanSojournSec and P99SojournSec are time-in-system statistics (mean).
	MeanSojournSec float64
	P99SojournSec  float64
	// RecoverySec is the post-window backlog drain time (mean).
	RecoverySec float64
	// ThroughputJobsPerHour is the achieved completion rate (mean).
	ThroughputJobsPerHour float64
	// Migrations, OOMRetries and FailKills sum the resilience counters
	// across streams.
	Migrations int
	OOMRetries int
	FailKills  int
}

// faultsMode is one resilience configuration applied on top of the platform
// config; the base (no-migration) mode is the historical behaviour: drains
// wait for work to finish, failures kill and charge back, OOM blacklists are
// permanent.
type faultsMode struct {
	name  string
	apply func(cluster.Config) cluster.Config
}

func faultsModes() []faultsMode {
	return []faultsMode{
		{name: "no-migration", apply: func(cfg cluster.Config) cluster.Config {
			return cfg
		}},
		{name: "migration", apply: func(cfg cluster.Config) cluster.Config {
			cfg.MigrateOnDrain = true
			return cfg
		}},
		{name: "migration+retry", apply: func(cfg cluster.Config) cluster.Config {
			cfg.MigrateOnDrain = true
			cfg.OOMRetryBudget = 2
			return cfg
		}},
	}
}

// faultsSchemes compares the paper's MoE dispatcher against its
// failure-domain-aware variant (rack-spread placement), isolating what
// topology-aware placement buys on top of migration and retries.
func faultsSchemes(ctx Context) (schemeSet, error) {
	moeModel, _, err := trainedMoE(ctx, nil, 401)
	if err != nil {
		return schemeSet{}, err
	}
	return schemeSet{
		names: []string{"MoE", "MoE-spread"},
		factories: map[string]func(int64) cluster.Scheduler{
			"MoE": func(seed int64) cluster.Scheduler {
				return sched.NewMoE(moeModel, rand.New(rand.NewSource(seed)))
			},
			"MoE-spread": func(seed int64) cluster.Scheduler {
				d := sched.NewMoE(moeModel, rand.New(rand.NewSource(seed)))
				d.PolicyName = "MoE-spread"
				d.Placer = sched.NewRackSpread()
				return d
			},
		},
	}, nil
}

// faultsSpecs builds the racked fleet: uniform paper nodes labelled into
// faultsRacks racks across faultsZones zones.
func faultsSpecs() ([]cluster.NodeSpec, error) {
	fleet, err := workload.UniformFleet(faultsNodes, workload.PaperNode())
	if err != nil {
		return nil, err
	}
	racked, err := workload.AssignRacks(fleet, faultsRacks, faultsZones)
	if err != nil {
		return nil, err
	}
	return cluster.SpecsFrom(racked), nil
}

// Faults runs the failure-domain resilience study: for each independent
// Poisson stream, the same rack storm is replayed under every scheme and
// resilience mode, and lost work, sojourn tails, goodput and recovery are
// aggregated. (stream) units fan out over the concurrent runner with
// per-unit seeds, so results are bit-identical at any worker count.
func Faults(ctx Context) (FaultsResult, error) {
	ctx = ctx.withDefaults()
	set, err := faultsSchemes(ctx)
	if err != nil {
		return FaultsResult{}, err
	}
	modes := faultsModes()
	streams := ctx.MixesPerScenario / 8
	if streams < 1 {
		streams = 1
	}
	// Fleet caps ratchet with freed capacity in every mode: a storm-window
	// admission otherwise keeps a one-executor cap for life, and that
	// straggler — not fault handling — would dominate the sojourn tail.
	cfg := ctx.Cfg
	cfg.RefreshFleetSizing = true

	type unit struct {
		qs  []metrics.QueueMetrics
		fis []metrics.FaultImpact
	}
	cells := len(set.names) * len(modes)
	units := make([]unit, streams)
	err = forEachIndexed(ctx.workers(), len(units), func(si int) error {
		streamSeed := ctx.Seed*3_000_017 + int64(si)*8009
		arrivals, err := workload.PoissonArrivals(faultsApps, faultsRate/3600,
			rand.New(rand.NewSource(streamSeed)))
		if err != nil {
			return err
		}
		subs := cluster.Submissions(arrivals)
		specs, err := faultsSpecs()
		if err != nil {
			return err
		}
		u := unit{
			qs:  make([]metrics.QueueMetrics, cells),
			fis: make([]metrics.FaultImpact, cells),
		}
		for ni, name := range set.names {
			for mi, mode := range modes {
				c, err := cluster.NewHetero(mode.apply(cfg), specs)
				if err != nil {
					return err
				}
				// A fresh source per run replays the identical storm for
				// every (scheme, mode) cell of the stream.
				evs, err := cluster.RackStormEvents(specs, faultsDrainRacks, faultsFailRacks,
					faultsStormStart, faultsStormSpan, faultsWarnSec, faultsRejoinSec,
					rand.New(rand.NewSource(streamSeed+997)))
				if err != nil {
					return err
				}
				if err := c.ScheduleNodeEvents(evs...); err != nil {
					return err
				}
				res, err := c.RunOpen(subs, set.factories[name](streamSeed+int64(len(name))))
				if err != nil {
					return fmt.Errorf("experiments: faults %s/%s: %w", name, mode.name, err)
				}
				q, err := metrics.Queueing(res, 0)
				if err != nil {
					return err
				}
				fi, err := metrics.Faults(res, faultsStormStart, faultsWindowEnd)
				if err != nil {
					return err
				}
				u.qs[ni*len(modes)+mi] = q
				u.fis[ni*len(modes)+mi] = fi
			}
		}
		units[si] = u
		return nil
	})
	if err != nil {
		return FaultsResult{}, err
	}

	out := FaultsResult{
		AppsPerStream:  faultsApps,
		Streams:        streams,
		RatePerHour:    faultsRate,
		Nodes:          faultsNodes,
		Racks:          faultsRacks,
		WindowStartSec: faultsStormStart,
		WindowEndSec:   faultsWindowEnd,
	}
	for ni, name := range set.names {
		sr := FaultsSchemeResult{Scheme: name}
		for mi, mode := range modes {
			var agg FaultsModeResult
			agg.Mode = mode.name
			for si := 0; si < streams; si++ {
				u := units[si]
				q := u.qs[ni*len(modes)+mi]
				fi := u.fis[ni*len(modes)+mi]
				agg.LostWorkGB += fi.LostWorkGB
				agg.GoodputFrac += fi.GoodputFrac
				agg.MeanSojournSec += q.MeanSojournSec
				agg.P99SojournSec += q.P99SojournSec
				agg.RecoverySec += fi.RecoverySec
				agg.ThroughputJobsPerHour += q.ThroughputJobsPerHour
				agg.Migrations += fi.Migrations
				agg.OOMRetries += fi.OOMRetries
				agg.FailKills += fi.FailKills
			}
			n := float64(streams)
			agg.LostWorkGB /= n
			agg.GoodputFrac /= n
			agg.MeanSojournSec /= n
			agg.P99SojournSec /= n
			agg.RecoverySec /= n
			agg.ThroughputJobsPerHour /= n
			sr.Modes = append(sr.Modes, agg)
		}
		out.Schemes = append(out.Schemes, sr)
	}
	return out, nil
}

// Tables renders the failure-domain study: lost work and goodput, sojourn
// tails and recovery, and the resilience counters, one row per
// (scheme, mode) cell.
func (r FaultsResult) Tables() []Table {
	caption := fmt.Sprintf(
		"%d nodes in %d racks; storm drains %d rack and fails %d racks (%.0fs warning) in [%.0fs, %.0fs); %d-app streams at %.0f jobs/hour, %d streams.",
		r.Nodes, r.Racks, faultsDrainRacks, faultsFailRacks, faultsWarnSec,
		r.WindowStartSec, r.WindowStartSec+faultsStormSpan, r.AppsPerStream, r.RatePerHour, r.Streams)
	loss := Table{
		Title:   "Rack storms: lost work and goodput",
		Header:  []string{"scheme", "mode", "lost GB", "goodput", "fail kills"},
		Caption: caption,
	}
	lat := Table{
		Title:  "Rack storms: latency and recovery",
		Header: []string{"scheme", "mode", "mean sojourn (s)", "p99 sojourn (s)", "recovery (s)", "jobs/hour"},
	}
	counters := Table{
		Title:  "Rack storms: resilience counters (summed across streams)",
		Header: []string{"scheme", "mode", "migrations", "OOM retries"},
	}
	for _, sr := range r.Schemes {
		for _, m := range sr.Modes {
			loss.Rows = append(loss.Rows, []string{
				sr.Scheme, m.Mode, f1(m.LostWorkGB), f3(m.GoodputFrac), fmt.Sprintf("%d", m.FailKills)})
			lat.Rows = append(lat.Rows, []string{
				sr.Scheme, m.Mode, f1(m.MeanSojournSec), f1(m.P99SojournSec), f1(m.RecoverySec), f1(m.ThroughputJobsPerHour)})
			counters.Rows = append(counters.Rows, []string{
				sr.Scheme, m.Mode, fmt.Sprintf("%d", m.Migrations), fmt.Sprintf("%d", m.OOMRetries)})
		}
	}
	return []Table{loss, lat, counters}
}
