package experiments

import (
	"fmt"
	"math/rand"

	"moespark/internal/cluster"
	"moespark/internal/metrics"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

// tenantsRate is the offered load of the multi-tenant study (jobs/hour):
// high enough that batch work regularly holds the memory a latency-sensitive
// arrival wants, so the preemption policy has something to decide.
const tenantsRate = 300.0

// tenantsApps is the stream length per run.
const tenantsApps = 60

// tenantsLatencyFrac is the latency-sensitive tenant's share of the stream.
const tenantsLatencyFrac = 0.3

// TenantsResult is the multi-tenant priority study: the same
// latency-vs-batch classed stream replayed over the heterogeneous fleet
// scenarios under every co-location scheme, each scheme run twice — with
// priority classes only, and with preemption on top — compared on per-class
// queueing metrics.
type TenantsResult struct {
	// AppsPerStream is the number of jobs per arrival stream.
	AppsPerStream int
	// Streams is how many independent streams were averaged per fleet.
	Streams int
	// RatePerHour is the configured Poisson arrival rate.
	RatePerHour float64
	// LatencyFrac is the latency-sensitive class's share of the stream.
	LatencyFrac float64
	// Fleets holds one entry per fleet scenario.
	Fleets []TenantsFleetResult
}

// TenantsFleetResult is one fleet scenario evaluated under every scheme.
type TenantsFleetResult struct {
	// Fleet names the scenario (uniform, bimodal, stragglers, storm).
	Fleet string
	// Schemes holds per-scheme outcomes.
	Schemes []TenantsSchemeResult
}

// TenantsSchemeResult is one scheme on one fleet, in both modes.
type TenantsSchemeResult struct {
	Scheme string
	// NoPreempt runs priority classes (weighted FCFS + class-aware
	// placement) without preemption; Preempt adds arrival-time preemption of
	// preemptible batch executors.
	NoPreempt TenantsModeMetrics
	Preempt   TenantsModeMetrics
}

// TenantsModeMetrics aggregates one (scheme, mode) cell, averaged across the
// independent streams.
type TenantsModeMetrics struct {
	// LatencyP99Sec and LatencyMeanWaitSec are the latency-sensitive class's
	// p99 sojourn and mean queue wait.
	LatencyP99Sec      float64
	LatencyMeanWaitSec float64
	// BatchP99Sec is the batch class's p99 sojourn (the price of priority).
	BatchP99Sec float64
	// ThroughputJobsPerHour is the whole stream's achieved completion rate.
	ThroughputJobsPerHour float64
	// PreemptKills sums preempted executors across streams (0 in NoPreempt
	// mode by construction).
	PreemptKills int
}

// tenantsSchemes returns the dispatcher factories of the study; dispatchers
// (not opaque schedulers) because each run wraps one in sched.NewPriority.
func tenantsSchemes(ctx Context) ([]string, map[string]func(int64) *sched.Dispatcher, error) {
	moeModel, _, err := trainedMoE(ctx, nil, 401)
	if err != nil {
		return nil, nil, err
	}
	quasarModel, err := sched.TrainQuasar(workload.TrainingSet(), ctx.rng(402))
	if err != nil {
		return nil, nil, err
	}
	names := []string{"Isolated", "Pairwise", "Quasar", "MoE"}
	factories := map[string]func(int64) *sched.Dispatcher{
		"Isolated": func(int64) *sched.Dispatcher { return sched.NewIsolated() },
		"Pairwise": func(int64) *sched.Dispatcher { return sched.NewPairwise() },
		"Quasar": func(seed int64) *sched.Dispatcher {
			return sched.NewQuasar(quasarModel, rand.New(rand.NewSource(seed)))
		},
		"MoE": func(seed int64) *sched.Dispatcher {
			return sched.NewMoE(moeModel, rand.New(rand.NewSource(seed)))
		},
	}
	return names, factories, nil
}

// Tenants runs the multi-tenant priority study: for each heterogeneous fleet
// scenario, several independent classed Poisson streams are replayed under
// each scheme with and without preemption, and per-class queueing metrics
// are averaged. (fleet, stream) units fan out over the concurrent runner
// with per-unit seeds, so results are identical at any worker count.
func Tenants(ctx Context) (TenantsResult, error) {
	ctx = ctx.withDefaults()
	names, factories, err := tenantsSchemes(ctx)
	if err != nil {
		return TenantsResult{}, err
	}
	fleets := heteroFleets()
	streams := ctx.MixesPerScenario / 8
	if streams < 1 {
		streams = 1
	}
	cfg := ctx.Cfg

	type cell struct {
		lat, batch metrics.ClassQueueMetrics
		throughput float64
		preempts   int
	}
	type unit struct {
		modes [2][]cell // [mode][scheme]
	}
	units := make([]unit, len(fleets)*streams)
	err = forEachIndexed(ctx.workers(), len(units), func(item int) error {
		fi, si := item/streams, item%streams
		fleet := fleets[fi]
		streamSeed := ctx.Seed*5_000_011 + int64(fi)*9013 + int64(si)
		rng := rand.New(rand.NewSource(streamSeed))
		arrivals, err := workload.PoissonArrivals(tenantsApps, tenantsRate/3600, rng)
		if err != nil {
			return err
		}
		tagged, err := workload.TagArrivals(arrivals, workload.LatencyBatchMix(tenantsLatencyFrac), rng)
		if err != nil {
			return err
		}
		subs := cluster.Submissions(tagged)
		specs, err := fleet.specs(streamSeed+77, cfg)
		if err != nil {
			return err
		}
		u := unit{}
		for mode := 0; mode < 2; mode++ {
			u.modes[mode] = make([]cell, len(names))
			for ni, name := range names {
				c, err := cluster.NewHetero(cfg, specs)
				if err != nil {
					return err
				}
				if fleet.events != nil {
					evs, err := fleet.events(streamSeed+177, cfg)
					if err != nil {
						return err
					}
					if err := c.ScheduleNodeEvents(evs...); err != nil {
						return err
					}
				}
				s := sched.NewPriority(factories[name](streamSeed+int64(len(name))), mode == 1)
				res, err := c.RunOpen(subs, s)
				if err != nil {
					return fmt.Errorf("experiments: tenants fleet %s under %s (preempt=%v): %w",
						fleet.name, name, mode == 1, err)
				}
				byClass, err := metrics.QueueingByClass(res, 0)
				if err != nil {
					return err
				}
				q, err := metrics.Queueing(res, 0)
				if err != nil {
					return err
				}
				cl := cell{throughput: q.ThroughputJobsPerHour, preempts: res.PreemptKills}
				for _, cq := range byClass {
					switch cq.Class {
					case "latency":
						cl.lat = cq
					case "batch":
						cl.batch = cq
					}
				}
				u.modes[mode][ni] = cl
			}
		}
		units[item] = u
		return nil
	})
	if err != nil {
		return TenantsResult{}, err
	}

	out := TenantsResult{
		AppsPerStream: tenantsApps, Streams: streams,
		RatePerHour: tenantsRate, LatencyFrac: tenantsLatencyFrac,
	}
	for fi, fleet := range fleets {
		fr := TenantsFleetResult{Fleet: fleet.name}
		for ni, name := range names {
			sr := TenantsSchemeResult{Scheme: name}
			for mode, agg := range []*TenantsModeMetrics{&sr.NoPreempt, &sr.Preempt} {
				for si := 0; si < streams; si++ {
					cl := units[fi*streams+si].modes[mode][ni]
					agg.LatencyP99Sec += cl.lat.P99SojournSec
					agg.LatencyMeanWaitSec += cl.lat.MeanWaitSec
					agg.BatchP99Sec += cl.batch.P99SojournSec
					agg.ThroughputJobsPerHour += cl.throughput
					agg.PreemptKills += cl.preempts
				}
				n := float64(streams)
				agg.LatencyP99Sec /= n
				agg.LatencyMeanWaitSec /= n
				agg.BatchP99Sec /= n
				agg.ThroughputJobsPerHour /= n
			}
			fr.Schemes = append(fr.Schemes, sr)
		}
		out.Fleets = append(out.Fleets, fr)
	}
	return out, nil
}

// Tables renders the multi-tenant study: the latency class's p99 sojourn and
// mean wait (no-preempt → preempt), the batch class's p99 (the price), and
// the preemption volume.
func (r TenantsResult) Tables() []Table {
	names := []string{}
	if len(r.Fleets) > 0 {
		for _, s := range r.Fleets[0].Schemes {
			names = append(names, s.Scheme)
		}
	}
	header := append([]string{"fleet"}, names...)
	arrow := func(a, b float64) string { return fmt.Sprintf("%.0f -> %.0f", a, b) }
	latP99 := Table{
		Title:  "Multi-tenant: latency-class p99 sojourn (s), priority -> priority+preempt",
		Header: header,
		Caption: fmt.Sprintf("Poisson arrivals at %.0f jobs/hour, %d-app streams (%d%% latency-sensitive), %d streams per fleet.",
			r.RatePerHour, r.AppsPerStream, int(r.LatencyFrac*100), r.Streams),
	}
	latWait := Table{Title: "Multi-tenant: latency-class mean wait (s), priority -> priority+preempt", Header: header}
	batchP99 := Table{Title: "Multi-tenant: batch-class p99 sojourn (s), priority -> priority+preempt", Header: header}
	kills := Table{Title: "Multi-tenant: preempted executors (sum across streams)", Header: header}
	for _, fr := range r.Fleets {
		p99Row := []string{fr.Fleet}
		waitRow := []string{fr.Fleet}
		batchRow := []string{fr.Fleet}
		killRow := []string{fr.Fleet}
		for _, s := range fr.Schemes {
			p99Row = append(p99Row, arrow(s.NoPreempt.LatencyP99Sec, s.Preempt.LatencyP99Sec))
			waitRow = append(waitRow, arrow(s.NoPreempt.LatencyMeanWaitSec, s.Preempt.LatencyMeanWaitSec))
			batchRow = append(batchRow, arrow(s.NoPreempt.BatchP99Sec, s.Preempt.BatchP99Sec))
			killRow = append(killRow, fmt.Sprintf("%d", s.Preempt.PreemptKills))
		}
		latP99.Rows = append(latP99.Rows, p99Row)
		latWait.Rows = append(latWait.Rows, waitRow)
		batchP99.Rows = append(batchP99.Rows, batchRow)
		kills.Rows = append(kills.Rows, killRow)
	}
	return []Table{latP99, latWait, batchP99, kills}
}
