package experiments

import (
	"strings"
	"testing"
)

// faultsCtx pins the failure-domain study's test setup: one stream per seed
// (the smallest `reproduce -exp faults` shape).
func faultsCtx(seed int64) Context {
	ctx := DefaultContext()
	ctx.Seed = seed
	ctx.MixesPerScenario = 8
	return ctx
}

// The study's headline claim, per seed: under rack storms, graceful
// migration with retry budgets strictly reduces both the work lost to
// failures and the p99 sojourn tail against the run-in-place baseline, for
// every co-location scheme. Short mode checks the default seed only; the
// full run covers seeds 1 through 5.
func TestFaultsMigrationReducesLossAndTail(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		r, err := Faults(faultsCtx(seed))
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Schemes) != 2 {
			t.Fatalf("seed %d: %d schemes, want 2", seed, len(r.Schemes))
		}
		for _, sr := range r.Schemes {
			if len(sr.Modes) != 3 {
				t.Fatalf("seed %d %s: %d modes, want 3", seed, sr.Scheme, len(sr.Modes))
			}
			byMode := map[string]FaultsModeResult{}
			for _, m := range sr.Modes {
				byMode[m.Mode] = m
				if m.MeanSojournSec <= 0 || m.P99SojournSec <= 0 || m.ThroughputJobsPerHour <= 0 ||
					m.GoodputFrac <= 0 || m.GoodputFrac > 1+1e-9 {
					t.Errorf("seed %d %s/%s: degenerate result %+v", seed, sr.Scheme, m.Mode, m)
				}
			}
			base, ok := byMode["no-migration"]
			if !ok {
				t.Fatalf("seed %d %s: no-migration mode missing", seed, sr.Scheme)
			}
			full, ok := byMode["migration+retry"]
			if !ok {
				t.Fatalf("seed %d %s: migration+retry mode missing", seed, sr.Scheme)
			}
			if base.FailKills == 0 || base.LostWorkGB <= 0 {
				t.Errorf("seed %d %s: baseline storm drew no blood (kills=%d lost=%.1f)",
					seed, sr.Scheme, base.FailKills, base.LostWorkGB)
			}
			if full.LostWorkGB >= base.LostWorkGB {
				t.Errorf("seed %d %s: migration+retry lost %.1f GB, baseline %.1f",
					seed, sr.Scheme, full.LostWorkGB, base.LostWorkGB)
			}
			if full.P99SojournSec >= base.P99SojournSec {
				t.Errorf("seed %d %s: migration+retry p99 %.1f s, baseline %.1f",
					seed, sr.Scheme, full.P99SojournSec, base.P99SojournSec)
			}
			if full.Migrations == 0 {
				t.Errorf("seed %d %s: migration+retry performed no migrations", seed, sr.Scheme)
			}
		}
		if seed == 1 {
			tables := r.Tables()
			if len(tables) != 3 || !strings.Contains(tables[0].String(), "lost GB") ||
				!strings.Contains(tables[2].String(), "migrations") {
				t.Error("faults tables broken")
			}
		}
	}
}

// The same storm replays for every (scheme, mode) cell of a stream, and the
// stream fan-out is seeded per unit, so the study must stay bit-identical at
// any worker count.
func TestFaultsDeterministicAcrossWorkerCounts(t *testing.T) {
	ctx := faultsCtx(1)
	if !testing.Short() {
		ctx.MixesPerScenario = 16
	}
	ctx.Workers = 1
	a, err := Faults(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Workers = 4
	b, err := Faults(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Schemes) != len(b.Schemes) {
		t.Fatal("scheme counts differ")
	}
	for i := range a.Schemes {
		for j := range a.Schemes[i].Modes {
			x, y := a.Schemes[i].Modes[j], b.Schemes[i].Modes[j]
			if x != y {
				t.Errorf("%s/%s: %+v vs %+v", a.Schemes[i].Scheme, x.Mode, x, y)
			}
		}
	}
}

// The faults study simulates racked fleets under correlated storms — the
// workload the rack-partitioned sharded event loop (cluster.Config.Shards)
// was built for — so `reproduce -exp faults -shards N` must stay
// bit-identical to the single-loop study at any shard count.
func TestFaultsDeterministicAcrossShardCounts(t *testing.T) {
	ctx := faultsCtx(1)
	a, err := Faults(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Cfg.Shards = 2
	b, err := Faults(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Schemes) != len(b.Schemes) {
		t.Fatal("scheme counts differ")
	}
	for i := range a.Schemes {
		for j := range a.Schemes[i].Modes {
			x, y := a.Schemes[i].Modes[j], b.Schemes[i].Modes[j]
			if x != y {
				t.Errorf("%s/%s: shards=1 %+v vs shards=2 %+v", a.Schemes[i].Scheme, x.Mode, x, y)
			}
		}
	}
}
