package experiments

import (
	"fmt"
	"math/rand"

	"moespark/internal/cluster"
	"moespark/internal/memfunc"
	"moespark/internal/metrics"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

// SchemeResult aggregates one scheme's performance over a scenario's mixes.
type SchemeResult struct {
	Scheme string
	metrics.Aggregate
}

// ScenarioResult is one Table 3 scenario evaluated under several schemes.
type ScenarioResult struct {
	Label   string
	Apps    int
	Schemes []SchemeResult
}

// Fig6Result reproduces Figure 6: normalized STP and ANTT reduction across
// the ten runtime scenarios for Pairwise, Quasar, MoE (ours) and Oracle.
type Fig6Result struct {
	Scenarios []ScenarioResult
	// Geomean per scheme across scenarios (the paper's headline row).
	Geomean map[string]metrics.Aggregate
}

// schemeSet builds fresh policy factories; models are trained once.
type schemeSet struct {
	names     []string
	factories map[string]func(mixSeed int64) cluster.Scheduler
}

func standardSchemes(ctx Context) (schemeSet, error) {
	moeModel, _, err := trainedMoE(ctx, nil, 61)
	if err != nil {
		return schemeSet{}, err
	}
	quasarModel, err := sched.TrainQuasar(workload.TrainingSet(), ctx.rng(62))
	if err != nil {
		return schemeSet{}, err
	}
	return schemeSet{
		names: []string{"Pairwise", "Quasar", "MoE", "Oracle"},
		factories: map[string]func(int64) cluster.Scheduler{
			"Pairwise": func(int64) cluster.Scheduler { return sched.NewPairwise() },
			"Quasar": func(seed int64) cluster.Scheduler {
				return sched.NewQuasar(quasarModel, rand.New(rand.NewSource(seed)))
			},
			"MoE": func(seed int64) cluster.Scheduler {
				return sched.NewMoE(moeModel, rand.New(rand.NewSource(seed)))
			},
			"Oracle": func(int64) cluster.Scheduler { return sched.NewOracle() },
		},
	}, nil
}

// runScenarios evaluates each scheme on MixesPerScenario mixes per scenario.
// The (scenario, mix) units fan out over the concurrent runner; each unit is
// seeded independently and writes to its own slot, so the aggregates are
// bit-identical to the serial loop for any worker count.
func runScenarios(ctx Context, set schemeSet, scenarios []workload.Scenario) ([]ScenarioResult, map[string]metrics.Aggregate, error) {
	mixes := ctx.MixesPerScenario
	// outcomes[si*mixes+mix][ni] is the comparison for scheme set.names[ni].
	outcomes := make([][]metrics.Comparison, len(scenarios)*mixes)
	err := forEachIndexed(ctx.workers(), len(outcomes), func(item int) error {
		si, mix := item/mixes, item%mixes
		sc := scenarios[si]
		mixSeed := ctx.Seed*1_000_003 + int64(si)*1009 + int64(mix)
		jobs := workload.RandomMix(sc, rand.New(rand.NewSource(mixSeed)))
		cmps := make([]metrics.Comparison, len(set.names))
		for ni, name := range set.names {
			c := cluster.New(ctx.Cfg)
			res, err := c.Run(jobs, set.factories[name](mixSeed+int64(len(name))))
			if err != nil {
				return fmt.Errorf("experiments: %s under %s: %w", sc.Label, name, err)
			}
			run, err := metrics.FromResult(c, res)
			if err != nil {
				return err
			}
			cmps[ni] = metrics.Compare(run, metrics.SerialBaseline(c, jobs))
		}
		outcomes[item] = cmps
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Aggregate in the serial path's exact iteration order.
	out := make([]ScenarioResult, 0, len(scenarios))
	all := map[string][]metrics.Comparison{}
	for si, sc := range scenarios {
		perScheme := map[string][]metrics.Comparison{}
		for mix := 0; mix < mixes; mix++ {
			for ni, name := range set.names {
				cmp := outcomes[si*mixes+mix][ni]
				perScheme[name] = append(perScheme[name], cmp)
				all[name] = append(all[name], cmp)
			}
		}
		sr := ScenarioResult{Label: sc.Label, Apps: sc.Apps}
		for _, name := range set.names {
			sr.Schemes = append(sr.Schemes, SchemeResult{
				Scheme:    name,
				Aggregate: metrics.AggregateComparisons(perScheme[name]),
			})
		}
		out = append(out, sr)
	}
	geo := map[string]metrics.Aggregate{}
	for _, name := range set.names {
		geo[name] = metrics.AggregateComparisons(all[name])
	}
	return out, geo, nil
}

// Fig6 runs the headline comparison.
func Fig6(ctx Context) (Fig6Result, error) {
	ctx = ctx.withDefaults()
	set, err := standardSchemes(ctx)
	if err != nil {
		return Fig6Result{}, err
	}
	scenarios, geo, err := runScenarios(ctx, set, workload.Scenarios)
	if err != nil {
		return Fig6Result{}, err
	}
	return Fig6Result{Scenarios: scenarios, Geomean: geo}, nil
}

// Tables renders the STP and ANTT panels of Figure 6.
func (r Fig6Result) Tables() []Table {
	stp := Table{
		Title:   "Figure 6a: normalized STP per scenario",
		Header:  []string{"scenario", "apps", "Pairwise", "Quasar", "MoE(ours)", "Oracle", "ours/oracle"},
		Caption: "Paper: ours 8.69x geomean, 83.9% of Oracle, 1.28x over Quasar.",
	}
	antt := Table{
		Title:  "Figure 6b: ANTT reduction % per scenario",
		Header: []string{"scenario", "apps", "Pairwise", "Quasar", "MoE(ours)", "Oracle", "ours/oracle"},
	}
	row := func(sr ScenarioResult, stpPanel bool) []string {
		cells := []string{sr.Label, fmt.Sprintf("%d", sr.Apps)}
		var ours, oracle float64
		for _, s := range sr.Schemes {
			v := s.NormalizedSTP
			if !stpPanel {
				v = s.ANTTReductionPct
			}
			cells = append(cells, f2(v))
			if s.Scheme == "MoE" {
				ours = v
			}
			if s.Scheme == "Oracle" {
				oracle = v
			}
		}
		ratio := "-"
		if oracle != 0 {
			ratio = f2(ours / oracle)
		}
		return append(cells, ratio)
	}
	for _, sr := range r.Scenarios {
		stp.Rows = append(stp.Rows, row(sr, true))
		antt.Rows = append(antt.Rows, row(sr, false))
	}
	geoRow := func(stpPanel bool) []string {
		cells := []string{"geomean", "-"}
		var ours, oracle float64
		for _, name := range []string{"Pairwise", "Quasar", "MoE", "Oracle"} {
			agg := r.Geomean[name]
			v := agg.NormalizedSTP
			if !stpPanel {
				v = agg.ANTTReductionPct
			}
			cells = append(cells, f2(v))
			if name == "MoE" {
				ours = v
			}
			if name == "Oracle" {
				oracle = v
			}
		}
		ratio := "-"
		if oracle != 0 {
			ratio = f2(ours / oracle)
		}
		return append(cells, ratio)
	}
	stp.Rows = append(stp.Rows, geoRow(true))
	antt.Rows = append(antt.Rows, geoRow(false))
	return []Table{stp, antt}
}

// Fig9Result compares the MoE against unified single-model baselines.
type Fig9Result struct {
	Scenarios []ScenarioResult
	Geomean   map[string]metrics.Aggregate
}

// Fig9 runs the unified-model comparison (Figure 9).
func Fig9(ctx Context) (Fig9Result, error) {
	ctx = ctx.withDefaults()
	moeModel, _, err := trainedMoE(ctx, nil, 91)
	if err != nil {
		return Fig9Result{}, err
	}
	annModel, err := sched.TrainUnifiedANN(workload.TrainingSet(), ctx.rng(92))
	if err != nil {
		return Fig9Result{}, err
	}
	set := schemeSet{
		names: []string{"Linear", "Exponential", "NapierianLog", "ANN", "MoE"},
		factories: map[string]func(int64) cluster.Scheduler{
			"Linear": func(seed int64) cluster.Scheduler {
				return sched.NewUnified(memfunc.LinearPower, rand.New(rand.NewSource(seed)))
			},
			"Exponential": func(seed int64) cluster.Scheduler {
				return sched.NewUnified(memfunc.Exponential, rand.New(rand.NewSource(seed)))
			},
			"NapierianLog": func(seed int64) cluster.Scheduler {
				return sched.NewUnified(memfunc.NapierianLog, rand.New(rand.NewSource(seed)))
			},
			"ANN": func(seed int64) cluster.Scheduler {
				return sched.NewUnifiedANN(annModel, rand.New(rand.NewSource(seed)))
			},
			"MoE": func(seed int64) cluster.Scheduler {
				return sched.NewMoE(moeModel, rand.New(rand.NewSource(seed)))
			},
		},
	}
	scenarios, geo, err := runScenarios(ctx, set, workload.Scenarios)
	if err != nil {
		return Fig9Result{}, err
	}
	return Fig9Result{Scenarios: scenarios, Geomean: geo}, nil
}

// Tables renders Figure 9.
func (r Fig9Result) Tables() []Table {
	return comparisonTables(
		"Figure 9", "unified single-model baselines vs our approach",
		[]string{"Linear", "Exponential", "NapierianLog", "ANN", "MoE"},
		r.Scenarios, r.Geomean,
	)
}

// Fig10Result compares the MoE against online gradient search.
type Fig10Result struct {
	Scenarios []ScenarioResult
	Geomean   map[string]metrics.Aggregate
}

// Fig10 runs the online-search comparison (Figure 10).
func Fig10(ctx Context) (Fig10Result, error) {
	ctx = ctx.withDefaults()
	moeModel, _, err := trainedMoE(ctx, nil, 101)
	if err != nil {
		return Fig10Result{}, err
	}
	set := schemeSet{
		names: []string{"OnlineSearch", "MoE"},
		factories: map[string]func(int64) cluster.Scheduler{
			"OnlineSearch": func(seed int64) cluster.Scheduler {
				return sched.NewOnlineSearch(rand.New(rand.NewSource(seed)))
			},
			"MoE": func(seed int64) cluster.Scheduler {
				return sched.NewMoE(moeModel, rand.New(rand.NewSource(seed)))
			},
		},
	}
	scenarios, geo, err := runScenarios(ctx, set, workload.Scenarios)
	if err != nil {
		return Fig10Result{}, err
	}
	return Fig10Result{Scenarios: scenarios, Geomean: geo}, nil
}

// Tables renders Figure 10.
func (r Fig10Result) Tables() []Table {
	return comparisonTables(
		"Figure 10", "online gradient search vs our approach (paper: ours 2.4x/2.6x better)",
		[]string{"OnlineSearch", "MoE"},
		r.Scenarios, r.Geomean,
	)
}

// comparisonTables renders STP/ANTT panels for arbitrary scheme lists.
func comparisonTables(figure, caption string, names []string, scenarios []ScenarioResult, geo map[string]metrics.Aggregate) []Table {
	header := append([]string{"scenario", "apps"}, names...)
	stp := Table{Title: figure + "a: normalized STP", Header: header, Caption: caption}
	antt := Table{Title: figure + "b: ANTT reduction %", Header: header}
	for _, sr := range scenarios {
		byName := map[string]SchemeResult{}
		for _, s := range sr.Schemes {
			byName[s.Scheme] = s
		}
		stpRow := []string{sr.Label, fmt.Sprintf("%d", sr.Apps)}
		anttRow := []string{sr.Label, fmt.Sprintf("%d", sr.Apps)}
		for _, n := range names {
			stpRow = append(stpRow, f2(byName[n].NormalizedSTP))
			anttRow = append(anttRow, f2(byName[n].ANTTReductionPct))
		}
		stp.Rows = append(stp.Rows, stpRow)
		antt.Rows = append(antt.Rows, anttRow)
	}
	stpGeo := []string{"geomean", "-"}
	anttGeo := []string{"geomean", "-"}
	for _, n := range names {
		stpGeo = append(stpGeo, f2(geo[n].NormalizedSTP))
		anttGeo = append(anttGeo, f2(geo[n].ANTTReductionPct))
	}
	stp.Rows = append(stp.Rows, stpGeo)
	antt.Rows = append(antt.Rows, anttGeo)
	return []Table{stp, antt}
}

// Fig7Result reproduces Figures 7 and 8: per-node utilization traces and the
// resulting STP / wall-clock turnaround for the Table 4 mix under Pairwise,
// Quasar and our approach.
type Fig7Result struct {
	Schemes []Fig7Scheme
}

// Fig7Scheme is one scheme's trace and outcome for the Table 4 mix.
type Fig7Scheme struct {
	Scheme string
	// MeanUtilization is the time-averaged CPU utilization across nodes.
	MeanUtilization float64
	// MakespanMin is the wall-clock time to finish all 30 applications, in
	// minutes (Figure 8b).
	MakespanMin float64
	// STP is the Equation-1 value (Figure 8a).
	STP float64
	// Trace carries the full heatmap data (Figure 7).
	Trace *cluster.Trace
}

// Fig7 runs the Table 4 mix under the three schemes with tracing enabled.
func Fig7(ctx Context) (Fig7Result, error) {
	ctx = ctx.withDefaults()
	jobs, err := workload.Table4Mix()
	if err != nil {
		return Fig7Result{}, err
	}
	moeModel, _, err := trainedMoE(ctx, nil, 71)
	if err != nil {
		return Fig7Result{}, err
	}
	quasarModel, err := sched.TrainQuasar(workload.TrainingSet(), ctx.rng(72))
	if err != nil {
		return Fig7Result{}, err
	}
	runs := []struct {
		name string
		mk   func() cluster.Scheduler
	}{
		{"Pairwise", func() cluster.Scheduler { return sched.NewPairwise() }},
		{"Quasar", func() cluster.Scheduler { return sched.NewQuasar(quasarModel, ctx.rng(73)) }},
		{"MoE", func() cluster.Scheduler { return sched.NewMoE(moeModel, ctx.rng(74)) }},
	}
	var out Fig7Result
	for _, r := range runs {
		cfg := ctx.Cfg
		cfg.TraceInterval = 60
		c := cluster.New(cfg)
		res, err := c.Run(jobs, r.mk())
		if err != nil {
			return Fig7Result{}, fmt.Errorf("experiments: fig7 %s: %w", r.name, err)
		}
		run, err := metrics.FromResult(c, res)
		if err != nil {
			return Fig7Result{}, err
		}
		out.Schemes = append(out.Schemes, Fig7Scheme{
			Scheme:          r.name,
			MeanUtilization: res.Trace.MeanUtilization(),
			MakespanMin:     run.MakespanSec / 60,
			STP:             run.STP,
			Trace:           res.Trace,
		})
	}
	return out, nil
}

// Table renders the Figure 7/8 summary.
func (r Fig7Result) Table() Table {
	t := Table{
		Title:   "Figures 7-8: Table 4 mix (30 apps) — utilization, STP, turnaround",
		Header:  []string{"scheme", "mean CPU util", "STP", "turnaround (min)"},
		Caption: "Paper: our approach has the highest utilization; 1.81x/1.39x STP and 1.46x/1.28x turnaround over Pairwise/Quasar.",
	}
	for _, s := range r.Schemes {
		t.Rows = append(t.Rows, []string{s.Scheme, pct(s.MeanUtilization * 100), f2(s.STP), f1(s.MakespanMin)})
	}
	return t
}
