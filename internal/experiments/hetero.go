package experiments

import (
	"fmt"
	"math/rand"

	"moespark/internal/cluster"
	"moespark/internal/metrics"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

// heteroRate is the offered load of the heterogeneous-fleet study (jobs/hour):
// high enough that placement quality matters, low enough that every scheme
// drains the queue on every fleet.
const heteroRate = 60.0

// heteroApps is the stream length per run.
const heteroApps = 30

// heteroTraceInterval samples per-node utilization for the imbalance metrics.
const heteroTraceInterval = 30.0

// HeteroResult is the heterogeneous-fleet study: the same open-system job
// stream replayed over fleet mixes the paper's uniform testbed cannot
// express — big/little machines, long-tail stragglers, and a drain/fail
// storm with autoscaler backfill — compared across co-location schemes on
// throughput, latency tails and fleet balance.
type HeteroResult struct {
	// AppsPerStream is the number of jobs per arrival stream.
	AppsPerStream int
	// Streams is how many independent streams were averaged per fleet.
	Streams int
	// RatePerHour is the configured Poisson arrival rate.
	RatePerHour float64
	// Fleets holds one entry per fleet scenario.
	Fleets []HeteroFleetResult
}

// HeteroFleetResult is one fleet scenario evaluated under every scheme.
type HeteroFleetResult struct {
	// Fleet names the scenario (uniform, bimodal, stragglers, storm).
	Fleet string
	// Nodes is the initial fleet size.
	Nodes int
	// Schemes holds per-scheme outcomes.
	Schemes []HeteroSchemeResult
}

// HeteroSchemeResult aggregates one scheme's behaviour on one fleet, averaged
// across the independent streams.
type HeteroSchemeResult struct {
	Scheme string
	// ThroughputJobsPerHour is the achieved completion rate.
	ThroughputJobsPerHour float64
	// MeanSojournSec and P95SojournSec are time-in-system statistics.
	MeanSojournSec float64
	P95SojournSec  float64
	// UtilizationCV is the mean coefficient of variation of per-node CPU
	// utilization (fleet imbalance; lower is better balanced).
	UtilizationCV float64
	// OOMKills and FailKills sum executor losses across streams.
	OOMKills  int
	FailKills int
}

// heteroFleet is one fleet scenario: initial specs plus optional lifecycle
// events, derived deterministically from a seed.
type heteroFleet struct {
	name   string
	specs  func(seed int64, cfg cluster.Config) ([]cluster.NodeSpec, error)
	events func(seed int64, cfg cluster.Config) ([]cluster.NodeEvent, error)
}

func heteroFleets() []heteroFleet {
	uniform := func(int64, cluster.Config) ([]cluster.NodeSpec, error) {
		fleet, err := workload.UniformFleet(40, workload.PaperNode())
		if err != nil {
			return nil, err
		}
		return cluster.SpecsFrom(fleet), nil
	}
	return []heteroFleet{
		{name: "uniform", specs: uniform},
		{name: "bimodal", specs: func(seed int64, _ cluster.Config) ([]cluster.NodeSpec, error) {
			fleet, err := workload.BimodalFleet(40, workload.BigNode(), workload.LittleNode(), 0.5,
				rand.New(rand.NewSource(seed)))
			if err != nil {
				return nil, err
			}
			return cluster.SpecsFrom(fleet), nil
		}},
		{name: "stragglers", specs: func(seed int64, _ cluster.Config) ([]cluster.NodeSpec, error) {
			fleet, err := workload.StragglerFleet(40, workload.PaperNode(), 0.25, 0.4,
				rand.New(rand.NewSource(seed)))
			if err != nil {
				return nil, err
			}
			return cluster.SpecsFrom(fleet), nil
		}},
		{name: "storm", specs: uniform, events: func(seed int64, _ cluster.Config) ([]cluster.NodeEvent, error) {
			// Mid-run churn: 4 rolling drains and 3 hard failures inside
			// [400s, 1300s), each backfilled by a default-spec join 120s
			// later.
			return cluster.StormEvents(40, 4, 3, 400, 900, 120, rand.New(rand.NewSource(seed)))
		}},
	}
}

// heteroSchemes is the open-system scheme set plus a speed-aware-placement
// MoE variant, which shows what the Placer interface buys on non-uniform
// hardware.
func heteroSchemes(ctx Context) (schemeSet, error) {
	moeModel, _, err := trainedMoE(ctx, nil, 301)
	if err != nil {
		return schemeSet{}, err
	}
	quasarModel, err := sched.TrainQuasar(workload.TrainingSet(), ctx.rng(302))
	if err != nil {
		return schemeSet{}, err
	}
	return schemeSet{
		names: []string{"Isolated", "Pairwise", "Quasar", "MoE", "MoE-speed"},
		factories: map[string]func(int64) cluster.Scheduler{
			"Isolated": func(int64) cluster.Scheduler { return sched.NewIsolated() },
			"Pairwise": func(int64) cluster.Scheduler { return sched.NewPairwise() },
			"Quasar": func(seed int64) cluster.Scheduler {
				return sched.NewQuasar(quasarModel, rand.New(rand.NewSource(seed)))
			},
			"MoE": func(seed int64) cluster.Scheduler {
				return sched.NewMoE(moeModel, rand.New(rand.NewSource(seed)))
			},
			"MoE-speed": func(seed int64) cluster.Scheduler {
				d := sched.NewMoE(moeModel, rand.New(rand.NewSource(seed)))
				d.PolicyName = "MoE-speed"
				d.Placer = sched.NewSpeedAware()
				return d
			},
		},
	}, nil
}

// Hetero runs the heterogeneous-fleet comparison: for each fleet scenario,
// several independent Poisson streams are replayed through the event engine
// under each scheme, and throughput, sojourn tails and fleet-imbalance
// metrics are averaged. (fleet, stream) units fan out over the concurrent
// runner with per-unit seeds.
func Hetero(ctx Context) (HeteroResult, error) {
	ctx = ctx.withDefaults()
	set, err := heteroSchemes(ctx)
	if err != nil {
		return HeteroResult{}, err
	}
	fleets := heteroFleets()
	streams := ctx.MixesPerScenario / 8
	if streams < 1 {
		streams = 1
	}
	cfg := ctx.Cfg
	cfg.TraceInterval = heteroTraceInterval

	type unit struct {
		qs   []metrics.QueueMetrics
		cv   []float64
		oom  []int
		fail []int
	}
	units := make([]unit, len(fleets)*streams)
	err = forEachIndexed(ctx.workers(), len(units), func(item int) error {
		fi, si := item/streams, item%streams
		fleet := fleets[fi]
		streamSeed := ctx.Seed*3_000_017 + int64(fi)*8009 + int64(si)
		arrivals, err := workload.PoissonArrivals(heteroApps, heteroRate/3600,
			rand.New(rand.NewSource(streamSeed)))
		if err != nil {
			return err
		}
		subs := cluster.Submissions(arrivals)
		specs, err := fleet.specs(streamSeed+77, cfg)
		if err != nil {
			return err
		}
		u := unit{
			qs:   make([]metrics.QueueMetrics, len(set.names)),
			cv:   make([]float64, len(set.names)),
			oom:  make([]int, len(set.names)),
			fail: make([]int, len(set.names)),
		}
		for ni, name := range set.names {
			c, err := cluster.NewHetero(cfg, specs)
			if err != nil {
				return err
			}
			if fleet.events != nil {
				evs, err := fleet.events(streamSeed+177, cfg)
				if err != nil {
					return err
				}
				if err := c.ScheduleNodeEvents(evs...); err != nil {
					return err
				}
			}
			res, err := c.RunOpen(subs, set.factories[name](streamSeed+int64(len(name))))
			if err != nil {
				return fmt.Errorf("experiments: hetero fleet %s under %s: %w", fleet.name, name, err)
			}
			q, err := metrics.Queueing(res, 0)
			if err != nil {
				return err
			}
			im, err := metrics.UtilizationImbalance(res.Trace)
			if err != nil {
				return err
			}
			u.qs[ni] = q
			u.cv[ni] = im.MeanCV
			u.oom[ni] = res.OOMKills
			u.fail[ni] = res.FailKills
		}
		units[item] = u
		return nil
	})
	if err != nil {
		return HeteroResult{}, err
	}

	out := HeteroResult{AppsPerStream: heteroApps, Streams: streams, RatePerHour: heteroRate}
	for fi, fleet := range fleets {
		fr := HeteroFleetResult{Fleet: fleet.name, Nodes: 40}
		for ni, name := range set.names {
			var agg HeteroSchemeResult
			agg.Scheme = name
			for si := 0; si < streams; si++ {
				u := units[fi*streams+si]
				agg.ThroughputJobsPerHour += u.qs[ni].ThroughputJobsPerHour
				agg.MeanSojournSec += u.qs[ni].MeanSojournSec
				agg.P95SojournSec += u.qs[ni].P95SojournSec
				agg.UtilizationCV += u.cv[ni]
				agg.OOMKills += u.oom[ni]
				agg.FailKills += u.fail[ni]
			}
			n := float64(streams)
			agg.ThroughputJobsPerHour /= n
			agg.MeanSojournSec /= n
			agg.P95SojournSec /= n
			agg.UtilizationCV /= n
			fr.Schemes = append(fr.Schemes, agg)
		}
		out.Fleets = append(out.Fleets, fr)
	}
	return out, nil
}

// Tables renders the heterogeneous-fleet study: achieved throughput, p95
// sojourn and utilization imbalance per fleet scenario.
func (r HeteroResult) Tables() []Table {
	names := []string{}
	if len(r.Fleets) > 0 {
		for _, s := range r.Fleets[0].Schemes {
			names = append(names, s.Scheme)
		}
	}
	header := append([]string{"fleet"}, names...)
	thr := Table{
		Title:  "Heterogeneous fleets: achieved throughput (jobs/hour)",
		Header: header,
		Caption: fmt.Sprintf("Poisson arrivals at %.0f jobs/hour, %d-app streams, %d streams per fleet; storm = 4 drains + 3 fails with backfill joins.",
			r.RatePerHour, r.AppsPerStream, r.Streams),
	}
	p95 := Table{Title: "Heterogeneous fleets: p95 sojourn time (s)", Header: header}
	cv := Table{Title: "Heterogeneous fleets: utilization imbalance (mean CV)", Header: header}
	kills := Table{Title: "Heterogeneous fleets: executor losses (OOM + node-failure kills)", Header: header}
	for _, fr := range r.Fleets {
		tRow := []string{fr.Fleet}
		pRow := []string{fr.Fleet}
		cRow := []string{fr.Fleet}
		kRow := []string{fr.Fleet}
		for _, s := range fr.Schemes {
			tRow = append(tRow, f1(s.ThroughputJobsPerHour))
			pRow = append(pRow, f1(s.P95SojournSec))
			cRow = append(cRow, f3(s.UtilizationCV))
			kRow = append(kRow, fmt.Sprintf("%d+%d", s.OOMKills, s.FailKills))
		}
		thr.Rows = append(thr.Rows, tRow)
		p95.Rows = append(p95.Rows, pRow)
		cv.Rows = append(cv.Rows, cRow)
		kills.Rows = append(kills.Rows, kRow)
	}
	return []Table{thr, p95, cv, kills}
}
