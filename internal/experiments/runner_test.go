package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"moespark/internal/workload"
)

func TestForEachIndexedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		var n atomic.Int64
		seen := make([]bool, 100)
		if err := forEachIndexed(workers, len(seen), func(i int) error {
			seen[i] = true
			n.Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n.Load() != 100 {
			t.Errorf("workers=%d ran %d units, want 100", workers, n.Load())
		}
		for i, ok := range seen {
			if !ok {
				t.Errorf("workers=%d skipped index %d", workers, i)
			}
		}
	}
}

func TestForEachIndexedReturnsLowestIndexError(t *testing.T) {
	errBoom := errors.New("boom")
	err := forEachIndexed(4, 50, func(i int) error {
		if i == 7 || i == 30 {
			return errBoom
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("got %v, want boom", err)
	}
	if err := forEachIndexed(3, 0, func(int) error { return errBoom }); err != nil {
		t.Errorf("empty range must not error, got %v", err)
	}
}

// TestParallelRunnerMatchesSerial is the determinism contract of the
// concurrent experiment runner: any worker count reproduces the serial
// results bit-for-bit.
func TestParallelRunnerMatchesSerial(t *testing.T) {
	ctx := quickCtx()
	ctx.MixesPerScenario = 2

	serialCtx := ctx
	serialCtx.Workers = 1
	parallelCtx := ctx
	parallelCtx.Workers = 4

	set, err := standardSchemes(serialCtx)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := workload.Scenarios[:3]
	serial, serialGeo, err := runScenarios(serialCtx, set, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	parallel, parallelGeo, err := runScenarios(parallelCtx, set, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("scenario results differ between serial and parallel runners")
	}
	if !reflect.DeepEqual(serialGeo, parallelGeo) {
		t.Errorf("geomean aggregates differ between serial and parallel runners")
	}
}
