package experiments

import (
	"runtime"

	"moespark/internal/parallel"
)

// workers resolves the experiment worker-pool width: Context.Workers when
// set, else one worker per available CPU.
func (c Context) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEachIndexed fans the per-mix scenario loops out across cores; see
// parallel.ForEachIndexed for the determinism contract that keeps parallel
// runs bit-identical to serial ones.
func forEachIndexed(workers, n int, fn func(i int) error) error {
	return parallel.ForEachIndexed(workers, n, fn)
}
