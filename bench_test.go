package moespark

// The benchmark harness: one testing.B per table and figure of the paper's
// evaluation (regenerating its rows/series), plus ablation benches for the
// design choices called out in DESIGN.md. Custom metrics are attached via
// b.ReportMetric so `go test -bench=.` prints the headline quantities next
// to the usual ns/op:
//
//	STP            normalized system throughput (Equation 1)
//	ANTTred%       ANTT reduction vs the serial isolated baseline
//	err%           memory-footprint prediction error
//	acc%           expert-selection accuracy
//
// The experiment contexts use small mix counts so a full -bench=. sweep
// stays in the minutes range; cmd/reproduce runs the full-size versions.

import (
	"math/rand"
	"testing"

	"moespark/internal/cluster"
	"moespark/internal/experiments"
	"moespark/internal/features"
	"moespark/internal/mathx"
	"moespark/internal/memfunc"
	"moespark/internal/metrics"
	"moespark/internal/moe"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

func benchCtx() experiments.Context {
	ctx := experiments.DefaultContext()
	ctx.MixesPerScenario = 2
	return ctx
}

// BenchmarkFig3MemoryCurves regenerates Figure 3 (observed vs predicted
// curves for Sort and PageRank).
func BenchmarkFig3MemoryCurves(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, c := range r.Benchmarks {
			for j := range c.InputGB {
				e := mathx.RelativeError(c.Predicted[j], c.Observed[j]) * 100
				if e > worst {
					worst = e
				}
			}
		}
	}
	b.ReportMetric(worst, "worst-err%")
}

// BenchmarkFig4PCAVarimax regenerates Figure 4 (PC variance shares and
// Varimax feature importance).
func BenchmarkFig4PCAVarimax(b *testing.B) {
	var pc1 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		pc1 = r.ExplainedPct[0]
	}
	b.ReportMetric(pc1, "PC1-var%")
}

// BenchmarkFig6OverallSTP regenerates Figure 6 (the headline comparison) and
// reports the geomean STP of our approach and its fraction of Oracle.
func BenchmarkFig6OverallSTP(b *testing.B) {
	var stp, ofOracle, anttRed float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		stp = r.Geomean["MoE"].NormalizedSTP
		anttRed = r.Geomean["MoE"].ANTTReductionPct
		if o := r.Geomean["Oracle"].NormalizedSTP; o > 0 {
			ofOracle = stp / o * 100
		}
	}
	b.ReportMetric(stp, "STP")
	b.ReportMetric(anttRed, "ANTTred%")
	b.ReportMetric(ofOracle, "of-oracle%")
}

// BenchmarkFig8Table4Mix regenerates Figures 7-8 (the Table 4 mix) and
// reports our scheme's STP and turnaround.
func BenchmarkFig8Table4Mix(b *testing.B) {
	var stp, makespan float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range r.Schemes {
			if s.Scheme == "MoE" {
				stp = s.STP
				makespan = s.MakespanMin
			}
		}
	}
	b.ReportMetric(stp, "STP")
	b.ReportMetric(makespan, "turnaround-min")
}

// BenchmarkFig9UnifiedModels regenerates Figure 9 (unified single-model
// baselines) and reports MoE's advantage over the best unified model — the
// mixture ablation.
func BenchmarkFig9UnifiedModels(b *testing.B) {
	var advantage float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		bestUnified := 0.0
		for _, n := range []string{"Linear", "Exponential", "NapierianLog", "ANN"} {
			if v := r.Geomean[n].NormalizedSTP; v > bestUnified {
				bestUnified = v
			}
		}
		if bestUnified > 0 {
			advantage = r.Geomean["MoE"].NormalizedSTP / bestUnified
		}
	}
	b.ReportMetric(advantage, "moe/best-unified")
}

// BenchmarkFig10OnlineSearch regenerates Figure 10 and reports MoE's
// advantage over gradient probing.
func BenchmarkFig10OnlineSearch(b *testing.B) {
	var advantage float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		if o := r.Geomean["OnlineSearch"].NormalizedSTP; o > 0 {
			advantage = r.Geomean["MoE"].NormalizedSTP / o
		}
	}
	b.ReportMetric(advantage, "moe/online")
}

// BenchmarkFig11ProfilingOverhead regenerates Figure 11 and reports the mean
// profiling overhead fraction.
func BenchmarkFig11ProfilingOverhead(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, row := range r.Rows {
			sum += (row.FeatureMin + row.CalibrationMin) / row.TotalMin * 100
		}
		overhead = sum / float64(len(r.Rows))
	}
	b.ReportMetric(overhead, "overhead%")
}

// BenchmarkFig12PerBenchmarkProfiling regenerates Figure 12.
func BenchmarkFig12PerBenchmarkProfiling(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range r.Rows {
			oh := (row.FeatureMin + row.CalibrationMin) / row.TotalMin * 100
			if oh > worst {
				worst = oh
			}
		}
	}
	b.ReportMetric(worst, "worst-overhead%")
}

// BenchmarkFig13CPULoadHistogram regenerates Figure 13.
func BenchmarkFig13CPULoadHistogram(b *testing.B) {
	var under40 float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13(benchCtx())
		n := 0
		for j := 0; j < 4; j++ {
			n += r.BucketCounts[j]
		}
		under40 = float64(n) / 44 * 100
	}
	b.ReportMetric(under40, "under40%")
}

// BenchmarkFig14Interference regenerates Figure 14 (Spark-on-Spark
// co-location slowdowns).
func BenchmarkFig14Interference(b *testing.B) {
	var mean, max float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		mean, max = r.OverallMeanPct, r.MaxPct
	}
	b.ReportMetric(mean, "mean-slowdown%")
	b.ReportMetric(max, "max-slowdown%")
}

// BenchmarkFig15Parsec regenerates Figure 15 (PARSEC co-runner slowdowns).
func BenchmarkFig15Parsec(b *testing.B) {
	var max float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		max = r.MaxPct
	}
	b.ReportMetric(max, "max-slowdown%")
}

// BenchmarkFig16FeatureSpace regenerates Figure 16 (program clusters).
func BenchmarkFig16FeatureSpace(b *testing.B) {
	var sep float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		sep = r.SeparationRatio
	}
	b.ReportMetric(sep, "separation")
}

// BenchmarkFig17Accuracy regenerates Figure 17 (LOOCV footprint accuracy).
func BenchmarkFig17Accuracy(b *testing.B) {
	var meanErr float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig17(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		meanErr = r.MeanAbsErrPct
	}
	b.ReportMetric(meanErr, "err%")
}

// BenchmarkFig18Curves regenerates Figure 18 (LOOCV curve accuracy).
func BenchmarkFig18Curves(b *testing.B) {
	var meanErr float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig18(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		meanErr = r.MeanAbsErrPct
	}
	b.ReportMetric(meanErr, "err%")
}

// BenchmarkTable5Classifiers regenerates Table 5 (classifier comparison) and
// reports the KNN selector's accuracy.
func BenchmarkTable5Classifiers(b *testing.B) {
	var knn float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Classifier == "KNN" {
				knn = row.AccuracyPct
			}
		}
	}
	b.ReportMetric(knn, "acc%")
}

// --- Ablation benches (DESIGN.md section 5) ---

// calibrationError measures the mean footprint prediction error at 62.5GB
// when calibrating with n profiling points (1 uses scaling of the training
// fit; 2 is the paper's scheme; 3 adds a least-squares refit).
func calibrationError(b *testing.B, points int) float64 {
	rng := rand.New(rand.NewSource(33))
	model, err := moe.TrainDefault(rng)
	if err != nil {
		b.Fatal(err)
	}
	var sum float64
	var n int
	for _, bench := range workload.Catalog() {
		sel, err := model.SelectFamily(bench.Counters(rng))
		if err != nil {
			b.Fatal(err)
		}
		var fn memfunc.Func
		switch points {
		case 1:
			// One observation can only rescale a reference curve.
			ref := memfunc.Func{Family: sel.Family, M: 1, B: 1}
			switch sel.Family {
			case memfunc.Exponential:
				ref = memfunc.Func{Family: memfunc.Exponential, M: 5, B: 4}
			case memfunc.NapierianLog:
				ref = memfunc.Func{Family: memfunc.NapierianLog, M: 15, B: 1.6}
			case memfunc.LinearPower:
				ref = memfunc.Func{Family: memfunc.LinearPower, M: 0.4, B: 0.95}
			}
			p := bench.ProfilePoint(2, rng)
			base, err := ref.Eval(p.X)
			if err != nil || base <= 0 {
				continue
			}
			fn = ref
			fn.M *= p.Y / base
		case 2:
			f, err := memfunc.CalibrateWithFallback(sel.Family, bench.ProfilePoint(0.5, rng), bench.ProfilePoint(2, rng))
			if err != nil {
				continue
			}
			fn = f
		default:
			pts := []memfunc.Point{
				bench.ProfilePoint(0.5, rng),
				bench.ProfilePoint(1, rng),
				bench.ProfilePoint(2, rng),
			}
			f, err := memfunc.FitFamily(sel.Family, pts)
			if err != nil {
				continue
			}
			fn = f.Func
		}
		got, err := fn.Eval(62.5)
		if err != nil {
			continue
		}
		sum += mathx.RelativeError(got, bench.Footprint(62.5)) * 100
		n++
	}
	if n == 0 {
		b.Fatal("no calibrations succeeded")
	}
	return sum / float64(n)
}

// BenchmarkAblationCalibration compares 1-, 2- and 3-point calibration.
func BenchmarkAblationCalibration(b *testing.B) {
	for _, points := range []int{1, 2, 3} {
		points := points
		name := map[int]string{1: "1point", 2: "2point-paper", 3: "3point"}[points]
		b.Run(name, func(b *testing.B) {
			var errPct float64
			for i := 0; i < b.N; i++ {
				errPct = calibrationError(b, points)
			}
			b.ReportMetric(errPct, "err%")
		})
	}
}

// BenchmarkAblationPCADims measures expert-selection LOOCV accuracy with
// different numbers of retained principal components.
func BenchmarkAblationPCADims(b *testing.B) {
	for _, dims := range []int{2, 5, 22} {
		dims := dims
		b.Run(map[int]string{2: "2PCs", 5: "5PCs-paper", 22: "allPCs"}[dims], func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(34))
				model, err := moe.TrainOnBenchmarks(workload.TrainingSet(), nil,
					moe.Config{Pipeline: features.PipelineConfig{Components: dims}}, rng)
				if err != nil {
					b.Fatal(err)
				}
				correct, total := 0, 0
				for _, bench := range workload.Catalog() {
					sel, err := model.SelectFamily(bench.Counters(rng))
					if err != nil {
						b.Fatal(err)
					}
					total++
					if sel.Family == bench.Truth.Family {
						correct++
					}
				}
				acc = float64(correct) / float64(total) * 100
			}
			b.ReportMetric(acc, "acc%")
		})
	}
}

// BenchmarkAblationKNN measures selection accuracy for K in {1,3,5}.
func BenchmarkAblationKNN(b *testing.B) {
	for _, k := range []int{1, 3, 5} {
		k := k
		b.Run(map[int]string{1: "k1-paper", 3: "k3", 5: "k5"}[k], func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(35))
				model, err := moe.TrainOnBenchmarks(workload.TrainingSet(), nil, moe.Config{K: k}, rng)
				if err != nil {
					b.Fatal(err)
				}
				correct, total := 0, 0
				for _, bench := range workload.Catalog() {
					sel, err := model.SelectFamily(bench.Counters(rng))
					if err != nil {
						b.Fatal(err)
					}
					total++
					if sel.Family == bench.Truth.Family {
						correct++
					}
				}
				acc = float64(correct) / float64(total) * 100
			}
			b.ReportMetric(acc, "acc%")
		})
	}
}

// BenchmarkAblationMargin sweeps the dispatcher's safety margin and reports
// the resulting STP on a fixed L8 mix.
func BenchmarkAblationMargin(b *testing.B) {
	rng := rand.New(rand.NewSource(36))
	model, err := moe.TrainDefault(rng)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := workload.ScenarioByLabel("L8")
	if err != nil {
		b.Fatal(err)
	}
	jobs := workload.RandomMix(sc, rand.New(rand.NewSource(37)))
	for _, margin := range []float64{0, 0.05, 0.10} {
		margin := margin
		name := map[float64]string{0: "margin0", 0.05: "margin5-default", 0.10: "margin10"}[margin]
		b.Run(name, func(b *testing.B) {
			var stp float64
			for i := 0; i < b.N; i++ {
				d := sched.NewMoE(model, rand.New(rand.NewSource(38)))
				d.SafetyMargin = margin
				c := cluster.New(cluster.DefaultConfig())
				res, err := c.Run(jobs, d)
				if err != nil {
					b.Fatal(err)
				}
				m, err := metrics.FromResult(c, res)
				if err != nil {
					b.Fatal(err)
				}
				stp = m.STP
			}
			b.ReportMetric(stp, "STP")
		})
	}
}
