package moespark

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's quick
// start does: train, predict, schedule, measure.
func TestFacadeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model, err := TrainDefaultModel(rng)
	if err != nil {
		t.Fatalf("TrainDefaultModel: %v", err)
	}

	b, err := FindBenchmark("SP.Kmeans")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := model.Predict(b.Counters(rng), b.ProfilePoint(1, rng), b.ProfilePoint(4, rng))
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if pred.Func.Family != b.Truth.Family {
		t.Errorf("predicted family %v, truth %v", pred.Func.Family, b.Truth.Family)
	}

	jobs := []Job{
		{Bench: b, InputGB: 30},
		{Bench: mustFind(t, "HB.Sort"), InputGB: 100},
		{Bench: mustFind(t, "BDB.Grep"), InputGB: 30},
	}
	sim := NewCluster(DefaultClusterConfig())
	res, err := sim.Run(jobs, NewMoEScheduler(model, rng))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cmp, err := CompareToSerial(sim, res, jobs)
	if err != nil {
		t.Fatalf("CompareToSerial: %v", err)
	}
	if cmp.NormalizedSTP <= 1 {
		t.Errorf("co-locating 3 jobs should beat serial execution, STP = %v", cmp.NormalizedSTP)
	}
}

func mustFind(t *testing.T, name string) *Benchmark {
	t.Helper()
	b, err := FindBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFacadeCalibration(t *testing.T) {
	fn, err := Calibrate(NapierianLog, ProfilePoint{X: 1, Y: 16.3}, ProfilePoint{X: 4, Y: 18.8})
	if err != nil {
		t.Fatal(err)
	}
	if fn.Family != NapierianLog {
		t.Errorf("family %v", fn.Family)
	}
	if _, err := BestFit(nil); err == nil {
		t.Error("BestFit(nil) must error")
	}
}

func TestFacadeCatalog(t *testing.T) {
	if got := len(BenchmarkCatalog()); got != 44 {
		t.Errorf("catalogue size %d, want 44", got)
	}
	jobs, err := Table4Mix()
	if err != nil || len(jobs) != 30 {
		t.Errorf("Table4Mix: %d jobs, %v", len(jobs), err)
	}
	if _, err := FindBenchmark("nope"); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestFacadeSchedulers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model, err := TrainDefaultModel(rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheduler{
		NewIsolatedScheduler(),
		NewPairwiseScheduler(),
		NewMoEScheduler(model, rng),
		NewOracleScheduler(),
		NewOnlineSearchScheduler(rng),
	} {
		if s.Name() == "" {
			t.Error("scheduler without a name")
		}
	}
}

func TestFacadeQuasarAndUnified(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q, err := TrainQuasarModel(rng)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{Bench: mustFind(t, "HB.Sort"), InputGB: 30},
		{Bench: mustFind(t, "SP.Pca"), InputGB: 30},
	}
	for _, s := range []Scheduler{
		NewQuasarScheduler(q, rng),
		NewUnifiedScheduler(NapierianLog, rng),
	} {
		sim := NewCluster(DefaultClusterConfig())
		res, err := sim.Run(jobs, s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.MakespanSec <= 0 {
			t.Errorf("%s: empty run", s.Name())
		}
	}
}

func TestFacadeModelPersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, err := TrainDefaultModel(rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(m, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Programs()) != len(m.Programs()) {
		t.Error("persistence lost programs")
	}
}

// TestFacadeOpenSystem exercises the open-system public API end to end:
// arrival generation, streaming simulation, queueing metrics.
func TestFacadeOpenSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	model, err := TrainDefaultModel(rng)
	if err != nil {
		t.Fatalf("TrainDefaultModel: %v", err)
	}
	arrivals, err := PoissonArrivals(10, 100.0/3600, rng)
	if err != nil {
		t.Fatalf("PoissonArrivals: %v", err)
	}
	sim := NewCluster(DefaultClusterConfig())
	res, err := sim.RunOpen(SubmissionsFromArrivals(arrivals), NewMoEScheduler(model, rng))
	if err != nil {
		t.Fatalf("RunOpen: %v", err)
	}
	q, err := MeasureQueueing(res, 600)
	if err != nil {
		t.Fatalf("MeasureQueueing: %v", err)
	}
	if q.Apps != 10 || q.MeanSojournSec <= 0 || q.ThroughputJobsPerHour <= 0 {
		t.Errorf("degenerate queueing metrics: %+v", q)
	}
	if _, err := BurstyArrivals(5, 0.5, 4, 60, rng); err != nil {
		t.Errorf("BurstyArrivals: %v", err)
	}
	if _, err := DiurnalArrivals(5, 0.05, 0.5, 3600, rng); err != nil {
		t.Errorf("DiurnalArrivals: %v", err)
	}
}

func TestFacadeAdaptivePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	model, err := TrainDefaultModel(rng)
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := GrowthArrivals(12, 80.0/3600, 2, 20, -0.35, rand.New(rand.NewSource(32)))
	if err != nil {
		t.Fatal(err)
	}
	pred := NewAdaptivePredictor(model, AdaptiveConfig{})
	sim := NewCluster(DefaultClusterConfig())
	res, err := sim.RunOpen(SubmissionsFromArrivals(arrivals), NewPredictorScheduler(pred, rand.New(rand.NewSource(33))))
	if err != nil {
		t.Fatal(err)
	}
	if pred.Observations() == 0 {
		t.Error("adaptive predictor received no feedback through the facade")
	}
	q, err := MeasureQueueing(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.MeanSojournSec <= 0 {
		t.Errorf("degenerate queueing metrics: %+v", q)
	}
	d := NewAdaptiveMoEScheduler(model, AdaptiveConfig{}, rand.New(rand.NewSource(34)))
	if d.Name() != "MoE-adaptive" {
		t.Errorf("adaptive scheduler named %q", d.Name())
	}
	if NewStaticPredictor(model).Name() != "MoE-static" {
		t.Errorf("static predictor misnamed")
	}
}
