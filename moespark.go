// Package moespark is a Go reproduction of "Improving Spark Application
// Throughput Via Memory Aware Task Co-location: A Mixture of Experts
// Approach" (Marco, Taylor, Porter, Wang — Middleware '17).
//
// The package re-exports the user-facing API of the reproduction:
//
//   - a mixture-of-experts memory-footprint predictor (Train / Predictor),
//   - the memory-function experts themselves (curve families, fitting,
//     two-point calibration),
//   - a discrete-event simulator of the paper's 40-node Spark/YARN testbed,
//     usable both as a closed batch (all jobs at t=0, the paper's setting)
//     and as an open system consuming a stream of timed submissions,
//   - seeded arrival-process generators (Poisson, bursty on/off, diurnal
//     ramp) and queueing metrics (wait, sojourn percentiles, windowed
//     throughput) for the open-system setting,
//   - heterogeneous fleets: per-node hardware specs (NewHeteroCluster),
//     seeded fleet generators (uniform, bimodal big/little, long-tail
//     stragglers), timed node lifecycle events (join, drain, fail — a
//     drained node is decommissioned once its last executor and foreign
//     task finish) and fleet-imbalance metrics,
//   - multi-tenant priority classes: class-tagged arrival streams
//     (TagArrivals), weighted-FCFS admission, class-aware placement and
//     preemptive scheduling (NewPriorityScheduler) with per-class queueing
//     metrics (MeasureQueueingByClass),
//   - an online prediction pipeline: schedulers consume a Predictor
//     interface rather than a concrete model, the engine reports every
//     executor's realised footprint back through the scheduler (completion
//     and OOM), and the adaptive implementation
//     (NewAdaptiveMoEScheduler) recalibrates expert coefficients
//     incrementally and retrains the gate from that feedback — with seeded
//     drift generators (GrowthArrivals, RegimeArrivals) for the
//     non-stationary workloads where adaptation pays,
//   - the paper's co-location schedulers (Pairwise, Quasar, MoE, Oracle,
//     OnlineSearch, unified single-model baselines), each accepting a
//     pluggable placement scorer (first-fit, best-fit-memory, speed-aware),
//     and
//   - the evaluation harness that regenerates every table and figure of the
//     paper (see internal/experiments and cmd/reproduce).
//
// Quick start (closed batch, the paper's setting):
//
//	rng := rand.New(rand.NewSource(1))
//	model, err := moespark.TrainDefaultModel(rng)
//	...
//	sim := moespark.NewCluster(moespark.DefaultClusterConfig())
//	res, err := sim.Run(jobs, moespark.NewMoEScheduler(model, rng))
//
// Open system (streaming submissions): generate a timed arrival stream,
// replay it through RunOpen, and read the queueing metrics:
//
//	arrivals, err := moespark.PoissonArrivals(100, 80.0/3600, rng) // 80 jobs/hour
//	...
//	sim := moespark.NewCluster(moespark.DefaultClusterConfig())
//	res, err := sim.RunOpen(moespark.SubmissionsFromArrivals(arrivals),
//		moespark.NewMoEScheduler(model, rng))
//	q, err := moespark.MeasureQueueing(res, 600) // 10-minute throughput windows
//	fmt.Println(q.MeanWaitSec, q.P95SojournSec, q.ThroughputJobsPerHour)
//
// Closed-batch Run is a thin wrapper over RunOpen with every submission at
// t=0 and produces identical results to the pre-open-system engine.
//
// Multi-tenant priority classes: tag the stream with tenant classes, wrap
// any scheduler in the priority layer (weighted FCFS, class-aware placement,
// optional preemption of preemptible executors with OOM-style charge-back),
// and read per-class queueing metrics:
//
//	tagged, err := moespark.TagArrivals(arrivals, moespark.LatencyBatchMix(0.3), rng)
//	...
//	sim := moespark.NewCluster(moespark.DefaultClusterConfig())
//	res, err := sim.RunOpen(moespark.SubmissionsFromArrivals(tagged),
//		moespark.NewPriorityScheduler(sched, true)) // true = preempt
//	byClass, err := moespark.MeasureQueueingByClass(res, 0)
//	fmt.Println(byClass[0].Class, byClass[0].P99SojournSec, res.PreemptKills)
//
// Untagged streams behave bit-for-bit like runs predating priority classes,
// even under the priority wrapper.
//
// See examples/ for complete programs.
package moespark

import (
	"io"
	"math/rand"

	"moespark/internal/cluster"
	"moespark/internal/memfunc"
	"moespark/internal/metrics"
	"moespark/internal/moe"
	"moespark/internal/sched"
	"moespark/internal/workload"
)

// Re-exported core types. The heavy lifting lives in internal packages; the
// aliases below are the stable public surface.
type (
	// Model is a trained mixture-of-experts memory predictor.
	Model = moe.Model
	// ModelConfig controls training (K, PCA settings, confidence factor).
	ModelConfig = moe.Config
	// TrainingProgram is one offline training example.
	TrainingProgram = moe.TrainingProgram
	// Prediction is a calibrated memory function for one application.
	Prediction = moe.Prediction

	// Predictor is the online prediction pipeline the schedulers consume:
	// Predict selects and calibrates an expert, Observe feeds realised
	// footprints back (a no-op on the static paper model).
	Predictor = moe.Predictor
	// PredictorObservation is one predicted-vs-actual footprint outcome.
	PredictorObservation = moe.Observation
	// AdaptiveConfig tunes the feedback-driven predictor (sliding window,
	// forgetting factor, gate reweighting and teaching thresholds).
	AdaptiveConfig = moe.AdaptiveConfig
	// AdaptivePredictor is the feedback-driven mixture-of-experts predictor.
	AdaptivePredictor = moe.Adaptive

	// MemoryFunc is an instantiated memory-function expert.
	MemoryFunc = memfunc.Func
	// MemoryFamily enumerates the expert families.
	MemoryFamily = memfunc.Family
	// ProfilePoint is one (input size, footprint) profiling observation.
	ProfilePoint = memfunc.Point

	// Benchmark is a synthetic Spark application model.
	Benchmark = workload.Benchmark
	// Job is one application submission (benchmark + input size).
	Job = workload.Job
	// Arrival is one timed job submission of an open-system stream.
	Arrival = workload.Arrival
	// Class is one tenant priority class (name, admission weight,
	// preemptibility); the zero Class is the untagged single-tenant default.
	Class = workload.Class
	// ClassShare is one entry of a tenant class mix: class, stream share and
	// workload profile.
	ClassShare = workload.ClassShare

	// Cluster is the discrete-event simulator of the evaluation platform.
	Cluster = cluster.Cluster
	// ClusterConfig describes the simulated platform.
	ClusterConfig = cluster.Config
	// NodeSpec is one node's hardware description (heterogeneous fleets).
	NodeSpec = cluster.NodeSpec
	// NodeEvent is one timed node lifecycle event (join, drain, fail).
	NodeEvent = cluster.NodeEvent
	// NodeEventKind enumerates node lifecycle event kinds.
	NodeEventKind = cluster.NodeEventKind
	// NodeClass describes one node class for the fleet generators.
	NodeClass = workload.NodeClass
	// Scheduler is a co-location policy driving the simulator.
	Scheduler = cluster.Scheduler
	// Dispatcher is the configurable job dispatcher behind every scheduler
	// constructor; its Placer field selects the placement scorer.
	Dispatcher = sched.Dispatcher
	// Placer scores candidate nodes for executor placement.
	Placer = sched.Placer
	// Submission is one timed arrival consumed by Cluster.RunOpen.
	Submission = cluster.Submission
	// Result summarises a simulation run.
	Result = cluster.Result
	// Imbalance summarises fleet utilization imbalance from a trace.
	Imbalance = metrics.Imbalance

	// RunMetrics holds the paper's STP / ANTT metrics for one run.
	RunMetrics = metrics.RunMetrics
	// Comparison sets a run against the serial isolated baseline.
	Comparison = metrics.Comparison
	// QueueMetrics holds the open-system queueing metrics for one run.
	QueueMetrics = metrics.QueueMetrics
	// ClassQueueMetrics is the queueing summary of one tenant class.
	ClassQueueMetrics = metrics.ClassQueueMetrics
	// ThroughputWindow is one windowed-throughput sample.
	ThroughputWindow = metrics.ThroughputWindow
)

// Expert families (Table 1 of the paper).
const (
	LinearPower  = memfunc.LinearPower
	Exponential  = memfunc.Exponential
	NapierianLog = memfunc.NapierianLog
)

// Node lifecycle event kinds.
const (
	NodeJoin  = cluster.NodeJoin
	NodeDrain = cluster.NodeDrain
	NodeFail  = cluster.NodeFail
)

// TrainModel trains a mixture-of-experts predictor on arbitrary training
// programs.
func TrainModel(programs []TrainingProgram, cfg ModelConfig) (*Model, error) {
	return moe.Train(programs, cfg)
}

// TrainDefaultModel trains on the paper's 16 HiBench + BigDataBench
// programs.
func TrainDefaultModel(rng *rand.Rand) (*Model, error) {
	return moe.TrainDefault(rng)
}

// SaveModel serialises a trained model's deployable artefacts (scaler
// bounds, PCA matrix, labelled programs) as JSON.
func SaveModel(m *Model, w io.Writer) error { return m.Save(w) }

// LoadModel reconstructs a model saved with SaveModel.
func LoadModel(r io.Reader) (*Model, error) { return moe.Load(r) }

// Replay is the paper's measurement protocol: repeat a run until the 95 %
// confidence interval of mean STP is within 5 % of the mean.
type Replay = metrics.Replay

// ReplayOutcome reports a converged replayed measurement.
type ReplayOutcome = metrics.ReplayOutcome

// BestFit fits all expert families to profiling points and returns the best,
// the offline labelling step of training.
func BestFit(points []ProfilePoint) (memfunc.Fit, error) { return memfunc.BestFit(points) }

// Calibrate instantiates one family's coefficients from two profiling
// observations (the paper's 5 %/10 % runs).
func Calibrate(family MemoryFamily, p1, p2 ProfilePoint) (MemoryFunc, error) {
	return memfunc.Calibrate(family, p1, p2)
}

// BenchmarkCatalog returns the 44-benchmark evaluation catalogue.
func BenchmarkCatalog() []*Benchmark { return workload.Catalog() }

// FindBenchmark looks a benchmark up by suite-qualified name (e.g.
// "HB.Sort").
func FindBenchmark(name string) (*Benchmark, error) { return workload.Find(name) }

// Table4Mix returns the paper's 30-application mix (Table 4).
func Table4Mix() ([]Job, error) { return workload.Table4Mix() }

// DefaultClusterConfig returns the paper's 40-node platform.
func DefaultClusterConfig() ClusterConfig { return cluster.DefaultConfig() }

// NewCluster creates an idle simulated cluster.
func NewCluster(cfg ClusterConfig) *Cluster { return cluster.New(cfg) }

// NewHeteroCluster creates an idle heterogeneous cluster with one node per
// spec; platform-wide behaviour still comes from cfg.
func NewHeteroCluster(cfg ClusterConfig, specs []NodeSpec) (*Cluster, error) {
	return cluster.NewHetero(cfg, specs)
}

// PaperNodeClass is the paper's testbed machine; BigNodeClass and
// LittleNodeClass are the bimodal-fleet classes.
func PaperNodeClass() NodeClass  { return workload.PaperNode() }
func BigNodeClass() NodeClass    { return workload.BigNode() }
func LittleNodeClass() NodeClass { return workload.LittleNode() }

// UniformFleet returns n identical nodes of the given class.
func UniformFleet(n int, class NodeClass) ([]NodeClass, error) {
	return workload.UniformFleet(n, class)
}

// BimodalFleet returns a seeded n-node big/little mix.
func BimodalFleet(n int, big, little NodeClass, bigFrac float64, rng *rand.Rand) ([]NodeClass, error) {
	return workload.BimodalFleet(n, big, little, bigFrac, rng)
}

// StragglerFleet returns a seeded n-node fleet with a long-tail slow
// fraction.
func StragglerFleet(n int, base NodeClass, stragglerFrac, minSpeed float64, rng *rand.Rand) ([]NodeClass, error) {
	return workload.StragglerFleet(n, base, stragglerFrac, minSpeed, rng)
}

// SpecsFromFleet converts a fleet description into per-node specs for
// NewHeteroCluster.
func SpecsFromFleet(fleet []NodeClass) []NodeSpec { return cluster.SpecsFrom(fleet) }

// StormEvents generates a seeded drain/fail storm with backfill joins over
// an initial fleet of nodeCount nodes.
func StormEvents(nodeCount, drains, fails int, start, span, rejoinDelay float64, rng *rand.Rand) ([]NodeEvent, error) {
	return cluster.StormEvents(nodeCount, drains, fails, start, span, rejoinDelay, rng)
}

// Placement scorers for Dispatcher.Placer: first fit (the default
// behaviour), tightest-memory-fit bin packing, and speed-aware placement for
// heterogeneous fleets.
func NewFirstFitPlacer() Placer      { return sched.NewFirstFit() }
func NewBestFitMemoryPlacer() Placer { return sched.NewBestFitMemory() }
func NewSpeedAwarePlacer() Placer    { return sched.NewSpeedAware() }

// MeasureImbalance computes fleet utilization-imbalance metrics from a
// traced run (set ClusterConfig.TraceInterval).
func MeasureImbalance(res *Result) (Imbalance, error) {
	return metrics.UtilizationImbalance(res.Trace)
}

// Scheduler constructors for the paper's comparative schemes. Each returns
// the concrete *Dispatcher (which implements Scheduler) so it can be tuned —
// e.g. given a Placer — or wrapped in NewPriorityScheduler.
func NewIsolatedScheduler() *Dispatcher { return sched.NewIsolated() }

// NewPairwiseScheduler returns the pairwise co-location baseline.
func NewPairwiseScheduler() *Dispatcher { return sched.NewPairwise() }

// NewMoEScheduler returns the paper's scheme backed by a trained model (the
// static predict-once-at-submission pipeline).
func NewMoEScheduler(model *Model, rng *rand.Rand) *Dispatcher { return sched.NewMoE(model, rng) }

// NewStaticPredictor wraps a trained model as a non-adaptive Predictor.
func NewStaticPredictor(model *Model) Predictor { return moe.NewStatic(model) }

// NewAdaptivePredictor wraps a trained model with online adaptation state:
// incremental expert recalibration from observed footprints, capped gate
// reweighting, and evidence-validated gate self-training. The model is
// cloned. Pair each predictor with one scheduler (NewPredictorScheduler);
// to warm-start a later run from the learned state, reuse that scheduler as
// a whole rather than re-wrapping the predictor.
func NewAdaptivePredictor(model *Model, cfg AdaptiveConfig) *AdaptivePredictor {
	return moe.NewAdaptive(model, cfg)
}

// NewAdaptiveMoEScheduler returns the feedback-driven MoE scheme: the
// engine reports each executor's realised footprint back through the
// scheduler (completion and OOM), and the predictor recalibrates
// mid-stream. The zero AdaptiveConfig selects the defaults used by the
// drift study.
func NewAdaptiveMoEScheduler(model *Model, cfg AdaptiveConfig, rng *rand.Rand) *Dispatcher {
	return sched.NewAdaptiveMoE(model, cfg, rng)
}

// NewPredictorScheduler returns an MoE-style scheme driven by an arbitrary
// prediction pipeline implementation.
func NewPredictorScheduler(p Predictor, rng *rand.Rand) *Dispatcher {
	return sched.NewMoEPredictor(p, rng)
}

// NewOracleScheduler returns the ideal-predictor scheme.
func NewOracleScheduler() *Dispatcher { return sched.NewOracle() }

// NewOnlineSearchScheduler returns the gradient-probing baseline.
func NewOnlineSearchScheduler(rng *rand.Rand) *Dispatcher { return sched.NewOnlineSearch(rng) }

// QuasarModel is the classification-based comparator's workload index.
type QuasarModel = sched.QuasarModel

// TrainQuasarModel builds the Quasar comparator from the paper's training
// benchmarks.
func TrainQuasarModel(rng *rand.Rand) (*QuasarModel, error) {
	return sched.TrainQuasar(workload.TrainingSet(), rng)
}

// NewQuasarScheduler returns the Quasar comparator scheme.
func NewQuasarScheduler(model *QuasarModel, rng *rand.Rand) *Dispatcher {
	return sched.NewQuasar(model, rng)
}

// NewUnifiedScheduler returns a single-family baseline scheme (Figure 9).
func NewUnifiedScheduler(family MemoryFamily, rng *rand.Rand) *Dispatcher {
	return sched.NewUnified(family, rng)
}

// PoissonArrivals generates a seeded open-system stream with exponential
// inter-arrival gaps at the given mean rate (jobs per second), drawing jobs
// from the 44-benchmark catalogue.
func PoissonArrivals(n int, ratePerSec float64, rng *rand.Rand) ([]Arrival, error) {
	return workload.PoissonArrivals(n, ratePerSec, rng)
}

// BurstyArrivals generates a seeded on/off stream: bursts of mean size
// meanBurst at burstRate jobs/sec, separated by idle gaps of mean idleSec.
func BurstyArrivals(n int, burstRate, meanBurst, idleSec float64, rng *rand.Rand) ([]Arrival, error) {
	return workload.BurstyArrivals(n, burstRate, meanBurst, idleSec, rng)
}

// DiurnalArrivals generates a seeded stream with a sinusoidal day/night rate
// profile around baseRate (amplitude in [0,1), period in seconds).
func DiurnalArrivals(n int, baseRate, amplitude, periodSec float64, rng *rand.Rand) ([]Arrival, error) {
	return workload.DiurnalArrivals(n, baseRate, amplitude, periodSec, rng)
}

// GrowthArrivals generates a seeded drifting stream: input sizes ramp by the
// growth factor while the log-family cohort's runtime counters drift by skew
// toward the saturating cluster (0 disables behaviour drift).
func GrowthArrivals(n int, ratePerSec, startGB, growth, skew float64, rng *rand.Rand) ([]Arrival, error) {
	return workload.GrowthArrivals(n, ratePerSec, startGB, growth, skew, rng)
}

// RegimeArrivals generates a seeded drifting stream switching every
// periodJobs arrivals between the clean catalogue and a counter-skewed
// drift cohort.
func RegimeArrivals(n int, ratePerSec float64, periodJobs int, skew float64, rng *rand.Rand) ([]Arrival, error) {
	return workload.RegimeArrivals(n, ratePerSec, periodJobs, skew, rng)
}

// SubmissionsFromArrivals lifts a workload arrival stream into the engine's
// submission events for Cluster.RunOpen, carrying tenant class tags along.
func SubmissionsFromArrivals(arrivals []Arrival) []Submission {
	return cluster.Submissions(arrivals)
}

// TagArrivals assigns a tenant class to every arrival of a stream from the
// mix's share fractions, clamping each job to its class's input cap.
func TagArrivals(arrivals []Arrival, mix []ClassShare, rng *rand.Rand) ([]Arrival, error) {
	return workload.TagArrivals(arrivals, mix, rng)
}

// LatencyBatchMix is the canonical two-tenant mix: a latency-sensitive class
// (weight 4, interactive inputs) with the given stream share, and a
// preemptible batch class with the rest.
func LatencyBatchMix(latencyFrac float64) []ClassShare {
	return workload.LatencyBatchMix(latencyFrac)
}

// NewPriorityScheduler wraps any dispatcher-based scheme with multi-tenant
// priority scheduling: weighted-FCFS admission, class-aware placement, and —
// when preempt is set — arrival-time preemption of preemptible
// lower-priority executors (lost work is charged back exactly like an OOM
// kill and reported in Result.PreemptKills). Single-class runs are
// bit-for-bit identical to the unwrapped scheme.
func NewPriorityScheduler(d *Dispatcher, preempt bool) Scheduler {
	return sched.NewPriority(d, preempt)
}

// NewClassAwarePlacer wraps any placement scorer with tenant-priority
// avoidance: candidates hosting higher-weight tenants rank below all others.
func NewClassAwarePlacer(inner Placer) Placer { return sched.NewClassAware(inner) }

// MeasureQueueingByClass computes per-tenant-class queueing metrics for a
// finished run, ordered by descending class weight.
func MeasureQueueingByClass(res *Result, windowSec float64) ([]ClassQueueMetrics, error) {
	return metrics.QueueingByClass(res, windowSec)
}

// Measure computes the paper's metrics for a finished run.
func Measure(c *Cluster, res *Result) (RunMetrics, error) { return metrics.FromResult(c, res) }

// MeasureQueueing computes the open-system queueing metrics (wait, sojourn
// percentiles, throughput) for a finished run; windowSec > 0 adds windowed
// throughput samples.
func MeasureQueueing(res *Result, windowSec float64) (QueueMetrics, error) {
	return metrics.Queueing(res, windowSec)
}

// CompareToSerial sets a run against the serial isolated-execution baseline.
func CompareToSerial(c *Cluster, res *Result, jobs []Job) (Comparison, error) {
	run, err := metrics.FromResult(c, res)
	if err != nil {
		return Comparison{}, err
	}
	return metrics.Compare(run, metrics.SerialBaseline(c, jobs)), nil
}
