// Command trainmoe trains the mixture-of-experts model on the paper's 16
// training programs and inspects it: per-program expert labels, the PCA
// variance spectrum, Varimax feature importance, the confidence radius, and
// leave-one-out selection accuracy.
//
// Usage:
//
//	trainmoe            # train and inspect
//	trainmoe -seed 7    # different profiling noise
//	trainmoe -predict SP.Kmeans -input 280
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"moespark/internal/moe"
	"moespark/internal/workload"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "random seed")
		predict = flag.String("predict", "", "benchmark to predict (e.g. SP.Kmeans)")
		input   = flag.Float64("input", 280, "input size in GB for -predict")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	model, err := moe.TrainDefault(rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainmoe:", err)
		os.Exit(1)
	}

	fmt.Println("== training programs and their expert labels ==")
	for _, p := range model.Programs() {
		fmt.Printf("%-20s %-24s offline fit: %s (R2=%.4f)\n",
			p.Name, p.Family.String(), p.Fit.Func.String(), p.Fit.R2)
	}

	pipe := model.Pipeline()
	fmt.Printf("\n== PCA: %d components kept ==\n", pipe.Components())
	for i, r := range pipe.ExplainedRatio() {
		if i >= 5 {
			break
		}
		fmt.Printf("PC%d: %5.1f%% of variance\n", i+1, r*100)
	}

	fmt.Println("\n== top raw features (Varimax importance) ==")
	for i, imp := range pipe.Importances() {
		if i >= 6 {
			break
		}
		fmt.Printf("%-8s %5.1f%%\n", imp.Name, imp.Percent)
	}

	fmt.Printf("\nconfidence radius: %.3f\n", model.ConfidenceRadius())

	if *predict != "" {
		b, err := workload.Find(*predict)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainmoe:", err)
			os.Exit(1)
		}
		pred, err := model.Predict(b.Counters(rng), b.ProfilePoint(1, rng), b.ProfilePoint(4, rng))
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainmoe:", err)
			os.Exit(1)
		}
		got, err := pred.Func.Eval(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainmoe:", err)
			os.Exit(1)
		}
		truth := b.Footprint(*input)
		fmt.Printf("\n== prediction for %s at %.0fGB ==\n", b.FullName(), *input)
		fmt.Printf("selected expert: %s (distance %.3f, confident=%v)\n",
			pred.Family.String(), pred.Distance, pred.Confident)
		fmt.Printf("calibrated:      %s\n", pred.Func.String())
		fmt.Printf("footprint:       predicted %.1f GB, ground truth %.1f GB (%.1f%% error)\n",
			got, truth, (got-truth)/truth*100)
	}
}
