// Command reproduce regenerates the paper's tables and figures.
//
// Usage:
//
//	reproduce -exp all            # everything (slowest)
//	reproduce -exp fig6 -mixes 50 # one experiment with more mixes
//	reproduce -list               # list experiment ids
//
// Experiment ids: fig3 fig4 fig6 fig7 fig9 fig10 fig11 fig12 fig13 fig14
// fig15 fig16 fig17 fig18 table5 opensys (the open-system queueing study,
// beyond the paper) hetero (heterogeneous fleets and node churn, beyond the
// paper) tenants (multi-tenant priority classes with preemption, beyond the
// paper) drift (static vs adaptive MoE under non-stationary workloads,
// beyond the paper) faults (failure-domain resilience under rack storms,
// beyond the paper).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"moespark/internal/experiments"
)

type runner struct {
	id  string
	run func(experiments.Context) ([]experiments.Table, error)
}

func runners() []runner {
	one := func(f func(experiments.Context) (interface{ Table() experiments.Table }, error)) func(experiments.Context) ([]experiments.Table, error) {
		return func(ctx experiments.Context) ([]experiments.Table, error) {
			r, err := f(ctx)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		}
	}
	return []runner{
		{"fig3", one(func(ctx experiments.Context) (interface{ Table() experiments.Table }, error) {
			return experiments.Fig3(ctx)
		})},
		{"fig4", one(func(ctx experiments.Context) (interface{ Table() experiments.Table }, error) {
			return experiments.Fig4(ctx)
		})},
		{"fig6", func(ctx experiments.Context) ([]experiments.Table, error) {
			r, err := experiments.Fig6(ctx)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		}},
		{"fig7", one(func(ctx experiments.Context) (interface{ Table() experiments.Table }, error) {
			return experiments.Fig7(ctx)
		})},
		{"fig9", func(ctx experiments.Context) ([]experiments.Table, error) {
			r, err := experiments.Fig9(ctx)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		}},
		{"fig10", func(ctx experiments.Context) ([]experiments.Table, error) {
			r, err := experiments.Fig10(ctx)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		}},
		{"fig11", one(func(ctx experiments.Context) (interface{ Table() experiments.Table }, error) {
			return experiments.Fig11(ctx)
		})},
		{"fig12", one(func(ctx experiments.Context) (interface{ Table() experiments.Table }, error) {
			return experiments.Fig12(ctx)
		})},
		{"fig13", func(ctx experiments.Context) ([]experiments.Table, error) {
			return []experiments.Table{experiments.Fig13(ctx).Table()}, nil
		}},
		{"fig14", one(func(ctx experiments.Context) (interface{ Table() experiments.Table }, error) {
			return experiments.Fig14(ctx)
		})},
		{"fig15", one(func(ctx experiments.Context) (interface{ Table() experiments.Table }, error) {
			return experiments.Fig15(ctx)
		})},
		{"fig16", one(func(ctx experiments.Context) (interface{ Table() experiments.Table }, error) {
			return experiments.Fig16(ctx)
		})},
		{"fig17", one(func(ctx experiments.Context) (interface{ Table() experiments.Table }, error) {
			return experiments.Fig17(ctx)
		})},
		{"fig18", one(func(ctx experiments.Context) (interface{ Table() experiments.Table }, error) {
			return experiments.Fig18(ctx)
		})},
		{"table5", one(func(ctx experiments.Context) (interface{ Table() experiments.Table }, error) {
			return experiments.Table5(ctx)
		})},
		{"opensys", func(ctx experiments.Context) ([]experiments.Table, error) {
			r, err := experiments.OpenSystem(ctx)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		}},
		{"hetero", func(ctx experiments.Context) ([]experiments.Table, error) {
			r, err := experiments.Hetero(ctx)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		}},
		{"tenants", func(ctx experiments.Context) ([]experiments.Table, error) {
			r, err := experiments.Tenants(ctx)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		}},
		{"drift", func(ctx experiments.Context) ([]experiments.Table, error) {
			r, err := experiments.Drift(ctx)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		}},
		{"faults", func(ctx experiments.Context) ([]experiments.Table, error) {
			r, err := experiments.Faults(ctx)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		}},
	}
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (or \"all\")")
		mixes   = flag.Int("mixes", 20, "application mixes per scenario (paper: ~100)")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "experiment worker pool (0 = one per CPU; results identical at any width)")
		shards  = flag.Int("shards", 1, "event-loop shards per simulated cluster (results identical at any count)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memprof = flag.String("memprofile", "", "write a heap profile (after a final GC) to this file at exit")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprof != "" {
		// Declared after the CPU-profile defer so it runs first (LIFO).
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				os.Exit(1)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				os.Exit(1)
			}
			f.Close()
		}()
	}

	rs := runners()
	if *list {
		ids := make([]string, len(rs))
		for i, r := range rs {
			ids[i] = r.id
		}
		fmt.Println(strings.Join(ids, " "))
		return
	}

	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "reproduce: -shards %d: want at least one event-loop shard\n", *shards)
		os.Exit(1)
	}

	ctx := experiments.DefaultContext()
	ctx.Seed = *seed
	ctx.MixesPerScenario = *mixes
	ctx.Workers = *workers
	ctx.Cfg.Shards = *shards

	ran := false
	for _, r := range rs {
		if *exp != "all" && *exp != r.id {
			continue
		}
		ran = true
		tables, err := r.run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "reproduce: unknown experiment %q (try -list)\n", *exp)
		os.Exit(1)
	}
}
