// Command moevet is the repo's invariant checker: a multichecker that runs
// the internal/analysis suite — maporder, seededrand, settledstate, refpair
// — over the packages named on the command line and exits nonzero when any
// finding survives its //moevet:allow annotations. CI runs it blocking
// (`go run ./cmd/moevet ./...`); see README "Determinism discipline" for the
// invariants and the annotation syntax.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"moespark/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = usage
	flag.Parse()

	analyzers := analysis.All()
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var picked []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				picked = append(picked, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "moevet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, _, err := analysis.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "moevet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "moevet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: moevet [-only analyzer,...] [packages]\n\nanalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}
